// Command benchparallel measures the serial-vs-parallel wall-clock of
// the end-to-end model-building pipeline (best-of-K LHS discrepancy
// scoring → design-point simulation → (p_min, α) RBF grid search →
// test-set validation) and of its individual stages, verifies that both
// paths produce bit-identical models, and writes the speedup report to
// BENCH_parallel.json (override with -out).
//
// The serial leg pins every stage to one worker (Options.Parallel = 1);
// the parallel leg uses the default of one worker per CPU. On a
// single-CPU host the two legs time alike — the recorded cpus/gomaxprocs
// fields say how much hardware the speedup had to work with.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"time"

	"predperf/internal/core"
	"predperf/internal/design"
	"predperf/internal/rbf"
	"predperf/internal/sample"
)

// Report is the JSON schema of BENCH_parallel.json.
type Report struct {
	Host      Host              `json:"host"`
	Config    Config            `json:"config"`
	Pipeline  Timing            `json:"pipeline"`
	Stages    map[string]Timing `json:"stages"`
	Identical bool              `json:"bit_identical_models"`
}

// Host records how much hardware the parallel leg had available.
type Host struct {
	CPUs       int    `json:"cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
}

// Config records the workload the timings were taken at.
type Config struct {
	Benchmark     string `json:"benchmark"`
	TraceLen      int    `json:"trace_len"`
	SampleSize    int    `json:"sample_size"`
	TestPoints    int    `json:"test_points"`
	LHSCandidates int    `json:"lhs_candidates"`
	Repeats       int    `json:"repeats"`
}

// Timing is one serial-vs-parallel comparison (best of the repeats).
type Timing struct {
	SerialSec   float64 `json:"serial_sec"`
	ParallelSec float64 `json:"parallel_sec"`
	Speedup     float64 `json:"speedup"`
}

func timing(repeats int, serial, parallel func()) Timing {
	best := func(f func()) float64 {
		b := 0.0
		for i := 0; i < repeats; i++ {
			t0 := time.Now()
			f()
			if d := time.Since(t0).Seconds(); i == 0 || d < b {
				b = d
			}
		}
		return b
	}
	t := Timing{SerialSec: best(serial), ParallelSec: best(parallel)}
	if t.ParallelSec > 0 {
		t.Speedup = t.SerialSec / t.ParallelSec
	}
	return t
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchparallel: ")

	bench := flag.String("bench", "mcf", "benchmark workload")
	insts := flag.Int("insts", 30_000, "trace length in dynamic instructions")
	size := flag.Int("sample", 60, "training sample size")
	testN := flag.Int("test", 30, "validation test points")
	cands := flag.Int("lhs", 32, "latin hypercube candidates")
	repeats := flag.Int("repeats", 3, "repetitions per timing (best is kept)")
	outFile := flag.String("out", "BENCH_parallel.json", "report destination")
	flag.Parse()
	if *repeats < 1 {
		*repeats = 1
	}

	rep := Report{
		Host: Host{
			CPUs:       runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			GoVersion:  runtime.Version(),
			OS:         runtime.GOOS,
			Arch:       runtime.GOARCH,
		},
		Config: Config{
			Benchmark: *bench, TraceLen: *insts, SampleSize: *size,
			TestPoints: *testN, LHSCandidates: *cands, Repeats: *repeats,
		},
		Stages: map[string]Timing{},
	}

	// Warm the trace cache so neither leg pays generation cost.
	if _, err := core.NewSimEvaluator(*bench, *insts); err != nil {
		log.Fatal(err)
	}

	pipeline := func(workers int) (*core.Model, core.ErrorStats) {
		ev, err := core.NewSimEvaluator(*bench, *insts)
		if err != nil {
			log.Fatal(err)
		}
		opt := core.Options{LHSCandidates: *cands, Seed: 3, Parallel: workers}
		m, err := core.BuildRBFModel(ev, *size, opt)
		if err != nil {
			log.Fatal(err)
		}
		ts := core.NewTestSetWorkers(ev, nil, *testN, 80, workers)
		return m, m.Validate(ts)
	}

	// End-to-end pipeline, plus a bit-identity check between the legs.
	var serialM, parM *core.Model
	var serialSt, parSt core.ErrorStats
	rep.Pipeline = timing(*repeats,
		func() { serialM, serialSt = pipeline(1) },
		func() { parM, parSt = pipeline(0) })
	rep.Identical = serialSt == parSt &&
		serialM.Discrepancy == parM.Discrepancy &&
		serialM.Fit.PMin == parM.Fit.PMin &&
		serialM.Fit.Alpha == parM.Fit.Alpha &&
		serialM.Fit.AICc == parM.Fit.AICc
	for i := range serialM.Responses {
		if serialM.Responses[i] != parM.Responses[i] {
			rep.Identical = false
		}
	}
	if !rep.Identical {
		log.Fatal("serial and parallel pipelines produced different models")
	}

	// Stage: best-of-K LHS discrepancy scoring.
	space := design.PaperSpace()
	rep.Stages["best_lhs"] = timing(*repeats,
		func() { sample.BestLHSWorkers(space, *size, *cands, rand.New(rand.NewSource(3)), 1) },
		func() { sample.BestLHSWorkers(space, *size, *cands, rand.New(rand.NewSource(3)), 0) })

	// Stage: Warnock L2-star discrepancy kernel on one large sample.
	pts := sample.LHS(space, 4**size, rand.New(rand.NewSource(5)))
	rep.Stages["star_discrepancy"] = timing(*repeats,
		func() { sample.StarDiscrepancyWorkers(pts, 1) },
		func() { sample.StarDiscrepancyWorkers(pts, 0) })

	// Stage: design-point simulation (fresh evaluator per leg).
	simStage := func(workers int) func() {
		return func() {
			ev, err := core.NewSimEvaluator(*bench, *insts)
			if err != nil {
				log.Fatal(err)
			}
			core.NewTestSetWorkers(ev, nil, *testN, 80, workers)
		}
	}
	rep.Stages["simulate"] = timing(*repeats, simStage(1), simStage(0))

	// Stage: (p_min, α) grid search on the already-simulated sample.
	xs := make([][]float64, len(serialM.Points))
	for i, p := range serialM.Points {
		xs[i] = p
	}
	grid := rbf.Options{PMinGrid: []int{1, 2}, AlphaGrid: []float64{3, 5, 7, 9, 12}}
	rep.Stages["rbf_grid"] = timing(*repeats,
		func() {
			o := grid
			o.Workers = 1
			if _, err := rbf.Fit(xs, serialM.Responses, o); err != nil {
				log.Fatal(err)
			}
		},
		func() {
			o := grid
			o.Workers = 0
			if _, err := rbf.Fit(xs, serialM.Responses, o); err != nil {
				log.Fatal(err)
			}
		})

	f, err := os.Create(*outFile)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("pipeline: serial %.2fs, parallel %.2fs → %.2fx on %d CPUs (models bit-identical)\n",
		rep.Pipeline.SerialSec, rep.Pipeline.ParallelSec, rep.Pipeline.Speedup, rep.Host.CPUs)
	for name, tm := range rep.Stages {
		fmt.Printf("  %-18s serial %.3fs, parallel %.3fs → %.2fx\n", name, tm.SerialSec, tm.ParallelSec, tm.Speedup)
	}
	fmt.Printf("report written to %s\n", *outFile)
}
