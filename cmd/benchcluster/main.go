// Command benchcluster measures what the distributed evaluation farm
// costs and buys, and writes the comparison to BENCH_cluster.json
// (override with -out):
//
//   - local: scoring a cold batch of configurations with the in-process
//     core.SimEvaluator fanned across all CPUs — the baseline every
//     remote leg is compared against;
//   - remote: the same cold batch through cluster.RemoteEvaluator over
//     farms of 1, 2, and 4 sim workers (in-process httptest servers, so
//     the legs quantify protocol + scheduling overhead and the scaling
//     shape, not network distance);
//   - router: single-prediction latency against a predserve shard
//     directly versus through the consistent-hash router fronting two
//     shards, quantifying the per-hop proxy cost.
//
// Before any timing, a fresh farm scores the full batch and every value
// is checked bit-for-bit against the local simulator — the farm is the
// same arithmetic behind an HTTP hop, and the report says so explicitly.
// Each timed leg then runs on freshly built workers and evaluators so
// every leg pays the same cold simulation cost.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"predperf/internal/cluster"
	"predperf/internal/core"
	"predperf/internal/design"
	"predperf/internal/par"
	"predperf/internal/sample"
	"predperf/internal/serve"
)

// Report is the JSON schema of BENCH_cluster.json.
type Report struct {
	Host   Host   `json:"host"`
	Config Config `json:"config"`
	// BitIdentical: every remote value matched the local simulator bit
	// for bit before any leg was timed.
	BitIdentical bool         `json:"bit_identical_remote_vs_local"`
	Local        Leg          `json:"local"`
	Remote       []RemoteLeg  `json:"remote"`
	Router       RouterReport `json:"router"`
}

// Host records the hardware the rates were measured on.
type Host struct {
	CPUs       int    `json:"cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
}

// Config records the workload the rates were taken at.
type Config struct {
	Benchmark  string `json:"benchmark"`
	TraceLen   int    `json:"trace_len"`
	Configs    int    `json:"configs"`
	BatchChunk int    `json:"batch_chunk"`
	RouterReqs int    `json:"router_requests"`
}

// Leg is one throughput measurement: cold configurations per second.
type Leg struct {
	Seconds       float64 `json:"seconds"`
	ConfigsPerSec float64 `json:"configs_per_sec"`
}

// RemoteLeg is a farm size's throughput relative to the baselines.
type RemoteLeg struct {
	Workers int `json:"workers"`
	Leg
	// SpeedupVsOneWorker shows the scaling shape across farm sizes.
	SpeedupVsOneWorker float64 `json:"speedup_vs_one_worker"`
	// RatioVsLocal < 1 on one host: the farm adds an HTTP hop to the
	// same CPUs. It quantifies the overhead dedicated machines amortize.
	RatioVsLocal float64 `json:"ratio_vs_local"`
}

// RouterReport compares direct-to-shard and through-router latency.
type RouterReport struct {
	DirectP50Micros float64 `json:"direct_p50_us"`
	DirectP95Micros float64 `json:"direct_p95_us"`
	RoutedP50Micros float64 `json:"routed_p50_us"`
	RoutedP95Micros float64 `json:"routed_p95_us"`
	// OverheadP50Micros is the router's median per-request proxy cost.
	OverheadP50Micros float64 `json:"overhead_p50_us"`
}

// freshConfigs draws n distinct on-grid configurations deterministically.
func freshConfigs(n int) []design.Config {
	space := design.PaperSpace()
	pts := sample.LHS(space, n, rand.New(rand.NewSource(41)))
	cfgs := make([]design.Config, n)
	for i, pt := range pts {
		cfgs[i] = space.Decode(pt, n)
	}
	return cfgs
}

// newFarm starts w in-process sim workers and a pool over them.
func newFarm(w, chunk int) (*cluster.Pool, func(), error) {
	urls := make([]string, w)
	servers := make([]*httptest.Server, w)
	for i := range urls {
		servers[i] = httptest.NewServer(cluster.NewWorker(cluster.WorkerOptions{
			ID: "bench-" + strconv.Itoa(i),
		}).Handler())
		urls[i] = servers[i].URL
	}
	stop := func() {
		for _, s := range servers {
			s.Close()
		}
	}
	pool, err := cluster.NewPool(urls, cluster.PoolOptions{BatchChunk: chunk})
	if err != nil {
		stop()
		return nil, nil, err
	}
	return pool, stop, nil
}

func percentile(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return float64(sorted[i].Microseconds())
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchcluster: ")

	bench := flag.String("bench", "mcf", "benchmark workload")
	insts := flag.Int("insts", 20_000, "trace length in dynamic instructions")
	nCfg := flag.Int("configs", 64, "cold configurations per leg")
	chunk := flag.Int("chunk", 8, "configs per remote eval request")
	farms := flag.String("workers", "1,2,4", "comma-separated farm sizes")
	routerReqs := flag.Int("router-iters", 200, "requests per router-latency leg")
	outFile := flag.String("out", "BENCH_cluster.json", "report destination")
	flag.Parse()

	var sizes []int
	for _, s := range strings.Split(*farms, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			log.Fatalf("bad -workers entry %q", s)
		}
		sizes = append(sizes, n)
	}
	cfgs := freshConfigs(*nCfg)

	// Local reference values — also the bit-identity oracle.
	ref, err := core.NewSimEvaluator(*bench, *insts)
	if err != nil {
		log.Fatal(err)
	}
	want := make([]float64, len(cfgs))
	for i, c := range cfgs {
		want[i] = ref.Eval(c)
	}

	// Bit-identity gate: a fresh 2-worker farm must reproduce every
	// value exactly before anything is timed.
	pool, stop, err := newFarm(2, *chunk)
	if err != nil {
		log.Fatal(err)
	}
	remote := cluster.NewRemoteEvaluator(pool, *bench, *insts, cluster.RemoteOptions{})
	got, err := remote.EvalBatch(cfgs)
	stop()
	if err != nil {
		log.Fatalf("identity gate: %v", err)
	}
	for i := range cfgs {
		if got[i] != want[i] {
			log.Fatalf("config %d: remote %v != local %v — refusing to benchmark", i, got[i], want[i])
		}
	}
	fmt.Printf("identity gate: %d remote values bit-identical to the local simulator\n", len(cfgs))

	rep := Report{
		Host: Host{
			CPUs:       runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			GoVersion:  runtime.Version(),
			OS:         runtime.GOOS,
			Arch:       runtime.GOARCH,
		},
		Config: Config{
			Benchmark: *bench, TraceLen: *insts, Configs: len(cfgs),
			BatchChunk: *chunk, RouterReqs: *routerReqs,
		},
		BitIdentical: true,
	}

	// Local leg: cold evaluator, all CPUs.
	localEv, err := core.NewSimEvaluator(*bench, *insts)
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	par.For(par.Workers(0), len(cfgs), func(i int) { localEv.Eval(cfgs[i]) })
	rep.Local.Seconds = time.Since(t0).Seconds()
	rep.Local.ConfigsPerSec = float64(len(cfgs)) / rep.Local.Seconds
	fmt.Printf("local: %.0f configs/s\n", rep.Local.ConfigsPerSec)

	// Remote legs: fresh farm per size so every leg pays cold sims.
	var oneWorker float64
	for _, w := range sizes {
		pool, stop, err := newFarm(w, *chunk)
		if err != nil {
			log.Fatal(err)
		}
		remote := cluster.NewRemoteEvaluator(pool, *bench, *insts, cluster.RemoteOptions{})
		t0 := time.Now()
		if _, err := remote.EvalBatch(cfgs); err != nil {
			log.Fatalf("remote leg (%d workers): %v", w, err)
		}
		leg := RemoteLeg{Workers: w}
		leg.Seconds = time.Since(t0).Seconds()
		leg.ConfigsPerSec = float64(len(cfgs)) / leg.Seconds
		stop()
		if w == sizes[0] {
			oneWorker = leg.ConfigsPerSec
		}
		if oneWorker > 0 {
			leg.SpeedupVsOneWorker = leg.ConfigsPerSec / oneWorker
		}
		if rep.Local.ConfigsPerSec > 0 {
			leg.RatioVsLocal = leg.ConfigsPerSec / rep.Local.ConfigsPerSec
		}
		rep.Remote = append(rep.Remote, leg)
		fmt.Printf("remote %d worker(s): %.0f configs/s (%.2fx vs %d worker, %.2fx vs local)\n",
			w, leg.ConfigsPerSec, leg.SpeedupVsOneWorker, sizes[0], leg.RatioVsLocal)
	}

	// Router leg: one synthetic model on two shards, single predictions
	// direct versus routed.
	rep.Router = routerLatency(*routerReqs)
	fmt.Printf("router: direct p50 %.0fµs, routed p50 %.0fµs (overhead %.0fµs)\n",
		rep.Router.DirectP50Micros, rep.Router.RoutedP50Micros, rep.Router.OverheadP50Micros)

	f, err := os.Create(*outFile)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("report written to %s\n", *outFile)
}

// routerLatency measures single-prediction latency direct to the owning
// shard versus through the router.
func routerLatency(iters int) RouterReport {
	m, err := core.BuildRBFModel(core.FuncEvaluator(func(c design.Config) float64 {
		return 1 + float64(c.PipeDepth)/24 + 12/float64(c.ROBSize)
	}), 40, core.Options{LHSCandidates: 16, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	m.Name = "bench"

	var shards []string
	for i := 0; i < 2; i++ {
		s := serve.New(serve.Options{})
		if err := s.Registry().Add(m.Name, m, ""); err != nil {
			log.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		shards = append(shards, ts.URL)
	}
	rt, err := cluster.NewRouter(cluster.RouterOptions{Shards: shards, SyncInterval: -1})
	if err != nil {
		log.Fatal(err)
	}
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()
	primary, _ := rt.Ring().Lookup(m.Name)

	body := `{"model":"bench","config":{"depth":12,"rob":96,"iq":48,"lsq":48,"l2kb":2048,"l2lat":10,"il1kb":32,"dl1kb":32,"dl1lat":2}}`
	measure := func(url string) []time.Duration {
		lat := make([]time.Duration, 0, iters)
		for i := 0; i < iters+5; i++ {
			t0 := time.Now()
			resp, err := http.Post(url+"/v1/predict", "application/json", strings.NewReader(body))
			if err != nil {
				log.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				log.Fatalf("predict against %s answered %d", url, resp.StatusCode)
			}
			if i >= 5 { // discard warmup
				lat = append(lat, time.Since(t0))
			}
		}
		sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
		return lat
	}
	direct := measure(primary)
	routed := measure(rts.URL)
	return RouterReport{
		DirectP50Micros:   percentile(direct, 0.5),
		DirectP95Micros:   percentile(direct, 0.95),
		RoutedP50Micros:   percentile(routed, 0.5),
		RoutedP95Micros:   percentile(routed, 0.95),
		OverheadP50Micros: percentile(routed, 0.5) - percentile(direct, 0.5),
	}
}
