// Command simworker serves the cycle-level simulator over HTTP: one
// node of the distributed evaluation farm. A builder (predperf
// -sim-workers) or a serving host (predserve -sim-workers) sends
// batches of processor configurations to POST /v1/eval and gets back
// the simulated metric for each — bit-identical to simulating locally,
// because the simulator is deterministic.
//
// Usage:
//
//	simworker -addr 127.0.0.1:0        # random port, printed on stdout
//	simworker -addr 0.0.0.0:9101      # fixed port
//
//	curl -X POST localhost:9101/v1/eval -d \
//	  '{"benchmark":"mcf","trace_len":50000,"configs":[{"depth":12,"rob":96,"iq":48,"lsq":48,"l2kb":2048,"l2lat":10,"il1kb":32,"dl1kb":32,"dl1lat":2}]}'
//	curl localhost:9101/healthz
//	curl localhost:9101/metricz?format=prom
//
// Evaluators are memoized per (benchmark, trace length) with the same
// single-flight simulation cache a local build uses, so repeated
// requests for hot configurations cost one simulation total. /statusz
// is a small HTML page listing the loaded evaluators; /metricz exports
// the cluster.worker_* counters and histograms.
//
// SIGINT/SIGTERM drains in-flight requests (deadline -drain) and exits
// 0 on a clean drain.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"predperf/internal/cluster"
	"predperf/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("simworker: ")

	addr := flag.String("addr", "127.0.0.1:9101", "listen address (port 0 picks a free port)")
	id := flag.String("id", "", "worker identity in responses and /statusz (default: the listen address)")
	maxBatch := flag.Int("max-batch", 4096, "configurations allowed in one eval request")
	maxBody := flag.Int64("max-body", 4<<20, "request body size limit in bytes")
	maxInsts := flag.Int("max-insts", 10_000_000, "longest trace (dynamic instructions) a request may demand")
	timeout := flag.Duration("timeout", 5*time.Minute, "per-request deadline")
	workers := flag.Int("workers", 0, "goroutines evaluating one batch (0 = all CPUs)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown deadline for in-flight requests")
	traceSample := flag.Float64("trace-sample", 1, "fraction of edge requests that record a distributed trace into /tracez (0 disables; requests carrying a traceparent inherit the caller's decision)")
	traceStore := flag.Int("trace-store", 64, "traces retained per /tracez class (errors, kept, reservoir sample)")
	flag.Parse()

	obs.Enable()

	ts := *traceSample
	if ts <= 0 {
		ts = -1
	}
	w := cluster.NewWorker(cluster.WorkerOptions{
		ID:             *id,
		MaxBatch:       *maxBatch,
		MaxBodyBytes:   *maxBody,
		MaxTraceLen:    *maxInsts,
		Timeout:        *timeout,
		Workers:        *workers,
		TraceSample:    ts,
		TraceStoreSize: *traceStore,
	})

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	// The resolved address goes to stdout so scripts using -addr :0 can
	// discover the port.
	fmt.Printf("simworker: listening on %s\n", l.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- w.Serve(l) }()

	select {
	case err := <-serveErr:
		if err != nil {
			log.Fatal(err)
		}
	case <-ctx.Done():
		stop()
		log.Printf("signal received, draining (deadline %s)", *drain)
		if err := w.Shutdown(*drain); err != nil {
			log.Fatalf("drain failed: %v", err)
		}
		<-serveErr
		log.Print("shut down cleanly")
	}
}
