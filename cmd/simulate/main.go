// Command simulate runs the cycle-level superscalar simulator at one
// design point on one benchmark workload and prints the detailed run
// statistics.
//
// Usage:
//
//	simulate -bench mcf -insts 150000 -depth 12 -rob 96 -iq 48 -lsq 48 \
//	         -l2kb 2048 -l2lat 10 -il1kb 32 -dl1kb 32 -dl1lat 2
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"predperf"
	"predperf/internal/sim"
	"predperf/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("simulate: ")

	bench := flag.String("bench", "mcf", "benchmark workload ("+strings.Join(predperf.Benchmarks(), ", ")+")")
	insts := flag.Int("insts", 150_000, "trace length in dynamic instructions")
	depth := flag.Int("depth", 12, "pipeline depth (7-24)")
	rob := flag.Int("rob", 96, "reorder buffer entries (24-128)")
	iq := flag.Int("iq", 48, "issue queue entries")
	lsq := flag.Int("lsq", 48, "load/store queue entries")
	l2kb := flag.Int("l2kb", 2048, "L2 size in KB (256-8192)")
	l2lat := flag.Int("l2lat", 10, "L2 hit latency in cycles (5-20)")
	il1kb := flag.Int("il1kb", 32, "L1I size in KB (8-64)")
	dl1kb := flag.Int("dl1kb", 32, "L1D size in KB (8-64)")
	dl1lat := flag.Int("dl1lat", 2, "L1D hit latency in cycles (1-4)")
	traceFile := flag.String("trace", "", "run a binary trace file (from tracegen -o) instead of a named benchmark")
	flag.Parse()

	cfg := predperf.Config{
		PipeDepth: *depth, ROBSize: *rob, IQSize: *iq, LSQSize: *lsq,
		L2SizeKB: *l2kb, L2Lat: *l2lat, IL1SizeKB: *il1kb, DL1SizeKB: *dl1kb, DL1Lat: *dl1lat,
	}
	var res predperf.SimResult
	var err error
	workload := *bench
	if *traceFile != "" {
		f, ferr := os.Open(*traceFile)
		if ferr != nil {
			log.Fatal(ferr)
		}
		tr, terr := trace.ReadTrace(f)
		f.Close()
		if terr != nil {
			log.Fatal(terr)
		}
		sc := sim.FromDesign(cfg)
		sc.WarmupInsts = len(tr) / 5
		res = sim.Run(sc, tr)
		workload = *traceFile
		*insts = len(tr)
	} else {
		res, err = predperf.Simulate(cfg, *bench, *insts)
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("benchmark : %s (%d instructions)\n", workload, *insts)
	fmt.Printf("config    : %s\n", cfg)
	fmt.Printf("cycles    : %d\n", res.Cycles)
	fmt.Printf("CPI       : %.4f   (IPC %.3f)\n", res.CPI(), res.IPC())
	fmt.Printf("branches  : %.2f%% mispredicted (%.2f per 1k insts)\n",
		100*res.BPStats.MispredictRate(), res.MispredictsPerKI())
	fmt.Printf("IL1 miss  : %.3f%%\n", 100*res.IL1Stats.MissRate())
	fmt.Printf("DL1 miss  : %.3f%%\n", 100*res.DL1Stats.MissRate())
	fmt.Printf("L2 miss   : %.3f%%\n", 100*res.L2Stats.MissRate())
	fmt.Printf("DRAM      : %d requests, %d row hits, %d conflicts, %d queue stalls\n",
		res.MemStats.Requests, res.MemStats.RowHits, res.MemStats.RowConflicts, res.MemStats.QueueStalls)
	fmt.Printf("stalls    : fetch %d, ROB %d, IQ %d, LSQ %d cycles\n",
		res.FetchStallCycles, res.ROBStallCycles, res.IQStallCycles, res.LSQStallCycles)
	fmt.Printf("forwards  : %d store→load\n", res.LoadForwards)
}
