// Command predserve serves trained CPI models over HTTP: the inference
// side of the paper's pipeline. predperf -save produces model files;
// predserve loads them into a named registry and answers prediction,
// search, and introspection requests until it is told to drain.
//
// Usage:
//
//	predperf -bench mcf -sample 90 -save models/mcf.json
//	predserve -models models                  # serve every *.json in models/
//	predserve -model models/mcf.json          # serve one file
//	predserve -addr 127.0.0.1:0 -models m     # random port (printed on stdout)
//
//	curl localhost:8080/healthz
//	curl -X POST localhost:8080/v1/predict -d \
//	  '{"model":"mcf","config":{"depth":12,"rob":96,"iq":48,"lsq":48,"l2kb":2048,"l2lat":10,"il1kb":32,"dl1kb":32,"dl1lat":2}}'
//	curl localhost:8080/metricz?format=prom   # Prometheus text exposition
//
// Every request is stamped with an X-Request-Id (the client's, if
// sent; generated otherwise), echoed in the response and written to
// the JSON-lines access log (-access-log: "stderr" by default, "off"
// to disable, or a file path to append to) with method, path, status,
// bytes, and duration. /metricz serves counters, gauges, per-route
// latency histograms, and spans as JSON, or as Prometheus text with
// ?format=prom; -pprof serves net/http/pprof on a side address.
//
// Concurrent single predictions are coalesced into micro-batches
// (-coalesce-window, default 1ms; -coalesce-max per flush) and scored
// with one vectorized RBF evaluation, bit-identical to evaluating them
// alone; explicit batch requests go straight to the vectorized path.
// A full admission queue (-coalesce-queue) answers a structured 503
// (coalesce_queue_full) immediately.
//
// Operational endpoints beyond /healthz: /readyz answers 503 with
// structured reasons while the registry is empty, an SLO burn rate
// (-slo-latency, -slo-availability, -burn-threshold) exceeds its
// threshold, or a model drifts from the simulator under shadow
// sampling (-shadow-frac, -shadow-workers, -shadow-err-pct); /alertz
// lists firing and resolved alerts with timestamps; /statusz is a
// self-contained HTML dashboard.
//
// With -retrain, drift closes the loop instead of only flipping
// readiness: a model whose drift alert fires for -retrain-after is
// rebuilt in the background at escalated sample sizes (-retrain-sizes,
// stopping at -retrain-target-pct mean test error), hot-swapped into
// the registry under a new generation, and persisted atomically back
// into -models. Retrains are single-flight per model, bounded by
// -retrain-max-concurrent, and cooled down by -retrain-cooldown after
// success and failure alike; progress shows up in serve_retrains
// counters, /statusz, /alertz, and as non-failing notes in /readyz.
//
// SIGINT/SIGTERM triggers a graceful drain: the listener closes
// immediately, in-flight requests get -drain to finish, and the process
// exits 0 on a clean drain.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"predperf/internal/cluster"
	"predperf/internal/obs"
	"predperf/internal/serve"
)

// parseSizes turns the -retrain-sizes flag ("60,90,120") into the
// escalation ladder; malformed or non-positive entries are fatal, an
// empty flag means automatic escalation.
func parseSizes(s string) []int {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			log.Fatalf("-retrain-sizes: %q is not a positive integer", part)
		}
		out = append(out, n)
	}
	return out
}

// sampleRate maps the -trace-sample flag onto Options semantics, where
// the zero value means "default to 1.0": a flag value of 0 must disable
// tracing, so it maps to the negative sentinel.
func sampleRate(f float64) float64 {
	if f <= 0 {
		return -1
	}
	return f
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("predserve: ")

	version := flag.Bool("version", false, "print build info (Go version, model format, VCS revision) and exit")
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
	modelsDir := flag.String("models", "", "directory of *.json models to load at startup (also anchors relative /v1/models/load paths)")
	modelFiles := flag.String("model", "", "comma-separated model files to load at startup")
	cacheSize := flag.Int("cache", 4096, "prediction LRU cache entries (negative disables)")
	workers := flag.Int("workers", 0, "batch-predict worker goroutines (0 = all CPUs)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request deadline")
	maxBody := flag.Int64("max-body", 1<<20, "request body size limit in bytes")
	maxBatch := flag.Int("max-batch", 4096, "configurations allowed in one predict request")
	coalesceWindow := flag.Duration("coalesce-window", time.Millisecond, "micro-batch window: concurrent single predictions arriving within it share one vectorized evaluation (0 disables coalescing)")
	coalesceMax := flag.Int("coalesce-max", 64, "flush a coalesced micro-batch as soon as it holds this many configurations")
	coalesceQueue := flag.Int("coalesce-queue", 4096, "coalescer admission-queue capacity; a full queue answers 503 coalesce_queue_full immediately")
	searchInsts := flag.Int("search-insts", 50_000, "trace length for simulator-verified /v1/search")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown deadline for in-flight requests")
	progress := flag.Bool("progress", false, "print periodic request counters to stderr")
	accessLog := flag.String("access-log", "stderr", `JSON-lines access log destination: "stderr", "off", or a file path (appended)`)
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); off by default")
	sloLatency := flag.Duration("slo-latency", 250*time.Millisecond, "latency SLO: a request is good when it completes within this duration")
	sloAvail := flag.Float64("slo-availability", 0.999, "target good fraction for the latency and availability SLOs (0 < x < 1)")
	burnThreshold := flag.Float64("burn-threshold", obs.DefBurnThreshold, "SLO burn rate above which /readyz reports unready")
	shadowFrac := flag.Float64("shadow-frac", 0, "fraction of served predictions re-checked on the cycle-level simulator (0 disables, 1 checks everything)")
	shadowWorkers := flag.Int("shadow-workers", 1, "background shadow-simulation worker goroutines")
	shadowErr := flag.Float64("shadow-err-pct", 25, "windowed mean shadow error (percent) above which a model counts as drifting (negative never trips)")
	retrain := flag.Bool("retrain", false, "rebuild drifting models at escalated sample sizes and hot-swap the winner (requires -shadow-frac > 0 to ever trigger)")
	retrainSizes := flag.String("retrain-sizes", "", "comma-separated escalation ladder of sample sizes; only sizes above the serving model's are built (empty = 2x/3x/4x the serving size)")
	retrainTarget := flag.Float64("retrain-target-pct", 5, "stop the retrain escalation once mean test error drops to this percentage")
	retrainCooldown := flag.Duration("retrain-cooldown", 10*time.Minute, "per-model pause after a retrain (success or failure) before another may start")
	retrainMax := flag.Int("retrain-max-concurrent", 1, "simultaneous retrains across all models")
	retrainAfter := flag.Duration("retrain-after", 30*time.Second, "how long a model's drift alert must fire continuously before a retrain starts")
	retrainPoll := flag.Duration("retrain-poll", 10*time.Second, "drift-state poll cadence of the retrain controller")
	retrainTestPoints := flag.Int("retrain-test-points", 24, "simulator-backed test points driving the retrain stopping rule")
	retrainWorkers := flag.Int("retrain-workers", 1, "worker goroutines for one background retrain build")
	simWorkers := flag.String("sim-workers", "", "comma-separated simworker base URLs; when set, search verification, shadow re-simulation, and retrain builds fan out to the evaluation farm instead of simulating in-process")
	traceSample := flag.Float64("trace-sample", 1, "fraction of edge requests that record a distributed trace into /tracez (0 disables; downstream hops inherit the edge's decision)")
	traceSampleMax := flag.Float64("trace-sample-max", 0, "ceiling for SLO-burn-adaptive sampling: while a declared SLO burns, the edge rate ramps from -trace-sample toward this value and decays back once the burn clears (0 keeps the rate static)")
	traceAdaptEvery := flag.Duration("trace-adapt-every", 10*time.Second, "cadence of the adaptive trace-sampling control loop (only runs when -trace-sample-max enables it)")
	traceStore := flag.Int("trace-store", 64, "traces retained per /tracez class (errors, kept outliers, reservoir sample)")
	flag.Parse()

	if *version {
		b := serve.Build()
		fmt.Printf("predserve %s model-format %d", b.GoVersion, b.ModelFormat)
		if b.Revision != "" {
			fmt.Printf(" rev %s", b.Revision)
			if b.Modified {
				fmt.Print(" (modified)")
			}
		}
		fmt.Println()
		return
	}

	// Span timing is always on: /metricz is part of the API, and the
	// enabled-path cost is two clock reads per timed request. Runtime
	// gauges and the window-rotation ticker keep /statusz and the burn
	// rates current even when no requests arrive to drive lazy rotation.
	obs.Enable()
	obs.RegisterRuntimeMetrics()
	stopRotation := obs.StartWindowRotation(obs.DefWindowBucket)
	defer stopRotation()
	if *progress {
		stop := obs.StartProgress(os.Stderr, 2*time.Second)
		defer stop()
	}
	if *pprofAddr != "" {
		go func() {
			log.Printf("pprof: %v", http.ListenAndServe(*pprofAddr, nil))
		}()
	}

	var accessW io.Writer
	switch *accessLog {
	case "off", "":
		// disabled
	case "stderr":
		accessW = os.Stderr
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("opening access log: %v", err)
		}
		defer f.Close()
		accessW = f
	}

	var simPool *cluster.Pool
	if *simWorkers != "" {
		var urls []string
		for _, u := range strings.Split(*simWorkers, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
		var err error
		simPool, err = cluster.NewPool(urls, cluster.PoolOptions{})
		if err != nil {
			log.Fatalf("-sim-workers: %v", err)
		}
		log.Printf("sim-worker pool: %s", strings.Join(simPool.Workers(), ", "))
	}

	srv := serve.New(serve.Options{
		MaxBodyBytes:   *maxBody,
		Timeout:        *timeout,
		CacheSize:      *cacheSize,
		Workers:        *workers,
		MaxBatch:       *maxBatch,
		CoalesceWindow: *coalesceWindow,
		CoalesceMax:    *coalesceMax,
		CoalesceQueue:  *coalesceQueue,
		SearchTraceLen: *searchInsts,
		ModelDir:       *modelsDir,
		AccessLog:      accessW,

		SLOLatency:      *sloLatency,
		SLOAvailability: *sloAvail,
		BurnThreshold:   *burnThreshold,
		ShadowFraction:  *shadowFrac,
		ShadowWorkers:   *shadowWorkers,
		ShadowErrPct:    *shadowErr,

		Retrain:              *retrain,
		RetrainSizes:         parseSizes(*retrainSizes),
		RetrainTargetPct:     *retrainTarget,
		RetrainCooldown:      *retrainCooldown,
		RetrainMaxConcurrent: *retrainMax,
		RetrainAfter:         *retrainAfter,
		RetrainPoll:          *retrainPoll,
		RetrainTestPoints:    *retrainTestPoints,
		RetrainWorkers:       *retrainWorkers,

		SimPool: simPool,

		TraceSample:        sampleRate(*traceSample),
		TraceSampleMax:     *traceSampleMax,
		TraceAdaptInterval: *traceAdaptEvery,
		TraceStoreSize:     *traceStore,
	})
	if *retrain && *shadowFrac <= 0 {
		log.Print("warning: -retrain has no trigger without shadow monitoring; set -shadow-frac > 0")
	}
	if *modelsDir != "" {
		names, err := srv.Registry().LoadDir("")
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded %d model(s) from %s: %s", len(names), *modelsDir, strings.Join(names, ", "))
	}
	if *modelFiles != "" {
		for _, p := range strings.Split(*modelFiles, ",") {
			name, err := srv.Registry().LoadFile(strings.TrimSpace(p), "")
			if err != nil {
				log.Fatal(err)
			}
			log.Printf("loaded model %q from %s", name, p)
		}
	}
	if srv.Registry().Len() == 0 {
		log.Print("warning: no models loaded; hot-load with POST /v1/models/load")
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	// The resolved address goes to stdout so scripts using -addr :0 can
	// discover the port.
	fmt.Printf("predserve: listening on %s\n", l.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	select {
	case err := <-serveErr:
		if err != nil {
			log.Fatal(err)
		}
	case <-ctx.Done():
		stop()
		log.Printf("signal received, draining (deadline %s)", *drain)
		if err := srv.Shutdown(*drain); err != nil {
			log.Fatalf("drain failed: %v", err)
		}
		<-serveErr
		log.Print("shut down cleanly")
	}
}
