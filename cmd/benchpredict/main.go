// Command benchpredict measures single-prediction throughput across the
// three evaluation paths that now exist for a fitted RBF model, and
// writes the comparison to BENCH_predict.json (override with -out):
//
//   - scalar: per-point Network.Predict with the hoisted 1/r² cache
//     (plus a scalar_nohoist leg that re-divides per call, quantifying
//     the hoist on its own);
//   - vectorized: the compiled SoA evaluator (rbf.Compiled), one
//     blocked design-matrix pass per batch;
//   - coalesced: concurrent single HTTP /v1/predict requests against an
//     in-process predserve handler with micro-batch coalescing on, so
//     the measured rate includes admission, batching, and fan-back.
//
// Every leg is checked bit-for-bit against the scalar path before any
// timing is reported: the three paths are the same arithmetic in a
// different loop order, and the report says so explicitly.
//
// Batch size doubles as the concurrency of the coalesced leg — a batch
// of 64 means 64 goroutines posting singles, which is the traffic shape
// the coalescer turns back into one vectorized call.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"predperf/internal/core"
	"predperf/internal/design"
	"predperf/internal/rbf"
	"predperf/internal/sample"
	"predperf/internal/serve"
)

// Report is the JSON schema of BENCH_predict.json.
type Report struct {
	Host    Host          `json:"host"`
	Config  Config        `json:"config"`
	Batches []BatchResult `json:"batches"`
	// BitIdentical: scalar (hoisted and unhoisted), vectorized, and
	// coalesced-HTTP values all matched bit for bit on every input.
	BitIdentical bool `json:"bit_identical_all_paths"`
}

// Host records the hardware the rates were measured on.
type Host struct {
	CPUs       int    `json:"cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
}

// Config records the model and workload the rates were taken at.
type Config struct {
	Benchmark     string `json:"benchmark"`
	TraceLen      int    `json:"trace_len"`
	SampleSize    int    `json:"sample_size"`
	Bases         int    `json:"rbf_bases"`
	Dims          int    `json:"dims"`
	LHSCandidates int    `json:"lhs_candidates"`
	HTTPRequests  int    `json:"http_requests_per_worker"`
}

// BatchResult is one batch size's throughput across the paths, in
// predictions per second.
type BatchResult struct {
	Batch            int     `json:"batch"`
	ScalarNoHoistOps float64 `json:"scalar_nohoist_ops_per_sec"`
	ScalarOps        float64 `json:"scalar_ops_per_sec"`
	VectorizedOps    float64 `json:"vectorized_ops_per_sec"`
	CoalescedOps     float64 `json:"coalesced_ops_per_sec"`
	// RatioVectorizedOverScalar > 1 means the blocked batch pass beat
	// per-point evaluation at this batch size.
	RatioVectorizedOverScalar float64 `json:"ratio_vectorized_over_scalar"`
	RatioScalarOverNoHoist    float64 `json:"ratio_scalar_over_nohoist"`
}

// rate times fn — which processes n predictions per call — repeatedly
// until minTime has elapsed, and returns predictions per second.
func rate(n int, minTime time.Duration, fn func()) float64 {
	iters := 0
	t0 := time.Now()
	for time.Since(t0) < minTime || iters == 0 {
		fn()
		iters++
	}
	return float64(n*iters) / time.Since(t0).Seconds()
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchpredict: ")

	bench := flag.String("bench", "mcf", "benchmark workload")
	insts := flag.Int("insts", 30_000, "trace length in dynamic instructions")
	size := flag.Int("sample", 60, "training sample size")
	cands := flag.Int("lhs", 16, "latin hypercube candidates")
	batches := flag.String("batches", "1,8,64,512", "comma-separated batch sizes (doubles as coalesced-leg concurrency)")
	minTime := flag.Duration("mintime", 200*time.Millisecond, "minimum measurement time per in-process leg")
	httpReqs := flag.Int("http-iters", 20, "requests per worker in the coalesced HTTP leg")
	outFile := flag.String("out", "BENCH_predict.json", "report destination")
	flag.Parse()

	var sizes []int
	maxBatch := 0
	for _, s := range strings.Split(*batches, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			log.Fatalf("bad -batches entry %q", s)
		}
		sizes = append(sizes, n)
		if n > maxBatch {
			maxBatch = n
		}
	}

	// Train the model the legs will share.
	ev, err := core.NewSimEvaluator(*bench, *insts)
	if err != nil {
		log.Fatal(err)
	}
	m, err := core.BuildRBFModel(ev, *size, core.Options{LHSCandidates: *cands, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	m.Name = *bench
	net := m.Fit.Net

	// Evaluation inputs: a fresh LHS over the model's space, decoded to
	// concrete on-grid configurations (so serve-side quantization is the
	// identity) and re-encoded to model coordinates.
	pts := sample.LHS(m.Space, maxBatch, rand.New(rand.NewSource(17)))
	cfgs := make([]design.Config, maxBatch)
	xs := make([][]float64, maxBatch)
	for i, pt := range pts {
		cfgs[i] = m.Space.Decode(pt, m.SampleSize)
		xs[i] = m.Space.Encode(cfgs[i])
	}

	// An unhoisted twin: same centers, radii, and weights, but built
	// from exported fields only, so no cached 1/r² — Eval falls back to
	// dividing per call. Bit-identical by construction (the fallback
	// uses the same d²·(1/(r·r)) expression).
	noHoist := &rbf.Network{Weights: net.Weights}
	for _, b := range net.Bases {
		noHoist.Bases = append(noHoist.Bases, rbf.Basis{Center: b.Center, Radius: b.Radius})
	}

	// Reference values + cross-path identity check, before any timing.
	want := make([]float64, maxBatch)
	for i, x := range xs {
		want[i] = net.Predict(x)
	}
	identical := true
	vec := m.Fit.PredictBatch(xs)
	for i := range xs {
		if vec[i] != want[i] || noHoist.Predict(xs[i]) != want[i] {
			identical = false
		}
	}
	if !identical {
		log.Fatal("evaluation paths disagree before timing — refusing to benchmark")
	}

	// The coalesced leg's server: LRU cache disabled so every request
	// pays for real evaluation, coalescing on with the default window.
	srv := serve.New(serve.Options{
		CacheSize:      -1,
		CoalesceWindow: time.Millisecond,
		CoalesceMax:    64,
	})
	if err := srv.Registry().Add(m.Name, m, ""); err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	bodies := make([]string, maxBatch)
	for i, c := range cfgs {
		bodies[i] = fmt.Sprintf(
			`{"model":%q,"config":{"depth":%d,"rob":%d,"iq":%d,"lsq":%d,"l2kb":%d,"l2lat":%d,"il1kb":%d,"dl1kb":%d,"dl1lat":%d}}`,
			m.Name, c.PipeDepth, c.ROBSize, c.IQSize, c.LSQSize,
			c.L2SizeKB, c.L2Lat, c.IL1SizeKB, c.DL1SizeKB, c.DL1Lat)
	}

	rep := Report{
		Host: Host{
			CPUs:       runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			GoVersion:  runtime.Version(),
			OS:         runtime.GOOS,
			Arch:       runtime.GOARCH,
		},
		Config: Config{
			Benchmark: *bench, TraceLen: *insts, SampleSize: *size,
			Bases: len(net.Bases), Dims: m.Space.N(),
			LHSCandidates: *cands, HTTPRequests: *httpReqs,
		},
		BitIdentical: identical,
	}

	cm := m.Fit.Compiled()
	out := make([]float64, maxBatch)
	for _, n := range sizes {
		br := BatchResult{Batch: n}
		br.ScalarNoHoistOps = rate(n, *minTime, func() {
			for i := 0; i < n; i++ {
				noHoist.Predict(xs[i])
			}
		})
		br.ScalarOps = rate(n, *minTime, func() {
			for i := 0; i < n; i++ {
				net.Predict(xs[i])
			}
		})
		br.VectorizedOps = rate(n, *minTime, func() {
			cm.PredictBatchTo(out[:n], xs[:n])
		})
		ok := true
		br.CoalescedOps = coalescedRate(ts.URL, bodies[:n], want[:n], *httpReqs, &ok)
		if !ok {
			rep.BitIdentical = false
		}
		if br.ScalarOps > 0 {
			br.RatioVectorizedOverScalar = br.VectorizedOps / br.ScalarOps
		}
		if br.ScalarNoHoistOps > 0 {
			br.RatioScalarOverNoHoist = br.ScalarOps / br.ScalarNoHoistOps
		}
		rep.Batches = append(rep.Batches, br)
		fmt.Printf("batch %4d: nohoist %.3gM/s  scalar %.3gM/s  vectorized %.3gM/s (%.2fx)  coalesced-http %.3g/s\n",
			n, br.ScalarNoHoistOps/1e6, br.ScalarOps/1e6, br.VectorizedOps/1e6,
			br.RatioVectorizedOverScalar, br.CoalescedOps)
	}
	if !rep.BitIdentical {
		log.Fatal("coalesced HTTP responses diverged from the scalar path")
	}

	f, err := os.Create(*outFile)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("all paths bit-identical; report written to %s\n", *outFile)
}

// coalescedRate runs len(bodies) workers, each posting its single
// configuration reqs times, and returns predictions per second. Every
// response value is checked against the scalar reference; a mismatch
// (or any non-200) clears *ok.
func coalescedRate(url string, bodies []string, want []float64, reqs int, ok *bool) float64 {
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        len(bodies) + 10,
		MaxIdleConnsPerHost: len(bodies) + 10,
	}}
	defer client.CloseIdleConnections()
	var bad sync.Once
	fail := func() { bad.Do(func() { *ok = false }) }
	run := func(warm bool) time.Duration {
		n := reqs
		if warm {
			n = 1
		}
		var wg sync.WaitGroup
		t0 := time.Now()
		for w := range bodies {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for r := 0; r < n; r++ {
					resp, err := client.Post(url+"/v1/predict", "application/json", strings.NewReader(bodies[w]))
					if err != nil {
						fail()
						return
					}
					var pr struct {
						Predictions []struct {
							Value float64 `json:"value"`
						} `json:"predictions"`
					}
					err = json.NewDecoder(resp.Body).Decode(&pr)
					resp.Body.Close()
					if err != nil || resp.StatusCode != http.StatusOK ||
						len(pr.Predictions) != 1 || pr.Predictions[0].Value != want[w] {
						fail()
						return
					}
				}
			}(w)
		}
		wg.Wait()
		return time.Since(t0)
	}
	run(true) // warm connections and code paths
	elapsed := run(false)
	return float64(len(bodies)*reqs) / elapsed.Seconds()
}
