// Command benchobs measures the per-call cost of the observability
// primitives (counters, histograms, span timing, context-propagated
// trace spans) in every state the pipeline runs in — instrumentation
// disabled (the default every simulation pays), enabled (when -report or
// /metricz is live), and traced (when a -trace timeline or a served
// request is recording) — plus the end-to-end overhead of building a
// model with tracing on versus off. The report goes to BENCH_obs.json
// (override with -out).
//
// The point of the numbers: the disabled paths must be a few
// nanoseconds (an atomic load and branch), so leaving the
// instrumentation compiled into the hot loops costs nothing when no
// sink is attached.
//
// The federation legs measure what the router's fleet plane pays:
// merging N role reports into one aggregate (fleet_merge_4_reports,
// fleet_windows_ingest) and a federated /tracez search fanned out over
// 1, 2, and 4 loopback roles (trace_search_fanout_N, a full HTTP
// round trip per role).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"predperf/internal/cluster"
	"predperf/internal/core"
	"predperf/internal/obs"
)

// Report is the JSON schema of BENCH_obs.json.
type Report struct {
	Host  Host               `json:"host"`
	Ops   map[string]float64 `json:"ops_ns"`    // per-op cost, nanoseconds
	Build BuildOverhead      `json:"build"`     // end-to-end tracing overhead
	Iters int                `json:"ops_iters"` // iterations behind each ops_ns figure
}

// Host records the hardware the numbers were taken on.
type Host struct {
	CPUs       int    `json:"cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
}

// BuildOverhead compares a full model build with tracing off and on.
type BuildOverhead struct {
	UntracedSec float64 `json:"untraced_sec"`
	TracedSec   float64 `json:"traced_sec"`
	OverheadPct float64 `json:"overhead_pct"`
	Spans       int     `json:"spans_recorded"`
}

// sink keeps the compiler from eliding a measured call whose result is
// otherwise unused.
var sink bool

// perOp times f() over iters iterations, repeats times, and returns the
// best per-op nanoseconds.
func perOp(repeats, iters int, f func()) float64 {
	best := 0.0
	for r := 0; r < repeats; r++ {
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			f()
		}
		if d := float64(time.Since(t0).Nanoseconds()) / float64(iters); r == 0 || d < best {
			best = d
		}
	}
	return best
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchobs: ")

	bench := flag.String("bench", "mcf", "benchmark workload for the build-overhead leg")
	insts := flag.Int("insts", 30_000, "trace length in dynamic instructions")
	size := flag.Int("sample", 60, "training sample size")
	iters := flag.Int("iters", 1_000_000, "iterations per micro-measurement")
	repeats := flag.Int("repeats", 3, "repetitions per timing (best is kept)")
	outFile := flag.String("out", "BENCH_obs.json", "report destination")
	flag.Parse()
	if *repeats < 1 {
		*repeats = 1
	}

	rep := Report{
		Host: Host{
			CPUs:       runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			GoVersion:  runtime.Version(),
			OS:         runtime.GOOS,
			Arch:       runtime.GOARCH,
		},
		Ops:   map[string]float64{},
		Iters: *iters,
	}

	// Micro costs: each primitive in each instrumentation state.
	c := obs.NewCounter("benchobs.counter")
	obs.Disable()
	rep.Ops["counter_inc"] = perOp(*repeats, *iters, func() { c.Inc() })

	h := obs.NewHistogram("benchobs.hist", obs.DefLatencyBuckets)
	rep.Ops["histogram_observe"] = perOp(*repeats, *iters, func() { h.Observe(0.001) })

	hv := obs.NewHistogramVec("benchobs.hist_vec", obs.DefLatencyBuckets, "route")
	rep.Ops["histogram_vec_with_observe"] = perOp(*repeats, *iters, func() { hv.With("/v1/predict").Observe(0.001) })

	// Windowed views: read-side cost of the sliding-window layer. The
	// write path is untouched (windows snapshot cumulative values), so
	// only rate/stat reads and the rotation tick have a price.
	wc := obs.WindowCounter(c, time.Now)
	rep.Ops["windowed_counter_rate"] = perOp(*repeats, *iters/10, func() { wc.RateOver(time.Minute) })
	wh := obs.WindowHistogram(h, time.Now)
	rep.Ops["windowed_hist_stats"] = perOp(*repeats, *iters/10, func() { wh.StatsOver(time.Minute) })
	rep.Ops["window_tick_all"] = perOp(*repeats, *iters/10, func() { obs.TickWindows() })

	obs.Disable()
	rep.Ops["span_disabled"] = perOp(*repeats, *iters, func() { obs.StartSpan("benchobs.span")() })
	obs.Enable()
	rep.Ops["span_enabled"] = perOp(*repeats, *iters, func() { obs.StartSpan("benchobs.span")() })
	obs.Disable()

	bg := context.Background()
	rep.Ops["spanctx_disabled_no_trace"] = perOp(*repeats, *iters, func() {
		_, end := obs.StartSpanCtx(bg, "benchobs.spanctx")
		end()
	})
	tctx := obs.WithTrace(bg, obs.NewTrace("benchobs"))
	rep.Ops["spanctx_traced"] = perOp(*repeats, *iters/10, func() {
		_, end := obs.StartSpanCtx(tctx, "benchobs.spanctx")
		end()
	})

	// Distributed-tracing request path: what one request pays when head
	// sampling says no (the -trace-sample 0 hot path: a hash and a
	// branch), when it says yes (a trace allocation plus root span), and
	// what offering a finished trace to the tail-retention store costs.
	sampler := obs.NewSampler(0.5)
	rep.Ops["request_sampled_off"] = perOp(*repeats, *iters, func() {
		sink = sampler.Sample("benchobs-request-id")
	})
	rep.Ops["request_sampled_on"] = perOp(*repeats, *iters/10, func() {
		t := obs.NewTrace("benchobs-req")
		_, end := obs.StartSpanCtx(obs.WithTrace(bg, t), "serve.request")
		end()
	})
	store := obs.NewTraceStore(64)
	stored := obs.NewTrace("benchobs-stored")
	_, endStored := obs.StartSpanCtx(obs.WithTrace(bg, stored), "serve.request")
	endStored()
	rep.Ops["trace_store_retention"] = perOp(*repeats, *iters/10, func() {
		store.Add(stored, obs.TraceMeta{ID: stored.ID(), Kind: "request", Route: "/v1/predict", Status: 200})
	})

	// Fleet federation: the scrape-merge path (the registry populated by
	// the micro legs above stands in for one role's report) and the
	// merged windows' ingest cost.
	roleRep := obs.Snapshot()
	fleetReps := []*obs.Report{roleRep, roleRep, roleRep, roleRep}
	var mergedRep *obs.Report
	rep.Ops["fleet_merge_4_reports"] = perOp(*repeats, *iters/100, func() {
		mergedRep = obs.MergeReports(fleetReps...)
	})
	fw := obs.NewFleetWindows(nil)
	rep.Ops["fleet_windows_ingest"] = perOp(*repeats, *iters/100, func() {
		fw.Ingest(mergedRep)
	})

	// Federated trace search: a router fanning /tracez?q= over 1, 2, and
	// 4 loopback roles, each answering a canned 8-trace summary list.
	// Every op is a real HTTP round trip per role, so the iteration
	// count is scaled down hard.
	sums := make([]obs.TraceSummary, 8)
	for i := range sums {
		sums[i] = obs.TraceSummary{
			ID: fmt.Sprintf("bench-%d", i), Kind: "request", Route: "/v1/predict",
			Status: 200, Class: "sampled", DurMS: 1.5, Spans: 4,
		}
	}
	roleBody, err := json.Marshal(struct {
		Traces []obs.TraceSummary `json:"traces"`
	}{sums})
	if err != nil {
		log.Fatal(err)
	}
	var roles []*httptest.Server
	for i := 0; i < 4; i++ {
		roles = append(roles, httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			w.Write(roleBody)
		})))
	}
	searchIters := *iters / 2000
	if searchIters < 100 {
		searchIters = 100
	}
	for _, n := range []int{1, 2, 4} {
		var urls []string
		for _, s := range roles[:n] {
			urls = append(urls, s.URL)
		}
		rt, err := cluster.NewRouter(cluster.RouterOptions{
			Shards: urls, SyncInterval: -1, FleetScrapeInterval: -1,
		})
		if err != nil {
			log.Fatal(err)
		}
		front := httptest.NewServer(rt.Handler())
		rep.Ops[fmt.Sprintf("trace_search_fanout_%d", n)] = perOp(*repeats, searchIters, func() {
			resp, err := http.Get(front.URL + "/tracez?format=json&q=predict")
			if err != nil {
				log.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		})
		front.Close()
	}
	for _, s := range roles {
		s.Close()
	}

	// End-to-end: the same build untraced vs. traced. The models are
	// checked bit-identical (the determinism contract of the obs layer).
	if _, err := core.NewSimEvaluator(*bench, *insts); err != nil {
		log.Fatal(err) // warm the trace cache
	}
	build := func(ctx context.Context) *core.Model {
		ev, err := core.NewSimEvaluator(*bench, *insts)
		if err != nil {
			log.Fatal(err)
		}
		m, err := core.BuildRBFModelCtx(ctx, ev, *size, core.Options{LHSCandidates: 32, Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
		return m
	}
	bestSec := func(f func()) float64 {
		best := 0.0
		for r := 0; r < *repeats; r++ {
			t0 := time.Now()
			f()
			if d := time.Since(t0).Seconds(); r == 0 || d < best {
				best = d
			}
		}
		return best
	}
	var plain, traced *core.Model
	var tr *obs.Trace
	rep.Build.UntracedSec = bestSec(func() { plain = build(bg) })
	rep.Build.TracedSec = bestSec(func() {
		tr = obs.NewTrace("benchobs-build")
		traced = build(obs.WithTrace(bg, tr))
	})
	rep.Build.Spans = tr.Len()
	if rep.Build.UntracedSec > 0 {
		rep.Build.OverheadPct = 100 * (rep.Build.TracedSec - rep.Build.UntracedSec) / rep.Build.UntracedSec
	}
	identical := plain.Discrepancy == traced.Discrepancy &&
		plain.Fit.PMin == traced.Fit.PMin &&
		plain.Fit.Alpha == traced.Fit.Alpha &&
		plain.Fit.AICc == traced.Fit.AICc
	for i := range plain.Responses {
		if plain.Responses[i] != traced.Responses[i] {
			identical = false
		}
	}
	if !identical {
		log.Fatal("traced and untraced builds produced different models")
	}

	f, err := os.Create(*outFile)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}

	for _, k := range []string{
		"counter_inc", "histogram_observe", "histogram_vec_with_observe",
		"windowed_counter_rate", "windowed_hist_stats", "window_tick_all",
		"span_disabled", "span_enabled", "spanctx_disabled_no_trace", "spanctx_traced",
		"request_sampled_off", "request_sampled_on", "trace_store_retention",
		"fleet_merge_4_reports", "fleet_windows_ingest",
		"trace_search_fanout_1", "trace_search_fanout_2", "trace_search_fanout_4",
	} {
		fmt.Printf("  %-28s %8.1f ns/op\n", k, rep.Ops[k])
	}
	fmt.Printf("build: untraced %.2fs, traced %.2fs (+%.1f%%, %d spans, models bit-identical)\n",
		rep.Build.UntracedSec, rep.Build.TracedSec, rep.Build.OverheadPct, rep.Build.Spans)
	fmt.Printf("report written to %s\n", *outFile)
}
