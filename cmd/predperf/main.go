// Command predperf builds a predictive model for a benchmark workload
// using the paper's BuildRBFModel procedure (or the §6 adaptive-sampling
// extension), validates it on an independent random test set, and
// optionally compares it against the linear-regression baseline,
// predicts a specific configuration, or saves/loads the fitted model.
//
// Usage:
//
//	predperf -bench mcf -sample 90                 # build + validate
//	predperf -bench mcf -sample 90 -linear         # also fit the baseline
//	predperf -bench mcf -sample 90 -metric edp     # model energy-delay product
//	predperf -bench mcf -sample 90 -adaptive       # adaptive sampling at the same budget
//	predperf -bench mcf -sample 90 -save m.json    # persist the model
//	predperf -bench mcf -load m.json \
//	         -predict "depth=10,rob=96,iq=48,lsq=48,l2kb=4096,l2lat=8,il1kb=32,dl1kb=32,dl1lat=2"
//
// Observability (internal/obs): -report writes a machine-readable JSON
// run report (host info, per-stage wall-clock spans, pipeline counters
// such as simulations run vs. cache hits); -trace writes a Chrome
// trace-event JSON timeline of the standard (non-adaptive) build —
// LHS candidate scoring, per-design-point simulations, and (p_min, α)
// grid cells as nested parallel lanes, loadable in chrome://tracing or
// Perfetto; -progress prints periodic counter summaries to stderr
// during the build; -pprof serves net/http/pprof on the given address.
// None of these affect the built model.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strconv"
	"strings"
	"time"

	"predperf"
	"predperf/internal/adaptive"
	"predperf/internal/cluster"
	"predperf/internal/core"
	"predperf/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("predperf: ")

	bench := flag.String("bench", "mcf", "benchmark workload ("+strings.Join(predperf.Benchmarks(), ", ")+")")
	insts := flag.Int("insts", 150_000, "trace length in dynamic instructions")
	sampleSize := flag.Int("sample", 90, "training sample size (design points simulated)")
	testN := flag.Int("test", 50, "random test points for validation")
	candidates := flag.Int("lhs", 100, "latin hypercube candidates scored by discrepancy")
	seed := flag.Int64("seed", 1, "sampling seed")
	parallel := flag.Int("parallel", 0, "pipeline workers (0 = all CPUs, 1 = serial); the model is identical either way")
	metricName := flag.String("metric", "cpi", "response to model: cpi, epi, edp, or power")
	linear := flag.Bool("linear", false, "also fit and validate the linear baseline")
	adaptiveFlag := flag.Bool("adaptive", false, "use adaptive sampling (§6 extension) at the same budget")
	saveFile := flag.String("save", "", "write the fitted model to this file (JSON)")
	loadFile := flag.String("load", "", "load a model instead of building one")
	predict := flag.String("predict", "", "comma-separated config to predict, e.g. depth=12,rob=96,...")
	report := flag.String("report", "", "write a JSON run report (stage timings, counters, host info) to this file")
	traceFile := flag.String("trace", "", "write a Chrome trace-event JSON timeline of the build (load in chrome://tracing) to this file")
	progress := flag.Bool("progress", false, "print periodic pipeline counters to stderr")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	simWorkers := flag.String("sim-workers", "", "comma-separated simworker base URLs; when set, every simulation fans out to the evaluation farm instead of running in-process (the built model is bit-identical)")
	flag.Parse()

	if *report != "" || *progress || *pprofAddr != "" || *traceFile != "" {
		obs.Enable()
		obs.Reset()
	}
	if *report != "" {
		// Goroutine/heap/GC gauges land in the report alongside the
		// pipeline counters.
		obs.RegisterRuntimeMetrics()
	}
	// -trace attaches a run-scoped trace to the build context; every
	// stage span (sampling, per-design-point sims, RBF grid cells)
	// lands on it as a parent/child timeline. Tracing observes, never
	// perturbs: the built model is bit-identical either way.
	buildCtx := context.Background()
	var buildTrace *obs.Trace
	if *traceFile != "" {
		buildTrace = obs.NewTrace("")
		buildCtx = obs.WithTrace(buildCtx, buildTrace)
	}
	if *progress {
		stop := obs.StartProgress(os.Stderr, 2*time.Second)
		defer stop()
	}
	if *pprofAddr != "" {
		go func() {
			log.Printf("pprof: %v", http.ListenAndServe(*pprofAddr, nil))
		}()
	}

	metric, err := core.ParseMetric(*metricName)
	if err != nil {
		log.Fatal(err)
	}

	// The evaluator is either the in-process simulator or a view onto
	// the distributed evaluation farm; both are deterministic, so the
	// model built downstream is bit-identical either way.
	var (
		ev      core.Evaluator
		sims    func() int
		evalErr = func() error { return nil }
	)
	if *simWorkers != "" {
		var urls []string
		for _, u := range strings.Split(*simWorkers, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
		pool, err := cluster.NewPool(urls, cluster.PoolOptions{})
		if err != nil {
			log.Fatalf("-sim-workers: %v", err)
		}
		remote := cluster.NewRemoteEvaluator(pool, *bench, *insts, cluster.RemoteOptions{Metric: metric})
		ev, sims, evalErr = remote, remote.Simulations, remote.Err
		fmt.Printf("evaluation farm: %s\n", strings.Join(pool.Workers(), ", "))
	} else {
		base, err := core.NewSimEvaluator(*bench, *insts)
		if err != nil {
			log.Fatal(err)
		}
		ev, sims = base.WithMetric(metric), base.Simulations
	}
	opt := predperf.Options{LHSCandidates: *candidates, Seed: *seed, Parallel: *parallel}

	var m *predperf.Model
	switch {
	case *loadFile != "":
		f, err := os.Open(*loadFile)
		if err != nil {
			log.Fatal(err)
		}
		m, err = core.LoadModel(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		name := m.Name
		if name == "" {
			name = "(unnamed)"
		}
		fmt.Printf("loaded model %s from %s: %d training points, %d RBF centers\n",
			name, *loadFile, m.SampleSize, m.Fit.NumCenters())
	case *adaptiveFlag:
		fmt.Printf("adaptive build for %s (%s): budget %d simulations\n", *bench, metric, *sampleSize)
		var rounds []adaptive.Round
		m, rounds, err = adaptive.Build(ev, adaptive.Options{
			InitialSize: *sampleSize / 3,
			BatchSize:   *sampleSize / 6,
			MaxSize:     *sampleSize,
			Seed:        *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, rd := range rounds {
			fmt.Printf("  size %3d: cross-validation %.2f%%, %d centers\n", rd.Size, rd.CVMean, rd.Centers)
		}
	default:
		fmt.Printf("building RBF model for %s (%s): %d design points, %d-instruction traces\n",
			*bench, metric, *sampleSize, *insts)
		m, err = predperf.BuildModelCtx(buildCtx, ev, *sampleSize, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  sample discrepancy : %.5f\n", m.Discrepancy)
	}
	if m.Name == "" {
		// Stamp freshly built models with their workload so the persisted
		// header names the benchmark for predserve's registry.
		m.Name = *bench
	}
	fmt.Printf("  method parameters  : p_min=%d alpha=%.0f\n", m.Fit.PMin, m.Fit.Alpha)
	fmt.Printf("  RBF centers        : %d\n", m.Fit.NumCenters())

	ts := predperf.NewTestSet(ev, nil, *testN, *seed+77)
	st := m.Validate(ts)
	fmt.Printf("  validation (%d random points): mean %.2f%%, max %.2f%%, std %.2f%%\n",
		st.N, st.Mean, st.Max, st.Std)
	fmt.Printf("  simulations run    : %d\n", sims())
	// A farm failure surfaces as NaN evaluations; refuse to go on (and
	// in particular to persist) a model that may rest on missing data.
	if err := evalErr(); err != nil {
		log.Fatalf("remote evaluation failed: %v", err)
	}

	if *linear {
		lm, err := predperf.BuildLinearCtx(buildCtx, ev, *sampleSize, opt)
		if err != nil {
			log.Fatal(err)
		}
		lst := lm.Validate(ts)
		fmt.Printf("linear baseline: mean %.2f%%, max %.2f%% (%d terms kept)\n",
			lst.Mean, lst.Max, len(lm.Fit.Terms))
	}

	if *saveFile != "" {
		f, err := os.Create(*saveFile)
		if err != nil {
			log.Fatal(err)
		}
		if err := m.Save(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("model saved to %s\n", *saveFile)
	}

	if *predict != "" {
		cfg, err := parseConfig(*predict)
		if err != nil {
			log.Fatal(err)
		}
		pred := m.PredictConfig(cfg)
		actual := ev.Eval(cfg)
		fmt.Printf("prediction for %s\n", cfg)
		fmt.Printf("  model %s     : %.4f\n", metric, pred)
		fmt.Printf("  simulated %s : %.4f (error %.2f%%)\n", metric, actual,
			100*abs(pred-actual)/actual)
	}

	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			log.Fatal(err)
		}
		if err := buildTrace.WriteChromeTrace(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("chrome trace (%d spans, id %s) written to %s\n",
			buildTrace.Len(), buildTrace.ID(), *traceFile)
	}

	if *report != "" {
		rep := obs.Snapshot()
		rep.Meta = map[string]string{
			"cmd":    "predperf",
			"bench":  *bench,
			"metric": metric.String(),
			"sample": strconv.Itoa(*sampleSize),
			"insts":  strconv.Itoa(*insts),
		}
		f, err := os.Create(*report)
		if err != nil {
			log.Fatal(err)
		}
		if err := rep.Write(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("run report written to %s\n", *report)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// parseConfig reads "depth=12,rob=96,iq=48,lsq=48,l2kb=2048,l2lat=10,il1kb=32,dl1kb=32,dl1lat=2".
func parseConfig(s string) (predperf.Config, error) {
	cfg := predperf.Config{
		PipeDepth: 12, ROBSize: 96, IQSize: 48, LSQSize: 48,
		L2SizeKB: 2048, L2Lat: 10, IL1SizeKB: 32, DL1SizeKB: 32, DL1Lat: 2,
	}
	for _, kv := range strings.Split(s, ",") {
		parts := strings.SplitN(strings.TrimSpace(kv), "=", 2)
		if len(parts) != 2 {
			return cfg, fmt.Errorf("bad field %q", kv)
		}
		v, err := strconv.Atoi(parts[1])
		if err != nil {
			return cfg, fmt.Errorf("bad value in %q: %v", kv, err)
		}
		switch parts[0] {
		case "depth":
			cfg.PipeDepth = v
		case "rob":
			cfg.ROBSize = v
		case "iq":
			cfg.IQSize = v
		case "lsq":
			cfg.LSQSize = v
		case "l2kb":
			cfg.L2SizeKB = v
		case "l2lat":
			cfg.L2Lat = v
		case "il1kb":
			cfg.IL1SizeKB = v
		case "dl1kb":
			cfg.DL1SizeKB = v
		case "dl1lat":
			cfg.DL1Lat = v
		default:
			return cfg, fmt.Errorf("unknown field %q", parts[0])
		}
	}
	return cfg, nil
}
