// Command predrouter fronts a fleet of predserve shards: models are
// consistent-hash assigned to shards, prediction and search traffic is
// routed to the owning shard, and a shard failure fails over to the
// ring's secondary without the client noticing.
//
// Usage:
//
//	predserve -addr 127.0.0.1:9201 -models models   # shard A
//	predserve -addr 127.0.0.1:9202 -models models   # shard B
//	predrouter -shards 127.0.0.1:9201,127.0.0.1:9202
//
//	curl -X POST localhost:9300/v1/predict -d \
//	  '{"model":"mcf","config":{"depth":12,"rob":96,"iq":48,"lsq":48,"l2kb":2048,"l2lat":10,"il1kb":32,"dl1kb":32,"dl1lat":2}}'
//	curl localhost:9300/v1/models            # merged listing across shards
//	curl localhost:9300/statusz              # topology: shard health + model placement
//	curl localhost:9300/fleetz               # fleet-wide merged metrics + SLO burn
//	curl "localhost:9300/tracez?q=error"     # federated trace search across roles
//
// With -workers, the router also scrapes the evaluation farm's
// simworkers into /fleetz and includes them in /tracez search fan-out.
// /fleetz merges every role's /metricz report into one fleet aggregate
// (exact bucket-wise histogram sums) on the -fleet-scrape-every cadence
// and evaluates fleet SLO burn over the merged windows; when
// -trace-sample-max is above -trace-sample, that burn adaptively raises
// the edge trace-sampling rate until the incident resolves.
//
// The router polls every shard's /v1/models on -sync-every; the model
// generation vector piggybacked on those responses detects hot swaps
// (a load or retrain bumps the generation), and the router re-syncs the
// model's secondary shard with POST /v1/models/load so failover keeps
// serving current coefficients. This assumes the shards share the
// -models directory (bind mount, NFS, or same host).
//
// POST /v1/models/load through the router fans the load to the model's
// primary and secondary shards — both must host it for failover to
// work. 4xx answers from a shard are authoritative and relayed as-is;
// only transport errors, timeouts, and 5xx trigger failover.
//
// SIGINT/SIGTERM drains in-flight requests (deadline -drain) and exits
// 0 on a clean drain.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"predperf/internal/cluster"
	"predperf/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("predrouter: ")

	addr := flag.String("addr", "127.0.0.1:9300", "listen address (port 0 picks a free port)")
	shards := flag.String("shards", "", "comma-separated predserve shard base URLs (required)")
	workers := flag.String("workers", "", "comma-separated simworker base URLs scraped into /fleetz and searched by /tracez (the router routes no traffic to them)")
	replicas := flag.Int("replicas", cluster.DefaultReplicas, "virtual nodes per shard on the consistent-hash ring")
	timeout := flag.Duration("timeout", 30*time.Second, "per-attempt deadline against one shard")
	maxBody := flag.Int64("max-body", 1<<20, "request body size limit in bytes")
	syncEvery := flag.Duration("sync-every", 5*time.Second, "cadence of the /v1/models topology poll driving replica re-sync")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown deadline for in-flight requests")
	traceSample := flag.Float64("trace-sample", 1, "fraction of edge requests that record a distributed trace into /tracez (0 disables; the decision rides the traceparent header to every shard and worker)")
	traceSampleMax := flag.Float64("trace-sample-max", 0, "ceiling for SLO-burn-adaptive sampling: while a fleet SLO burns, the edge rate ramps from -trace-sample toward this value and decays back once the burn clears (0 keeps the rate static)")
	traceStore := flag.Int("trace-store", 64, "traces retained per /tracez class (errors, kept, reservoir sample)")
	fleetScrapeEvery := flag.Duration("fleet-scrape-every", 5*time.Second, "cadence of the /fleetz metrics federation across shards and workers (0 disables the background loop; /fleetz?refresh=1 still scrapes on demand)")
	flag.Parse()

	splitURLs := func(s string) []string {
		var out []string
		for _, u := range strings.Split(s, ",") {
			if u = strings.TrimSpace(u); u != "" {
				out = append(out, u)
			}
		}
		return out
	}
	urls := splitURLs(*shards)
	if len(urls) == 0 {
		log.Fatal("-shards is required (comma-separated predserve base URLs)")
	}

	obs.Enable()

	ts := *traceSample
	if ts <= 0 {
		ts = -1
	}
	scrape := *fleetScrapeEvery
	if scrape <= 0 {
		scrape = -1 // the Options zero value means "default", not "off"
	}
	rt, err := cluster.NewRouter(cluster.RouterOptions{
		Shards:              urls,
		Workers:             splitURLs(*workers),
		Replicas:            *replicas,
		RequestTimeout:      *timeout,
		MaxBodyBytes:        *maxBody,
		SyncInterval:        *syncEvery,
		TraceSample:         ts,
		TraceSampleMax:      *traceSampleMax,
		TraceStoreSize:      *traceStore,
		FleetScrapeInterval: scrape,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("ring: %s", strings.Join(rt.Ring().Shards(), ", "))

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	// The resolved address goes to stdout so scripts using -addr :0 can
	// discover the port.
	fmt.Printf("predrouter: listening on %s\n", l.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- rt.Serve(l) }()

	select {
	case err := <-serveErr:
		if err != nil {
			log.Fatal(err)
		}
	case <-ctx.Done():
		stop()
		log.Printf("signal received, draining (deadline %s)", *drain)
		if err := rt.Shutdown(*drain); err != nil {
			log.Fatalf("drain failed: %v", err)
		}
		<-serveErr
		log.Print("shut down cleanly")
	}
}
