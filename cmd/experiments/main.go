// Command experiments regenerates every table and figure of the paper's
// evaluation (§4) plus the ablation studies, printing each as a text
// table. -scale selects between the full paper-sized runs and a quick
// reduced-cost configuration; -out additionally writes the report to a
// file; -parallel bounds the worker goroutines used to fan independent
// benchmarks and sample sizes out (0 = all CPUs, 1 = serial — the
// rendered results are identical); -only restricts to a comma-separated
// subset of experiment ids
// (table1, figure2, table3, table4, table5, figure1, figure4, figure5,
// figure6, figure7, ablations, families, adaptive, significance, power,
// validation, extended, screening, statsim).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"predperf/internal/exper"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	scaleName := flag.String("scale", "paper", "experiment scale: paper or quick")
	out := flag.String("out", "", "also write the report to this file")
	only := flag.String("only", "", "comma-separated experiment ids to run (default: all)")
	parallel := flag.Int("parallel", 0, "worker goroutines for the fan-out (0 = all CPUs, 1 = serial); results are identical either way")
	flag.Parse()

	var scale exper.Scale
	switch *scaleName {
	case "paper":
		scale = exper.PaperScale()
	case "quick":
		scale = exper.QuickScale()
	default:
		log.Fatalf("unknown scale %q (want paper or quick)", *scaleName)
	}
	scale.Workers = *parallel

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	sel := func(id string) bool { return len(want) == 0 || want[id] }

	r := exper.NewRunner(scale)
	start := time.Now()
	fmt.Fprintf(w, "predperf experiment suite — scale=%s (traces: %d instructions)\n\n", scale.Name, scale.TraceLen)

	section := func(id string, run func() (fmt.Stringer, error)) {
		if !sel(id) {
			return
		}
		t0 := time.Now()
		res, err := run()
		if err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		fmt.Fprintf(w, "=== %s (%.1fs) ===\n%s\n", id, time.Since(t0).Seconds(), res)
	}

	section("table1", func() (fmt.Stringer, error) { return exper.RunTable1(), nil })
	section("figure2", func() (fmt.Stringer, error) { return exper.RunFigure2(r), nil })
	section("figure1", func() (fmt.Stringer, error) { return exper.RunFigure1(r, "vortex") })
	section("table3", func() (fmt.Stringer, error) { return exper.RunTable3(r) })
	section("table4", func() (fmt.Stringer, error) { return exper.RunTable4(r, "mcf") })
	section("table5", func() (fmt.Stringer, error) { return exper.RunTable5(r, "mcf", "vortex") })
	section("figure4", func() (fmt.Stringer, error) {
		benches := []string{"mcf", "twolf"}
		if scale.Name == "quick" {
			benches = scale.SweepBench
		}
		return exper.RunFigure4(r, benches...)
	})
	section("figure5", func() (fmt.Stringer, error) { return exper.RunFigure5(r, "mcf") })
	section("figure6", func() (fmt.Stringer, error) { return exper.RunFigure6(r, "vortex") })
	section("figure7", func() (fmt.Stringer, error) { return exper.RunFigure7(r, scale.SweepBench...) })
	section("ablations", func() (fmt.Stringer, error) { return exper.RunAblations(r, "mcf") })
	section("families", func() (fmt.Stringer, error) { return exper.RunFamilies(r, "mcf") })
	section("adaptive", func() (fmt.Stringer, error) { return exper.RunAdaptive(r, "mcf") })
	section("significance", func() (fmt.Stringer, error) { return exper.RunSignificance(r) })
	section("power", func() (fmt.Stringer, error) { return exper.RunPowerTable(r) })
	section("validation", func() (fmt.Stringer, error) { return exper.RunValidation(r, "mcf", "vortex") })
	section("extended", func() (fmt.Stringer, error) {
		benches := []string{"gzip", "gcc", "bzip2", "vpr"}
		return exper.RunExtended(r, benches)
	})
	section("screening", func() (fmt.Stringer, error) { return exper.RunScreening(r, "mcf") })
	section("statsim", func() (fmt.Stringer, error) { return exper.RunStatSim(r, "twolf") })

	fmt.Fprintf(w, "total: %.1fs\n", time.Since(start).Seconds())
}
