// Command experiments regenerates every table and figure of the paper's
// evaluation (§4) plus the ablation studies, printing each as a text
// table. -scale selects between the full paper-sized runs and a quick
// reduced-cost configuration; -out additionally writes the report to a
// file; -parallel bounds the worker goroutines used to fan independent
// benchmarks and sample sizes out (0 = all CPUs, 1 = serial — the
// rendered results are identical); -only restricts to a comma-separated
// subset of experiment ids
// (table1, figure2, table3, table4, table5, figure1, figure4, figure5,
// figure6, figure7, ablations, families, adaptive, significance, power,
// validation, extended, screening, statsim).
//
// Observability (internal/obs): -report writes a machine-readable JSON
// run report (host info, per-stage wall-clock spans, pipeline counters
// such as simulations run vs. cache hits); -progress prints periodic
// counter summaries to stderr while the suite runs; -pprof serves
// net/http/pprof on the given address for live profiling. None of these
// affect the computed results.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"
	"time"

	"predperf/internal/exper"
	"predperf/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run executes the suite; main is a thin wrapper so tests can drive the
// full CLI in-process.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	scaleName := fs.String("scale", "paper", "experiment scale: paper or quick")
	out := fs.String("out", "", "also write the report to this file")
	only := fs.String("only", "", "comma-separated experiment ids to run (default: all)")
	parallel := fs.Int("parallel", 0, "worker goroutines for the fan-out (0 = all CPUs, 1 = serial); results are identical either way")
	report := fs.String("report", "", "write a JSON run report (stage timings, counters, host info) to this file")
	progress := fs.Bool("progress", false, "print periodic pipeline counters to stderr")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var scale exper.Scale
	switch *scaleName {
	case "paper":
		scale = exper.PaperScale()
	case "quick":
		scale = exper.QuickScale()
	default:
		return fmt.Errorf("unknown scale %q (want paper or quick)", *scaleName)
	}
	scale.Workers = *parallel

	if *report != "" || *progress || *pprofAddr != "" {
		obs.Enable()
		obs.Reset()
	}
	if *progress {
		stop := obs.StartProgress(os.Stderr, 2*time.Second)
		defer stop()
	}
	if *pprofAddr != "" {
		go func() {
			log.Printf("pprof: %v", http.ListenAndServe(*pprofAddr, nil))
		}()
	}

	var w io.Writer = stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = io.MultiWriter(stdout, f)
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	sel := func(id string) bool { return len(want) == 0 || want[id] }

	r := exper.NewRunner(scale)
	start := time.Now()
	fmt.Fprintf(w, "predperf experiment suite — scale=%s (traces: %d instructions)\n\n", scale.Name, scale.TraceLen)

	var sectionErr error
	section := func(id string, run func() (fmt.Stringer, error)) {
		if sectionErr != nil || !sel(id) {
			return
		}
		end := obs.StartSpan("exper.section/" + id)
		t0 := time.Now()
		res, err := run()
		end()
		if err != nil {
			sectionErr = fmt.Errorf("%s: %w", id, err)
			return
		}
		fmt.Fprintf(w, "=== %s (%.1fs) ===\n%s\n", id, time.Since(t0).Seconds(), res)
	}

	section("table1", func() (fmt.Stringer, error) { return exper.RunTable1(), nil })
	section("figure2", func() (fmt.Stringer, error) { return exper.RunFigure2(r), nil })
	section("figure1", func() (fmt.Stringer, error) { return exper.RunFigure1(r, "vortex") })
	section("table3", func() (fmt.Stringer, error) { return exper.RunTable3(r) })
	section("table4", func() (fmt.Stringer, error) { return exper.RunTable4(r, "mcf") })
	section("table5", func() (fmt.Stringer, error) { return exper.RunTable5(r, "mcf", "vortex") })
	section("figure4", func() (fmt.Stringer, error) {
		benches := []string{"mcf", "twolf"}
		if scale.Name == "quick" {
			benches = scale.SweepBench
		}
		return exper.RunFigure4(r, benches...)
	})
	section("figure5", func() (fmt.Stringer, error) { return exper.RunFigure5(r, "mcf") })
	section("figure6", func() (fmt.Stringer, error) { return exper.RunFigure6(r, "vortex") })
	section("figure7", func() (fmt.Stringer, error) { return exper.RunFigure7(r, scale.SweepBench...) })
	section("ablations", func() (fmt.Stringer, error) { return exper.RunAblations(r, "mcf") })
	section("families", func() (fmt.Stringer, error) { return exper.RunFamilies(r, "mcf") })
	section("adaptive", func() (fmt.Stringer, error) { return exper.RunAdaptive(r, "mcf") })
	section("significance", func() (fmt.Stringer, error) { return exper.RunSignificance(r) })
	section("power", func() (fmt.Stringer, error) { return exper.RunPowerTable(r) })
	section("validation", func() (fmt.Stringer, error) { return exper.RunValidation(r, "mcf", "vortex") })
	section("extended", func() (fmt.Stringer, error) {
		benches := []string{"gzip", "gcc", "bzip2", "vpr"}
		return exper.RunExtended(r, benches)
	})
	section("screening", func() (fmt.Stringer, error) { return exper.RunScreening(r, "mcf") })
	section("statsim", func() (fmt.Stringer, error) { return exper.RunStatSim(r, "twolf") })
	if sectionErr != nil {
		return sectionErr
	}

	fmt.Fprintf(w, "total: %.1fs\n", time.Since(start).Seconds())

	if *report != "" {
		rep := obs.Snapshot()
		rep.Meta = map[string]string{
			"cmd":      "experiments",
			"scale":    scale.Name,
			"only":     *only,
			"parallel": fmt.Sprint(*parallel),
		}
		f, err := os.Create(*report)
		if err != nil {
			return err
		}
		if err := rep.Write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "run report written to %s\n", *report)
	}
	return nil
}
