package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"predperf/internal/obs"
)

// TestRunEmitsReport drives the full CLI in-process at quick scale on a
// cheap simulating experiment and validates the -report output: the
// JSON must round-trip through obs.ReadReport and contain per-stage
// spans plus the simulations/cache-hit counters.
func TestRunEmitsReport(t *testing.T) {
	dir := t.TempDir()
	reportFile := filepath.Join(dir, "report.json")

	var out bytes.Buffer
	err := run([]string{
		"-scale", "quick",
		"-only", "figure1",
		"-report", reportFile,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "=== figure1") {
		t.Fatalf("experiment output missing figure1 section:\n%s", out.String())
	}

	f, err := os.Open(reportFile)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rep, err := obs.ReadReport(f)
	if err != nil {
		t.Fatal(err)
	}

	if rep.Host.CPUs < 1 || rep.Host.GoVersion == "" {
		t.Fatalf("host info not populated: %+v", rep.Host)
	}
	if rep.Meta["cmd"] != "experiments" || rep.Meta["scale"] != "quick" {
		t.Fatalf("meta not populated: %v", rep.Meta)
	}

	// Per-stage spans: the section itself plus the evaluator build it
	// triggered must be timed.
	for _, stage := range []string{"exper.section/figure1", "exper.evaluator/vortex"} {
		st, ok := rep.Stages[stage]
		if !ok {
			t.Fatalf("report missing stage %q; have %v", stage, rep.Stages)
		}
		if st.Count < 1 || st.TotalSec < 0 {
			t.Fatalf("stage %q has implausible stats %+v", stage, st)
		}
	}

	// Pipeline counters: figure1 simulates a fresh grid, so sims and
	// evals must be positive; the cache counters must at least be
	// present in the schema.
	if rep.Counters["core.sims_run"] <= 0 {
		t.Fatalf("core.sims_run = %d, want > 0", rep.Counters["core.sims_run"])
	}
	if rep.Counters["core.evals"] < rep.Counters["core.sims_run"] {
		t.Fatalf("evals %d < sims %d", rep.Counters["core.evals"], rep.Counters["core.sims_run"])
	}
	for _, c := range []string{"core.sim_cache_hits", "core.singleflight_waits", "sample.lhs_candidates", "rbf.grid_cells"} {
		if _, ok := rep.Counters[c]; !ok {
			t.Fatalf("report missing counter %q; have %v", c, rep.Counters)
		}
	}
}

func TestRunRejectsUnknownScale(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scale", "bogus"}, &out); err == nil ||
		!strings.Contains(err.Error(), "unknown scale") {
		t.Fatalf("want unknown-scale error, got %v", err)
	}
}
