// Command tracegen generates a synthetic benchmark trace and prints its
// statistical profile — instruction mix, code/data footprints, branch
// behavior, dependency distances — so the workload substrate can be
// inspected and compared against the characteristics the profiles claim
// to model.
//
// Usage:
//
//	tracegen -bench mcf -insts 100000
//	tracegen -list
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"predperf/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")

	bench := flag.String("bench", "mcf", "benchmark profile")
	insts := flag.Int("insts", 100_000, "trace length in dynamic instructions")
	seed := flag.Uint64("seed", 1, "generation seed")
	list := flag.Bool("list", false, "list available profiles and exit")
	out := flag.String("o", "", "also write the trace in binary form to this file")
	flag.Parse()

	if *list {
		fmt.Println("paper benchmarks :", strings.Join(trace.Names(), ", "))
		fmt.Println("extra benchmarks :", strings.Join(trace.ExtraNames(), ", "))
		return
	}

	p, ok := trace.ByName(*bench)
	if !ok {
		log.Fatalf("unknown benchmark %q (use -list)", *bench)
	}
	tr := trace.Generate(p, *insts, *seed)

	fmt.Printf("benchmark : %s (%d instructions, seed %d)\n\n", *bench, len(tr), *seed)

	// Instruction mix.
	mix := tr.Mix()
	type mrow struct {
		op   trace.Op
		frac float64
	}
	var rows []mrow
	for op, f := range mix {
		rows = append(rows, mrow{op, f})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].frac > rows[j].frac })
	fmt.Println("instruction mix:")
	for _, r := range rows {
		fmt.Printf("  %-8s %6.2f%%\n", r.op, 100*r.frac)
	}

	// Footprints and branch behavior.
	codeLines := map[uint64]bool{}
	dataLines := map[uint64]bool{}
	branches, taken := 0, 0
	loads, chasedLoads := 0, 0
	var depSum, depCount float64
	isLoad := make([]bool, len(tr))
	for i, in := range tr {
		isLoad[i] = in.Op == trace.Load
	}
	for i, in := range tr {
		codeLines[in.PC>>6] = true
		if in.Op.IsMem() {
			dataLines[in.Addr>>6] = true
		}
		if in.Op == trace.Branch {
			branches++
			if in.Taken {
				taken++
			}
		}
		if in.Op == trace.Load {
			loads++
			if in.Dep1 > 0 && isLoad[i-int(in.Dep1)] {
				chasedLoads++
			}
		}
		if in.Dep1 > 0 {
			depSum += float64(in.Dep1)
			depCount++
		}
		if in.Dep2 > 0 {
			depSum += float64(in.Dep2)
			depCount++
		}
	}
	fmt.Printf("\ncode footprint : %d lines (%.1f KB)\n", len(codeLines), float64(len(codeLines))/16)
	fmt.Printf("data footprint : %d lines (%.1f KB)\n", len(dataLines), float64(len(dataLines))/16)
	fmt.Printf("branches       : %d (%.1f%% taken)\n", branches, 100*float64(taken)/float64(max(branches, 1)))
	fmt.Printf("loads          : %d (%.1f%% load→load chained)\n", loads, 100*float64(chasedLoads)/float64(max(loads, 1)))
	fmt.Printf("mean dep dist  : %.2f instructions\n", depSum/maxF(depCount, 1))

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		n, err := tr.WriteTo(f)
		if err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %d bytes to %s\n", n, *out)
	}
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
