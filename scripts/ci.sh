#!/usr/bin/env bash
# Tier-1 CI gate: formatting, vet, build, the full test suite under the
# race detector, and a one-iteration benchmark smoke pass so the
# instrumented hot paths keep compiling and running. Run from anywhere
# inside the repository.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== benchmark smoke (1 iteration each) =="
go test -run=NONE -bench=. -benchtime=1x ./...

echo "== predserve smoke =="
smoke_dir=$(mktemp -d)
smoke_pid=""
cleanup_smoke() {
    [ -n "$smoke_pid" ] && kill "$smoke_pid" 2>/dev/null || true
    rm -rf "$smoke_dir"
}
trap cleanup_smoke EXIT
go run ./cmd/predperf -bench mcf -insts 2000 -sample 12 -lhs 8 -test 4 \
    -save "$smoke_dir/mcf.json" -trace "$smoke_dir/build-trace.json" > /dev/null
# The -trace flag must emit loadable Chrome trace-event JSON with nested
# build spans.
grep -q '"traceEvents"' "$smoke_dir/build-trace.json"
grep -q '"name": "core.build_rbf"' "$smoke_dir/build-trace.json"
grep -q '"name": "core.sim_point"' "$smoke_dir/build-trace.json"
go build -o "$smoke_dir/predserve" ./cmd/predserve
# -version prints build info without serving.
"$smoke_dir/predserve" -version | grep -q 'model-format'
# Start with an EMPTY model directory so /readyz goes through its full
# lifecycle, and shadow-verify 100% of served predictions on the
# simulator (same trace length the model was built with).
mkdir "$smoke_dir/models"
"$smoke_dir/predserve" -addr 127.0.0.1:0 -models "$smoke_dir/models" \
    -shadow-frac 1.0 -shadow-workers 1 -search-insts 2000 \
    -slo-latency 250ms -slo-availability 0.999 \
    -coalesce-window 5ms -coalesce-max 64 \
    > "$smoke_dir/predserve.log" 2>&1 &
smoke_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^predserve: listening on //p' "$smoke_dir/predserve.log")
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "predserve did not start:" >&2
    cat "$smoke_dir/predserve.log" >&2
    exit 1
fi
curl -fsS "http://$addr/healthz" | grep -q '"status": "ok"'
# /healthz carries build info.
curl -fsS "http://$addr/healthz" | grep -q '"go_version"'
# Every response carries an X-Request-Id (generated here; echoed if sent).
curl -fsS -D - -o /dev/null "http://$addr/healthz" | grep -qi '^x-request-id:'
# Empty registry: alive but not ready, with a structured reason.
code=$(curl -s -o "$smoke_dir/readyz.json" -w '%{http_code}' "http://$addr/readyz")
if [ "$code" != 503 ]; then
    echo "readyz before load returned $code, want 503" >&2
    exit 1
fi
grep -q '"no_models"' "$smoke_dir/readyz.json"
# Hot-load the model, after which the server must report ready.
cp "$smoke_dir/mcf.json" "$smoke_dir/models/mcf.json"
curl -fsS -X POST "http://$addr/v1/models/load" -d '{"path":"mcf.json"}' \
    | grep -q '"mcf"'
curl -fsS "http://$addr/readyz" | grep -q '"ready"'
curl -fsS -X POST "http://$addr/v1/predict" \
    -d '{"model":"mcf","config":{"depth":12,"rob":96,"iq":48,"lsq":48,"l2kb":2048,"l2lat":10,"il1kb":32,"dl1kb":32,"dl1lat":2}}' \
    | grep -q '"value"'
# Prometheus exposition must include at least one latency histogram series
# plus the windowed-rate gauges. Fetch once to a file: grep -q on a pipe
# closes it mid-body and set -o pipefail turns curl's EPIPE into a failure.
curl -fsS "http://$addr/metricz?format=prom" > "$smoke_dir/metricz.prom"
grep -q '_bucket{' "$smoke_dir/metricz.prom"
grep -q '^serve_http_request_seconds_count' "$smoke_dir/metricz.prom"
grep -q 'window="5m"' "$smoke_dir/metricz.prom"
grep -q '^slo_burn_rate' "$smoke_dir/metricz.prom"
# Traced requests leave OpenMetrics exemplars on the latency buckets.
grep -q 'trace_id=' "$smoke_dir/metricz.prom"
# With -shadow-frac 1.0 the served prediction is re-simulated in the
# background; wait for its error to land in the per-model histogram.
shadow_ok=""
for _ in $(seq 1 50); do
    curl -fsS "http://$addr/metricz?format=prom" > "$smoke_dir/metricz.prom"
    if grep -q 'serve_shadow_error_pct_bucket{model="mcf"' "$smoke_dir/metricz.prom"; then
        shadow_ok=1
        break
    fi
    sleep 0.2
done
if [ -z "$shadow_ok" ]; then
    echo "shadow error histogram never appeared in /metricz?format=prom" >&2
    exit 1
fi
# /statusz is a self-contained HTML dashboard with the model table.
curl -fsS "http://$addr/statusz" > "$smoke_dir/statusz.html"
grep -q '<!DOCTYPE html>' "$smoke_dir/statusz.html"
grep -q 'predserve status' "$smoke_dir/statusz.html"
grep -q 'mcf' "$smoke_dir/statusz.html"
# /alertz lists alert history as JSON (the no_models alert fired and
# resolved above).
curl -fsS "http://$addr/alertz" | grep -q '"alerts"'
curl -fsS "http://$addr/alertz" | grep -q '"no_models"'
# Coalescing: concurrent single predictions (admitted through the
# micro-batch coalescer) and one direct batch over the same fresh
# configurations must produce byte-for-byte identical values. The batch
# response preserves request order, so concatenating the single values
# in send order must reproduce it exactly.
cfg_a='{"depth":18,"rob":64,"iq":32,"lsq":32,"l2kb":1024,"l2lat":12,"il1kb":16,"dl1kb":16,"dl1lat":1}'
cfg_b='{"depth":24,"rob":128,"iq":64,"lsq":64,"l2kb":4096,"l2lat":16,"il1kb":64,"dl1kb":64,"dl1lat":4}'
curl -fsS -X POST "http://$addr/v1/predict" \
    -d "{\"model\":\"mcf\",\"config\":$cfg_a}" > "$smoke_dir/single_a.json" &
single_a_pid=$!
curl -fsS -X POST "http://$addr/v1/predict" \
    -d "{\"model\":\"mcf\",\"config\":$cfg_b}" > "$smoke_dir/single_b.json" &
single_b_pid=$!
wait "$single_a_pid" "$single_b_pid"
curl -fsS -X POST "http://$addr/v1/predict" \
    -d "{\"model\":\"mcf\",\"configs\":[$cfg_a,$cfg_b]}" > "$smoke_dir/batch.json"
vals_single=$(grep -h -o '"value": [^,}]*' "$smoke_dir/single_a.json" "$smoke_dir/single_b.json")
vals_batch=$(grep -h -o '"value": [^,}]*' "$smoke_dir/batch.json")
if [ -z "$vals_batch" ] || [ "$vals_single" != "$vals_batch" ]; then
    echo "coalesced singles and direct batch disagree:" >&2
    echo "singles: $vals_single" >&2
    echo "batch:   $vals_batch" >&2
    exit 1
fi
# The coalescer's flush counter must show up in the Prometheus export
# (fetched to a file: grep -q on a pipe + pipefail trips curl EPIPE).
curl -fsS "http://$addr/metricz?format=prom" > "$smoke_dir/metricz.prom"
grep -q 'serve_coalesce_flushes' "$smoke_dir/metricz.prom"
kill -TERM "$smoke_pid"
wait "$smoke_pid"   # non-zero (unclean drain) fails the gate via set -e
smoke_pid=""
grep -q "shut down cleanly" "$smoke_dir/predserve.log"
# The access log (default: stderr) must have JSON lines with request ids.
grep -q '"id":' "$smoke_dir/predserve.log"

echo "== retrain smoke =="
# Closed-loop lifecycle: serve a deliberately weak model (8-point fit)
# with full shadow verification and a drift threshold its real error is
# certain to exceed, then let the retrain controller rebuild it at an
# escalated sample size and hot-swap the winner.
mkdir "$smoke_dir/models2"
go run ./cmd/predperf -bench mcf -insts 2000 -sample 8 -lhs 4 -test 2 \
    -save "$smoke_dir/models2/mcf.json" > /dev/null
"$smoke_dir/predserve" -addr 127.0.0.1:0 -models "$smoke_dir/models2" \
    -shadow-frac 1.0 -shadow-workers 1 -search-insts 2000 \
    -shadow-err-pct 0.5 \
    -retrain -retrain-sizes 16 -retrain-target-pct 10000 \
    -retrain-after 1ms -retrain-poll 200ms -retrain-cooldown 1m \
    -retrain-test-points 6 -retrain-workers 2 \
    > "$smoke_dir/retrain.log" 2>&1 &
smoke_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^predserve: listening on //p' "$smoke_dir/retrain.log")
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "predserve (retrain smoke) did not start:" >&2
    cat "$smoke_dir/retrain.log" >&2
    exit 1
fi
# One batch of 12 distinct configurations: enough shadow samples to
# cross the drift minimum (10) in a single request.
retrain_cfgs=""
for rob in 32 48 64 80 96 112 128 144 160 176 192 208; do
    cfg="{\"depth\":14,\"rob\":$rob,\"iq\":$((rob / 2)),\"lsq\":$((rob / 2)),\"l2kb\":1024,\"l2lat\":12,\"il1kb\":32,\"dl1kb\":32,\"dl1lat\":2}"
    retrain_cfgs="$retrain_cfgs${retrain_cfgs:+,}$cfg"
done
curl -fsS -X POST "http://$addr/v1/predict" \
    -d "{\"model\":\"mcf\",\"configs\":[$retrain_cfgs]}" | grep -q '"value"'
# Drift fires, the controller rebuilds at size 16, and the success
# counter appears in the Prometheus export.
retrain_ok=""
for _ in $(seq 1 100); do
    curl -fsS "http://$addr/metricz?format=prom" > "$smoke_dir/retrain.prom"
    if grep -q 'serve_retrains{model="mcf",outcome="success"}' "$smoke_dir/retrain.prom"; then
        retrain_ok=1
        break
    fi
    sleep 0.3
done
if [ -z "$retrain_ok" ]; then
    echo "serve_retrains success counter never appeared:" >&2
    cat "$smoke_dir/retrain.log" >&2
    tail -20 "$smoke_dir/retrain.prom" >&2
    exit 1
fi
# The swap cleared the drift (fresh window for the new generation), so
# readiness recovers, and the listing shows the retrained generation at
# the escalated sample size.
curl -fsS "http://$addr/readyz" | grep -q '"ready"'
curl -fsS "http://$addr/v1/models" > "$smoke_dir/retrain-models.json"
grep -q '"generation": 2' "$smoke_dir/retrain-models.json"
grep -q '"sample_size": 16' "$smoke_dir/retrain-models.json"
# The retrained model was persisted back into the model directory.
grep -q '"sample_size": 16' "$smoke_dir/models2/mcf.json" ||
    grep -q '"sample_size":16' "$smoke_dir/models2/mcf.json"
kill -TERM "$smoke_pid"
wait "$smoke_pid"
smoke_pid=""
grep -q "shut down cleanly" "$smoke_dir/retrain.log"

echo "== cluster smoke =="
# Distributed evaluation farm: two sim workers, a distributed model
# build that survives losing one of them mid-flight, and a predserve
# shard fronted by the consistent-hash router.
go build -o "$smoke_dir/simworker" ./cmd/simworker
go build -o "$smoke_dir/predrouter" ./cmd/predrouter
worker_pids=""
cleanup_cluster() {
    for pid in $worker_pids; do kill "$pid" 2>/dev/null || true; done
    cleanup_smoke
}
trap cleanup_cluster EXIT
"$smoke_dir/simworker" -addr 127.0.0.1:0 -id w1 > "$smoke_dir/worker1.log" 2>&1 &
w1_pid=$!
"$smoke_dir/simworker" -addr 127.0.0.1:0 -id w2 > "$smoke_dir/worker2.log" 2>&1 &
w2_pid=$!
worker_pids="$w1_pid $w2_pid"
w1=""; w2=""
for _ in $(seq 1 50); do
    w1=$(sed -n 's/^simworker: listening on //p' "$smoke_dir/worker1.log")
    w2=$(sed -n 's/^simworker: listening on //p' "$smoke_dir/worker2.log")
    [ -n "$w1" ] && [ -n "$w2" ] && break
    sleep 0.1
done
if [ -z "$w1" ] || [ -z "$w2" ]; then
    echo "sim workers did not start:" >&2
    cat "$smoke_dir/worker1.log" "$smoke_dir/worker2.log" >&2
    exit 1
fi
curl -fsS "http://$w1/healthz" | grep -q '"simworker"'
# Distributed build through the farm, killing worker 1 immediately: the
# pool must retry its in-flight chunks against worker 2 and the build
# must still complete and persist a loadable model.
mkdir "$smoke_dir/models3"
go run ./cmd/predperf -bench mcf -insts 2000 -sample 12 -lhs 8 -test 4 \
    -sim-workers "$w1,$w2" \
    -save "$smoke_dir/models3/mcf.json" > "$smoke_dir/farmbuild.log" 2>&1 &
build_pid=$!
kill -KILL "$w1_pid"
if ! wait "$build_pid"; then
    echo "distributed build failed after losing a worker:" >&2
    cat "$smoke_dir/farmbuild.log" >&2
    exit 1
fi
worker_pids="$w2_pid"
grep -q '"name":"mcf"' "$smoke_dir/models3/mcf.json"
# A predserve shard over the farm-built model, fronted by the router.
# The shard's simulator consumers fan out to the surviving worker so a
# simulator-verified search crosses all three roles in one trace.
"$smoke_dir/predserve" -addr 127.0.0.1:0 -models "$smoke_dir/models3" \
    -sim-workers "$w2" -search-insts 2000 \
    > "$smoke_dir/shard.log" 2>&1 &
shard_pid=$!
worker_pids="$worker_pids $shard_pid"
shard=""
for _ in $(seq 1 50); do
    shard=$(sed -n 's/^predserve: listening on //p' "$smoke_dir/shard.log")
    [ -n "$shard" ] && break
    sleep 0.1
done
[ -n "$shard" ] || { echo "cluster shard did not start" >&2; cat "$smoke_dir/shard.log" >&2; exit 1; }
"$smoke_dir/predrouter" -addr 127.0.0.1:0 -shards "$shard" \
    > "$smoke_dir/router.log" 2>&1 &
router_pid=$!
worker_pids="$worker_pids $router_pid"
router=""
for _ in $(seq 1 50); do
    router=$(sed -n 's/^predrouter: listening on //p' "$smoke_dir/router.log")
    [ -n "$router" ] && break
    sleep 0.1
done
[ -n "$router" ] || { echo "predrouter did not start" >&2; cat "$smoke_dir/router.log" >&2; exit 1; }
# Prediction through the router must match the shard's own answer.
curl -fsS -X POST "http://$router/v1/predict" \
    -d '{"model":"mcf","config":{"depth":12,"rob":96,"iq":48,"lsq":48,"l2kb":2048,"l2lat":10,"il1kb":32,"dl1kb":32,"dl1lat":2}}' \
    > "$smoke_dir/routed.json"
grep -q '"value"' "$smoke_dir/routed.json"
curl -fsS "http://$router/v1/models" | grep -q '"mcf"'
curl -fsS "http://$router/statusz" > "$smoke_dir/router-statusz.html"
grep -q 'predrouter' "$smoke_dir/router-statusz.html"
# A simulator-verified search through the router crosses every role
# (router → shard → worker); the router's /tracez must hold ONE merged
# trace whose span forest spans all three.
curl -fsS -X POST "http://$router/v1/search" \
    -d '{"model":"mcf","verify":"sim"}' > "$smoke_dir/routed-search.json"
grep -q '"best"' "$smoke_dir/routed-search.json"
grep -q '"verified_by": "simulator"' "$smoke_dir/routed-search.json"
curl -fsS "http://$router/tracez?format=json&route=/v1/search" > "$smoke_dir/tracez.json"
tid=$(grep -o '"id":"[^"]*"' "$smoke_dir/tracez.json" | head -1 | cut -d'"' -f4)
[ -n "$tid" ] || { echo "router /tracez holds no /v1/search trace" >&2; cat "$smoke_dir/tracez.json" >&2; exit 1; }
curl -fsS "http://$router/tracez?id=$tid&format=json" > "$smoke_dir/trace.json"
grep -q '"router.forward"' "$smoke_dir/trace.json"
grep -q '"serve.search"' "$smoke_dir/trace.json"
grep -q '"cluster.worker_eval"' "$smoke_dir/trace.json"
# The merged trace exports as one loadable Chrome timeline.
curl -fsS "http://$router/tracez?id=$tid&format=chrome" > "$smoke_dir/routed-trace.json"
grep -q '"traceEvents"' "$smoke_dir/routed-trace.json"
# Clean SIGTERM drain of every role.
for pid in $router_pid $shard_pid $w2_pid; do
    kill -TERM "$pid"
    wait "$pid"
done
worker_pids=""
grep -q "shut down cleanly" "$smoke_dir/router.log"
grep -q "shut down cleanly" "$smoke_dir/shard.log"
grep -q "shut down cleanly" "$smoke_dir/worker2.log"

echo "== fleet observability smoke =="
# Fleet plane: 2 shards + 2 workers behind the router. /fleetz must
# aggregate both shards' request counters, the router's /tracez?q= must
# find a cross-role trace and export it as one merged Chrome timeline,
# and an induced SLO burn must adaptively raise the trace-sampling rate
# and decay it back once good traffic dilutes the burn.
predbody='{"model":"mcf","config":{"depth":12,"rob":96,"iq":48,"lsq":48,"l2kb":2048,"l2lat":10,"il1kb":32,"dl1kb":32,"dl1lat":2}}'
"$smoke_dir/simworker" -addr 127.0.0.1:0 -id fw1 > "$smoke_dir/fworker1.log" 2>&1 &
fw1_pid=$!
"$smoke_dir/simworker" -addr 127.0.0.1:0 -id fw2 > "$smoke_dir/fworker2.log" 2>&1 &
fw2_pid=$!
"$smoke_dir/predserve" -addr 127.0.0.1:0 -models "$smoke_dir/models3" \
    -search-insts 50000 -access-log off > "$smoke_dir/fshard1.log" 2>&1 &
fs1_pid=$!
"$smoke_dir/predserve" -addr 127.0.0.1:0 -models "$smoke_dir/models3" \
    -search-insts 50000 -access-log off > "$smoke_dir/fshard2.log" 2>&1 &
fs2_pid=$!
worker_pids="$fw1_pid $fw2_pid $fs1_pid $fs2_pid"
fw1=""; fw2=""; fs1=""; fs2=""
for _ in $(seq 1 50); do
    fw1=$(sed -n 's/^simworker: listening on //p' "$smoke_dir/fworker1.log")
    fw2=$(sed -n 's/^simworker: listening on //p' "$smoke_dir/fworker2.log")
    fs1=$(sed -n 's/^predserve: listening on //p' "$smoke_dir/fshard1.log")
    fs2=$(sed -n 's/^predserve: listening on //p' "$smoke_dir/fshard2.log")
    [ -n "$fw1" ] && [ -n "$fw2" ] && [ -n "$fs1" ] && [ -n "$fs2" ] && break
    sleep 0.1
done
if [ -z "$fw1" ] || [ -z "$fw2" ] || [ -z "$fs1" ] || [ -z "$fs2" ]; then
    echo "fleet roles did not start" >&2
    exit 1
fi
"$smoke_dir/predrouter" -addr 127.0.0.1:0 -shards "$fs1,$fs2" -workers "$fw1,$fw2" \
    -trace-sample 0.02 -trace-sample-max 1 -fleet-scrape-every 200ms \
    > "$smoke_dir/frouter.log" 2>&1 &
fr_pid=$!
worker_pids="$worker_pids $fr_pid"
fr=""
for _ in $(seq 1 50); do
    fr=$(sed -n 's/^predrouter: listening on //p' "$smoke_dir/frouter.log")
    [ -n "$fr" ] && break
    sleep 0.1
done
[ -n "$fr" ] || { echo "fleet router did not start" >&2; cat "$smoke_dir/frouter.log" >&2; exit 1; }
# Two predictions against each shard directly, so each shard's own
# request counter is non-zero and the merged total must cover both.
for s in "$fs1" "$fs2"; do
    curl -fsS -X POST "http://$s/v1/predict" -d "$predbody" > /dev/null
    curl -fsS -X POST "http://$s/v1/predict" -d "$predbody" > /dev/null
done
curl -fsS "http://$fr/fleetz?refresh=1&format=json" > "$smoke_dir/fleetz.json"
grep -q '"fleet-latency"' "$smoke_dir/fleetz.json"
grep -q '"fleet-availability"' "$smoke_dir/fleetz.json"
# All four scraped roles (2 shards + 2 workers) healthy in the rollup.
healthy=$(grep -c '"healthy": true' "$smoke_dir/fleetz.json")
if [ "$healthy" != 4 ]; then
    echo "fleet rollup has $healthy healthy roles, want 4:" >&2
    cat "$smoke_dir/fleetz.json" >&2
    exit 1
fi
# The merged aggregate covers at least the 4 direct predictions — the
# shard processes don't share a registry, so this is a genuine
# cross-process sum.
merged_reqs=$(grep -o '"serve.requests_total": [0-9]*' "$smoke_dir/fleetz.json" | head -1 | awk '{print $2}')
if [ -z "$merged_reqs" ] || [ "$merged_reqs" -lt 4 ]; then
    echo "merged serve.requests_total = '$merged_reqs', want >= 4" >&2
    exit 1
fi
# The HTML view renders the same plane (fetched to a file: grep -q on a
# pipe + pipefail trips curl EPIPE).
curl -fsS "http://$fr/fleetz" > "$smoke_dir/fleetz.html"
grep -q 'fleet status' "$smoke_dir/fleetz.html"
# Cross-role trace: a routed predict carrying a sampled traceparent is
# retained on router and shard under one ID; the router's federated
# search must find it and export one merged Chrome timeline.
curl -fsS -X POST "http://$fr/v1/predict" \
    -H 'Traceparent: 00-fleettrace01-0000000000000007-01' \
    -H 'X-Request-Id: fleettrace01' -d "$predbody" > /dev/null
curl -fsS "http://$fr/tracez?format=json&q=fleettrace01" > "$smoke_dir/fleet-tracez.json"
grep -q 'fleettrace01' "$smoke_dir/fleet-tracez.json"
grep -q '"router"' "$smoke_dir/fleet-tracez.json"
grep -q '"shard ' "$smoke_dir/fleet-tracez.json"
curl -fsS "http://$fr/tracez?id=fleettrace01&format=chrome" > "$smoke_dir/fleet-trace.json"
grep -q '"traceEvents"' "$smoke_dir/fleet-trace.json"
# Induce an SLO burn: simulator-verified searches at 50k instructions
# run well past the 250ms latency threshold, so with only a handful of
# good requests in the windows both burn rates blow through the paging
# threshold and the sampler must ramp above its 0.02 base.
sample_rate() {
    curl -fsS "http://$fr/metricz?format=prom" | awk '/^obs_trace_sample_rate/ {print $2}'
}
for _ in 1 2 3; do
    curl -fsS -X POST "http://$fr/v1/search" -d '{"model":"mcf","verify":"sim"}' > /dev/null
done
burned=""
for _ in $(seq 1 50); do
    rate=$(sample_rate)
    if awk -v r="$rate" 'BEGIN { exit !(r > 0.03) }'; then
        burned=1
        break
    fi
    sleep 0.3
done
if [ -z "$burned" ]; then
    echo "trace sample rate never ramped above base under SLO burn (last: $(sample_rate))" >&2
    curl -fsS "http://$fr/fleetz?format=json" >&2
    exit 1
fi
# Flood good traffic to dilute the windowed bad fraction below the burn
# threshold; once the burn clears, the sampler must decay back to base.
for _ in $(seq 1 300); do
    curl -fsS -X POST "http://$fr/v1/predict" -d "$predbody" > /dev/null
done
decayed=""
for _ in $(seq 1 60); do
    rate=$(sample_rate)
    if awk -v r="$rate" 'BEGIN { exit !(r <= 0.02) }'; then
        decayed=1
        break
    fi
    sleep 0.3
done
if [ -z "$decayed" ]; then
    echo "trace sample rate never decayed to base after the burn cleared (last: $(sample_rate))" >&2
    curl -fsS "http://$fr/fleetz?format=json" >&2
    exit 1
fi
# Clean SIGTERM drain of every fleet role.
for pid in $fr_pid $fs1_pid $fs2_pid $fw1_pid $fw2_pid; do
    kill -TERM "$pid"
    wait "$pid"
done
worker_pids=""
grep -q "shut down cleanly" "$smoke_dir/frouter.log"
grep -q "shut down cleanly" "$smoke_dir/fshard1.log"
grep -q "shut down cleanly" "$smoke_dir/fshard2.log"

echo "== cluster throughput report =="
go run ./cmd/benchcluster -insts 2000 -configs 8 -chunk 2 -workers 1,2 \
    -router-iters 20 -out "$smoke_dir/BENCH_cluster.json" > /dev/null
grep -q '"bit_identical_remote_vs_local": true' "$smoke_dir/BENCH_cluster.json"
grep -q '"speedup_vs_one_worker"' "$smoke_dir/BENCH_cluster.json"

echo "== obs overhead report =="
go run ./cmd/benchobs -iters 100000 -repeats 1 -sample 20 -insts 5000 \
    -out "$smoke_dir/BENCH_obs.json" > /dev/null
grep -q '"ops_ns"' "$smoke_dir/BENCH_obs.json"
grep -q '"request_sampled_off"' "$smoke_dir/BENCH_obs.json"
grep -q '"trace_store_retention"' "$smoke_dir/BENCH_obs.json"
grep -q '"fleet_merge_4_reports"' "$smoke_dir/BENCH_obs.json"
grep -q '"trace_search_fanout_2"' "$smoke_dir/BENCH_obs.json"

echo "== predict throughput report =="
go run ./cmd/benchpredict -insts 2000 -sample 12 -lhs 4 -mintime 10ms \
    -http-iters 2 -batches 1,4 -out "$smoke_dir/BENCH_predict.json" > /dev/null
grep -q '"vectorized_ops_per_sec"' "$smoke_dir/BENCH_predict.json"
grep -q '"ratio_vectorized_over_scalar"' "$smoke_dir/BENCH_predict.json"
grep -q '"bit_identical_all_paths": true' "$smoke_dir/BENCH_predict.json"

echo "CI gate passed."
