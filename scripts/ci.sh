#!/usr/bin/env bash
# Tier-1 CI gate: formatting, vet, build, the full test suite under the
# race detector, and a one-iteration benchmark smoke pass so the
# instrumented hot paths keep compiling and running. Run from anywhere
# inside the repository.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== benchmark smoke (1 iteration each) =="
go test -run=NONE -bench=. -benchtime=1x ./...

echo "== predserve smoke =="
smoke_dir=$(mktemp -d)
smoke_pid=""
cleanup_smoke() {
    [ -n "$smoke_pid" ] && kill "$smoke_pid" 2>/dev/null || true
    rm -rf "$smoke_dir"
}
trap cleanup_smoke EXIT
go run ./cmd/predperf -bench mcf -insts 2000 -sample 12 -lhs 8 -test 4 \
    -save "$smoke_dir/mcf.json" -trace "$smoke_dir/build-trace.json" > /dev/null
# The -trace flag must emit loadable Chrome trace-event JSON with nested
# build spans.
grep -q '"traceEvents"' "$smoke_dir/build-trace.json"
grep -q '"name": "core.build_rbf"' "$smoke_dir/build-trace.json"
grep -q '"name": "core.sim_point"' "$smoke_dir/build-trace.json"
go build -o "$smoke_dir/predserve" ./cmd/predserve
"$smoke_dir/predserve" -addr 127.0.0.1:0 -model "$smoke_dir/mcf.json" \
    > "$smoke_dir/predserve.log" 2>&1 &
smoke_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^predserve: listening on //p' "$smoke_dir/predserve.log")
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "predserve did not start:" >&2
    cat "$smoke_dir/predserve.log" >&2
    exit 1
fi
curl -fsS "http://$addr/healthz" | grep -q '"status": "ok"'
# Every response carries an X-Request-Id (generated here; echoed if sent).
curl -fsS -D - -o /dev/null "http://$addr/healthz" | grep -qi '^x-request-id:'
curl -fsS -X POST "http://$addr/v1/predict" \
    -d '{"model":"mcf","config":{"depth":12,"rob":96,"iq":48,"lsq":48,"l2kb":2048,"l2lat":10,"il1kb":32,"dl1kb":32,"dl1lat":2}}' \
    | grep -q '"value"'
# Prometheus exposition must include at least one latency histogram series.
curl -fsS "http://$addr/metricz?format=prom" | grep -q '_bucket{'
curl -fsS "http://$addr/metricz?format=prom" | grep -q '^serve_http_request_seconds_count'
kill -TERM "$smoke_pid"
wait "$smoke_pid"   # non-zero (unclean drain) fails the gate via set -e
smoke_pid=""
grep -q "shut down cleanly" "$smoke_dir/predserve.log"
# The access log (default: stderr) must have JSON lines with request ids.
grep -q '"id":' "$smoke_dir/predserve.log"

echo "== obs overhead report =="
go run ./cmd/benchobs -iters 100000 -repeats 1 -sample 20 -insts 5000 \
    -out "$smoke_dir/BENCH_obs.json" > /dev/null
grep -q '"ops_ns"' "$smoke_dir/BENCH_obs.json"

echo "CI gate passed."
