#!/usr/bin/env bash
# Tier-1 CI gate: formatting, vet, build, the full test suite under the
# race detector, and a one-iteration benchmark smoke pass so the
# instrumented hot paths keep compiling and running. Run from anywhere
# inside the repository.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== benchmark smoke (1 iteration each) =="
go test -run=NONE -bench=. -benchtime=1x ./...

echo "CI gate passed."
