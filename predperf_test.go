package predperf_test

import (
	"math"
	"testing"

	"predperf"
)

func TestPublicAPIQuickFlow(t *testing.T) {
	ev, err := predperf.NewSimEvaluator("equake", 8000)
	if err != nil {
		t.Fatal(err)
	}
	m, err := predperf.BuildModel(ev, 25, predperf.Options{LHSCandidates: 8})
	if err != nil {
		t.Fatal(err)
	}
	cfg := predperf.Config{
		PipeDepth: 12, ROBSize: 96, IQSize: 48, LSQSize: 48,
		L2SizeKB: 2048, L2Lat: 10, IL1SizeKB: 32, DL1SizeKB: 32, DL1Lat: 2,
	}
	pred := m.PredictConfig(cfg)
	if math.IsNaN(pred) || pred <= 0 {
		t.Fatalf("prediction = %v", pred)
	}
	res, err := predperf.Simulate(cfg, "equake", 8000)
	if err != nil {
		t.Fatal(err)
	}
	if res.CPI() <= 0 {
		t.Fatalf("simulated CPI = %v", res.CPI())
	}
	// Model and simulator should be within a loose factor on an
	// interior point.
	if pred < res.CPI()/2 || pred > res.CPI()*2 {
		t.Fatalf("prediction %v far from simulation %v", pred, res.CPI())
	}
}

func TestBenchmarksListed(t *testing.T) {
	names := predperf.Benchmarks()
	if len(names) != 8 {
		t.Fatalf("Benchmarks() returned %d names", len(names))
	}
	if _, err := predperf.NewSimEvaluator("nosuch", 1000); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
}

func TestSpacesExposed(t *testing.T) {
	if predperf.PaperSpace().N() != 9 || predperf.TestSpace().N() != 9 {
		t.Fatal("spaces malformed")
	}
}

func TestFacadeSearchFlow(t *testing.T) {
	ev, err := predperf.NewSimEvaluator("gzip", 8000)
	if err != nil {
		t.Fatal(err)
	}
	m, err := predperf.BuildModel(ev, 25, predperf.Options{LHSCandidates: 8})
	if err != nil {
		t.Fatal(err)
	}
	res, err := predperf.Minimize(m, ev, predperf.SearchOptions{
		GridLevels: 2,
		Shortlist:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestValue <= 0 || res.Verified != 3 {
		t.Fatalf("search result malformed: %+v", res)
	}
	if len(predperf.EnumerateGrid(nil, 2)) == 0 {
		t.Fatal("empty grid")
	}
}

func TestFacadeBuildToAccuracy(t *testing.T) {
	ev := predperf.FuncEvaluator(func(c predperf.Config) float64 {
		return 1 + 10/float64(c.ROBSize) + float64(c.L2Lat)/20
	})
	ts := predperf.NewTestSet(ev, nil, 20, 3)
	res, err := predperf.BuildToAccuracy(ev, []int{20, 40}, 2.0, ts, predperf.Options{LHSCandidates: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 || res[len(res)-1].Stats.N != 20 {
		t.Fatalf("unexpected results: %+v", res)
	}
}

func TestExtraBenchmarksUsable(t *testing.T) {
	extras := predperf.ExtraBenchmarks()
	if len(extras) != 4 {
		t.Fatalf("extra benchmarks: %v", extras)
	}
	res, err := predperf.Simulate(predperf.Config{
		PipeDepth: 12, ROBSize: 96, IQSize: 48, LSQSize: 48,
		L2SizeKB: 2048, L2Lat: 10, IL1SizeKB: 32, DL1SizeKB: 32, DL1Lat: 2,
	}, extras[0], 8000)
	if err != nil {
		t.Fatal(err)
	}
	if res.CPI() <= 0 {
		t.Fatalf("CPI = %v", res.CPI())
	}
}
