// Package predperf is a reproduction of "A Predictive Performance Model
// for Superscalar Processors" (Joseph, Vaswani, Thazhuthaveetil; MICRO
// 2006): empirical non-linear (RBF network) models that predict
// superscalar processor CPI across a 9-parameter microarchitectural
// design space, trained on a small number of cycle-level simulations at
// design points chosen by latin hypercube sampling with the best
// L2-star discrepancy.
//
// The package re-exports the stable surface of the internal packages:
//
//   - the Table 1 design space and its encode/decode machinery,
//   - the trace-driven out-of-order superscalar simulator and its
//     synthetic SPEC-like benchmark workloads,
//   - BuildModel / BuildLinear, the model-construction procedures, and
//   - test-set generation and error metrics for validation.
//
// Quickstart:
//
//	ev, _ := predperf.NewSimEvaluator("mcf", 100_000)
//	model, _ := predperf.BuildModel(ev, 90, predperf.Options{})
//	cpi := model.PredictConfig(predperf.Config{
//	    PipeDepth: 12, ROBSize: 96, IQSize: 48, LSQSize: 48,
//	    L2SizeKB: 2048, L2Lat: 10, IL1SizeKB: 32, DL1SizeKB: 32, DL1Lat: 2,
//	})
//
// See examples/ for runnable programs and DESIGN.md for the full system
// inventory.
package predperf

import (
	"context"

	"predperf/internal/core"
	"predperf/internal/design"
	"predperf/internal/search"
	"predperf/internal/sim"
	"predperf/internal/trace"
)

// Config is a concrete processor configuration (natural units).
type Config = design.Config

// Point is a normalized design point in the unit hypercube.
type Point = design.Point

// Space is a microarchitectural design space.
type Space = design.Space

// PaperSpace returns the paper's Table 1 modeling space.
func PaperSpace() *Space { return design.PaperSpace() }

// TestSpace returns the paper's Table 2 restricted validation space.
func TestSpace() *Space { return design.TestSpace() }

// Evaluator produces CPI at a concrete design point.
type Evaluator = core.Evaluator

// FuncEvaluator adapts a plain function into an Evaluator.
type FuncEvaluator = core.FuncEvaluator

// SimEvaluator evaluates design points with the cycle-level simulator,
// memoizing by configuration.
type SimEvaluator = core.SimEvaluator

// NewSimEvaluator builds a simulator-backed evaluator for one of the
// benchmark workloads (see Benchmarks).
func NewSimEvaluator(benchmark string, traceLen int) (*SimEvaluator, error) {
	return core.NewSimEvaluator(benchmark, traceLen)
}

// Benchmarks lists the eight SPEC CPU2000-like synthetic workloads the
// paper evaluates.
func Benchmarks() []string { return trace.Names() }

// ExtraBenchmarks lists the additional workload profiles provided beyond
// the paper's eight (gzip, gcc, bzip2, vpr).
func ExtraBenchmarks() []string { return trace.ExtraNames() }

// Options configures model building.
type Options = core.Options

// Model is a fitted RBF-network CPI model.
type Model = core.Model

// LinearModel is the linear-regression baseline of §4.2.
type LinearModel = core.LinearModel

// BuildModel runs the paper's BuildRBFModel procedure at one sample
// size: best-discrepancy latin hypercube sampling, simulation, and RBF
// fitting with regression-tree centers and AICc subset selection.
func BuildModel(ev Evaluator, sampleSize int, opt Options) (*Model, error) {
	return core.BuildRBFModel(ev, sampleSize, opt)
}

// BuildModelCtx is BuildModel with context propagation: when ctx carries
// an obs.Trace (internal/obs.WithTrace), every build stage records
// parent/child spans on it for the Chrome trace export. The built model
// is bit-identical with or without an active trace.
func BuildModelCtx(ctx context.Context, ev Evaluator, sampleSize int, opt Options) (*Model, error) {
	return core.BuildRBFModelCtx(ctx, ev, sampleSize, opt)
}

// BuildLinear builds the baseline linear model on an identical sample.
func BuildLinear(ev Evaluator, sampleSize int, opt Options) (*LinearModel, error) {
	return core.BuildLinearModel(ev, sampleSize, opt)
}

// BuildLinearCtx is BuildLinear with context propagation (see
// BuildModelCtx).
func BuildLinearCtx(ctx context.Context, ev Evaluator, sampleSize int, opt Options) (*LinearModel, error) {
	return core.BuildLinearModelCtx(ctx, ev, sampleSize, opt)
}

// TestSet is an independent random validation set.
type TestSet = core.TestSet

// NewTestSet draws and simulates n random points (Table 2 space when
// space is nil).
func NewTestSet(ev Evaluator, space *Space, n int, seed int64) *TestSet {
	return core.NewTestSet(ev, space, n, seed)
}

// ErrorStats are mean/max/std absolute percentage CPI errors.
type ErrorStats = core.ErrorStats

// BuildResult pairs a model with its validation stats.
type BuildResult = core.BuildResult

// BuildToAccuracy iterates sample sizes until the target mean error is
// reached (step 6 of the paper's procedure).
func BuildToAccuracy(ev Evaluator, sizes []int, targetMeanPct float64, ts *TestSet, opt Options) ([]BuildResult, error) {
	return core.BuildToAccuracy(ev, sizes, targetMeanPct, ts, opt)
}

// SimConfig is the full simulator machine description.
type SimConfig = sim.Config

// SimResult is a simulation run's statistics.
type SimResult = sim.Result

// SearchOptions configures a model-guided design-space search.
type SearchOptions = search.Options

// SearchResult is a simulator-verified search outcome.
type SearchResult = search.Result

// Minimize runs model-guided design-space exploration: the model ranks
// an enumeration of candidate configurations, and the best-predicted
// shortlist is verified with real simulation before a winner is chosen.
func Minimize(model *Model, ev Evaluator, opt SearchOptions) (*SearchResult, error) {
	return search.Minimize(model, ev, opt)
}

// EnumerateGrid lists candidate configurations on a grid over a design
// space (the paper space when space is nil).
func EnumerateGrid(space *Space, gridLevels int) []Config {
	return search.EnumerateGrid(space, gridLevels)
}

// SimFromDesign expands a design configuration into the full simulator
// machine description (fixed context + the nine varied parameters).
func SimFromDesign(cfg Config) SimConfig { return sim.FromDesign(cfg) }

// Simulate runs the cycle-level simulator for a design configuration on
// a named benchmark workload and returns the detailed statistics. The
// first fifth of the trace warms the caches and predictors without being
// counted, matching the methodology of the model-building evaluators.
func Simulate(cfg Config, benchmark string, traceLen int) (SimResult, error) {
	tr, err := trace.Cached(benchmark, traceLen)
	if err != nil {
		return SimResult{}, err
	}
	sc := sim.FromDesign(cfg)
	sc.WarmupInsts = traceLen / 5
	return sim.Run(sc, tr), nil
}
