// Benchmarks: one testing.B target per table and figure of the paper's
// evaluation (§4), plus the design-choice ablations from DESIGN.md. Each
// benchmark runs the same driver as cmd/experiments at the reduced
// "quick" scale, so `go test -bench=. -benchmem` regenerates every
// result at laptop cost; `go run ./cmd/experiments -scale=paper`
// regenerates the full-size study.
//
// Paper-vs-measured numbers are recorded in EXPERIMENTS.md.
package predperf_test

import (
	"fmt"
	"math/rand"
	"testing"

	"predperf/internal/core"
	"predperf/internal/design"
	"predperf/internal/exper"
	"predperf/internal/interval"
	"predperf/internal/sample"
	"predperf/internal/sim"
	"predperf/internal/trace"
)

// report prints a driver's rendering once per benchmark run when -v is
// set, so the regenerated tables are visible alongside the timings.
func report(b *testing.B, s fmt.Stringer) {
	b.Helper()
	if testing.Verbose() {
		b.Log("\n" + s.String())
	}
}

func BenchmarkTable1Space(b *testing.B) {
	var t1 *exper.Table1
	for i := 0; i < b.N; i++ {
		t1 = exper.RunTable1()
	}
	report(b, t1)
}

func BenchmarkFigure2Discrepancy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exper.NewRunner(exper.QuickScale())
		report(b, exper.RunFigure2(r))
	}
}

func BenchmarkFigure1Surface(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exper.NewRunner(exper.QuickScale())
		f, err := exper.RunFigure1(r, "vortex")
		if err != nil {
			b.Fatal(err)
		}
		report(b, f)
	}
}

func BenchmarkTable3Errors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exper.NewRunner(exper.QuickScale())
		t3, err := exper.RunTable3(r)
		if err != nil {
			b.Fatal(err)
		}
		report(b, t3)
	}
}

func BenchmarkTable4Diagnostics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exper.NewRunner(exper.QuickScale())
		t4, err := exper.RunTable4(r, "mcf")
		if err != nil {
			b.Fatal(err)
		}
		report(b, t4)
	}
}

func BenchmarkTable5Splits(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exper.NewRunner(exper.QuickScale())
		t5, err := exper.RunTable5(r, "mcf", "vortex")
		if err != nil {
			b.Fatal(err)
		}
		report(b, t5)
	}
}

func BenchmarkFigure4ErrorCurves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exper.NewRunner(exper.QuickScale())
		f4, err := exper.RunFigure4(r, r.Scale.SweepBench...)
		if err != nil {
			b.Fatal(err)
		}
		report(b, f4)
	}
}

func BenchmarkFigure5SplitHistogram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exper.NewRunner(exper.QuickScale())
		f5, err := exper.RunFigure5(r, "mcf")
		if err != nil {
			b.Fatal(err)
		}
		report(b, f5)
	}
}

func BenchmarkFigure6Trends(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exper.NewRunner(exper.QuickScale())
		f6, err := exper.RunFigure6(r, "vortex")
		if err != nil {
			b.Fatal(err)
		}
		report(b, f6)
	}
}

func BenchmarkFigure7LinearVsRBF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exper.NewRunner(exper.QuickScale())
		f7, err := exper.RunFigure7(r, "mcf", "vortex")
		if err != nil {
			b.Fatal(err)
		}
		report(b, f7)
	}
}

func BenchmarkExtensionFamilies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exper.NewRunner(exper.QuickScale())
		fam, err := exper.RunFamilies(r, "mcf")
		if err != nil {
			b.Fatal(err)
		}
		report(b, fam)
	}
}

func BenchmarkExtensionAdaptive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exper.NewRunner(exper.QuickScale())
		a, err := exper.RunAdaptive(r, "mcf")
		if err != nil {
			b.Fatal(err)
		}
		report(b, a)
	}
}

func BenchmarkExtensionSignificance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exper.NewRunner(exper.QuickScale())
		sg, err := exper.RunSignificance(r)
		if err != nil {
			b.Fatal(err)
		}
		report(b, sg)
	}
}

func BenchmarkExtensionPowerTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exper.NewRunner(exper.QuickScale())
		pt, err := exper.RunPowerTable(r)
		if err != nil {
			b.Fatal(err)
		}
		report(b, pt)
	}
}

func BenchmarkExtensionExtendedWorkloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exper.NewRunner(exper.QuickScale())
		ex, err := exper.RunExtended(r, []string{"gzip", "vpr"})
		if err != nil {
			b.Fatal(err)
		}
		report(b, ex)
	}
}

func BenchmarkExtensionValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exper.NewRunner(exper.QuickScale())
		v, err := exper.RunValidation(r, "mcf")
		if err != nil {
			b.Fatal(err)
		}
		report(b, v)
	}
}

func BenchmarkRelatedScreening(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exper.NewRunner(exper.QuickScale())
		sc, err := exper.RunScreening(r, "mcf")
		if err != nil {
			b.Fatal(err)
		}
		report(b, sc)
	}
}

func BenchmarkRelatedStatSim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exper.NewRunner(exper.QuickScale())
		ss, err := exper.RunStatSim(r, "twolf")
		if err != nil {
			b.Fatal(err)
		}
		report(b, ss)
	}
}

func BenchmarkAblationSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exper.NewRunner(exper.QuickScale())
		a, err := exper.RunAblations(r, "mcf")
		if err != nil {
			b.Fatal(err)
		}
		report(b, a)
	}
}

// BenchmarkParallelPipeline measures the end-to-end model-building
// pipeline — best-of-K LHS with discrepancy scoring, design-point
// simulation, the (p_min, α) RBF grid search, and test-set validation —
// with the serial path (Parallel=1) against the default parallel path
// (Parallel=0 → one worker per CPU). The two sub-benchmarks build
// bit-identical models; `go run ./cmd/benchparallel` runs the same
// pipeline standalone and records the speedup in BENCH_parallel.json.
func BenchmarkParallelPipeline(b *testing.B) {
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// A fresh evaluator each iteration so the simulation stage
				// does real work instead of hitting the memoization cache.
				ev, err := core.NewSimEvaluator("mcf", 20_000)
				if err != nil {
					b.Fatal(err)
				}
				opt := core.Options{LHSCandidates: 16, Seed: 3, Parallel: bc.workers}
				m, err := core.BuildRBFModel(ev, 40, opt)
				if err != nil {
					b.Fatal(err)
				}
				ts := core.NewTestSetWorkers(ev, nil, 20, 80, bc.workers)
				m.Validate(ts)
			}
		})
	}
}

// Component microbenchmarks: the cost centers of the pipeline.

func BenchmarkSimulatorRun(b *testing.B) {
	tr, err := trace.Cached("twolf", 100_000)
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.WarmupInsts = 20_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(cfg, tr)
	}
	b.ReportMetric(float64(len(tr))*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minst/s")
}

func BenchmarkRBFFitSize90(b *testing.B) {
	ev, err := core.NewSimEvaluator("crafty", 20_000)
	if err != nil {
		b.Fatal(err)
	}
	// Pre-simulate via one build so only fitting cost remains measurable
	// in subsequent iterations (the evaluator memoizes).
	opt := core.Options{LHSCandidates: 16, Seed: 5}
	if _, err := core.BuildRBFModel(ev, 90, opt); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildRBFModel(ev, 90, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBestLHSDiscrepancy(b *testing.B) {
	space := design.PaperSpace()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i) + 1))
		sample.BestLHS(space, 90, 20, rng)
	}
}

func BenchmarkAnalyticalModel(b *testing.B) {
	tr, err := trace.Cached("mcf", 100_000)
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		interval.Analyze(tr, cfg)
	}
}

func BenchmarkModelPredict(b *testing.B) {
	ev := core.FuncEvaluator(func(c design.Config) float64 {
		return 1 + 10/float64(c.ROBSize) + float64(c.L2Lat)/20
	})
	m, err := core.BuildRBFModel(ev, 90, core.Options{LHSCandidates: 8})
	if err != nil {
		b.Fatal(err)
	}
	cfg := design.Config{
		PipeDepth: 12, ROBSize: 96, IQSize: 48, LSQSize: 48,
		L2SizeKB: 2048, L2Lat: 10, IL1SizeKB: 32, DL1SizeKB: 32, DL1Lat: 2,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictConfig(cfg)
	}
}
