// Trends: reproduce the §4.1 microarchitectural-trend study (Figure 6)
// interactively — predict how CPI varies over the interaction of the
// instruction-cache size and L2 latency for vortex, and compare the
// model's dashed lines against the simulator's solid lines.
package main

import (
	"fmt"
	"log"
	"strings"

	"predperf"
)

func main() {
	log.SetFlags(0)
	const bench = "vortex"

	ev, err := predperf.NewSimEvaluator(bench, 60_000)
	if err != nil {
		log.Fatal(err)
	}
	model, err := predperf.BuildModel(ev, 90, predperf.Options{})
	if err != nil {
		log.Fatal(err)
	}

	base := predperf.Config{
		PipeDepth: 15, ROBSize: 76, IQSize: 38, LSQSize: 38,
		L2SizeKB: 1024, L2Lat: 12, IL1SizeKB: 32, DL1SizeKB: 32, DL1Lat: 2,
	}
	lats := []int{5, 8, 11, 14, 17, 20}
	il1s := []int{8, 16, 32, 64}

	fmt.Printf("CPI trends for %s over il1 size × L2 latency (simulated / predicted)\n\n", bench)
	fmt.Printf("%8s", "il1")
	for _, lat := range lats {
		fmt.Printf("   lat=%-2d      ", lat)
	}
	fmt.Println()
	worstTrendMiss := 0
	for _, il1 := range il1s {
		fmt.Printf("%6dKB", il1)
		prevSim, prevPred := 0.0, 0.0
		for j, lat := range lats {
			cfg := base
			cfg.IL1SizeKB = il1
			cfg.L2Lat = lat
			sim := ev.Eval(cfg)
			pred := model.PredictConfig(cfg)
			marker := " "
			if j > 0 {
				// Flag cells where the model gets the direction of the
				// latency trend wrong.
				if (sim-prevSim)*(pred-prevPred) < 0 {
					marker = "!"
					worstTrendMiss++
				}
			}
			prevSim, prevPred = sim, pred
			fmt.Printf(" %5.2f/%5.2f%s ", sim, pred, marker)
		}
		fmt.Println()
	}
	fmt.Println(strings.Repeat("-", 20))
	fmt.Printf("cells flagged '!' = model predicted the wrong direction (%d total)\n", worstTrendMiss)
	fmt.Printf("as in the paper, CPI rises with L2 latency and the effect is larger\n")
	fmt.Printf("for small instruction caches, where misses reach the L2 more often.\n")
}
