// Design-space exploration: the use case the paper's conclusion calls
// out — once a model is built from a small number of simulations, it can
// stand in for the simulator in a search for optimal design points.
//
// This example builds a model for a benchmark, then runs the library's
// model-guided search (predperf.Minimize): the model scores a large grid
// of candidates under a hardware-budget constraint, and the shortlist of
// best-predicted configurations is verified with real simulation — a
// pure arg-min over model predictions would exploit model error at the
// corners of the space.
package main

import (
	"fmt"
	"log"

	"predperf"
)

// budget is a toy cost model: bigger queues and caches cost more, and so
// do shallower pipelines and faster arrays.
func budget(c predperf.Config) float64 {
	cost := float64(c.ROBSize)/128 + float64(c.IQSize+c.LSQSize)/128
	cost += float64(c.L2SizeKB) / 8192 * 2
	cost += float64(c.IL1SizeKB+c.DL1SizeKB) / 128
	cost += float64(24-c.PipeDepth) / 17
	cost += float64(20-c.L2Lat) / 15
	cost += float64(4-c.DL1Lat) / 3
	return cost
}

func main() {
	log.SetFlags(0)
	const bench = "twolf"
	const maxBudget = 3.5

	ev, err := predperf.NewSimEvaluator(bench, 60_000)
	if err != nil {
		log.Fatal(err)
	}
	model, err := predperf.BuildModel(ev, 90, predperf.Options{})
	if err != nil {
		log.Fatal(err)
	}
	simsUsed := ev.Simulations()
	fmt.Printf("model for %s built from %d simulations\n", bench, simsUsed)

	res, err := predperf.Minimize(model, ev, predperf.SearchOptions{
		GridLevels: 5,
		Shortlist:  8,
		Constraint: func(c predperf.Config) bool { return budget(c) <= maxBudget },
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scored %d in-budget configurations with the model, simulated %d\n\n",
		res.Evaluated, res.Verified)
	fmt.Println("shortlist (best simulated first):")
	for _, c := range res.Shortlist {
		fmt.Printf("  predicted %.3f  simulated %.3f  %v\n", c.Predicted, c.Actual, c.Config)
	}
	fmt.Printf("\nselected design point: %v\n", res.Best)
	fmt.Printf("  simulated CPI %.3f at budget %.2f/%.2f\n", res.BestValue, budget(res.Best), maxBudget)
	fmt.Printf("  total simulations: %d model-building + %d verification\n",
		simsUsed, res.Verified)
}
