// Power: the §6 extension — "similar models can be developed for other
// metrics such as power consumption." This example builds predictive
// models for CPI *and* energy-delay product (EDP) from the same set of
// simulations, then walks the pipeline-depth / L2-size tradeoff to find
// an energy-efficient configuration that a pure-performance search would
// miss.
package main

import (
	"fmt"
	"log"

	"predperf"
	"predperf/internal/core"
)

func main() {
	log.SetFlags(0)
	const bench = "equake"

	ev, err := core.NewSimEvaluator(bench, 60_000)
	if err != nil {
		log.Fatal(err)
	}
	opt := predperf.Options{LHSCandidates: 64}

	// Both models come from the same 80 simulations: the evaluator
	// memoizes full simulator results, and the metric views share them.
	cpiModel, err := predperf.BuildModel(ev, 80, opt)
	if err != nil {
		log.Fatal(err)
	}
	edpModel, err := predperf.BuildModel(ev.WithMetric(core.MetricEDP), 80, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CPI and EDP models for %s share %d simulations\n\n", bench, ev.Simulations())

	// Validate both.
	tsCPI := predperf.NewTestSet(ev, nil, 25, 9)
	tsEDP := predperf.NewTestSet(ev.WithMetric(core.MetricEDP), nil, 25, 9)
	fmt.Printf("CPI model: mean %.2f%% error | EDP model: mean %.2f%% error\n\n",
		cpiModel.Validate(tsCPI).Mean, edpModel.Validate(tsEDP).Mean)

	// Sweep the classic power-performance axis: pipeline depth.
	base := predperf.Config{
		PipeDepth: 12, ROBSize: 96, IQSize: 48, LSQSize: 48,
		L2SizeKB: 2048, L2Lat: 10, IL1SizeKB: 32, DL1SizeKB: 32, DL1Lat: 2,
	}
	fmt.Println("pipeline-depth sweep (model predictions):")
	fmt.Printf("%8s %10s %12s\n", "depth", "CPI", "EDP nJ·cyc")
	bestEDP, bestCPI := 1e18, 1e18
	var edpPick, cpiPick int
	for _, d := range []int{7, 9, 12, 15, 18, 21, 24} {
		cfg := base
		cfg.PipeDepth = d
		cpi := cpiModel.PredictConfig(cfg)
		edp := edpModel.PredictConfig(cfg)
		fmt.Printf("%8d %10.3f %12.2f\n", d, cpi, edp)
		if edp < bestEDP {
			bestEDP, edpPick = edp, d
		}
		if cpi < bestCPI {
			bestCPI, cpiPick = cpi, d
		}
	}
	fmt.Printf("\nperformance-optimal depth: %d; EDP-optimal depth: %d\n", cpiPick, edpPick)

	// Verify the EDP pick against the simulator's power model.
	cfg := base
	cfg.PipeDepth = edpPick
	res, err := predperf.Simulate(cfg, bench, 60_000)
	if err != nil {
		log.Fatal(err)
	}
	simCfg := predperf.SimFromDesign(cfg)
	fmt.Printf("simulator check at depth %d: CPI %.3f, %.1f W @2GHz, EDP %.2f nJ·cyc\n",
		edpPick, res.CPI(), res.AvgPowerW(simCfg, 2.0), res.EDP(simCfg)/1000)
}
