// Analytical: compare the three performance-modeling approaches the
// paper discusses — the first-order analytical model of its related work
// (Karkhanis & Smith style, ref [11]), the paper's empirical RBF model,
// and ground-truth detailed simulation — across an L2-latency sweep.
//
// The analytical model costs one functional trace pass per point and
// gets the trends right; the RBF model costs a one-time training budget
// and then tracks the detailed simulator closely; detailed simulation is
// exact and slowest. This is the trade-off space §5 of the paper lays
// out.
package main

import (
	"fmt"
	"log"
	"time"

	"predperf"
	"predperf/internal/interval"
	"predperf/internal/sim"
	"predperf/internal/trace"
)

func main() {
	log.SetFlags(0)
	const bench = "parser"
	const insts = 60_000

	tr, err := trace.Cached(bench, insts)
	if err != nil {
		log.Fatal(err)
	}
	ev, err := predperf.NewSimEvaluator(bench, insts)
	if err != nil {
		log.Fatal(err)
	}
	model, err := predperf.BuildModel(ev, 80, predperf.Options{})
	if err != nil {
		log.Fatal(err)
	}
	trainSims := ev.Simulations()

	base := predperf.Config{
		PipeDepth: 14, ROBSize: 80, IQSize: 40, LSQSize: 40,
		L2SizeKB: 1024, L2Lat: 12, IL1SizeKB: 32, DL1SizeKB: 32, DL1Lat: 2,
	}

	fmt.Printf("CPI across an L2-latency sweep (%s):\n\n", bench)
	fmt.Printf("%8s %12s %12s %12s\n", "L2 lat", "analytical", "RBF model", "detailed")
	var tAna, tRBF, tSim time.Duration
	for _, lat := range []int{5, 8, 11, 14, 17, 20} {
		cfg := base
		cfg.L2Lat = lat

		t0 := time.Now()
		sc := sim.FromDesign(cfg)
		ana := interval.Analyze(tr, sc).CPI
		tAna += time.Since(t0)

		t0 = time.Now()
		rbf := model.PredictConfig(cfg)
		tRBF += time.Since(t0)

		t0 = time.Now()
		res, err := predperf.Simulate(cfg, bench, insts)
		if err != nil {
			log.Fatal(err)
		}
		tSim += time.Since(t0)

		fmt.Printf("%8d %12.3f %12.3f %12.3f\n", lat, ana, rbf, res.CPI())
	}
	fmt.Printf("\nper-sweep cost: analytical %v, RBF %v (+%d training sims), detailed %v\n",
		tAna, tRBF, trainSims, tSim)
	fmt.Println("\nthe analytical model captures the trend from first principles;")
	fmt.Println("the RBF model tracks the detailed simulator's values; detailed")
	fmt.Println("simulation is ground truth and the most expensive per point.")
}
