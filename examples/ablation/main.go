// Ablation: quantify what each ingredient of the paper's method buys,
// on a live model build — space-filling LHS sampling vs uniform random
// sampling, and the RBF model vs the linear baseline of §4.2 on the same
// samples.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"predperf"
	"predperf/internal/design"
	"predperf/internal/rbf"
	"predperf/internal/sample"
)

func main() {
	log.SetFlags(0)
	const bench = "parser"
	const size = 70

	ev, err := predperf.NewSimEvaluator(bench, 50_000)
	if err != nil {
		log.Fatal(err)
	}
	ts := predperf.NewTestSet(ev, nil, 30, 7)
	fmt.Printf("ablation on %s: %d training points, %d test points\n\n", bench, size, len(ts.Configs))

	// Full method.
	m, err := predperf.BuildModel(ev, size, predperf.Options{})
	if err != nil {
		log.Fatal(err)
	}
	full := m.Validate(ts)
	fmt.Printf("%-38s mean %5.2f%%  max %5.2f%%\n", "RBF + best-discrepancy LHS (paper)", full.Mean, full.Max)

	// Linear baseline on the identical sample.
	lm, err := predperf.BuildLinear(ev, size, predperf.Options{})
	if err != nil {
		log.Fatal(err)
	}
	lin := lm.Validate(ts)
	fmt.Printf("%-38s mean %5.2f%%  max %5.2f%%\n", "linear model, same sample (§4.2)", lin.Mean, lin.Max)

	// RBF on a uniform random (non-space-filling) sample.
	space := design.PaperSpace()
	rng := rand.New(rand.NewSource(123))
	raw := sample.UniformRandom(space, size, rng)
	xs := make([][]float64, len(raw))
	ys := make([]float64, len(raw))
	for i, p := range raw {
		cfg := space.Decode(p, size)
		xs[i] = space.Encode(cfg)
		ys[i] = ev.Eval(cfg)
	}
	rndFit, err := rbf.Fit(xs, ys, rbf.Options{})
	if err != nil {
		log.Fatal(err)
	}
	var sum, max float64
	for i, cfg := range ts.Configs {
		e := 100 * abs(rndFit.Predict(space.Encode(cfg))-ts.Actual[i]) / ts.Actual[i]
		sum += e
		if e > max {
			max = e
		}
	}
	fmt.Printf("%-38s mean %5.2f%%  max %5.2f%%\n", "RBF + uniform random sampling", sum/float64(len(ts.Configs)), max)

	fmt.Printf("\nLHS discrepancy of the paper sample: %.5f\n", m.Discrepancy)
	fmt.Printf("RBF centers selected: %d of %d sample points\n", m.Fit.NumCenters(), size)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
