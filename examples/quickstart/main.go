// Quickstart: build a predictive CPI model for one benchmark with the
// paper's BuildRBFModel procedure, validate it on an independent random
// test set, and use it to predict the performance of a configuration
// that was never simulated during training.
package main

import (
	"fmt"
	"log"

	"predperf"
)

func main() {
	log.SetFlags(0)

	// 1. An evaluator: the cycle-level superscalar simulator running the
	//    mcf-like workload. Every Eval is one "detailed simulation".
	ev, err := predperf.NewSimEvaluator("mcf", 60_000)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Build the model from a 60-point latin hypercube sample (the
	//    sample is chosen by the best L2-star discrepancy of 64 draws).
	model, err := predperf.BuildModel(ev, 60, predperf.Options{LHSCandidates: 64})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model built from %d simulations: %d RBF centers (p_min=%d, alpha=%.0f)\n",
		model.SampleSize, model.Fit.NumCenters(), model.Fit.PMin, model.Fit.Alpha)

	// 3. Validate on 30 independently drawn random design points.
	ts := predperf.NewTestSet(ev, nil, 30, 42)
	st := model.Validate(ts)
	fmt.Printf("validation on %d unseen points: mean %.2f%% / max %.2f%% CPI error\n",
		st.N, st.Mean, st.Max)

	// 4. Predict an unexplored configuration, then check it against the
	//    simulator.
	cfg := predperf.Config{
		PipeDepth: 10, ROBSize: 112, IQSize: 56, LSQSize: 56,
		L2SizeKB: 4096, L2Lat: 8, IL1SizeKB: 32, DL1SizeKB: 64, DL1Lat: 2,
	}
	pred := model.PredictConfig(cfg)
	res, err := predperf.Simulate(cfg, "mcf", 60_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconfig: %v\n", cfg)
	fmt.Printf("  model predicts CPI %.3f, simulator measures %.3f\n", pred, res.CPI())
	fmt.Printf("  total simulations used: %d (vs %d+ for exhaustive search of the space)\n",
		ev.Simulations(), 18*105*6*16*4*4*4)
}
