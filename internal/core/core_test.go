package core

import (
	"context"
	"math"
	"sync"
	"testing"

	"predperf/internal/design"
	"predperf/internal/rbf"
)

// syntheticCPI is a smooth, non-linear ground truth with interactions,
// standing in for the simulator in fast unit tests.
func syntheticCPI(c design.Config) float64 {
	l2 := float64(c.L2SizeKB)
	return 0.6 +
		1.5*math.Exp(-l2/1500)*(float64(c.L2Lat)/20) +
		0.5*float64(c.PipeDepth)/24 +
		12/float64(c.ROBSize) +
		0.2*float64(c.DL1Lat)/4*(64/float64(c.DL1SizeKB))*0.2 +
		0.1*(64/float64(c.IL1SizeKB))*0.1
}

func fastOpt() Options {
	return Options{
		LHSCandidates: 16,
		RBF:           rbf.Options{PMinGrid: []int{1, 2}, AlphaGrid: []float64{5, 9}},
		Seed:          7,
	}
}

func TestBuildRBFModelOnSyntheticTruth(t *testing.T) {
	ev := FuncEvaluator(syntheticCPI)
	m, err := BuildRBFModel(ev, 80, fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	if m.SampleSize != 80 || len(m.Points) != 80 || len(m.Responses) != 80 {
		t.Fatalf("model shape wrong: %d points", len(m.Points))
	}
	if m.Discrepancy <= 0 {
		t.Fatalf("discrepancy = %v", m.Discrepancy)
	}
	ts := NewTestSet(ev, nil, 50, 3)
	st := m.Validate(ts)
	if st.N != 50 {
		t.Fatalf("validated %d points", st.N)
	}
	if st.Mean > 6 {
		t.Fatalf("mean error %v%% too high on smooth truth", st.Mean)
	}
	if st.Max < st.Mean || st.Std < 0 {
		t.Fatalf("inconsistent stats %+v", st)
	}
}

func TestRBFBeatsLinearOnCurvedTruth(t *testing.T) {
	ev := FuncEvaluator(syntheticCPI)
	opt := fastOpt()
	ts := NewTestSet(ev, nil, 50, 5)
	rbfM, err := BuildRBFModel(ev, 90, opt)
	if err != nil {
		t.Fatal(err)
	}
	linM, err := BuildLinearModel(ev, 90, opt)
	if err != nil {
		t.Fatal(err)
	}
	re, le := rbfM.Validate(ts), linM.Validate(ts)
	if re.Mean >= le.Mean {
		t.Fatalf("RBF mean error %v%% not better than linear %v%%", re.Mean, le.Mean)
	}
}

func TestPredictConfigMatchesPredictEncoded(t *testing.T) {
	ev := FuncEvaluator(syntheticCPI)
	m, err := BuildRBFModel(ev, 40, fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	cfg := m.Configs[7]
	a := m.PredictConfig(cfg)
	b := m.Predict(m.Space.Encode(cfg))
	if a != b {
		t.Fatalf("PredictConfig %v != Predict(Encode) %v", a, b)
	}
}

func TestTrainingInterpolation(t *testing.T) {
	// The fitted model must reproduce its own training responses well.
	ev := FuncEvaluator(syntheticCPI)
	m, err := BuildRBFModel(ev, 60, fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for i, pt := range m.Points {
		e := 100 * math.Abs(m.Predict(pt)-m.Responses[i]) / m.Responses[i]
		if e > worst {
			worst = e
		}
	}
	if worst > 8 {
		t.Fatalf("worst training error %v%%", worst)
	}
}

func TestBuildToAccuracyStopsAtTarget(t *testing.T) {
	ev := FuncEvaluator(syntheticCPI)
	ts := NewTestSet(ev, nil, 40, 11)
	res, err := BuildToAccuracy(ev, []int{20, 40, 80, 120}, 5.0, ts, fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no build results")
	}
	last := res[len(res)-1]
	if last.Stats.Mean > 5.0 && last.Model.SampleSize != 120 {
		t.Fatalf("stopped early without reaching target: %+v", last.Stats)
	}
	// Errors should be (weakly) improving overall from first to last.
	if len(res) > 1 && res[len(res)-1].Stats.Mean > res[0].Stats.Mean*1.5 {
		t.Fatalf("error grew substantially with sample size: %v → %v",
			res[0].Stats.Mean, res[len(res)-1].Stats.Mean)
	}
}

func TestErrorStatsKnownValues(t *testing.T) {
	pred := []float64{1.1, 0.9, 2.0}
	act := []float64{1.0, 1.0, 2.0}
	s := errorStats(pred, act)
	if math.Abs(s.Mean-(10+10+0)/3.0) > 1e-9 {
		t.Fatalf("mean = %v", s.Mean)
	}
	if math.Abs(s.Max-10) > 1e-9 {
		t.Fatalf("max = %v", s.Max)
	}
	if s.N != 3 {
		t.Fatalf("n = %d", s.N)
	}
	if z := errorStats(nil, nil); z.N != 0 {
		t.Fatalf("empty stats = %+v", z)
	}
}

func TestSimEvaluatorMemoizes(t *testing.T) {
	ev, err := NewSimEvaluator("equake", 6000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := design.PaperSpace().Decode(mid(design.PaperSpace()), 50)
	a := ev.Eval(cfg)
	n := ev.Simulations()
	b := ev.Eval(cfg)
	if a != b {
		t.Fatalf("non-deterministic evaluation: %v vs %v", a, b)
	}
	if ev.Simulations() != n {
		t.Fatal("repeat evaluation re-simulated")
	}
	if a <= 0 || math.IsNaN(a) {
		t.Fatalf("CPI = %v", a)
	}
}

func TestBuildRBFModelWithSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator-backed build in -short mode")
	}
	ev, err := NewSimEvaluator("ammp", 8000)
	if err != nil {
		t.Fatal(err)
	}
	m, err := BuildRBFModel(ev, 30, fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTestSet(ev, nil, 15, 21)
	st := m.Validate(ts)
	if math.IsNaN(st.Mean) || st.Mean <= 0 || st.Mean > 60 {
		t.Fatalf("implausible mean error %v%%", st.Mean)
	}
	// Simulation cost: 30 training + 15 test points, all distinct or
	// memoized — never more.
	if ev.Simulations() > 45 {
		t.Fatalf("ran %d simulations, expected ≤ 45", ev.Simulations())
	}
}

func TestBuildRejectsTinySamples(t *testing.T) {
	ev := FuncEvaluator(syntheticCPI)
	if _, err := BuildRBFModel(ev, 2, fastOpt()); err == nil {
		t.Fatal("expected error for tiny sample")
	}
	if _, err := BuildLinearModel(ev, 2, fastOpt()); err == nil {
		t.Fatal("expected error for tiny linear sample")
	}
}

func mid(s *design.Space) design.Point {
	pt := make(design.Point, s.N())
	for i := range pt {
		pt[i] = 0.5
	}
	return pt
}

func TestParallelBuildMatchesSerial(t *testing.T) {
	opt := fastOpt()
	opt.Parallel = 1
	ev, err := NewSimEvaluator("twolf", 6000)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := BuildRBFModel(ev, 25, opt)
	if err != nil {
		t.Fatal(err)
	}
	pt := mid(design.PaperSpace())
	for _, workers := range []int{0, 2, 4, 8} {
		// Fresh evaluator so the parallel path actually simulates.
		ev2, err := NewSimEvaluator("twolf", 6000)
		if err != nil {
			t.Fatal(err)
		}
		opt.Parallel = workers
		opt.RBF.Workers = workers
		par, err := BuildRBFModel(ev2, 25, opt)
		if err != nil {
			t.Fatal(err)
		}
		if par.Discrepancy != serial.Discrepancy {
			t.Fatalf("workers=%d: discrepancy %v != serial %v", workers, par.Discrepancy, serial.Discrepancy)
		}
		for i := range serial.Responses {
			if serial.Responses[i] != par.Responses[i] {
				t.Fatalf("workers=%d: response %d differs: %v vs %v", workers, i, serial.Responses[i], par.Responses[i])
			}
			for k := range serial.Points[i] {
				if serial.Points[i][k] != par.Points[i][k] {
					t.Fatalf("workers=%d: sample point %d differs", workers, i)
				}
			}
		}
		if par.Fit.PMin != serial.Fit.PMin || par.Fit.Alpha != serial.Fit.Alpha {
			t.Fatalf("workers=%d: selected (%d, %v), serial (%d, %v)",
				workers, par.Fit.PMin, par.Fit.Alpha, serial.Fit.PMin, serial.Fit.Alpha)
		}
		if serial.Predict(pt) != par.Predict(pt) {
			t.Fatalf("workers=%d: parallel build produced a different model", workers)
		}
	}
}

func TestEvalAllDeterministicAcrossWorkerCounts(t *testing.T) {
	ev := FuncEvaluator(syntheticCPI)
	space := design.PaperSpace()
	cfgs := make([]design.Config, 40)
	for i := range cfgs {
		pt := make(design.Point, space.N())
		for k := range pt {
			pt[k] = float64((i*7+k*3)%11) / 10
		}
		cfgs[i] = space.Decode(pt, len(cfgs))
	}
	want := make([]float64, len(cfgs))
	evalAll(context.Background(), ev, cfgs, want, 1)
	for _, workers := range []int{2, 3, 8, 100} {
		got := make([]float64, len(cfgs))
		evalAll(context.Background(), ev, cfgs, got, workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: ys[%d] = %v, serial %v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestTestSetIdenticalAcrossWorkerCounts(t *testing.T) {
	ev := FuncEvaluator(syntheticCPI)
	want := NewTestSetWorkers(ev, nil, 30, 17, 1)
	for _, workers := range []int{0, 2, 6} {
		got := NewTestSetWorkers(ev, nil, 30, 17, workers)
		for i := range want.Configs {
			if got.Configs[i] != want.Configs[i] {
				t.Fatalf("workers=%d: config %d differs", workers, i)
			}
			if got.Actual[i] != want.Actual[i] {
				t.Fatalf("workers=%d: response %d differs", workers, i)
			}
		}
	}
}

func TestSimCacheSingleFlight(t *testing.T) {
	ev, err := NewSimEvaluator("equake", 6000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := design.PaperSpace().Decode(mid(design.PaperSpace()), 50)
	// Hammer one configuration from many goroutines: single-flight must
	// collapse the concurrent misses into exactly one simulation.
	var wg sync.WaitGroup
	results := make([]float64, 16)
	for g := range results {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[g] = ev.Eval(cfg)
		}()
	}
	wg.Wait()
	if n := ev.Simulations(); n != 1 {
		t.Fatalf("%d simulations for one config under concurrency, want 1", n)
	}
	for _, r := range results {
		if r != results[0] {
			t.Fatalf("divergent concurrent results: %v", results)
		}
	}
}

func TestCrossValidateTracksTestError(t *testing.T) {
	ev := FuncEvaluator(syntheticCPI)
	m, err := BuildRBFModel(ev, 80, fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	cv := m.CrossValidate(5)
	if cv.N == 0 || cv.Mean <= 0 {
		t.Fatalf("CV stats malformed: %+v", cv)
	}
	ts := NewTestSet(ev, nil, 40, 13)
	test := m.Validate(ts)
	// CV should be the same order of magnitude as the test error (it is
	// an estimate, typically pessimistic since folds are smaller).
	if cv.Mean > test.Mean*20+5 || test.Mean > cv.Mean*20+5 {
		t.Fatalf("CV %v%% wildly off from test %v%%", cv.Mean, test.Mean)
	}
}
