package core

import (
	"testing"

	"predperf/internal/design"
)

func TestMetricViewsShareSimulations(t *testing.T) {
	ev, err := NewSimEvaluator("crafty", 8000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := design.PaperSpace().Decode(mid(design.PaperSpace()), 50)
	cpi := ev.Eval(cfg)
	n := ev.Simulations()

	epi := ev.WithMetric(MetricEPI)
	edp := ev.WithMetric(MetricEDP)
	pw := ev.WithMetric(MetricPower)
	vEPI, vEDP, vPW := epi.Eval(cfg), edp.Eval(cfg), pw.Eval(cfg)
	if ev.Simulations() != n {
		t.Fatalf("metric views re-simulated: %d → %d", n, ev.Simulations())
	}
	if vEPI <= 0 || vEDP <= 0 || vPW <= 0 {
		t.Fatalf("non-positive metrics: EPI=%v EDP=%v P=%v", vEPI, vEDP, vPW)
	}
	// EDP = EPI × CPI by construction.
	if d := vEDP - vEPI*cpi; d > 1e-9*vEDP || d < -1e-9*vEDP {
		t.Fatalf("EDP %v != EPI·CPI %v", vEDP, vEPI*cpi)
	}
}

func TestMetricStrings(t *testing.T) {
	cases := map[Metric]string{MetricCPI: "CPI", MetricEPI: "EPI", MetricEDP: "EDP", MetricPower: "power"}
	for m, want := range cases {
		if m.String() != want {
			t.Fatalf("%d.String() = %q", m, m.String())
		}
	}
}

func TestBuildModelForPowerMetric(t *testing.T) {
	if testing.Short() {
		t.Skip("power model build in -short mode")
	}
	ev, err := NewSimEvaluator("ammp", 8000)
	if err != nil {
		t.Fatal(err)
	}
	pev := ev.WithMetric(MetricEPI)
	m, err := BuildRBFModel(pev, 30, fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTestSet(pev, nil, 12, 5)
	st := m.Validate(ts)
	if st.Mean <= 0 || st.Mean > 60 {
		t.Fatalf("EPI model mean error %v%%", st.Mean)
	}
}
