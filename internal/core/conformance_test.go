package core_test

import (
	"testing"

	"predperf/internal/core"
	"predperf/internal/evaltest"
)

// TestSimEvaluatorConformance runs the shared evaluator contract
// against the in-process simulator — the reference implementation the
// cluster's RemoteEvaluator must be bit-compatible with (the same suite
// runs in internal/cluster against a live worker farm).
func TestSimEvaluatorConformance(t *testing.T) {
	evaltest.Run(t, evaltest.Harness{
		New: func(t *testing.T) core.Evaluator {
			ev, err := core.NewSimEvaluator("mcf", 2000)
			if err != nil {
				t.Fatal(err)
			}
			return ev
		},
		Sims: func(ev core.Evaluator) int {
			return ev.(*core.SimEvaluator).Simulations()
		},
	})
}
