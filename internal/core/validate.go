package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"predperf/internal/design"
	"predperf/internal/obs"
	"predperf/internal/par"
	"predperf/internal/rbf"
	"predperf/internal/sample"
)

// ErrorStats are the paper's model-accuracy metrics (Table 3, Figure 4):
// mean, maximum, and standard deviation of the absolute percentage error
// in predicted CPI over a test set.
type ErrorStats struct {
	Mean, Max, Std float64
	N              int
}

// errorStats computes the metrics from paired predictions and truths.
// Pairs whose true response is zero are skipped: a percentage error is
// undefined at actual == 0, and a single such pair would otherwise turn
// Mean/Max/Std into Inf or NaN and poison the whole statistic. N counts
// only the pairs that entered the metrics, so callers can detect how
// many were dropped; if every actual is zero the zero-value ErrorStats
// (N == 0) is returned.
func errorStats(pred, actual []float64) ErrorStats {
	if len(pred) != len(actual) || len(pred) == 0 {
		return ErrorStats{}
	}
	errs := make([]float64, 0, len(pred))
	var sum float64
	var s ErrorStats
	for i := range pred {
		a := math.Abs(actual[i])
		if a == 0 {
			continue
		}
		e := 100 * math.Abs(pred[i]-actual[i]) / a
		errs = append(errs, e)
		sum += e
		if e > s.Max {
			s.Max = e
		}
	}
	if len(errs) == 0 {
		return ErrorStats{}
	}
	s.N = len(errs)
	s.Mean = sum / float64(len(errs))
	var v float64
	for _, e := range errs {
		d := e - s.Mean
		v += d * d
	}
	s.Std = math.Sqrt(v / float64(len(errs)))
	return s
}

// TestSet is an independently generated set of design points with their
// simulated responses, used to estimate predictive accuracy (§3: fifty
// random points from the restricted Table 2 space).
type TestSet struct {
	Configs []design.Config
	Actual  []float64
}

// NewTestSet draws n uniform random points from testSpace (Table 2 by
// default when nil), simulates them, and returns the paired data. The
// generated points are independent of any training sample. Simulation
// runs on all CPUs; see NewTestSetWorkers for an explicit worker count.
func NewTestSet(ev Evaluator, testSpace *design.Space, n int, seed int64) *TestSet {
	return NewTestSetWorkers(ev, testSpace, n, seed, 0)
}

// NewTestSetWorkers is NewTestSet with an explicit worker count
// (par.Workers semantics: 1 = serial, <= 0 = all CPUs). The points are
// drawn serially from the seeded RNG before any simulation starts, and
// the responses are filled through the same fixed-slot evalAll path the
// training sample uses, so the test set is identical for every worker
// count.
func NewTestSetWorkers(ev Evaluator, testSpace *design.Space, n int, seed int64, workers int) *TestSet {
	defer obs.StartSpan("core.testset")()
	if testSpace == nil {
		testSpace = design.TestSpace()
	}
	if seed == 0 {
		seed = 99
	}
	rng := rand.New(rand.NewSource(seed))
	pts := sample.UniformRandom(testSpace, n, rng)
	ts := &TestSet{
		Configs: make([]design.Config, n),
		Actual:  make([]float64, n),
	}
	for i, p := range pts {
		ts.Configs[i] = testSpace.Decode(p, n)
	}
	evalAll(context.Background(), ev, ts.Configs, ts.Actual, par.Workers(workers))
	return ts
}

// predictor is any model that can score a concrete configuration once
// its coordinates are encoded into a model space.
type predictor interface {
	Predict(pt []float64) float64
}

// batchPredictor is the optional fast path: models that can score a
// whole batch in one vectorized pass (rbf.FitResult). Validation takes
// it when present; per-point results must be bit-identical to Predict,
// so the two routes are interchangeable.
type batchPredictor interface {
	PredictBatch(xs [][]float64) []float64
}

func validateOn(m predictor, space *design.Space, ts *TestSet) ErrorStats {
	defer obs.StartSpan("core.validate")()
	var pred []float64
	if bp, ok := m.(batchPredictor); ok {
		xs := make([][]float64, len(ts.Configs))
		for i, c := range ts.Configs {
			xs[i] = space.Encode(c)
		}
		pred = bp.PredictBatch(xs)
	} else {
		pred = make([]float64, len(ts.Configs))
		par.For(par.Workers(0), len(ts.Configs), func(i int) {
			pred[i] = m.Predict(space.Encode(ts.Configs[i]))
		})
	}
	return errorStats(pred, ts.Actual)
}

// Validate estimates the RBF model's accuracy on a test set.
func (m *Model) Validate(ts *TestSet) ErrorStats { return validateOn(m.Fit, m.Space, ts) }

// Validate estimates the linear baseline's accuracy on a test set.
func (m *LinearModel) Validate(ts *TestSet) ErrorStats { return validateOn(m.Fit, m.Space, ts) }

// BuildResult pairs a model with its measured accuracy at one step of
// the iterative procedure.
type BuildResult struct {
	Model *Model
	Stats ErrorStats
}

// BuildToAccuracy is step 6 of the procedure: build models at increasing
// sample sizes until the mean test error drops to targetMeanPct (or the
// sizes are exhausted), returning every intermediate result. A non-nil
// error is returned if the inputs are unusable (nil evaluator or test
// set, no sizes) or if no size produced a model at all.
func BuildToAccuracy(ev Evaluator, sizes []int, targetMeanPct float64, ts *TestSet, opt Options) ([]BuildResult, error) {
	return BuildToAccuracyFromCtx(context.Background(), ev, 0, sizes, targetMeanPct, ts, opt)
}

// BuildToAccuracyFromCtx resumes the iterative escalation from a known
// sample size: only sizes strictly greater than above are built, so a
// caller that already serves a model of a given size (a retraining
// controller) escalates past it instead of rebuilding cheaper models it
// has already outgrown. above <= 0 builds every size, making
// BuildToAccuracy the special case of a fresh start. Cancelling ctx
// stops the escalation at the next size boundary; the results built so
// far are returned alongside ctx.Err() so the caller can distinguish a
// completed escalation (nil error) from an interrupted one.
func BuildToAccuracyFromCtx(ctx context.Context, ev Evaluator, above int, sizes []int, targetMeanPct float64, ts *TestSet, opt Options) ([]BuildResult, error) {
	if ev == nil {
		return nil, errors.New("core: BuildToAccuracy requires a non-nil evaluator")
	}
	if ts == nil || len(ts.Configs) == 0 {
		return nil, errors.New("core: BuildToAccuracy requires a non-empty test set (got nil or zero points)")
	}
	if len(sizes) == 0 {
		return nil, errors.New("core: BuildToAccuracy requires at least one sample size")
	}
	eligible := make([]int, 0, len(sizes))
	for _, size := range sizes {
		if size > above {
			eligible = append(eligible, size)
		}
	}
	if len(eligible) == 0 {
		return nil, fmt.Errorf("core: no sample size in %v exceeds the resume floor %d", sizes, above)
	}
	var out []BuildResult
	var lastErr error
	for _, size := range eligible {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		m, err := BuildRBFModelCtx(ctx, ev, size, opt)
		if err != nil {
			lastErr = err
			continue
		}
		st := m.Validate(ts)
		out = append(out, BuildResult{Model: m, Stats: st})
		if st.Mean <= targetMeanPct {
			break
		}
	}
	if len(out) == 0 {
		return nil, lastErr
	}
	return out, nil
}

// CrossValidate estimates the model's generalization error without any
// additional simulation: k-fold cross-validation over the training
// sample, refitting with the model's winning method parameters
// (p_min, α) on each fold. It is the error signal the adaptive-sampling
// extension uses, exposed as a model diagnostic.
func (m *Model) CrossValidate(folds int) ErrorStats {
	n := len(m.Points)
	if folds < 2 {
		folds = 5
	}
	if folds > n {
		folds = n
	}
	opt := rbf.Options{PMinGrid: []int{m.Fit.PMin}, AlphaGrid: []float64{m.Fit.Alpha}}
	var pred, actual []float64
	for f := 0; f < folds; f++ {
		var trX [][]float64
		var trY []float64
		var hold []int
		for i := 0; i < n; i++ {
			if i%folds == f {
				hold = append(hold, i)
			} else {
				trX = append(trX, m.Points[i])
				trY = append(trY, m.Responses[i])
			}
		}
		fit, err := rbf.Fit(trX, trY, opt)
		if err != nil {
			continue
		}
		for _, i := range hold {
			pred = append(pred, fit.Predict(m.Points[i]))
			actual = append(actual, m.Responses[i])
		}
	}
	return errorStats(pred, actual)
}
