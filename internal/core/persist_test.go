package core

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"predperf/internal/design"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	ev := FuncEvaluator(syntheticCPI)
	m, err := BuildRBFModel(ev, 40, fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.SampleSize != m.SampleSize {
		t.Fatalf("sample size %d, want %d", loaded.SampleSize, m.SampleSize)
	}
	if loaded.Fit.PMin != m.Fit.PMin || loaded.Fit.Alpha != m.Fit.Alpha {
		t.Fatalf("method params (%d,%v), want (%d,%v)",
			loaded.Fit.PMin, loaded.Fit.Alpha, m.Fit.PMin, m.Fit.Alpha)
	}
	// Predictions must be bit-identical.
	rng := rand.New(rand.NewSource(7))
	space := design.PaperSpace()
	for i := 0; i < 50; i++ {
		pt := make(design.Point, space.N())
		for k := range pt {
			pt[k] = rng.Float64()
		}
		if loaded.Predict(pt) != m.Predict(pt) {
			t.Fatalf("prediction diverged at %v", pt)
		}
		cfg := space.Decode(pt, 40)
		if loaded.PredictConfig(cfg) != m.PredictConfig(cfg) {
			t.Fatal("PredictConfig diverged")
		}
	}
	if len(loaded.Configs) != len(m.Configs) || len(loaded.Responses) != len(m.Responses) {
		t.Fatal("training record not preserved")
	}
}

func TestSaveLoadCrossValidateRoundTrip(t *testing.T) {
	ev := FuncEvaluator(syntheticCPI)
	m, err := BuildRBFModel(ev, 40, fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The training points must be restored from the persisted configs:
	// Space.Encode is the same mapping the build used, so they are
	// bit-identical to the originals.
	if len(loaded.Points) != len(m.Points) {
		t.Fatalf("restored %d points, want %d", len(loaded.Points), len(m.Points))
	}
	for i := range m.Points {
		for k := range m.Points[i] {
			if loaded.Points[i][k] != m.Points[i][k] {
				t.Fatalf("restored point %d dim %d = %v, want %v",
					i, k, loaded.Points[i][k], m.Points[i][k])
			}
		}
	}
	// CrossValidate refits on the training data, so a reloaded model
	// must produce exactly the stats of the freshly built one — before
	// the fix it silently returned all-zero ErrorStats.
	want := m.CrossValidate(5)
	got := loaded.CrossValidate(5)
	if want.N == 0 || want.Mean == 0 {
		t.Fatalf("baseline cross-validation degenerate: %+v", want)
	}
	if got != want {
		t.Fatalf("cross-validation diverged after reload: %+v vs %+v", got, want)
	}
}

func TestLoadModelRequiresConfigs(t *testing.T) {
	ev := FuncEvaluator(syntheticCPI)
	m, err := BuildRBFModel(ev, 40, fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	m.Configs = nil // simulate a legacy prediction-only file
	m.Responses = nil
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(&buf); err == nil || !strings.Contains(err.Error(), "training configs") {
		t.Fatalf("want a clear missing-configs error, got %v", err)
	}
}

func TestLoadModelRejectsGarbage(t *testing.T) {
	if _, err := LoadModel(strings.NewReader("not json")); err == nil {
		t.Fatal("expected error for non-JSON input")
	}
	if _, err := LoadModel(strings.NewReader(`{"format":1,"centers":[[0.5]],"radii":[],"weights":[]}`)); err == nil {
		t.Fatal("expected error for mismatched arrays")
	}
}

func TestLoadModelRejectsUnknownFormat(t *testing.T) {
	for _, in := range []string{`{"format": 99}`, `{"format": 0}`, `{}`} {
		_, err := LoadModel(strings.NewReader(in))
		if err == nil {
			t.Fatalf("want error for %s, got nil", in)
		}
		if !strings.Contains(err.Error(), "unsupported model format") {
			t.Fatalf("want a clear format error for %s, got %v", in, err)
		}
	}
}

func TestSaveLoadPreservesName(t *testing.T) {
	ev := FuncEvaluator(syntheticCPI)
	m, err := BuildRBFModel(ev, 40, fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	m.Name = "mcf"
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Name != "mcf" {
		t.Fatalf("loaded name %q, want %q", loaded.Name, "mcf")
	}
}

func TestLoadedModelValidates(t *testing.T) {
	ev := FuncEvaluator(syntheticCPI)
	m, err := BuildRBFModel(ev, 40, fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTestSet(ev, nil, 20, 3)
	a, b := m.Validate(ts), loaded.Validate(ts)
	if a != b {
		t.Fatalf("validation differs: %+v vs %+v", a, b)
	}
}
