package core

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"predperf/internal/design"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	ev := FuncEvaluator(syntheticCPI)
	m, err := BuildRBFModel(ev, 40, fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.SampleSize != m.SampleSize {
		t.Fatalf("sample size %d, want %d", loaded.SampleSize, m.SampleSize)
	}
	if loaded.Fit.PMin != m.Fit.PMin || loaded.Fit.Alpha != m.Fit.Alpha {
		t.Fatalf("method params (%d,%v), want (%d,%v)",
			loaded.Fit.PMin, loaded.Fit.Alpha, m.Fit.PMin, m.Fit.Alpha)
	}
	// Predictions must be bit-identical.
	rng := rand.New(rand.NewSource(7))
	space := design.PaperSpace()
	for i := 0; i < 50; i++ {
		pt := make(design.Point, space.N())
		for k := range pt {
			pt[k] = rng.Float64()
		}
		if loaded.Predict(pt) != m.Predict(pt) {
			t.Fatalf("prediction diverged at %v", pt)
		}
		cfg := space.Decode(pt, 40)
		if loaded.PredictConfig(cfg) != m.PredictConfig(cfg) {
			t.Fatal("PredictConfig diverged")
		}
	}
	if len(loaded.Configs) != len(m.Configs) || len(loaded.Responses) != len(m.Responses) {
		t.Fatal("training record not preserved")
	}
}

func TestLoadModelRejectsGarbage(t *testing.T) {
	if _, err := LoadModel(strings.NewReader("not json")); err == nil {
		t.Fatal("expected error for non-JSON input")
	}
	if _, err := LoadModel(strings.NewReader(`{"format": 99}`)); err == nil {
		t.Fatal("expected error for unknown format")
	}
	if _, err := LoadModel(strings.NewReader(`{"format":1,"centers":[[0.5]],"radii":[],"weights":[]}`)); err == nil {
		t.Fatal("expected error for mismatched arrays")
	}
}

func TestLoadedModelValidates(t *testing.T) {
	ev := FuncEvaluator(syntheticCPI)
	m, err := BuildRBFModel(ev, 40, fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTestSet(ev, nil, 20, 3)
	a, b := m.Validate(ts), loaded.Validate(ts)
	if a != b {
		t.Fatalf("validation differs: %+v vs %+v", a, b)
	}
}
