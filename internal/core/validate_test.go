package core

import (
	"context"
	"math"
	"strings"
	"testing"
)

func TestErrorStatsSkipsZeroActuals(t *testing.T) {
	// A zero true response has no defined percentage error; before the
	// fix it produced Inf that poisoned Mean/Max/Std.
	pred := []float64{1.0, 2.0, 0.5}
	actual := []float64{1.0, 0.0, 1.0}
	s := errorStats(pred, actual)
	if s.N != 2 {
		t.Fatalf("N = %d, want 2 (zero-actual pair skipped)", s.N)
	}
	if math.IsInf(s.Mean, 0) || math.IsNaN(s.Mean) ||
		math.IsInf(s.Max, 0) || math.IsNaN(s.Max) ||
		math.IsInf(s.Std, 0) || math.IsNaN(s.Std) {
		t.Fatalf("stats poisoned by zero actual: %+v", s)
	}
	// Remaining pairs: 0%% and 50%% error → mean 25, max 50, std 25.
	if math.Abs(s.Mean-25) > 1e-12 || math.Abs(s.Max-50) > 1e-12 || math.Abs(s.Std-25) > 1e-12 {
		t.Fatalf("stats over surviving pairs wrong: %+v", s)
	}
}

func TestErrorStatsAllZeroActuals(t *testing.T) {
	s := errorStats([]float64{1, 2}, []float64{0, 0})
	if s != (ErrorStats{}) {
		t.Fatalf("want zero-value stats when every actual is zero, got %+v", s)
	}
}

func TestErrorStatsUnchangedOnCleanInput(t *testing.T) {
	pred := []float64{1.1, 1.9, 3.3}
	actual := []float64{1.0, 2.0, 3.0}
	s := errorStats(pred, actual)
	if s.N != 3 {
		t.Fatalf("N = %d, want 3", s.N)
	}
	// Errors are 10%, 5%, 10% → mean 25/3, max 10.
	if math.Abs(s.Mean-25.0/3) > 1e-9 || math.Abs(s.Max-10) > 1e-9 {
		t.Fatalf("clean-input stats wrong: %+v", s)
	}
}

func TestBuildToAccuracyRejectsBadInputs(t *testing.T) {
	ev := FuncEvaluator(syntheticCPI)
	ts := NewTestSet(ev, nil, 10, 3)

	// Nil test set used to panic inside Validate.
	if _, err := BuildToAccuracy(ev, []int{20}, 5, nil, fastOpt()); err == nil ||
		!strings.Contains(err.Error(), "test set") {
		t.Fatalf("want test-set error for nil ts, got %v", err)
	}
	if _, err := BuildToAccuracy(ev, []int{20}, 5, &TestSet{}, fastOpt()); err == nil ||
		!strings.Contains(err.Error(), "test set") {
		t.Fatalf("want test-set error for empty ts, got %v", err)
	}
	if _, err := BuildToAccuracy(nil, []int{20}, 5, ts, fastOpt()); err == nil ||
		!strings.Contains(err.Error(), "evaluator") {
		t.Fatalf("want evaluator error for nil ev, got %v", err)
	}
	if _, err := BuildToAccuracy(ev, nil, 5, ts, fastOpt()); err == nil ||
		!strings.Contains(err.Error(), "sample size") {
		t.Fatalf("want sizes error for empty sizes, got %v", err)
	}

	// And the happy path still works.
	res, err := BuildToAccuracy(ev, []int{20, 30}, 1e9, ts, fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no results from valid inputs")
	}
}

// TestBuildToAccuracyFromCtxResumeFloor: only sizes strictly above the
// resume floor are built, an exhausted ladder is a structured error,
// and floor 0 reproduces the fresh-start behavior.
func TestBuildToAccuracyFromCtxResumeFloor(t *testing.T) {
	ev := FuncEvaluator(syntheticCPI)
	ts := NewTestSet(ev, nil, 10, 3)

	// Floor 20 skips the 15- and 20-point builds; the impossible target
	// forces every eligible size to run.
	res, err := BuildToAccuracyFromCtx(context.Background(), ev, 20, []int{15, 20, 25, 30}, 0, ts, fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Model.SampleSize != 25 || res[1].Model.SampleSize != 30 {
		sizes := make([]int, len(res))
		for i, r := range res {
			sizes[i] = r.Model.SampleSize
		}
		t.Fatalf("floor 20 over {15,20,25,30} built sizes %v, want [25 30]", sizes)
	}

	// A ladder with nothing above the floor fails up front, without
	// building anything.
	if _, err := BuildToAccuracyFromCtx(context.Background(), ev, 30, []int{15, 20, 30}, 5, ts, fastOpt()); err == nil ||
		!strings.Contains(err.Error(), "resume floor") {
		t.Fatalf("want resume-floor error for an exhausted ladder, got %v", err)
	}

	// Floor 0 is a fresh start: identical sizes to BuildToAccuracy.
	a, err := BuildToAccuracyFromCtx(context.Background(), ev, 0, []int{15, 20}, 0, ts, fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildToAccuracy(ev, []int{15, 20}, 0, ts, fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || a[0].Stats.Mean != b[0].Stats.Mean {
		t.Fatalf("floor 0 diverged from BuildToAccuracy: %+v vs %+v", a, b)
	}
}

// TestBuildToAccuracyFromCtxCancel: a cancelled context stops the
// escalation and surfaces ctx.Err.
func TestBuildToAccuracyFromCtxCancel(t *testing.T) {
	ev := FuncEvaluator(syntheticCPI)
	ts := NewTestSet(ev, nil, 10, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := BuildToAccuracyFromCtx(ctx, ev, 0, []int{15, 20}, 5, ts, fastOpt())
	if err == nil || !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Fatalf("cancelled escalation returned err %v, want context.Canceled", err)
	}
	if len(res) != 0 {
		t.Fatalf("pre-cancelled escalation built %d models, want 0", len(res))
	}
}
