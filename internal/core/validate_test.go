package core

import (
	"math"
	"strings"
	"testing"
)

func TestErrorStatsSkipsZeroActuals(t *testing.T) {
	// A zero true response has no defined percentage error; before the
	// fix it produced Inf that poisoned Mean/Max/Std.
	pred := []float64{1.0, 2.0, 0.5}
	actual := []float64{1.0, 0.0, 1.0}
	s := errorStats(pred, actual)
	if s.N != 2 {
		t.Fatalf("N = %d, want 2 (zero-actual pair skipped)", s.N)
	}
	if math.IsInf(s.Mean, 0) || math.IsNaN(s.Mean) ||
		math.IsInf(s.Max, 0) || math.IsNaN(s.Max) ||
		math.IsInf(s.Std, 0) || math.IsNaN(s.Std) {
		t.Fatalf("stats poisoned by zero actual: %+v", s)
	}
	// Remaining pairs: 0%% and 50%% error → mean 25, max 50, std 25.
	if math.Abs(s.Mean-25) > 1e-12 || math.Abs(s.Max-50) > 1e-12 || math.Abs(s.Std-25) > 1e-12 {
		t.Fatalf("stats over surviving pairs wrong: %+v", s)
	}
}

func TestErrorStatsAllZeroActuals(t *testing.T) {
	s := errorStats([]float64{1, 2}, []float64{0, 0})
	if s != (ErrorStats{}) {
		t.Fatalf("want zero-value stats when every actual is zero, got %+v", s)
	}
}

func TestErrorStatsUnchangedOnCleanInput(t *testing.T) {
	pred := []float64{1.1, 1.9, 3.3}
	actual := []float64{1.0, 2.0, 3.0}
	s := errorStats(pred, actual)
	if s.N != 3 {
		t.Fatalf("N = %d, want 3", s.N)
	}
	// Errors are 10%, 5%, 10% → mean 25/3, max 10.
	if math.Abs(s.Mean-25.0/3) > 1e-9 || math.Abs(s.Max-10) > 1e-9 {
		t.Fatalf("clean-input stats wrong: %+v", s)
	}
}

func TestBuildToAccuracyRejectsBadInputs(t *testing.T) {
	ev := FuncEvaluator(syntheticCPI)
	ts := NewTestSet(ev, nil, 10, 3)

	// Nil test set used to panic inside Validate.
	if _, err := BuildToAccuracy(ev, []int{20}, 5, nil, fastOpt()); err == nil ||
		!strings.Contains(err.Error(), "test set") {
		t.Fatalf("want test-set error for nil ts, got %v", err)
	}
	if _, err := BuildToAccuracy(ev, []int{20}, 5, &TestSet{}, fastOpt()); err == nil ||
		!strings.Contains(err.Error(), "test set") {
		t.Fatalf("want test-set error for empty ts, got %v", err)
	}
	if _, err := BuildToAccuracy(nil, []int{20}, 5, ts, fastOpt()); err == nil ||
		!strings.Contains(err.Error(), "evaluator") {
		t.Fatalf("want evaluator error for nil ev, got %v", err)
	}
	if _, err := BuildToAccuracy(ev, nil, 5, ts, fastOpt()); err == nil ||
		!strings.Contains(err.Error(), "sample size") {
		t.Fatalf("want sizes error for empty sizes, got %v", err)
	}

	// And the happy path still works.
	res, err := BuildToAccuracy(ev, []int{20, 30}, 1e9, ts, fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no results from valid inputs")
	}
}
