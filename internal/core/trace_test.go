package core

import (
	"bytes"
	"context"
	"testing"

	"predperf/internal/obs"
)

// TestTracedBuildBitIdentical proves the tracing instrumentation
// observes without perturbing: a build with an active request-scoped
// trace (and parallel workers, so the per-point spans actually fire
// concurrently) serializes byte-for-byte identically to an untraced
// build.
func TestTracedBuildBitIdentical(t *testing.T) {
	opt := fastOpt()
	opt.Parallel = 4
	opt.RBF.Workers = 4

	ev1, err := NewSimEvaluator("twolf", 6000)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := BuildRBFModel(ev1, 25, opt)
	if err != nil {
		t.Fatal(err)
	}

	ev2, err := NewSimEvaluator("twolf", 6000)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace("determinism")
	traced, err := BuildRBFModelCtx(obs.WithTrace(context.Background(), tr), ev2, 25, opt)
	if err != nil {
		t.Fatal(err)
	}

	var a, b bytes.Buffer
	if err := plain.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := traced.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("traced build differs from untraced build:\nuntraced: %d bytes\ntraced:   %d bytes", a.Len(), b.Len())
	}
	if tr.Len() == 0 {
		t.Fatal("trace recorded no spans — the traced path was not exercised")
	}
}

// TestTracedBuildSpanTree checks the recorded span forest has the
// expected shape: one core.build_rbf root with core.sample,
// core.simulate, and core.fit children, and a core.sim_point span per
// design point parented under core.simulate.
func TestTracedBuildSpanTree(t *testing.T) {
	ev := FuncEvaluator(syntheticCPI)
	tr := obs.NewTrace("tree")
	const size = 20
	if _, err := BuildRBFModelCtx(obs.WithTrace(context.Background(), tr), ev, size, fastOpt()); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	spans := tr.Spans()
	byName := map[string][]obs.SpanInfo{}
	for _, s := range spans {
		byName[s.Name] = append(byName[s.Name], s)
	}
	for _, name := range []string{"core.build_rbf", "core.sample", "core.simulate", "core.fit"} {
		if len(byName[name]) != 1 {
			t.Fatalf("want exactly one %s span, got %d", name, len(byName[name]))
		}
	}
	root := byName["core.build_rbf"][0]
	if root.Parent != 0 {
		t.Fatalf("core.build_rbf should be a root, parent = %d", root.Parent)
	}
	for _, name := range []string{"core.sample", "core.simulate", "core.fit"} {
		if p := byName[name][0].Parent; p != root.ID {
			t.Fatalf("%s parented under %d, want build root %d", name, p, root.ID)
		}
	}
	sim := byName["core.simulate"][0]
	points := byName["core.sim_point"]
	if len(points) != size {
		t.Fatalf("recorded %d core.sim_point spans, want %d", len(points), size)
	}
	for _, p := range points {
		if p.Parent != sim.ID {
			t.Fatalf("sim_point parented under %d, want core.simulate %d", p.Parent, sim.ID)
		}
	}
	// LHS candidate scoring and grid-cell spans ride under their stages.
	if len(byName["sample.lhs_candidate"]) != fastOpt().LHSCandidates {
		t.Fatalf("recorded %d sample.lhs_candidate spans, want %d",
			len(byName["sample.lhs_candidate"]), fastOpt().LHSCandidates)
	}
	wantCells := len(fastOpt().RBF.PMinGrid) * len(fastOpt().RBF.AlphaGrid)
	if len(byName["rbf.grid_cell"]) != wantCells {
		t.Fatalf("recorded %d rbf.grid_cell spans, want %d", len(byName["rbf.grid_cell"]), wantCells)
	}
}
