package core

import (
	"encoding/json"
	"fmt"
	"io"

	"predperf/internal/design"
	"predperf/internal/rbf"
)

// modelFile is the on-disk representation of a fitted model. Only what
// prediction needs is stored: the design space, the basis functions, and
// the training diagnostics; the regression tree is not persisted.
type modelFile struct {
	Format     int             `json:"format"`
	Name       string          `json:"name,omitempty"`
	SampleSize int             `json:"sample_size"`
	PMin       int             `json:"p_min"`
	Alpha      float64         `json:"alpha"`
	AICc       float64         `json:"aicc"`
	Space      []design.Param  `json:"space"`
	Centers    [][]float64     `json:"centers"`
	Radii      [][]float64     `json:"radii"`
	Weights    []float64       `json:"weights"`
	Configs    []design.Config `json:"configs,omitempty"`
	Responses  []float64       `json:"responses,omitempty"`
}

const modelFormat = 1

// ModelFormatVersion is the on-disk model format this build reads and
// writes, exported so operational surfaces (predserve -version,
// /healthz, /statusz) can report which model files the binary accepts.
const ModelFormatVersion = modelFormat

// Save serializes the model as JSON. The saved model reloads with
// LoadModel and predicts identically; the regression tree is not
// preserved, and the normalized training points are re-derived from the
// persisted configs at load time rather than stored.
func (m *Model) Save(w io.Writer) error {
	f := modelFile{
		Format:     modelFormat,
		Name:       m.Name,
		SampleSize: m.SampleSize,
		PMin:       m.Fit.PMin,
		Alpha:      m.Fit.Alpha,
		AICc:       m.Fit.AICc,
		Space:      m.Space.Params,
		Weights:    m.Fit.Net.Weights,
		Configs:    m.Configs,
		Responses:  m.Responses,
	}
	for _, b := range m.Fit.Net.Bases {
		f.Centers = append(f.Centers, b.Center)
		f.Radii = append(f.Radii, b.Radius)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&f)
}

// LoadModel reads a model saved with Save. Files that lack the training
// configs are rejected: without them the training points cannot be
// restored, and diagnostics such as CrossValidate would silently
// degenerate to empty statistics.
func LoadModel(r io.Reader) (*Model, error) {
	var f modelFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("core: loading model: %w", err)
	}
	if f.Format != modelFormat {
		return nil, fmt.Errorf("core: unsupported model format %d (this build reads format %d; re-save the model with a matching build)", f.Format, modelFormat)
	}
	if len(f.Centers) != len(f.Radii) || len(f.Centers) != len(f.Weights) {
		return nil, fmt.Errorf("core: malformed model: %d centers, %d radii, %d weights",
			len(f.Centers), len(f.Radii), len(f.Weights))
	}
	if len(f.Configs) == 0 {
		return nil, fmt.Errorf("core: model file has no training configs: cannot restore training points (re-save the model with a current build)")
	}
	if len(f.Configs) != len(f.Responses) {
		return nil, fmt.Errorf("core: malformed model: %d configs but %d responses",
			len(f.Configs), len(f.Responses))
	}
	net := &rbf.Network{Weights: f.Weights}
	for i := range f.Centers {
		if len(f.Centers[i]) != len(f.Space) || len(f.Radii[i]) != len(f.Space) {
			return nil, fmt.Errorf("core: malformed model: basis %d has wrong dimensionality", i)
		}
		net.Bases = append(net.Bases, rbf.Basis{Center: f.Centers[i], Radius: f.Radii[i]})
	}
	// Cache 1/r² per basis now, before the network is shared across
	// serving goroutines: the prediction hot loop then multiplies
	// instead of dividing, with bit-identical results.
	net.Precompute()
	m := &Model{
		Name:       f.Name,
		Space:      &design.Space{Params: f.Space},
		SampleSize: f.SampleSize,
		Fit: &rbf.FitResult{
			Net:   net,
			PMin:  f.PMin,
			Alpha: f.Alpha,
			AICc:  f.AICc,
		},
		Configs:   f.Configs,
		Responses: f.Responses,
	}
	// Re-encode the training points from the persisted configs so
	// training-data diagnostics (CrossValidate in particular) work on a
	// reloaded model exactly as on a freshly built one. Encode is the
	// same mapping sampleAndSimulate used at build time, so the restored
	// points are bit-identical to the originals.
	m.Points = make([]design.Point, len(f.Configs))
	for i, cfg := range f.Configs {
		m.Points[i] = m.Space.Encode(cfg)
	}
	return m, nil
}
