package core

import (
	"encoding/json"
	"fmt"
	"io"

	"predperf/internal/design"
	"predperf/internal/rbf"
)

// modelFile is the on-disk representation of a fitted model. Only what
// prediction needs is stored: the design space, the basis functions, and
// the training diagnostics; the regression tree is not persisted.
type modelFile struct {
	Format     int             `json:"format"`
	SampleSize int             `json:"sample_size"`
	PMin       int             `json:"p_min"`
	Alpha      float64         `json:"alpha"`
	AICc       float64         `json:"aicc"`
	Space      []design.Param  `json:"space"`
	Centers    [][]float64     `json:"centers"`
	Radii      [][]float64     `json:"radii"`
	Weights    []float64       `json:"weights"`
	Configs    []design.Config `json:"configs,omitempty"`
	Responses  []float64       `json:"responses,omitempty"`
}

const modelFormat = 1

// Save serializes the model as JSON. The saved model reloads with
// LoadModel and predicts identically; the regression tree and raw
// training points are not preserved.
func (m *Model) Save(w io.Writer) error {
	f := modelFile{
		Format:     modelFormat,
		SampleSize: m.SampleSize,
		PMin:       m.Fit.PMin,
		Alpha:      m.Fit.Alpha,
		AICc:       m.Fit.AICc,
		Space:      m.Space.Params,
		Weights:    m.Fit.Net.Weights,
		Configs:    m.Configs,
		Responses:  m.Responses,
	}
	for _, b := range m.Fit.Net.Bases {
		f.Centers = append(f.Centers, b.Center)
		f.Radii = append(f.Radii, b.Radius)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&f)
}

// LoadModel reads a model saved with Save.
func LoadModel(r io.Reader) (*Model, error) {
	var f modelFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("core: loading model: %w", err)
	}
	if f.Format != modelFormat {
		return nil, fmt.Errorf("core: unsupported model format %d", f.Format)
	}
	if len(f.Centers) != len(f.Radii) || len(f.Centers) != len(f.Weights) {
		return nil, fmt.Errorf("core: malformed model: %d centers, %d radii, %d weights",
			len(f.Centers), len(f.Radii), len(f.Weights))
	}
	net := &rbf.Network{Weights: f.Weights}
	for i := range f.Centers {
		if len(f.Centers[i]) != len(f.Space) || len(f.Radii[i]) != len(f.Space) {
			return nil, fmt.Errorf("core: malformed model: basis %d has wrong dimensionality", i)
		}
		net.Bases = append(net.Bases, rbf.Basis{Center: f.Centers[i], Radius: f.Radii[i]})
	}
	m := &Model{
		Space:      &design.Space{Params: f.Space},
		SampleSize: f.SampleSize,
		Fit: &rbf.FitResult{
			Net:   net,
			PMin:  f.PMin,
			Alpha: f.Alpha,
			AICc:  f.AICc,
		},
		Configs:   f.Configs,
		Responses: f.Responses,
	}
	return m, nil
}
