// Package core implements the paper's primary contribution: the
// BuildRBFModel procedure of §1/§2 that turns a design space, a
// space-filling sample, and a cycle-accurate simulator into an accurate
// non-linear predictive model of CPI — plus its validation loop (random
// test sets, mean/max/std percentage error), the iterative sample-size
// escalation of step 6, and the linear-regression baseline pipeline used
// for the §4.2 comparison.
package core

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"predperf/internal/design"
	"predperf/internal/obs"
	"predperf/internal/sim"
	"predperf/internal/trace"
)

// Pipeline counters (internal/obs). Simulations run vs. cache hits is
// the cost statistic the paper optimizes; single-flight waits say how
// often concurrent workers collided on the same configuration.
var (
	cSims      = obs.NewCounter("core.sims_run")
	cCacheHits = obs.NewCounter("core.sim_cache_hits")
	cSFWaits   = obs.NewCounter("core.singleflight_waits")
	cEvals     = obs.NewCounter("core.evals")
)

// Evaluator produces the response (CPI) at a concrete design point.
// Implementations stand in for the paper's "detailed simulation" step
// and are expected to be deterministic.
type Evaluator interface {
	Eval(cfg design.Config) float64
}

// Metric selects which response a SimEvaluator reports — the paper
// models CPI, and its §6 conclusion notes the same machinery applies to
// power-oriented metrics, which the simulator's activity-based power
// model provides.
type Metric int

const (
	// MetricCPI is cycles per instruction (the paper's response).
	MetricCPI Metric = iota
	// MetricEPI is energy per instruction in nanojoules.
	MetricEPI
	// MetricEDP is the energy-delay product per instruction (nJ·cycles).
	MetricEDP
	// MetricPower is average power in watts at 2 GHz.
	MetricPower
)

func (m Metric) String() string {
	switch m {
	case MetricEPI:
		return "EPI"
	case MetricEDP:
		return "EDP"
	case MetricPower:
		return "power"
	default:
		return "CPI"
	}
}

// ParseMetric maps a metric name to its Metric, case-insensitively. It
// is the inverse of String and accepts the empty string as MetricCPI so
// wire formats can omit the default.
func ParseMetric(s string) (Metric, error) {
	switch strings.ToLower(s) {
	case "", "cpi":
		return MetricCPI, nil
	case "epi":
		return MetricEPI, nil
	case "edp":
		return MetricEDP, nil
	case "power":
		return MetricPower, nil
	default:
		return MetricCPI, fmt.Errorf("core: unknown metric %q (want cpi, epi, edp, or power)", s)
	}
}

// SimEvaluator runs the cycle-level simulator on a fixed benchmark trace
// and memoizes full results by configuration, so repeated model builds
// (e.g. the sample-size sweep of Figure 4) never simulate the same
// machine twice — even across different metrics.
type SimEvaluator struct {
	Benchmark string
	TraceLen  int
	Metric    Metric // response reported by Eval; default MetricCPI

	tr    trace.Trace
	state *simCache // shared across WithMetric views
}

// simCache is the memoization state shared by all metric views of one
// evaluator. Lookups take only a read lock, so concurrent workers that
// hit the cache never serialize on each other; each distinct
// configuration is guarded by a single-flight entry so that concurrent
// misses on the same key run the simulator exactly once (the losers
// block on the entry's Once until the winner publishes the result).
type simCache struct {
	mu    sync.RWMutex
	cache map[string]*simEntry
	sims  int
}

// simEntry is the single-flight slot for one configuration. done flips
// after the result is published, letting the observability layer
// distinguish a plain cache hit from a wait on an in-flight simulation.
type simEntry struct {
	once sync.Once
	done atomic.Bool
	res  sim.Result
}

// NewSimEvaluator builds a CPI evaluator for one of the benchmark
// profiles.
func NewSimEvaluator(benchmark string, traceLen int) (*SimEvaluator, error) {
	tr, err := trace.Cached(benchmark, traceLen)
	if err != nil {
		return nil, err
	}
	return &SimEvaluator{
		Benchmark: benchmark,
		TraceLen:  traceLen,
		tr:        tr,
		state:     &simCache{cache: map[string]*simEntry{}},
	}, nil
}

// WithMetric returns a view of the evaluator reporting a different
// metric. The simulation cache is shared with the receiver.
func (e *SimEvaluator) WithMetric(m Metric) *SimEvaluator {
	return &SimEvaluator{
		Benchmark: e.Benchmark, TraceLen: e.TraceLen, Metric: m,
		tr: e.tr, state: e.state,
	}
}

// resolve returns the simulator machine description for cfg together
// with its memoized result, constructing the machine description exactly
// once per call (the metric accessors below reuse it). Concurrent misses
// on the same configuration single-flight through the entry's Once.
func (e *SimEvaluator) resolve(cfg design.Config) (sim.Config, sim.Result) {
	sc := sim.FromDesign(cfg)
	sc.WarmupInsts = e.TraceLen / 5 // discard cold-start statistics
	key := cfg.Key()
	st := e.state
	st.mu.RLock()
	ent, ok := st.cache[key]
	st.mu.RUnlock()
	if !ok {
		st.mu.Lock()
		if ent, ok = st.cache[key]; !ok {
			ent = &simEntry{}
			st.cache[key] = ent
		}
		st.mu.Unlock()
	}
	if ok {
		if ent.done.Load() {
			cCacheHits.Inc()
		} else {
			cSFWaits.Inc()
		}
	}
	ent.once.Do(func() {
		ent.res = sim.Run(sc, e.tr)
		ent.done.Store(true)
		cSims.Inc()
		st.mu.Lock()
		st.sims++
		st.mu.Unlock()
	})
	return sc, ent.res
}

// Eval returns the configured metric for cfg, running the simulator on
// a cache miss.
func (e *SimEvaluator) Eval(cfg design.Config) float64 {
	cEvals.Inc()
	sc, res := e.resolve(cfg)
	switch e.Metric {
	case MetricEPI:
		return res.EPI(sc) / 1000 // nJ
	case MetricEDP:
		return res.EDP(sc) / 1000 // nJ·cycles
	case MetricPower:
		return res.AvgPowerW(sc, 2.0)
	default:
		return res.CPI()
	}
}

// Simulations reports how many distinct simulations have been run — the
// "simulation cost" the paper optimizes.
func (e *SimEvaluator) Simulations() int {
	e.state.mu.RLock()
	defer e.state.mu.RUnlock()
	return e.state.sims
}

// Detail returns the full simulator statistics at cfg (memoized; used
// by diagnostics such as the response-surface study of Figure 1).
func (e *SimEvaluator) Detail(cfg design.Config) sim.Result {
	_, res := e.resolve(cfg)
	return res
}

// FuncEvaluator adapts a plain function, for tests and synthetic
// experiments.
type FuncEvaluator func(design.Config) float64

// Eval invokes the function.
func (f FuncEvaluator) Eval(cfg design.Config) float64 { return f(cfg) }

var _ Evaluator = (*SimEvaluator)(nil)
var _ Evaluator = FuncEvaluator(nil)

func (e *SimEvaluator) String() string {
	return fmt.Sprintf("sim(%s, %d insts)", e.Benchmark, e.TraceLen)
}
