package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strconv"

	"predperf/internal/design"
	"predperf/internal/linreg"
	"predperf/internal/obs"
	"predperf/internal/par"
	"predperf/internal/rbf"
	"predperf/internal/sample"
)

// Options configures the model-building procedure. Zero values take the
// defaults used throughout the paper reproduction.
type Options struct {
	Space         *design.Space // modeling space; default Table 1
	LHSCandidates int           // latin hypercube draws scored by discrepancy
	RBF           rbf.Options   // (p_min, α) grids etc.
	Seed          int64         // sampling seed
	// Parallel bounds the worker goroutines used by every stage of the
	// build — LHS candidate scoring, design-point simulation, and the
	// (p_min, α) grid search. 0 (the default) means one worker per CPU
	// (runtime.GOMAXPROCS(0)); 1 forces the serial path; n > 1 uses
	// exactly n workers. The built model is bit-identical regardless of
	// the setting: all parallel stages write to fixed result slots and
	// never share RNG state across goroutines.
	Parallel int
}

func (o Options) withDefaults() Options {
	if o.Space == nil {
		o.Space = design.PaperSpace()
	}
	if o.LHSCandidates <= 0 {
		o.LHSCandidates = 64
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Parallel <= 0 {
		o.Parallel = runtime.GOMAXPROCS(0)
	}
	if o.RBF.Workers == 0 {
		o.RBF.Workers = o.Parallel
	}
	return o
}

// Model is a fitted non-linear CPI model over a design space.
type Model struct {
	// Name identifies the workload the model was trained for (usually
	// the benchmark name). It travels with the persisted model so a
	// serving registry can address models by name.
	Name       string
	Space      *design.Space
	SampleSize int
	Fit        *rbf.FitResult

	// Training data: the simulated configurations (encoded into model
	// coordinates) and their responses.
	Points    []design.Point
	Configs   []design.Config
	Responses []float64

	// Discrepancy of the chosen latin hypercube sample (Figure 2).
	Discrepancy float64
}

// Predict evaluates the model at a normalized point in the model space.
func (m *Model) Predict(pt design.Point) float64 {
	return m.Fit.Predict(pt)
}

// PredictConfig evaluates the model at a concrete configuration.
func (m *Model) PredictConfig(cfg design.Config) float64 {
	return m.Fit.Predict(m.Space.Encode(cfg))
}

// PredictBatch evaluates the model at every normalized point with one
// compiled matrix pass (blocked design matrix × weight vector) instead
// of a per-point walk over the RBF centers. Results are bit-identical
// to calling Predict per point.
func (m *Model) PredictBatch(pts []design.Point) []float64 {
	return m.Fit.PredictBatch(asFloats(pts))
}

// PredictConfigs evaluates the model at every concrete configuration
// through the same compiled batch path as PredictBatch; it is the
// vectorized counterpart of per-config PredictConfig and bit-identical
// to it.
func (m *Model) PredictConfigs(cfgs []design.Config) []float64 {
	xs := make([][]float64, len(cfgs))
	for i, c := range cfgs {
		xs[i] = m.Space.Encode(c)
	}
	return m.Fit.PredictBatch(xs)
}

// sampleAndSimulate draws the space-filling sample (steps 2–3 of the
// procedure) and obtains responses from the evaluator, optionally with
// several workers. The stage spans attach to the trace in ctx when one
// is active.
func sampleAndSimulate(ctx context.Context, ev Evaluator, size int, opt Options) (pts []design.Point, cfgs []design.Config, ys []float64, disc float64) {
	sctx, endSample := obs.StartSpanCtx(ctx, "core.sample")
	rng := rand.New(rand.NewSource(opt.Seed))
	raw, disc := sample.BestLHSCtx(sctx, opt.Space, size, opt.LHSCandidates, rng, opt.Parallel)
	pts = make([]design.Point, len(raw))
	cfgs = make([]design.Config, len(raw))
	ys = make([]float64, len(raw))
	for i, p := range raw {
		cfg := opt.Space.Decode(p, size)
		cfgs[i] = cfg
		pts[i] = opt.Space.Encode(cfg)
	}
	endSample()
	simCtx, endSim := obs.StartSpanCtx(ctx, "core.simulate")
	defer endSim()
	evalAll(simCtx, ev, cfgs, ys, opt.Parallel)
	return pts, cfgs, ys, disc
}

// evalAll fills ys[i] = ev.Eval(cfgs[i]), using workers goroutines when
// workers > 1. Responses land at fixed indices, so results are
// deterministic for a deterministic evaluator. Under an active trace
// every design-point evaluation gets its own child span, so the Chrome
// export shows the simulation fan-out point by point.
func evalAll(ctx context.Context, ev Evaluator, cfgs []design.Config, ys []float64, workers int) {
	traced := obs.TraceFrom(ctx) != nil
	par.For(workers, len(cfgs), func(i int) {
		if traced {
			_, end := obs.StartSpanCtx(ctx, "core.sim_point", "i", strconv.Itoa(i))
			defer end()
		}
		ys[i] = ev.Eval(cfgs[i])
	})
}

// BuildRBFModel runs the paper's model construction procedure at one
// sample size: select a latin hypercube sample with the best L2-star
// discrepancy, simulate the selected design points, and fit an RBF
// network with regression-tree centers and AICc subset selection,
// searching the (p_min, α) grid.
func BuildRBFModel(ev Evaluator, size int, opt Options) (*Model, error) {
	return BuildRBFModelCtx(context.Background(), ev, size, opt)
}

// BuildRBFModelCtx is BuildRBFModel with context propagation: when ctx
// carries an obs.Trace (obs.WithTrace), every stage of the build —
// sampling with per-candidate scoring spans, per-design-point
// simulation, and the (p_min, α) grid search — records parent/child
// spans on it, giving the Chrome trace export a full timeline of the
// parallel build. Tracing observes and never perturbs: the built model
// is bit-identical with or without an active trace.
func BuildRBFModelCtx(ctx context.Context, ev Evaluator, size int, opt Options) (*Model, error) {
	if size < 4 {
		return nil, errors.New("core: sample size must be at least 4")
	}
	opt = opt.withDefaults()
	ctx, end := obs.StartSpanCtx(ctx, "core.build_rbf")
	defer end()
	pts, cfgs, ys, disc := sampleAndSimulate(ctx, ev, size, opt)
	fitCtx, endFit := obs.StartSpanCtx(ctx, "core.fit")
	fit, err := rbf.FitCtx(fitCtx, asFloats(pts), ys, opt.RBF)
	endFit()
	if err != nil {
		return nil, fmt.Errorf("core: RBF fit failed: %w", err)
	}
	return &Model{
		Space:       opt.Space,
		SampleSize:  size,
		Fit:         fit,
		Points:      pts,
		Configs:     cfgs,
		Responses:   ys,
		Discrepancy: disc,
	}, nil
}

// LinearModel is the §4.2 baseline: main effects + two-parameter
// interactions with AIC variable selection, trained on the same kind of
// space-filling sample as the RBF models.
type LinearModel struct {
	Space      *design.Space
	SampleSize int
	Fit        *linreg.Model
}

// Predict evaluates the linear model at a normalized point.
func (m *LinearModel) Predict(pt design.Point) float64 {
	return m.Fit.Predict(pt)
}

// BuildLinearModel builds the baseline linear model from an identically
// constructed sample (same seed → same sample as the RBF build).
func BuildLinearModel(ev Evaluator, size int, opt Options) (*LinearModel, error) {
	return BuildLinearModelCtx(context.Background(), ev, size, opt)
}

// BuildLinearModelCtx is BuildLinearModel with context propagation (see
// BuildRBFModelCtx).
func BuildLinearModelCtx(ctx context.Context, ev Evaluator, size int, opt Options) (*LinearModel, error) {
	if size < 4 {
		return nil, errors.New("core: sample size must be at least 4")
	}
	opt = opt.withDefaults()
	ctx, end := obs.StartSpanCtx(ctx, "core.build_linear")
	defer end()
	pts, _, ys, _ := sampleAndSimulate(ctx, ev, size, opt)
	_, endFit := obs.StartSpanCtx(ctx, "core.fit")
	fit, err := linreg.Fit(asFloats(pts), ys)
	endFit()
	if err != nil {
		return nil, fmt.Errorf("core: linear fit failed: %w", err)
	}
	return &LinearModel{Space: opt.Space, SampleSize: size, Fit: fit}, nil
}

func asFloats(pts []design.Point) [][]float64 {
	out := make([][]float64, len(pts))
	for i, p := range pts {
		out[i] = p
	}
	return out
}
