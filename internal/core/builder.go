package core

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"

	"predperf/internal/design"
	"predperf/internal/linreg"
	"predperf/internal/obs"
	"predperf/internal/par"
	"predperf/internal/rbf"
	"predperf/internal/sample"
)

// Options configures the model-building procedure. Zero values take the
// defaults used throughout the paper reproduction.
type Options struct {
	Space         *design.Space // modeling space; default Table 1
	LHSCandidates int           // latin hypercube draws scored by discrepancy
	RBF           rbf.Options   // (p_min, α) grids etc.
	Seed          int64         // sampling seed
	// Parallel bounds the worker goroutines used by every stage of the
	// build — LHS candidate scoring, design-point simulation, and the
	// (p_min, α) grid search. 0 (the default) means one worker per CPU
	// (runtime.GOMAXPROCS(0)); 1 forces the serial path; n > 1 uses
	// exactly n workers. The built model is bit-identical regardless of
	// the setting: all parallel stages write to fixed result slots and
	// never share RNG state across goroutines.
	Parallel int
}

func (o Options) withDefaults() Options {
	if o.Space == nil {
		o.Space = design.PaperSpace()
	}
	if o.LHSCandidates <= 0 {
		o.LHSCandidates = 64
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Parallel <= 0 {
		o.Parallel = runtime.GOMAXPROCS(0)
	}
	if o.RBF.Workers == 0 {
		o.RBF.Workers = o.Parallel
	}
	return o
}

// Model is a fitted non-linear CPI model over a design space.
type Model struct {
	// Name identifies the workload the model was trained for (usually
	// the benchmark name). It travels with the persisted model so a
	// serving registry can address models by name.
	Name       string
	Space      *design.Space
	SampleSize int
	Fit        *rbf.FitResult

	// Training data: the simulated configurations (encoded into model
	// coordinates) and their responses.
	Points    []design.Point
	Configs   []design.Config
	Responses []float64

	// Discrepancy of the chosen latin hypercube sample (Figure 2).
	Discrepancy float64
}

// Predict evaluates the model at a normalized point in the model space.
func (m *Model) Predict(pt design.Point) float64 {
	return m.Fit.Predict(pt)
}

// PredictConfig evaluates the model at a concrete configuration.
func (m *Model) PredictConfig(cfg design.Config) float64 {
	return m.Fit.Predict(m.Space.Encode(cfg))
}

// sampleAndSimulate draws the space-filling sample (steps 2–3 of the
// procedure) and obtains responses from the evaluator, optionally with
// several workers.
func sampleAndSimulate(ev Evaluator, size int, opt Options) (pts []design.Point, cfgs []design.Config, ys []float64, disc float64) {
	endSample := obs.StartSpan("core.sample")
	rng := rand.New(rand.NewSource(opt.Seed))
	raw, disc := sample.BestLHSWorkers(opt.Space, size, opt.LHSCandidates, rng, opt.Parallel)
	pts = make([]design.Point, len(raw))
	cfgs = make([]design.Config, len(raw))
	ys = make([]float64, len(raw))
	for i, p := range raw {
		cfg := opt.Space.Decode(p, size)
		cfgs[i] = cfg
		pts[i] = opt.Space.Encode(cfg)
	}
	endSample()
	defer obs.StartSpan("core.simulate")()
	evalAll(ev, cfgs, ys, opt.Parallel)
	return pts, cfgs, ys, disc
}

// evalAll fills ys[i] = ev.Eval(cfgs[i]), using workers goroutines when
// workers > 1. Responses land at fixed indices, so results are
// deterministic for a deterministic evaluator.
func evalAll(ev Evaluator, cfgs []design.Config, ys []float64, workers int) {
	par.For(workers, len(cfgs), func(i int) {
		ys[i] = ev.Eval(cfgs[i])
	})
}

// BuildRBFModel runs the paper's model construction procedure at one
// sample size: select a latin hypercube sample with the best L2-star
// discrepancy, simulate the selected design points, and fit an RBF
// network with regression-tree centers and AICc subset selection,
// searching the (p_min, α) grid.
func BuildRBFModel(ev Evaluator, size int, opt Options) (*Model, error) {
	if size < 4 {
		return nil, errors.New("core: sample size must be at least 4")
	}
	opt = opt.withDefaults()
	defer obs.StartSpan("core.build_rbf")()
	pts, cfgs, ys, disc := sampleAndSimulate(ev, size, opt)
	endFit := obs.StartSpan("core.fit")
	fit, err := rbf.Fit(asFloats(pts), ys, opt.RBF)
	endFit()
	if err != nil {
		return nil, fmt.Errorf("core: RBF fit failed: %w", err)
	}
	return &Model{
		Space:       opt.Space,
		SampleSize:  size,
		Fit:         fit,
		Points:      pts,
		Configs:     cfgs,
		Responses:   ys,
		Discrepancy: disc,
	}, nil
}

// LinearModel is the §4.2 baseline: main effects + two-parameter
// interactions with AIC variable selection, trained on the same kind of
// space-filling sample as the RBF models.
type LinearModel struct {
	Space      *design.Space
	SampleSize int
	Fit        *linreg.Model
}

// Predict evaluates the linear model at a normalized point.
func (m *LinearModel) Predict(pt design.Point) float64 {
	return m.Fit.Predict(pt)
}

// BuildLinearModel builds the baseline linear model from an identically
// constructed sample (same seed → same sample as the RBF build).
func BuildLinearModel(ev Evaluator, size int, opt Options) (*LinearModel, error) {
	if size < 4 {
		return nil, errors.New("core: sample size must be at least 4")
	}
	opt = opt.withDefaults()
	defer obs.StartSpan("core.build_linear")()
	pts, _, ys, _ := sampleAndSimulate(ev, size, opt)
	endFit := obs.StartSpan("core.fit")
	fit, err := linreg.Fit(asFloats(pts), ys)
	endFit()
	if err != nil {
		return nil, fmt.Errorf("core: linear fit failed: %w", err)
	}
	return &LinearModel{Space: opt.Space, SampleSize: size, Fit: fit}, nil
}

func asFloats(pts []design.Point) [][]float64 {
	out := make([][]float64, len(pts))
	for i, p := range pts {
		out[i] = p
	}
	return out
}
