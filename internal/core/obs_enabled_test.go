package core

import (
	"os"
	"testing"

	"predperf/internal/obs"
)

// TestMain runs the whole package — including the PR 1 determinism
// tests (TestParallelBuildMatchesSerial and friends) — with span timing
// enabled, proving that observability never perturbs the pipeline's
// results.
func TestMain(m *testing.M) {
	obs.Enable()
	os.Exit(m.Run())
}
