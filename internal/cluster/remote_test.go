package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"predperf"
	"predperf/internal/cluster"
	"predperf/internal/core"
	"predperf/internal/design"
	"predperf/internal/evaltest"
	"predperf/internal/rbf"
)

const (
	testBench = "mcf"
	testInsts = 2000
)

// newWorkerServer starts a sim worker over httptest and returns its URL.
func newWorkerServer(t *testing.T, opt cluster.WorkerOptions) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(cluster.NewWorker(opt).Handler())
	t.Cleanup(srv.Close)
	return srv
}

func newFarm(t *testing.T, workers int, opt cluster.PoolOptions) *cluster.Pool {
	t.Helper()
	urls := make([]string, workers)
	for i := range urls {
		urls[i] = newWorkerServer(t, cluster.WorkerOptions{}).URL
	}
	pool, err := cluster.NewPool(urls, opt)
	if err != nil {
		t.Fatal(err)
	}
	return pool
}

// ---- worker endpoint ----

func postEval(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/eval", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func errCode(t *testing.T, body []byte) string {
	t.Helper()
	var e struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("non-JSON error body %q: %v", body, err)
	}
	return e.Error.Code
}

func TestWorkerEvalValidation(t *testing.T) {
	srv := newWorkerServer(t, cluster.WorkerOptions{MaxBatch: 2, MaxTraceLen: 10_000})
	goodCfg := `{"depth":12,"rob":96,"iq":48,"lsq":48,"l2kb":2048,"l2lat":10,"il1kb":32,"dl1kb":32,"dl1lat":2}`

	cases := []struct {
		name, body string
		status     int
		code       string
	}{
		{"missing benchmark", `{"trace_len":1000,"configs":[` + goodCfg + `]}`, 400, "bad_request"},
		{"zero trace", `{"benchmark":"mcf","trace_len":0,"configs":[` + goodCfg + `]}`, 400, "bad_request"},
		{"trace too long", `{"benchmark":"mcf","trace_len":99999999,"configs":[` + goodCfg + `]}`, 400, "trace_too_long"},
		{"no configs", `{"benchmark":"mcf","trace_len":1000,"configs":[]}`, 400, "bad_request"},
		{"batch too large", `{"benchmark":"mcf","trace_len":1000,"configs":[` + goodCfg + `,` + goodCfg + `,` + goodCfg + `]}`, 413, "batch_too_large"},
		{"bad metric", `{"benchmark":"mcf","trace_len":1000,"metric":"nope","configs":[` + goodCfg + `]}`, 400, "bad_request"},
		{"invalid config", `{"benchmark":"mcf","trace_len":1000,"configs":[{"depth":0,"rob":96,"iq":48,"lsq":48,"l2kb":2048,"l2lat":10,"il1kb":32,"dl1kb":32,"dl1lat":2}]}`, 400, "invalid_config"},
		{"unknown benchmark", `{"benchmark":"nosuch","trace_len":1000,"configs":[` + goodCfg + `]}`, 400, "unknown_benchmark"},
		{"unknown field", `{"benchmark":"mcf","trace_len":1000,"zzz":1,"configs":[` + goodCfg + `]}`, 400, "bad_json"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, body := postEval(t, srv.URL, c.body)
			if resp.StatusCode != c.status || errCode(t, body) != c.code {
				t.Fatalf("status %d code %q, want %d %q (body %s)",
					resp.StatusCode, errCode(t, body), c.status, c.code, body)
			}
		})
	}

	// Wrong method.
	resp, err := http.Get(srv.URL + "/v1/eval")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/eval = %d, want 405", resp.StatusCode)
	}
}

func TestWorkerEvalBitIdentical(t *testing.T) {
	srv := newWorkerServer(t, cluster.WorkerOptions{})
	cfgs := evaltest.Configs(6)
	req := cluster.EvalRequest{Benchmark: testBench, TraceLen: testInsts}
	for _, c := range cfgs {
		req.Configs = append(req.Configs, cluster.FromConfig(c))
	}
	js, _ := json.Marshal(req)
	resp, body := postEval(t, srv.URL, string(js))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("eval failed: %d %s", resp.StatusCode, body)
	}
	var er cluster.EvalResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if len(er.Values) != len(cfgs) {
		t.Fatalf("%d values for %d configs", len(er.Values), len(cfgs))
	}
	if er.Sims != len(cfgs) {
		t.Fatalf("first request paid %d sims for %d fresh configs", er.Sims, len(cfgs))
	}
	local, err := core.NewSimEvaluator(testBench, testInsts)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cfgs {
		if want := local.Eval(c); er.Values[i] != want {
			t.Fatalf("config %d: remote %v != local %v", i, er.Values[i], want)
		}
	}

	// The worker memoizes: repeating the request costs zero simulations.
	resp, body = postEval(t, srv.URL, string(js))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat eval failed: %d %s", resp.StatusCode, body)
	}
	var er2 cluster.EvalResponse
	json.Unmarshal(body, &er2)
	if er2.Sims != 0 {
		t.Fatalf("repeat request re-simulated %d configs", er2.Sims)
	}
	for i := range er.Values {
		if er2.Values[i] != er.Values[i] {
			t.Fatalf("config %d: cached value drifted", i)
		}
	}
}

func TestWorkerRequestIDEcho(t *testing.T) {
	srv := newWorkerServer(t, cluster.WorkerOptions{})
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/healthz", nil)
	req.Header.Set(cluster.RequestIDHeader, "ride-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(cluster.RequestIDHeader); got != "ride-42" {
		t.Fatalf("request ID not echoed: %q", got)
	}
}

// ---- RemoteEvaluator conformance + behavior ----

func TestRemoteEvaluatorConformance(t *testing.T) {
	pool := newFarm(t, 2, cluster.PoolOptions{})
	evaltest.Run(t, evaltest.Harness{
		New: func(t *testing.T) core.Evaluator {
			return cluster.NewRemoteEvaluator(pool, testBench, testInsts, cluster.RemoteOptions{})
		},
		Sims: func(ev core.Evaluator) int {
			return ev.(*cluster.RemoteEvaluator).Simulations()
		},
		Canceled: func(t *testing.T) (core.Evaluator, func() error) {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			re := cluster.NewRemoteEvaluator(pool, testBench, testInsts, cluster.RemoteOptions{Ctx: ctx})
			return re, re.Err
		},
	})
}

func TestRemoteEvaluatorMatchesLocalAcrossMetrics(t *testing.T) {
	pool := newFarm(t, 2, cluster.PoolOptions{})
	base, err := core.NewSimEvaluator(testBench, testInsts)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := evaltest.Configs(4)
	for _, metric := range []core.Metric{core.MetricCPI, core.MetricEPI, core.MetricEDP, core.MetricPower} {
		remote := cluster.NewRemoteEvaluator(pool, testBench, testInsts, cluster.RemoteOptions{Metric: metric})
		local := base.WithMetric(metric)
		for i, c := range cfgs {
			if r, l := remote.Eval(c), local.Eval(c); r != l {
				t.Fatalf("%s config %d: remote %v != local %v", metric, i, r, l)
			}
		}
	}
}

func TestRemoteEvaluatorBatchFansOut(t *testing.T) {
	pool := newFarm(t, 2, cluster.PoolOptions{BatchChunk: 4})
	remote := cluster.NewRemoteEvaluator(pool, testBench, testInsts, cluster.RemoteOptions{})
	cfgs := evaltest.Configs(10)
	vals, err := remote.EvalBatch(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	local, _ := core.NewSimEvaluator(testBench, testInsts)
	for i, c := range cfgs {
		if want := local.Eval(c); vals[i] != want {
			t.Fatalf("config %d: batch value %v != local %v", i, vals[i], want)
		}
	}
	// Batch results land in the cache: per-config Eval is free and equal.
	before := remote.Simulations()
	for i, c := range cfgs {
		if got := remote.Eval(c); got != vals[i] {
			t.Fatalf("config %d: Eval after batch %v != %v", i, got, vals[i])
		}
	}
	if after := remote.Simulations(); after != before {
		t.Fatalf("Eval after EvalBatch refetched: %d → %d", before, after)
	}
}

func TestRemoteEvaluatorFarmDown(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // nothing listens: every attempt is a transport error
	pool, err := cluster.NewPool([]string{dead.URL}, cluster.PoolOptions{
		MaxAttempts: 2, BaseBackoff: time.Millisecond, ReadmitAfter: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	remote := cluster.NewRemoteEvaluator(pool, testBench, testInsts, cluster.RemoteOptions{})
	if v := remote.Eval(evaltest.Configs(1)[0]); !math.IsNaN(v) {
		t.Fatalf("dead farm answered %v, want NaN", v)
	}
	if remote.Err() == nil {
		t.Fatal("dead farm reported no error")
	}
}

func TestRemoteEvaluatorFallback(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close()
	pool, err := cluster.NewPool([]string{dead.URL}, cluster.PoolOptions{
		MaxAttempts: 2, BaseBackoff: time.Millisecond, ReadmitAfter: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	fallback := core.FuncEvaluator(func(design.Config) float64 { return 42 })
	remote := cluster.NewRemoteEvaluator(pool, testBench, testInsts, cluster.RemoteOptions{Fallback: fallback})
	if v := remote.Eval(evaltest.Configs(1)[0]); v != 42 {
		t.Fatalf("fallback not used: got %v", v)
	}
	if remote.Err() == nil {
		t.Fatal("fallback served but the farm failure went unreported")
	}
}

// ---- the acceptance test: distributed build, bit-identical, survives
// a worker loss mid-build ----

// killAfter closes a worker after n evaluations, deterministically
// mid-build.
type killAfter struct {
	ev    core.Evaluator
	n     atomic.Int32
	after int32
	kill  func()
}

func (k *killAfter) Eval(c design.Config) float64 {
	if k.n.Add(1) == k.after {
		k.kill()
	}
	return k.ev.Eval(c)
}

func TestRemoteBuildBitIdenticalAndSurvivesWorkerLoss(t *testing.T) {
	opt := predperf.Options{
		LHSCandidates: 16,
		Seed:          3,
		RBF:           rbf.Options{PMinGrid: []int{1, 2}, AlphaGrid: []float64{5, 9}},
	}
	const sample = 24

	// Reference: the plain in-process build.
	localBase, err := core.NewSimEvaluator(testBench, testInsts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := predperf.BuildModel(localBase, sample, opt)
	if err != nil {
		t.Fatal(err)
	}

	// Distributed build over two workers, one of which dies after the
	// 8th evaluation. Retries must re-route the in-flight work and the
	// resulting model must be bit-identical to the local one.
	doomed := httptest.NewServer(cluster.NewWorker(cluster.WorkerOptions{}).Handler())
	survivor := newWorkerServer(t, cluster.WorkerOptions{})
	pool, err := cluster.NewPool([]string{doomed.URL, survivor.URL}, cluster.PoolOptions{
		BaseBackoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	remote := cluster.NewRemoteEvaluator(pool, testBench, testInsts, cluster.RemoteOptions{})
	killed := make(chan struct{})
	ev := &killAfter{ev: remote, after: 8, kill: func() {
		doomed.CloseClientConnections()
		doomed.Close()
		close(killed)
	}}
	got, err := predperf.BuildModel(ev, sample, opt)
	if err != nil {
		t.Fatalf("distributed build failed after worker loss: %v", err)
	}
	select {
	case <-killed:
	default:
		t.Fatal("the doomed worker was never killed; the test exercised nothing")
	}
	if err := remote.Err(); err != nil {
		t.Fatalf("build completed but the evaluator recorded an unrecovered error: %v", err)
	}

	var wantBuf, gotBuf bytes.Buffer
	if err := want.Save(&wantBuf); err != nil {
		t.Fatal(err)
	}
	if err := got.Save(&gotBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantBuf.Bytes(), gotBuf.Bytes()) {
		t.Fatalf("distributed model is not bit-identical to the local build:\nlocal:  %.120s\nremote: %.120s",
			wantBuf.String(), gotBuf.String())
	}

	// The dead worker must be evicted from the pool by now.
	var evicted bool
	for _, ws := range pool.Snapshot() {
		if ws.URL == doomed.URL {
			evicted = ws.Evicted
		}
	}
	if !evicted {
		t.Error("killed worker still in rotation")
	}
	_ = fmt.Sprintf("%s", remote) // String() smoke
}
