package cluster

// fleet.go is the router-side fleet observability plane: a background
// scraper pulls every shard's and worker's /metricz?format=json report,
// merges them (plus the router's own registry) into one fleet-wide
// aggregate with obs.MergeReports — exact bucket-wise histogram sums,
// not quantile averaging — feeds the merged cumulative values into an
// obs.FleetWindows for sliding-window views, evaluates fleet-level SLO
// burn over those windows, and drives the router's adaptive head
// sampler from the burn state. /fleetz serves the result as HTML and
// JSON.
//
// Scrape-failure policy mirrors the worker Pool's health marks: a
// target is marked unhealthy after fleetFailAfter consecutive failures
// (each attempt bounded by its own deadline), but its last-known-good
// report keeps riding in the merge — dropping it would shrink the
// merged cumulative counters and the window layer would clamp the
// apparent fleet traffic to zero. A genuine role restart shrinks that
// role's own cumulative values instead, which the window clamp absorbs.

import (
	"context"
	"fmt"
	"html/template"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"predperf/internal/obs"
)

var (
	cFleetScrapes    = obs.NewCounter("cluster.fleet_scrapes")
	cFleetScrapeErrs = obs.NewCounter("cluster.fleet_scrape_errors")
	hFleetScrape     = obs.NewHistogram("cluster.fleet_scrape_seconds", obs.DefLatencyBuckets)
)

// fleetFailAfter is how many consecutive scrape failures mark a target
// unhealthy in the /fleetz readiness rollup.
const fleetFailAfter = 3

// Fleet SLO defaults, mirroring serve's: the latency threshold is
// bucket-aligned (250ms is a DefLatencyBuckets bound) so the windowed
// good-count is exact, not interpolated.
const (
	fleetSLOLatencySec = 0.25
	fleetSLOObjective  = 0.999
)

// fleetTarget is one scraped role. Mutable fields are guarded by
// fleetPlane.mu.
type fleetTarget struct {
	URL  string
	Role string // "shard" or "worker"

	healthy    bool
	fails      int
	lastErr    string
	lastScrape time.Time
	scrapeDur  time.Duration
	report     *obs.Report
}

// fleetPlane owns the scrape targets, the merged aggregate, the fleet
// windows/SLOs, and the sampler the burn state drives.
type fleetPlane struct {
	client  *http.Client
	timeout time.Duration
	sampler *obs.AdaptiveSampler
	windows *obs.FleetWindows
	slos    []*obs.SLO

	mu         sync.Mutex
	targets    []*fleetTarget
	merged     *obs.Report
	states     []obs.SLOState
	lastScrape time.Time
	scrapes    int64
}

// newFleetPlane builds the plane over normalized shard and worker base
// URLs. The sampler may be nil (no adaptive control); clock nil means
// time.Now (tests inject a fake clock to step the burn windows).
func newFleetPlane(shards, workers []string, client *http.Client, timeout time.Duration, sampler *obs.AdaptiveSampler, clock obs.Clock) *fleetPlane {
	p := &fleetPlane{
		client:  client,
		timeout: timeout,
		sampler: sampler,
		windows: obs.NewFleetWindows(clock),
	}
	for _, u := range shards {
		p.targets = append(p.targets, &fleetTarget{URL: u, Role: "shard"})
	}
	for _, u := range workers {
		p.targets = append(p.targets, &fleetTarget{URL: u, Role: "worker"})
	}
	// Fleet-level SLOs over the merged windows. These are re-derived
	// from the merged cumulative counters/buckets on every scrape — a
	// p50 of per-role p50s is not a p50, so per-role window summaries
	// are never averaged.
	p.slos = []*obs.SLO{
		obs.RegisterSLO(&obs.SLO{
			Name:        "fleet-latency",
			Description: fmt.Sprintf("%.4g%% of fleet requests complete within %gms", fleetSLOObjective*100, fleetSLOLatencySec*1e3),
			Objective:   fleetSLOObjective,
			SLI:         p.windows.LatencySLI("serve.request_seconds", fleetSLOLatencySec),
		}),
		obs.RegisterSLO(&obs.SLO{
			Name:        "fleet-availability",
			Description: fmt.Sprintf("%.4g%% of fleet responses are non-5xx", fleetSLOObjective*100),
			Objective:   fleetSLOObjective,
			SLI:         p.windows.CounterRatioSLI("serve.responses_5xx", "serve.requests_total"),
		}),
	}
	return p
}

// roleURLs returns the targets' base URLs, optionally filtered by role
// ("" means all), for trace-search fan-out.
func (p *fleetPlane) roleURLs(role string) []string {
	var out []string
	for _, t := range p.targets {
		if role == "" || t.Role == role {
			out = append(out, t.URL)
		}
	}
	return out
}

// fleetRole is one (url, role) fan-out target.
type fleetRole struct {
	URL  string
	Role string
}

// roles lists the fan-out targets, shards before workers — the order
// federated trace assembly relies on, since a shard's forest may
// already carry its workers' spans.
func (p *fleetPlane) roles() []fleetRole {
	out := make([]fleetRole, len(p.targets))
	for i, t := range p.targets {
		out[i] = fleetRole{URL: t.URL, Role: t.Role}
	}
	return out
}

// scrapeTarget pulls one role's metrics report, bounded by the plane's
// per-target timeout.
func (p *fleetPlane) scrapeTarget(ctx context.Context, url string) (*obs.Report, error) {
	ctx, cancel := context.WithTimeout(ctx, p.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/metricz?format=json", nil)
	if err != nil {
		return nil, err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s/metricz answered %d", url, resp.StatusCode)
	}
	rep, err := obs.ReadReport(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("%s/metricz: %w", url, err)
	}
	return rep, nil
}

// scrapeOnce runs one federation cycle: scrape every target in
// parallel, merge with the router's own registry snapshot, ingest into
// the fleet windows, evaluate the fleet SLOs, and tick the adaptive
// sampler with the burn state. Returns the merged report.
func (p *fleetPlane) scrapeOnce(ctx context.Context) *obs.Report {
	t0 := time.Now()
	type result struct {
		rep *obs.Report
		dur time.Duration
		err error
	}
	results := make([]result, len(p.targets))
	var wg sync.WaitGroup
	for i, t := range p.targets {
		wg.Add(1)
		go func(i int, url string) {
			defer wg.Done()
			s0 := time.Now()
			rep, err := p.scrapeTarget(ctx, url)
			results[i] = result{rep: rep, dur: time.Since(s0), err: err}
		}(i, t.URL)
	}
	wg.Wait()

	reps := []*obs.Report{obs.Snapshot()} // the router itself is part of the fleet
	now := time.Now()
	p.mu.Lock()
	for i, t := range p.targets {
		r := results[i]
		t.lastScrape, t.scrapeDur = now, r.dur
		if r.err != nil {
			cFleetScrapeErrs.Inc()
			t.fails++
			t.lastErr = r.err.Error()
			if t.fails >= fleetFailAfter {
				t.healthy = false
			}
		} else {
			t.fails, t.healthy, t.lastErr = 0, true, ""
			t.report = r.rep
		}
		// Last-known-good carryover (see the package comment): a missed
		// scrape must not make the merged cumulative values shrink.
		if t.report != nil {
			reps = append(reps, t.report)
		}
	}
	p.mu.Unlock()

	merged := obs.MergeReports(reps...)
	p.windows.Ingest(merged)
	states := make([]obs.SLOState, len(p.slos))
	burning := false
	for i, slo := range p.slos {
		states[i] = slo.State()
		burning = burning || states[i].Firing
	}
	if p.sampler != nil {
		p.sampler.Tick(burning)
	}

	p.mu.Lock()
	p.merged = merged
	p.states = states
	p.lastScrape = now
	p.scrapes++
	p.mu.Unlock()
	cFleetScrapes.Inc()
	hFleetScrape.Observe(time.Since(t0).Seconds())
	return merged
}

// fleetTargetView is one target's JSON-ready scrape state.
type fleetTargetView struct {
	URL        string  `json:"url"`
	Role       string  `json:"role"`
	Healthy    bool    `json:"healthy"`
	Fails      int     `json:"consecutive_fails,omitempty"`
	LastErr    string  `json:"last_error,omitempty"`
	LastScrape string  `json:"last_scrape,omitempty"`
	ScrapeMS   float64 `json:"scrape_ms"`

	// Drill-down picked off the role's own report.
	UptimeSec  float64 `json:"uptime_sec"`
	Requests   int64   `json:"requests"`
	Errors     int64   `json:"errors"`
	SampleRate float64 `json:"trace_sample_rate"`
}

// firstCounter returns the first named counter present in the report.
func firstCounter(rep *obs.Report, names ...string) int64 {
	if rep == nil {
		return 0
	}
	for _, n := range names {
		if v, ok := rep.Counters[n]; ok {
			return v
		}
	}
	return 0
}

// targetViews snapshots every target with per-role drill-down fields.
func (p *fleetPlane) targetViews() []fleetTargetView {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]fleetTargetView, 0, len(p.targets))
	for _, t := range p.targets {
		v := fleetTargetView{
			URL: t.URL, Role: t.Role, Healthy: t.healthy,
			Fails: t.fails, LastErr: t.lastErr,
			ScrapeMS: float64(t.scrapeDur.Nanoseconds()) / 1e6,
		}
		if !t.lastScrape.IsZero() {
			v.LastScrape = t.lastScrape.UTC().Format(time.RFC3339)
		}
		if rep := t.report; rep != nil {
			v.UptimeSec = rep.WallSec
			v.Requests = firstCounter(rep, "serve.requests_total", "cluster.worker_eval_requests")
			v.Errors = firstCounter(rep, "serve.responses_5xx", "cluster.worker_errors")
			v.SampleRate = rep.Gauges["obs.trace_sample_rate"]
		}
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Role != out[j].Role {
			return out[i].Role < out[j].Role
		}
		return out[i].URL < out[j].URL
	})
	return out
}

// snapshot returns the latest merged report, SLO states, and scrape
// bookkeeping.
func (p *fleetPlane) snapshot() (*obs.Report, []obs.SLOState, time.Time, int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.merged, p.states, p.lastScrape, p.scrapes
}

// ---- /fleetz ----

// fleetzView is the JSON shape of /fleetz?format=json.
type fleetzView struct {
	Generated  string                     `json:"generated"`
	Scrapes    int64                      `json:"scrapes"`
	SampleRate float64                    `json:"trace_sample_rate"`
	SLOs       []obs.SLOState             `json:"slos"`
	Roles      []fleetTargetView          `json:"roles"`
	Windows    map[string]obs.WindowStats `json:"windows,omitempty"`
	Merged     *obs.Report                `json:"merged,omitempty"`
}

func (rt *Router) fleetzView() fleetzView {
	merged, states, last, scrapes := rt.fleet.snapshot()
	v := fleetzView{
		Scrapes:    scrapes,
		SampleRate: rt.sampler.Rate(),
		SLOs:       states,
		Roles:      rt.fleet.targetViews(),
		Merged:     merged,
	}
	if !last.IsZero() {
		v.Generated = last.UTC().Format(time.RFC3339)
	}
	// Fleet-wide 5m request view re-derived from the merged rings.
	st := rt.fleet.windows.HistStatsOver("serve.request_seconds", 5*time.Minute)
	if st.Count > 0 {
		v.Windows = map[string]obs.WindowStats{"serve.request_seconds/5m": st}
	}
	return v
}

// handleFleetz serves the fleet observability plane: merged metrics,
// fleet SLO burn, readiness rollup, and per-role drill-down.
func (rt *Router) handleFleetz(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	_, _, _, scrapes := rt.fleet.snapshot()
	if scrapes == 0 || r.URL.Query().Get("refresh") != "" {
		// Serve fresh numbers on demand (and on the very first hit when
		// the background loop has not completed a cycle yet).
		rt.fleet.scrapeOnce(r.Context())
	}
	switch format := r.URL.Query().Get("format"); format {
	case "json":
		writeJSON(w, http.StatusOK, rt.fleetzView())
	case "", "html":
		rt.renderFleetz(w)
	default:
		writeErr(w, http.StatusBadRequest, "bad_request",
			`unknown format %q (want "html" or "json")`, format)
	}
}

// fleetzRow is one pre-rendered table row for the HTML view.
type fleetzRow struct {
	Cols []string
	Bad  bool
}

// fleetzHTML is the HTML template's root.
type fleetzHTML struct {
	Now        string
	Up         string
	SampleRate string
	Scrapes    int64
	AllHealthy bool
	SLOs       []fleetzRow
	Roles      []fleetzRow
	Drill      []fleetzRow
	Totals     []fleetzRow
	ReqSpark   template.HTML
	ErrSpark   template.HTML
}

var fleetzTmpl = template.Must(template.New("fleetz").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>predrouter /fleetz</title>
<style>
body { font: 13px/1.5 system-ui, sans-serif; margin: 2em; color: #222; }
h1 { font-size: 1.3em; } h2 { font-size: 1.05em; margin-top: 1.6em; }
table { border-collapse: collapse; margin: 0.5em 0; }
th, td { border: 1px solid #ccc; padding: 3px 9px; text-align: left; }
th { background: #f2f2f2; font-weight: 600; }
.ok { color: #1a7f37; font-weight: 600; } .bad { color: #b42318; font-weight: 600; }
.muted { color: #777; }
svg.spark { vertical-align: middle; }
</style>
</head>
<body>
<h1>fleet status</h1>
<p>
{{if .AllHealthy}}<span class="ok">ALL ROLES HEALTHY</span>{{else}}<span class="bad">DEGRADED</span>{{end}}
&middot; generated {{.Now}} &middot; router up {{.Up}}
&middot; trace sample rate {{.SampleRate}} &middot; {{.Scrapes}} scrapes
</p>

<h2>Fleet SLOs (burn over merged windows)</h2>
<table>
<tr><th>SLO</th><th>objective</th><th>burn 5m</th><th>burn 1h</th><th>state</th></tr>
{{range .SLOs}}<tr>{{range .Cols}}<td>{{.}}</td>{{end}}<td>{{if .Bad}}<span class="bad">burning</span>{{else}}<span class="ok">ok</span>{{end}}</td></tr>
{{end}}</table>

<h2>Traffic (fleet-wide, per 10s over 1h)</h2>
<p>requests {{.ReqSpark}} &nbsp; 5xx {{.ErrSpark}}</p>

<h2>Roles</h2>
<table>
<tr><th>role</th><th>url</th><th>health</th><th>last scrape</th><th>scrape ms</th><th>error</th></tr>
{{range .Roles}}<tr{{if .Bad}} class="bad"{{end}}>{{range .Cols}}<td>{{.}}</td>{{end}}</tr>
{{end}}</table>

<h2>Per-role drill-down (cumulative, from each role's own report)</h2>
<table>
<tr><th>role</th><th>url</th><th>uptime s</th><th>requests</th><th>errors</th><th>sample rate</th></tr>
{{range .Drill}}<tr>{{range .Cols}}<td>{{.}}</td>{{end}}</tr>
{{end}}</table>

<h2>Merged totals (exact bucket-wise sums)</h2>
<table>
<tr><th>series</th><th>value</th></tr>
{{range .Totals}}<tr>{{range .Cols}}<td>{{.}}</td>{{end}}</tr>
{{end}}</table>

<p class="muted">JSON: <a href="/fleetz?format=json">/fleetz?format=json</a> &middot; <a href="/fleetz?refresh=1">refresh now</a> &middot; trace search: <a href="/tracez">/tracez</a> &middot; router <a href="/statusz">/statusz</a></p>
</body>
</html>
`))

// fleetSparkSVG renders a per-bucket series as a 150×24 inline SVG
// polyline scaled to the series max (the same visual idiom as serve's
// /statusz sparklines, re-implemented here because serve imports
// cluster, not the reverse).
func fleetSparkSVG(series []float64) template.HTML {
	const w, h = 150, 24
	if len(series) == 0 {
		return ""
	}
	maxV := 0.0
	for _, v := range series {
		if v > maxV {
			maxV = v
		}
	}
	var pts strings.Builder
	n := len(series)
	for i, v := range series {
		x := float64(w)
		if n > 1 {
			x = float64(i) / float64(n-1) * w
		}
		y := float64(h - 1)
		if maxV > 0 {
			y = float64(h-1) - v/maxV*float64(h-2)
		}
		if i > 0 {
			pts.WriteByte(' ')
		}
		fmt.Fprintf(&pts, "%.1f,%.1f", x, y)
	}
	return template.HTML(fmt.Sprintf(
		`<svg class="spark" width="%d" height="%d" viewBox="0 0 %d %d"><polyline fill="none" stroke="#4a7dcf" stroke-width="1.2" points="%s"/></svg>`,
		w, h, w, h, pts.String()))
}

func (rt *Router) renderFleetz(w http.ResponseWriter) {
	v := rt.fleetzView()
	d := fleetzHTML{
		Now:        v.Generated,
		Up:         time.Since(rt.start).Round(time.Second).String(),
		SampleRate: fmt.Sprintf("%.4g", v.SampleRate),
		Scrapes:    v.Scrapes,
		AllHealthy: true,
		ReqSpark:   fleetSparkSVG(rt.fleet.windows.CounterSeries("serve.requests_total", time.Hour)),
		ErrSpark:   fleetSparkSVG(rt.fleet.windows.CounterSeries("serve.responses_5xx", time.Hour)),
	}
	for _, st := range v.SLOs {
		d.SLOs = append(d.SLOs, fleetzRow{
			Cols: []string{
				st.Name,
				fmt.Sprintf("%.4g%%", st.Objective*100),
				fmt.Sprintf("%.2f", st.Fast.BurnRate),
				fmt.Sprintf("%.2f", st.Slow.BurnRate),
			},
			Bad: st.Firing,
		})
	}
	for _, t := range v.Roles {
		health := "healthy"
		if !t.Healthy {
			health = "unhealthy"
			d.AllHealthy = false
		}
		d.Roles = append(d.Roles, fleetzRow{
			Cols: []string{t.Role, t.URL, health, t.LastScrape,
				fmt.Sprintf("%.2f", t.ScrapeMS), t.LastErr},
			Bad: !t.Healthy,
		})
		d.Drill = append(d.Drill, fleetzRow{
			Cols: []string{t.Role, t.URL,
				fmt.Sprintf("%.0f", t.UptimeSec),
				fmt.Sprintf("%d", t.Requests),
				fmt.Sprintf("%d", t.Errors),
				fmt.Sprintf("%.4g", t.SampleRate)},
		})
	}
	if v.Merged != nil {
		for _, name := range []string{
			"serve.requests_total", "serve.responses_5xx", "serve.predicts",
			"cluster.worker_eval_requests", "cluster.router_requests{route=\"predict\"}",
		} {
			if val, ok := v.Merged.Counters[name]; ok {
				d.Totals = append(d.Totals, fleetzRow{Cols: []string{name, fmt.Sprintf("%d", val)}})
			}
		}
		if hs, ok := v.Merged.Histograms["serve.request_seconds"]; ok && hs.Count > 0 {
			d.Totals = append(d.Totals, fleetzRow{Cols: []string{
				"serve.request_seconds p50/p90/p99 ms",
				fmt.Sprintf("%.2f / %.2f / %.2f", hs.P50*1e3, hs.P90*1e3, hs.P99*1e3),
			}})
		}
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = fleetzTmpl.Execute(w, d)
}
