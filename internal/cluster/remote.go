package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"predperf/internal/core"
	"predperf/internal/design"
	"predperf/internal/obs"
)

// Client-side farm observability: how often the pool asked a worker for
// work, how often it had to retry or hedge, and the health transitions
// of the worker set. Per-worker request latency feeds both /statusz and
// the hedging policy's local tracker.
var (
	cPoolRequests     = obs.NewCounter("cluster.pool_requests")
	cPoolRetries      = obs.NewCounter("cluster.retries")
	cPoolHedges       = obs.NewCounter("cluster.hedges")
	cPoolHedgeWins    = obs.NewCounter("cluster.hedge_wins")
	cPoolEvictions    = obs.NewCounter("cluster.evictions")
	cPoolReadmissions = obs.NewCounter("cluster.readmissions")
	cPoolFailures     = obs.NewCounter("cluster.eval_failures")
	cRemoteEvals      = obs.NewCounter("cluster.remote_evals")
	cRemoteCacheHits  = obs.NewCounter("cluster.remote_cache_hits")
	hPoolLatency      = obs.NewHistogramVec("cluster.worker_request_seconds", obs.DefLatencyBuckets, "worker")
)

// PoolOptions tunes the client side of the evaluation farm. Zero values
// take production defaults.
type PoolOptions struct {
	// MaxInflight bounds concurrent requests per worker; excess callers
	// block on the worker's slot (default 4).
	MaxInflight int
	// RequestTimeout bounds one attempt against one worker (default 2m;
	// a cold batch of simulations is slow but not unbounded).
	RequestTimeout time.Duration
	// MaxAttempts bounds the attempts for one evaluation across the
	// whole pool before the caller sees the error (default
	// max(4, 2 × workers)).
	MaxAttempts int
	// BaseBackoff is the first retry's backoff; subsequent retries
	// double it up to MaxBackoff, each with full jitter (default 50ms,
	// capped at 2s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// HedgeQuantile launches a duplicate request on a second worker
	// when the first has been in flight longer than this quantile of
	// recently observed latencies (default 0.95; negative disables
	// hedging). The first response wins; the duplicate's simulation is
	// memoized server-side, so waste is bounded.
	HedgeQuantile float64
	// HedgeMin is the floor for the hedge delay, so fast fleets do not
	// hedge on scheduling noise (default 100ms).
	HedgeMin time.Duration
	// EvictAfter is the consecutive-failure count that evicts a worker
	// from rotation (default 3).
	EvictAfter int
	// ReadmitAfter is how long an evicted worker rests before a live
	// request probes it for readmission (default 5s).
	ReadmitAfter time.Duration
	// BatchChunk splits a large evaluation batch into per-worker
	// requests of this size so one batch fans out across the farm
	// (default 64).
	BatchChunk int
	// Client overrides the HTTP client (default: a dedicated client
	// with sane connection pooling).
	Client *http.Client
}

func (o PoolOptions) withDefaults(workers int) PoolOptions {
	if o.MaxInflight <= 0 {
		o.MaxInflight = 4
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 2 * time.Minute
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 2 * workers
		if o.MaxAttempts < 4 {
			o.MaxAttempts = 4
		}
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 50 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 2 * time.Second
	}
	if o.HedgeQuantile == 0 {
		o.HedgeQuantile = 0.95
	}
	if o.HedgeMin <= 0 {
		o.HedgeMin = 100 * time.Millisecond
	}
	if o.EvictAfter <= 0 {
		o.EvictAfter = 3
	}
	if o.ReadmitAfter <= 0 {
		o.ReadmitAfter = 5 * time.Second
	}
	if o.BatchChunk <= 0 {
		o.BatchChunk = 64
	}
	if o.Client == nil {
		o.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: o.MaxInflight,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	return o
}

// permanentError marks a failure retrying cannot fix (the worker
// understood the request and rejected it).
type permanentError struct{ err error }

func (e permanentError) Error() string { return e.err.Error() }
func (e permanentError) Unwrap() error { return e.err }

// workerConn is the pool's view of one worker: its in-flight slots and
// its health state.
type workerConn struct {
	url string
	sem chan struct{}

	mu        sync.Mutex
	fails     int // consecutive failures
	evicted   bool
	evictedAt time.Time

	ok   atomic.Int64 // total successful requests
	errs atomic.Int64 // total failed requests
}

// available reports whether the worker may take a request now: healthy,
// or evicted long enough ago that a readmission probe is due.
func (w *workerConn) available(now time.Time, readmitAfter time.Duration) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return !w.evicted || now.Sub(w.evictedAt) >= readmitAfter
}

// Pool is a health-gated set of sim workers. It owns worker selection
// (round-robin over available workers), bounded in-flight slots,
// retries with jittered exponential backoff, latency-quantile hedging,
// and eviction/readmission.
type Pool struct {
	opt     PoolOptions
	workers []*workerConn
	rr      atomic.Uint64

	// latMu guards the sliding latency sample feeding the hedge delay.
	latMu   sync.Mutex
	lats    []float64 // seconds; ring buffer
	latNext int
	latFull bool
}

// hedgeSamples is how many recent latencies the hedge-delay quantile is
// computed over, and hedgeWarmup how many must exist before hedging
// arms at all.
const (
	hedgeSamples = 256
	hedgeWarmup  = 16
)

// NewPool builds a pool over the given worker base URLs (scheme
// optional; "host:port" is normalized to "http://host:port").
func NewPool(urls []string, opt PoolOptions) (*Pool, error) {
	if len(urls) == 0 {
		return nil, errors.New("cluster: a worker pool needs at least one worker URL")
	}
	opt = opt.withDefaults(len(urls))
	p := &Pool{opt: opt, lats: make([]float64, hedgeSamples)}
	seen := map[string]bool{}
	for _, u := range urls {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" {
			return nil, errors.New("cluster: empty worker URL")
		}
		if !strings.Contains(u, "://") {
			u = "http://" + u
		}
		if seen[u] {
			return nil, fmt.Errorf("cluster: duplicate worker URL %s", u)
		}
		seen[u] = true
		p.workers = append(p.workers, &workerConn{
			url: u,
			sem: make(chan struct{}, opt.MaxInflight),
		})
	}
	return p, nil
}

// Workers lists the pool's worker URLs in configuration order.
func (p *Pool) Workers() []string {
	out := make([]string, len(p.workers))
	for i, w := range p.workers {
		out[i] = w.url
	}
	return out
}

// pick selects the next worker round-robin among available ones,
// skipping exclude (the hedge's primary). When nothing is available it
// falls back to the least-recently-evicted worker: a fully dark farm
// should keep probing rather than deadlock.
func (p *Pool) pick(exclude *workerConn) *workerConn {
	now := time.Now()
	n := len(p.workers)
	start := int(p.rr.Add(1)-1) % n
	for i := 0; i < n; i++ {
		w := p.workers[(start+i)%n]
		if w == exclude {
			continue
		}
		if w.available(now, p.opt.ReadmitAfter) {
			return w
		}
	}
	var oldest *workerConn
	for _, w := range p.workers {
		if w == exclude {
			continue
		}
		w.mu.Lock()
		at := w.evictedAt
		w.mu.Unlock()
		if oldest == nil || at.Before(oldestEvictedAt(oldest)) {
			oldest = w
		}
	}
	if oldest == nil {
		return exclude // single-worker pool hedging against itself
	}
	return oldest
}

func oldestEvictedAt(w *workerConn) time.Time {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.evictedAt
}

// succeed records a successful request: latency lands in the hedge
// tracker and the per-worker histogram, and an evicted worker that
// answered a probe is readmitted.
func (p *Pool) succeed(w *workerConn, d time.Duration) {
	w.ok.Add(1)
	hPoolLatency.With(w.url).Observe(d.Seconds())
	p.latMu.Lock()
	p.lats[p.latNext] = d.Seconds()
	p.latNext = (p.latNext + 1) % len(p.lats)
	if p.latNext == 0 {
		p.latFull = true
	}
	p.latMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	w.fails = 0
	if w.evicted {
		w.evicted = false
		cPoolReadmissions.Inc()
	}
}

// fail records a failed request; EvictAfter consecutive failures evict
// the worker, and a failed readmission probe restarts its rest period.
func (p *Pool) fail(w *workerConn) {
	w.errs.Add(1)
	w.mu.Lock()
	defer w.mu.Unlock()
	w.fails++
	if w.evicted {
		w.evictedAt = time.Now()
		return
	}
	if w.fails >= p.opt.EvictAfter {
		w.evicted = true
		w.evictedAt = time.Now()
		cPoolEvictions.Inc()
	}
}

// hedgeDelay computes the current hedge trigger: the configured
// quantile of recent request latencies, floored at HedgeMin. Returns
// false while hedging is disabled or the sample is too small to trust.
func (p *Pool) hedgeDelay() (time.Duration, bool) {
	if p.opt.HedgeQuantile < 0 || len(p.workers) < 2 {
		return 0, false
	}
	p.latMu.Lock()
	n := p.latNext
	if p.latFull {
		n = len(p.lats)
	}
	if n < hedgeWarmup {
		p.latMu.Unlock()
		return 0, false
	}
	sample := make([]float64, n)
	copy(sample, p.lats[:n])
	p.latMu.Unlock()
	sort.Float64s(sample)
	idx := int(p.opt.HedgeQuantile * float64(n))
	if idx >= n {
		idx = n - 1
	}
	d := time.Duration(sample[idx] * float64(time.Second))
	if d < p.opt.HedgeMin {
		d = p.opt.HedgeMin
	}
	return d, true
}

// attemptResult carries one worker attempt's outcome back to the
// hedging selector.
type attemptResult struct {
	res    *EvalResponse
	err    error
	worker *workerConn
	hedge  bool
}

// hedgeLink shares the two racing attempts' span IDs so each attempt
// span can carry a "link_span" annotation naming its sibling: a merged
// trace then shows the duplicated work as two connected attempts
// instead of orphan siblings. Slots are atomics because the attempts
// run concurrently; a slot still zero when an attempt ends (the
// primary finishing before the hedge launched) simply yields no link
// on that side.
type hedgeLink struct {
	primary atomic.Int64
	hedge   atomic.Int64
}

// sibling returns the other attempt's span ID, or 0 if it has not
// started (or tracing is off).
func (l *hedgeLink) sibling(hedge bool) int64 {
	if l == nil {
		return 0
	}
	if hedge {
		return l.primary.Load()
	}
	return l.hedge.Load()
}

// store records this attempt's span ID in its slot.
func (l *hedgeLink) store(hedge bool, id int64) {
	if l == nil || id == 0 {
		return
	}
	if hedge {
		l.hedge.Store(id)
	} else {
		l.primary.Store(id)
	}
}

// attempt runs one request against one worker: acquire an in-flight
// slot, POST the body with the per-attempt deadline, parse the answer.
// Each attempt is a "cluster.pool_attempt" span annotated with its
// worker, whether it was a hedge, and the outcome — so a hedged eval's
// duplicated work is attributable in the trace rather than appearing as
// a mystery double eval. The request identity and sampling bit ride the
// traceparent header; a sampled worker's span forest comes back in the
// response body and is grafted under the attempt span.
func (p *Pool) attempt(ctx context.Context, w *workerConn, body []byte, hedge bool, link *hedgeLink, out chan<- attemptResult) {
	tr := obs.TraceFrom(ctx)
	spanCtx, endSpan := obs.StartSpanArgs(ctx, "cluster.pool_attempt",
		"worker", w.url, "hedge", strconv.FormatBool(hedge))
	link.store(hedge, obs.SpanIDFrom(spanCtx))
	send := func(res *EvalResponse, err error, outcome string, extra ...string) {
		args := append([]string{"outcome", outcome}, extra...)
		if sib := link.sibling(hedge); sib != 0 {
			args = append(args, "link_span", strconv.FormatInt(sib, 10))
		}
		endSpan(args...)
		out <- attemptResult{res: res, err: err, worker: w, hedge: hedge}
	}
	select {
	case w.sem <- struct{}{}:
		defer func() { <-w.sem }()
	case <-ctx.Done():
		send(nil, ctx.Err(), "canceled")
		return
	}
	attemptCtx, cancel := context.WithTimeout(ctx, p.opt.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(attemptCtx, http.MethodPost, w.url+"/v1/eval", bytes.NewReader(body))
	if err != nil {
		send(nil, err, "bad_request")
		return
	}
	req.Header.Set("Content-Type", "application/json")
	id := obs.RequestIDFrom(ctx)
	if tr != nil {
		id = tr.ID()
	}
	if id != "" {
		req.Header.Set(RequestIDHeader, id)
		req.Header.Set(obs.TraceparentHeader, obs.FormatTraceparent(obs.SpanContext{
			TraceID: id, ParentID: obs.SpanIDFrom(spanCtx), Sampled: tr != nil,
		}))
	}
	t0 := time.Now()
	resp, err := p.opt.Client.Do(req)
	if err != nil {
		p.fail(w)
		send(nil, fmt.Errorf("cluster: worker %s: %w", w.url, err), "transport_error")
		return
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		p.fail(w)
		send(nil, fmt.Errorf("cluster: worker %s: reading response: %w", w.url, err), "read_error")
		return
	}
	if resp.StatusCode != http.StatusOK {
		err := fmt.Errorf("cluster: worker %s answered %d: %s", w.url, resp.StatusCode, truncate(raw, 200))
		if resp.StatusCode >= 400 && resp.StatusCode < 500 && resp.StatusCode != http.StatusTooManyRequests {
			// The request itself is wrong; no worker will accept it.
			// 4xx does not indict the worker's health.
			send(nil, permanentError{err}, "rejected")
			return
		}
		p.fail(w)
		send(nil, err, "server_error")
		return
	}
	var er EvalResponse
	if err := json.Unmarshal(raw, &er); err != nil {
		p.fail(w)
		send(nil, fmt.Errorf("cluster: worker %s: bad response body: %w", w.url, err), "bad_body")
		return
	}
	rtt := time.Since(t0)
	p.succeed(w, rtt)
	if tr != nil && len(er.Spans) > 0 {
		// The clock_offset_ms arg doubles as the graft marker federated
		// trace search keys on: a span naming a worker plus this arg
		// means that worker's forest already rides in this trace.
		off := obs.ClockOffset(t0, rtt, er.Spans)
		tr.Graft(obs.SpanIDFrom(spanCtx), er.Spans, off)
		send(&er, nil, "ok",
			"clock_offset_ms", strconv.FormatFloat(float64(off)/float64(time.Millisecond), 'f', 3, 64))
		return
	}
	send(&er, nil, "ok")
}

func truncate(b []byte, n int) string {
	s := strings.TrimSpace(string(b))
	if len(s) > n {
		return s[:n] + "…"
	}
	return s
}

// tryOnce runs one logical attempt with hedging: the primary request
// goes to the next available worker, and if it is still in flight past
// the hedge delay a duplicate goes to a second worker; the first
// response (or first permanent error) wins.
func (p *Pool) tryOnce(ctx context.Context, body []byte) (*EvalResponse, error) {
	primary := p.pick(nil)
	results := make(chan attemptResult, 2)
	link := &hedgeLink{}
	go p.attempt(ctx, primary, body, false, link, results)
	launched := 1

	var hedgeC <-chan time.Time
	if d, ok := p.hedgeDelay(); ok {
		t := time.NewTimer(d)
		defer t.Stop()
		hedgeC = t.C
	}
	var lastErr error
	for received := 0; received < launched; {
		select {
		case r := <-results:
			received++
			if r.err == nil {
				if r.hedge {
					cPoolHedgeWins.Inc()
				}
				if launched > 1 {
					// A zero-duration marker naming the race's winner; the
					// per-attempt spans carry the worker and hedge flags.
					winner := "primary"
					if r.hedge {
						winner = "hedge"
					}
					_, endRace := obs.StartSpanArgs(ctx, "cluster.hedge_race",
						"winner", winner, "worker", r.worker.url)
					endRace()
				}
				return r.res, nil
			}
			var perm permanentError
			if errors.As(r.err, &perm) {
				return nil, r.err
			}
			lastErr = r.err
		case <-hedgeC:
			hedgeC = nil
			if second := p.pick(primary); second != nil && second != primary {
				cPoolHedges.Inc()
				go p.attempt(ctx, second, body, true, link, results)
				launched++
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return nil, lastErr
}

// EvalChunk evaluates one chunk of configurations on the farm: retries
// with jittered exponential backoff across workers on transient
// failures, gives up immediately on permanent (4xx) rejections, and
// returns the number of simulations the farm ran for it.
func (p *Pool) EvalChunk(ctx context.Context, req EvalRequest) ([]float64, int, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, 0, err
	}
	cPoolRequests.Inc()
	var lastErr error
	backoff := p.opt.BaseBackoff
	for a := 0; a < p.opt.MaxAttempts; a++ {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		if a > 0 {
			cPoolRetries.Inc()
			// Full jitter: a uniformly random fraction of the doubled
			// backoff decorrelates retry storms across concurrent evals.
			d := time.Duration(rand.Int63n(int64(backoff) + 1))
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return nil, 0, ctx.Err()
			}
			if backoff *= 2; backoff > p.opt.MaxBackoff {
				backoff = p.opt.MaxBackoff
			}
		}
		res, err := p.tryOnce(ctx, body)
		if err == nil {
			if len(res.Values) != len(req.Configs) {
				lastErr = fmt.Errorf("cluster: worker answered %d values for %d configs", len(res.Values), len(req.Configs))
				continue
			}
			return res.Values, res.Sims, nil
		}
		var perm permanentError
		if errors.As(err, &perm) {
			cPoolFailures.Inc()
			return nil, 0, err
		}
		lastErr = err
	}
	cPoolFailures.Inc()
	return nil, 0, fmt.Errorf("cluster: evaluation failed after %d attempts: %w", p.opt.MaxAttempts, lastErr)
}

// WorkerStatus is one row of the pool's topology snapshot.
type WorkerStatus struct {
	URL      string `json:"url"`
	Evicted  bool   `json:"evicted"`
	Fails    int    `json:"consecutive_fails"`
	Inflight int    `json:"inflight"`
	OK       int64  `json:"requests_ok"`
	Errors   int64  `json:"requests_failed"`
}

// Snapshot reports every worker's health for /statusz and /healthz
// surfaces.
func (p *Pool) Snapshot() []WorkerStatus {
	out := make([]WorkerStatus, len(p.workers))
	for i, w := range p.workers {
		w.mu.Lock()
		out[i] = WorkerStatus{
			URL:      w.url,
			Evicted:  w.evicted,
			Fails:    w.fails,
			Inflight: len(w.sem),
			OK:       w.ok.Load(),
			Errors:   w.errs.Load(),
		}
		w.mu.Unlock()
	}
	return out
}

// ---- RemoteEvaluator ----

// remoteEntry is the single-flight slot for one configuration, mirroring
// core's simEntry; ok distinguishes a published value from a failed
// fetch (failures are forgotten so a later Eval retries).
type remoteEntry struct {
	done chan struct{}
	val  float64
	ok   bool
}

// RemoteOptions configures a RemoteEvaluator view.
type RemoteOptions struct {
	// Metric selects the response, as on core.SimEvaluator.
	Metric core.Metric
	// Ctx bounds every remote call the evaluator makes (default
	// context.Background()); cancel it to stop a build mid-flight.
	Ctx context.Context
	// Fallback, when non-nil, evaluates locally after the farm
	// exhausts its attempts — availability over offload.
	Fallback core.Evaluator
}

// RemoteEvaluator implements core.Evaluator over a worker pool: the
// scale-out seam the ROADMAP names. Results are memoized with the same
// single-flight discipline as core.SimEvaluator, and since workers run
// the identical deterministic simulator, a model built through a
// RemoteEvaluator is bit-identical to one built in-process.
//
// Eval cannot return an error (the interface stands in for a local
// simulator); when the farm is exhausted and no Fallback is configured
// it returns NaN and records the failure — check Err after a build.
type RemoteEvaluator struct {
	Benchmark string
	TraceLen  int

	pool     *Pool
	metric   core.Metric
	ctx      context.Context
	fallback core.Evaluator

	mu    sync.Mutex
	cache map[string]*remoteEntry
	evals int // distinct configurations fetched (cache misses completed)

	errMu    sync.Mutex
	firstErr error
}

// NewRemoteEvaluator builds a farm-backed evaluator for one benchmark
// and trace length.
func NewRemoteEvaluator(pool *Pool, benchmark string, traceLen int, opt RemoteOptions) *RemoteEvaluator {
	ctx := opt.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	return &RemoteEvaluator{
		Benchmark: benchmark,
		TraceLen:  traceLen,
		pool:      pool,
		metric:    opt.Metric,
		ctx:       ctx,
		fallback:  opt.Fallback,
		cache:     map[string]*remoteEntry{},
	}
}

var _ core.Evaluator = (*RemoteEvaluator)(nil)

// Eval returns the metric for cfg, asking the farm on a cache miss.
// Concurrent misses on the same configuration single-flight: the losers
// wait for the winner's network round trip instead of duplicating it.
func (e *RemoteEvaluator) Eval(cfg design.Config) float64 { return e.evalCtx(e.ctx, cfg) }

// Bind returns a view of this evaluator whose remote calls carry ctx —
// the request-scoped trace (so pool attempts and worker spans land in
// the request's timeline) and its cancellation — while sharing the
// cache, single-flight slots, and pool of the parent. It keeps the
// ctx-less core.Evaluator seam intact: request handlers bind per
// request, batch builders use the evaluator as-is.
func (e *RemoteEvaluator) Bind(ctx context.Context) core.Evaluator {
	if ctx == nil {
		return e
	}
	return boundRemote{e: e, ctx: ctx}
}

// boundRemote is a RemoteEvaluator view carrying a request context.
type boundRemote struct {
	e   *RemoteEvaluator
	ctx context.Context
}

func (b boundRemote) Eval(cfg design.Config) float64 { return b.e.evalCtx(b.ctx, cfg) }
func (b boundRemote) EvalBatch(cfgs []design.Config) ([]float64, error) {
	return b.e.evalBatchCtx(b.ctx, cfgs)
}
func (b boundRemote) Simulations() int { return b.e.Simulations() }
func (b boundRemote) Err() error       { return b.e.Err() }

func (e *RemoteEvaluator) evalCtx(ctx context.Context, cfg design.Config) float64 {
	key := cfg.Key()
	for {
		e.mu.Lock()
		ent, ok := e.cache[key]
		if !ok {
			ent = &remoteEntry{done: make(chan struct{})}
			e.cache[key] = ent
			e.mu.Unlock()
			e.fetch(ctx, key, ent, cfg)
			return ent.val
		}
		e.mu.Unlock()
		cRemoteCacheHits.Inc()
		select {
		case <-ent.done:
		case <-ctx.Done():
			e.recordErr(ctx.Err())
			return math.NaN()
		}
		if ent.ok {
			return ent.val
		}
		// The winner failed and removed the entry; retry as a fresh
		// miss (the backoff already happened inside the pool).
		if err := ctx.Err(); err != nil {
			e.recordErr(err)
			return math.NaN()
		}
	}
}

// fetch resolves one cache miss. On success the value is published; on
// failure the entry is removed so a later Eval can retry, the error is
// recorded, and NaN (or the fallback's answer) is published to current
// waiters.
func (e *RemoteEvaluator) fetch(ctx context.Context, key string, ent *remoteEntry, cfg design.Config) {
	defer close(ent.done)
	cRemoteEvals.Inc()
	vals, _, err := e.pool.EvalChunk(ctx, EvalRequest{
		Benchmark: e.Benchmark,
		TraceLen:  e.TraceLen,
		Metric:    strings.ToLower(e.metric.String()),
		Configs:   []WireConfig{FromConfig(cfg)},
	})
	if err == nil {
		ent.val, ent.ok = vals[0], true
		e.mu.Lock()
		e.evals++
		e.mu.Unlock()
		return
	}
	e.recordErr(err)
	if e.fallback != nil {
		ent.val, ent.ok = e.fallback.Eval(cfg), true
		e.mu.Lock()
		e.evals++
		e.mu.Unlock()
		return
	}
	ent.val = math.NaN()
	e.mu.Lock()
	delete(e.cache, key)
	e.mu.Unlock()
}

// EvalBatch evaluates a batch of configurations, fanning cache misses
// across the farm in BatchChunk-sized concurrent requests. Results are
// positionally stable and bit-identical to per-config Eval calls.
func (e *RemoteEvaluator) EvalBatch(cfgs []design.Config) ([]float64, error) {
	return e.evalBatchCtx(e.ctx, cfgs)
}

func (e *RemoteEvaluator) evalBatchCtx(ctx context.Context, cfgs []design.Config) ([]float64, error) {
	out := make([]float64, len(cfgs))
	missIdx := make([]int, 0, len(cfgs))
	e.mu.Lock()
	for i, cfg := range cfgs {
		if ent, ok := e.cache[cfg.Key()]; ok && ent.ok {
			out[i] = ent.val
			continue
		}
		missIdx = append(missIdx, i)
	}
	e.mu.Unlock()
	if len(missIdx) == 0 {
		return out, nil
	}
	chunk := e.pool.opt.BatchChunk
	nChunks := (len(missIdx) + chunk - 1) / chunk
	errs := make([]error, nChunks)
	var wg sync.WaitGroup
	for c := 0; c < nChunks; c++ {
		lo, hi := c*chunk, (c+1)*chunk
		if hi > len(missIdx) {
			hi = len(missIdx)
		}
		wg.Add(1)
		go func(c int, idx []int) {
			defer wg.Done()
			req := EvalRequest{
				Benchmark: e.Benchmark,
				TraceLen:  e.TraceLen,
				Metric:    strings.ToLower(e.metric.String()),
				Configs:   make([]WireConfig, len(idx)),
			}
			for a, i := range idx {
				req.Configs[a] = FromConfig(cfgs[i])
			}
			vals, _, err := e.pool.EvalChunk(ctx, req)
			if err != nil {
				errs[c] = err
				return
			}
			e.mu.Lock()
			for a, i := range idx {
				out[i] = vals[a]
				key := cfgs[i].Key()
				if _, ok := e.cache[key]; !ok {
					ent := &remoteEntry{done: make(chan struct{}), val: vals[a], ok: true}
					close(ent.done)
					e.cache[key] = ent
					e.evals++
				}
			}
			e.mu.Unlock()
		}(c, missIdx[lo:hi])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			e.recordErr(err)
			return out, err
		}
	}
	return out, nil
}

func (e *RemoteEvaluator) recordErr(err error) {
	if err == nil {
		return
	}
	e.errMu.Lock()
	defer e.errMu.Unlock()
	if e.firstErr == nil {
		e.firstErr = err
	}
}

// Err reports the first remote failure the evaluator swallowed into a
// NaN (or served from the fallback). A build driver should check it:
// a non-nil error means the built model may rest on incomplete data.
func (e *RemoteEvaluator) Err() error {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	return e.firstErr
}

// Simulations reports how many distinct configurations were resolved
// through the farm (or fallback) — the remote analogue of
// core.SimEvaluator.Simulations.
func (e *RemoteEvaluator) Simulations() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.evals
}

// Pool exposes the evaluator's pool, e.g. for topology surfaces.
func (e *RemoteEvaluator) Pool() *Pool { return e.pool }

func (e *RemoteEvaluator) String() string {
	return fmt.Sprintf("remote(%s, %d insts, %d workers)", e.Benchmark, e.TraceLen, len(e.pool.workers))
}
