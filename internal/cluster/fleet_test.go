package cluster_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"predperf/internal/cluster"
	"predperf/internal/obs"
)

// fakeRole serves a fixed obs.Report on /metricz and an empty trace
// list on /tracez, standing in for a remote shard or worker process.
func fakeRole(t *testing.T, rep *obs.Report) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/metricz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(rep)
	})
	mux.HandleFunc("/tracez", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"traces":[]}`)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// fleetzJSON is the decoded subset of /fleetz?format=json the tests
// assert on.
type fleetzJSON struct {
	Scrapes    int64          `json:"scrapes"`
	SampleRate float64        `json:"trace_sample_rate"`
	SLOs       []obs.SLOState `json:"slos"`
	Roles      []struct {
		URL        string  `json:"url"`
		Role       string  `json:"role"`
		Healthy    bool    `json:"healthy"`
		Requests   int64   `json:"requests"`
		Errors     int64   `json:"errors"`
		SampleRate float64 `json:"trace_sample_rate"`
	} `json:"roles"`
	Merged *obs.Report `json:"merged"`
}

func getFleetz(t *testing.T, base, query string) fleetzJSON {
	t.Helper()
	resp, err := http.Get(base + "/fleetz?format=json" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/fleetz = %d", resp.StatusCode)
	}
	var v fleetzJSON
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestFleetzAggregatesRoles: the router scrapes two fake shards and a
// fake worker and /fleetz serves the exact merged aggregate — custom
// fleettest.* names are used for the exactness assertions because the
// test binary's own registry (which joins the merge as "the router")
// must not contribute to them.
func TestFleetzAggregatesRoles(t *testing.T) {
	bounds := []float64{0.25, 0.5}
	shard1 := fakeRole(t, &obs.Report{Format: 3,
		Counters: map[string]int64{"fleettest.requests": 100, "serve.requests_total": 100},
		Gauges:   map[string]float64{"obs.trace_sample_rate": 0.25},
		Histograms: map[string]obs.HistStats{"fleettest.seconds": {
			Count: 4, Sum: 1.0, P50: 0.25, Bounds: bounds, Buckets: []int64{3, 1, 0},
		}},
	})
	shard2 := fakeRole(t, &obs.Report{Format: 3,
		Counters: map[string]int64{"fleettest.requests": 50, "serve.requests_total": 50},
		Gauges:   map[string]float64{"obs.trace_sample_rate": 1},
		Histograms: map[string]obs.HistStats{"fleettest.seconds": {
			Count: 2, Sum: 0.9, P50: 0.5, Bounds: bounds, Buckets: []int64{1, 0, 1},
		}},
	})
	worker := fakeRole(t, &obs.Report{Format: 3,
		Counters: map[string]int64{"cluster.worker_eval_requests": 7, "cluster.worker_errors": 1},
	})

	rt, err := cluster.NewRouter(cluster.RouterOptions{
		Shards:              []string{shard1.URL, shard2.URL},
		Workers:             []string{worker.URL},
		SyncInterval:        -1,
		FleetScrapeInterval: -1, // the first /fleetz hit scrapes on demand
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	v := getFleetz(t, ts.URL, "")
	if v.Scrapes != 1 {
		t.Fatalf("scrapes = %d, want 1 (on-demand first cycle)", v.Scrapes)
	}
	// Counter merge is an exact sum across roles.
	if got := v.Merged.Counters["fleettest.requests"]; got != 150 {
		t.Fatalf("merged fleettest.requests = %d, want 150", got)
	}
	// Histogram merge is exact bucket-wise: bounds preserved, counts
	// summed per bucket, never quantile averaging.
	hs, ok := v.Merged.Histograms["fleettest.seconds"]
	if !ok {
		t.Fatal("merged report lost fleettest.seconds")
	}
	if hs.Count != 6 || !reflect.DeepEqual(hs.Bounds, bounds) || !reflect.DeepEqual(hs.Buckets, []int64{4, 1, 1}) {
		t.Fatalf("bucket-wise merge wrong: count=%d bounds=%v buckets=%v", hs.Count, hs.Bounds, hs.Buckets)
	}
	// Merged quantiles re-derived from the summed buckets, exactly as a
	// single histogram fed the union would report: rank 3 of 6 lands 3/4
	// through the (0, 0.25] bucket → 0.1875 by linear interpolation.
	if hs.P50 != 0.1875 {
		t.Fatalf("merged p50 = %v, want 0.1875 (re-derived from summed buckets)", hs.P50)
	}
	// Both fleet SLOs are evaluated over the merged windows.
	names := map[string]bool{}
	for _, st := range v.SLOs {
		names[st.Name] = true
	}
	if !names["fleet-latency"] || !names["fleet-availability"] {
		t.Fatalf("fleet SLOs missing from /fleetz: %v", v.SLOs)
	}
	// Per-role drill-down picks each role's own cumulative numbers.
	if len(v.Roles) != 3 {
		t.Fatalf("roles = %d, want 3", len(v.Roles))
	}
	byURL := map[string]int{}
	for i, ro := range v.Roles {
		byURL[ro.URL] = i
		if !ro.Healthy {
			t.Fatalf("role %s unhealthy after a clean scrape", ro.URL)
		}
	}
	if s1 := v.Roles[byURL[shard1.URL]]; s1.Role != "shard" || s1.Requests != 100 || s1.SampleRate != 0.25 {
		t.Fatalf("shard1 drill-down wrong: %+v", s1)
	}
	if wk := v.Roles[byURL[worker.URL]]; wk.Role != "worker" || wk.Requests != 7 || wk.Errors != 1 {
		t.Fatalf("worker drill-down wrong: %+v", wk)
	}

	// HTML view renders the same data.
	resp, err := http.Get(ts.URL + "/fleetz")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	page := buf.String()
	if resp.StatusCode != http.StatusOK || !strings.Contains(resp.Header.Get("Content-Type"), "text/html") {
		t.Fatalf("/fleetz html = %d %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	for _, want := range []string{"fleet status", "ALL ROLES HEALTHY", shard1.URL, worker.URL, "fleet-availability"} {
		if !strings.Contains(page, want) {
			t.Fatalf("/fleetz page missing %q", want)
		}
	}
}

// TestFleetzMarksDarkTargetUnhealthy: a target that stops answering is
// flagged after fleetFailAfter consecutive failures while the healthy
// roles keep aggregating.
func TestFleetzMarksDarkTargetUnhealthy(t *testing.T) {
	good := fakeRole(t, &obs.Report{Format: 3,
		Counters: map[string]int64{"fleettest.dark_requests": 11}})
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer dead.Close()

	rt, err := cluster.NewRouter(cluster.RouterOptions{
		Shards:              []string{good.URL},
		Workers:             []string{dead.URL},
		SyncInterval:        -1,
		FleetScrapeInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	var v fleetzJSON
	for i := 0; i < 3; i++ { // three scrape cycles: first on demand, then refresh
		v = getFleetz(t, ts.URL, "&refresh=1")
	}
	var sawDark bool
	for _, ro := range v.Roles {
		switch ro.URL {
		case dead.URL:
			sawDark = true
			if ro.Healthy {
				t.Fatalf("dark target still healthy after 3 failed scrapes: %+v", ro)
			}
		case good.URL:
			if !ro.Healthy {
				t.Fatalf("healthy target marked unhealthy: %+v", ro)
			}
		}
	}
	if !sawDark {
		t.Fatal("dark target missing from the rollup")
	}
	if got := v.Merged.Counters["fleettest.dark_requests"]; got != 11 {
		t.Fatalf("healthy role's counters lost: %d", got)
	}
}

// tracezRows decodes the router's federated /tracez list view.
type tracezRow struct {
	obs.TraceSummary
	Roles []string `json:"roles"`
}

func searchTracez(t *testing.T, base, q string) []tracezRow {
	t.Helper()
	resp, err := http.Get(base + "/tracez?format=json&q=" + q)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/tracez?q=%s = %d", q, resp.StatusCode)
	}
	var out struct {
		Traces []tracezRow `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Traces
}

// fedTrace decodes the router's merged single-trace view.
type fedTrace struct {
	ID    string `json:"id"`
	Spans []struct {
		ID     int64  `json:"id"`
		Parent int64  `json:"parent,omitempty"`
		Name   string `json:"name"`
		Depth  int    `json:"depth"`
	} `json:"spans"`
}

func getFedTrace(t *testing.T, base, id string) (int, fedTrace) {
	t.Helper()
	resp, err := http.Get(base + "/tracez?id=" + id + "&format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ft fedTrace
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&ft); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, ft
}

// TestFederatedTraceSearchAndJoin: a routed predict leaves partial
// traces on the router and the owning shard under one ID; the router's
// /tracez search view joins them into a single row, and the detail view
// serves one merged forest with every span parented — without
// double-grafting the shard subtree the router already holds.
func TestFederatedTraceSearchAndJoin(t *testing.T) {
	f := newShardFarm(t, true)
	const id = "fed-join-0001"

	req, _ := http.NewRequest(http.MethodPost, f.routeTS.URL+"/v1/predict", strings.NewReader(predictBody))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(cluster.RequestIDHeader, id)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed predict = %d", resp.StatusCode)
	}

	// The list view groups the per-role partial retentions into one row.
	rows := searchTracez(t, f.routeTS.URL, id)
	if len(rows) != 1 {
		t.Fatalf("federated search returned %d rows for one trace ID, want 1: %+v", len(rows), rows)
	}
	var hasRouter, hasShard bool
	for _, role := range rows[0].Roles {
		hasRouter = hasRouter || role == "router"
		hasShard = hasShard || strings.HasPrefix(role, "shard ")
	}
	if !hasRouter || !hasShard {
		t.Fatalf("joined row roles = %v, want router and a shard", rows[0].Roles)
	}

	// The single-role list contract carries over: ?route= exact-filters
	// the federated view, and the JSON stays compact (no indentation) so
	// scrape tooling written against a role's own /tracez keeps parsing.
	lresp, err := http.Get(f.routeTS.URL + "/tracez?format=json&route=/v1/predict")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(lresp.Body)
	lresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"id":"`+id+`"`) {
		t.Fatalf("route-filtered list missing compact %q row: %s", id, raw)
	}
	var filtered struct {
		Traces []tracezRow `json:"traces"`
	}
	if err := json.Unmarshal(raw, &filtered); err != nil {
		t.Fatal(err)
	}
	for _, row := range filtered.Traces {
		if row.Route != "/v1/predict" {
			t.Fatalf("route filter leaked %q row: %+v", row.Route, row)
		}
	}

	// The detail view serves one merged forest: a single root, every
	// other span parented inside the forest, and the shard's handler
	// spans present (they rode back on the trailer graft).
	status, ft := getFedTrace(t, f.routeTS.URL, id)
	if status != http.StatusOK {
		t.Fatalf("federated trace detail = %d", status)
	}
	roots, shardSpans := 0, 0
	for _, s := range ft.Spans {
		if s.Depth == 0 {
			roots++
		}
		if strings.HasPrefix(s.Name, "serve.") {
			shardSpans++
		}
	}
	if roots != 1 {
		t.Fatalf("merged forest has %d roots, want 1 correctly-parented tree: %+v", roots, ft.Spans)
	}
	if shardSpans == 0 {
		t.Fatalf("merged forest has no shard-side spans: %+v", ft.Spans)
	}

	// Coverage dedup: the router's local trace already contains the
	// grafted shard forest, so re-assembly must not duplicate it — the
	// merged span count equals the router's own retained forest.
	var local obs.WireExport
	resp, err = http.Get(f.routeTS.URL + "/tracez?id=" + id + "&format=wire")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&local); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(local.Traces) != 1 {
		t.Fatalf("router wire export has %d traces, want 1", len(local.Traces))
	}
	if got, want := len(ft.Spans), len(local.Traces[0].Spans); got != want {
		t.Fatalf("merged forest has %d spans, local router forest %d — shard subtree duplicated or dropped", got, want)
	}

	// The merged trace exports to chrome://tracing through the router.
	cresp, err := http.Get(f.routeTS.URL + "/tracez?id=" + id + "&format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK || !strings.Contains(cresp.Header.Get("Content-Disposition"), "attachment") {
		t.Fatalf("chrome export = %d disposition %q", cresp.StatusCode, cresp.Header.Get("Content-Disposition"))
	}
}

// TestFederatedTraceOnlyOnShard: a trace tail-retained only on a shard
// (the router never saw the request) is still findable and exportable
// through the router's federated /tracez.
func TestFederatedTraceOnlyOnShard(t *testing.T) {
	f := newShardFarm(t, true)
	const id = "fed-shard-only-1"

	req, _ := http.NewRequest(http.MethodPost, f.shards[0].URL+"/v1/predict", strings.NewReader(predictBody))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceparentHeader, obs.FormatTraceparent(obs.SpanContext{
		TraceID: id, ParentID: 7, Sampled: true,
	}))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("direct shard predict = %d", resp.StatusCode)
	}

	rows := searchTracez(t, f.routeTS.URL, id)
	if len(rows) != 1 || len(rows[0].Roles) != 1 || !strings.HasPrefix(rows[0].Roles[0], "shard ") {
		t.Fatalf("shard-only trace rows = %+v, want one row held by one shard", rows)
	}
	status, ft := getFedTrace(t, f.routeTS.URL, id)
	if status != http.StatusOK || len(ft.Spans) == 0 {
		t.Fatalf("federated detail for a shard-only trace = %d with %d spans", status, len(ft.Spans))
	}
	cresp, err := http.Get(f.routeTS.URL + "/tracez?id=" + id + "&format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("chrome export of a shard-only trace = %d", cresp.StatusCode)
	}

	// A trace retained nowhere is a clean 404.
	if status, _ := getFedTrace(t, f.routeTS.URL, "no-such-trace-id"); status != http.StatusNotFound {
		t.Fatalf("unknown trace = %d, want 404", status)
	}
}

// TestRoutedBodiesIdenticalAcrossSamplingRates: sampling (off, always,
// adaptive) changes only which traces are retained — response bodies
// are byte-identical across configurations, and repeated requests
// through an adaptive router agree with themselves.
func TestRoutedBodiesIdenticalAcrossSamplingRates(t *testing.T) {
	f := newShardFarm(t, true) // default router: TraceSample 1
	primary, _ := f.router.Ring().Lookup("synthetic")
	postJSON(t, primary+"/v1/predict", predictBody) // warm the shard cache
	_, always := postJSON(t, f.routeTS.URL+"/v1/predict", predictBody)

	for _, tc := range []struct {
		name string
		opt  cluster.RouterOptions
	}{
		{"off", cluster.RouterOptions{TraceSample: -1}},
		{"adaptive", cluster.RouterOptions{TraceSample: 0.25, TraceSampleMax: 1}},
	} {
		tc.opt.Shards = []string{f.shards[0].URL, f.shards[1].URL}
		tc.opt.SyncInterval = -1
		tc.opt.FleetScrapeInterval = -1
		rt, err := cluster.NewRouter(tc.opt)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(rt.Handler())
		_, body1 := postJSON(t, ts.URL+"/v1/predict", predictBody)
		_, body2 := postJSON(t, ts.URL+"/v1/predict", predictBody)
		ts.Close()
		if !bytes.Equal(body1, always) {
			t.Fatalf("%s-sampling body differs from always-sampling body:\n%s\nvs\n%s", tc.name, body1, always)
		}
		if !bytes.Equal(body1, body2) {
			t.Fatalf("%s-sampling body not stable across repeats", tc.name)
		}
	}
}
