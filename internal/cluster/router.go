package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"predperf/internal/obs"
)

// Router-side observability: proxied request counts per route, failovers
// to the secondary shard, replica re-syncs triggered by generation
// bumps, and per-shard proxy latency.
var (
	cRouterRequests  = obs.NewCounterVec("cluster.router_requests", "route")
	cRouterFailovers = obs.NewCounter("cluster.router_failovers")
	cRouterErrors    = obs.NewCounter("cluster.router_errors")
	cRouterResyncs   = obs.NewCounter("cluster.router_resyncs")
	cRouterSyncErrs  = obs.NewCounter("cluster.router_sync_errors")
	hRouterProxy     = obs.NewHistogramVec("cluster.router_proxy_seconds", obs.DefLatencyBuckets, "shard")
)

// RouterOptions configures the shard router. Zero values take
// production defaults.
type RouterOptions struct {
	// Shards are the predserve base URLs fronted by this router
	// (scheme optional). Required, at least one.
	Shards []string
	// Replicas is the virtual-node count per shard on the ring
	// (default DefaultReplicas).
	Replicas int
	// RequestTimeout bounds one proxied attempt against one shard
	// (default 30s; a search verifying by simulator is slow but
	// bounded by the shard's own deadline).
	RequestTimeout time.Duration
	// MaxBodyBytes bounds a request body (default 1 MiB, matching
	// predserve's own cap).
	MaxBodyBytes int64
	// SyncInterval is how often the router polls every shard's
	// /v1/models to refresh topology and detect generation bumps
	// (default 5s; <0 disables the background loop — tests call
	// SyncOnce directly).
	SyncInterval time.Duration
	// Client overrides the HTTP client.
	Client *http.Client
	// Workers are sim-worker base URLs joined to the fleet
	// observability plane (metrics federation on /fleetz and trace
	// search fan-out on /tracez); the router does not route client
	// traffic to them.
	Workers []string
	// TraceSample is the edge head-sampling rate: the fraction of
	// client requests that record a distributed trace (0 means sample
	// everything, matching the old always-trace behaviour; negative
	// disables tracing). The decision is made once here and propagated
	// to shards and workers on the traceparent header.
	TraceSample float64
	// TraceSampleMax, when above TraceSample, enables SLO-burn-adaptive
	// head sampling: the edge rate ramps toward this ceiling while any
	// fleet SLO fires and decays back once the burn clears. 0 keeps the
	// rate static.
	TraceSampleMax float64
	// FleetScrapeInterval is the fleet metrics-federation cadence
	// (default 5s; <0 disables the background loop — tests call
	// FleetScrapeOnce directly).
	FleetScrapeInterval time.Duration
	// FleetScrapeTimeout bounds one role's /metricz scrape or /tracez
	// fan-out query (default 2s).
	FleetScrapeTimeout time.Duration
	// TraceStoreSize caps each retention class of the /tracez store
	// (default 64).
	TraceStoreSize int
}

func (o RouterOptions) withDefaults() RouterOptions {
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.SyncInterval == 0 {
		o.SyncInterval = 5 * time.Second
	}
	if o.Client == nil {
		o.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 8,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	if o.TraceSample == 0 {
		o.TraceSample = 1
	}
	if o.FleetScrapeInterval == 0 {
		o.FleetScrapeInterval = 5 * time.Second
	}
	if o.FleetScrapeTimeout <= 0 {
		o.FleetScrapeTimeout = 2 * time.Second
	}
	if o.TraceStoreSize <= 0 {
		o.TraceStoreSize = 64
	}
	return o
}

// routerModel is the router's view of one model: where the ring places
// it, the generation last seen on its primary, and the generation the
// secondary replica was last synced to.
type routerModel struct {
	Name       string `json:"name"`
	Primary    string `json:"primary"`
	Secondary  string `json:"secondary"`
	Generation uint64 `json:"generation"`
	// Path is the model's file path as reported by the primary shard;
	// its base name is what a re-sync asks the secondary to load.
	Path string `json:"path,omitempty"`
	// SyncedGen is the primary generation at which the secondary was
	// last (re-)synced; SyncedGen < Generation means a hot swap has not
	// yet propagated.
	SyncedGen uint64 `json:"synced_generation"`
}

// shardState is the router's health view of one shard.
type shardState struct {
	URL      string `json:"url"`
	Healthy  bool   `json:"healthy"`
	Models   int    `json:"models"`
	LastErr  string `json:"last_error,omitempty"`
	LastSync string `json:"last_sync,omitempty"`
}

// Router fronts a set of predserve shards: /v1/predict and /v1/search
// are consistent-hash routed to the shard owning the request's model,
// with failover to the ring's secondary on 5xx or transport errors.
// GET /v1/models merges every shard's listing; the generation vector
// piggybacked on those responses drives replica re-sync: when a model's
// primary generation bumps (hot load or retrain swap), the router asks
// the secondary shard to reload the model file so failover keeps
// serving current coefficients.
type Router struct {
	opt     RouterOptions
	ring    *Ring
	start   time.Time
	http    *http.Server
	sampler *obs.AdaptiveSampler
	traces  *obs.TraceStore
	fleet   *fleetPlane

	mu     sync.Mutex
	models map[string]*routerModel // name → placement + generations
	shards map[string]*shardState  // url → health
	synced map[string]uint64       // name → generation pushed to secondary

	loopCancel context.CancelFunc
	loopDone   chan struct{}
}

// normalizeBaseURL canonicalizes a shard/worker base URL: trimmed, no
// trailing slash, http:// assumed when no scheme is given.
func normalizeBaseURL(s string) string {
	s = strings.TrimRight(strings.TrimSpace(s), "/")
	if s != "" && !strings.Contains(s, "://") {
		s = "http://" + s
	}
	return s
}

// NewRouter builds a router over RouterOptions.Shards.
func NewRouter(opt RouterOptions) (*Router, error) {
	opt = opt.withDefaults()
	urls := make([]string, 0, len(opt.Shards))
	for _, s := range opt.Shards {
		urls = append(urls, normalizeBaseURL(s))
	}
	ring, err := NewRing(urls, opt.Replicas)
	if err != nil {
		return nil, err
	}
	rt := &Router{
		opt:     opt,
		ring:    ring,
		start:   time.Now(),
		sampler: obs.NewAdaptiveSampler(opt.TraceSample, opt.TraceSampleMax, 0),
		traces:  obs.NewTraceStore(opt.TraceStoreSize),
		models:  map[string]*routerModel{},
		shards:  map[string]*shardState{},
		synced:  map[string]uint64{},
	}
	obs.NewGaugeFunc("obs.trace_sample_rate", rt.sampler.Rate)
	var workers []string
	for _, s := range opt.Workers {
		if u := normalizeBaseURL(s); u != "" {
			workers = append(workers, u)
		}
	}
	rt.fleet = newFleetPlane(ring.Shards(), workers, opt.Client, opt.FleetScrapeTimeout, rt.sampler, nil)
	for _, u := range ring.Shards() {
		rt.shards[u] = &shardState{URL: u}
	}
	rt.http = &http.Server{Handler: rt.Handler(), ReadHeaderTimeout: 10 * time.Second}
	return rt, nil
}

// FleetScrapeOnce runs one metrics-federation cycle (scrape every
// role, merge, evaluate fleet SLOs, tick the adaptive sampler) and
// returns the merged fleet report. The background loop calls this on
// RouterOptions.FleetScrapeInterval; tests call it directly.
func (rt *Router) FleetScrapeOnce(ctx context.Context) *obs.Report {
	return rt.fleet.scrapeOnce(ctx)
}

// SampleRate reports the edge head-sampling rate currently in effect.
func (rt *Router) SampleRate() float64 { return rt.sampler.Rate() }

// Ring exposes the router's placement ring (read-only use).
func (rt *Router) Ring() *Ring { return rt.ring }

// Traces exposes the router's /tracez store.
func (rt *Router) Traces() *obs.TraceStore { return rt.traces }

// Handler returns the router API.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/predict", rt.proxyByModel("predict"))
	mux.HandleFunc("/v1/search", rt.proxyByModel("search"))
	mux.HandleFunc("/v1/models", rt.handleModels)
	mux.HandleFunc("/v1/models/load", rt.handleLoad)
	mux.HandleFunc("/healthz", rt.handleHealthz)
	mux.HandleFunc("/metricz", handleMetricz)
	mux.HandleFunc("/tracez", rt.handleTracez)
	mux.HandleFunc("/fleetz", rt.handleFleetz)
	mux.HandleFunc("/statusz", rt.handleStatusz)
	return withTracing("router", rt.sampler, rt.traces, mux)
}

// modelEnvelope peeks the model name out of a predict/search body
// without constraining the rest of the request, which is forwarded
// verbatim to the shard.
type modelEnvelope struct {
	Model string `json:"model"`
}

// proxyByModel forwards a POST body to the shard owning its model, with
// failover to the secondary.
func (rt *Router) proxyByModel(route string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !requireMethod(w, r, http.MethodPost) {
			return
		}
		cRouterRequests.With(route).Inc()
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.opt.MaxBodyBytes))
		if err != nil {
			cRouterErrors.Inc()
			writeErr(w, http.StatusRequestEntityTooLarge, "body_too_large",
				"request body exceeds the %d-byte limit", rt.opt.MaxBodyBytes)
			return
		}
		var env modelEnvelope
		if err := json.Unmarshal(body, &env); err != nil {
			cRouterErrors.Inc()
			writeErr(w, http.StatusBadRequest, "bad_json", "decoding request: %v", err)
			return
		}
		if env.Model == "" {
			cRouterErrors.Inc()
			writeErr(w, http.StatusBadRequest, "bad_request", `"model" is required`)
			return
		}
		primary, secondary := rt.ring.Lookup(env.Model)
		rt.forward(w, r, r.URL.Path, body, primary, secondary)
	}
}

// forward tries the primary shard, then — on a transport error, a
// timeout, or a 5xx — the secondary. 4xx answers are authoritative and
// returned as-is: the shard understood the request and rejected it.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, path string, body []byte, primary, secondary string) {
	status, hdr, respBody, err := rt.tryShard(r.Context(), primary, r.Method, path, body)
	if err != nil || status >= 500 {
		if secondary != primary {
			cRouterFailovers.Inc()
			s2, h2, b2, err2 := rt.tryShard(r.Context(), secondary, r.Method, path, body)
			if err2 == nil && s2 < 500 {
				relay(w, s2, h2, b2)
				return
			}
		}
		if err != nil {
			cRouterErrors.Inc()
			w.Header().Set("Retry-After", RetryAfterSeconds(rt.opt.RequestTimeout/10))
			writeErr(w, http.StatusServiceUnavailable, "no_shard",
				"no shard could serve the request: %v", err)
			return
		}
	}
	relay(w, status, hdr, respBody)
}

// tryShard runs one proxied attempt. A non-nil error means the shard
// never answered (transport failure or timeout). The hop carries the
// request identity and the edge's sampling bit on the traceparent
// header — an unsampled header actively suppresses trace allocation on
// the shard — and a sampled shard returns its span forest on the
// X-Trace-Spans trailer, which is grafted under this hop's span.
func (rt *Router) tryShard(ctx context.Context, shard, method, path string, body []byte) (int, http.Header, []byte, error) {
	tr := obs.TraceFrom(ctx)
	spanCtx, endHop := obs.StartSpanArgs(ctx, "router.forward", "shard", shard, "path", path)
	hopID := obs.SpanIDFrom(spanCtx)
	ctx, cancel := context.WithTimeout(spanCtx, rt.opt.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, method, shard+path, bytes.NewReader(body))
	if err != nil {
		endHop("outcome", "bad_request")
		return 0, nil, nil, err
	}
	if len(body) > 0 {
		req.Header.Set("Content-Type", "application/json")
	}
	id := obs.RequestIDFrom(ctx)
	if tr != nil {
		id = tr.ID()
	}
	if id != "" {
		req.Header.Set(RequestIDHeader, id)
		req.Header.Set(obs.TraceparentHeader, obs.FormatTraceparent(obs.SpanContext{
			TraceID: id, ParentID: hopID, Sampled: tr != nil,
		}))
	}
	t0 := time.Now()
	resp, err := rt.opt.Client.Do(req)
	if err != nil {
		rt.markShard(shard, false, err)
		endHop("outcome", "transport_error")
		return 0, nil, nil, fmt.Errorf("shard %s: %w", shard, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		rt.markShard(shard, false, err)
		endHop("outcome", "read_error")
		return 0, nil, nil, fmt.Errorf("shard %s: reading response: %w", shard, err)
	}
	rtt := time.Since(t0)
	var offsetMS string
	if tr != nil {
		// Trailers are readable only after the body is fully consumed.
		if spans, derr := obs.DecodeSpans(resp.Trailer.Get(obs.SpanTrailerHeader)); derr == nil && len(spans) > 0 {
			off := obs.ClockOffset(t0, rtt, spans)
			tr.Graft(hopID, spans, off)
			offsetMS = strconv.FormatFloat(float64(off)/float64(time.Millisecond), 'f', 3, 64)
		}
	}
	hRouterProxy.With(shard).Observe(rtt.Seconds())
	rt.markShard(shard, resp.StatusCode < 500, nil)
	if offsetMS != "" {
		endHop("status", strconv.Itoa(resp.StatusCode), "clock_offset_ms", offsetMS)
	} else {
		endHop("status", strconv.Itoa(resp.StatusCode))
	}
	return resp.StatusCode, resp.Header, raw, nil
}

// relay copies a shard's answer to the client, preserving status and
// content type (the request ID header is already set by middleware).
func relay(w http.ResponseWriter, status int, hdr http.Header, body []byte) {
	if ct := hdr.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := hdr.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(status)
	w.Write(body)
}

func (rt *Router) markShard(url string, healthy bool, err error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	st, ok := rt.shards[url]
	if !ok {
		return
	}
	st.Healthy = healthy
	if err != nil {
		st.LastErr = err.Error()
	} else if healthy {
		st.LastErr = ""
	}
}

// ---- /v1/models: merged listing + generation-vector sync ----

// shardModel is the subset of a shard's /v1/models row the router needs:
// identity, placement key, generation, and the file to re-sync from.
type shardModel struct {
	Name       string `json:"name"`
	Benchmark  string `json:"benchmark,omitempty"`
	Generation uint64 `json:"generation"`
	Path       string `json:"path,omitempty"`
}

// fetchModels asks one shard for its model listing.
func (rt *Router) fetchModels(ctx context.Context, shard string) ([]shardModel, error) {
	status, _, body, err := rt.tryShard(ctx, shard, http.MethodGet, "/v1/models", nil)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("shard %s: /v1/models answered %d", shard, status)
	}
	var out struct {
		Models []shardModel `json:"models"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, fmt.Errorf("shard %s: bad /v1/models body: %w", shard, err)
	}
	return out.Models, nil
}

// SyncOnce polls every shard's /v1/models, rebuilds the router's model
// map, and pushes re-syncs: any model whose primary generation moved
// past what its secondary was last given gets a POST /v1/models/load on
// the secondary (shards share the models directory, so the base file
// name resolves on both). Returns the number of re-syncs issued.
func (rt *Router) SyncOnce(ctx context.Context) int {
	type shardList struct {
		shard  string
		models []shardModel
		err    error
	}
	lists := make([]shardList, len(rt.ring.Shards()))
	var wg sync.WaitGroup
	for i, shard := range rt.ring.Shards() {
		wg.Add(1)
		go func(i int, shard string) {
			defer wg.Done()
			models, err := rt.fetchModels(ctx, shard)
			lists[i] = shardList{shard: shard, models: models, err: err}
		}(i, shard)
	}
	wg.Wait()

	now := time.Now().UTC().Format(time.RFC3339)
	next := map[string]*routerModel{}
	rt.mu.Lock()
	for _, l := range lists {
		st := rt.shards[l.shard]
		if l.err != nil {
			cRouterSyncErrs.Inc()
			st.Healthy, st.LastErr = false, l.err.Error()
			continue
		}
		st.Healthy, st.LastErr, st.LastSync, st.Models = true, "", now, len(l.models)
		for _, m := range l.models {
			primary, secondary := rt.ring.Lookup(m.Name)
			if l.shard != primary {
				continue // only the owner's generation is authoritative
			}
			next[m.Name] = &routerModel{
				Name: m.Name, Primary: primary, Secondary: secondary,
				Generation: m.Generation, Path: m.Path,
				SyncedGen: rt.synced[m.Name],
			}
		}
	}
	var resync []*routerModel
	for _, m := range next {
		if m.Secondary != m.Primary && m.Path != "" && m.Generation > rt.synced[m.Name] {
			resync = append(resync, m)
		}
	}
	rt.models = next
	rt.mu.Unlock()

	done := 0
	for _, m := range resync {
		body, _ := json.Marshal(map[string]string{
			"path": filepath.Base(m.Path),
			"name": m.Name,
		})
		status, _, _, err := rt.tryShard(ctx, m.Secondary, http.MethodPost, "/v1/models/load", body)
		if err != nil || status != http.StatusOK {
			cRouterSyncErrs.Inc()
			continue
		}
		cRouterResyncs.Inc()
		done++
		rt.mu.Lock()
		rt.synced[m.Name] = m.Generation
		if cur, ok := rt.models[m.Name]; ok {
			cur.SyncedGen = m.Generation
		}
		rt.mu.Unlock()
	}
	return done
}

// loops runs the topology-sync and fleet-scrape tickers until ctx
// ends. A nil channel never fires, so a disabled loop costs nothing.
func (rt *Router) loops(ctx context.Context, syncC, fleetC <-chan time.Time) {
	defer close(rt.loopDone)
	for {
		select {
		case <-ctx.Done():
			return
		case <-syncC:
			rt.SyncOnce(ctx)
		case <-fleetC:
			rt.fleet.scrapeOnce(ctx)
		}
	}
}

func (rt *Router) handleModels(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	cRouterRequests.With("models").Inc()
	rt.SyncOnce(r.Context())
	rt.mu.Lock()
	models := make([]*routerModel, 0, len(rt.models))
	for _, m := range rt.models {
		cp := *m
		models = append(models, &cp)
	}
	rt.mu.Unlock()
	sort.Slice(models, func(i, j int) bool { return models[i].Name < models[j].Name })
	writeJSON(w, http.StatusOK, map[string]any{"models": models})
}

// handleLoad fans a load request to the key's primary and secondary
// shards — both must host the model for failover to serve it.
func (rt *Router) handleLoad(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	cRouterRequests.With("load").Inc()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.opt.MaxBodyBytes))
	if err != nil {
		cRouterErrors.Inc()
		writeErr(w, http.StatusRequestEntityTooLarge, "body_too_large",
			"request body exceeds the %d-byte limit", rt.opt.MaxBodyBytes)
		return
	}
	var req struct {
		Path string `json:"path"`
		Name string `json:"name"`
		Dir  string `json:"dir"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		cRouterErrors.Inc()
		writeErr(w, http.StatusBadRequest, "bad_json", "decoding request: %v", err)
		return
	}
	// The ring key is the registry name the shard will assign: an
	// explicit name, else the file's base name. Directory loads have no
	// single key and fan out to every shard.
	var targets []string
	switch {
	case req.Dir != "":
		targets = rt.ring.Shards()
	case req.Path != "" || req.Name != "":
		key := req.Name
		if key == "" {
			key = strings.TrimSuffix(filepath.Base(req.Path), filepath.Ext(req.Path))
		}
		primary, secondary := rt.ring.Lookup(key)
		targets = []string{primary}
		if secondary != primary {
			targets = append(targets, secondary)
		}
	default:
		cRouterErrors.Inc()
		writeErr(w, http.StatusBadRequest, "bad_request", `"path" or "dir" is required`)
		return
	}
	var (
		lastStatus int
		lastHdr    http.Header
		lastBody   []byte
	)
	for _, shard := range targets {
		status, hdr, respBody, err := rt.tryShard(r.Context(), shard, http.MethodPost, "/v1/models/load", body)
		if err != nil {
			cRouterErrors.Inc()
			w.Header().Set("Retry-After", RetryAfterSeconds(rt.opt.RequestTimeout/10))
			writeErr(w, http.StatusServiceUnavailable, "no_shard", "shard load failed: %v", err)
			return
		}
		lastStatus, lastHdr, lastBody = status, hdr, respBody
		if status != http.StatusOK {
			break // surface the first rejection verbatim
		}
	}
	relay(w, lastStatus, lastHdr, lastBody)
}

// ---- health + status ----

func (rt *Router) snapshotShards() []shardState {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]shardState, 0, len(rt.shards))
	for _, st := range rt.shards {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

func (rt *Router) snapshotModels() []routerModel {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]routerModel, 0, len(rt.models))
	for _, m := range rt.models {
		out = append(out, *m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"role":       "predrouter",
		"uptime_sec": int64(time.Since(rt.start).Seconds()),
		"shards":     rt.snapshotShards(),
		"models":     rt.snapshotModels(),
	})
}

func (rt *Router) handleStatusz(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	var shardRows []statuszRow
	for _, st := range rt.snapshotShards() {
		health := "healthy"
		if !st.Healthy {
			health = "unhealthy: " + st.LastErr
		}
		shardRows = append(shardRows, statuszRow{
			Cols: []string{st.URL, health, strconv.Itoa(st.Models), st.LastSync},
			Bad:  !st.Healthy,
		})
	}
	var modelRows []statuszRow
	for _, m := range rt.snapshotModels() {
		modelRows = append(modelRows, statuszRow{
			Cols: []string{
				m.Name, m.Primary, m.Secondary,
				strconv.FormatUint(m.Generation, 10), strconv.FormatUint(m.SyncedGen, 10),
			},
			Bad: m.Secondary != m.Primary && m.SyncedGen < m.Generation,
		})
	}
	renderStatusz(w, statuszPage{
		Title: "predrouter",
		Role:  "predrouter",
		Up:    time.Since(rt.start),
		Summary: []statuszKV{
			{"shards", strconv.Itoa(len(rt.ring.Shards()))},
			{"models placed", strconv.Itoa(len(rt.snapshotModels()))},
			{"failovers", strconv.FormatInt(cRouterFailovers.Value(), 10)},
			{"replica re-syncs", strconv.FormatInt(cRouterResyncs.Value(), 10)},
			{"trace sample rate", strconv.FormatFloat(rt.sampler.Rate(), 'g', 4, 64)},
			{"fleet targets", strconv.Itoa(len(rt.fleet.roleURLs("")))},
		},
		Sections: []statuszSection{
			{
				Title:   "Shards",
				Headers: []string{"shard", "health", "models", "last sync"},
				Rows:    shardRows,
				Empty:   "no shards configured",
			},
			{
				Title:   "Model placement",
				Headers: []string{"model", "primary", "secondary", "generation", "synced"},
				Rows:    modelRows,
				Empty:   "no models discovered yet — the sync loop polls every shard's /v1/models",
			},
		},
	})
}

// Serve accepts connections on l until Shutdown, running the
// background sync and fleet-scrape loops when their intervals are
// positive.
func (rt *Router) Serve(l net.Listener) error {
	needSync := rt.opt.SyncInterval > 0
	needFleet := rt.opt.FleetScrapeInterval > 0
	if needSync || needFleet {
		ctx, cancel := context.WithCancel(context.Background())
		rt.mu.Lock()
		rt.loopCancel = cancel
		rt.loopDone = make(chan struct{})
		rt.mu.Unlock()
		var syncC, fleetC <-chan time.Time
		if needSync {
			// Prime the topology before serving traffic so the first
			// /statusz is not empty.
			rt.SyncOnce(ctx)
			t := time.NewTicker(rt.opt.SyncInterval)
			defer t.Stop()
			syncC = t.C
		}
		if needFleet {
			rt.fleet.scrapeOnce(ctx)
			t := time.NewTicker(rt.opt.FleetScrapeInterval)
			defer t.Stop()
			fleetC = t.C
		}
		go rt.loops(ctx, syncC, fleetC)
	}
	err := rt.http.Serve(l)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// Shutdown drains in-flight requests and stops the sync loop, waiting
// at most deadline.
func (rt *Router) Shutdown(deadline time.Duration) error {
	rt.mu.Lock()
	cancel, done := rt.loopCancel, rt.loopDone
	rt.mu.Unlock()
	if cancel != nil {
		cancel()
		<-done
	}
	ctx, cancelT := context.WithTimeout(context.Background(), deadline)
	defer cancelT()
	return rt.http.Shutdown(ctx)
}
