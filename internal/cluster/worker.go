package cluster

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"predperf/internal/core"
	"predperf/internal/design"
	"predperf/internal/obs"
	"predperf/internal/par"
)

// Worker-side observability: request and configuration counts, the
// simulations the farm actually paid for, and evaluation latency per
// benchmark (the router-side histograms are per worker; the worker-side
// ones are per workload).
var (
	cWorkerEvals   = obs.NewCounter("cluster.worker_eval_requests")
	cWorkerConfigs = obs.NewCounter("cluster.worker_eval_configs")
	cWorkerSims    = obs.NewCounter("cluster.worker_sims")
	cWorkerErrors  = obs.NewCounter("cluster.worker_errors")
	gWorkerInflt   = obs.NewGauge("cluster.worker_inflight")
	hWorkerEval    = obs.NewHistogramVec("cluster.worker_eval_seconds", obs.DefLatencyBuckets, "benchmark")
)

// WorkerOptions configures a sim worker. Zero values take production
// defaults.
type WorkerOptions struct {
	// ID identifies this worker in responses and /statusz (default: the
	// listener address once Serve is called).
	ID string
	// MaxBatch bounds the configurations in one eval request (default
	// 4096, matching predserve's predict limit).
	MaxBatch int
	// MaxBodyBytes bounds a request body (default 4 MiB — eval batches
	// are bigger than predict bodies).
	MaxBodyBytes int64
	// MaxTraceLen bounds the trace length a request may demand, so one
	// caller cannot pin a worker on an arbitrarily expensive simulation
	// (default 10M instructions).
	MaxTraceLen int
	// Timeout bounds the handling of one request (default 5m: a cold
	// batch of long simulations is legitimate work).
	Timeout time.Duration
	// Workers bounds the goroutines evaluating one batch (default all
	// CPUs). Results land in fixed slots, so the response is
	// deterministic for any setting.
	Workers int
	// TraceSample is the head-sampling rate for requests arriving
	// without a traceparent header (direct callers). Requests from a
	// traced pool carry the edge's decision and ignore this. 0 means
	// sample everything (matching the old always-trace behaviour);
	// negative disables edge sampling entirely.
	TraceSample float64
	// TraceStoreSize caps each retention class of the /tracez store
	// (default 64).
	TraceStoreSize int
}

func (o WorkerOptions) withDefaults() WorkerOptions {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 4096
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 4 << 20
	}
	if o.MaxTraceLen <= 0 {
		o.MaxTraceLen = 10_000_000
	}
	if o.Timeout <= 0 {
		o.Timeout = 5 * time.Minute
	}
	if o.TraceSample == 0 {
		o.TraceSample = 1
	}
	if o.TraceStoreSize <= 0 {
		o.TraceStoreSize = 64
	}
	return o
}

// Worker serves the cycle-level simulator over HTTP. Evaluators are
// memoized per (benchmark, trace length) — the same single-flight
// simulation cache a local build enjoys, so repeated requests for hot
// configurations cost one simulation total — and every response is
// bit-identical to evaluating locally.
type Worker struct {
	opt     WorkerOptions
	start   time.Time
	http    *http.Server
	sampler obs.Sampler
	traces  *obs.TraceStore

	mu  sync.Mutex
	id  string
	evs map[string]*core.SimEvaluator // benchmark \x00 traceLen
}

// NewWorker builds a Worker; it serves nothing until Serve.
func NewWorker(opt WorkerOptions) *Worker {
	w := &Worker{opt: opt.withDefaults(), start: time.Now()}
	w.id = w.opt.ID
	w.evs = map[string]*core.SimEvaluator{}
	w.sampler = obs.NewSampler(w.opt.TraceSample)
	obs.NewGaugeFunc("obs.trace_sample_rate", w.sampler.Rate)
	w.traces = obs.NewTraceStore(w.opt.TraceStoreSize)
	w.http = &http.Server{Handler: w.Handler(), ReadHeaderTimeout: 10 * time.Second}
	return w
}

// Traces exposes the worker's /tracez store.
func (w *Worker) Traces() *obs.TraceStore { return w.traces }

// evaluator returns (building and memoizing on first use) the evaluator
// for one benchmark and trace length. Construction errors are returned
// to the client rather than cached: a worker outliving a transient
// failure keeps serving.
func (w *Worker) evaluator(benchmark string, traceLen int) (*core.SimEvaluator, error) {
	key := benchmark + "\x00" + strconv.Itoa(traceLen)
	w.mu.Lock()
	defer w.mu.Unlock()
	if ev, ok := w.evs[key]; ok {
		return ev, nil
	}
	ev, err := core.NewSimEvaluator(benchmark, traceLen)
	if err != nil {
		return nil, err
	}
	w.evs[key] = ev
	return ev, nil
}

// ID reports the worker's identity (the listener address unless
// WorkerOptions.ID overrode it).
func (w *Worker) ID() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.id
}

// Handler returns the worker API: /v1/eval, /healthz, /metricz,
// /tracez, and a /statusz topology page, wrapped with trace propagation
// and the per-request deadline.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/eval", w.handleEval)
	mux.HandleFunc("/healthz", w.handleHealthz)
	mux.HandleFunc("/metricz", handleMetricz)
	mux.Handle("/tracez", w.traces.Handler())
	mux.HandleFunc("/statusz", w.handleStatusz)
	th := http.TimeoutHandler(mux, w.opt.Timeout,
		`{"error":{"code":"timeout","message":"request exceeded the worker's per-request deadline"}}`)
	return withTracing("worker", w.sampler, w.traces, http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		th.ServeHTTP(rw, r)
	}))
}

func (w *Worker) handleEval(rw http.ResponseWriter, r *http.Request) {
	if !requireMethod(rw, r, http.MethodPost) {
		return
	}
	spanCtx, end := obs.StartSpanCtx(r.Context(), "cluster.worker_eval")
	ended := false
	endEval := func() {
		if !ended {
			ended = true
			end()
		}
	}
	defer endEval()
	gWorkerInflt.Inc()
	defer gWorkerInflt.Dec()
	var req EvalRequest
	if !readJSON(rw, r, w.opt.MaxBodyBytes, &req) {
		cWorkerErrors.Inc()
		return
	}
	if req.Benchmark == "" {
		cWorkerErrors.Inc()
		writeErr(rw, http.StatusBadRequest, "bad_request", `"benchmark" is required`)
		return
	}
	if req.TraceLen <= 0 {
		cWorkerErrors.Inc()
		writeErr(rw, http.StatusBadRequest, "bad_request", `"trace_len" must be positive, got %d`, req.TraceLen)
		return
	}
	if req.TraceLen > w.opt.MaxTraceLen {
		cWorkerErrors.Inc()
		writeErr(rw, http.StatusBadRequest, "trace_too_long",
			"trace_len %d exceeds this worker's %d-instruction limit", req.TraceLen, w.opt.MaxTraceLen)
		return
	}
	if len(req.Configs) == 0 {
		cWorkerErrors.Inc()
		writeErr(rw, http.StatusBadRequest, "bad_request", `"configs" must not be empty`)
		return
	}
	if len(req.Configs) > w.opt.MaxBatch {
		cWorkerErrors.Inc()
		writeErr(rw, http.StatusRequestEntityTooLarge, "batch_too_large",
			"batch of %d exceeds the %d-configuration limit", len(req.Configs), w.opt.MaxBatch)
		return
	}
	metric, err := core.ParseMetric(req.Metric)
	if err != nil {
		cWorkerErrors.Inc()
		writeErr(rw, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	cfgs := make([]design.Config, len(req.Configs))
	for i, wc := range req.Configs {
		if err := wc.Validate(); err != nil {
			cWorkerErrors.Inc()
			writeErr(rw, http.StatusBadRequest, "invalid_config", "configs[%d]: %v", i, err)
			return
		}
		cfgs[i] = wc.Config()
	}
	base, err := w.evaluator(req.Benchmark, req.TraceLen)
	if err != nil {
		cWorkerErrors.Inc()
		writeErr(rw, http.StatusBadRequest, "unknown_benchmark", "%v", err)
		return
	}
	ev := base.WithMetric(metric)

	cWorkerEvals.Inc()
	cWorkerConfigs.Add(int64(len(cfgs)))
	t0 := time.Now()
	simsBefore := base.Simulations()
	ctx := r.Context()
	values := make([]float64, len(cfgs))
	par.For(par.Workers(w.opt.Workers), len(cfgs), func(i int) {
		// A dead client stops costing simulation time at the next
		// config boundary; already-filled slots are simply discarded.
		if ctx.Err() != nil {
			return
		}
		values[i] = ev.Eval(cfgs[i])
	})
	if ctx.Err() != nil {
		cWorkerErrors.Inc()
		return // the client is gone; nothing can read the response
	}
	sims := base.Simulations() - simsBefore
	cWorkerSims.Add(int64(sims))
	hWorkerEval.With(req.Benchmark).Observe(time.Since(t0).Seconds())
	resp := EvalResponse{Values: values, Sims: sims, Worker: w.ID()}
	// A traced caller gets this request's span forest back in the body;
	// the eval span must end before the export so it is included.
	if tr := obs.TraceFrom(spanCtx); tr != nil && spanReturnWanted(r.Context()) {
		endEval()
		resp.Spans = tr.Export(obs.MaxWireSpans)
	}
	writeJSON(rw, http.StatusOK, resp)
}

// workerLoadedEvaluator is one row of the worker's /healthz and
// /statusz evaluator tables.
type workerLoadedEvaluator struct {
	Benchmark string `json:"benchmark"`
	TraceLen  int    `json:"trace_len"`
	Sims      int    `json:"sims"`
}

func (w *Worker) loaded() []workerLoadedEvaluator {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]workerLoadedEvaluator, 0, len(w.evs))
	for _, ev := range w.evs {
		out = append(out, workerLoadedEvaluator{
			Benchmark: ev.Benchmark, TraceLen: ev.TraceLen, Sims: ev.Simulations(),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Benchmark != out[j].Benchmark {
			return out[i].Benchmark < out[j].Benchmark
		}
		return out[i].TraceLen < out[j].TraceLen
	})
	return out
}

func (w *Worker) handleHealthz(rw http.ResponseWriter, r *http.Request) {
	if !requireMethod(rw, r, http.MethodGet) {
		return
	}
	writeJSON(rw, http.StatusOK, map[string]any{
		"status":     "ok",
		"role":       "simworker",
		"worker":     w.ID(),
		"uptime_sec": int64(time.Since(w.start).Seconds()),
		"evaluators": w.loaded(),
		"requests":   cWorkerEvals.Value(),
		"configs":    cWorkerConfigs.Value(),
		"sims":       cWorkerSims.Value(),
	})
}

func (w *Worker) handleStatusz(rw http.ResponseWriter, r *http.Request) {
	if !requireMethod(rw, r, http.MethodGet) {
		return
	}
	var rows []statuszRow
	for _, ev := range w.loaded() {
		rows = append(rows, statuszRow{
			Cols: []string{ev.Benchmark, strconv.Itoa(ev.TraceLen), strconv.Itoa(ev.Sims)},
		})
	}
	renderStatusz(rw, statuszPage{
		Title: "simworker " + w.ID(),
		Role:  "simworker",
		Up:    time.Since(w.start),
		Summary: []statuszKV{
			{"eval requests", strconv.FormatInt(cWorkerEvals.Value(), 10)},
			{"configs scored", strconv.FormatInt(cWorkerConfigs.Value(), 10)},
			{"simulations run", strconv.FormatInt(cWorkerSims.Value(), 10)},
			{"in flight", strconv.FormatInt(gWorkerInflt.Value(), 10)},
			{"trace sample rate", strconv.FormatFloat(w.sampler.Rate(), 'g', 4, 64)},
		},
		Sections: []statuszSection{{
			Title:   "Loaded evaluators",
			Headers: []string{"benchmark", "trace insts", "sims"},
			Rows:    rows,
			Empty:   "no evaluators loaded yet — the first /v1/eval builds one",
		}},
	})
}

// Serve accepts connections on l until Shutdown. When no explicit ID
// was configured, the listener address becomes the worker's identity.
func (w *Worker) Serve(l net.Listener) error {
	w.mu.Lock()
	if w.id == "" {
		w.id = l.Addr().String()
	}
	w.mu.Unlock()
	err := w.http.Serve(l)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// Shutdown drains in-flight requests, waiting at most deadline.
func (w *Worker) Shutdown(deadline time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	return w.http.Shutdown(ctx)
}

var _ fmt.Stringer = (*Worker)(nil)

func (w *Worker) String() string { return "simworker(" + w.ID() + ")" }
