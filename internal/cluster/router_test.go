package cluster_test

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"predperf/internal/cluster"
	"predperf/internal/core"
	"predperf/internal/design"
	"predperf/internal/rbf"
	"predperf/internal/serve"
)

// syntheticCPI mirrors internal/serve's test ground truth: smooth,
// non-linear, and cheap enough that a model builds in milliseconds.
func syntheticCPI(c design.Config) float64 {
	l2 := float64(c.L2SizeKB)
	return 0.6 +
		1.5*math.Exp(-l2/1500)*(float64(c.L2Lat)/20) +
		0.5*float64(c.PipeDepth)/24 +
		12/float64(c.ROBSize) +
		0.2*float64(c.DL1Lat)/4*(64/float64(c.DL1SizeKB))*0.2
}

func saveSyntheticModel(t *testing.T, dir, name string) {
	t.Helper()
	m, err := core.BuildRBFModel(core.FuncEvaluator(syntheticCPI), 40, core.Options{
		LHSCandidates: 16,
		RBF:           rbf.Options{PMinGrid: []int{1, 2}, AlphaGrid: []float64{5, 9}},
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Name = name
	f, err := os.Create(filepath.Join(dir, name+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// shardFarm is two predserve shards sharing one model directory — the
// deployment shape the router's re-sync protocol assumes — plus a
// router over them with the background loop off (tests drive SyncOnce).
type shardFarm struct {
	dir     string
	shards  []*httptest.Server
	router  *cluster.Router
	routeTS *httptest.Server
}

func newShardFarm(t *testing.T, loadAll bool) *shardFarm {
	t.Helper()
	f := &shardFarm{dir: t.TempDir()}
	saveSyntheticModel(t, f.dir, "synthetic")
	for i := 0; i < 2; i++ {
		s := serve.New(serve.Options{ModelDir: f.dir})
		if loadAll {
			if _, err := s.Registry().LoadDir(""); err != nil {
				t.Fatal(err)
			}
		}
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		f.shards = append(f.shards, ts)
	}
	rt, err := cluster.NewRouter(cluster.RouterOptions{
		Shards:       []string{f.shards[0].URL, f.shards[1].URL},
		SyncInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.router = rt
	f.routeTS = httptest.NewServer(rt.Handler())
	t.Cleanup(f.routeTS.Close)
	return f
}

// shardFor returns the httptest shard serving the given base URL.
func (f *shardFarm) shardFor(url string) *httptest.Server {
	for _, s := range f.shards {
		if s.URL == url {
			return s
		}
	}
	return nil
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

const predictBody = `{"model":"synthetic","configs":[
	{"depth":12,"rob":96,"iq":48,"lsq":48,"l2kb":2048,"l2lat":10,"il1kb":32,"dl1kb":32,"dl1lat":2},
	{"depth":16,"rob":160,"iq":64,"lsq":32,"l2kb":1024,"l2lat":12,"il1kb":32,"dl1kb":64,"dl1lat":3}]}`

func TestRouterPredictBitIdenticalToDirect(t *testing.T) {
	f := newShardFarm(t, true)
	primary, _ := f.router.Ring().Lookup("synthetic")

	// Warm the shard's prediction cache so the `cached` flags agree
	// between the direct and routed answers.
	postJSON(t, primary+"/v1/predict", predictBody)
	direct, directBody := postJSON(t, primary+"/v1/predict", predictBody)
	if direct.StatusCode != http.StatusOK {
		t.Fatalf("direct predict failed: %d %s", direct.StatusCode, directBody)
	}
	routed, routedBody := postJSON(t, f.routeTS.URL+"/v1/predict", predictBody)
	if routed.StatusCode != http.StatusOK {
		t.Fatalf("routed predict failed: %d %s", routed.StatusCode, routedBody)
	}
	if !bytes.Equal(directBody, routedBody) {
		t.Fatalf("routed answer differs from the owning shard:\ndirect: %s\nrouted: %s", directBody, routedBody)
	}
}

func TestRouterValidation(t *testing.T) {
	f := newShardFarm(t, true)
	cases := []struct {
		name, path, body string
		status           int
	}{
		{"no model", "/v1/predict", `{"configs":[]}`, 400},
		{"bad json", "/v1/predict", `{`, 400},
		{"no model search", "/v1/search", `{}`, 400},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, body := postJSON(t, f.routeTS.URL+c.path, c.body)
			if resp.StatusCode != c.status {
				t.Fatalf("status %d, want %d (%s)", resp.StatusCode, c.status, body)
			}
		})
	}
	// 4xx from the shard is authoritative: no failover, relayed verbatim.
	resp, body := postJSON(t, f.routeTS.URL+"/v1/predict",
		`{"model":"nosuch","configs":[{"depth":12,"rob":96,"iq":48,"lsq":48,"l2kb":2048,"l2lat":10,"il1kb":32,"dl1kb":32,"dl1lat":2}]}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model through router = %d, want 404 (%s)", resp.StatusCode, body)
	}
	// Wrong method.
	getResp, err := http.Get(f.routeTS.URL + "/v1/predict")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/predict through router = %d, want 405", getResp.StatusCode)
	}
}

func TestRouterFailsOverWhenPrimaryDies(t *testing.T) {
	f := newShardFarm(t, true)
	primary, secondary := f.router.Ring().Lookup("synthetic")
	if primary == secondary {
		t.Fatal("two shards but no distinct secondary")
	}

	// Capture the survivor's answer (twice: the first call warms its
	// prediction cache, so the `cached` flags match the routed answer),
	// then kill the primary.
	postJSON(t, secondary+"/v1/predict", predictBody)
	_, wantBody := postJSON(t, secondary+"/v1/predict", predictBody)
	ps := f.shardFor(primary)
	ps.CloseClientConnections()
	ps.Close()

	resp, body := postJSON(t, f.routeTS.URL+"/v1/predict", predictBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict with dead primary = %d %s, want 200 via failover", resp.StatusCode, body)
	}
	if !bytes.Equal(body, wantBody) {
		t.Fatalf("failover answer differs from the secondary shard's own:\nwant: %s\ngot:  %s", wantBody, body)
	}

	// Both shards down: a structured 503 with a Retry-After hint.
	ss := f.shardFor(secondary)
	ss.CloseClientConnections()
	ss.Close()
	resp, body = postJSON(t, f.routeTS.URL+"/v1/predict", predictBody)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("predict with all shards dead = %d, want 503 (%s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without a Retry-After hint")
	}
	if code := errCode(t, body); code != "no_shard" {
		t.Fatalf("error code %q, want no_shard", code)
	}
}

// routerModels decodes the router's merged /v1/models listing.
func routerModels(t *testing.T, url string) map[string]struct {
	Primary    string `json:"primary"`
	Secondary  string `json:"secondary"`
	Generation uint64 `json:"generation"`
	SyncedGen  uint64 `json:"synced_generation"`
} {
	t.Helper()
	resp, err := http.Get(url + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Models []struct {
			Name       string `json:"name"`
			Primary    string `json:"primary"`
			Secondary  string `json:"secondary"`
			Generation uint64 `json:"generation"`
			SyncedGen  uint64 `json:"synced_generation"`
		} `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	m := map[string]struct {
		Primary    string `json:"primary"`
		Secondary  string `json:"secondary"`
		Generation uint64 `json:"generation"`
		SyncedGen  uint64 `json:"synced_generation"`
	}{}
	for _, row := range out.Models {
		m[row.Name] = struct {
			Primary    string `json:"primary"`
			Secondary  string `json:"secondary"`
			Generation uint64 `json:"generation"`
			SyncedGen  uint64 `json:"synced_generation"`
		}{row.Primary, row.Secondary, row.Generation, row.SyncedGen}
	}
	return m
}

// shardHasModel asks one shard directly whether it serves the model and
// at which generation.
func shardHasModel(t *testing.T, shardURL, name string) (bool, uint64) {
	t.Helper()
	resp, err := http.Get(shardURL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Models []struct {
			Name       string `json:"name"`
			Generation uint64 `json:"generation"`
		} `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	for _, m := range out.Models {
		if m.Name == name {
			return true, m.Generation
		}
	}
	return false, 0
}

func TestRouterResyncsSecondaryOnGenerationBump(t *testing.T) {
	// Shards start empty; the model is loaded on the primary only, as a
	// hot load in production would land on one shard.
	f := newShardFarm(t, false)
	primary, secondary := f.router.Ring().Lookup("synthetic")
	resp, body := postJSON(t, primary+"/v1/models/load", `{"path":"synthetic.json"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("primary load failed: %d %s", resp.StatusCode, body)
	}
	if ok, _ := shardHasModel(t, secondary, "synthetic"); ok {
		t.Fatal("secondary has the model before any sync; the test premise is broken")
	}

	// The sync pass must notice the unsynced replica and push the load.
	models := routerModels(t, f.routeTS.URL) // GET /v1/models runs SyncOnce
	m, ok := models["synthetic"]
	if !ok {
		t.Fatalf("router did not discover the model: %v", models)
	}
	if m.Primary != primary || m.Secondary != secondary {
		t.Fatalf("placement (%s, %s) disagrees with the ring (%s, %s)", m.Primary, m.Secondary, primary, secondary)
	}
	if ok, gen := shardHasModel(t, secondary, "synthetic"); !ok || gen == 0 {
		t.Fatalf("secondary not re-synced after sync pass (present=%v gen=%d)", ok, gen)
	}

	// A hot swap on the primary bumps its generation; the next sync pass
	// must re-push so failover serves current coefficients.
	_, genBefore := shardHasModel(t, secondary, "synthetic")
	resp, body = postJSON(t, primary+"/v1/models/load", `{"path":"synthetic.json"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("primary reload failed: %d %s", resp.StatusCode, body)
	}
	models = routerModels(t, f.routeTS.URL)
	m = models["synthetic"]
	if m.SyncedGen != m.Generation {
		t.Fatalf("replica left stale after generation bump: synced %d, primary %d", m.SyncedGen, m.Generation)
	}
	if _, genAfter := shardHasModel(t, secondary, "synthetic"); genAfter <= genBefore {
		t.Fatalf("secondary generation did not advance on re-sync: %d → %d", genBefore, genAfter)
	}
}

func TestRouterLoadFansToPrimaryAndSecondary(t *testing.T) {
	f := newShardFarm(t, false)
	resp, body := postJSON(t, f.routeTS.URL+"/v1/models/load", `{"path":"synthetic.json"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("load through router failed: %d %s", resp.StatusCode, body)
	}
	for _, s := range f.shards {
		if ok, _ := shardHasModel(t, s.URL, "synthetic"); !ok {
			t.Fatalf("shard %s did not receive the fanned-out load", s.URL)
		}
	}
	// With both replicas loaded, predictions flow immediately.
	if resp, body := postJSON(t, f.routeTS.URL+"/v1/predict", predictBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("predict after router load = %d %s", resp.StatusCode, body)
	}
}

func TestRouterRequestIDPropagates(t *testing.T) {
	f := newShardFarm(t, true)
	req, _ := http.NewRequest(http.MethodPost, f.routeTS.URL+"/v1/predict", strings.NewReader(predictBody))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(cluster.RequestIDHeader, "ride-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(cluster.RequestIDHeader); got != "ride-7" {
		t.Fatalf("router did not echo the request ID: %q", got)
	}
}

func TestRouterStatusz(t *testing.T) {
	f := newShardFarm(t, true)
	routerModels(t, f.routeTS.URL) // prime topology
	resp, err := http.Get(f.routeTS.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	page := buf.String()
	if resp.StatusCode != http.StatusOK || !strings.Contains(resp.Header.Get("Content-Type"), "text/html") {
		t.Fatalf("statusz = %d %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	for _, want := range []string{"predrouter", "synthetic", f.shards[0].URL, f.shards[1].URL} {
		if !strings.Contains(page, want) {
			t.Fatalf("statusz page missing %q", want)
		}
	}
}
