package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"predperf/internal/obs"
)

// argVal reads one key from a span's flat k,v argument list.
func argVal(args []string, key string) (string, bool) {
	for i := 0; i+1 < len(args); i += 2 {
		if args[i] == key {
			return args[i+1], true
		}
	}
	return "", false
}

// TestFleetPlaneBurnAdaptsSampling drives the whole control loop
// end-to-end on a fake clock: scrape → merge → windowed burn → sampler
// ramp, then burn dilution → hysteresis → decay back to base.
func TestFleetPlaneBurnAdaptsSampling(t *testing.T) {
	var rep atomic.Pointer[obs.Report]
	set := func(total, bad int64) {
		rep.Store(&obs.Report{Format: 3, Counters: map[string]int64{
			"serve.requests_total": total,
			"serve.responses_5xx":  bad,
		}})
	}
	set(1000, 0)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(rep.Load())
	}))
	defer srv.Close()

	now := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	sampler := obs.NewAdaptiveSampler(0.01, 1, 2)
	p := newFleetPlane([]string{srv.URL}, nil, srv.Client(), time.Second, sampler, clock)

	// Quiet baseline, one scrape per minute (the cadence a live loop
	// keeps, which is what keeps the ring's boundary stamps fresh).
	for i := 0; i < 5; i++ {
		p.scrapeOnce(context.Background())
		now = now.Add(time.Minute)
	}
	if got := sampler.Rate(); got != 0.01 {
		t.Fatalf("rate moved without burn: %v", got)
	}

	// Burst: 400 new requests, all 5xx. Bad fraction ≈ 1 over both
	// windows, burn ≈ 1000 against the 0.999 objective — firing.
	set(1400, 400)
	p.scrapeOnce(context.Background())
	firing := false
	for _, st := range p.states {
		if st.Name == "fleet-availability" && st.Firing {
			firing = true
		}
	}
	if !firing {
		t.Fatalf("availability SLO not firing after an all-5xx burst: %+v", p.states)
	}
	if got := sampler.Rate(); got != 0.02 {
		t.Fatalf("first burning tick: rate %v want 0.02", got)
	}
	now = now.Add(time.Minute)
	p.scrapeOnce(context.Background()) // burst still inside both windows
	if got := sampler.Rate(); got != 0.04 {
		t.Fatalf("second burning tick: rate %v want 0.04", got)
	}

	// Recovery: a flood of good traffic dilutes the windowed bad
	// fraction far below the paging threshold; after the hysteresis
	// period the rate halves per tick back to base.
	set(2_000_000, 400)
	for i := 0; i < 12 && sampler.Rate() != 0.01; i++ {
		now = now.Add(time.Minute)
		p.scrapeOnce(context.Background())
	}
	if got := sampler.Rate(); got != 0.01 {
		t.Fatalf("rate did not decay to base after burn cleared: %v", got)
	}
}

// TestFleetScrapeCarryoverKeepsMergeMonotone: a target that goes dark
// keeps contributing its last-known report, so the merged cumulative
// counters never shrink (which would zero the windowed views for every
// other role).
func TestFleetScrapeCarryoverKeepsMergeMonotone(t *testing.T) {
	var dark atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if dark.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(&obs.Report{Format: 3,
			Counters: map[string]int64{"fleettest.mono": 700}})
	}))
	defer srv.Close()

	p := newFleetPlane([]string{srv.URL}, nil, srv.Client(), time.Second, nil, nil)
	p.scrapeOnce(context.Background())
	dark.Store(true)
	var merged *obs.Report
	for i := 0; i < fleetFailAfter; i++ {
		merged = p.scrapeOnce(context.Background())
	}
	if got := merged.Counters["fleettest.mono"]; got != 700 {
		t.Fatalf("dark target's last-known counters dropped from the merge: %d", got)
	}
	views := p.targetViews()
	if len(views) != 1 || views[0].Healthy {
		t.Fatalf("target still healthy after %d consecutive failures: %+v", fleetFailAfter, views)
	}
}

// TestHedgeSpanLinks: when a request hedges, both attempt spans carry a
// link_span annotation naming the sibling attempt, so a merged trace
// shows the duplicated work connected.
func TestHedgeSpanLinks(t *testing.T) {
	var slow atomic.Bool
	slowSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if slow.Load() {
			time.Sleep(150 * time.Millisecond)
		}
		evalOK(w, r)
	}))
	defer slowSrv.Close()
	fastSrv := httptest.NewServer(http.HandlerFunc(evalOK))
	defer fastSrv.Close()

	p, err := NewPool([]string{slowSrv.URL, fastSrv.URL}, PoolOptions{
		HedgeQuantile: 0.5,
		HedgeMin:      5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	req := EvalRequest{Benchmark: "x", TraceLen: 1, Configs: []WireConfig{{1, 1, 1, 1, 1, 1, 1, 1, 1}}}
	for i := 0; i < hedgeWarmup+2; i++ {
		if _, _, err := p.EvalChunk(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	slow.Store(true)

	tr := obs.NewTrace("hedge-link-test")
	ctx := obs.WithTrace(context.Background(), tr)
	for i := 0; i < 4; i++ {
		if _, _, err := p.EvalChunk(ctx, req); err != nil {
			t.Fatal(err)
		}
	}

	// The losing attempt's span ends asynchronously (when its context
	// is cancelled or its sleep finishes); give it a moment to land.
	deadline := time.Now().Add(2 * time.Second)
	for {
		byID := map[int64][]string{}
		var hedges []obs.SpanInfo
		for _, s := range tr.Spans() {
			if s.Name != "cluster.pool_attempt" {
				continue
			}
			byID[s.ID] = s.Args
			if h, _ := argVal(s.Args, "hedge"); h == "true" {
				hedges = append(hedges, s)
			}
		}
		for _, h := range hedges {
			link, ok := argVal(h.Args, "link_span")
			if !ok {
				continue
			}
			sib, err := strconv.ParseInt(link, 10, 64)
			if err != nil {
				t.Fatalf("unparseable link_span %q", link)
			}
			sibArgs, ok := byID[sib]
			if !ok {
				continue // sibling span not recorded yet
			}
			if hv, _ := argVal(sibArgs, "hedge"); hv != "false" {
				t.Fatalf("hedge linked a non-primary span: %v", sibArgs)
			}
			// The primary started first, so the hedge's ID was already
			// stored when the primary ended: the link must be mutual.
			if back, ok := argVal(sibArgs, "link_span"); !ok || back != strconv.FormatInt(h.ID, 10) {
				t.Fatalf("primary does not link back to the hedge: %v", sibArgs)
			}
			return // found a fully linked pair
		}
		if time.Now().After(deadline) {
			t.Fatalf("no mutually linked hedge pair found in %d spans", tr.Len())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
