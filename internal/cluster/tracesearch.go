package cluster

// tracesearch.go is the router's cross-role trace search: /tracez on
// the router fans a query out to every shard's and worker's JSON trace
// store and joins the partial results.
//
// The list view groups matching summaries by trace ID with a roles
// column, so a trace that was tail-retained on only a subset of roles
// (say, the worker kept it as an error while the router's reservoir
// dropped it) is still findable from one place. The detail view
// re-assembles ONE merged span forest: every role holding the trace
// exports its forest in wire form (span IDs preserved), each batch is
// shifted by a midpoint clock-offset estimate onto the router's
// timeline, and forests are grafted with obs.Trace.Graft under parent
// 0 so remote roots stay roots. Forests already riding in an upstream
// forest are skipped via the graft coverage marker — a span naming a
// "shard" or "worker" target that also carries "clock_offset_ms" means
// that role's spans were grafted upstream at record time — which keeps
// the merged forest free of duplicated subtrees. The merged trace then
// renders through the ordinary obs trace views, including the
// chrome://tracing export.

import (
	"context"
	"encoding/json"
	"fmt"
	"html/template"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"

	"predperf/internal/obs"
)

var (
	cTraceSearches  = obs.NewCounter("cluster.trace_searches")
	cTraceSearchErr = obs.NewCounter("cluster.trace_search_errors")
)

// fedTraceRow is one federated search result: the representative
// summary (the role reporting the longest view of the trace, normally
// the edge) plus every role that retained it.
type fedTraceRow struct {
	obs.TraceSummary
	Roles []string `json:"roles"`
}

// handleTracez serves the router's federated /tracez. The list view
// (?q= searches, ?route= exact-filters — the single-role store's
// parameters, applied on every role) merges the fleet's summaries;
// ?id= re-assembles one merged trace across roles. ?format=wire
// exports the router's own store, preserving the single-role wire
// contract, and ?format=json stays compact (un-indented) like the
// single-role list view so existing scrape tooling keeps parsing.
func (rt *Router) handleTracez(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	q := r.URL.Query()
	if id := q.Get("id"); id != "" {
		rt.serveFederatedTrace(w, r, id)
		return
	}
	query, route := q.Get("q"), q.Get("route")
	switch q.Get("format") {
	case "wire":
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(rt.traces.WireTraces(query))
	case "json":
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Traces []fedTraceRow `json:"traces"`
		}{rt.federatedSearch(r.Context(), query, route)})
	case "", "html":
		rows := rt.federatedSearch(r.Context(), query, route)
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_ = fedTracezTmpl.Execute(w, struct {
			Traces []fedTraceRow
			Query  string
			Now    string
		}{rows, query, time.Now().UTC().Format(time.RFC3339)})
	default:
		writeErr(w, http.StatusBadRequest, "bad_request",
			`unknown format %q (want "html", "json", or "wire")`, q.Get("format"))
	}
}

// fetchSummaries asks one role's trace store for its matching list
// rows, bounded by the fleet fan-out timeout. Both list parameters are
// forwarded; the role's own handler applies the same q-over-route
// precedence as the router's local store.
func (rt *Router) fetchSummaries(ctx context.Context, base, query, route string) ([]obs.TraceSummary, error) {
	ctx, cancel := context.WithTimeout(ctx, rt.opt.FleetScrapeTimeout)
	defer cancel()
	u := base + "/tracez?format=json&q=" + url.QueryEscape(query) +
		"&route=" + url.QueryEscape(route)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := rt.opt.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s/tracez answered %d", base, resp.StatusCode)
	}
	var out struct {
		Traces []obs.TraceSummary `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out.Traces, nil
}

// federatedSearch merges the router's own matches with every role's,
// grouped by trace ID. Unreachable roles are skipped (counted), not
// fatal: a partial answer beats none.
func (rt *Router) federatedSearch(ctx context.Context, query, route string) []fedTraceRow {
	cTraceSearches.Inc()
	roles := rt.fleet.roles()
	remote := make([][]obs.TraceSummary, len(roles))
	var wg sync.WaitGroup
	for i, fr := range roles {
		wg.Add(1)
		go func(i int, fr fleetRole) {
			defer wg.Done()
			sums, err := rt.fetchSummaries(ctx, fr.URL, query, route)
			if err != nil {
				cTraceSearchErr.Inc()
				return
			}
			remote[i] = sums
		}(i, fr)
	}
	wg.Wait()

	byID := map[string]*fedTraceRow{}
	var order []string
	add := func(label string, sums []obs.TraceSummary) {
		for _, s := range sums {
			row, ok := byID[s.ID]
			if !ok {
				row = &fedTraceRow{TraceSummary: s}
				byID[s.ID] = row
				order = append(order, s.ID)
			} else if s.DurMS > row.DurMS {
				// The longest view is the outermost one — normally the
				// edge's, spanning the whole request.
				roles := row.Roles
				row.TraceSummary, row.Roles = s, roles
			}
			row.Roles = append(row.Roles, label)
		}
	}
	local := rt.traces.Search(query)
	if query == "" {
		local = rt.traces.Snapshot(route)
	}
	add("router", local)
	for i, fr := range roles {
		add(fr.Role+" "+fr.URL, remote[i])
	}

	out := make([]fedTraceRow, 0, len(byID))
	for _, id := range order {
		out = append(out, *byID[id])
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start > out[j].Start })
	return out
}

// ---- federated single-trace assembly ----

// remoteForest is one role's wire export of the requested trace, with
// the midpoint clock-offset estimate for its batch.
type remoteForest struct {
	role   fleetRole
	wire   obs.WireTrace
	offset time.Duration
}

// fetchForest pulls one role's span forest for the trace, estimating
// the role→router clock offset from the request midpoint and the
// exporter's reported clock. A 404 returns (nil forest, nil error):
// the role simply did not retain the trace.
func (rt *Router) fetchForest(ctx context.Context, fr fleetRole, id string) (*remoteForest, error) {
	ctx, cancel := context.WithTimeout(ctx, rt.opt.FleetScrapeTimeout)
	defer cancel()
	u := fr.URL + "/tracez?format=wire&id=" + url.QueryEscape(id)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	resp, err := rt.opt.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	rtt := time.Since(t0)
	if resp.StatusCode == http.StatusNotFound {
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s/tracez answered %d", fr.URL, resp.StatusCode)
	}
	var exp obs.WireExport
	if err := json.NewDecoder(resp.Body).Decode(&exp); err != nil {
		return nil, err
	}
	if len(exp.Traces) == 0 {
		return nil, nil
	}
	// The exporter stamped its clock at export time; the midpoint of
	// this request approximates the same instant on our clock.
	offset := t0.Add(rtt / 2).Sub(time.Unix(0, exp.NowUnixNS))
	return &remoteForest{role: fr, wire: exp.Traces[0], offset: offset}, nil
}

// markCovered records which fan-out targets a forest already carries:
// a span naming a "shard" or "worker" plus the "clock_offset_ms" graft
// marker means that role's spans were grafted into this forest at
// record time. Transitive by construction — a worker's spans grafted
// into a shard forest ride along when the shard forest is grafted here.
func markCovered(spans []obs.WireSpan, covered map[string]bool) {
	for _, s := range spans {
		var target string
		grafted := false
		for i := 0; i+1 < len(s.Args); i += 2 {
			switch s.Args[i] {
			case "shard", "worker":
				target = s.Args[i+1]
			case "clock_offset_ms":
				grafted = true
			}
		}
		if target != "" && grafted {
			covered[target] = true
		}
	}
}

// metaFromSummary reconstructs retention metadata from a wire summary,
// for traces the router itself did not retain.
func metaFromSummary(s obs.TraceSummary) obs.TraceMeta {
	start, _ := time.Parse(time.RFC3339Nano, s.Start)
	return obs.TraceMeta{
		ID: s.ID, Kind: s.Kind, Route: s.Route, Status: s.Status,
		Start: start, Dur: time.Duration(s.DurMS * float64(time.Millisecond)),
		Err: s.Class == "error" || s.Status >= 500,
	}
}

// serveFederatedTrace re-assembles one trace across every role that
// retained it and renders it through the standard obs trace views
// (HTML span tree, ?format=json, ?format=chrome, ?format=wire).
func (rt *Router) serveFederatedTrace(w http.ResponseWriter, r *http.Request, id string) {
	roles := rt.fleet.roles()
	forests := make([]*remoteForest, len(roles))
	var wg sync.WaitGroup
	for i, fr := range roles {
		wg.Add(1)
		go func(i int, fr fleetRole) {
			defer wg.Done()
			f, err := rt.fetchForest(r.Context(), fr, id)
			if err != nil {
				cTraceSearchErr.Inc()
				return
			}
			forests[i] = f
		}(i, fr)
	}
	wg.Wait()

	ltr, meta, local := rt.traces.Get(id)
	anyRemote := false
	for _, f := range forests {
		if f != nil {
			anyRemote = true
		}
	}
	if !local && !anyRemote {
		http.Error(w, "trace not found on any role", http.StatusNotFound)
		return
	}

	merged := obs.NewTrace(id)
	covered := map[string]bool{}
	graft := func(spans []obs.WireSpan, offset time.Duration) {
		// Parent 0 keeps each forest's roots as roots of the merged
		// trace; internal parent links are remapped by Graft.
		merged.Graft(0, spans, offset)
		markCovered(spans, covered)
	}
	if local {
		graft(ltr.Export(0), 0)
	}
	// Shards before workers (roles() order): a shard forest grafted here
	// marks the workers it already carries as covered.
	for _, f := range forests {
		if f == nil || covered[f.role.URL] {
			continue
		}
		graft(f.wire.Spans, f.offset)
	}

	if !local {
		best := 0
		var bestSum obs.TraceSummary
		for _, f := range forests {
			if f != nil && len(f.wire.Spans) >= best {
				best, bestSum = len(f.wire.Spans), f.wire.Summary
			}
		}
		meta = metaFromSummary(bestSum)
	}

	// Render through a single-entry store so every existing trace view
	// (span tree, chrome export, wire) works on the merged forest, with
	// links resolving back through this federated handler.
	tmp := obs.NewTraceStore(1)
	meta.Keep = true
	tmp.Add(merged, meta)
	tmp.Handler().ServeHTTP(w, r)
}

var fedTracezTmpl = template.Must(template.New("fedtracez").Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>fleet tracez</title>
<style>
body{font-family:ui-monospace,SFMono-Regular,Menlo,monospace;font-size:13px;margin:24px;color:#222}
h1{font-size:18px}
table{border-collapse:collapse;margin-top:8px}
td,th{border:1px solid #ccc;padding:3px 8px;text-align:left}
th{background:#f2f2f2}
.ok{color:#0a0} .bad{color:#c00;font-weight:bold} .muted{color:#888}
a{color:#06c;text-decoration:none} a:hover{text-decoration:underline}
</style></head><body>
<h1>fleet tracez</h1>
<p class="muted">federated across router, shards, and workers · {{.Now}} · <a href="/tracez?format=json">json</a> · <a href="/fleetz">fleetz</a></p>
<form method="get" action="/tracez"><input name="q" value="{{.Query}}" size="40" placeholder="trace id | error | min_ms:25 | route substring"> <input type="submit" value="search"></form>
<table>
<tr><th>trace</th><th>class</th><th>kind</th><th>route</th><th>status</th><th>start</th><th>ms</th><th>spans</th><th>roles</th><th></th></tr>
{{range .Traces}}<tr>
<td><a href="/tracez?id={{.ID}}">{{.ID}}</a></td>
<td>{{if eq .Class "error"}}<span class="bad">{{.Class}}</span>{{else}}{{.Class}}{{end}}</td>
<td>{{.Kind}}</td><td>{{.Route}}</td>
<td>{{if .Status}}{{if ge .Status 500}}<span class="bad">{{.Status}}</span>{{else}}<span class="ok">{{.Status}}</span>{{end}}{{else}}<span class="muted">-</span>{{end}}</td>
<td class="muted">{{.Start}}</td><td>{{printf "%.2f" .DurMS}}</td><td>{{.Spans}}</td>
<td class="muted">{{range $i, $r := .Roles}}{{if $i}}, {{end}}{{$r}}{{end}}</td>
<td><a href="/tracez?id={{.ID}}&amp;format=chrome">chrome</a></td>
</tr>{{else}}<tr><td colspan="10" class="muted">no traces retained anywhere yet</td></tr>{{end}}
</table>
</body></html>
`))
