package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring assigning keys (model names) to shards.
// Each shard contributes `replicas` virtual nodes so assignment stays
// balanced for small shard counts, and a key's placement only moves when
// its arc's owner changes — adding or removing one shard relocates
// ~1/N of the models, not all of them.
type Ring struct {
	shards []string
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int // index into shards
}

// DefaultReplicas is the virtual-node count per shard; 64 keeps the
// max/min load ratio within a few percent for single-digit shard counts.
const DefaultReplicas = 64

// NewRing builds a ring over the given shard identifiers (base URLs).
// Order does not matter: placement depends only on the set of shards.
func NewRing(shards []string, replicas int) (*Ring, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("cluster: a ring needs at least one shard")
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	seen := map[string]bool{}
	r := &Ring{shards: append([]string(nil), shards...)}
	sort.Strings(r.shards)
	for i, s := range r.shards {
		if s == "" {
			return nil, fmt.Errorf("cluster: empty shard identifier")
		}
		if seen[s] {
			return nil, fmt.Errorf("cluster: duplicate shard %s", s)
		}
		seen[s] = true
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{
				hash:  ringHash(s + "#" + strconv.Itoa(v)),
				shard: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r, nil
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	// FNV's avalanche is weak for short strings differing in the last
	// byte (exactly what vnode labels are); a splitmix64 finalizer
	// disperses them so the ring stays balanced at small shard counts.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Shards lists the ring's members, sorted.
func (r *Ring) Shards() []string { return append([]string(nil), r.shards...) }

// Lookup returns the primary shard owning key and the secondary — the
// next distinct shard clockwise — used as the failover target and the
// replica that re-syncs after a primary hot swap. With a single shard
// the secondary equals the primary.
func (r *Ring) Lookup(key string) (primary, secondary string) {
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	p := r.points[i].shard
	primary = r.shards[p]
	secondary = primary
	for j := 1; j <= len(r.points); j++ {
		s := r.points[(i+j)%len(r.points)].shard
		if s != p {
			secondary = r.shards[s]
			break
		}
	}
	return primary, secondary
}
