package cluster

import (
	"html/template"
	"net/http"
	"time"
)

// A minimal shared /statusz for the cluster roles: a key/value summary
// plus tabular sections, self-contained HTML in the same visual idiom
// as predserve's dashboard. The cluster pages answer one question —
// what does the topology look like right now — and defer the deep
// metrics to /metricz.

type statuszKV struct{ Key, Value string }

type statuszRow struct {
	Cols []string
	Bad  bool // render the row's state as unhealthy
}

type statuszSection struct {
	Title   string
	Headers []string
	Rows    []statuszRow
	Empty   string // shown when Rows is empty
}

type statuszPage struct {
	Title    string
	Role     string
	Up       time.Duration
	Summary  []statuszKV
	Sections []statuszSection
}

var clusterStatuszTmpl = template.Must(template.New("cluster-statusz").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{{.Title}} /statusz</title>
<style>
body { font: 13px/1.5 system-ui, sans-serif; margin: 2em; color: #222; }
h1 { font-size: 1.3em; } h2 { font-size: 1.05em; margin-top: 1.6em; }
table { border-collapse: collapse; margin: 0.5em 0; }
th, td { border: 1px solid #ccc; padding: 3px 9px; text-align: left; }
th { background: #f2f2f2; font-weight: 600; }
.ok { color: #1a7f37; font-weight: 600; } .bad { color: #b42318; font-weight: 600; }
.muted { color: #777; }
tr.bad td { background: #fdeceb; }
</style>
</head>
<body>
<h1>{{.Title}}</h1>
<p><span class="ok">{{.Role}}</span> &middot; up {{.Up}}</p>
<table>
{{range .Summary}}<tr><th>{{.Key}}</th><td>{{.Value}}</td></tr>
{{end}}</table>
{{range .Sections}}
<h2>{{.Title}}</h2>
{{if .Rows}}
<table>
<tr>{{range .Headers}}<th>{{.}}</th>{{end}}</tr>
{{range .Rows}}<tr{{if .Bad}} class="bad"{{end}}>{{range .Cols}}<td>{{.}}</td>{{end}}</tr>
{{end}}</table>
{{else}}<p class="muted">{{.Empty}}</p>{{end}}
{{end}}
<p class="muted">JSON: <a href="/healthz">/healthz</a> &middot; <a href="/metricz">/metricz</a> &middot; <a href="/metricz?format=prom">/metricz?format=prom</a></p>
</body>
</html>
`))

func renderStatusz(w http.ResponseWriter, page statuszPage) {
	page.Up = page.Up.Round(time.Second)
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = clusterStatuszTmpl.Execute(w, page)
}
