package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// ---- ring ----

func TestRingLookupStable(t *testing.T) {
	r, err := NewRing([]string{"a", "b", "c"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"mcf", "gcc", "synthetic", "x"} {
		p1, s1 := r.Lookup(key)
		p2, s2 := r.Lookup(key)
		if p1 != p2 || s1 != s2 {
			t.Fatalf("Lookup(%q) unstable: (%s,%s) then (%s,%s)", key, p1, s1, p2, s2)
		}
		if p1 == s1 {
			t.Fatalf("Lookup(%q): secondary equals primary with 3 shards", key)
		}
	}
	// Shard order must not matter.
	r2, _ := NewRing([]string{"c", "a", "b"}, 0)
	for _, key := range []string{"mcf", "gcc", "synthetic"} {
		p1, _ := r.Lookup(key)
		p2, _ := r2.Lookup(key)
		if p1 != p2 {
			t.Fatalf("Lookup(%q) depends on shard order: %s vs %s", key, p1, p2)
		}
	}
}

func TestRingSingleShard(t *testing.T) {
	r, err := NewRing([]string{"only"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, s := r.Lookup("anything")
	if p != "only" || s != "only" {
		t.Fatalf("Lookup = (%s, %s), want (only, only)", p, s)
	}
}

func TestRingBalanceAndRelocation(t *testing.T) {
	shards := []string{"s1", "s2", "s3"}
	r, _ := NewRing(shards, 0)
	const keys = 3000
	count := map[string]int{}
	place := map[string]string{}
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("model-%d", i)
		p, _ := r.Lookup(k)
		count[p]++
		place[k] = p
	}
	for _, s := range shards {
		if frac := float64(count[s]) / keys; frac < 0.15 {
			t.Fatalf("shard %s owns %.1f%% of keys; the ring is badly unbalanced", s, frac*100)
		}
	}
	// Adding a fourth shard must relocate roughly 1/4 of keys, not all.
	r4, _ := NewRing(append(shards, "s4"), 0)
	moved := 0
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("model-%d", i)
		if p, _ := r4.Lookup(k); p != place[k] {
			moved++
		}
	}
	if frac := float64(moved) / keys; frac > 0.5 {
		t.Fatalf("adding one shard moved %.1f%% of keys; consistent hashing should move ~25%%", frac*100)
	}
}

func TestRingRejectsBadShards(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty shard list accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Fatal("duplicate shard accepted")
	}
	if _, err := NewRing([]string{""}, 0); err == nil {
		t.Fatal("empty shard identifier accepted")
	}
}

// ---- Retry-After ----

func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "1"},
		{-time.Second, "1"},
		{time.Millisecond, "1"},
		{time.Second, "1"},
		{1500 * time.Millisecond, "2"},
		{2 * time.Second, "2"},
		{61 * time.Second, "61"},
	}
	for _, c := range cases {
		if got := RetryAfterSeconds(c.d); got != c.want {
			t.Errorf("RetryAfterSeconds(%s) = %q, want %q", c.d, got, c.want)
		}
	}
}

// ---- pool health: eviction and readmission ----

// evalOK answers a fixed single-value EvalResponse.
func evalOK(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprint(w, `{"values":[1.25],"sims":1}`)
}

func TestPoolEvictionAndReadmission(t *testing.T) {
	var broken atomic.Bool
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if broken.Load() {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		evalOK(w, r)
	}))
	defer flaky.Close()
	steady := httptest.NewServer(http.HandlerFunc(evalOK))
	defer steady.Close()

	p, err := NewPool([]string{flaky.URL, steady.URL}, PoolOptions{
		EvictAfter:    2,
		ReadmitAfter:  30 * time.Millisecond,
		BaseBackoff:   time.Millisecond,
		MaxBackoff:    2 * time.Millisecond,
		HedgeQuantile: -1, // hedging off: this test is about health gating
	})
	if err != nil {
		t.Fatal(err)
	}
	req := EvalRequest{Benchmark: "x", TraceLen: 1, Configs: []WireConfig{{1, 1, 1, 1, 1, 1, 1, 1, 1}}}

	broken.Store(true)
	// Enough requests that round-robin lands on the flaky worker at
	// least EvictAfter times; every request must still succeed via the
	// steady worker after retries.
	for i := 0; i < 6; i++ {
		if _, _, err := p.EvalChunk(context.Background(), req); err != nil {
			t.Fatalf("request %d failed despite a healthy worker: %v", i, err)
		}
	}
	evicted := func() *WorkerStatus {
		for _, ws := range p.Snapshot() {
			if ws.URL == flaky.URL {
				return &ws
			}
		}
		return nil
	}
	if ws := evicted(); ws == nil || !ws.Evicted {
		t.Fatalf("flaky worker not evicted after repeated failures: %+v", ws)
	}

	// Heal the worker; after the rest period a live request probes and
	// readmits it.
	broken.Store(false)
	time.Sleep(40 * time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, _, err := p.EvalChunk(context.Background(), req); err != nil {
			t.Fatalf("post-heal request failed: %v", err)
		}
		if ws := evicted(); ws != nil && !ws.Evicted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healed worker never readmitted")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestPoolPermanentErrorNoRetry(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, `{"error":{"code":"bad_request","message":"no"}}`, http.StatusBadRequest)
	}))
	defer srv.Close()
	p, err := NewPool([]string{srv.URL}, PoolOptions{MaxAttempts: 5, BaseBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	req := EvalRequest{Benchmark: "x", TraceLen: 1, Configs: []WireConfig{{1, 1, 1, 1, 1, 1, 1, 1, 1}}}
	if _, _, err := p.EvalChunk(context.Background(), req); err == nil {
		t.Fatal("4xx answered no error")
	}
	if n := hits.Load(); n != 1 {
		t.Fatalf("4xx retried: %d attempts, want 1", n)
	}
	// A 4xx indicts the request, not the worker: no eviction.
	if ws := p.Snapshot()[0]; ws.Evicted {
		t.Fatal("worker evicted on a permanent client error")
	}
}

// ---- hedging ----

func TestPoolHedgesSlowRequests(t *testing.T) {
	var slow atomic.Bool
	slowSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if slow.Load() {
			time.Sleep(300 * time.Millisecond)
		}
		evalOK(w, r)
	}))
	defer slowSrv.Close()
	fastSrv := httptest.NewServer(http.HandlerFunc(evalOK))
	defer fastSrv.Close()

	p, err := NewPool([]string{slowSrv.URL, fastSrv.URL}, PoolOptions{
		HedgeQuantile: 0.5,
		HedgeMin:      5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	req := EvalRequest{Benchmark: "x", TraceLen: 1, Configs: []WireConfig{{1, 1, 1, 1, 1, 1, 1, 1, 1}}}

	// Warm the latency tracker past hedgeWarmup while both are fast.
	for i := 0; i < hedgeWarmup+2; i++ {
		if _, _, err := p.EvalChunk(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := p.hedgeDelay(); !ok {
		t.Fatal("hedging not armed after warmup")
	}

	hedgesBefore, winsBefore := cPoolHedges.Value(), cPoolHedgeWins.Value()
	slow.Store(true)
	// Round-robin guarantees the slow worker is the primary for half
	// the requests; those must hedge to the fast worker and return in
	// well under the slow worker's 300ms.
	start := time.Now()
	for i := 0; i < 4; i++ {
		if _, _, err := p.EvalChunk(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	if hedged := cPoolHedges.Value() - hedgesBefore; hedged == 0 {
		t.Fatal("no hedge launched against a 300ms primary with a 5ms trigger")
	}
	if wins := cPoolHedgeWins.Value() - winsBefore; wins == 0 {
		t.Fatal("no hedge won against a 300ms primary")
	}
	if elapsed >= 600*time.Millisecond {
		t.Fatalf("4 requests took %s; hedging should cut slow-primary latency", elapsed)
	}
}

// ---- wire config round trip ----

func TestWireConfigRoundTrip(t *testing.T) {
	for _, wc := range []WireConfig{
		{12, 96, 48, 48, 2048, 10, 32, 32, 2},
		{8, 64, 32, 16, 1024, 8, 16, 64, 3},
	} {
		if got := FromConfig(wc.Config()); got != wc {
			t.Fatalf("round trip changed the config: %+v -> %+v", wc, got)
		}
		if err := wc.Validate(); err != nil {
			t.Fatalf("valid config rejected: %v", err)
		}
	}
	bad := WireConfig{12, 0, 48, 48, 2048, 10, 32, 32, 2}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero ROB accepted")
	}
}
