package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"predperf/internal/obs"
)

// Shared HTTP plumbing for both cluster roles, mirroring internal/serve:
// the same structured {"error":{code,message}} bodies, the same
// X-Request-Id read/generate/echo convention, and per-role latency
// histograms — so a request keeps one identity across every hop of the
// cluster (client → router → shard, or builder → worker).

// RequestIDHeader is the header every cluster role reads, echoes, and
// forwards; it doubles as the request's trace ID.
const RequestIDHeader = "X-Request-Id"

type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, map[string]apiError{
		"error": {Code: code, Message: fmt.Sprintf(format, args...)},
	})
}

func requireMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method != method {
		w.Header().Set("Allow", method)
		writeErr(w, http.StatusMethodNotAllowed, "method_not_allowed",
			"%s requires %s, got %s", r.URL.Path, method, r.Method)
		return false
	}
	return true
}

// readJSON decodes a size-capped request body into v, writing the
// structured error response and returning false on failure.
func readJSON(w http.ResponseWriter, r *http.Request, maxBytes int64, v any) bool {
	body := http.MaxBytesReader(w, r.Body, maxBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeErr(w, http.StatusRequestEntityTooLarge, "body_too_large",
				"request body exceeds the %d-byte limit", tooLarge.Limit)
			return false
		}
		writeErr(w, http.StatusBadRequest, "bad_json", "decoding request: %v", err)
		return false
	}
	return true
}

// handleMetricz serves the process's obs registry as JSON or Prometheus
// text, identically on every cluster role.
func handleMetricz(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "prom", "prometheus":
		w.Header().Set("Content-Type", obs.PromContentType)
		obs.WritePrometheus(w)
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		obs.Snapshot().Write(w)
	default:
		writeErr(w, http.StatusBadRequest, "bad_request",
			`unknown metrics format %q (want "json" or "prom")`, format)
	}
}

type clusterCtxKey int

const spanReturnKey clusterCtxKey = iota

// spanReturnWanted reports whether the inbound hop asked for this
// request's span forest back (it carried a sampled traceparent).
func spanReturnWanted(ctx context.Context) bool {
	b, _ := ctx.Value(spanReturnKey).(bool)
	return b
}

// statusRecorder captures the response status for trace retention.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (s *statusRecorder) WriteHeader(code int) {
	if s.status == 0 {
		s.status = code
	}
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusRecorder) Write(b []byte) (int, error) {
	if s.status == 0 {
		s.status = http.StatusOK
	}
	return s.ResponseWriter.Write(b)
}

// withTracing assigns (or respects, after validation) the request ID,
// echoes it on the response, and decides whether this request records a
// trace: an inbound traceparent header makes the edge's sampling bit
// authoritative (a remote-parented hop records spans only when the
// caller is sampling, and skips the local root span so its forest
// grafts cleanly under the caller's hop span), while edge requests —
// no traceparent — go through the role's own sampler (static or
// SLO-burn-adaptive; either way the decision is deterministic at the
// rate in effect) and get a "<role>.request" root span. Finished
// traces are offered to the role's /tracez store with tail-based
// retention.
func withTracing(role string, sampler obs.HeadSampler, store *obs.TraceStore, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		id := r.Header.Get(RequestIDHeader)
		if !obs.ValidRequestID(id) {
			id = obs.NewTraceID()
		}
		w.Header().Set(RequestIDHeader, id)
		ctx := obs.WithRequestID(r.Context(), id)

		sc, remote := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader))
		sampled := sc.Sampled
		if !remote {
			sampled = sampler.Sample(id)
		}
		var tr *obs.Trace
		endRoot := func() {}
		if sampled {
			tid := id
			if remote && sc.TraceID != "" {
				tid = sc.TraceID
			}
			tr = obs.NewTrace(tid)
			ctx = obs.WithTrace(ctx, tr)
			if remote {
				ctx = context.WithValue(ctx, spanReturnKey, true)
			} else {
				ctx, endRoot = obs.StartSpanCtx(ctx, role+".request", "path", r.URL.Path)
			}
		}
		sw := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(sw, r.WithContext(ctx))
		endRoot()

		if tr != nil && store != nil {
			status := sw.status
			if status == 0 {
				status = http.StatusOK
			}
			store.Add(tr, obs.TraceMeta{
				ID: tr.ID(), Kind: "request", Route: r.URL.Path, Status: status,
				Start: t0, Dur: time.Since(t0), Err: status >= 500,
			})
		}
	})
}
