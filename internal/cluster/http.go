package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"predperf/internal/obs"
)

// Shared HTTP plumbing for both cluster roles, mirroring internal/serve:
// the same structured {"error":{code,message}} bodies, the same
// X-Request-Id read/generate/echo convention, and per-role latency
// histograms — so a request keeps one identity across every hop of the
// cluster (client → router → shard, or builder → worker).

// RequestIDHeader is the header every cluster role reads, echoes, and
// forwards; it doubles as the request's trace ID.
const RequestIDHeader = "X-Request-Id"

type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, map[string]apiError{
		"error": {Code: code, Message: fmt.Sprintf(format, args...)},
	})
}

func requireMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method != method {
		w.Header().Set("Allow", method)
		writeErr(w, http.StatusMethodNotAllowed, "method_not_allowed",
			"%s requires %s, got %s", r.URL.Path, method, r.Method)
		return false
	}
	return true
}

// readJSON decodes a size-capped request body into v, writing the
// structured error response and returning false on failure.
func readJSON(w http.ResponseWriter, r *http.Request, maxBytes int64, v any) bool {
	body := http.MaxBytesReader(w, r.Body, maxBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeErr(w, http.StatusRequestEntityTooLarge, "body_too_large",
				"request body exceeds the %d-byte limit", tooLarge.Limit)
			return false
		}
		writeErr(w, http.StatusBadRequest, "bad_json", "decoding request: %v", err)
		return false
	}
	return true
}

// handleMetricz serves the process's obs registry as JSON or Prometheus
// text, identically on every cluster role.
func handleMetricz(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "prom", "prometheus":
		w.Header().Set("Content-Type", obs.PromContentType)
		obs.WritePrometheus(w)
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		obs.Snapshot().Write(w)
	default:
		writeErr(w, http.StatusBadRequest, "bad_request",
			`unknown metrics format %q (want "json" or "prom")`, format)
	}
}

// withRequestID assigns (or respects) the request ID, attaches a
// request-scoped trace, and echoes the ID on the response — the same
// contract as predserve's middleware, so an ID minted at the edge
// survives router → shard and builder → worker hops intact.
func withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(RequestIDHeader)
		if id == "" {
			id = obs.NewTraceID()
		}
		w.Header().Set(RequestIDHeader, id)
		r = r.WithContext(obs.WithTrace(r.Context(), obs.NewTrace(id)))
		next.ServeHTTP(w, r)
	})
}
