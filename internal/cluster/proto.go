// Package cluster is the horizontal scale-out layer of the pipeline:
// a coordinator/worker topology built on the same stdlib net/http and
// internal/obs stack as internal/serve.
//
// Two roles live here:
//
//   - Sim workers (Worker, cmd/simworker) expose the cycle-level
//     simulator as a remote service: POST /v1/eval scores one or many
//     configurations on a benchmark trace. RemoteEvaluator speaks that
//     protocol through a health-gated Pool and implements
//     core.Evaluator, so every simulator consumer — BuildToAccuracy,
//     retrain, shadow re-simulation, /v1/search verification — fans
//     out to dedicated machines instead of the serving host. Workers
//     are deterministic, so a remote build is bit-identical to a local
//     one.
//
//   - The shard router (Router, cmd/predrouter) fronts a set of
//     predserve shards: models are consistent-hash assigned to shards
//     (Ring), /v1/predict and /v1/search are forwarded to the owning
//     shard with failover to the next shard on 5xx/timeout, and the
//     model generation vector piggybacked on /v1/models detects hot
//     swaps and triggers re-sync of the failover shard.
//
// Both roles thread X-Request-Id and the obs traceparent header through
// every hop (the edge's sampling decision rides the header, and sampled
// callees return their span forests for grafting into the caller's
// trace), export cluster.* counters and histograms, and answer
// /healthz, /metricz, /tracez, and a /statusz topology page.
package cluster

import (
	"fmt"
	"math"
	"time"

	"predperf/internal/design"
	"predperf/internal/obs"
)

// WireConfig is the JSON shape of a processor configuration on every
// cluster hop, using the same short field names as predserve's predict
// API and the predperf CLI.
type WireConfig struct {
	Depth  int `json:"depth"`
	ROB    int `json:"rob"`
	IQ     int `json:"iq"`
	LSQ    int `json:"lsq"`
	L2KB   int `json:"l2kb"`
	L2Lat  int `json:"l2lat"`
	IL1KB  int `json:"il1kb"`
	DL1KB  int `json:"dl1kb"`
	DL1Lat int `json:"dl1lat"`
}

// FromConfig converts a concrete design configuration to its wire form.
func FromConfig(c design.Config) WireConfig {
	return WireConfig{
		Depth: c.PipeDepth, ROB: c.ROBSize, IQ: c.IQSize, LSQ: c.LSQSize,
		L2KB: c.L2SizeKB, L2Lat: c.L2Lat, IL1KB: c.IL1SizeKB, DL1KB: c.DL1SizeKB, DL1Lat: c.DL1Lat,
	}
}

// Config converts the wire form back to a design configuration.
func (w WireConfig) Config() design.Config {
	return design.Config{
		PipeDepth: w.Depth, ROBSize: w.ROB, IQSize: w.IQ, LSQSize: w.LSQ,
		L2SizeKB: w.L2KB, L2Lat: w.L2Lat, IL1SizeKB: w.IL1KB, DL1SizeKB: w.DL1KB, DL1Lat: w.DL1Lat,
	}
}

// Validate rejects configurations the design space cannot normalize:
// every field must be positive (IQ/LSQ sizes are re-expressed as ROB
// fractions, so a zero ROB would divide by zero).
func (w WireConfig) Validate() error {
	fields := []struct {
		name string
		v    int
	}{
		{"depth", w.Depth}, {"rob", w.ROB}, {"iq", w.IQ}, {"lsq", w.LSQ},
		{"l2kb", w.L2KB}, {"l2lat", w.L2Lat}, {"il1kb", w.IL1KB}, {"dl1kb", w.DL1KB}, {"dl1lat", w.DL1Lat},
	}
	for _, f := range fields {
		if f.v <= 0 {
			return fmt.Errorf("field %q must be positive, got %d", f.name, f.v)
		}
	}
	return nil
}

// EvalRequest is the body of POST /v1/eval: evaluate every config on
// the named benchmark's trace and report the selected metric. One
// request maps to one (benchmark, trace length, metric) triple so the
// worker can serve it from a single memoized evaluator.
type EvalRequest struct {
	Benchmark string `json:"benchmark"`
	// TraceLen is the trace length in dynamic instructions; it selects
	// (and keys) the worker-side evaluator exactly as it does locally.
	TraceLen int `json:"trace_len"`
	// Metric is "cpi" (default when empty), "epi", "edp", or "power".
	Metric  string       `json:"metric,omitempty"`
	Configs []WireConfig `json:"configs"`
}

// EvalResponse answers an EvalRequest. Values[i] is the response for
// Configs[i]; the order is preserved and the result is bit-identical to
// running core.SimEvaluator locally on the same inputs.
type EvalResponse struct {
	Values []float64 `json:"values"`
	// Sims counts the simulations this request actually ran on the
	// worker (the rest were memoization hits), the same cost statistic
	// the paper optimizes.
	Sims int `json:"sims"`
	// Worker identifies the responding worker for tracing.
	Worker string `json:"worker,omitempty"`
	// Spans is the worker's span forest for this request, returned only
	// when the caller's traceparent header carried the sampling bit
	// (bounded by obs.MaxWireSpans). The pool grafts it into the live
	// trace so worker-side work shows up in the caller's timeline.
	Spans []obs.WireSpan `json:"spans,omitempty"`
}

// RetryAfterSeconds renders a backoff hint as a Retry-After header
// value: the duration rounded up to whole seconds, minimum 1 (the
// header has one-second resolution and "0" invites an immediate retry
// of a condition that has not had time to clear).
func RetryAfterSeconds(d time.Duration) string {
	if d <= 0 {
		return "1"
	}
	secs := int64(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}
