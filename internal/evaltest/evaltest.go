// Package evaltest is a conformance suite for core.Evaluator
// implementations. The Evaluator interface is the seam the whole
// pipeline hangs off — model builds, validation, search verification,
// shadow re-simulation, retraining — so every implementation (the
// in-process core.SimEvaluator, the farm-backed cluster.RemoteEvaluator)
// must honor the same contract: deterministic values, coherent
// memoization, single-flight de-duplication of concurrent misses, and
// well-defined failure behavior. The suite runs against a Harness so
// each package exercises its own construction without import cycles.
package evaltest

import (
	"math"
	"sync"
	"testing"

	"predperf/internal/core"
	"predperf/internal/design"
)

// Harness adapts one Evaluator implementation to the suite.
type Harness struct {
	// New returns a fresh evaluator over the same deterministic
	// backend; two evaluators from one harness must agree bitwise.
	New func(t *testing.T) core.Evaluator
	// Sims reports how many backend simulations ev has paid for
	// (core.SimEvaluator.Simulations / cluster.RemoteEvaluator
	// .Simulations). nil skips the cost-accounting assertions.
	Sims func(ev core.Evaluator) int
	// Canceled, when non-nil, returns an evaluator whose context (or
	// equivalent lifetime) is already over, plus the error surface to
	// inspect afterward. The suite asserts Eval degrades to NaN and the
	// error is reported rather than swallowed. nil skips the subtest
	// (core.SimEvaluator has no cancellation surface).
	Canceled func(t *testing.T) (ev core.Evaluator, err func() error)
}

// Configs returns n distinct valid design points, deterministically.
// Every field stays positive and ROB varies, so keys never collide.
func Configs(n int) []design.Config {
	out := make([]design.Config, n)
	for i := range out {
		out[i] = design.Config{
			PipeDepth: 8 + (i%9)*2,
			ROBSize:   64 + 8*i,
			IQSize:    32 + 4*(i%5),
			LSQSize:   32,
			L2SizeKB:  1024 << (i % 3),
			L2Lat:     8 + i%6,
			IL1SizeKB: 32,
			DL1SizeKB: 32 << (i % 2),
			DL1Lat:    2 + i%3,
		}
	}
	return out
}

// Run executes the conformance suite as subtests of t.
func Run(t *testing.T, h Harness) {
	t.Run("deterministic", func(t *testing.T) { deterministic(t, h) })
	t.Run("cache_coherence", func(t *testing.T) { cacheCoherence(t, h) })
	t.Run("single_flight", func(t *testing.T) { singleFlight(t, h) })
	t.Run("distinct_configs", func(t *testing.T) { distinctConfigs(t, h) })
	if h.Canceled != nil {
		t.Run("cancellation", func(t *testing.T) { cancellation(t, h) })
	}
}

// deterministic: the same configuration yields the same bits — within
// one evaluator and across fresh instances over the same backend.
func deterministic(t *testing.T, h Harness) {
	cfgs := Configs(4)
	a, b := h.New(t), h.New(t)
	for _, cfg := range cfgs {
		v1 := a.Eval(cfg)
		if math.IsNaN(v1) {
			t.Fatalf("Eval(%v) = NaN on the happy path", cfg)
		}
		if v2 := a.Eval(cfg); v2 != v1 {
			t.Fatalf("same evaluator disagreed with itself: %v then %v", v1, v2)
		}
		if v3 := b.Eval(cfg); v3 != v1 {
			t.Fatalf("fresh evaluator disagreed: %v vs %v", v3, v1)
		}
	}
}

// cacheCoherence: re-evaluating a working set in a different order
// returns identical values without paying for new simulations.
func cacheCoherence(t *testing.T, h Harness) {
	ev := h.New(t)
	cfgs := Configs(12)
	first := make([]float64, len(cfgs))
	for i, cfg := range cfgs {
		first[i] = ev.Eval(cfg)
	}
	var before int
	if h.Sims != nil {
		before = h.Sims(ev)
		if before != len(cfgs) {
			t.Fatalf("first pass paid %d simulations for %d configs", before, len(cfgs))
		}
	}
	for i := len(cfgs) - 1; i >= 0; i-- {
		if got := ev.Eval(cfgs[i]); got != first[i] {
			t.Fatalf("config %d: cached value %v != first value %v", i, got, first[i])
		}
	}
	if h.Sims != nil {
		if after := h.Sims(ev); after != before {
			t.Fatalf("second pass re-simulated: %d → %d", before, after)
		}
	}
}

// singleFlight: concurrent misses on one configuration agree and cost
// one simulation.
func singleFlight(t *testing.T, h Harness) {
	ev := h.New(t)
	cfg := Configs(1)[0]
	const workers = 32
	got := make([]float64, workers)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			got[i] = ev.Eval(cfg)
		}(i)
	}
	close(start)
	wg.Wait()
	for i := 1; i < workers; i++ {
		if got[i] != got[0] {
			t.Fatalf("worker %d saw %v, worker 0 saw %v", i, got[i], got[0])
		}
	}
	if h.Sims != nil {
		if n := h.Sims(ev); n != 1 {
			t.Fatalf("%d concurrent evals of one config paid %d simulations, want 1", workers, n)
		}
	}
}

// distinctConfigs: distinct design points are evaluated independently
// (no key collisions) and each costs exactly one simulation.
func distinctConfigs(t *testing.T, h Harness) {
	ev := h.New(t)
	cfgs := Configs(16)
	seen := map[string]float64{}
	for _, cfg := range cfgs {
		seen[cfg.Key()] = ev.Eval(cfg)
	}
	if len(seen) != len(cfgs) {
		t.Fatalf("config keys collided: %d unique of %d", len(seen), len(cfgs))
	}
	if h.Sims != nil {
		if n := h.Sims(ev); n != len(cfgs) {
			t.Fatalf("%d distinct configs paid %d simulations", len(cfgs), n)
		}
	}
}

// cancellation: an evaluator whose lifetime is over answers NaN (the
// interface has no error channel) and reports the failure out-of-band
// instead of hanging or fabricating a value.
func cancellation(t *testing.T, h Harness) {
	ev, errFn := h.Canceled(t)
	if v := ev.Eval(Configs(1)[0]); !math.IsNaN(v) {
		t.Fatalf("canceled evaluator answered %v, want NaN", v)
	}
	if errFn == nil {
		t.Fatal("harness returned no error surface")
	}
	if err := errFn(); err == nil {
		t.Fatal("canceled evaluator reported no error")
	}
}
