package trace

import (
	"fmt"
	"sync"
)

// Memory-layout bases for the synthetic address space. Regions are
// disjoint by construction.
const (
	codeBase    = 0x0040_0000
	heapBase    = 0x1000_0000 // streaming arrays
	pointerBase = 0x4000_0000 // pointer-chased structures
	stackBase   = 0x7FF0_0000
)

// block is one static basic block of the synthetic CFG.
type block struct {
	pc    uint64 // address of the first instruction
	ops   []Op   // static op sequence; last op is Branch
	taken int    // taken-successor block id
	next  int    // fall-through block id

	// Branch behaviour: periodic blocks produce a run pattern of
	// `takens` taken outcomes per `period` visits (locally predictable,
	// like loop and guard branches in real code); aperiodic blocks draw
	// Bernoulli(bias) outcomes (data-dependent branches).
	periodic       bool
	period, takens int
	visits         int
	bias           float64
}

// program is the generated static code for one profile.
type program struct {
	blocks []block
}

// buildProgram materializes the profile's synthetic CFG.
func buildProgram(p Profile, r *rng) *program {
	nb := p.CodeBlocks
	hot := int(float64(nb)*p.HotFrac + 0.5)
	if hot < 1 {
		hot = 1
	}
	// Non-branch op mix, normalized. The remainder of the named mix is
	// integer ALU work.
	type wop struct {
		op Op
		w  float64
	}
	named := []wop{
		{Load, p.LoadFrac}, {Store, p.StoreFrac},
		{IntMul, p.IntMulFrac}, {IntDiv, p.IntDivFrac},
		{FPALU, p.FPALUFrac}, {FPMul, p.FPMulFrac}, {FPDiv, p.FPDivFrac},
	}
	var namedSum float64
	for _, w := range named {
		namedSum += w.w
	}
	ialu := 1 - namedSum - p.BranchFrac
	if ialu < 0.05 {
		ialu = 0.05
	}
	mix := append(named, wop{IntALU, ialu})
	var total float64
	for _, w := range mix {
		total += w.w
	}
	drawOp := func() Op {
		u := r.float() * total
		for _, w := range mix {
			if u < w.w {
				return w.op
			}
			u -= w.w
		}
		return IntALU
	}

	prog := &program{blocks: make([]block, nb)}
	pc := uint64(codeBase)
	for i := 0; i < nb; i++ {
		l := p.BlockMin + r.intn(p.BlockMax-p.BlockMin+1)
		ops := make([]Op, l)
		for j := 0; j < l-1; j++ {
			ops[j] = drawOp()
		}
		ops[l-1] = Branch

		// Taken successor: usually within the hot region so execution
		// stays local; occasionally anywhere, pulling cold code in.
		var tgt int
		if r.float() < p.HotProb {
			tgt = r.intn(hot)
		} else {
			tgt = r.intn(nb)
		}
		b := block{pc: pc, ops: ops, taken: tgt, next: (i + 1) % nb, bias: clamp01(p.BranchBias + 0.2*(r.float()-0.5))}
		if i >= hot {
			// Blocks outside the hot region model colder code (error
			// paths, helper routines): fall-through biased, as compilers
			// lay out real cold code, so an untrained predictor is
			// usually right about them. They still behave periodically,
			// so when a program executes them often they train well.
			b.bias = clamp01(0.3 + 0.2*(r.float()-0.5))
		}
		if i >= hot || r.float() < p.PatternFrac {
			// Periodic run pattern: `takens` taken outcomes out of each
			// `period` visits, with bias·period duty cycle. Learnable
			// from per-branch local history.
			b.periodic = true
			b.period = 3 + r.intn(6) // 3..8
			b.takens = int(b.bias*float64(b.period) + 0.5)
			if b.takens < 1 {
				b.takens = 1
			}
			if b.takens >= b.period {
				b.takens = b.period - 1
			}
			b.visits = r.intn(b.period)
		}
		prog.blocks[i] = b
		pc += uint64(4 * l)
	}
	return prog
}

func clamp01(v float64) float64 {
	if v < 0.02 {
		return 0.02
	}
	if v > 0.98 {
		return 0.98
	}
	return v
}

// addrGen produces data addresses per the profile's pattern mix.
type addrGen struct {
	p        Profile
	r        *rng
	cursors  []uint64 // stream positions
	regions  []uint64 // stream region bases
	regSizes []uint64 // per-region footprints (geometric spread)
}

func newAddrGen(p Profile, r *rng) *addrGen {
	n := p.Streams
	if n < 1 {
		n = 1
	}
	g := &addrGen{p: p, r: r, cursors: make([]uint64, n), regions: make([]uint64, n), regSizes: make([]uint64, n)}
	// Region sizes grow geometrically (each ~1.6× the previous) and sum
	// to StreamBytes, so the fraction of streamed data that a cache of a
	// given capacity can hold changes gradually with capacity instead of
	// falling off a single cliff at StreamBytes.
	var weights float64
	w := 1.0
	for i := 0; i < n; i++ {
		weights += w
		w *= 1.6
	}
	base := heapBase
	w = 1.0
	for i := 0; i < n; i++ {
		sz := uint64(float64(p.StreamBytes) * w / weights)
		if sz < 4096 {
			sz = 4096
		}
		g.regSizes[i] = sz
		g.regions[i] = uint64(base)
		base += int(sz)
		w *= 1.6
	}
	return g
}

// next returns an effective address and whether it came from the
// pointer-chasing class (whose loads serialize).
func (g *addrGen) next() (addr uint64, pointer bool) {
	u := g.r.float()
	switch {
	case u < g.p.StackFrac:
		span := g.p.StackBytes
		if span < 8 {
			span = 8
		}
		return stackBase + uint64(g.r.intn(int(span)))&^7, false
	case u < g.p.StackFrac+g.p.PointerFrac:
		span := g.p.PointerBytes
		switch t := g.r.float(); {
		case t < g.p.PtrL1Prob:
			span = g.p.PtrL1Bytes
		case t < g.p.PtrL1Prob+g.p.PtrHotProb:
			span = g.p.PtrHotBytes
		}
		if span < 64 {
			span = 64
		}
		return pointerBase + (g.r.next()%span)&^7, true
	default:
		i := g.r.intn(len(g.cursors))
		stride := g.p.StreamStride
		if stride == 0 {
			stride = 8
		}
		a := g.regions[i] + g.cursors[i]
		g.cursors[i] = (g.cursors[i] + stride) % g.regSizes[i]
		return a, false
	}
}

// Generate expands the profile into a dynamic trace of n instructions.
// The same (profile, n, seed) always yields the identical trace.
func Generate(p Profile, n int, seed uint64) Trace {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	r := newRNG(seed ^ hashName(p.Name))
	prog := buildProgram(p, r)
	ag := newAddrGen(p, r)

	out := make(Trace, 0, n)
	cur := 0
	lastLoadIdx := -1
	var recentStores [8]uint64
	nStores := 0
	for len(out) < n {
		b := &prog.blocks[cur]
		for j, op := range b.ops {
			if len(out) >= n {
				break
			}
			in := Inst{PC: b.pc + uint64(4*j), Op: op}

			// Dependencies.
			dep := func() int32 {
				d := r.geometric(p.MeanDepDist)
				if d > 64 {
					d = 64
				}
				if d > len(out) {
					d = len(out)
				}
				return int32(d)
			}
			if len(out) > 0 {
				in.Dep1 = dep()
				if r.float() < p.SecondDepProb {
					in.Dep2 = dep()
				}
			}

			switch op {
			case Load, Store:
				addr, pointer := ag.next()
				in.Addr = addr
				if op == Load {
					if nStores > 0 && r.float() < p.StoreReuseProb {
						// Re-read a recently stored location
						// (spill/refill), enabling forwarding.
						k := nStores - 1 - r.intn(min(nStores, len(recentStores)))
						in.Addr = recentStores[k%len(recentStores)]
						pointer = false
					}
					dist := len(out) - lastLoadIdx
					if pointer && lastLoadIdx >= 0 && dist <= 64 && r.float() < p.ChaseDepProb {
						in.Dep1 = int32(dist) // serialized pointer chase
					}
					lastLoadIdx = len(out)
				} else {
					recentStores[nStores%len(recentStores)] = addr
					nStores++
				}
			case Branch:
				var taken bool
				if b.periodic {
					taken = b.visits%b.period < b.takens
					b.visits++
					if p.BranchNoise > 0 && r.float() < p.BranchNoise {
						taken = !taken
					}
				} else {
					taken = r.float() < b.bias
				}
				in.Taken = taken
				if taken {
					in.Target = prog.blocks[b.taken].pc
				} else {
					in.Target = prog.blocks[b.next].pc
				}
			}
			out = append(out, in)
		}
		// The block's terminating branch decides the successor; if the
		// trace ended mid-block the outer loop exits anyway.
		last := out[len(out)-1]
		if last.Op == Branch && last.Taken {
			cur = b.taken
		} else {
			cur = b.next
		}
	}
	return out
}

func hashName(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

var (
	cacheMu sync.Mutex
	cached  = map[string]Trace{}
)

// Cached returns the deterministic trace for a named benchmark profile at
// the given length, generating it on first use and memoizing it.
func Cached(name string, n int) (Trace, error) {
	p, ok := ByName(name)
	if !ok {
		return nil, fmt.Errorf("trace: unknown benchmark %q", name)
	}
	key := fmt.Sprintf("%s/%d", name, n)
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if t, ok := cached[key]; ok {
		return t, nil
	}
	t := Generate(p, n, 1)
	cached[key] = t
	return t, nil
}
