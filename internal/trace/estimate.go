package trace

import (
	"sort"

	"predperf/internal/sim/branch"
)

// EstimateProfile measures a trace's statistical profile — the profiling
// step of statistical simulation (Eeckhout et al., ISCA 2004; §5 of the
// paper). The returned profile can be handed back to Generate to produce
// a short synthetic trace whose simulated behavior tracks the original,
// which is exactly the statistical-simulation methodology the paper's
// related work contrasts with model building.
//
// Address-pattern classification assumes this package's memory layout
// (stack / pointer / stream regions), which holds for traces produced by
// Generate; foreign traces get a best-effort split by address range.
func EstimateProfile(name string, tr Trace) Profile {
	p := Profile{Name: name}
	if len(tr) == 0 {
		return p
	}
	n := float64(len(tr))

	// Instruction mix and dependency structure.
	var counts [numOps]int
	var depSum float64
	var depCnt, dep2Cnt int
	isLoad := make([]bool, len(tr))
	for i := range tr {
		isLoad[i] = tr[i].Op == Load
	}
	var loads, chased, storeReuse int
	var recentStores [8]uint64
	nStores := 0
	blockLens := []int{}
	lastBranch := -1
	var taken, branches int
	for i := range tr {
		in := &tr[i]
		counts[in.Op]++
		if in.Dep1 > 0 {
			depSum += float64(in.Dep1)
			depCnt++
		}
		if in.Dep2 > 0 {
			depSum += float64(in.Dep2)
			depCnt++
			dep2Cnt++
		}
		switch in.Op {
		case Load:
			loads++
			if in.Dep1 > 0 && isLoad[i-int(in.Dep1)] {
				chased++
			}
			for _, s := range recentStores {
				if s != 0 && s == in.Addr {
					storeReuse++
					break
				}
			}
		case Store:
			recentStores[nStores%len(recentStores)] = in.Addr
			nStores++
		case Branch:
			branches++
			if in.Taken {
				taken++
			}
			blockLens = append(blockLens, i-lastBranch)
			lastBranch = i
		}
	}
	p.LoadFrac = float64(counts[Load]) / n
	p.StoreFrac = float64(counts[Store]) / n
	p.BranchFrac = float64(counts[Branch]) / n
	p.IntMulFrac = float64(counts[IntMul]) / n
	p.IntDivFrac = float64(counts[IntDiv]) / n
	p.FPALUFrac = float64(counts[FPALU]) / n
	p.FPMulFrac = float64(counts[FPMul]) / n
	p.FPDivFrac = float64(counts[FPDiv]) / n

	p.MeanDepDist = 3
	if depCnt > 0 {
		p.MeanDepDist = depSum / float64(depCnt)
	}
	p.SecondDepProb = float64(dep2Cnt) / n
	if loads > 0 {
		p.ChaseDepProb = float64(chased) / float64(loads)
		p.StoreReuseProb = float64(storeReuse) / float64(loads)
	}

	// Code structure: mean dynamic block length and executed block count.
	meanBlock := 7.0
	if len(blockLens) > 0 {
		var s int
		for _, l := range blockLens {
			s += l
		}
		meanBlock = float64(s) / float64(len(blockLens))
	}
	p.BlockMin = clampInt(int(meanBlock)-3, 2, 64)
	p.BlockMax = clampInt(int(meanBlock)+3, p.BlockMin, 64)

	branchPCs := map[uint64]int{}
	for i := range tr {
		if tr[i].Op == Branch {
			branchPCs[tr[i].PC]++
		}
	}
	p.CodeBlocks = clampInt(len(branchPCs), 2, 1<<16)
	// Hot fraction: how many static branches cover 90% of executions.
	execs := make([]int, 0, len(branchPCs))
	for _, c := range branchPCs {
		execs = append(execs, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(execs)))
	cum, hot := 0, 0
	for _, c := range execs {
		cum += c
		hot++
		if float64(cum) >= 0.9*float64(branches) {
			break
		}
	}
	p.HotFrac = clampF(float64(hot)/float64(max(p.CodeBlocks, 1)), 0.02, 1)
	p.HotProb = 0.93

	// Branch behavior: taken bias directly; predictability from the
	// in-order accuracy of the reference tournament predictor, inverted
	// through acc ≈ PF·0.93 + (1−PF)·max(bias, 1−bias).
	bias := 0.6
	if branches > 0 {
		bias = float64(taken) / float64(branches)
	}
	p.BranchBias = clampF(bias, 0.05, 0.95)
	acc := predictorAccuracy(tr)
	m := bias
	if 1-bias > m {
		m = 1 - bias
	}
	if 0.93 > m {
		p.PatternFrac = clampF((acc-m)/(0.93-m), 0, 0.98)
	} else {
		p.PatternFrac = 0.9
	}
	p.BranchNoise = 0.02

	// Data regions: classify by the package's address layout.
	var stackN, ptrN, heapN int
	var stackSpan, heapSpan uint64
	var ptrOffsets []uint64
	for i := range tr {
		if !tr[i].Op.IsMem() {
			continue
		}
		a := tr[i].Addr
		switch {
		case a >= stackBase:
			stackN++
			if off := a - stackBase; off > stackSpan {
				stackSpan = off
			}
		case a >= pointerBase:
			ptrN++
			ptrOffsets = append(ptrOffsets, a-pointerBase)
		default:
			heapN++
			if off := a - heapBase; off > heapSpan {
				heapSpan = off
			}
		}
	}
	mem := stackN + ptrN + heapN
	if mem > 0 {
		p.StackFrac = float64(stackN) / float64(mem)
		p.PointerFrac = float64(ptrN) / float64(mem)
	}
	p.StackBytes = maxU(stackSpan, 1<<10)
	p.StreamBytes = maxU(heapSpan, 64<<10)
	p.StreamStride = 8
	p.Streams = 4
	if len(ptrOffsets) > 0 {
		sort.Slice(ptrOffsets, func(i, j int) bool { return ptrOffsets[i] < ptrOffsets[j] })
		q := func(f float64) uint64 { return ptrOffsets[int(f*float64(len(ptrOffsets)-1))] }
		// Tier spans at fixed quantiles; tier probabilities solved so the
		// generator's three-uniform mixture reproduces the empirical mass
		// at those spans (see solveTierProbs).
		s1 := maxU(q(0.75), 4<<10)
		s2 := maxU(q(0.95), s1+1)
		s3 := maxU(q(1.0), s2+1)
		p1, p2 := solveTierProbs(0.75, 0.95, float64(s1), float64(s2), float64(s3))
		p.PtrL1Prob = p1
		p.PtrL1Bytes = s1
		p.PtrHotProb = p2
		p.PtrHotBytes = s2
		p.PointerBytes = s3
	} else {
		p.PointerBytes = 1 << 20
		p.PtrL1Bytes = 16 << 10
		p.PtrHotBytes = 256 << 10
	}
	return p
}

// predictorAccuracy measures in-order tournament-predictor accuracy on
// the trace's branch stream, counting only the second half so training
// warmup does not depress the estimate on short profiles.
func predictorAccuracy(tr Trace) float64 {
	bp := branch.New(branch.Config{})
	var branches int
	for i := range tr {
		if tr[i].Op == Branch {
			branches++
		}
	}
	correct, total, seen := 0, 0, 0
	for i := range tr {
		if tr[i].Op != Branch {
			continue
		}
		seen++
		pred, cp := bp.PredictDirection(tr[i].PC)
		if seen > branches/2 {
			total++
			if pred == tr[i].Taken {
				correct++
			}
		}
		if pred != tr[i].Taken {
			bp.Restore(tr[i].PC, cp, tr[i].Taken)
		}
		bp.Update(tr[i].PC, cp, tr[i].Taken)
	}
	if total == 0 {
		return 0.9
	}
	return float64(correct) / float64(total)
}

// solveTierProbs fits the three-tier mixture weights so that the
// generated address distribution matches the empirical cumulative mass
// f1 at span s1 and f2 at span s2 (s3 is the full footprint):
//
//	f1 = p1 + p2·s1/s2 + p3·s1/s3
//	f2 = p1 + p2 + p3·s2/s3
//	 1 = p1 + p2 + p3
func solveTierProbs(f1, f2, s1, s2, s3 float64) (p1, p2 float64) {
	p3 := (1 - f2) / (1 - s2/s3)
	a := f2 - p3*s2/s3 // = p1 + p2
	denom := 1 - s1/s2
	if denom < 1e-9 {
		denom = 1e-9
	}
	p1 = (f1 - a*s1/s2 - p3*s1/s3) / denom
	// Clamp against numerical or degenerate-span issues and renormalize
	// so p1 + p2 + p3 = 1 with every weight positive.
	p1 = clampF(p1, 0.05, 0.95)
	p3 = clampF(p3, 0.01, 0.9)
	p2 = clampF(1-p1-p3, 0.01, 0.9)
	return p1, p2
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
