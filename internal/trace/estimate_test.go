package trace

import (
	"math"
	"testing"
)

func TestEstimateProfileRecoversMix(t *testing.T) {
	orig, _ := ByName("twolf")
	tr := Generate(orig, 80000, 1)
	est := EstimateProfile("twolf-est", tr)
	if err := est.Validate(); err != nil {
		t.Fatal(err)
	}
	mix := tr.Mix()
	if math.Abs(est.LoadFrac-mix[Load]) > 0.01 {
		t.Fatalf("load frac %v, measured %v", est.LoadFrac, mix[Load])
	}
	if math.Abs(est.BranchFrac-mix[Branch]) > 0.01 {
		t.Fatalf("branch frac %v, measured %v", est.BranchFrac, mix[Branch])
	}
	// Block lengths bracket the measured mean.
	meanBlock := 1 / mix[Branch]
	if float64(est.BlockMin) > meanBlock || float64(est.BlockMax) < meanBlock {
		t.Fatalf("block range [%d,%d] does not bracket %v", est.BlockMin, est.BlockMax, meanBlock)
	}
}

func TestEstimateProfileBranchBehavior(t *testing.T) {
	orig, _ := ByName("equake")
	tr := Generate(orig, 80000, 1)
	est := EstimateProfile("equake-est", tr)
	// equake branches are overwhelmingly predictable.
	if est.PatternFrac < 0.7 {
		t.Fatalf("equake estimated PatternFrac %v too low", est.PatternFrac)
	}
	// And mostly taken.
	if est.BranchBias < 0.6 {
		t.Fatalf("equake estimated bias %v too low", est.BranchBias)
	}
}

func TestEstimateProfileRegions(t *testing.T) {
	orig, _ := ByName("mcf")
	tr := Generate(orig, 80000, 1)
	est := EstimateProfile("mcf-est", tr)
	// mcf is pointer-heavy with a multi-megabyte pointer footprint.
	if est.PointerFrac < 0.3 {
		t.Fatalf("mcf estimated pointer frac %v", est.PointerFrac)
	}
	if est.PointerBytes < 4<<20 {
		t.Fatalf("mcf estimated pointer footprint %d too small", est.PointerBytes)
	}
	if est.PtrL1Bytes >= est.PtrHotBytes || est.PtrHotBytes > est.PointerBytes {
		t.Fatalf("tier ordering broken: %d / %d / %d", est.PtrL1Bytes, est.PtrHotBytes, est.PointerBytes)
	}
}

func TestEstimatedProfileGeneratesRunnableTrace(t *testing.T) {
	orig, _ := ByName("parser")
	tr := Generate(orig, 60000, 1)
	est := EstimateProfile("parser-est", tr)
	synth := Generate(est, 20000, 2)
	if len(synth) != 20000 {
		t.Fatalf("synthetic trace length %d", len(synth))
	}
	// The regenerated trace's mix must be close to the original's.
	a, b := tr.Mix(), synth.Mix()
	if math.Abs(a[Load]-b[Load]) > 0.05 {
		t.Fatalf("regenerated load frac %v vs original %v", b[Load], a[Load])
	}
}

func TestEstimateEmptyTrace(t *testing.T) {
	p := EstimateProfile("empty", nil)
	if p.Name != "empty" {
		t.Fatal("name not set")
	}
}

func TestSolveTierProbsForwardCheck(t *testing.T) {
	s1, s2, s3 := 20e3, 300e3, 3e6
	f1, f2 := 0.6, 0.92
	p1, p2 := solveTierProbs(f1, f2, s1, s2, s3)
	p3 := 1 - p1 - p2
	if p1 <= 0 || p2 <= 0 || p3 <= 0 {
		t.Fatalf("non-positive weights: %v %v %v", p1, p2, p3)
	}
	g := func(x float64) float64 {
		return p1*math.Min(1, x/s1) + p2*math.Min(1, x/s2) + p3*math.Min(1, x/s3)
	}
	if math.Abs(g(s1)-f1) > 0.03 {
		t.Fatalf("G(s1) = %v, want %v", g(s1), f1)
	}
	if math.Abs(g(s2)-f2) > 0.03 {
		t.Fatalf("G(s2) = %v, want %v", g(s2), f2)
	}
}
