package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary trace format: an 8-byte header ("PPTR", version, flags) plus a
// little-endian instruction count, followed by fixed-width records. The
// format lets generated workloads be stored and exchanged with external
// tools.
const (
	traceMagic   = "PPTR"
	traceVersion = 1
	recordBytes  = 8 + 8 + 8 + 4 + 4 + 1 + 1 + 2 // PC, Addr, Target, Dep1, Dep2, Op, Taken, pad
)

// WriteTo serializes the trace in the binary format.
func (t Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	head := make([]byte, 16)
	copy(head, traceMagic)
	binary.LittleEndian.PutUint32(head[4:], traceVersion)
	binary.LittleEndian.PutUint64(head[8:], uint64(len(t)))
	n, err := bw.Write(head)
	written += int64(n)
	if err != nil {
		return written, err
	}
	rec := make([]byte, recordBytes)
	for _, in := range t {
		binary.LittleEndian.PutUint64(rec[0:], in.PC)
		binary.LittleEndian.PutUint64(rec[8:], in.Addr)
		binary.LittleEndian.PutUint64(rec[16:], in.Target)
		binary.LittleEndian.PutUint32(rec[24:], uint32(in.Dep1))
		binary.LittleEndian.PutUint32(rec[28:], uint32(in.Dep2))
		rec[32] = byte(in.Op)
		if in.Taken {
			rec[33] = 1
		} else {
			rec[33] = 0
		}
		rec[34], rec[35] = 0, 0
		n, err := bw.Write(rec)
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	return written, bw.Flush()
}

// ReadTrace deserializes a trace written by WriteTo.
func ReadTrace(r io.Reader) (Trace, error) {
	br := bufio.NewReader(r)
	head := make([]byte, 16)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(head[:4]) != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", head[:4])
	}
	if v := binary.LittleEndian.Uint32(head[4:]); v != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	count := binary.LittleEndian.Uint64(head[8:])
	const maxInsts = 1 << 30
	if count > maxInsts {
		return nil, fmt.Errorf("trace: implausible instruction count %d", count)
	}
	out := make(Trace, count)
	rec := make([]byte, recordBytes)
	for i := range out {
		if _, err := io.ReadFull(br, rec); err != nil {
			return nil, fmt.Errorf("trace: reading record %d: %w", i, err)
		}
		in := &out[i]
		in.PC = binary.LittleEndian.Uint64(rec[0:])
		in.Addr = binary.LittleEndian.Uint64(rec[8:])
		in.Target = binary.LittleEndian.Uint64(rec[16:])
		in.Dep1 = int32(binary.LittleEndian.Uint32(rec[24:]))
		in.Dep2 = int32(binary.LittleEndian.Uint32(rec[28:]))
		in.Op = Op(rec[32])
		in.Taken = rec[33] != 0
		if in.Op >= numOps {
			return nil, fmt.Errorf("trace: record %d has invalid op %d", i, rec[32])
		}
		if in.Dep1 < 0 || int(in.Dep1) > i || in.Dep2 < 0 || int(in.Dep2) > i {
			return nil, fmt.Errorf("trace: record %d has invalid dependency", i)
		}
	}
	return out, nil
}
