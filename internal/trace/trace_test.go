package trace

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAllProfilesValid(t *testing.T) {
	names := Names()
	if len(names) != 8 {
		t.Fatalf("have %d benchmark profiles, want 8", len(names))
	}
	for _, name := range names {
		p, ok := ByName(name)
		if !ok {
			t.Fatalf("missing profile %s", name)
		}
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, _ := ByName("mcf")
	a := Generate(p, 5000, 1)
	b := Generate(p, 5000, 1)
	if len(a) != 5000 || len(b) != 5000 {
		t.Fatalf("lengths %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := Generate(p, 5000, 2)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestMixApproximatesProfile(t *testing.T) {
	for _, name := range Names() {
		p, _ := ByName(name)
		tr := Generate(p, 40000, 1)
		mix := tr.Mix()
		// One branch per block, so branch fraction ≈ 2/(BlockMin+BlockMax).
		wantBr := 2.0 / float64(p.BlockMin+p.BlockMax)
		if math.Abs(mix[Branch]-wantBr) > 0.06 {
			t.Errorf("%s: branch frac %v, want ≈%v", name, mix[Branch], wantBr)
		}
		// Non-branch ops are drawn from the named mix plus an IALU
		// remainder, then scaled by the non-branch share. Hot blocks
		// dominate dynamically, so allow generous sampling slack.
		named := p.LoadFrac + p.StoreFrac + p.IntMulFrac + p.IntDivFrac +
			p.FPALUFrac + p.FPMulFrac + p.FPDivFrac
		ialu := 1 - named - p.BranchFrac
		if ialu < 0.05 {
			ialu = 0.05
		}
		tot := named + ialu
		wantLoad := (1 - wantBr) * p.LoadFrac / tot
		wantStore := (1 - wantBr) * p.StoreFrac / tot
		if math.Abs(mix[Load]-wantLoad) > 0.07 {
			t.Errorf("%s: load frac %v, want ≈%v", name, mix[Load], wantLoad)
		}
		if math.Abs(mix[Store]-wantStore) > 0.05 {
			t.Errorf("%s: store frac %v, want ≈%v", name, mix[Store], wantStore)
		}
	}
}

func TestBranchTargetsAreBlockStarts(t *testing.T) {
	p, _ := ByName("twolf")
	tr := Generate(p, 20000, 1)
	// Collect block start PCs (targets must be among instruction PCs).
	pcs := map[uint64]bool{}
	for _, in := range tr {
		pcs[in.PC] = true
	}
	for i, in := range tr {
		if in.Op != Branch {
			continue
		}
		if !pcs[in.Target] {
			t.Fatalf("inst %d: branch target %#x never executed", i, in.Target)
		}
	}
}

func TestControlFlowConsistency(t *testing.T) {
	// After a branch, the next instruction's PC must equal the branch's
	// chosen successor (taken → Target, not taken → Target too, since we
	// record the actual successor in Target either way).
	p, _ := ByName("crafty")
	tr := Generate(p, 20000, 1)
	for i := 0; i < len(tr)-1; i++ {
		if tr[i].Op != Branch {
			// Sequential flow inside a block.
			if tr[i+1].PC != tr[i].PC+4 {
				t.Fatalf("inst %d: sequential PC %#x → %#x", i, tr[i].PC, tr[i+1].PC)
			}
			continue
		}
		if tr[i+1].PC != tr[i].Target {
			t.Fatalf("inst %d: branch to %#x but next PC %#x", i, tr[i].Target, tr[i+1].PC)
		}
	}
}

func TestDependencyDistancesValid(t *testing.T) {
	for _, name := range Names() {
		p, _ := ByName(name)
		tr := Generate(p, 20000, 1)
		for i, in := range tr {
			if in.Dep1 < 0 || int(in.Dep1) > i {
				t.Fatalf("%s inst %d: dep1 %d out of range", name, i, in.Dep1)
			}
			if in.Dep2 < 0 || int(in.Dep2) > i {
				t.Fatalf("%s inst %d: dep2 %d out of range", name, i, in.Dep2)
			}
		}
	}
}

func TestAddressRegionsDisjoint(t *testing.T) {
	p, _ := ByName("mcf")
	tr := Generate(p, 30000, 1)
	for i, in := range tr {
		if !in.Op.IsMem() {
			continue
		}
		a := in.Addr
		inStack := a >= stackBase && a < stackBase+(64<<10)
		inHeap := a >= heapBase && a < pointerBase
		inPtr := a >= pointerBase && a < stackBase
		if !inStack && !inHeap && !inPtr {
			t.Fatalf("inst %d: address %#x outside known regions", i, a)
		}
	}
}

func TestMcfHasLargerDataFootprintThanCrafty(t *testing.T) {
	foot := func(name string) int {
		p, _ := ByName(name)
		tr := Generate(p, 50000, 1)
		lines := map[uint64]bool{}
		for _, in := range tr {
			if in.Op.IsMem() {
				lines[in.Addr>>6] = true
			}
		}
		return len(lines)
	}
	m, c := foot("mcf"), foot("crafty")
	if m <= 2*c {
		t.Fatalf("mcf footprint %d lines not ≫ crafty %d", m, c)
	}
}

func TestVortexHasLargerCodeFootprintThanMcf(t *testing.T) {
	code := func(name string) int {
		p, _ := ByName(name)
		tr := Generate(p, 50000, 1)
		lines := map[uint64]bool{}
		for _, in := range tr {
			lines[in.PC>>6] = true
		}
		return len(lines)
	}
	v, m := code("vortex"), code("mcf")
	if v <= 4*m {
		t.Fatalf("vortex code footprint %d lines not ≫ mcf %d", v, m)
	}
}

func TestPointerChaseDependencies(t *testing.T) {
	// mcf: a healthy share of loads must depend on a previous load.
	p, _ := ByName("mcf")
	tr := Generate(p, 30000, 1)
	loads, chained := 0, 0
	isLoad := make([]bool, len(tr))
	for i, in := range tr {
		isLoad[i] = in.Op == Load
	}
	for i, in := range tr {
		if in.Op != Load {
			continue
		}
		loads++
		if in.Dep1 > 0 && isLoad[i-int(in.Dep1)] {
			chained++
		}
	}
	if loads == 0 || float64(chained)/float64(loads) < 0.25 {
		t.Fatalf("mcf load→load chains: %d/%d too few", chained, loads)
	}
}

func TestCachedMemoizes(t *testing.T) {
	a, err := Cached("equake", 1000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cached("equake", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Fatal("Cached did not memoize")
	}
	if _, err := Cached("nosuch", 100); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
}

func TestQuickGenerateWellFormed(t *testing.T) {
	names := Names()
	f := func(seed int64, pick uint8) bool {
		p, _ := ByName(names[int(pick)%len(names)])
		n := 2000
		tr := Generate(p, n, uint64(seed))
		if len(tr) != n {
			return false
		}
		for i, in := range tr {
			if in.Op >= numOps {
				return false
			}
			if in.Op.IsMem() && in.Addr == 0 {
				return false
			}
			if in.Op == Branch && in.Target == 0 {
				return false
			}
			if int(in.Dep1) > i || int(in.Dep2) > i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestExtraProfilesValidAndRunnable(t *testing.T) {
	extras := ExtraNames()
	if len(extras) != 4 {
		t.Fatalf("extra profiles: %v", extras)
	}
	for _, name := range extras {
		p, ok := ByName(name)
		if !ok {
			t.Fatalf("missing extra profile %s", name)
		}
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		tr := Generate(p, 5000, 1)
		if len(tr) != 5000 {
			t.Fatalf("%s: generated %d", name, len(tr))
		}
	}
	// gcc has the biggest code footprint of the whole suite.
	code := func(name string) int {
		p, _ := ByName(name)
		tr := Generate(p, 40000, 1)
		lines := map[uint64]bool{}
		for _, in := range tr {
			lines[in.PC>>6] = true
		}
		return len(lines)
	}
	if code("gcc") <= code("vortex") {
		t.Fatalf("gcc code footprint %d not above vortex %d", code("gcc"), code("vortex"))
	}
}
