package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	p, _ := ByName("parser")
	orig := Generate(p, 8000, 3)
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	wantBytes := 16 + len(orig)*recordBytes
	if buf.Len() != wantBytes {
		t.Fatalf("encoded %d bytes, want %d", buf.Len(), wantBytes)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("read %d instructions, want %d", len(got), len(orig))
	}
	for i := range orig {
		if got[i] != orig[i] {
			t.Fatalf("instruction %d differs: %+v vs %+v", i, got[i], orig[i])
		}
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"short":     "PP",
		"bad magic": "XXXX" + strings.Repeat("\x00", 12),
	}
	for name, data := range cases {
		if _, err := ReadTrace(strings.NewReader(data)); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
	// Bad version.
	var buf bytes.Buffer
	buf.WriteString(traceMagic)
	buf.Write([]byte{99, 0, 0, 0})
	buf.Write(make([]byte, 8))
	if _, err := ReadTrace(&buf); err == nil {
		t.Fatal("expected version error")
	}
	// Truncated body.
	buf.Reset()
	tr := Trace{{PC: 4, Op: IntALU}}
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-4]
	if _, err := ReadTrace(bytes.NewReader(trunc)); err == nil {
		t.Fatal("expected truncation error")
	}
	// Implausible count.
	head := make([]byte, 16)
	copy(head, traceMagic)
	head[4] = traceVersion
	for i := 8; i < 16; i++ {
		head[i] = 0xFF
	}
	if _, err := ReadTrace(bytes.NewReader(head)); err == nil {
		t.Fatal("expected count error")
	}
}

func TestReadTraceValidatesRecords(t *testing.T) {
	// A record with an out-of-range op must be rejected.
	tr := Trace{{PC: 4, Op: IntALU}}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[16+32] = 200 // op byte of record 0
	if _, err := ReadTrace(bytes.NewReader(raw)); err == nil {
		t.Fatal("expected op validation error")
	}
	// Forward dependency must be rejected.
	buf.Reset()
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw = buf.Bytes()
	raw[16+24] = 5 // Dep1 of record 0 points before the trace start
	if _, err := ReadTrace(bytes.NewReader(raw)); err == nil {
		t.Fatal("expected dependency validation error")
	}
}
