// Package trace provides the workload substrate: deterministic synthetic
// instruction traces standing in for the paper's SPEC CPU2000 MinneSPEC
// traces (which require the proprietary SPEC suite, IBM PowerPC
// binaries, and a tracer we do not have — see DESIGN.md, Substitutions).
//
// Each benchmark is described by a statistical Profile — instruction mix,
// dependency-distance distribution, control-flow structure and branch
// predictability, code footprint, and data footprints with stack /
// streaming / pointer-chasing access patterns. Generate expands a profile
// into a concrete dynamic instruction trace by simulating a walk over a
// synthetic control-flow graph. Generation is fully deterministic given
// (profile, length, seed).
package trace

import "fmt"

// Op is a dynamic instruction class.
type Op uint8

const (
	IntALU Op = iota
	IntMul
	IntDiv
	FPALU
	FPMul
	FPDiv
	Load
	Store
	Branch
	numOps
)

var opNames = [...]string{"ialu", "imul", "idiv", "fpalu", "fpmul", "fpdiv", "load", "store", "branch"}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsMem reports whether the op accesses data memory.
func (o Op) IsMem() bool { return o == Load || o == Store }

// Inst is one dynamic instruction.
type Inst struct {
	PC     uint64 // instruction address (4-byte instructions)
	Addr   uint64 // effective address for Load/Store
	Target uint64 // taken-path target for Branch
	Dep1   int32  // backward distance (dynamic instructions) to 1st producer; 0 = none
	Dep2   int32  // backward distance to 2nd producer; 0 = none
	Op     Op
	Taken  bool // Branch outcome
}

// Trace is a dynamic instruction sequence.
type Trace []Inst

// Mix returns the fraction of instructions of each op class.
func (t Trace) Mix() map[Op]float64 {
	counts := make(map[Op]float64)
	for _, in := range t {
		counts[in.Op]++
	}
	for k := range counts {
		counts[k] /= float64(len(t))
	}
	return counts
}

// rng is a small, stable xorshift64* generator so traces do not depend
// on math/rand implementation details across Go releases.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// float returns a uniform float64 in [0,1).
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// intn returns a uniform int in [0,n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// geometric draws a geometric variate with the given mean (≥ 1).
func (r *rng) geometric(mean float64) int {
	if mean <= 1 {
		return 1
	}
	p := 1 / mean
	n := 1
	for r.float() > p && n < 1<<12 {
		n++
	}
	return n
}
