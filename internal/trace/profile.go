package trace

import (
	"fmt"
	"sort"
)

// Profile statistically characterizes one benchmark. Fractions are of
// dynamic instructions; op-mix fractions may sum to less than 1, with
// the remainder being integer ALU operations.
type Profile struct {
	Name string

	// Instruction mix.
	LoadFrac, StoreFrac, BranchFrac float64
	IntMulFrac, IntDivFrac          float64
	FPALUFrac, FPMulFrac, FPDivFrac float64

	// Dependency structure: mean backward producer distance (geometric)
	// and the probability an instruction has a second operand.
	MeanDepDist   float64
	SecondDepProb float64
	// ChaseDepProb is the probability that a pointer-pattern load
	// depends on the previous load (serialized pointer chasing).
	ChaseDepProb float64
	// StoreReuseProb is the probability that a load re-reads the address
	// of a recent store (spill/refill pairs), which exercises
	// store-to-load forwarding.
	StoreReuseProb float64

	// Control flow: static code structure and branch behaviour.
	CodeBlocks         int     // number of static basic blocks
	BlockMin, BlockMax int     // instructions per block (branch included)
	HotFrac            float64 // fraction of blocks forming the hot region
	HotProb            float64 // probability control stays in the hot region
	PatternFrac        float64 // fraction of branches with a periodic outcome
	BranchBias         float64 // taken bias (pattern duty cycle / Bernoulli rate)
	BranchNoise        float64 // probability a periodic outcome is flipped

	// Data access patterns: mixing fractions (sum ≤ 1, remainder goes
	// to the stream class) and footprints in bytes.
	StackFrac, PointerFrac    float64
	StackBytes                uint64
	StreamBytes, PointerBytes uint64
	StreamStride              uint64
	Streams                   int // concurrent stream cursors
	// Pointer accesses have a three-tier skewed working set, standing in
	// for the reuse skew of real pointer structures: with probability
	// PtrL1Prob the access falls in the first PtrL1Bytes (an L1-scale
	// working set), else with probability PtrHotProb in the first
	// PtrHotBytes (an L2-scale working set), else anywhere in
	// PointerBytes (DRAM-scale).
	PtrL1Prob   float64
	PtrL1Bytes  uint64
	PtrHotProb  float64
	PtrHotBytes uint64
}

// paper benchmark names in the order of Table 3.
var tableOrder = []string{
	"mcf", "crafty", "parser", "perlbmk", "vortex", "twolf", "equake", "ammp",
}

// extraOrder lists additional SPEC CPU2000-like workloads beyond the
// eight the paper evaluates, for studies that want a wider suite.
var extraOrder = []string{"gzip", "gcc", "bzip2", "vpr"}

// profiles are tuned so the *qualitative* behaviours the paper reports
// emerge from simulation: mcf is memory bound (dominant splits on L2
// latency / L2 size), vortex has a large code footprint and
// latency-sensitive D-cache behaviour (splits on dl1_lat and il1_size),
// and the FP codes equake/ammp behave smoothly (lowest max model error).
var profiles = map[string]Profile{
	"mcf": {
		Name: "mcf", LoadFrac: 0.30, StoreFrac: 0.09, BranchFrac: 0.18,
		MeanDepDist: 2.2, SecondDepProb: 0.35, ChaseDepProb: 0.6, StoreReuseProb: 0.06,
		CodeBlocks: 70, BlockMin: 4, BlockMax: 10, HotFrac: 0.2, HotProb: 0.95,
		PatternFrac: 0.86, BranchBias: 0.72, BranchNoise: 0.015,
		StackFrac: 0.25, PointerFrac: 0.55, StackBytes: 4 << 10,
		StreamBytes: 4 << 20, PointerBytes: 24 << 20, StreamStride: 16, Streams: 2,
		PtrL1Prob: 0.60, PtrL1Bytes: 32 << 10, PtrHotProb: 0.25, PtrHotBytes: 600 << 10,
	},
	"crafty": {
		Name: "crafty", LoadFrac: 0.27, StoreFrac: 0.07, BranchFrac: 0.22, IntMulFrac: 0.01,
		MeanDepDist: 4.0, SecondDepProb: 0.45, ChaseDepProb: 0.2, StoreReuseProb: 0.12,
		CodeBlocks: 1500, BlockMin: 4, BlockMax: 12, HotFrac: 0.12, HotProb: 0.93,
		PatternFrac: 0.88, BranchBias: 0.6, BranchNoise: 0.02,
		StackFrac: 0.5, PointerFrac: 0.2, StackBytes: 8 << 10,
		StreamBytes: 512 << 10, PointerBytes: 1 << 20, StreamStride: 8, Streams: 4,
		PtrL1Prob: 0.88, PtrL1Bytes: 16 << 10, PtrHotProb: 0.09, PtrHotBytes: 200 << 10,
	},
	"parser": {
		Name: "parser", LoadFrac: 0.25, StoreFrac: 0.11, BranchFrac: 0.20,
		MeanDepDist: 3.2, SecondDepProb: 0.4, ChaseDepProb: 0.5, StoreReuseProb: 0.1,
		CodeBlocks: 800, BlockMin: 4, BlockMax: 10, HotFrac: 0.15, HotProb: 0.92,
		PatternFrac: 0.9, BranchBias: 0.65, BranchNoise: 0.015,
		StackFrac: 0.45, PointerFrac: 0.35, StackBytes: 6 << 10,
		StreamBytes: 1 << 20, PointerBytes: 6 << 20, StreamStride: 8, Streams: 3,
		PtrL1Prob: 0.82, PtrL1Bytes: 24 << 10, PtrHotProb: 0.13, PtrHotBytes: 500 << 10,
	},
	"perlbmk": {
		Name: "perlbmk", LoadFrac: 0.27, StoreFrac: 0.14, BranchFrac: 0.22,
		MeanDepDist: 3.0, SecondDepProb: 0.4, ChaseDepProb: 0.4, StoreReuseProb: 0.14,
		CodeBlocks: 2000, BlockMin: 4, BlockMax: 12, HotFrac: 0.1, HotProb: 0.92,
		PatternFrac: 0.84, BranchBias: 0.6, BranchNoise: 0.025,
		StackFrac: 0.5, PointerFrac: 0.3, StackBytes: 8 << 10,
		StreamBytes: 1 << 20, PointerBytes: 2 << 20, StreamStride: 8, Streams: 3,
		PtrL1Prob: 0.85, PtrL1Bytes: 32 << 10, PtrHotProb: 0.11, PtrHotBytes: 300 << 10,
	},
	"vortex": {
		Name: "vortex", LoadFrac: 0.31, StoreFrac: 0.16, BranchFrac: 0.16,
		MeanDepDist: 3.5, SecondDepProb: 0.4, ChaseDepProb: 0.3, StoreReuseProb: 0.15,
		CodeBlocks: 2800, BlockMin: 5, BlockMax: 13, HotFrac: 0.12, HotProb: 0.92,
		PatternFrac: 0.94, BranchBias: 0.7, BranchNoise: 0.008,
		StackFrac: 0.5, PointerFrac: 0.22, StackBytes: 8 << 10,
		StreamBytes: 768 << 10, PointerBytes: 3 << 20, StreamStride: 8, Streams: 4,
		PtrL1Prob: 0.9, PtrL1Bytes: 24 << 10, PtrHotProb: 0.07, PtrHotBytes: 300 << 10,
	},
	"twolf": {
		Name: "twolf", LoadFrac: 0.26, StoreFrac: 0.08, BranchFrac: 0.18, FPALUFrac: 0.03,
		MeanDepDist: 3.0, SecondDepProb: 0.4, ChaseDepProb: 0.55, StoreReuseProb: 0.08,
		CodeBlocks: 550, BlockMin: 4, BlockMax: 10, HotFrac: 0.15, HotProb: 0.93,
		PatternFrac: 0.87, BranchBias: 0.62, BranchNoise: 0.02,
		StackFrac: 0.4, PointerFrac: 0.4, StackBytes: 6 << 10,
		StreamBytes: 512 << 10, PointerBytes: 2500 << 10, StreamStride: 8, Streams: 2,
		PtrL1Prob: 0.78, PtrL1Bytes: 24 << 10, PtrHotProb: 0.16, PtrHotBytes: 400 << 10,
	},
	"equake": {
		Name: "equake", LoadFrac: 0.30, StoreFrac: 0.10, BranchFrac: 0.08,
		FPALUFrac: 0.25, FPMulFrac: 0.12,
		MeanDepDist: 6.0, SecondDepProb: 0.5, ChaseDepProb: 0.05, StoreReuseProb: 0.05,
		CodeBlocks: 260, BlockMin: 6, BlockMax: 14, HotFrac: 0.2, HotProb: 0.97,
		PatternFrac: 0.97, BranchBias: 0.88, BranchNoise: 0.008,
		StackFrac: 0.15, PointerFrac: 0.05, StackBytes: 4 << 10,
		StreamBytes: 5 << 20, PointerBytes: 1 << 20, StreamStride: 8, Streams: 8,
		PtrL1Prob: 0.8, PtrL1Bytes: 16 << 10, PtrHotProb: 0.15, PtrHotBytes: 128 << 10,
	},
	"ammp": {
		Name: "ammp", LoadFrac: 0.28, StoreFrac: 0.08, BranchFrac: 0.07,
		FPALUFrac: 0.28, FPMulFrac: 0.14, FPDivFrac: 0.01,
		MeanDepDist: 5.0, SecondDepProb: 0.5, ChaseDepProb: 0.1, StoreReuseProb: 0.05,
		CodeBlocks: 320, BlockMin: 6, BlockMax: 14, HotFrac: 0.2, HotProb: 0.96,
		PatternFrac: 0.96, BranchBias: 0.9, BranchNoise: 0.01,
		StackFrac: 0.2, PointerFrac: 0.1, StackBytes: 4 << 10,
		StreamBytes: 4 << 20, PointerBytes: 2 << 20, StreamStride: 8, Streams: 5,
		PtrL1Prob: 0.8, PtrL1Bytes: 16 << 10, PtrHotProb: 0.15, PtrHotBytes: 256 << 10,
	},
}

var extraProfiles = map[string]Profile{
	"gzip": { // compression: tight loops, small code, streaming window
		Name: "gzip", LoadFrac: 0.24, StoreFrac: 0.12, BranchFrac: 0.17,
		MeanDepDist: 3.5, SecondDepProb: 0.45, ChaseDepProb: 0.15, StoreReuseProb: 0.1,
		CodeBlocks: 220, BlockMin: 4, BlockMax: 11, HotFrac: 0.25, HotProb: 0.96,
		PatternFrac: 0.85, BranchBias: 0.65, BranchNoise: 0.02,
		StackFrac: 0.35, PointerFrac: 0.15, StackBytes: 6 << 10,
		StreamBytes: 384 << 10, PointerBytes: 1 << 20, StreamStride: 8, Streams: 3,
		PtrL1Prob: 0.8, PtrL1Bytes: 16 << 10, PtrHotProb: 0.15, PtrHotBytes: 192 << 10,
	},
	"gcc": { // compiler: huge code footprint, branchy, pointer-heavy
		Name: "gcc", LoadFrac: 0.26, StoreFrac: 0.13, BranchFrac: 0.2,
		MeanDepDist: 3.2, SecondDepProb: 0.42, ChaseDepProb: 0.45, StoreReuseProb: 0.12,
		CodeBlocks: 3600, BlockMin: 4, BlockMax: 11, HotFrac: 0.08, HotProb: 0.9,
		PatternFrac: 0.8, BranchBias: 0.6, BranchNoise: 0.03,
		StackFrac: 0.45, PointerFrac: 0.35, StackBytes: 10 << 10,
		StreamBytes: 512 << 10, PointerBytes: 4 << 20, StreamStride: 8, Streams: 2,
		PtrL1Prob: 0.8, PtrL1Bytes: 24 << 10, PtrHotProb: 0.13, PtrHotBytes: 400 << 10,
	},
	"bzip2": { // block-sort compression: large streaming buffers
		Name: "bzip2", LoadFrac: 0.28, StoreFrac: 0.11, BranchFrac: 0.14,
		MeanDepDist: 4.0, SecondDepProb: 0.45, ChaseDepProb: 0.3, StoreReuseProb: 0.08,
		CodeBlocks: 180, BlockMin: 5, BlockMax: 13, HotFrac: 0.3, HotProb: 0.97,
		PatternFrac: 0.88, BranchBias: 0.68, BranchNoise: 0.015,
		StackFrac: 0.2, PointerFrac: 0.25, StackBytes: 4 << 10,
		StreamBytes: 3 << 20, PointerBytes: 4 << 20, StreamStride: 8, Streams: 4,
		PtrL1Prob: 0.7, PtrL1Bytes: 32 << 10, PtrHotProb: 0.2, PtrHotBytes: 700 << 10,
	},
	"vpr": { // place & route: mid-size pointer graphs, FP sprinkled in
		Name: "vpr", LoadFrac: 0.26, StoreFrac: 0.09, BranchFrac: 0.16, FPALUFrac: 0.08, FPMulFrac: 0.03,
		MeanDepDist: 3.4, SecondDepProb: 0.42, ChaseDepProb: 0.5, StoreReuseProb: 0.08,
		CodeBlocks: 700, BlockMin: 4, BlockMax: 11, HotFrac: 0.14, HotProb: 0.93,
		PatternFrac: 0.8, BranchBias: 0.63, BranchNoise: 0.025,
		StackFrac: 0.4, PointerFrac: 0.38, StackBytes: 8 << 10,
		StreamBytes: 512 << 10, PointerBytes: 3 << 20, StreamStride: 8, Streams: 2,
		PtrL1Prob: 0.78, PtrL1Bytes: 24 << 10, PtrHotProb: 0.16, PtrHotBytes: 500 << 10,
	},
}

func init() {
	for name, p := range extraProfiles {
		profiles[name] = p
	}
}

// ExtraNames lists the additional (non-paper) workload profiles.
func ExtraNames() []string {
	out := make([]string, len(extraOrder))
	copy(out, extraOrder)
	return out
}

// ByName returns the named benchmark profile.
func ByName(name string) (Profile, bool) {
	p, ok := profiles[name]
	return p, ok
}

// Names lists the eight benchmark profiles in the paper's Table 3 order.
func Names() []string {
	out := make([]string, len(tableOrder))
	copy(out, tableOrder)
	return out
}

// AllProfiles returns every profile sorted by name.
func AllProfiles() []Profile {
	out := make([]Profile, 0, len(profiles))
	for _, p := range profiles {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Validate checks a profile for internal consistency.
func (p Profile) Validate() error {
	mix := p.LoadFrac + p.StoreFrac + p.BranchFrac + p.IntMulFrac + p.IntDivFrac +
		p.FPALUFrac + p.FPMulFrac + p.FPDivFrac
	if mix > 1 {
		return fmt.Errorf("trace: %s op mix sums to %v > 1", p.Name, mix)
	}
	if p.StackFrac+p.PointerFrac > 1 {
		return fmt.Errorf("trace: %s address mix exceeds 1", p.Name)
	}
	if p.CodeBlocks < 2 || p.BlockMin < 2 || p.BlockMax < p.BlockMin {
		return fmt.Errorf("trace: %s has invalid code structure", p.Name)
	}
	if p.HotFrac <= 0 || p.HotFrac > 1 || p.HotProb < 0 || p.HotProb > 1 {
		return fmt.Errorf("trace: %s has invalid hot-region parameters", p.Name)
	}
	return nil
}
