// Package linreg implements the linear-regression baseline of §4.2: CPI
// modeled as a linear combination of the main effects and all
// two-parameter interactions, fitted by least squares on the same
// space-filling samples used for the RBF models, followed by AIC-based
// backward elimination of insignificant terms.
package linreg

import (
	"errors"
	"fmt"
	"math"

	"predperf/internal/mat"
)

// Term identifies one model term: the intercept (I == J == -1), a main
// effect (J == -1), or a two-parameter interaction xᵢ·xⱼ.
type Term struct {
	I, J int
}

// Intercept is the constant term.
var Intercept = Term{I: -1, J: -1}

func (t Term) String() string {
	switch {
	case t.I < 0:
		return "1"
	case t.J < 0:
		return fmt.Sprintf("x%d", t.I)
	default:
		return fmt.Sprintf("x%d*x%d", t.I, t.J)
	}
}

// eval computes the term's value at a point.
func (t Term) eval(x []float64) float64 {
	switch {
	case t.I < 0:
		return 1
	case t.J < 0:
		return x[t.I]
	default:
		return x[t.I] * x[t.J]
	}
}

// AllTerms enumerates the intercept, d main effects, and all d(d−1)/2
// two-parameter interactions for a d-dimensional input.
func AllTerms(d int) []Term {
	terms := []Term{Intercept}
	for i := 0; i < d; i++ {
		terms = append(terms, Term{I: i, J: -1})
	}
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			terms = append(terms, Term{I: i, J: j})
		}
	}
	return terms
}

// Model is a fitted linear model.
type Model struct {
	Terms []Term
	Coef  []float64
	AIC   float64
	SSE   float64
	P     int // sample size used for the fit
}

// Predict evaluates the model at x.
func (m *Model) Predict(x []float64) float64 {
	var s float64
	for k, t := range m.Terms {
		s += m.Coef[k] * t.eval(x)
	}
	return s
}

// aic is the selection criterion used for variable elimination,
// p·log(σ̂²) + 2k, the same functional form as the paper's Eq. 9 without
// the small-sample correction (the linear model of [10] uses plain AIC).
func aic(p, k int, sse float64) float64 {
	s2 := sse / float64(p)
	if s2 < 1e-300 {
		s2 = 1e-300
	}
	return float64(p)*math.Log(s2) + 2*float64(k)
}

// designMatrix evaluates terms at every sample point.
func designMatrix(terms []Term, x [][]float64) *mat.Matrix {
	h := mat.New(len(x), len(terms))
	for i, xi := range x {
		row := h.Row(i)
		for k, t := range terms {
			row[k] = t.eval(xi)
		}
	}
	return h
}

func fitTerms(terms []Term, x [][]float64, y []float64) (*Model, error) {
	h := designMatrix(terms, x)
	coef, err := mat.LeastSquares(h, y)
	if err != nil {
		return nil, err
	}
	pred := h.MulVec(coef)
	var sse float64
	for i := range y {
		d := pred[i] - y[i]
		sse += d * d
	}
	return &Model{Terms: terms, Coef: coef, SSE: sse, P: len(y), AIC: aic(len(y), len(terms), sse)}, nil
}

// Fit builds the full main-effects + two-way-interactions model and then
// performs backward elimination: repeatedly drop the term whose removal
// most improves (lowers) AIC, until no removal improves it. The intercept
// is never dropped.
func Fit(x [][]float64, y []float64) (*Model, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, errors.New("linreg: sample is empty or mismatched")
	}
	d := len(x[0])
	terms := AllTerms(d)
	// With p < number of terms the initial fit falls back to ridge;
	// elimination then prunes to a well-posed model.
	cur, err := fitTerms(terms, x, y)
	if err != nil {
		return nil, err
	}
	for len(cur.Terms) > 1 {
		best := cur
		improved := false
		for drop := range cur.Terms {
			if cur.Terms[drop] == Intercept {
				continue
			}
			trial := make([]Term, 0, len(cur.Terms)-1)
			trial = append(trial, cur.Terms[:drop]...)
			trial = append(trial, cur.Terms[drop+1:]...)
			m, err := fitTerms(trial, x, y)
			if err != nil {
				continue
			}
			if m.AIC < best.AIC {
				best = m
				improved = true
			}
		}
		if !improved {
			break
		}
		cur = best
	}
	return cur, nil
}
