package linreg

import (
	"math"
	"sort"
)

// Effect is the estimated influence of one parameter on the response,
// derived from a fitted linear model over unit-cube inputs: the
// magnitude of the parameter's main-effect coefficient plus half the
// magnitude of every interaction it participates in (each interaction
// is shared between its two parameters). This is the significance
// analysis of the companion study (Joseph et al., HPCA 2006) that the
// paper uses to pick its nine parameters.
type Effect struct {
	Param int     // input dimension
	Score float64 // aggregated |coefficient| mass
	Main  float64 // main-effect |coefficient|
	Inter float64 // summed interaction share
}

// Significance aggregates the model's coefficients into per-parameter
// effect estimates, sorted descending by score. d is the input
// dimensionality.
func (m *Model) Significance(d int) []Effect {
	eff := make([]Effect, d)
	for i := range eff {
		eff[i].Param = i
	}
	for k, term := range m.Terms {
		c := math.Abs(m.Coef[k])
		switch {
		case term.I < 0: // intercept
		case term.J < 0:
			eff[term.I].Main += c
			eff[term.I].Score += c
		default:
			eff[term.I].Inter += c / 2
			eff[term.J].Inter += c / 2
			eff[term.I].Score += c / 2
			eff[term.J].Score += c / 2
		}
	}
	sort.Slice(eff, func(a, b int) bool { return eff[a].Score > eff[b].Score })
	return eff
}
