package linreg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllTermsCount(t *testing.T) {
	// d=9: intercept + 9 mains + 36 interactions = 46 (§4.2).
	if got := len(AllTerms(9)); got != 46 {
		t.Fatalf("AllTerms(9) has %d terms, want 46", got)
	}
	if got := len(AllTerms(2)); got != 4 {
		t.Fatalf("AllTerms(2) has %d terms, want 4", got)
	}
}

func TestTermString(t *testing.T) {
	if Intercept.String() != "1" {
		t.Fatal("intercept string")
	}
	if (Term{I: 2, J: -1}).String() != "x2" {
		t.Fatal("main effect string")
	}
	if (Term{I: 0, J: 3}).String() != "x0*x3" {
		t.Fatal("interaction string")
	}
}

func TestFitRecoversLinearTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 60; i++ {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		xs = append(xs, x)
		ys = append(ys, 2+3*x[0]-x[2]+4*x[0]*x[1])
	}
	m, err := Fit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		want := 2 + 3*x[0] - x[2] + 4*x[0]*x[1]
		if math.Abs(m.Predict(x)-want) > 1e-6 {
			t.Fatalf("Predict = %v, want %v", m.Predict(x), want)
		}
	}
}

func TestEliminationDropsNoiseTerms(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 80; i++ {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		xs = append(xs, x)
		ys = append(ys, 1+5*x[0]+rng.NormFloat64()*0.01)
	}
	m, err := Fit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	// The true model has 2 terms; elimination should get close.
	if len(m.Terms) > 6 {
		t.Fatalf("kept %d terms for a 2-term truth", len(m.Terms))
	}
	// x0 main effect must survive.
	found := false
	for _, term := range m.Terms {
		if term.I == 0 && term.J == -1 {
			found = true
		}
	}
	if !found {
		t.Fatal("true main effect eliminated")
	}
}

func TestLinearCannotFitExponentialInteraction(t *testing.T) {
	// The paper's Figure 1 argument: strongly curved responses defeat a
	// linear+interactions model. Verify residuals stay substantial.
	var xs [][]float64
	var ys []float64
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			x := []float64{float64(i) / 7, float64(j) / 7}
			xs = append(xs, x)
			ys = append(ys, math.Exp(-5*x[0])*(1+4*x[1]))
		}
	}
	m, err := Fit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	var sse, tot float64
	mean := 0.0
	for _, v := range ys {
		mean += v
	}
	mean /= float64(len(ys))
	for i := range xs {
		d := m.Predict(xs[i]) - ys[i]
		sse += d * d
		tot += (ys[i] - mean) * (ys[i] - mean)
	}
	if sse/tot < 0.02 {
		t.Fatalf("linear model fit curved surface suspiciously well (residual fraction %v)", sse/tot)
	}
}

func TestFitEmpty(t *testing.T) {
	if _, err := Fit(nil, nil); err == nil {
		t.Fatal("expected error on empty sample")
	}
}

func TestFitConstant(t *testing.T) {
	xs := [][]float64{{0.1, 0.9}, {0.4, 0.2}, {0.8, 0.5}, {0.3, 0.3}, {0.9, 0.1}}
	ys := []float64{7, 7, 7, 7, 7}
	m, err := Fit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Predict([]float64{0.5, 0.5})-7) > 1e-6 {
		t.Fatalf("constant fit predicts %v", m.Predict([]float64{0.5, 0.5}))
	}
}

// Property: elimination never increases AIC relative to the full model.
func TestQuickEliminationImprovesAIC(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var xs [][]float64
		var ys []float64
		for i := 0; i < 40; i++ {
			x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
			xs = append(xs, x)
			ys = append(ys, rng.NormFloat64()+x[0])
		}
		full, err := fitTerms(AllTerms(3), xs, ys)
		if err != nil {
			return true
		}
		m, err := Fit(xs, ys)
		if err != nil {
			return false
		}
		return m.AIC <= full.AIC+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: predictions are exact for the training data when the truth is
// in the model family and noise-free.
func TestQuickExactInFamily(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		var xs [][]float64
		var ys []float64
		for i := 0; i < 30; i++ {
			x := []float64{rng.Float64(), rng.Float64()}
			xs = append(xs, x)
			ys = append(ys, a+b*x[0]+c*x[0]*x[1])
		}
		m, err := Fit(xs, ys)
		if err != nil {
			return false
		}
		for i := range xs {
			if math.Abs(m.Predict(xs[i])-ys[i]) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSignificanceRanksTrueDrivers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 120; i++ {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		xs = append(xs, x)
		// x0 dominates; x2 matters via an interaction; x1, x3 are noise.
		ys = append(ys, 5*x[0]+2*x[0]*x[2]+rng.NormFloat64()*0.01)
	}
	m, err := Fit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	eff := m.Significance(4)
	if eff[0].Param != 0 {
		t.Fatalf("top effect is x%d, want x0: %+v", eff[0].Param, eff)
	}
	// x2 must outrank x1 and x3.
	rank := map[int]int{}
	for i, e := range eff {
		rank[e.Param] = i
	}
	if rank[2] > rank[1] && rank[2] > rank[3] {
		t.Fatalf("interaction-driven x2 ranked below noise params: %+v", eff)
	}
}
