// Package interval implements a first-order analytical performance model
// in the style of Karkhanis & Smith (ISCA 2004) — the class of
// "theoretical models" the paper's related work contrasts against
// (ref [11]). The model computes a background (ideal) CPI from the
// machine width and the workload's dependency structure, then adds
// penalties for the three miss-event classes: branch mispredictions,
// L1 data misses served by the L2, and L2 misses served by memory, each
// derated by an overlap (memory-level-parallelism) factor.
//
// Event rates come from a fast functional pass over the trace — the
// caches and branch predictor are simulated exactly, but no cycle-level
// pipeline is modeled — so Analyze is an order of magnitude faster than
// sim.Run. The reproduction uses it the way §3 of the paper uses its
// second simulator: to cross-validate the detailed simulator's parameter
// trends against an independently constructed model.
package interval

import (
	"predperf/internal/sim"
	"predperf/internal/sim/branch"
	"predperf/internal/sim/cache"
	"predperf/internal/trace"
)

// Estimate is the analytical model's CPI decomposition.
type Estimate struct {
	CPI float64

	BaseCPI       float64 // dependency- and width-limited steady state
	BranchPenalty float64 // CPI added by mispredictions
	L1MissPenalty float64 // CPI added by L1D misses hitting the L2
	L2MissPenalty float64 // CPI added by L2 misses going to memory
	FetchPenalty  float64 // CPI added by L1I misses

	// Event rates per instruction, from the functional pass.
	MispredictRate float64
	DL1MPI         float64 // L1D misses per instruction
	L2MPI          float64 // L2 misses per instruction
	IL1MPI         float64 // L1I misses per instruction
}

// Analyze runs the functional pass and evaluates the first-order model
// for the machine described by cfg.
func Analyze(tr trace.Trace, cfg sim.Config) Estimate {
	if len(tr) == 0 {
		return Estimate{}
	}
	il1 := cache.New(cfg.IL1)
	dl1 := cache.New(cfg.DL1)
	l2 := cache.New(cfg.L2)
	bp := branch.New(cfg.Branch)

	var (
		il1Miss, dl1Miss, l2Miss uint64
		mispred, branches        uint64
		depSum                   float64
		depCount                 int
		serialLoads              uint64
		loads                    uint64
	)
	lastLine := ^uint64(0)
	isLoad := make([]bool, len(tr))
	for i := range tr {
		isLoad[i] = tr[i].Op == trace.Load
	}
	for i := range tr {
		in := &tr[i]
		// Instruction fetch, one I-cache probe per new line.
		line := in.PC &^ uint64(il1.LineBytes()-1)
		if line != lastLine {
			lastLine = line
			if hit, _, _ := il1.Access(in.PC, false); !hit {
				il1Miss++
				l2Access(l2, in.PC, &l2Miss)
			}
		}
		switch in.Op {
		case trace.Branch:
			branches++
			pred, cp := bp.PredictDirection(in.PC)
			ok := pred == in.Taken
			if ok && in.Taken {
				if tgt, hit := bp.PredictTarget(in.PC); !hit || tgt != in.Target {
					ok = false
				}
			}
			if !ok {
				mispred++
				bp.Restore(in.PC, cp, in.Taken)
			}
			bp.Update(in.PC, cp, in.Taken)
			if in.Taken {
				bp.UpdateTarget(in.PC, in.Target)
			}
			lastLine = ^uint64(0) // control transfer breaks the fetch line
		case trace.Load:
			loads++
			if in.Dep1 > 0 && isLoad[i-int(in.Dep1)] {
				serialLoads++
			}
			if hit, _, _ := dl1.Access(in.Addr, false); !hit {
				dl1Miss++
				l2Access(l2, in.Addr, &l2Miss)
			}
		case trace.Store:
			if hit, _, _ := dl1.Access(in.Addr, true); !hit {
				// Write misses allocate but retire from a write buffer;
				// charged as bandwidth, not latency.
				l2Access(l2, in.Addr, &l2Miss)
			}
		}
		if in.Dep1 > 0 {
			depSum += float64(in.Dep1)
			depCount++
		}
		if in.Dep2 > 0 {
			depSum += float64(in.Dep2)
			depCount++
		}
	}
	n := float64(len(tr))

	e := Estimate{
		MispredictRate: float64(mispred) / n,
		DL1MPI:         float64(dl1Miss) / n,
		L2MPI:          float64(l2Miss) / n,
		IL1MPI:         float64(il1Miss) / n,
	}

	// Background CPI: issue width limits throughput; short dependency
	// distances serialize it. A mean producer distance of d in a window
	// limits ILP to roughly d (each instruction waits ~1/d of the time),
	// so base CPI ≈ max(1/W, 1/d̄) with a small constant for FU latency.
	meanDep := 8.0
	if depCount > 0 {
		meanDep = depSum / float64(depCount)
	}
	width := float64(cfg.IssueWidth)
	base := 1.0 / width
	if 1.0/meanDep > base {
		base = 1.0 / meanDep
	}
	base *= 1.35 // execution latencies > 1 cycle stretch the chains
	e.BaseCPI = base

	// Branch misprediction penalty: the front-end refill (pipe depth)
	// plus the resolution drain.
	e.BranchPenalty = e.MispredictRate * (float64(cfg.PipeDepth) + 3)

	// Memory penalties: L1D misses pay the L2 latency; L2 misses pay
	// memory. Both are derated by the memory-level parallelism the
	// window can expose: serialized (pointer-chasing) loads cannot
	// overlap, independent ones largely can.
	serialFrac := 0.3
	if loads > 0 {
		serialFrac = float64(serialLoads) / float64(loads)
	}
	mlp := 1 + (1-serialFrac)*minF(float64(cfg.MSHRs), float64(cfg.ROBSize)/16)
	memLat := float64(cfg.Mem.TCAS+cfg.Mem.TRCD+cfg.Mem.BusCycles) * 0.9
	if memLat == 0 {
		memLat = 110
	}
	e.L1MissPenalty = (e.DL1MPI - e.L2MPI) * float64(cfg.L2Lat) / minF(mlp, 2.5)
	if e.L1MissPenalty < 0 {
		e.L1MissPenalty = 0
	}
	e.L2MissPenalty = e.L2MPI * memLat / mlp
	e.FetchPenalty = e.IL1MPI * float64(cfg.L2Lat) * 0.6

	e.CPI = e.BaseCPI + e.BranchPenalty + e.L1MissPenalty + e.L2MissPenalty + e.FetchPenalty
	return e
}

func l2Access(l2 *cache.Cache, addr uint64, miss *uint64) {
	if hit, _, _ := l2.Access(addr, false); !hit {
		*miss++
	}
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
