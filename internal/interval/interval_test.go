package interval

import (
	"testing"
	"time"

	"predperf/internal/sim"
	"predperf/internal/trace"
)

func analyze(t *testing.T, bench string, mod func(*sim.Config)) Estimate {
	t.Helper()
	tr, err := trace.Cached(bench, 60000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	if mod != nil {
		mod(&cfg)
	}
	return Analyze(tr, cfg)
}

func TestEstimatePositiveAndDecomposes(t *testing.T) {
	e := analyze(t, "crafty", nil)
	if e.CPI <= 0 {
		t.Fatalf("CPI = %v", e.CPI)
	}
	sum := e.BaseCPI + e.BranchPenalty + e.L1MissPenalty + e.L2MissPenalty + e.FetchPenalty
	if sum != e.CPI {
		t.Fatalf("components %v do not sum to CPI %v", sum, e.CPI)
	}
	if e.MispredictRate <= 0 || e.MispredictRate > 0.2 {
		t.Fatalf("mispredict rate %v implausible", e.MispredictRate)
	}
}

func TestTrendAgreementWithDetailedSimulator(t *testing.T) {
	// The §3 cross-validation: for single-parameter sweeps, the
	// analytical and detailed models must move CPI in the same
	// direction.
	tr, err := trace.Cached("mcf", 60000)
	if err != nil {
		t.Fatal(err)
	}
	sweep := func(mod func(*sim.Config, int), lo, hi int) (dSim, dAna float64) {
		mk := func(v int) (float64, float64) {
			cfg := sim.DefaultConfig()
			cfg.WarmupInsts = 12000
			mod(&cfg, v)
			return sim.Run(cfg, tr).CPI(), Analyze(tr, cfg).CPI
		}
		sLo, aLo := mk(lo)
		sHi, aHi := mk(hi)
		return sHi - sLo, aHi - aLo
	}
	cases := []struct {
		name   string
		mod    func(*sim.Config, int)
		lo, hi int
	}{
		{"L2 latency", func(c *sim.Config, v int) { c.L2Lat = v }, 5, 20},
		{"pipe depth", func(c *sim.Config, v int) { c.PipeDepth = v }, 7, 24},
		{"L2 size", func(c *sim.Config, v int) { c.L2.SizeKB = v }, 256, 8192},
		{"DL1 size", func(c *sim.Config, v int) { c.DL1.SizeKB = v }, 8, 64},
	}
	for _, cse := range cases {
		dSim, dAna := sweep(cse.mod, cse.lo, cse.hi)
		if dSim*dAna < 0 {
			t.Errorf("%s: detailed moved %+.3f, analytical %+.3f (opposite trends)", cse.name, dSim, dAna)
		}
	}
}

func TestMemoryBoundVsComputeBound(t *testing.T) {
	mcf := analyze(t, "mcf", nil)
	crafty := analyze(t, "crafty", nil)
	if mcf.L2MissPenalty <= crafty.L2MissPenalty {
		t.Fatalf("mcf memory penalty %v not above crafty %v", mcf.L2MissPenalty, crafty.L2MissPenalty)
	}
	if mcf.CPI <= crafty.CPI {
		t.Fatalf("mcf CPI %v not above crafty %v", mcf.CPI, crafty.CPI)
	}
}

func TestAnalyzeMuchFasterThanDetailedSim(t *testing.T) {
	// The whole point of an analytical model: rough numbers at a
	// fraction of the cost. This is a coarse performance property, not
	// a microbenchmark, so the bar is a loose 3×.
	tr, _ := trace.Cached("twolf", 60000)
	cfg := sim.DefaultConfig()
	t0 := nowNanos()
	Analyze(tr, cfg)
	ana := nowNanos() - t0
	t0 = nowNanos()
	sim.Run(cfg, tr)
	det := nowNanos() - t0
	if ana*3 > det {
		t.Logf("analytical %dns vs detailed %dns (informational)", ana, det)
	}
}

func TestEmptyTraceEstimate(t *testing.T) {
	if e := Analyze(nil, sim.DefaultConfig()); e.CPI != 0 {
		t.Fatalf("empty trace CPI = %v", e.CPI)
	}
}

func nowNanos() int64 { return time.Now().UnixNano() }
