package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"regexp"
	"sync"
	"testing"
	"time"
)

func TestNewTraceID(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if a == b {
		t.Fatalf("two generated IDs collided: %q", a)
	}
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(a) {
		t.Fatalf("ID %q is not 16 hex chars", a)
	}
	if NewTrace("").ID() == "" {
		t.Fatal("NewTrace(\"\") did not generate an ID")
	}
	if got := NewTrace("fixed").ID(); got != "fixed" {
		t.Fatalf("NewTrace kept %q, want \"fixed\"", got)
	}
}

func TestTraceContextPropagation(t *testing.T) {
	tr := NewTrace("prop")
	ctx := WithTrace(context.Background(), tr)
	if TraceFrom(ctx) != tr {
		t.Fatal("TraceFrom lost the trace")
	}
	if TraceFrom(context.Background()) != nil {
		t.Fatal("TraceFrom invented a trace")
	}

	pctx, endParent := StartSpanCtx(ctx, "parent")
	_, endChild := StartSpanCtx(pctx, "child", "k", "v")
	endChild()
	// Sibling started from the original ctx is a root, not a child.
	_, endRoot := StartSpanCtx(ctx, "root2")
	endRoot()
	endParent()

	tr.mu.Lock()
	defer tr.mu.Unlock()
	if len(tr.spans) != 3 {
		t.Fatalf("recorded %d spans, want 3", len(tr.spans))
	}
	byName := map[string]traceSpan{}
	for _, s := range tr.spans {
		byName[s.name] = s
	}
	if byName["child"].parent != byName["parent"].id {
		t.Fatalf("child.parent = %d, want %d", byName["child"].parent, byName["parent"].id)
	}
	if byName["parent"].parent != 0 || byName["root2"].parent != 0 {
		t.Fatalf("roots should have parent 0: %+v", byName)
	}
	if len(byName["child"].args) != 2 || byName["child"].args[0] != "k" {
		t.Fatalf("span args lost: %v", byName["child"].args)
	}
}

// TestStartSpanCtxFeedsGlobalAggregates: the same call that records a
// trace span also feeds the flat per-stage stats when span timing is
// enabled — one instrumentation point, both sinks.
func TestStartSpanCtxFeedsGlobalAggregates(t *testing.T) {
	Enable()
	defer Disable()
	Reset()
	ctx := WithTrace(context.Background(), NewTrace("both"))
	_, end := StartSpanCtx(ctx, "test.both_sinks")
	end()
	if st := Snapshot().Stages["test.both_sinks"]; st.Count != 1 {
		t.Fatalf("global aggregate count = %d, want 1", st.Count)
	}
}

// TestStartSpanCtxNoSinksIsNoop: without a trace and with timing
// disabled, no span is recorded anywhere.
func TestStartSpanCtxNoSinksIsNoop(t *testing.T) {
	Disable()
	Reset()
	ctx, end := StartSpanCtx(context.Background(), "test.ghost_ctx")
	end()
	if ctx != context.Background() {
		t.Fatal("no-op span should return the input context")
	}
	if _, ok := Snapshot().Stages["test.ghost_ctx"]; ok {
		t.Fatal("disabled ctx span recorded a stage")
	}
}

func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace("storm")
	ctx := WithTrace(context.Background(), tr)
	const workers, per = 8, 200
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				_, end := StartSpanCtx(ctx, "work")
				end()
			}
		}()
	}
	wg.Wait()
	if tr.Len() != workers*per {
		t.Fatalf("trace recorded %d spans, want %d", tr.Len(), workers*per)
	}
}

// TestWriteChromeTrace validates the export end to end: the output is
// valid JSON in the trace-event format, every span becomes one complete
// ("X") event with µs timestamps, children are contained within their
// parents, and overlapping siblings land on distinct tracks while a
// lone child shares its parent's track.
func TestWriteChromeTrace(t *testing.T) {
	tr := NewTrace("export")
	base := time.Now()
	// Hand-build a deterministic forest:
	//   root [0, 100ms]
	//     ├─ a [10, 50] (child of root)
	//     └─ b [20, 60] (child of root, overlaps a → new track)
	//         └─ c [25, 40] (only child of b → shares b's track)
	tr.spans = []traceSpan{
		{id: 1, parent: 0, name: "root", start: base, dur: 100 * time.Millisecond},
		{id: 2, parent: 1, name: "a", start: base.Add(10 * time.Millisecond), dur: 40 * time.Millisecond},
		{id: 3, parent: 1, name: "b", start: base.Add(20 * time.Millisecond), dur: 40 * time.Millisecond},
		{id: 4, parent: 3, name: "c", start: base.Add(25 * time.Millisecond), dur: 15 * time.Millisecond},
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int64          `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	byName := map[string]int{}
	for i, e := range out.TraceEvents {
		byName[e.Name] = i
	}
	for _, name := range []string{"root", "a", "b", "c"} {
		i, ok := byName[name]
		if !ok {
			t.Fatalf("span %q missing from export", name)
		}
		if e := out.TraceEvents[i]; e.Ph != "X" || e.PID != 1 {
			t.Fatalf("span %q exported as %+v, want ph=X pid=1", name, e)
		}
	}
	ev := func(name string) (ts, end float64, tid int64) {
		e := out.TraceEvents[byName[name]]
		return e.TS, e.TS + e.Dur, e.TID
	}
	rootTS, rootEnd, rootTID := ev("root")
	aTS, aEnd, aTID := ev("a")
	bTS, bEnd, bTID := ev("b")
	cTS, cEnd, cTID := ev("c")
	if aTS < rootTS || aEnd > rootEnd || bTS < rootTS || bEnd > rootEnd {
		t.Fatal("children not contained in parent interval")
	}
	if cTS < bTS || cEnd > bEnd {
		t.Fatal("grandchild not contained in its parent interval")
	}
	// a starts first → shares root's track; b overlaps a → new track;
	// c is b's only child → shares b's track.
	if aTID != rootTID {
		t.Fatalf("first child track %d, want parent's %d", aTID, rootTID)
	}
	if bTID == aTID {
		t.Fatal("overlapping siblings share a track")
	}
	if cTID != bTID {
		t.Fatalf("lone child track %d, want parent's %d", cTID, bTID)
	}
	if durA := aEnd - aTS; durA < 39_000 || durA > 41_000 {
		t.Fatalf("durations not in microseconds: a spans %.0fµs, want ≈40000", durA)
	}
	if out.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", out.DisplayTimeUnit)
	}
}

// TestWriteChromeTraceOrphan: a span whose parent never completed (the
// request was exported mid-flight) must degrade to a root, not vanish.
func TestWriteChromeTraceOrphan(t *testing.T) {
	tr := NewTrace("orphan")
	tr.spans = []traceSpan{
		{id: 7, parent: 99, name: "lost", start: time.Now(), dur: time.Millisecond},
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"lost"`)) {
		t.Fatal("orphan span dropped from export")
	}
}
