package obs

import (
	"context"
	"testing"
)

// BenchmarkObsOverhead measures the per-call cost of each instrumentation
// primitive in both states the pipeline runs in: disabled (the default —
// this is the overhead every simulation pays) and enabled/traced (the
// overhead when -report/-trace is on). cmd/benchobs runs these and emits
// BENCH_obs.json.
func BenchmarkObsOverhead(b *testing.B) {
	b.Run("counter/disabled", func(b *testing.B) {
		Disable()
		c := NewCounter("bench.counter")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("counter/enabled", func(b *testing.B) {
		Enable()
		defer Disable()
		c := NewCounter("bench.counter")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("histogram/observe", func(b *testing.B) {
		h := NewHistogram("bench.hist", DefLatencyBuckets)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Observe(0.001)
		}
	})
	b.Run("histogram/observe-parallel", func(b *testing.B) {
		h := NewHistogram("bench.hist_par", DefLatencyBuckets)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				h.Observe(0.001)
			}
		})
	})
	b.Run("span/disabled", func(b *testing.B) {
		Disable()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			end := StartSpan("bench.span")
			end()
		}
	})
	b.Run("span/enabled", func(b *testing.B) {
		Enable()
		defer Disable()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			end := StartSpan("bench.span")
			end()
		}
	})
	b.Run("spanctx/no-trace-disabled", func(b *testing.B) {
		Disable()
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, end := StartSpanCtx(ctx, "bench.spanctx")
			end()
		}
	})
	b.Run("spanctx/traced", func(b *testing.B) {
		Disable()
		ctx := WithTrace(context.Background(), NewTrace("bench"))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, end := StartSpanCtx(ctx, "bench.spanctx")
			end()
		}
	})
}
