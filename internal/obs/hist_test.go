package obs

import (
	"math"
	"sync"
	"testing"
)

func TestExponentialBuckets(t *testing.T) {
	got := ExponentialBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %g, want %g", i, got[i], want[i])
		}
	}
	for _, bad := range []func(){
		func() { ExponentialBuckets(0, 2, 4) },
		func() { ExponentialBuckets(1, 1, 4) },
		func() { ExponentialBuckets(1, 2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic for invalid bucket spec")
				}
			}()
			bad()
		}()
	}
}

// TestHistogramConcurrentExact proves the lock-free bucket counts are
// exact: under concurrent Observe calls (run this with -race), the sum
// of bucket counts equals the number of adds, and so does Count.
func TestHistogramConcurrentExact(t *testing.T) {
	h := NewHistogram("test.hist_concurrent", ExponentialBuckets(1, 2, 8))
	h.reset()
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				// Spread observations across all buckets, including
				// the underflow-into-first and +Inf overflow cases.
				h.Observe(float64((w*per + i) % 300))
			}
		}()
	}
	wg.Wait()
	var total int64
	for _, c := range h.bucketCounts() {
		total += c
	}
	if total != workers*per {
		t.Fatalf("sum of buckets = %d, want %d", total, workers*per)
	}
	if h.Count() != workers*per {
		t.Fatalf("Count = %d, want %d", h.Count(), workers*per)
	}
	var wantSum float64
	for i := 0; i < workers*per; i++ {
		wantSum += float64(i % 300)
	}
	if math.Abs(h.Sum()-wantSum) > 1e-6*wantSum {
		t.Fatalf("Sum = %g, want %g", h.Sum(), wantSum)
	}
}

// TestHistogramQuantileBounds checks the interpolated quantiles against
// a known distribution: the estimate must land inside the bucket that
// contains the true quantile.
func TestHistogramQuantileBounds(t *testing.T) {
	h := NewHistogram("test.hist_quantile", []float64{10, 20, 40, 80, 160})
	h.reset()
	// Uniform 0..99: p50 ≈ 50 (inside (40,80]), p90 ≈ 90 (inside
	// (80,160]), p99 ≈ 99 (same bucket).
	for i := 0; i < 100; i++ {
		h.Observe(float64(i))
	}
	cases := []struct {
		q      float64
		lo, hi float64
	}{
		{0.50, 40, 80},
		{0.90, 80, 160},
		{0.99, 80, 160},
		{0.05, 0, 10},
	}
	for _, c := range cases {
		got := h.Quantile(c.q)
		if got < c.lo || got > c.hi {
			t.Errorf("Quantile(%g) = %g, want within [%g, %g]", c.q, got, c.lo, c.hi)
		}
	}
	// Exact interpolation inside one bucket: 41 observations at or
	// below 40 (0..40), 40 in (40,80]; rank 50 of 100 →
	// 40 + (80-40)·(50-41)/40 = 49.
	if got, want := h.Quantile(0.50), 49.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("Quantile(0.5) = %g, want %g (linear interpolation)", got, want)
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	h := NewHistogram("test.hist_edge", []float64{1, 2})
	h.reset()
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram quantile should be NaN")
	}
	// All observations overflow: the estimate saturates at the highest
	// finite bound.
	h.Observe(100)
	h.Observe(200)
	if got := h.Quantile(0.5); got != 2 {
		t.Fatalf("overflow quantile = %g, want 2 (highest finite bound)", got)
	}
}

func TestHistogramVecLabels(t *testing.T) {
	v := NewHistogramVec("test.hist_vec", []float64{1, 10}, "route")
	v.reset()
	v.With("/a").Observe(0.5)
	v.With("/a").Observe(0.7)
	v.With("/b").Observe(5)
	if a := v.With("/a"); a.Count() != 2 {
		t.Fatalf("child /a count = %d, want 2", a.Count())
	}
	rep := Snapshot()
	st, ok := rep.Histograms[`test.hist_vec{route="/a"}`]
	if !ok {
		t.Fatalf("labeled histogram missing from snapshot: %v", rep.Histograms)
	}
	if st.Count != 2 {
		t.Fatalf("snapshot count = %d, want 2", st.Count)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic for wrong label arity")
			}
		}()
		v.With("/a", "extra")
	}()
}

func TestGauge(t *testing.T) {
	g := NewGauge("test.gauge")
	g.Set(0)
	g.Inc()
	g.Inc()
	g.Dec()
	g.Add(10)
	if g.Value() != 11 {
		t.Fatalf("gauge = %d, want 11", g.Value())
	}
	if NewGauge("test.gauge") != g {
		t.Fatal("duplicate gauge registration returned a distinct gauge")
	}
}

func TestGaugeFuncRebinds(t *testing.T) {
	n := 41.0
	NewGaugeFunc("test.gauge_func", func() float64 { return n })
	g := NewGaugeFunc("test.gauge_func", func() float64 { return n + 1 })
	if g.Value() != 42 {
		t.Fatalf("gauge func = %g, want 42 (latest binding wins)", g.Value())
	}
	if got := Snapshot().Gauges["test.gauge_func"]; got != 42 {
		t.Fatalf("snapshot gauge = %g, want 42", got)
	}
}

func TestCounterVec(t *testing.T) {
	v := NewCounterVec("test.counter_vec", "model")
	v.reset()
	v.With("mcf").Add(3)
	v.With("gcc").Inc()
	v.With("mcf").Inc()
	if got := v.With("mcf").Value(); got != 4 {
		t.Fatalf("child mcf = %d, want 4", got)
	}
	all := Counters()
	if all[`test.counter_vec{model="mcf"}`] != 4 || all[`test.counter_vec{model="gcc"}`] != 1 {
		t.Fatalf("labeled counters missing from Counters(): %v", all)
	}
	if NewCounterVec("test.counter_vec", "model") != v {
		t.Fatal("duplicate family registration returned a distinct family")
	}
}

// TestMetricKindCollisionPanics: one name, two kinds is a programming
// error that must fail loudly, not shadow a series.
func TestMetricKindCollisionPanics(t *testing.T) {
	NewCounter("test.kind_collision")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic registering a gauge over a counter name")
		}
	}()
	NewGauge("test.kind_collision")
}

// TestResetClearsNewMetricKinds: Reset must zero gauges and histograms
// and drop labeled children, mirroring its counter behavior.
func TestResetClearsNewMetricKinds(t *testing.T) {
	g := NewGauge("test.reset_gauge")
	h := NewHistogram("test.reset_hist", []float64{1})
	v := NewCounterVec("test.reset_vec", "k")
	g.Set(7)
	h.Observe(0.5)
	v.With("x").Inc()
	Reset()
	if g.Value() != 0 {
		t.Fatalf("gauge survived reset: %d", g.Value())
	}
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("histogram survived reset: count=%d sum=%g", h.Count(), h.Sum())
	}
	if cs := v.snapshot(); len(cs) != 0 {
		t.Fatalf("family children survived reset: %d", len(cs))
	}
}
