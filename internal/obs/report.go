package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"
)

// Host records how much hardware a run had available, mirroring the
// host block of BENCH_parallel.json so reports from different machines
// compare like for like.
type Host struct {
	CPUs       int    `json:"cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
}

// StageStats summarizes every invocation of one named span: how many
// times the stage ran, total wall-clock across invocations, and the
// slowest single invocation.
type StageStats struct {
	Count    int64   `json:"count"`
	TotalSec float64 `json:"total_sec"`
	MaxSec   float64 `json:"max_sec"`
}

// Report is the machine-readable run report the CLIs write for
// -report. Stages covers every timed span, Counters every registered
// counter (zero-valued ones included, so the schema is stable across
// workloads), and Meta carries caller-specific run configuration (the
// benchmark, scale, flag values, ...).
type Report struct {
	Format   int                   `json:"format"`
	Host     Host                  `json:"host"`
	Started  time.Time             `json:"started"`
	WallSec  float64               `json:"wall_sec"`
	Stages   map[string]StageStats `json:"stages"`
	Counters map[string]int64      `json:"counters"`
	Meta     map[string]string     `json:"meta,omitempty"`
}

// reportFormat versions the report schema.
const reportFormat = 1

// Snapshot captures the current observability state as a report. The
// caller may fill Meta before writing it out.
func Snapshot() *Report {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	rep := &Report{
		Format: reportFormat,
		Host: Host{
			CPUs:       runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			GoVersion:  runtime.Version(),
			OS:         runtime.GOOS,
			Arch:       runtime.GOARCH,
		},
		Started:  registry.start,
		WallSec:  time.Since(registry.start).Seconds(),
		Stages:   make(map[string]StageStats, len(registry.spans)),
		Counters: make(map[string]int64, len(registry.counters)),
	}
	for name, s := range registry.spans {
		rep.Stages[name] = StageStats{
			Count:    s.count.Load(),
			TotalSec: time.Duration(s.totalNs.Load()).Seconds(),
			MaxSec:   time.Duration(s.maxNs.Load()).Seconds(),
		}
	}
	for _, c := range registry.counters {
		rep.Counters[c.name] = c.v.Load()
	}
	return rep
}

// Write serializes the report as indented JSON.
func (r *Report) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("obs: writing report: %w", err)
	}
	return nil
}

// ReadReport parses a report written by Write, rejecting unknown
// schema versions.
func ReadReport(r io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("obs: reading report: %w", err)
	}
	if rep.Format != reportFormat {
		return nil, fmt.Errorf("obs: unsupported report format %d", rep.Format)
	}
	return &rep, nil
}
