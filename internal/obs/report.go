package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"
)

// Host records how much hardware a run had available, mirroring the
// host block of BENCH_parallel.json so reports from different machines
// compare like for like.
type Host struct {
	CPUs       int    `json:"cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
}

// StageStats summarizes every invocation of one named span: how many
// times the stage ran, total wall-clock across invocations, and the
// slowest single invocation.
type StageStats struct {
	Count    int64   `json:"count"`
	TotalSec float64 `json:"total_sec"`
	MaxSec   float64 `json:"max_sec"`
}

// HistStats summarizes one histogram: observation count, value sum, and
// interpolated latency quantiles (NaN-free: zero when empty).
//
// Bounds and Buckets (format >= 3) carry the raw log-spaced bucket
// layout and per-bucket counts (len(Bounds)+1 entries, the last being
// the overflow bucket). They exist so a federating reader can merge
// histograms from many processes *exactly* — bucket-wise integer sums,
// quantiles re-derived from the merged counts — instead of
// approximating from pre-computed percentiles.
type HistStats struct {
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
	P50     float64   `json:"p50"`
	P90     float64   `json:"p90"`
	P99     float64   `json:"p99"`
	Max     float64   `json:"max"` // highest bucket bound reached (upper estimate)
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []int64   `json:"buckets,omitempty"`
}

// Report is the machine-readable run report the CLIs write for
// -report. Stages covers every timed span, Counters every registered
// counter — including the children of labeled families, keyed
// `name{k="v"}` — (zero-valued ones included, so the schema is stable
// across workloads), Gauges every gauge, Histograms every histogram's
// summary, and Meta carries caller-specific run configuration (the
// benchmark, scale, flag values, ...).
type Report struct {
	Format     int                   `json:"format"`
	Host       Host                  `json:"host"`
	Started    time.Time             `json:"started"`
	WallSec    float64               `json:"wall_sec"`
	Stages     map[string]StageStats `json:"stages"`
	Counters   map[string]int64      `json:"counters"`
	Gauges     map[string]float64    `json:"gauges,omitempty"`
	Histograms map[string]HistStats  `json:"histograms,omitempty"`
	// Windows (format >= 2) summarizes every registered sliding-window
	// view: metric display name → window label ("1m", "5m", "1h") →
	// stats.
	Windows map[string]map[string]WindowStats `json:"windows,omitempty"`
	// SLOs (format >= 2) carries the evaluated state of every registered
	// SLO.
	SLOs []SLOState        `json:"slos,omitempty"`
	Meta map[string]string `json:"meta,omitempty"`
}

// reportFormat versions the report schema. Format 2 added Windows and
// SLOs; format 3 added raw histogram bucket layouts (HistStats.Bounds /
// Buckets) so reports are exactly mergeable. Older formats (which
// simply lack those fields) still decode.
const reportFormat = 3

// Snapshot captures the current observability state as a report. The
// caller may fill Meta before writing it out. Callback gauges are
// evaluated outside the registry lock.
func Snapshot() *Report {
	registry.mu.Lock()
	spans := make(map[string]*spanStats, len(registry.spans))
	for name, s := range registry.spans {
		spans[name] = s
	}
	start := registry.start
	registry.mu.Unlock()

	rep := &Report{
		Format: reportFormat,
		Host: Host{
			CPUs:       runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			GoVersion:  runtime.Version(),
			OS:         runtime.GOOS,
			Arch:       runtime.GOARCH,
		},
		Started:  start,
		WallSec:  time.Since(start).Seconds(),
		Stages:   make(map[string]StageStats, len(spans)),
		Counters: Counters(),
	}
	for name, s := range spans {
		rep.Stages[name] = StageStats{
			Count:    s.count.Load(),
			TotalSec: time.Duration(s.totalNs.Load()).Seconds(),
			MaxSec:   time.Duration(s.maxNs.Load()).Seconds(),
		}
	}
	if g := gaugeValues(); len(g) > 0 {
		rep.Gauges = g
	}
	for _, h := range histogramSnapshot() {
		if rep.Histograms == nil {
			rep.Histograms = map[string]HistStats{}
		}
		rep.Histograms[h.displayName()] = histStats(h)
	}
	rep.Windows = WindowSnapshot()
	rep.SLOs = SLOStates()
	return rep
}

// histStats summarizes one histogram, mapping the NaN of an empty
// histogram's quantiles to zero so the JSON stays plain numbers. The
// raw bucket layout rides along so the summary stays exactly mergeable.
func histStats(h *Histogram) HistStats {
	st := HistStats{Count: h.Count(), Sum: h.Sum()}
	st.Bounds = h.Bounds()
	st.Buckets = h.bucketCounts()
	if st.Count == 0 {
		return st
	}
	st.P50 = h.Quantile(0.50)
	st.P90 = h.Quantile(0.90)
	st.P99 = h.Quantile(0.99)
	st.Max = h.Quantile(1)
	return st
}

// Write serializes the report as indented JSON.
func (r *Report) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("obs: writing report: %w", err)
	}
	return nil
}

// ReadReport parses a report written by Write, rejecting unknown
// schema versions. Every format up to the current one is accepted:
// format 1 predates Windows and SLOs, which simply stay empty.
func ReadReport(r io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("obs: reading report: %w", err)
	}
	if rep.Format < 1 || rep.Format > reportFormat {
		return nil, fmt.Errorf("obs: unsupported report format %d (this build reads formats 1 through %d)", rep.Format, reportFormat)
	}
	return &rep, nil
}
