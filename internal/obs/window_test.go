package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a mutex-guarded manual time source for deterministic
// window tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	// A fixed instant aligned to a bucket boundary, so advances land
	// exactly where the test expects.
	return &fakeClock{t: time.Date(2026, 1, 2, 3, 0, 0, 0, time.UTC)}
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

func TestWindowedCounterExactCounts(t *testing.T) {
	Reset()
	clk := newFakeClock()
	c := NewCounter("test.win_counter")
	w := WindowCounter(c, clk.now)
	w.Tick() // establish the baseline at t0

	// A known pattern: 6 events in the first bucket, 4 in the second,
	// then silence.
	c.Add(6)
	if got := w.CountOver(time.Minute); got != 6 {
		t.Fatalf("CountOver(1m) = %d, want 6 (live bucket)", got)
	}
	clk.advance(DefWindowBucket)
	w.Tick()
	c.Add(4)
	if got := w.CountOver(time.Minute); got != 10 {
		t.Fatalf("CountOver(1m) = %d, want 10", got)
	}
	if got, want := w.RateOver(time.Minute), 10.0/60; got != want {
		t.Fatalf("RateOver(1m) = %v, want %v", got, want)
	}

	// Advance to 60s past t0: the 1m window still spans both buckets
	// (the reference snapshot is the one taken at t0).
	clk.advance(50 * time.Second)
	w.Tick()
	if got := w.CountOver(time.Minute); got != 10 {
		t.Fatalf("CountOver(1m) at +60s = %d, want 10", got)
	}
	// One more bucket: the 6 events from the first bucket age out.
	clk.advance(DefWindowBucket)
	w.Tick()
	if got := w.CountOver(time.Minute); got != 4 {
		t.Fatalf("CountOver(1m) at +70s = %d, want 4 (first bucket expired)", got)
	}
	// After a full window of silence everything has aged out, while the
	// longer windows still see all 10.
	clk.advance(time.Minute)
	w.Tick()
	if got := w.CountOver(time.Minute); got != 0 {
		t.Fatalf("CountOver(1m) after expiry = %d, want 0", got)
	}
	if got := w.CountOver(5 * time.Minute); got != 10 {
		t.Fatalf("CountOver(5m) = %d, want 10", got)
	}
	if got := w.CountOver(time.Hour); got != 10 {
		t.Fatalf("CountOver(1h) = %d, want 10", got)
	}
}

func TestWindowedCounterSeries(t *testing.T) {
	Reset()
	clk := newFakeClock()
	c := NewCounter("test.win_series")
	w := WindowCounter(c, clk.now)
	w.Tick()

	c.Add(3)
	clk.advance(DefWindowBucket)
	w.Tick()
	// No events in the second bucket.
	clk.advance(DefWindowBucket)
	w.Tick()
	c.Add(2) // live partial bucket
	got := w.Series(2 * DefWindowBucket)
	want := []float64{3, 0, 2}
	if len(got) != len(want) {
		t.Fatalf("Series = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Series = %v, want %v", got, want)
		}
	}
}

func TestWindowedCounterClockBackwardsRebases(t *testing.T) {
	Reset()
	clk := newFakeClock()
	c := NewCounter("test.win_back")
	w := WindowCounter(c, clk.now)
	w.Tick()
	c.Add(7)
	clk.advance(2 * DefWindowBucket)
	w.Tick()
	if got := w.CountOver(time.Minute); got != 7 {
		t.Fatalf("CountOver = %d, want 7", got)
	}
	// The clock jumps backwards (NTP step): history is untrustworthy, so
	// the ring re-bases and windows read zero until new events arrive.
	clk.advance(-time.Minute)
	if got := w.CountOver(time.Minute); got != 0 {
		t.Fatalf("CountOver after backwards clock = %d, want 0 (rebase)", got)
	}
	c.Add(2)
	if got := w.CountOver(time.Minute); got != 2 {
		t.Fatalf("CountOver after rebase+adds = %d, want 2", got)
	}
}

func TestWindowedCounterFarJumpRebases(t *testing.T) {
	Reset()
	clk := newFakeClock()
	c := NewCounter("test.win_jump")
	w := WindowCounter(c, clk.now)
	w.Tick()
	c.Add(5)
	// A jump past the whole ring (> 1h) makes every slot stale; the ring
	// re-bases rather than spinning through thousands of rotations.
	clk.advance(2 * time.Hour)
	if got := w.CountOver(time.Hour); got != 0 {
		t.Fatalf("CountOver(1h) after far jump = %d, want 0", got)
	}
}

func TestWindowedHistogramStatsAndQuantiles(t *testing.T) {
	Reset()
	clk := newFakeClock()
	h := NewHistogram("test.win_hist", ExponentialBuckets(0.001, 2, 10))
	w := WindowHistogram(h, clk.now)
	w.Tick()

	// Ten observations inside the (0.001, 0.002] bucket: interpolation
	// makes the quantiles exactly computable.
	for i := 0; i < 10; i++ {
		h.Observe(0.0015)
	}
	st := w.StatsOver(time.Minute)
	if st.Count != 10 {
		t.Fatalf("Count = %d, want 10", st.Count)
	}
	if want := 10.0 / 60; st.Rate != want {
		t.Fatalf("Rate = %v, want %v", st.Rate, want)
	}
	if math.Abs(st.Mean-0.0015) > 1e-12 {
		t.Fatalf("Mean = %v, want 0.0015", st.Mean)
	}
	// All mass in one bucket [0.001, 0.002]: pX = 0.001 + 0.001·X.
	if want := 0.0015; math.Abs(st.P50-want) > 1e-12 {
		t.Fatalf("P50 = %v, want %v", st.P50, want)
	}
	if want := 0.0019; math.Abs(st.P90-want) > 1e-12 {
		t.Fatalf("P90 = %v, want %v", st.P90, want)
	}

	// Quantiles must always land inside the observed bucket's bounds.
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
		v := w.QuantileOver(time.Minute, q)
		if v < 0.001 || v > 0.002 {
			t.Fatalf("QuantileOver(%v) = %v outside the observed bucket [0.001, 0.002]", q, v)
		}
	}

	// After the observations age past 1m the window empties: zeroed
	// stats, NaN quantile.
	clk.advance(time.Minute + DefWindowBucket)
	w.Tick()
	st = w.StatsOver(time.Minute)
	if st.Count != 0 || st.Mean != 0 || st.P50 != 0 {
		t.Fatalf("expired window stats = %+v, want zeros", st)
	}
	if !math.IsNaN(w.QuantileOver(time.Minute, 0.5)) {
		t.Fatal("QuantileOver on an empty window should be NaN")
	}
	// The hour window still sees them.
	if got := w.CountOver(time.Hour); got != 10 {
		t.Fatalf("CountOver(1h) = %d, want 10", got)
	}
}

func TestWindowedHistogramGoodOver(t *testing.T) {
	Reset()
	clk := newFakeClock()
	h := NewHistogram("test.win_good", []float64{0.1, 0.2, 0.4})
	w := WindowHistogram(h, clk.now)
	w.Tick()
	for _, v := range []float64{0.05, 0.15, 0.3, 1.0} {
		h.Observe(v)
	}
	// Threshold exactly on a bucket bound counts that bucket as good.
	if good, total := w.GoodOver(time.Minute, 0.2); good != 2 || total != 4 {
		t.Fatalf("GoodOver(0.2) = %d/%d, want 2/4", good, total)
	}
	// A threshold between bounds rounds down: the straddling bucket is bad.
	if good, total := w.GoodOver(time.Minute, 0.3); good != 2 || total != 4 {
		t.Fatalf("GoodOver(0.3) = %d/%d, want 2/4 (bucket-quantized)", good, total)
	}
	if good, _ := w.GoodOver(time.Minute, 0.4); good != 3 {
		t.Fatalf("GoodOver(0.4) = %d, want 3 (overflow observation is bad)", good)
	}
}

func TestWindowLabel(t *testing.T) {
	cases := map[time.Duration]string{
		time.Minute:      "1m",
		5 * time.Minute:  "5m",
		time.Hour:        "1h",
		30 * time.Second: "30s",
		2 * time.Hour:    "2h",
	}
	for d, want := range cases {
		if got := WindowLabel(d); got != want {
			t.Errorf("WindowLabel(%v) = %q, want %q", d, got, want)
		}
	}
}

// TestWindowConcurrentStorm races adds, rotation ticks, and reads; under
// -race this proves the window layer composes with the lock-free metric
// hot path.
func TestWindowConcurrentStorm(t *testing.T) {
	Reset()
	c := NewCounter("test.win_storm")
	h := NewHistogram("test.win_storm_h", DefLatencyBuckets)
	wc := WindowCounter(c, nil) // real clock
	wh := WindowHistogram(h, nil)
	// Baseline before any events, so nothing lands below the first
	// snapshot.
	wc.Tick()
	wh.Tick()

	const workers, per = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(0.001)
				if i%50 == 0 {
					TickWindows()
					wc.Stats(time.Minute)
					wh.StatsOver(time.Minute)
				}
			}
		}()
	}
	wg.Wait()
	// Everything happened inside one bucket of real time.
	if got := wc.CountOver(time.Hour); got != workers*per {
		t.Fatalf("CountOver(1h) = %d, want %d", got, workers*per)
	}
	if got := wh.CountOver(time.Hour); got != workers*per {
		t.Fatalf("histogram CountOver(1h) = %d, want %d", got, workers*per)
	}
}

func TestWindowSnapshotAndReset(t *testing.T) {
	Reset()
	clk := newFakeClock()
	c := NewCounter("test.win_snap")
	w := WindowCounter(c, clk.now)
	w.Tick()
	c.Add(3)
	snap := WindowSnapshot()
	m, ok := snap["test.win_snap"]
	if !ok {
		t.Fatalf("WindowSnapshot missing the view: %v", snap)
	}
	for _, label := range []string{"1m", "5m", "1h"} {
		if m[label].Count != 3 {
			t.Fatalf("window %q count = %d, want 3", label, m[label].Count)
		}
	}
	// Reset clears ring history along with the metrics beneath.
	Reset()
	if got := w.CountOver(time.Hour); got != 0 {
		t.Fatalf("CountOver after Reset = %d, want 0", got)
	}
}

func TestPromExposesWindows(t *testing.T) {
	Reset()
	clk := newFakeClock()
	c := NewCounter("test.win_prom")
	h := NewHistogram("test.win_prom_h", DefLatencyBuckets)
	WindowCounter(c, clk.now).Tick()
	WindowHistogram(h, clk.now).Tick()
	c.Add(2)
	h.Observe(0.001)

	var b strings.Builder
	WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`test_win_prom_rate{window="1m"}`,
		`test_win_prom_h_window_count{window="5m"}`,
		`test_win_prom_h_window_p99{window="1h"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
}

// TestReadReportFormat1 proves reports written before the windows/SLO
// extension still decode: the new fields just stay empty.
func TestReadReportFormat1(t *testing.T) {
	old := `{"format":1,"host":{"cpus":4},"started":"2026-01-01T00:00:00Z","wall_sec":1,"stages":{},"counters":{"x":3}}`
	rep, err := ReadReport(strings.NewReader(old))
	if err != nil {
		t.Fatalf("format-1 report rejected: %v", err)
	}
	if rep.Counters["x"] != 3 {
		t.Fatalf("counters lost in decode: %+v", rep)
	}
	if rep.Windows != nil || rep.SLOs != nil {
		t.Fatalf("format-1 report grew windows/SLOs: %+v", rep)
	}
}

// TestWindowedRebase: Rebase forgets everything inside the window —
// counts and sums over every span read zero — while new observations
// count normally, and the underlying cumulative series is untouched.
func TestWindowedRebase(t *testing.T) {
	Reset()
	clk := newFakeClock()
	h := NewHistogram("test.win_rebase", DefLatencyBuckets)
	w := WindowHistogram(h, clk.now)
	w.Tick()
	for i := 0; i < 5; i++ {
		h.Observe(40)
		clk.advance(DefWindowBucket)
		w.Tick()
	}
	if got := w.CountOver(DefSlowWindow); got != 5 {
		t.Fatalf("pre-rebase CountOver(1h) = %d, want 5", got)
	}

	w.Rebase()
	if got := w.CountOver(DefSlowWindow); got != 0 {
		t.Fatalf("post-rebase CountOver(1h) = %d, want 0", got)
	}
	if got := w.MeanOver(DefSlowWindow); got != 0 {
		t.Fatalf("post-rebase MeanOver(1h) = %v, want 0", got)
	}
	if h.Count() != 5 {
		t.Fatalf("rebase touched the cumulative histogram: count %d", h.Count())
	}

	// Fresh observations after the rebase count from zero.
	h.Observe(2)
	clk.advance(DefWindowBucket)
	w.Tick()
	if got := w.CountOver(DefSlowWindow); got != 1 {
		t.Fatalf("post-rebase fresh CountOver(1h) = %d, want 1", got)
	}
	if got := w.MeanOver(DefSlowWindow); got != 2 {
		t.Fatalf("post-rebase fresh MeanOver(1h) = %v, want 2", got)
	}

	c := NewCounter("test.win_rebase_c")
	wc := WindowCounter(c, clk.now)
	wc.Tick()
	c.Add(7)
	if got := wc.CountOver(DefSlowWindow); got != 7 {
		t.Fatalf("counter pre-rebase CountOver = %d, want 7", got)
	}
	wc.Rebase()
	if got := wc.CountOver(DefSlowWindow); got != 0 {
		t.Fatalf("counter post-rebase CountOver = %d, want 0", got)
	}
	c.Add(2)
	if got := wc.CountOver(DefSlowWindow); got != 2 {
		t.Fatalf("counter post-rebase fresh CountOver = %d, want 2", got)
	}
}
