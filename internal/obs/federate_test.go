package obs

import (
	"reflect"
	"testing"
	"time"
)

// fedReport wraps one histogram (and a matching request counter) as the
// per-role report a federating scraper would receive.
func fedReport(t *testing.T, h *Histogram, extraCounters map[string]int64) *Report {
	t.Helper()
	rep := &Report{
		Format:     reportFormat,
		Host:       Host{CPUs: 1, GOMAXPROCS: 1, GoVersion: "go-test", OS: "linux", Arch: "amd64"},
		Counters:   map[string]int64{"fed.requests_total": h.Count()},
		Histograms: map[string]HistStats{"fed.request_seconds": histStats(h)},
	}
	for k, v := range extraCounters {
		rep.Counters[k] = v
	}
	return rep
}

// TestMergeExactVsUnion is the exactness contract: a fleet of roles
// observing disjoint event sets merges to byte-identical counter
// totals and quantiles as one process observing the union. The
// observed values are dyadic (exactly representable) so even the float
// sums compare with ==.
func TestMergeExactVsUnion(t *testing.T) {
	roles := []*Histogram{
		NewHistogram("fedtest.role0", DefLatencyBuckets),
		NewHistogram("fedtest.role1", DefLatencyBuckets),
		NewHistogram("fedtest.role2", DefLatencyBuckets),
	}
	union := NewHistogram("fedtest.union", DefLatencyBuckets)
	// Disjoint per-role observation sets spanning several buckets,
	// including the overflow bucket. Every value is a power of two so
	// the float sums are exact in any addition order.
	p2 := func(k int) float64 {
		if k >= 0 {
			return float64(int64(1) << uint(k))
		}
		return 1 / float64(int64(1)<<uint(-k))
	}
	vals := [][]float64{
		{p2(-13), p2(-12), p2(-11), p2(-11), p2(-8)},
		{p2(-10), p2(-9), p2(-9), p2(-7), p2(-2)},
		{p2(-13), p2(-6), p2(-4), p2(-1), p2(10)},
	}
	for i, h := range roles {
		for _, v := range vals[i] {
			h.Observe(v)
			union.Observe(v)
		}
	}
	reps := make([]*Report, len(roles))
	for i, h := range roles {
		reps[i] = fedReport(t, h, nil)
	}
	merged := MergeReports(reps...)

	want := histStats(union)
	got, ok := merged.Histograms["fed.request_seconds"]
	if !ok {
		t.Fatal("merged report lost the histogram")
	}
	if got.Count != want.Count || got.Sum != want.Sum {
		t.Fatalf("count/sum: got %d/%v want %d/%v", got.Count, got.Sum, want.Count, want.Sum)
	}
	if got.P50 != want.P50 || got.P90 != want.P90 || got.P99 != want.P99 || got.Max != want.Max {
		t.Fatalf("quantiles not bit-identical to union: got %+v want %+v", got, want)
	}
	if !reflect.DeepEqual(got.Buckets, want.Buckets) || !reflect.DeepEqual(got.Bounds, want.Bounds) {
		t.Fatal("merged bucket layout differs from union")
	}
	if merged.Counters["fed.requests_total"] != union.Count() {
		t.Fatalf("counter total: got %d want %d", merged.Counters["fed.requests_total"], union.Count())
	}
}

// TestMergeAssociativeOrderIndependent: bucket-wise merge gives the
// same aggregate regardless of grouping or role order.
func TestMergeAssociativeOrderIndependent(t *testing.T) {
	hs := []*Histogram{
		NewHistogram("fedtest.assoc0", DefLatencyBuckets),
		NewHistogram("fedtest.assoc1", DefLatencyBuckets),
		NewHistogram("fedtest.assoc2", DefLatencyBuckets),
	}
	for i, h := range hs {
		for j := 0; j <= i*3; j++ {
			h.Observe(0.00025 * float64(int64(1)<<uint(j%8)))
		}
	}
	started := time.Date(2026, 8, 7, 0, 0, 0, 0, time.UTC)
	reps := make([]*Report, len(hs))
	for i, h := range hs {
		reps[i] = fedReport(t, h, map[string]int64{"fed.errors_total": int64(i)})
		reps[i].Started = started.Add(time.Duration(i) * time.Minute)
		reps[i].WallSec = float64(10 * (i + 1))
		reps[i].Stages = map[string]StageStats{
			"stage.x": {Count: int64(i + 1), TotalSec: float64(i) * 0.5, MaxSec: float64(i)},
		}
		reps[i].Gauges = map[string]float64{"fed.inflight": float64(i * 2)}
	}
	flat := MergeReports(reps[0], reps[1], reps[2])
	nestedLeft := MergeReports(MergeReports(reps[0], reps[1]), reps[2])
	nestedRight := MergeReports(reps[0], MergeReports(reps[1], reps[2]))
	reversed := MergeReports(reps[2], reps[1], reps[0])
	for name, m := range map[string]*Report{
		"nested-left": nestedLeft, "nested-right": nestedRight, "reversed": reversed,
	} {
		if !reflect.DeepEqual(flat, m) {
			t.Errorf("%s merge differs from flat merge:\nflat:  %+v\nother: %+v", name, flat, m)
		}
	}
	if flat.Counters["fed.errors_total"] != 3 {
		t.Fatalf("summed counter: got %d want 3", flat.Counters["fed.errors_total"])
	}
	if flat.Host.CPUs != 3 {
		t.Fatalf("fleet CPUs: got %d want 3", flat.Host.CPUs)
	}
	if st := flat.Stages["stage.x"]; st.Count != 6 || st.MaxSec != 2 {
		t.Fatalf("merged stage: %+v", st)
	}
}

// TestMergeMixedFormatDegrades: a pre-format-3 report (no raw buckets)
// still sums counts exactly but the merged quantiles degrade to upper
// estimates and the result carries no layout.
func TestMergeMixedFormatDegrades(t *testing.T) {
	a := HistStats{Count: 10, Sum: 1, P50: 0.001, P99: 0.01, Max: 0.01}
	h := NewHistogram("fedtest.mixed", DefLatencyBuckets)
	h.Observe(0.1)
	b := histStats(h)
	m := mergeHistStats(a, b)
	if m.Count != 11 || m.Bounds != nil || m.Buckets != nil {
		t.Fatalf("mixed merge: %+v", m)
	}
	if m.P99 < b.P99 || m.P50 < a.P50 {
		t.Fatalf("mixed merge quantiles below inputs: %+v", m)
	}
}

// TestFleetWindowsSLOBurn drives a fake clock through scrape ticks and
// checks the fleet burn rate against hand-computed bad fractions.
func TestFleetWindowsSLOBurn(t *testing.T) {
	now := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	fw := NewFleetWindows(clock)

	// Baseline scrapes, one per minute: 1000 requests seen so far, none
	// bad. Regular ticks keep the ring's boundary stamps fresh, the way
	// a live scrape loop does.
	for i := 0; i < 5; i++ {
		fw.Ingest(&Report{Counters: map[string]int64{"fleet.total": 1000, "fleet.errors": 0}})
		now = now.Add(time.Minute)
	}
	// Five minutes after the last quiet scrape: 200 new requests, 40 of
	// them errors.
	fw.Ingest(&Report{Counters: map[string]int64{"fleet.total": 1200, "fleet.errors": 40}})

	slo := &SLO{
		Name:      "fleet-availability",
		Objective: 0.9, // error budget 0.1
		SLI:       fw.CounterRatioSLI("fleet.errors", "fleet.total"),
	}
	st := slo.State()
	// Over both windows the deltas visible to the ring are the same 200
	// requests / 40 errors: bad fraction 0.2, burn 0.2/0.1 = 2.
	if st.Slow.Total != 200 || st.Slow.Good != 160 {
		t.Fatalf("slow window: %+v", st.Slow)
	}
	wantBurn := 0.2 / (1 - slo.Objective) // ≈ 2, hand-computed the same way
	if st.Slow.BadFraction != 0.2 || st.Slow.BurnRate != wantBurn {
		t.Fatalf("hand-computed burn mismatch: %+v (want burn %v)", st.Slow, wantBurn)
	}
	// The 5m fast window starts after the last full bucket the baseline
	// stamped, so it sees the same delta.
	if st.Fast.BurnRate != wantBurn {
		t.Fatalf("fast burn: %+v", st.Fast)
	}
	if st.Firing {
		t.Fatal("burn 2.0 must not page at the default 14.4 threshold")
	}

	// Push the burn over the paging threshold: 100 more requests, all bad.
	now = now.Add(time.Minute)
	fw.Ingest(&Report{Counters: map[string]int64{"fleet.total": 1300, "fleet.errors": 140}})
	st = slo.State()
	// 300 new / 140 bad since baseline: bad fraction 140/300, burn ≈ 4.67
	// over 1h; over 5m only the latest delta is visible.
	if got := st.Slow.BadFraction; got != float64(140)/300 {
		t.Fatalf("slow bad fraction: got %v", got)
	}

	// Latency SLI over a merged histogram: 3 of 4 observations under
	// the 1ms bound.
	bounds := []float64{0.001, 0.01}
	now = now.Add(time.Minute)
	fw.Ingest(&Report{Histograms: map[string]HistStats{
		"fleet.lat": {Count: 0, Sum: 0, Bounds: bounds, Buckets: []int64{0, 0, 0}},
	}})
	now = now.Add(time.Minute)
	fw.Ingest(&Report{Histograms: map[string]HistStats{
		"fleet.lat": {Count: 4, Sum: 0.5, Bounds: bounds, Buckets: []int64{3, 0, 1}},
	}})
	good, total := fw.GoodOver("fleet.lat", 5*time.Minute, 0.001)
	if good != 3 || total != 4 {
		t.Fatalf("latency SLI: good %d total %d", good, total)
	}
}

// TestFleetWindowsRestartClamp: a role restart shrinks the merged
// cumulative value; windowed reads clamp at zero instead of reporting
// negative traffic.
func TestFleetWindowsRestartClamp(t *testing.T) {
	now := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	fw := NewFleetWindows(func() time.Time { return now })
	fw.Ingest(&Report{Counters: map[string]int64{"c": 500}})
	now = now.Add(time.Minute)
	fw.Ingest(&Report{Counters: map[string]int64{"c": 100}}) // role restarted
	if n := fw.CounterOver("c", time.Minute); n != 0 {
		t.Fatalf("negative window delta leaked: %d", n)
	}
}
