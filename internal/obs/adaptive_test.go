package obs

import (
	"fmt"
	"testing"
)

func TestAdaptiveRampAndDecay(t *testing.T) {
	a := NewAdaptiveSampler(0.01, 0.64, 2)
	if got := a.Rate(); got != 0.01 {
		t.Fatalf("initial rate %v", got)
	}
	// Burn fires: ×2 per tick, capped at max.
	want := []float64{0.02, 0.04, 0.08, 0.16, 0.32, 0.64, 0.64}
	for i, w := range want {
		if got := a.Tick(true); got != w {
			t.Fatalf("burning tick %d: got %v want %v", i, got, w)
		}
	}
	// Burn clears: the rate holds for hysteresis ticks, then halves.
	if got := a.Tick(false); got != 0.64 {
		t.Fatalf("decay before hysteresis: %v", got)
	}
	decay := []float64{0.32, 0.16, 0.08, 0.04, 0.02, 0.01, 0.01}
	for i, w := range decay {
		if got := a.Tick(false); got != w {
			t.Fatalf("clear tick %d: got %v want %v", i, got, w)
		}
	}
	if a.Rate() != 0.01 {
		t.Fatalf("did not settle at base: %v", a.Rate())
	}
}

func TestAdaptiveHysteresisResetsOnReburn(t *testing.T) {
	a := NewAdaptiveSampler(0.1, 0.8, 3)
	a.Tick(true) // 0.2
	a.Tick(false)
	a.Tick(false)
	a.Tick(true) // re-burn resets the clear countdown (0.4)
	if got := a.Rate(); got != 0.4 {
		t.Fatalf("re-burn rate: %v", got)
	}
	// Two clear ticks are not enough again.
	a.Tick(false)
	if got := a.Tick(false); got != 0.4 {
		t.Fatalf("decayed before a full hysteresis period: %v", got)
	}
	if got := a.Tick(false); got != 0.2 {
		t.Fatalf("third clear tick should decay: %v", got)
	}
}

func TestAdaptiveFromZeroBase(t *testing.T) {
	a := NewAdaptiveSampler(0, 1, 1)
	if a.Sample("any-request") {
		t.Fatal("zero base must sample nothing")
	}
	if got := a.Tick(true); got != minRampRate {
		t.Fatalf("ramp from zero: got %v want %v", got, minRampRate)
	}
	for i := 0; i < 10; i++ {
		a.Tick(true)
	}
	if a.Rate() != 1 {
		t.Fatalf("did not reach max: %v", a.Rate())
	}
	for i := 0; i < 64; i++ {
		a.Tick(false)
	}
	if a.Rate() != 0 {
		t.Fatalf("did not decay back to zero base: %v", a.Rate())
	}
}

func TestAdaptiveNeverRampsWhenMaxAtBase(t *testing.T) {
	a := NewAdaptiveSampler(0.25, 0, 1) // max < base: clamp to base, static
	for i := 0; i < 5; i++ {
		a.Tick(true)
	}
	if a.Rate() != 0.25 {
		t.Fatalf("static sampler ramped: %v", a.Rate())
	}
}

// TestAdaptiveDeterministicAndMonotone: at any fixed rate the decision
// matches the static sampler for every ID (determinism across
// replicas), and raising the rate only ever adds sampled requests.
func TestAdaptiveDeterministicAndMonotone(t *testing.T) {
	ids := make([]string, 512)
	for i := range ids {
		ids[i] = fmt.Sprintf("req-%04d", i)
	}
	rates := []float64{0.05, 0.1, 0.2, 0.4, 0.8, 1}
	prev := map[string]bool{}
	for _, rate := range rates {
		a := NewAdaptiveSampler(rate, rate, 1)
		s := NewSampler(rate)
		cur := map[string]bool{}
		for _, id := range ids {
			got := a.Sample(id)
			if got != s.Sample(id) {
				t.Fatalf("rate %v id %s: adaptive %v != static %v", rate, id, got, s.Sample(id))
			}
			if got != a.Sample(id) {
				t.Fatalf("rate %v id %s: nondeterministic decision", rate, id)
			}
			cur[id] = got
		}
		for id, was := range prev {
			if was && !cur[id] {
				t.Fatalf("raising rate to %v dropped previously sampled id %s", rate, id)
			}
		}
		prev = cur
	}
	if !prev[ids[0]] {
		t.Fatal("rate 1 must sample everything")
	}
}

func TestSamplerRate(t *testing.T) {
	for _, r := range []float64{0, 0.25, 0.5, 1} {
		got := NewSampler(r).Rate()
		if diff := got - r; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("Rate(%v) = %v", r, got)
		}
	}
}
