package obs

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Trace is a request- or run-scoped collection of timed spans forming a
// parent/child forest. A Trace carries an ID (the X-Request-Id of a
// served request, or a generated run ID for a CLI build), travels
// through the stack via context.Context (WithTrace / TraceFrom), and is
// recorded by the same StartSpanCtx calls that feed the global span
// aggregates — so one instrumentation point yields both the flat
// count/total/max stats of /metricz and a chrome://tracing-loadable
// timeline.
//
// Recording a span is an append under the trace's mutex at span *end*;
// nothing a trace does feeds back into the traced computation, so
// results are bit-identical with tracing on or off.
type Trace struct {
	id     string
	start  time.Time
	nextID atomic.Int64

	mu    sync.Mutex
	spans []traceSpan
}

// traceSpan is one completed span. Parent is 0 for roots.
type traceSpan struct {
	id     int64
	parent int64
	name   string
	start  time.Time
	dur    time.Duration
	args   []string // alternating key, value
}

// NewTrace creates a trace with the given ID (a fresh random ID when
// empty).
func NewTrace(id string) *Trace {
	if id == "" {
		id = NewTraceID()
	}
	return &Trace{id: id, start: time.Now()}
}

// idFallback distinguishes generated IDs if crypto/rand ever fails.
var idFallback atomic.Int64

// NewTraceID returns a 16-hex-character random ID, suitable for
// X-Request-Id headers and trace file names.
func NewTraceID() string {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		return fmt.Sprintf("fallback-%d", idFallback.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// ID returns the trace's identifier.
func (t *Trace) ID() string { return t.id }

// Len reports how many spans have completed so far.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// SpanInfo is the exported view of one completed span, for tests and
// tooling that inspect a trace without going through the Chrome export.
type SpanInfo struct {
	ID     int64
	Parent int64 // 0 for roots
	Name   string
	Start  time.Time
	Dur    time.Duration
	Args   []string // alternating key, value
}

// Spans returns a snapshot of the completed spans in completion order.
func (t *Trace) Spans() []SpanInfo {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanInfo, len(t.spans))
	for i, s := range t.spans {
		out[i] = SpanInfo{ID: s.id, Parent: s.parent, Name: s.name, Start: s.start, Dur: s.dur, Args: s.args}
	}
	return out
}

func (t *Trace) record(s traceSpan) {
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

type ctxKey int

const (
	traceKey ctxKey = iota
	spanIDKey
	requestIDKey
)

// WithTrace returns a context carrying the trace; StartSpanCtx calls
// below it attach their spans to it.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey, t)
}

// TraceFrom returns the active trace, or nil.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey).(*Trace)
	return t
}

// StartSpanCtx begins a named span on ctx and returns the child context
// (so nested StartSpanCtx calls parent under this span — including from
// worker goroutines that captured the context) and the function that
// ends it. The span is recorded in the context's Trace when one is
// present, and in the global per-stage aggregates when Enabled; with
// neither sink active it is a no-op that reads no clock. Optional kv
// pairs (alternating key, value) annotate the span in the Chrome trace
// export.
//
// The idiom mirrors StartSpan:
//
//	ctx, end := obs.StartSpanCtx(ctx, "core.sample")
//	defer end()
func StartSpanCtx(ctx context.Context, name string, kv ...string) (context.Context, func()) {
	tr := TraceFrom(ctx)
	if tr == nil {
		if !enabled.Load() {
			return ctx, noop
		}
		s := span(name)
		t0 := time.Now()
		return ctx, func() { s.record(time.Since(t0)) }
	}
	var s *spanStats
	if enabled.Load() {
		s = span(name)
	}
	parent, _ := ctx.Value(spanIDKey).(int64)
	id := tr.nextID.Add(1)
	ctx = context.WithValue(ctx, spanIDKey, id)
	t0 := time.Now()
	return ctx, func() {
		d := time.Since(t0)
		if s != nil {
			s.record(d)
		}
		tr.record(traceSpan{id: id, parent: parent, name: name, start: t0, dur: d, args: kv})
	}
}

// chromeEvent is one entry of the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// "X" complete events with microsecond timestamps, plus "M" metadata
// events naming the process and tracks.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object form of the trace file.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports the trace as Chrome trace-event JSON,
// loadable in chrome://tracing and Perfetto. Spans are laid out on
// numbered tracks ("threads") so that every track is properly nested: a
// span's first concurrent child shares its parent's track, and siblings
// that overlap it get fresh tracks — the parallel fan-out of a build
// (LHS scoring workers, per-design-point sims, RBF grid cells) renders
// as side-by-side lanes under the stage that spawned them.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	t.mu.Lock()
	spans := make([]traceSpan, len(t.spans))
	copy(spans, t.spans)
	t.mu.Unlock()

	// Sort children under each parent by start time for greedy track
	// packing (stable layout regardless of completion order).
	children := map[int64][]*traceSpan{}
	byID := map[int64]*traceSpan{}
	for i := range spans {
		byID[spans[i].id] = &spans[i]
	}
	for i := range spans {
		s := &spans[i]
		parent := s.parent
		if _, ok := byID[parent]; !ok {
			parent = 0 // orphan (parent span still open): treat as root
		}
		children[parent] = append(children[parent], s)
	}
	for _, cs := range children {
		sort.Slice(cs, func(i, j int) bool {
			if !cs[i].start.Equal(cs[j].start) {
				return cs[i].start.Before(cs[j].start)
			}
			return cs[i].dur > cs[j].dur
		})
	}

	track := map[int64]int64{} // span id → track
	var nextTrack int64
	// place assigns s's subtree, rooted on the given track. A child may
	// reuse a track once the previous span placed there has ended;
	// otherwise it opens a new track, which is never recycled across
	// subtrees (tracks are cheap, overlap bugs are not).
	var place func(id int64, tid int64)
	place = func(id int64, tid int64) {
		if id != 0 {
			track[id] = tid
		}
		type lane struct {
			tid int64
			end time.Time
		}
		lanes := []lane{{tid: tid}}
		for _, c := range children[id] {
			placed := false
			for i := range lanes {
				if !c.start.Before(lanes[i].end) {
					place(c.id, lanes[i].tid)
					lanes[i].end = c.start.Add(c.dur)
					placed = true
					break
				}
			}
			if !placed {
				nextTrack++
				place(c.id, nextTrack)
				lanes = append(lanes, lane{tid: nextTrack, end: c.start.Add(c.dur)})
			}
		}
	}
	place(0, 0)

	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{{
		Name: "process_name", Ph: "M", PID: 1,
		Args: map[string]any{"name": "predperf trace " + t.id},
	}}}
	for i := range spans {
		s := &spans[i]
		args := map[string]any{"span": s.id}
		if s.parent != 0 {
			args["parent"] = s.parent
		}
		for k := 0; k+1 < len(s.args); k += 2 {
			args[s.args[k]] = s.args[k+1]
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: s.name,
			Ph:   "X",
			TS:   float64(s.start.Sub(t.start).Nanoseconds()) / 1e3,
			Dur:  float64(s.dur.Nanoseconds()) / 1e3,
			PID:  1,
			TID:  track[s.id],
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("obs: writing chrome trace: %w", err)
	}
	return nil
}
