package obs

import (
	"runtime"
	"sync"
	"time"
)

// memReader caches one runtime.ReadMemStats result briefly, so the four
// memory gauges below cost one stop-the-world read per scrape rather
// than four.
type memReader struct {
	mu   sync.Mutex
	at   time.Time
	stat runtime.MemStats
}

func (m *memReader) read() runtime.MemStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	if now := time.Now(); now.Sub(m.at) > time.Second {
		runtime.ReadMemStats(&m.stat)
		m.at = now
	}
	return m.stat
}

// RegisterRuntimeMetrics exports process-level health as callback
// gauges, read at scrape time:
//
//	runtime.goroutines             live goroutine count
//	runtime.heap_alloc_bytes       bytes of allocated heap objects
//	runtime.heap_sys_bytes         heap memory obtained from the OS
//	runtime.gc_pause_total_seconds cumulative stop-the-world pause time
//	runtime.gc_count               completed GC cycles
//
// Safe to call more than once (gauge re-registration is latest-wins).
// predserve and the predperf -report path call it so /metricz and run
// reports carry process health alongside pipeline metrics.
func RegisterRuntimeMetrics() {
	mem := &memReader{}
	NewGaugeFunc("runtime.goroutines", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	NewGaugeFunc("runtime.heap_alloc_bytes", func() float64 {
		return float64(mem.read().HeapAlloc)
	})
	NewGaugeFunc("runtime.heap_sys_bytes", func() float64 {
		return float64(mem.read().HeapSys)
	})
	NewGaugeFunc("runtime.gc_pause_total_seconds", func() float64 {
		return time.Duration(mem.read().PauseTotalNs).Seconds()
	})
	NewGaugeFunc("runtime.gc_count", func() float64 {
		return float64(mem.read().NumGC)
	})
}
