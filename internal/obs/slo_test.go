package obs

import (
	"math"
	"testing"
	"time"
)

func TestSLOBurnRateMath(t *testing.T) {
	// Controllable SLI: map window → (good, total).
	sli := map[string][2]int64{
		"5m": {900, 1000},
		"1h": {9900, 10000},
	}
	s := &SLO{
		Name:      "t",
		Objective: 0.999,
		SLI: func(d time.Duration) (int64, int64) {
			v := sli[WindowLabel(d)]
			return v[0], v[1]
		},
	}
	st := s.State()
	// 10% bad against a 0.1% budget burns at 100×; 1% bad burns at 10×.
	if math.Abs(st.Fast.BurnRate-100) > 1e-9 {
		t.Fatalf("fast burn = %v, want 100", st.Fast.BurnRate)
	}
	if math.Abs(st.Slow.BurnRate-10) > 1e-9 {
		t.Fatalf("slow burn = %v, want 10", st.Slow.BurnRate)
	}
	// Fast window over threshold alone must not fire (de-flapping AND).
	if st.Firing {
		t.Fatal("SLO fired with only the fast window over threshold")
	}
	if st.Threshold != DefBurnThreshold {
		t.Fatalf("threshold defaulted to %v, want %v", st.Threshold, DefBurnThreshold)
	}
	// BudgetSpent tracks the slow burn, capped at 10.
	if math.Abs(st.BudgetSpent-10) > 1e-9 {
		t.Fatalf("budget spent = %v, want 10", st.BudgetSpent)
	}

	// Both windows over threshold: fires.
	sli["1h"] = [2]int64{9000, 10000}
	if st = s.State(); !st.Firing {
		t.Fatalf("SLO did not fire with both burns at 100: %+v", st)
	}

	// No traffic burns nothing.
	sli["5m"], sli["1h"] = [2]int64{0, 0}, [2]int64{0, 0}
	st = s.State()
	if st.Fast.BurnRate != 0 || st.Slow.BurnRate != 0 || st.Firing {
		t.Fatalf("empty windows burned: %+v", st)
	}
}

func TestLatencySLIAgainstWindowedHistogram(t *testing.T) {
	Reset()
	clk := newFakeClock()
	h := NewHistogram("test.slo_lat", []float64{0.1, 0.25, 0.5})
	w := WindowHistogram(h, clk.now)
	w.Tick()
	// 3 good (≤ 0.25), 1 bad.
	for _, v := range []float64{0.05, 0.2, 0.25, 0.4} {
		h.Observe(v)
	}
	good, total := LatencySLI(w, 0.25)(time.Minute)
	if good != 3 || total != 4 {
		t.Fatalf("LatencySLI = %d/%d, want 3/4", good, total)
	}
}

func TestAvailabilitySLIClamps(t *testing.T) {
	Reset()
	clk := newFakeClock()
	errs := NewCounter("test.slo_errs")
	total := NewCounter("test.slo_total")
	we := WindowCounter(errs, clk.now)
	wt := WindowCounter(total, clk.now)
	we.Tick()
	wt.Tick()
	total.Add(10)
	errs.Add(2)
	good, n := AvailabilitySLI(we, wt)(time.Minute)
	if good != 8 || n != 10 {
		t.Fatalf("AvailabilitySLI = %d/%d, want 8/10", good, n)
	}
	// More errors than totals (window skew) clamps rather than going
	// negative.
	errs.Add(20)
	good, n = AvailabilitySLI(we, wt)(time.Minute)
	if good != 0 || n != 10 {
		t.Fatalf("skewed AvailabilitySLI = %d/%d, want 0/10", good, n)
	}
}

func TestRegisterSLOLatestWins(t *testing.T) {
	a := RegisterSLO(&SLO{Name: "test.dup", Objective: 0.9,
		SLI: func(time.Duration) (int64, int64) { return 1, 1 }})
	_ = a
	b := RegisterSLO(&SLO{Name: "test.dup", Objective: 0.99,
		SLI: func(time.Duration) (int64, int64) { return 1, 2 }})
	states := SLOStates()
	found := 0
	for _, st := range states {
		if st.Name == "test.dup" {
			found++
			if st.Objective != b.Objective {
				t.Fatalf("stale SLO survived re-registration: %+v", st)
			}
		}
	}
	if found != 1 {
		t.Fatalf("found %d states for the name, want exactly 1", found)
	}
}

func TestAlertSetTransitions(t *testing.T) {
	clk := newFakeClock()
	a := NewAlertSet(clk.now)

	// A false state for a condition that never fired leaves no trace.
	a.Set("quiet", false, "nothing")
	if got := a.Alerts(); len(got) != 0 {
		t.Fatalf("never-fired condition appeared: %+v", got)
	}

	t0 := clk.now()
	a.Set("hot", true, "burn %d", 1)
	clk.advance(30 * time.Second)
	a.Set("hot", true, "burn %d", 2) // still firing: reason updates, Since does not
	al := a.Alerts()
	if len(al) != 1 || !al[0].Firing || al[0].Count != 1 {
		t.Fatalf("alerts = %+v", al)
	}
	if al[0].Since != t0.UTC().Format(time.RFC3339) {
		t.Fatalf("Since = %q, want the first transition %q", al[0].Since, t0.UTC().Format(time.RFC3339))
	}
	if al[0].Reason != "burn 2" {
		t.Fatalf("Reason = %q, want the latest evaluation", al[0].Reason)
	}
	if a.FiringCount() != 1 {
		t.Fatalf("FiringCount = %d", a.FiringCount())
	}

	clk.advance(30 * time.Second)
	tRes := clk.now()
	a.Set("hot", false, "")
	al = a.Alerts()
	if al[0].Firing || al[0].ResolvedAt != tRes.UTC().Format(time.RFC3339) {
		t.Fatalf("resolved alert = %+v", al[0])
	}

	// Re-firing bumps the count and clears ResolvedAt.
	clk.advance(time.Minute)
	a.Set("hot", true, "again")
	al = a.Alerts()
	if !al[0].Firing || al[0].Count != 2 || al[0].ResolvedAt != "" {
		t.Fatalf("re-fired alert = %+v", al[0])
	}
}
