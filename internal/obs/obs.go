// Package obs is the zero-dependency observability layer of the
// model-building pipeline and the serving stack. It provides named
// counters (lock-free atomic adds, safe to leave in hot paths), labeled
// counter families, gauges (set-point and callback-backed), fixed-bucket
// log-spaced latency histograms with quantile estimation, per-stage span
// timers (gated by a global enable flag so the disabled path costs one
// atomic load), request/run-scoped traces exportable as Chrome
// trace-event JSON (trace.go), a structured run report (report.go), and
// Prometheus text exposition (prom.go).
//
// Instrumentation never perturbs results: counters, histograms, and
// spans only record what happened, and every parallel stage of the
// pipeline keeps writing results to fixed slots exactly as before. The
// determinism guarantees of internal/par therefore hold with
// observability enabled or disabled, and with or without an active
// trace.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// enabled gates span timing and progress emission. Counters, gauges and
// histograms stay live regardless — an uncontended atomic add is cheap
// enough to leave in hot paths — but time.Now calls and span-map updates
// only happen when a sink (report, progress, or serving /metricz) has
// been requested.
var enabled atomic.Bool

// Enable turns on span timing. The CLIs call it when -report, -progress
// or -pprof is given; predserve calls it at startup; tests call it
// directly.
func Enable() { enabled.Store(true) }

// Disable returns to the zero-overhead path (counters keep counting).
func Disable() { enabled.Store(false) }

// Enabled reports whether span timing is active.
func Enabled() bool { return enabled.Load() }

// Label is one name=value pair attached to a metric by a labeled family
// (CounterVec, HistogramVec).
type Label struct {
	Key   string
	Value string
}

// labelString renders labels as `{k="v",k2="v2"}`, or "" when unlabeled.
// The rendering doubles as the stable suffix of a metric's display name
// in reports and progress lines.
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// registry holds every named metric. Lookups go through the byName map
// (duplicate registration is O(1), not a linear scan), while order keeps
// creation order so reports and the Prometheus exposition are stable.
// Spans appear lazily the first time a name is timed.
var registry struct {
	mu     sync.Mutex
	byName map[string]any // *Counter | *CounterVec | *Gauge | *GaugeFunc | *Histogram | *HistogramVec
	order  []any          // creation order of the values in byName
	spans  map[string]*spanStats
	start  time.Time
}

func init() {
	registry.byName = map[string]any{}
	registry.spans = map[string]*spanStats{}
	registry.start = time.Now()
}

// lookup registers a metric under name, or returns the existing one.
// Registering the same name as two different metric kinds is a
// programming error and panics immediately rather than splitting or
// shadowing a series.
func lookup[T any](name string, mk func() T) T {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if m, ok := registry.byName[name]; ok {
		t, ok := m.(T)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q already registered as %T", name, m))
		}
		return t
	}
	t := mk()
	registry.byName[name] = t
	registry.order = append(registry.order, t)
	return t
}

// Counter is a named monotonic counter. Add and Inc are single atomic
// adds with no branching, so instrumented hot paths pay nothing
// measurable whether or not a sink is attached. Counters created by a
// CounterVec additionally carry labels.
type Counter struct {
	name   string
	labels []Label
	v      atomic.Int64
}

// NewCounter registers a named counter. Call it once per name from a
// package-level var; duplicate names return the existing counter so an
// accidental double registration cannot split counts.
func NewCounter(name string) *Counter {
	return lookup(name, func() *Counter { return &Counter{name: name} })
}

// Name returns the counter's registered name (without labels).
func (c *Counter) Name() string { return c.name }

// Labels returns the counter's labels (nil for plain counters).
func (c *Counter) Labels() []Label { return c.labels }

// displayName is the report/progress key: name plus rendered labels.
func (c *Counter) displayName() string { return c.name + labelString(c.labels) }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// CounterVec is a family of counters sharing a name and distinguished by
// label values — e.g. per-model prediction counts or per-route response
// totals. Children are created on first use and cached; With on a hot
// path is one mutex-guarded map lookup, and the returned *Counter can be
// retained to skip even that.
type CounterVec struct {
	name string
	keys []string

	mu       sync.Mutex
	children map[string]*Counter
	order    []*Counter
}

// NewCounterVec registers a labeled counter family with the given label
// keys. Duplicate names return the existing family.
func NewCounterVec(name string, keys ...string) *CounterVec {
	v := lookup(name, func() *CounterVec {
		return &CounterVec{name: name, keys: keys, children: map[string]*Counter{}}
	})
	if len(v.keys) != len(keys) {
		panic(fmt.Sprintf("obs: counter family %q re-registered with %d label keys, want %d", name, len(keys), len(v.keys)))
	}
	return v
}

// Name returns the family's registered name.
func (v *CounterVec) Name() string { return v.name }

// With returns the child counter for the given label values (one per
// registered key, in key order), creating it on first use.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.keys) {
		panic(fmt.Sprintf("obs: counter family %q given %d label values, want %d", v.name, len(values), len(v.keys)))
	}
	key := strings.Join(values, "\xff")
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[key]
	if !ok {
		labels := make([]Label, len(values))
		for i := range values {
			labels[i] = Label{Key: v.keys[i], Value: values[i]}
		}
		c = &Counter{name: v.name, labels: labels}
		v.children[key] = c
		v.order = append(v.order, c)
	}
	return c
}

// snapshot returns the family's children in creation order.
func (v *CounterVec) snapshot() []*Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]*Counter, len(v.order))
	copy(out, v.order)
	return out
}

// reset drops every child (label sets are dynamic; a fresh run starts
// with a fresh family).
func (v *CounterVec) reset() {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.children = map[string]*Counter{}
	v.order = nil
}

// Gauge is a named instantaneous value (e.g. in-flight requests): an
// atomic int64 that can go up and down.
type Gauge struct {
	name string
	v    atomic.Int64
}

// NewGauge registers a named gauge. Duplicate names return the existing
// gauge.
func NewGauge(name string) *Gauge {
	return lookup(name, func() *Gauge { return &Gauge{name: name} })
}

// Name returns the gauge's registered name.
func (g *Gauge) Name() string { return g.name }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (negative n subtracts).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// GaugeFunc is a gauge whose value is read from a callback at snapshot
// time — the natural shape for sizes owned by another subsystem (LRU
// cache entries, model-registry size). The callback must not call back
// into obs registration or snapshot functions.
type GaugeFunc struct {
	name string
	mu   sync.Mutex
	fn   func() float64
}

// NewGaugeFunc registers a callback-backed gauge. Re-registering an
// existing name rebinds the callback (latest wins): the metric registry
// is process-global, so a per-instance source — a newly constructed
// server's cache — takes over its predecessor's series.
func NewGaugeFunc(name string, fn func() float64) *GaugeFunc {
	g := lookup(name, func() *GaugeFunc { return &GaugeFunc{name: name} })
	g.mu.Lock()
	g.fn = fn
	g.mu.Unlock()
	return g
}

// Name returns the gauge's registered name.
func (g *GaugeFunc) Name() string { return g.name }

// Value invokes the callback.
func (g *GaugeFunc) Value() float64 {
	g.mu.Lock()
	fn := g.fn
	g.mu.Unlock()
	if fn == nil {
		return 0
	}
	return fn()
}

// spanStats accumulates the timings of every invocation of one named
// stage. All fields are atomics so concurrent spans (e.g. per-benchmark
// model builds fanned across workers) need no lock.
type spanStats struct {
	count   atomic.Int64
	totalNs atomic.Int64
	maxNs   atomic.Int64
}

func (s *spanStats) record(d time.Duration) {
	s.count.Add(1)
	s.totalNs.Add(int64(d))
	for {
		cur := s.maxNs.Load()
		if int64(d) <= cur || s.maxNs.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// span looks up (or creates) the stats slot for a name.
func span(name string) *spanStats {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	s, ok := registry.spans[name]
	if !ok {
		s = &spanStats{}
		registry.spans[name] = s
	}
	return s
}

// StartSpan begins timing a named stage and returns the function that
// ends it. The idiom is
//
//	defer obs.StartSpan("core.simulate")()
//
// When observability is disabled the returned closure is a shared no-op
// and no clock is read, so un-sinked runs pay one atomic load. To attach
// the span to an active trace as well, use StartSpanCtx (trace.go).
func StartSpan(name string) func() {
	if !enabled.Load() {
		return noop
	}
	s := span(name)
	t0 := time.Now()
	return func() { s.record(time.Since(t0)) }
}

var noop = func() {}

// Reset zeroes every counter, gauge and histogram, drops the children of
// every labeled family, discards all span records, and restarts the run
// clock. Callback gauges keep their bindings. The CLIs call it before a
// run so the report covers exactly that run; tests use it for isolation.
func Reset() {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	for _, m := range registry.order {
		switch m := m.(type) {
		case *Counter:
			m.v.Store(0)
		case *CounterVec:
			m.reset()
		case *Gauge:
			m.v.Store(0)
		case *Histogram:
			m.reset()
		case *HistogramVec:
			m.reset()
		}
	}
	registry.spans = map[string]*spanStats{}
	registry.start = time.Now()
	resetWindows()
}

// Counters returns a snapshot of every registered counter, including
// zero-valued ones and the children of labeled families (keyed
// `name{k="v"}`), keyed by display name.
func Counters() map[string]int64 {
	out := map[string]int64{}
	for _, c := range counterSnapshot() {
		out[c.displayName()] = c.v.Load()
	}
	return out
}

// counterSnapshot flattens plain counters and family children, in
// registration order (children in creation order within their family).
func counterSnapshot() []*Counter {
	registry.mu.Lock()
	order := make([]any, len(registry.order))
	copy(order, registry.order)
	registry.mu.Unlock()
	var out []*Counter
	for _, m := range order {
		switch m := m.(type) {
		case *Counter:
			out = append(out, m)
		case *CounterVec:
			out = append(out, m.snapshot()...)
		}
	}
	return out
}

// StartProgress emits a one-line summary of all non-zero counters to w
// every interval until the returned stop function is called. Lines are
// prefixed "obs:" and sorted by counter name, so the output is stable
// enough to eyeball or grep during a long experiment run.
func StartProgress(w io.Writer, interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				fmt.Fprintln(w, progressLine())
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// progressLine renders the current counter state as one stderr line.
func progressLine() string {
	registry.mu.Lock()
	elapsed := time.Since(registry.start)
	registry.mu.Unlock()
	type kv struct {
		k string
		v int64
	}
	var vals []kv
	for _, c := range counterSnapshot() {
		if v := c.v.Load(); v != 0 {
			vals = append(vals, kv{c.displayName(), v})
		}
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i].k < vals[j].k })
	line := fmt.Sprintf("obs: %6.1fs", elapsed.Seconds())
	for _, e := range vals {
		line += fmt.Sprintf(" %s=%d", e.k, e.v)
	}
	return line
}
