// Package obs is the zero-dependency observability layer of the
// model-building pipeline. It provides named counters (lock-free atomic
// adds, safe to leave in hot paths), per-stage span timers (gated by a
// global enable flag so the disabled path costs one atomic load), and a
// structured run report (host info, stage wall-clock, counter values)
// that the CLIs emit as JSON.
//
// Instrumentation never perturbs results: counters and spans only record
// what happened, and every parallel stage of the pipeline keeps writing
// results to fixed slots exactly as before. The determinism guarantees
// of internal/par therefore hold with observability enabled or disabled.
package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// enabled gates span timing and progress emission. Counters stay live
// regardless — an uncontended atomic add is cheap enough to leave in hot
// paths — but time.Now calls and span-map updates only happen when a
// sink (report or progress) has been requested.
var enabled atomic.Bool

// Enable turns on span timing. The CLIs call it when -report, -progress
// or -pprof is given; tests call it directly.
func Enable() { enabled.Store(true) }

// Disable returns to the zero-overhead path (counters keep counting).
func Disable() { enabled.Store(false) }

// Enabled reports whether span timing is active.
func Enabled() bool { return enabled.Load() }

// registry holds every named counter and span in creation order. New
// counters are registered once at package init of the instrumented
// package; spans appear lazily the first time a name is timed.
var registry struct {
	mu       sync.Mutex
	counters []*Counter
	spans    map[string]*spanStats
	start    time.Time
}

func init() {
	registry.spans = map[string]*spanStats{}
	registry.start = time.Now()
}

// Counter is a named monotonic counter. Add and Inc are single atomic
// adds with no branching, so instrumented hot paths pay nothing
// measurable whether or not a sink is attached.
type Counter struct {
	name string
	v    atomic.Int64
}

// NewCounter registers a named counter. Call it once per name from a
// package-level var; duplicate names return the existing counter so an
// accidental double registration cannot split counts.
func NewCounter(name string) *Counter {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	for _, c := range registry.counters {
		if c.name == name {
			return c
		}
	}
	c := &Counter{name: name}
	registry.counters = append(registry.counters, c)
	return c
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// spanStats accumulates the timings of every invocation of one named
// stage. All fields are atomics so concurrent spans (e.g. per-benchmark
// model builds fanned across workers) need no lock.
type spanStats struct {
	count   atomic.Int64
	totalNs atomic.Int64
	maxNs   atomic.Int64
}

func (s *spanStats) record(d time.Duration) {
	s.count.Add(1)
	s.totalNs.Add(int64(d))
	for {
		cur := s.maxNs.Load()
		if int64(d) <= cur || s.maxNs.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// span looks up (or creates) the stats slot for a name.
func span(name string) *spanStats {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	s, ok := registry.spans[name]
	if !ok {
		s = &spanStats{}
		registry.spans[name] = s
	}
	return s
}

// StartSpan begins timing a named stage and returns the function that
// ends it. The idiom is
//
//	defer obs.StartSpan("core.simulate")()
//
// When observability is disabled the returned closure is a shared no-op
// and no clock is read, so un-sinked runs pay one atomic load.
func StartSpan(name string) func() {
	if !enabled.Load() {
		return noop
	}
	s := span(name)
	t0 := time.Now()
	return func() { s.record(time.Since(t0)) }
}

var noop = func() {}

// Reset zeroes every counter, discards all span records, and restarts
// the run clock. The CLIs call it before a run so the report covers
// exactly that run; tests use it for isolation.
func Reset() {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	for _, c := range registry.counters {
		c.v.Store(0)
	}
	registry.spans = map[string]*spanStats{}
	registry.start = time.Now()
}

// Counters returns a snapshot of every registered counter, including
// zero-valued ones, keyed by name.
func Counters() map[string]int64 {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	out := make(map[string]int64, len(registry.counters))
	for _, c := range registry.counters {
		out[c.name] = c.v.Load()
	}
	return out
}

// StartProgress emits a one-line summary of all non-zero counters to w
// every interval until the returned stop function is called. Lines are
// prefixed "obs:" and sorted by counter name, so the output is stable
// enough to eyeball or grep during a long experiment run.
func StartProgress(w io.Writer, interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				fmt.Fprintln(w, progressLine())
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// progressLine renders the current counter state as one stderr line.
func progressLine() string {
	registry.mu.Lock()
	elapsed := time.Since(registry.start)
	type kv struct {
		k string
		v int64
	}
	var vals []kv
	for _, c := range registry.counters {
		if v := c.v.Load(); v != 0 {
			vals = append(vals, kv{c.name, v})
		}
	}
	registry.mu.Unlock()
	sort.Slice(vals, func(i, j int) bool { return vals[i].k < vals[j].k })
	line := fmt.Sprintf("obs: %6.1fs", elapsed.Seconds())
	for _, e := range vals {
		line += fmt.Sprintf(" %s=%d", e.k, e.v)
	}
	return line
}
