package obs

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Cross-process trace propagation, W3C trace-context style. A caller
// that is recording a trace injects TraceparentHeader on outbound
// requests (trace ID, parent span ID, sampling bit); the callee makes
// no sampling decision of its own — the bit minted at the edge rides
// every hop, so one request is either traced everywhere or nowhere.
// The callee records its spans in a local Trace and ships the completed
// forest back to the caller (WireSpan, Export), which grafts it under
// the hop's client span (Graft) after shifting remote clocks onto the
// local timeline (ClockOffset).

// TraceparentHeader carries "version-traceid-spanid-flags" across
// process hops, e.g. "00-8f3a…-000000000000002a-01". The trace ID is a
// request ID (ValidRequestID charset, which may itself contain dashes),
// so the span-ID and flags fields are parsed from the right.
const TraceparentHeader = "Traceparent"

// SpanTrailerHeader is the HTTP trailer on which a predserve shard
// returns its span forest to the router: a trailer (not a body field)
// so the relayed response body stays byte-identical with tracing on or
// off.
const SpanTrailerHeader = "X-Trace-Spans"

// MaxWireSpans bounds the span forest one hop may return; deeper traces
// are truncated to the earliest-completed spans.
const MaxWireSpans = 512

// traceparentSampled is the flags bit marking a sampled trace.
const traceparentSampled = 0x01

// SpanContext is the propagated identity of one hop: which trace the
// request belongs to, which span on the caller is its parent, and
// whether the edge decided to record it.
type SpanContext struct {
	TraceID  string
	ParentID int64
	Sampled  bool
}

// FormatTraceparent renders sc as a traceparent header value.
func FormatTraceparent(sc SpanContext) string {
	flags := "00"
	if sc.Sampled {
		flags = "01"
	}
	return fmt.Sprintf("00-%s-%016x-%s", sc.TraceID, uint64(sc.ParentID), flags)
}

// ParseTraceparent parses a traceparent header value. Because the trace
// ID may contain dashes (it is a request ID, not a fixed-width hex
// field), the span-ID and flags fields are located from the right.
func ParseTraceparent(s string) (SpanContext, bool) {
	if !strings.HasPrefix(s, "00-") {
		return SpanContext{}, false
	}
	rest := s[3:]
	i := strings.LastIndexByte(rest, '-')
	if i < 0 {
		return SpanContext{}, false
	}
	j := strings.LastIndexByte(rest[:i], '-')
	if j < 0 {
		return SpanContext{}, false
	}
	traceID, spanHex, flagsHex := rest[:j], rest[j+1:i], rest[i+1:]
	if !ValidRequestID(traceID) || len(spanHex) != 16 || len(flagsHex) != 2 {
		return SpanContext{}, false
	}
	spanID, err := strconv.ParseUint(spanHex, 16, 64)
	if err != nil {
		return SpanContext{}, false
	}
	flags, err := strconv.ParseUint(flagsHex, 16, 8)
	if err != nil {
		return SpanContext{}, false
	}
	return SpanContext{
		TraceID:  traceID,
		ParentID: int64(spanID),
		Sampled:  flags&traceparentSampled != 0,
	}, true
}

// ValidRequestID reports whether a client-supplied request ID is safe
// to echo into response headers, access logs, trace IDs, and the
// traceparent header: 1–64 characters of [A-Za-z0-9._-]. Anything else
// is replaced with a generated ID rather than reflected.
func ValidRequestID(s string) bool {
	if len(s) == 0 || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// Sampler is the edge's head-sampling decision: a deterministic hash of
// the request ID against a rate threshold, so the same request ID
// samples identically on every replica and retries of one request are
// all traced or all not.
type Sampler struct {
	threshold uint64
}

// NewSampler builds a sampler keeping the given fraction of requests
// (rate >= 1 keeps everything, rate <= 0 keeps nothing).
func NewSampler(rate float64) Sampler {
	return Sampler{threshold: sampleThreshold(rate)}
}

// Sample decides whether the request with this ID is traced.
func (s Sampler) Sample(id string) bool {
	return sampleHit(id, s.threshold)
}

// Rate reports the fraction of requests this sampler keeps.
func (s Sampler) Rate() float64 {
	switch s.threshold {
	case math.MaxUint64:
		return 1
	case 0:
		return 0
	}
	return float64(s.threshold) / float64(math.MaxUint64)
}

// WithRequestID stamps the request's identity on the context. Unlike a
// Trace it is attached to every request, sampled or not, so outbound
// hops can forward one identity (and an unsampled traceparent that
// suppresses downstream trace allocation) without allocating anything.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestIDFrom returns the ID set by WithRequestID, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// SpanIDFrom returns the span ID the context is currently inside (the
// ID StartSpanCtx assigned), or 0 outside any span. It is the parent-ID
// field of an outbound traceparent header.
func SpanIDFrom(ctx context.Context) int64 {
	id, _ := ctx.Value(spanIDKey).(int64)
	return id
}

// StartSpanArgs is StartSpanCtx with late annotations: the returned end
// function accepts extra key/value pairs determined only at completion
// (outcome, winner of a hedge race, per-hop clock offset). The kv
// arguments given up front are recorded too.
func StartSpanArgs(ctx context.Context, name string, kv ...string) (context.Context, func(extra ...string)) {
	tr := TraceFrom(ctx)
	if tr == nil {
		if !enabled.Load() {
			return ctx, func(...string) {}
		}
		s := span(name)
		t0 := time.Now()
		return ctx, func(...string) { s.record(time.Since(t0)) }
	}
	var s *spanStats
	if enabled.Load() {
		s = span(name)
	}
	parent, _ := ctx.Value(spanIDKey).(int64)
	id := tr.nextID.Add(1)
	ctx = context.WithValue(ctx, spanIDKey, id)
	t0 := time.Now()
	return ctx, func(extra ...string) {
		d := time.Since(t0)
		if s != nil {
			s.record(d)
		}
		args := kv
		if len(extra) > 0 {
			args = make([]string, 0, len(kv)+len(extra))
			args = append(append(args, kv...), extra...)
		}
		tr.record(traceSpan{id: id, parent: parent, name: name, start: t0, dur: d, args: args})
	}
}

// WireSpan is one completed span on the wire: the JSON shape a callee
// returns its forest in (EvalResponse.Spans, the X-Trace-Spans
// trailer). IDs are trace-local; Graft remaps them into the caller's
// trace. Field names are short because hundreds ride on one response.
type WireSpan struct {
	ID     int64    `json:"i"`
	Parent int64    `json:"p,omitempty"`
	Name   string   `json:"n"`
	Start  int64    `json:"s"` // unix nanoseconds, callee's clock
	Dur    int64    `json:"d"` // nanoseconds
	Args   []string `json:"a,omitempty"`
}

// Export snapshots up to max completed spans (earliest-completed first;
// max <= 0 means all) as wire spans for the return hop.
func (t *Trace) Export(max int) []WireSpan {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.spans)
	if max > 0 && n > max {
		n = max
	}
	out := make([]WireSpan, n)
	for i := 0; i < n; i++ {
		s := t.spans[i]
		out[i] = WireSpan{
			ID: s.id, Parent: s.parent, Name: s.name,
			Start: s.start.UnixNano(), Dur: int64(s.dur), Args: s.args,
		}
	}
	return out
}

// Graft merges a remote span forest into the trace: remote IDs are
// remapped onto this trace's ID space, remote roots (and spans whose
// parent was truncated away) are parented under the given hop span, and
// every start time is shifted by offset so the remote lane lines up
// with the local timeline in one Chrome export.
func (t *Trace) Graft(parent int64, spans []WireSpan, offset time.Duration) {
	if len(spans) == 0 {
		return
	}
	ids := make(map[int64]int64, len(spans))
	for _, s := range spans {
		ids[s.ID] = t.nextID.Add(1)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range spans {
		p, ok := ids[s.Parent]
		if !ok || s.Parent == 0 {
			p = parent
		}
		t.spans = append(t.spans, traceSpan{
			id:     ids[s.ID],
			parent: p,
			name:   s.Name,
			start:  time.Unix(0, s.Start).Add(offset),
			dur:    time.Duration(s.Dur),
			args:   s.Args,
		})
	}
}

// ClockOffset estimates the shift from the callee's clock to the
// caller's for one hop, assuming the remote work sat centered in the
// round trip: sentAt plus half the network residual (rtt minus the
// remote span extent) is where the earliest remote span belongs on the
// local timeline. Wrong by up to half the one-way network latency —
// fine for lining up lanes in a timeline, not a clock-sync protocol.
func ClockOffset(sentAt time.Time, rtt time.Duration, spans []WireSpan) time.Duration {
	if len(spans) == 0 {
		return 0
	}
	minStart, maxEnd := spans[0].Start, spans[0].Start+spans[0].Dur
	for _, s := range spans[1:] {
		if s.Start < minStart {
			minStart = s.Start
		}
		if end := s.Start + s.Dur; end > maxEnd {
			maxEnd = end
		}
	}
	remote := time.Duration(maxEnd - minStart)
	if remote > rtt {
		remote = rtt
	}
	return sentAt.Add((rtt - remote) / 2).Sub(time.Unix(0, minStart))
}

// maxSpanHeaderBytes bounds a decoded span trailer; a value past this
// is dropped rather than parsed.
const maxSpanHeaderBytes = 1 << 20

// EncodeSpans renders a span forest as a single header-safe token
// (base64 of JSON) for the X-Trace-Spans trailer.
func EncodeSpans(spans []WireSpan) string {
	if len(spans) == 0 {
		return ""
	}
	raw, err := json.Marshal(spans)
	if err != nil {
		return ""
	}
	return base64.StdEncoding.EncodeToString(raw)
}

// DecodeSpans parses an EncodeSpans token, enforcing the size and span
// bounds (oversized forests are truncated to MaxWireSpans).
func DecodeSpans(s string) ([]WireSpan, error) {
	if s == "" {
		return nil, nil
	}
	if len(s) > maxSpanHeaderBytes {
		return nil, fmt.Errorf("obs: span header exceeds %d bytes", maxSpanHeaderBytes)
	}
	raw, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("obs: decoding span header: %w", err)
	}
	var spans []WireSpan
	if err := json.Unmarshal(raw, &spans); err != nil {
		return nil, fmt.Errorf("obs: parsing span header: %w", err)
	}
	if len(spans) > MaxWireSpans {
		spans = spans[:MaxWireSpans]
	}
	return spans, nil
}
