package obs

import (
	"fmt"
	"sync"
	"time"
)

// Sliding-window views over cumulative metrics. A Windowed* wrapper
// keeps a ring of snapshots of its metric's cumulative state, one per
// bucket-width boundary; the windowed value over the last d is the
// difference between the live cumulative state and the snapshot taken
// ~d ago. Deriving windows from snapshots (instead of intercepting every
// Add/Observe) keeps the hot-path cost of an instrumented metric exactly
// what it was — one atomic add — and lets any existing Counter or
// Histogram gain 1m/5m/1h views after the fact.
//
// Rotation is lazy: every read (and every Tick) advances the ring to the
// current bucket boundary, stamping the live cumulative state into each
// boundary crossed. Values are therefore accurate to one bucket width
// (DefWindowBucket), provided something touches the window at least once
// per bucket — a serving process runs StartWindowRotation; tests drive a
// fake clock and call Tick (or any read) explicitly.

// Clock is an injectable time source. Windowed metrics, SLOs, and alert
// sets take one so tests can drive rotation deterministically; nil means
// time.Now.
type Clock func() time.Time

// DefWindowBucket is the ring's bucket width: windowed values are
// accurate to this granularity.
const DefWindowBucket = 10 * time.Second

// maxWindow is the longest supported window (the ring's span).
const maxWindow = time.Hour

// DefWindows are the standard reporting windows, shortest first.
var DefWindows = []time.Duration{time.Minute, 5 * time.Minute, time.Hour}

// WindowLabel renders a window duration the way the JSON report and the
// Prometheus "window" label spell it: "1m", "5m", "1h".
func WindowLabel(d time.Duration) string {
	switch {
	case d >= time.Hour && d%time.Hour == 0:
		return fmt.Sprintf("%dh", d/time.Hour)
	case d >= time.Minute && d%time.Minute == 0:
		return fmt.Sprintf("%dm", d/time.Minute)
	default:
		return fmt.Sprintf("%gs", d.Seconds())
	}
}

// winSnap is one cumulative snapshot: observation count, value sum, and
// (histograms only) per-bucket counts. Snapshots are immutable once
// taken, so ring slots may alias the same bucket slice freely.
type winSnap struct {
	count   int64
	sum     float64
	buckets []int64
}

// ring holds cumulative snapshots at bucket boundaries. slots[head] is
// the snapshot at headTime, the most recent boundary; older boundaries
// sit behind it. All access is guarded by the owning wrapper's mutex.
type ring struct {
	width    time.Duration
	slots    []winSnap
	head     int
	headTime time.Time
}

func newRing(width time.Duration, span time.Duration) *ring {
	n := int(span/width) + 1
	return &ring{width: width, slots: make([]winSnap, n)}
}

// clear forgets all history; the next rotate re-bases every slot at the
// then-current cumulative state.
func (r *ring) clear() {
	r.headTime = time.Time{}
}

// rebase stamps cur into every slot: windowed deltas read zero until new
// events arrive.
func (r *ring) rebase(boundary time.Time, cur winSnap) {
	for i := range r.slots {
		r.slots[i] = cur
	}
	r.head, r.headTime = 0, boundary
}

// rotate advances the ring to now's bucket boundary, stamping cur into
// each boundary crossed. A first access, a clock that moved backwards,
// or a jump past the whole ring re-bases instead.
func (r *ring) rotate(now time.Time, cur winSnap) {
	b := now.Truncate(r.width)
	if r.headTime.IsZero() || b.Before(r.headTime) {
		r.rebase(b, cur)
		return
	}
	steps := int(b.Sub(r.headTime) / r.width)
	if steps >= len(r.slots) {
		r.rebase(b, cur)
		return
	}
	for i := 0; i < steps; i++ {
		r.head = (r.head + 1) % len(r.slots)
		r.slots[r.head] = cur
	}
	r.headTime = b
}

// at returns the snapshot k buckets behind the head (clamped to the
// oldest slot).
func (r *ring) at(k int) winSnap {
	if k >= len(r.slots) {
		k = len(r.slots) - 1
	}
	if k < 0 {
		k = 0
	}
	idx := (r.head - k) % len(r.slots)
	if idx < 0 {
		idx += len(r.slots)
	}
	return r.slots[idx]
}

// bucketsFor converts a window to a bucket count (at least one).
func (r *ring) bucketsFor(d time.Duration) int {
	k := int(d / r.width)
	if k < 1 {
		k = 1
	}
	return k
}

// WindowStats is one windowed summary: event count and rate over the
// window, plus (histograms only) the mean and interpolated quantiles of
// the values observed inside it.
type WindowStats struct {
	Count int64   `json:"count"`
	Rate  float64 `json:"rate_per_sec"`
	Mean  float64 `json:"mean,omitempty"`
	P50   float64 `json:"p50,omitempty"`
	P90   float64 `json:"p90,omitempty"`
	P99   float64 `json:"p99,omitempty"`
}

// WindowedCounter is a sliding-window view over a Counter.
type WindowedCounter struct {
	name   string
	fetch  func() *Counter
	labels []Label

	mu    sync.Mutex
	clock Clock
	r     *ring
}

// sync rotates the ring to the clock's current bucket and returns the
// live cumulative count. Callers hold w.mu.
func (w *WindowedCounter) sync() int64 {
	v := w.fetch().Value()
	w.r.rotate(w.clock(), winSnap{count: v})
	return v
}

// Tick rotates the ring without reading anything out — the hook the
// background rotator (StartWindowRotation) uses to keep bucket
// boundaries stamped while no one is reading.
func (w *WindowedCounter) Tick() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.sync()
}

// CountOver returns how many events the counter recorded in the last d
// (rounded to bucket boundaries; d is clamped to the ring's span).
func (w *WindowedCounter) CountOver(d time.Duration) int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	cur := w.sync()
	return cur - w.r.at(w.r.bucketsFor(d)).count
}

// RateOver returns the event rate per second over the last d.
func (w *WindowedCounter) RateOver(d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(w.CountOver(d)) / d.Seconds()
}

// Series returns per-bucket event counts over the last d, oldest first,
// with the live (partial) bucket as the final element — the sparkline
// shape.
func (w *WindowedCounter) Series(d time.Duration) []float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	cur := w.sync()
	k := w.r.bucketsFor(d)
	out := make([]float64, 0, k+1)
	for i := k; i >= 1; i-- {
		out = append(out, float64(w.r.at(i-1).count-w.r.at(i).count))
	}
	out = append(out, float64(cur-w.r.at(0).count))
	return out
}

// Stats summarizes the window (histogram-only fields stay zero).
func (w *WindowedCounter) Stats(d time.Duration) WindowStats {
	c := w.CountOver(d)
	st := WindowStats{Count: c}
	if d > 0 {
		st.Rate = float64(c) / d.Seconds()
	}
	return st
}

// WindowedHistogram is a sliding-window view over a Histogram (or one
// child of a HistogramVec): windowed count, rate, mean, and interpolated
// quantiles computed from per-bucket count deltas.
type WindowedHistogram struct {
	name   string
	fetch  func() *Histogram
	labels []Label

	mu    sync.Mutex
	clock Clock
	r     *ring
}

// sync rotates the ring and returns the histogram with its live
// cumulative snapshot. Bucket counts are read one atomic load at a time,
// so a snapshot taken mid-Observe can be off by one event — the same
// (documented) skew the Prometheus exposition has. Callers hold w.mu.
func (w *WindowedHistogram) sync() (*Histogram, winSnap) {
	h := w.fetch()
	cur := winSnap{count: h.Count(), sum: h.Sum(), buckets: h.bucketCounts()}
	w.r.rotate(w.clock(), cur)
	return h, cur
}

// Tick rotates the ring without reading anything out.
func (w *WindowedHistogram) Tick() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.sync()
}

// deltas returns the per-bucket event counts inside the last d, along
// with the count and sum deltas. Negative per-bucket deltas (a torn
// snapshot racing a reset) clamp to zero. Callers hold w.mu.
func (w *WindowedHistogram) deltas(d time.Duration) (bounds []float64, counts []int64, n int64, sum float64) {
	h, cur := w.sync()
	ref := w.r.at(w.r.bucketsFor(d))
	counts = make([]int64, len(cur.buckets))
	for i := range counts {
		c := cur.buckets[i]
		if ref.buckets != nil {
			c -= ref.buckets[i]
		}
		if c < 0 {
			c = 0
		}
		counts[i] = c
	}
	return h.bounds, counts, cur.count - ref.count, cur.sum - ref.sum
}

// CountOver returns how many observations landed in the last d.
func (w *WindowedHistogram) CountOver(d time.Duration) int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	_, cur := w.sync()
	return cur.count - w.r.at(w.r.bucketsFor(d)).count
}

// MeanOver returns the mean observed value over the last d (0 when the
// window is empty).
func (w *WindowedHistogram) MeanOver(d time.Duration) float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	_, cur := w.sync()
	ref := w.r.at(w.r.bucketsFor(d))
	n := cur.count - ref.count
	if n <= 0 {
		return 0
	}
	return (cur.sum - ref.sum) / float64(n)
}

// QuantileOver estimates the q-quantile of the values observed in the
// last d, with the same bucket interpolation Histogram.Quantile uses.
// Returns NaN when the window is empty.
func (w *WindowedHistogram) QuantileOver(d time.Duration, q float64) float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	bounds, counts, _, _ := w.deltas(d)
	return quantile(q, bounds, counts)
}

// StatsOver summarizes the last d: count, rate, mean, p50/p90/p99
// (zeroed, not NaN, when the window is empty).
func (w *WindowedHistogram) StatsOver(d time.Duration) WindowStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	bounds, counts, n, sum := w.deltas(d)
	st := WindowStats{Count: n}
	if d > 0 {
		st.Rate = float64(n) / d.Seconds()
	}
	if n <= 0 {
		return st
	}
	st.Mean = sum / float64(n)
	st.P50 = quantile(0.50, bounds, counts)
	st.P90 = quantile(0.90, bounds, counts)
	st.P99 = quantile(0.99, bounds, counts)
	return st
}

// GoodOver counts the observations in the last d that landed in buckets
// whose upper bound is <= threshold, plus the window total — the
// latency-SLI primitive. The threshold is effectively rounded down to a
// bucket bound: observations under the threshold that landed in a bucket
// straddling it count as bad, so align SLO thresholds with bucket bounds
// for exact accounting.
func (w *WindowedHistogram) GoodOver(d time.Duration, threshold float64) (good, total int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	bounds, counts, n, _ := w.deltas(d)
	return goodUnder(bounds, counts, n, threshold), n
}

// Rebase forgets the window's history and re-bases every ring slot at
// the current cumulative state: every windowed delta reads zero until
// new observations arrive. The serving layer calls it when the entity a
// window describes is replaced wholesale (a hot-swapped model), so
// observations of the predecessor stop counting against the successor.
func (w *WindowedHistogram) Rebase() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.r.clear()
	w.sync()
}

// Rebase forgets the window's history (see WindowedHistogram.Rebase).
func (w *WindowedCounter) Rebase() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.r.clear()
	w.sync()
}

// Series returns per-bucket observation counts over the last d, oldest
// first, live partial bucket last.
func (w *WindowedHistogram) Series(d time.Duration) []float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	_, cur := w.sync()
	k := w.r.bucketsFor(d)
	out := make([]float64, 0, k+1)
	for i := k; i >= 1; i-- {
		out = append(out, float64(w.r.at(i-1).count-w.r.at(i).count))
	}
	out = append(out, float64(cur.count-w.r.at(0).count))
	return out
}

// windows is the registry of windowed views, keyed by the underlying
// metric's display name. Registration order is kept so the JSON report
// and the Prometheus exposition are stable.
var windows struct {
	mu     sync.Mutex
	byName map[string]any // *WindowedCounter | *WindowedHistogram
	order  []string
}

func init() {
	windows.byName = map[string]any{}
}

// registerWindow installs (or re-binds) a windowed view. Latest-wins
// re-binding mirrors NewGaugeFunc: the registry is process-global, so a
// newly constructed server's clock takes over its predecessor's view.
// Re-registration clears ring history, because the new clock may not be
// continuous with the old one.
func registerWindow[T any](name string, clock Clock, mk func(Clock) T, rebind func(T, Clock)) T {
	if clock == nil {
		clock = time.Now
	}
	windows.mu.Lock()
	defer windows.mu.Unlock()
	if m, ok := windows.byName[name]; ok {
		if t, ok := m.(T); ok {
			rebind(t, clock)
			return t
		}
		panic("obs: window " + name + " already registered for a different metric kind")
	}
	t := mk(clock)
	windows.byName[name] = t
	windows.order = append(windows.order, name)
	return t
}

// WindowCounter returns the sliding-window view of c, creating (and
// registering) it on first use. A nil clock means time.Now.
func WindowCounter(c *Counter, clock Clock) *WindowedCounter {
	name := c.displayName()
	return registerWindow(name, clock,
		func(clk Clock) *WindowedCounter {
			w := &WindowedCounter{
				name: name, labels: c.labels, clock: clk,
				fetch: func() *Counter { return c },
				r:     newRing(DefWindowBucket, maxWindow),
			}
			// Baseline immediately: events between view creation and the
			// first read must be inside the window, not under it.
			w.Tick()
			return w
		},
		func(w *WindowedCounter, clk Clock) {
			w.mu.Lock()
			w.clock = clk
			w.r.clear()
			w.sync()
			w.mu.Unlock()
		})
}

// WindowHistogram returns the sliding-window view of h.
func WindowHistogram(h *Histogram, clock Clock) *WindowedHistogram {
	return windowHistogram(h.displayName(), h.labels, clock, func() *Histogram { return h })
}

// WindowHistogramIn returns the sliding-window view of one child of a
// HistogramVec. The child is re-fetched on every access, so the view
// survives Reset (which discards and recreates family children).
func WindowHistogramIn(v *HistogramVec, clock Clock, values ...string) *WindowedHistogram {
	child := v.With(values...)
	return windowHistogram(child.displayName(), child.labels, clock,
		func() *Histogram { return v.With(values...) })
}

func windowHistogram(name string, labels []Label, clock Clock, fetch func() *Histogram) *WindowedHistogram {
	return registerWindow(name, clock,
		func(clk Clock) *WindowedHistogram {
			w := &WindowedHistogram{
				name: name, labels: labels, clock: clk, fetch: fetch,
				r: newRing(DefWindowBucket, maxWindow),
			}
			// Baseline immediately, as for counters.
			w.Tick()
			return w
		},
		func(w *WindowedHistogram, clk Clock) {
			w.mu.Lock()
			w.clock = clk
			w.r.clear()
			w.sync()
			w.mu.Unlock()
		})
}

// windowViews copies the registry's views in registration order.
func windowViews() []any {
	windows.mu.Lock()
	defer windows.mu.Unlock()
	out := make([]any, 0, len(windows.order))
	for _, name := range windows.order {
		out = append(out, windows.byName[name])
	}
	return out
}

// TickWindows rotates every registered window to the current bucket
// boundary. The background rotator calls it periodically; fake-clock
// tests call it after advancing time.
func TickWindows() {
	for _, v := range windowViews() {
		switch w := v.(type) {
		case *WindowedCounter:
			w.Tick()
		case *WindowedHistogram:
			w.Tick()
		}
	}
}

// StartWindowRotation ticks every registered window each interval
// (default: half the bucket width) until the returned stop function is
// called, guaranteeing bucket boundaries are stamped even when nothing
// reads the windows.
func StartWindowRotation(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = DefWindowBucket / 2
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				TickWindows()
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// WindowSnapshot summarizes every registered window over the standard
// reporting windows: metric display name → window label ("1m", "5m",
// "1h") → stats.
func WindowSnapshot() map[string]map[string]WindowStats {
	views := windowViews()
	if len(views) == 0 {
		return nil
	}
	out := make(map[string]map[string]WindowStats, len(views))
	for _, v := range views {
		switch w := v.(type) {
		case *WindowedCounter:
			m := make(map[string]WindowStats, len(DefWindows))
			for _, d := range DefWindows {
				m[WindowLabel(d)] = w.Stats(d)
			}
			out[w.name] = m
		case *WindowedHistogram:
			m := make(map[string]WindowStats, len(DefWindows))
			for _, d := range DefWindows {
				m[WindowLabel(d)] = w.StatsOver(d)
			}
			out[w.name] = m
		}
	}
	return out
}

// resetWindows clears every ring (Reset re-bases windowed views along
// with the cumulative metrics under them).
func resetWindows() {
	for _, v := range windowViews() {
		switch w := v.(type) {
		case *WindowedCounter:
			w.mu.Lock()
			w.r.clear()
			w.mu.Unlock()
		case *WindowedHistogram:
			w.mu.Lock()
			w.r.clear()
			w.mu.Unlock()
		}
	}
}
