package obs

import (
	"bytes"
	"os"
	"regexp"
	"strings"
	"testing"
)

// TestWritePrometheusGolden registers one metric of every kind under a
// promtest. prefix with deterministic (power-of-two) values, renders the
// full exposition, and compares the promtest_ lines against the golden
// file. Filtering by prefix keeps the test independent of whatever other
// packages registered in the shared registry.
func TestWritePrometheusGolden(t *testing.T) {
	c := NewCounter("promtest.sims")
	c.v.Store(0)
	c.Add(42)

	cv := NewCounterVec("promtest.responses", "route", "code")
	cv.reset()
	cv.With("/v1/predict", "200").Add(3)
	cv.With("/v1/predict", "400").Inc()

	NewGauge("promtest.inflight").Set(2)
	NewGaugeFunc("promtest.cache_entries", func() float64 { return 5 })

	h := NewHistogram("promtest.latency_seconds", []float64{0.25, 1, 4})
	h.reset()
	for _, v := range []float64{0.125, 0.5, 2, 8} {
		h.Observe(v)
	}

	hv := NewHistogramVec("promtest.route_seconds", []float64{0.5, 2}, "route")
	hv.reset()
	hv.With("/a").Observe(0.25)
	hv.With("/a").Observe(1)
	hv.With("/b").Observe(4)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.Contains(line, "promtest_") {
			got = append(got, line)
		}
	}
	want, err := os.ReadFile("testdata/prom.golden")
	if err != nil {
		t.Fatal(err)
	}
	if g, w := strings.Join(got, "\n")+"\n", string(want); g != w {
		t.Errorf("prom exposition mismatch\n--- got ---\n%s--- want ---\n%s", g, w)
	}
}

// TestWritePrometheusSpans: span aggregates export as _calls_total /
// _seconds_total / _seconds_max series. Durations are wall-clock, so the
// values are matched structurally, not exactly.
func TestWritePrometheusSpans(t *testing.T) {
	Enable()
	defer Disable()
	end := StartSpan("promtest.span")
	end()
	end = StartSpan("promtest.span")
	end()

	var buf bytes.Buffer
	if err := WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, re := range []string{
		`(?m)^# TYPE promtest_span_calls_total counter$`,
		`(?m)^promtest_span_calls_total 2$`,
		`(?m)^# TYPE promtest_span_seconds_total counter$`,
		`(?m)^promtest_span_seconds_total [0-9.e+-]+$`,
		`(?m)^# TYPE promtest_span_seconds_max gauge$`,
		`(?m)^promtest_span_seconds_max [0-9.e+-]+$`,
	} {
		if !regexp.MustCompile(re).MatchString(out) {
			t.Errorf("exposition missing %s", re)
		}
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"serve.http_request_seconds": "serve_http_request_seconds",
		"core.sims":                  "core_sims",
		"9lives":                     "_lives",
		"a:b-c":                      "a:b_c",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestEscapeLabelValue(t *testing.T) {
	if got := escapeLabelValue("a\"b\\c\nd"); got != `a\"b\\c\nd` {
		t.Errorf("escapeLabelValue = %q", got)
	}
}
