package obs

import (
	"math"
	"sort"
	"sync"
	"time"
)

// Fleet federation: exact merging of per-role run reports into one
// aggregate view, plus sliding windows re-derived from successive
// merged snapshots.
//
// The merge contract is *exactness*, not approximation: counters and
// stage counts are integer sums; histograms carry their raw log-spaced
// bucket layouts (report format >= 3) and merge bucket-wise, with
// quantiles re-derived from the merged counts by the same
// interpolation Histogram.Quantile uses. A fleet of N processes
// observing disjoint event sets therefore reports byte-for-byte the
// same counter totals and quantiles as one process observing the
// union. The merge is associative and order-independent because every
// combining operation (integer add, float add of dyadic-friendly sums,
// max) is.

// MergeReports merges per-role reports into one fleet-wide aggregate.
// Nil inputs are skipped. Counters, stage counts/totals, and gauge
// values sum; stage maxima take the max; histograms merge bucket-wise
// when their layouts agree (always, for same-build roles) and degrade
// to summed counts with upper-estimate quantiles when an old-format
// report lacks raw buckets. Windows and SLOs are intentionally left
// empty: windowed views cannot be merged exactly from pre-derived
// stats (a p50 of p50s is not a p50), so federating readers re-derive
// them from merged cumulative snapshots via FleetWindows.
func MergeReports(reports ...*Report) *Report {
	out := &Report{
		Format:   reportFormat,
		Stages:   map[string]StageStats{},
		Counters: map[string]int64{},
	}
	for _, r := range reports {
		if r == nil {
			continue
		}
		if out.Host.GoVersion == "" {
			out.Host.GoVersion = r.Host.GoVersion
			out.Host.OS = r.Host.OS
			out.Host.Arch = r.Host.Arch
		}
		// Fleet capacity, not per-host shape.
		out.Host.CPUs += r.Host.CPUs
		out.Host.GOMAXPROCS += r.Host.GOMAXPROCS
		if out.Started.IsZero() || (!r.Started.IsZero() && r.Started.Before(out.Started)) {
			out.Started = r.Started
		}
		out.WallSec = math.Max(out.WallSec, r.WallSec)
		for name, st := range r.Stages {
			prev := out.Stages[name]
			out.Stages[name] = StageStats{
				Count:    prev.Count + st.Count,
				TotalSec: prev.TotalSec + st.TotalSec,
				MaxSec:   math.Max(prev.MaxSec, st.MaxSec),
			}
		}
		for name, v := range r.Counters {
			out.Counters[name] += v
		}
		for name, v := range r.Gauges {
			if out.Gauges == nil {
				out.Gauges = map[string]float64{}
			}
			out.Gauges[name] += v
		}
		for name, st := range r.Histograms {
			if out.Histograms == nil {
				out.Histograms = map[string]HistStats{}
			}
			out.Histograms[name] = mergeHistStats(out.Histograms[name], st)
		}
	}
	return out
}

// mergeHistStats combines two histogram summaries. When both carry raw
// buckets over the same bounds, the merge is exact: bucket-wise sums
// with quantiles re-derived from the merged counts. A side that never
// observed anything and carries no layout is the identity. Mismatched
// layouts (mixed builds or pre-format-3 reports) still sum counts and
// sums exactly but fall back to the max of each pre-computed quantile —
// an upper estimate, flagged by the absence of Bounds in the result.
func mergeHistStats(a, b HistStats) HistStats {
	if a.Count == 0 && len(a.Buckets) == 0 {
		return cloneHistStats(b)
	}
	if b.Count == 0 && len(b.Buckets) == 0 {
		return cloneHistStats(a)
	}
	m := HistStats{Count: a.Count + b.Count, Sum: a.Sum + b.Sum}
	if len(a.Buckets) > 0 && len(a.Buckets) == len(b.Buckets) && equalBounds(a.Bounds, b.Bounds) {
		m.Bounds = append([]float64(nil), a.Bounds...)
		m.Buckets = make([]int64, len(a.Buckets))
		for i := range m.Buckets {
			m.Buckets[i] = a.Buckets[i] + b.Buckets[i]
		}
		if m.Count > 0 {
			m.P50 = quantile(0.50, m.Bounds, m.Buckets)
			m.P90 = quantile(0.90, m.Bounds, m.Buckets)
			m.P99 = quantile(0.99, m.Bounds, m.Buckets)
			m.Max = quantile(1, m.Bounds, m.Buckets)
		}
		return m
	}
	m.P50 = math.Max(a.P50, b.P50)
	m.P90 = math.Max(a.P90, b.P90)
	m.P99 = math.Max(a.P99, b.P99)
	m.Max = math.Max(a.Max, b.Max)
	return m
}

func cloneHistStats(s HistStats) HistStats {
	c := s
	c.Bounds = append([]float64(nil), s.Bounds...)
	c.Buckets = append([]int64(nil), s.Buckets...)
	return c
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// goodUnder counts the events in counts that landed in buckets whose
// upper bound is <= threshold — the bucket-quantized latency-SLI
// primitive shared by WindowedHistogram.GoodOver and FleetWindows.
func goodUnder(bounds []float64, counts []int64, n int64, threshold float64) (good int64) {
	hi := sort.SearchFloat64s(bounds, threshold)
	if hi < len(bounds) && bounds[hi] == threshold {
		hi++
	}
	for i := 0; i < hi && i < len(counts); i++ {
		good += counts[i]
	}
	if hi > len(bounds) { // threshold above every finite bound: overflow too
		good = n
	}
	return good
}

// FleetWindows re-derives sliding-window views from successive merged
// cumulative snapshots — the federating reader's counterpart of
// WindowedCounter / WindowedHistogram. A scraper feeds it one merged
// Report per scrape tick; each metric keeps the same
// ring-of-cumulative-snapshots the per-process windows use, so
// windowed deltas, rates, quantiles, and SLI good/total counts over
// the merged fleet follow exactly the per-process semantics
// (bucket-width granularity, negative deltas from role restarts
// clamped to zero).
type FleetWindows struct {
	mu       sync.Mutex
	clock    Clock
	counters map[string]*fleetSeries
	hists    map[string]*fleetSeries
}

// fleetSeries is one merged metric's ring plus its latest merged
// cumulative snapshot (the "live" value between scrape ticks).
type fleetSeries struct {
	bounds []float64 // histograms only
	r      *ring
	last   winSnap
}

// NewFleetWindows builds an empty fleet-window set on the given clock
// (nil: time.Now).
func NewFleetWindows(clock Clock) *FleetWindows {
	if clock == nil {
		clock = time.Now
	}
	return &FleetWindows{
		clock:    clock,
		counters: map[string]*fleetSeries{},
		hists:    map[string]*fleetSeries{},
	}
}

// Ingest feeds one merged report: every counter and every histogram
// that carries raw buckets advances its ring to the current bucket
// boundary and records the merged cumulative state. Metrics absent
// from the report (a role down mid-scrape) simply keep their last
// value — the windowed delta then under-counts for one tick rather
// than inventing negative traffic.
func (f *FleetWindows) Ingest(rep *Report) {
	if rep == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	now := f.clock()
	for name, v := range rep.Counters {
		s, ok := f.counters[name]
		if !ok {
			s = &fleetSeries{r: newRing(DefWindowBucket, maxWindow)}
			f.counters[name] = s
		}
		s.last = winSnap{count: v}
		s.r.rotate(now, s.last)
	}
	for name, st := range rep.Histograms {
		if len(st.Buckets) == 0 {
			continue // pre-format-3 source: not windowable exactly
		}
		s, ok := f.hists[name]
		if !ok {
			s = &fleetSeries{bounds: append([]float64(nil), st.Bounds...), r: newRing(DefWindowBucket, maxWindow)}
			f.hists[name] = s
		}
		if !equalBounds(s.bounds, st.Bounds) {
			continue // layout changed under us (mixed builds): skip
		}
		s.last = winSnap{count: st.Count, sum: st.Sum, buckets: append([]int64(nil), st.Buckets...)}
		s.r.rotate(now, s.last)
	}
}

// syncLocked rotates one series to the current boundary using its last
// ingested snapshot as the live value. Callers hold f.mu.
func (f *FleetWindows) syncLocked(s *fleetSeries) {
	s.r.rotate(f.clock(), s.last)
}

// CounterOver returns how many merged events the named counter
// recorded in the last d (clamped at zero across role restarts).
func (f *FleetWindows) CounterOver(name string, d time.Duration) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.counters[name]
	if !ok {
		return 0
	}
	f.syncLocked(s)
	n := s.last.count - s.r.at(s.r.bucketsFor(d)).count
	if n < 0 {
		n = 0
	}
	return n
}

// CounterRate returns the merged event rate per second over the last d.
func (f *FleetWindows) CounterRate(name string, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(f.CounterOver(name, d)) / d.Seconds()
}

// CounterSeries returns per-bucket merged event counts over the last
// d, oldest first, live partial bucket last — the sparkline shape.
func (f *FleetWindows) CounterSeries(name string, d time.Duration) []float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.counters[name]
	if !ok {
		return nil
	}
	f.syncLocked(s)
	k := s.r.bucketsFor(d)
	out := make([]float64, 0, k+1)
	for i := k; i >= 1; i-- {
		out = append(out, clampF(float64(s.r.at(i-1).count-s.r.at(i).count)))
	}
	out = append(out, clampF(float64(s.last.count-s.r.at(0).count)))
	return out
}

func clampF(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

// histDeltasLocked mirrors WindowedHistogram.deltas over a merged
// series. Callers hold f.mu.
func (f *FleetWindows) histDeltasLocked(s *fleetSeries, d time.Duration) (counts []int64, n int64, sum float64) {
	f.syncLocked(s)
	ref := s.r.at(s.r.bucketsFor(d))
	counts = make([]int64, len(s.last.buckets))
	for i := range counts {
		c := s.last.buckets[i]
		if ref.buckets != nil && i < len(ref.buckets) {
			c -= ref.buckets[i]
		}
		if c < 0 {
			c = 0
		}
		counts[i] = c
	}
	n = s.last.count - ref.count
	if n < 0 {
		n = 0
	}
	return counts, n, s.last.sum - ref.sum
}

// HistStatsOver summarizes the named merged histogram over the last d,
// with the same semantics as WindowedHistogram.StatsOver.
func (f *FleetWindows) HistStatsOver(name string, d time.Duration) WindowStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.hists[name]
	if !ok {
		return WindowStats{}
	}
	counts, n, sum := f.histDeltasLocked(s, d)
	st := WindowStats{Count: n}
	if d > 0 {
		st.Rate = float64(n) / d.Seconds()
	}
	if n <= 0 {
		return st
	}
	st.Mean = sum / float64(n)
	st.P50 = quantile(0.50, s.bounds, counts)
	st.P90 = quantile(0.90, s.bounds, counts)
	st.P99 = quantile(0.99, s.bounds, counts)
	return st
}

// HistSeries returns per-bucket merged observation counts over the
// last d, oldest first, live partial bucket last.
func (f *FleetWindows) HistSeries(name string, d time.Duration) []float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.hists[name]
	if !ok {
		return nil
	}
	f.syncLocked(s)
	k := s.r.bucketsFor(d)
	out := make([]float64, 0, k+1)
	for i := k; i >= 1; i-- {
		out = append(out, clampF(float64(s.r.at(i-1).count-s.r.at(i).count)))
	}
	out = append(out, clampF(float64(s.last.count-s.r.at(0).count)))
	return out
}

// GoodOver counts merged observations in the last d that landed in
// buckets whose upper bound is <= threshold, plus the window total —
// the fleet latency-SLI primitive, bucket-quantized exactly like
// WindowedHistogram.GoodOver.
func (f *FleetWindows) GoodOver(name string, d time.Duration, threshold float64) (good, total int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.hists[name]
	if !ok {
		return 0, 0
	}
	counts, n, _ := f.histDeltasLocked(s, d)
	return goodUnder(s.bounds, counts, n, threshold), n
}

// LatencySLI builds an SLI over a merged latency histogram: good means
// the request completed within threshold seconds, fleet-wide.
func (f *FleetWindows) LatencySLI(name string, thresholdSec float64) SLIFunc {
	return func(d time.Duration) (good, total int64) {
		return f.GoodOver(name, d, thresholdSec)
	}
}

// CounterRatioSLI builds an availability SLI from a merged error
// counter and a merged total counter: good = total - errors.
func (f *FleetWindows) CounterRatioSLI(errName, totalName string) SLIFunc {
	return func(d time.Duration) (good, total int64) {
		t := f.CounterOver(totalName, d)
		e := f.CounterOver(errName, d)
		if e > t {
			e = t
		}
		return t - e, t
	}
}
