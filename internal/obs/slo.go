package obs

import (
	"fmt"
	"sync"
	"time"
)

// SLO tracking in the multi-window burn-rate style of the Google SRE
// workbook: an SLO declares an objective (the target fraction of "good"
// events) and reads its service-level indicator over a fast and a slow
// window. The burn rate over a window is
//
//	burn = badFraction / errorBudget = (1 - good/total) / (1 - objective)
//
// so burn == 1 means the service is spending its error budget exactly
// as fast as the objective allows; burn == 14.4 over both a 5m and a 1h
// window (the classic paging threshold) means a month-long budget would
// be gone in two days. Requiring BOTH windows to exceed the threshold
// combines fast detection (the 5m window reacts within a bucket
// rotation) with de-flapping (the 1h window ignores one bad burst).

// DefBurnThreshold is the default paging burn-rate threshold.
const DefBurnThreshold = 14.4

// Default fast/slow burn windows.
const (
	DefFastWindow = 5 * time.Minute
	DefSlowWindow = time.Hour
)

// SLIFunc reads a service-level indicator over a trailing window: how
// many events were good, out of how many total.
type SLIFunc func(window time.Duration) (good, total int64)

// SLO is one declarative objective over a windowed indicator.
type SLO struct {
	// Name identifies the SLO in /alertz, /statusz, and reports.
	Name string
	// Description says what "good" means, for dashboards.
	Description string
	// Objective is the target good fraction in (0, 1), e.g. 0.999.
	Objective float64
	// Threshold is the burn rate above which the SLO fires
	// (DefBurnThreshold when zero).
	Threshold float64
	// SLI reads the indicator.
	SLI SLIFunc
	// FastWindow/SlowWindow override the burn windows (5m/1h when zero).
	FastWindow, SlowWindow time.Duration
}

// BurnWindow is the burn-rate computation over one window.
type BurnWindow struct {
	Window      string  `json:"window"`
	Good        int64   `json:"good"`
	Total       int64   `json:"total"`
	BadFraction float64 `json:"bad_fraction"`
	BurnRate    float64 `json:"burn_rate"`
}

// SLOState is one SLO's evaluated state, JSON-ready for /alertz,
// /statusz, and the run report.
type SLOState struct {
	Name        string     `json:"name"`
	Description string     `json:"description,omitempty"`
	Objective   float64    `json:"objective"`
	Threshold   float64    `json:"threshold"`
	Fast        BurnWindow `json:"fast"`
	Slow        BurnWindow `json:"slow"`
	// BudgetSpent is the fraction of error budget being consumed at the
	// slow window's current bad rate (1.0 = budget exactly exhausted if
	// this rate holds; capped at 10 for display sanity).
	BudgetSpent float64 `json:"budget_spent"`
	Firing      bool    `json:"firing"`
}

func (s *SLO) windows() (fast, slow time.Duration) {
	fast, slow = s.FastWindow, s.SlowWindow
	if fast <= 0 {
		fast = DefFastWindow
	}
	if slow <= 0 {
		slow = DefSlowWindow
	}
	return fast, slow
}

func (s *SLO) threshold() float64 {
	if s.Threshold <= 0 {
		return DefBurnThreshold
	}
	return s.Threshold
}

// burnOver evaluates one window. An empty window burns nothing: no
// traffic is not an SLO violation.
func (s *SLO) burnOver(d time.Duration) BurnWindow {
	good, total := s.SLI(d)
	bw := BurnWindow{Window: WindowLabel(d), Good: good, Total: total}
	if total <= 0 {
		return bw
	}
	bad := float64(total-good) / float64(total)
	if bad < 0 {
		bad = 0
	}
	bw.BadFraction = bad
	if budget := 1 - s.Objective; budget > 0 {
		bw.BurnRate = bad / budget
	}
	return bw
}

// State evaluates both burn windows. The SLO fires when both exceed the
// threshold — the multi-window AND that pages fast without flapping.
func (s *SLO) State() SLOState {
	fast, slow := s.windows()
	st := SLOState{
		Name:        s.Name,
		Description: s.Description,
		Objective:   s.Objective,
		Threshold:   s.threshold(),
		Fast:        s.burnOver(fast),
		Slow:        s.burnOver(slow),
	}
	st.BudgetSpent = min(st.Slow.BurnRate, 10)
	st.Firing = st.Fast.BurnRate > st.Threshold && st.Slow.BurnRate > st.Threshold
	return st
}

// LatencySLI builds an SLI over a windowed latency histogram: good means
// the request completed within threshold seconds. The threshold is
// bucket-quantized (see WindowedHistogram.GoodOver) — align it with a
// bucket bound for exact accounting.
func LatencySLI(w *WindowedHistogram, thresholdSec float64) SLIFunc {
	return func(d time.Duration) (good, total int64) {
		return w.GoodOver(d, thresholdSec)
	}
}

// AvailabilitySLI builds an SLI from an error counter and a total
// counter: good = total - errors.
func AvailabilitySLI(errors, total *WindowedCounter) SLIFunc {
	return func(d time.Duration) (good, totalN int64) {
		t := total.CountOver(d)
		e := errors.CountOver(d)
		if e > t {
			e = t
		}
		return t - e, t
	}
}

// slos is the global SLO registry, so the run report can include SLO
// states next to the metrics they derive from. Latest-wins re-binding by
// name, like GaugeFunc.
var slos struct {
	mu     sync.Mutex
	byName map[string]*SLO
	order  []string
}

func init() {
	slos.byName = map[string]*SLO{}
}

// RegisterSLO installs s in the global registry (replacing any previous
// SLO with the same name) and returns it.
func RegisterSLO(s *SLO) *SLO {
	slos.mu.Lock()
	defer slos.mu.Unlock()
	if _, ok := slos.byName[s.Name]; !ok {
		slos.order = append(slos.order, s.Name)
	}
	slos.byName[s.Name] = s
	return s
}

// SLOStates evaluates every registered SLO, in registration order.
func SLOStates() []SLOState {
	slos.mu.Lock()
	list := make([]*SLO, 0, len(slos.order))
	for _, name := range slos.order {
		list = append(list, slos.byName[name])
	}
	slos.mu.Unlock()
	if len(list) == 0 {
		return nil
	}
	out := make([]SLOState, len(list))
	for i, s := range list {
		out[i] = s.State()
	}
	return out
}

// Alert is one named condition's public state: whether it is firing,
// when it last fired and resolved (RFC 3339; resolved_at empty while
// firing or never fired), and how many distinct firings it has had.
type Alert struct {
	Name       string `json:"name"`
	Firing     bool   `json:"firing"`
	Reason     string `json:"reason,omitempty"`
	Since      string `json:"since"`
	ResolvedAt string `json:"resolved_at,omitempty"`
	Count      int    `json:"count"`
}

// alertState is the internal record behind one Alert.
type alertState struct {
	name     string
	firing   bool
	reason   string
	since    time.Time
	resolved time.Time
	count    int
}

// AlertSet tracks firing/resolved transitions with timestamps — the
// backing store of /alertz. Conditions are (re-)evaluated by the caller;
// the set only records transitions.
type AlertSet struct {
	mu     sync.Mutex
	clock  Clock
	byName map[string]*alertState
	order  []string
}

// NewAlertSet builds an alert set on the given clock (nil: time.Now).
func NewAlertSet(clock Clock) *AlertSet {
	if clock == nil {
		clock = time.Now
	}
	return &AlertSet{clock: clock, byName: map[string]*alertState{}}
}

// Set records the current state of a named condition. A false state for
// a condition that never fired is dropped (the alert list only contains
// conditions that fired at least once). Transitions stamp Since /
// ResolvedAt with the set's clock.
func (a *AlertSet) Set(name string, firing bool, format string, args ...any) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st, ok := a.byName[name]
	if !ok {
		if !firing {
			return
		}
		st = &alertState{name: name}
		a.byName[name] = st
		a.order = append(a.order, name)
	}
	now := a.clock()
	switch {
	case firing && !st.firing:
		st.firing = true
		st.since = now
		st.resolved = time.Time{}
		st.count++
		st.reason = fmt.Sprintf(format, args...)
	case firing:
		st.reason = fmt.Sprintf(format, args...)
	case !firing && st.firing:
		st.firing = false
		st.resolved = now
	}
}

// Alerts snapshots every condition that has ever fired, firing first,
// then by first-registration order.
func (a *AlertSet) Alerts() []Alert {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Alert, 0, len(a.order))
	for _, firingPass := range []bool{true, false} {
		for _, name := range a.order {
			st := a.byName[name]
			if st.firing != firingPass {
				continue
			}
			al := Alert{
				Name:   st.name,
				Firing: st.firing,
				Reason: st.reason,
				Since:  st.since.UTC().Format(time.RFC3339),
				Count:  st.count,
			}
			if !st.resolved.IsZero() {
				al.ResolvedAt = st.resolved.UTC().Format(time.RFC3339)
			}
			out = append(out, al)
		}
	}
	return out
}

// FiringCount reports how many conditions are currently firing.
func (a *AlertSet) FiringCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, st := range a.byName {
		if st.firing {
			n++
		}
	}
	return n
}
