package obs

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	cases := []SpanContext{
		{TraceID: "8f3a9b2c11aa00ff", ParentID: 42, Sampled: true},
		{TraceID: "client-id-7", ParentID: 0, Sampled: false},
		{TraceID: "a-b-c.d_e", ParentID: 1 << 40, Sampled: true},
	}
	for _, want := range cases {
		got, ok := ParseTraceparent(FormatTraceparent(want))
		if !ok {
			t.Fatalf("ParseTraceparent(%q) failed", FormatTraceparent(want))
		}
		if got != want {
			t.Errorf("round trip: got %+v, want %+v", got, want)
		}
	}
}

func TestTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-",
		"01-abc-0000000000000001-01", // unsupported version
		"00-abc-xyz-01",              // non-hex span ID
		"00-abc-0000000000000001-zz", // non-hex flags
		"00-abc-01",                  // missing field
		"00-" + strings.Repeat("a", 65) + "-0000000000000001-01", // trace ID too long
		"00-a b-0000000000000001-01",                             // bad charset
	}
	for _, s := range bad {
		if _, ok := ParseTraceparent(s); ok {
			t.Errorf("ParseTraceparent(%q) accepted malformed input", s)
		}
	}
}

func TestValidRequestID(t *testing.T) {
	valid := []string{"a", "client-id-7", "A.b_C-9", strings.Repeat("x", 64)}
	for _, s := range valid {
		if !ValidRequestID(s) {
			t.Errorf("ValidRequestID(%q) = false, want true", s)
		}
	}
	invalid := []string{"", strings.Repeat("x", 65), "has space", "new\nline", "quote\"", "semi;colon", "slash/"}
	for _, s := range invalid {
		if ValidRequestID(s) {
			t.Errorf("ValidRequestID(%q) = true, want false", s)
		}
	}
}

func TestSamplerDeterministicAndBounded(t *testing.T) {
	all, none := NewSampler(1), NewSampler(0)
	if !all.Sample("x") || none.Sample("x") {
		t.Fatal("rate-1 sampler must keep everything, rate-0 nothing")
	}
	half := NewSampler(0.5)
	kept := 0
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		a, b := half.Sample(id), half.Sample(id)
		if a != b {
			t.Fatalf("sampler not deterministic for %q", id)
		}
		if a {
			kept++
		}
	}
	if kept < 350 || kept > 650 {
		t.Errorf("rate-0.5 sampler kept %d/1000, want roughly half", kept)
	}
}

func TestExportGraftParentage(t *testing.T) {
	// Remote side: a root with one child.
	remote := NewTrace("remote")
	rctx := WithTrace(context.Background(), remote)
	rctx, endRoot := StartSpanCtx(rctx, "worker.request")
	_, endChild := StartSpanCtx(rctx, "worker.eval")
	endChild()
	endRoot()
	wire := remote.Export(MaxWireSpans)
	if len(wire) != 2 {
		t.Fatalf("exported %d spans, want 2", len(wire))
	}

	// Local side: graft under a hop span.
	local := NewTrace("local")
	lctx := WithTrace(context.Background(), local)
	lctx, endHop := StartSpanArgs(lctx, "router.forward", "shard", "s1")
	hopID := SpanIDFrom(lctx)
	local.Graft(hopID, wire, 0)
	endHop("status", "200")

	spans := local.Spans()
	byName := map[string]SpanInfo{}
	ids := map[int64]SpanInfo{}
	for _, s := range spans {
		byName[s.Name] = s
		ids[s.ID] = s
	}
	root, ok := byName["worker.request"]
	if !ok {
		t.Fatal("grafted root missing")
	}
	if root.Parent != hopID {
		t.Errorf("grafted root parent = %d, want hop span %d", root.Parent, hopID)
	}
	child := byName["worker.eval"]
	if child.Parent != root.ID {
		t.Errorf("grafted child parent = %d, want remapped root %d", child.Parent, root.ID)
	}
	for _, s := range spans {
		if s.Parent != 0 {
			if _, ok := ids[s.Parent]; !ok {
				t.Errorf("span %q has dangling parent %d", s.Name, s.Parent)
			}
		}
	}
}

func TestGraftClockOffsetShiftsStarts(t *testing.T) {
	sentAt := time.Now()
	// A remote span stamped one hour in the "future" relative to the
	// caller's clock.
	skew := time.Hour
	wire := []WireSpan{{ID: 1, Name: "w", Start: sentAt.Add(skew).UnixNano(), Dur: int64(time.Millisecond)}}
	off := ClockOffset(sentAt, 3*time.Millisecond, wire)
	local := NewTrace("local")
	local.Graft(0, wire, off)
	got := local.Spans()[0].Start
	if d := got.Sub(sentAt); d < 0 || d > 10*time.Millisecond {
		t.Errorf("grafted span lands %v after send, want within the rtt", d)
	}
}

func TestEncodeDecodeSpans(t *testing.T) {
	spans := []WireSpan{
		{ID: 1, Name: "a", Start: 100, Dur: 50, Args: []string{"k", "v"}},
		{ID: 2, Parent: 1, Name: "b", Start: 120, Dur: 10},
	}
	got, err := DecodeSpans(EncodeSpans(spans))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "a" || got[1].Parent != 1 || got[0].Args[1] != "v" {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if s, err := DecodeSpans(""); err != nil || s != nil {
		t.Errorf("empty token: got %v, %v", s, err)
	}
	if _, err := DecodeSpans("not base64!!"); err == nil {
		t.Error("want error for invalid base64")
	}
}

func TestStartSpanArgsExtras(t *testing.T) {
	tr := NewTrace("t")
	ctx := WithTrace(context.Background(), tr)
	_, end := StartSpanArgs(ctx, "cluster.pool_attempt", "hedge", "true")
	end("outcome", "ok")
	s := tr.Spans()[0]
	want := []string{"hedge", "true", "outcome", "ok"}
	if len(s.Args) != len(want) {
		t.Fatalf("args = %v, want %v", s.Args, want)
	}
	for i := range want {
		if s.Args[i] != want[i] {
			t.Fatalf("args = %v, want %v", s.Args, want)
		}
	}
}

func TestTraceStoreRetention(t *testing.T) {
	st := NewTraceStore(4)
	add := func(id string, errFlag, keep bool) {
		st.Add(NewTrace(id), TraceMeta{ID: id, Kind: "request", Route: "/v1/predict", Err: errFlag, Keep: keep, Start: time.Now()})
	}
	// Errors and kept traces survive arbitrary sampled churn.
	add("err-1", true, false)
	add("keep-1", false, true)
	for i := 0; i < 100; i++ {
		add(NewTraceID(), false, false)
	}
	if _, _, ok := st.Get("err-1"); !ok {
		t.Error("error trace evicted by sampled churn")
	}
	if _, _, ok := st.Get("keep-1"); !ok {
		t.Error("kept trace evicted by sampled churn")
	}
	sums := st.Snapshot("")
	classes := map[string]int{}
	for _, s := range sums {
		classes[s.Class]++
	}
	if classes["sampled"] > 4 {
		t.Errorf("reservoir holds %d traces, cap 4", classes["sampled"])
	}
	// FIFO within the error class.
	for i := 0; i < 6; i++ {
		add(NewTraceID()+"-err", true, false)
	}
	if _, _, ok := st.Get("err-1"); ok {
		t.Error("oldest error not evicted FIFO at capacity")
	}
	// Route filter.
	st.Add(NewTrace("other-route"), TraceMeta{ID: "other-route", Kind: "request", Route: "/v1/search", Err: true, Start: time.Now()})
	for _, s := range st.Snapshot("/v1/search") {
		if s.Route != "/v1/search" {
			t.Errorf("route filter leaked %q", s.Route)
		}
	}
}

func TestTraceStoreHandler(t *testing.T) {
	st := NewTraceStore(8)
	tr := NewTrace("handler-trace")
	ctx := WithTrace(context.Background(), tr)
	_, end := StartSpanCtx(ctx, "serve.search")
	end()
	st.Add(tr, TraceMeta{ID: "handler-trace", Kind: "request", Route: "/v1/search", Status: 200, Start: time.Now(), Dur: time.Millisecond})

	h := st.Handler()
	get := func(url string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		return rec
	}
	if rec := get("/tracez?format=json"); !strings.Contains(rec.Body.String(), `"id":"handler-trace"`) {
		t.Errorf("list json missing trace: %s", rec.Body.String())
	}
	if rec := get("/tracez?id=handler-trace&format=json"); !strings.Contains(rec.Body.String(), `"name":"serve.search"`) {
		t.Errorf("detail json missing span: %s", rec.Body.String())
	}
	if rec := get("/tracez?id=handler-trace&format=chrome"); !strings.Contains(rec.Body.String(), `"traceEvents"`) {
		t.Errorf("chrome export malformed: %s", rec.Body.String())
	}
	if rec := get("/tracez"); !strings.Contains(rec.Body.String(), "handler-trace") {
		t.Error("html list missing trace")
	}
	if rec := get("/tracez?id=nope"); rec.Code != 404 {
		t.Errorf("missing trace: code %d, want 404", rec.Code)
	}
}

func TestHistogramExemplarExposition(t *testing.T) {
	Reset()
	defer Reset()
	h := NewHistogram("test.exemplar_seconds", []float64{0.1, 1})
	h.ObserveWithExemplar(0.05, "trace-abc")
	h.Observe(0.5) // no exemplar on this bucket
	var b strings.Builder
	if err := WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `# {trace_id="trace-abc"} 0.05`) {
		t.Errorf("exposition missing exemplar:\n%s", out)
	}
	if ex, ok := h.LatestExemplar(); !ok || ex.TraceID != "trace-abc" {
		t.Errorf("LatestExemplar = %+v, %v", ex, ok)
	}
}
