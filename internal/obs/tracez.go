package obs

import (
	"encoding/json"
	"fmt"
	"html/template"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// TraceStore is a bounded in-memory store behind /tracez with
// tail-based retention: the keep/drop decision happens after the
// request finishes, when its outcome is known. Three classes, each
// capped at the store size — errors are always kept (FIFO within the
// class), traces the caller flags Keep (latency outliers past the
// windowed p99, background retrains) likewise, and everything else goes
// through a reservoir sample so the boring majority is represented
// without unbounded memory.
type TraceStore struct {
	cap int

	mu      sync.Mutex
	errors  []storedTrace // newest last, FIFO eviction
	kept    []storedTrace // newest last, FIFO eviction
	sampled []storedTrace // reservoir (algorithm R)
	offered int64         // traces offered to the reservoir so far
	rng     *rand.Rand
}

type storedTrace struct {
	meta TraceMeta
	tr   *Trace
}

// TraceMeta is the retention-relevant summary of one finished trace.
type TraceMeta struct {
	ID     string
	Kind   string // "request" or "retrain"
	Route  string // route label (requests) or model name (retrains)
	Status int    // HTTP status; 0 when not applicable
	Start  time.Time
	Dur    time.Duration
	Err    bool // errors are always retained
	Keep   bool // forced retention: latency outlier, retrain
}

// NewTraceStore builds a store keeping up to size traces per retention
// class (minimum 1).
func NewTraceStore(size int) *TraceStore {
	if size < 1 {
		size = 1
	}
	return &TraceStore{cap: size, rng: rand.New(rand.NewSource(time.Now().UnixNano()))}
}

// Add offers a finished trace for retention. Nil traces are ignored.
func (s *TraceStore) Add(tr *Trace, meta TraceMeta) {
	if s == nil || tr == nil {
		return
	}
	st := storedTrace{meta: meta, tr: tr}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case meta.Err:
		s.errors = appendFIFO(s.errors, st, s.cap)
	case meta.Keep:
		s.kept = appendFIFO(s.kept, st, s.cap)
	default:
		s.offered++
		if len(s.sampled) < s.cap {
			s.sampled = append(s.sampled, st)
		} else if j := s.rng.Int63n(s.offered); j < int64(s.cap) {
			s.sampled[j] = st
		}
	}
}

func appendFIFO(list []storedTrace, st storedTrace, cap int) []storedTrace {
	list = append(list, st)
	if len(list) > cap {
		copy(list, list[1:])
		list = list[:len(list)-1]
	}
	return list
}

// Get returns the stored trace with the given ID.
func (s *TraceStore) Get(id string) (*Trace, TraceMeta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, class := range [][]storedTrace{s.errors, s.kept, s.sampled} {
		// Newest first so a recycled request ID resolves to the latest trace.
		for i := len(class) - 1; i >= 0; i-- {
			if class[i].meta.ID == id {
				return class[i].tr, class[i].meta, true
			}
		}
	}
	return nil, TraceMeta{}, false
}

// TraceSummary is the /tracez list-view row.
type TraceSummary struct {
	ID     string  `json:"id"`
	Kind   string  `json:"kind"`
	Route  string  `json:"route,omitempty"`
	Status int     `json:"status,omitempty"`
	Class  string  `json:"class"` // error | kept | sampled
	Start  string  `json:"start"`
	DurMS  float64 `json:"dur_ms"`
	Spans  int     `json:"spans"`
}

// collect snapshots the stored traces passing accept (errors, then
// kept, then sampled; newest first within each class), tagged with
// their class name.
func (s *TraceStore) collect(accept func(TraceMeta) bool) []classedTrace {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]classedTrace, 0, len(s.errors)+len(s.kept)+len(s.sampled))
	for _, c := range []struct {
		name string
		list []storedTrace
	}{{"error", s.errors}, {"kept", s.kept}, {"sampled", s.sampled}} {
		for i := len(c.list) - 1; i >= 0; i-- {
			if accept == nil || accept(c.list[i].meta) {
				out = append(out, classedTrace{c.list[i], c.name})
			}
		}
	}
	return out
}

type classedTrace struct {
	storedTrace
	class string
}

func (c classedTrace) summary() TraceSummary {
	return TraceSummary{
		ID:     c.meta.ID,
		Kind:   c.meta.Kind,
		Route:  c.meta.Route,
		Status: c.meta.Status,
		Class:  c.class,
		Start:  c.meta.Start.UTC().Format(time.RFC3339Nano),
		DurMS:  float64(c.meta.Dur) / float64(time.Millisecond),
		Spans:  c.tr.Len(),
	}
}

// Snapshot lists retained traces (errors, then kept, then sampled;
// newest first within each class), optionally filtered by route.
func (s *TraceStore) Snapshot(route string) []TraceSummary {
	return summaries(s.collect(func(m TraceMeta) bool {
		return route == "" || m.Route == route
	}))
}

// Search lists retained traces matching the /tracez?q= query language:
// an exact trace ID, the keyword "error" (error-class traces), a
// "min_ms:<n>" duration floor, or a route substring. An empty query
// matches everything.
func (s *TraceStore) Search(q string) []TraceSummary {
	return summaries(s.collect(func(m TraceMeta) bool { return matchTrace(m, q) }))
}

func summaries(list []classedTrace) []TraceSummary {
	out := make([]TraceSummary, len(list))
	for i, c := range list {
		out[i] = c.summary()
	}
	return out
}

// matchTrace implements the shared trace query language (see Search).
func matchTrace(m TraceMeta, q string) bool {
	q = strings.TrimSpace(q)
	switch {
	case q == "":
		return true
	case q == m.ID:
		return true
	case q == "error":
		return m.Err || m.Status >= 500
	case strings.HasPrefix(q, "min_ms:"):
		v, err := strconv.ParseFloat(strings.TrimPrefix(q, "min_ms:"), 64)
		return err == nil && float64(m.Dur)/float64(time.Millisecond) >= v
	default:
		return m.Route != "" && strings.Contains(m.Route, q)
	}
}

// WireTrace is one retained trace exported for cross-role federation:
// its list-view summary plus its full span forest in wire form, span
// IDs preserved so a federating reader can re-graft it.
type WireTrace struct {
	Summary TraceSummary `json:"summary"`
	Spans   []WireSpan   `json:"spans"`
}

// WireExport is the /tracez?format=wire payload: the matching traces
// plus the exporter's clock at export time, so the reader can estimate
// one clock offset for the whole batch.
type WireExport struct {
	NowUnixNS int64       `json:"now_unix_ns"`
	Traces    []WireTrace `json:"traces"`
}

// WireTraces exports every retained trace matching q (Search's query
// language) in wire form.
func (s *TraceStore) WireTraces(q string) WireExport {
	list := s.collect(func(m TraceMeta) bool { return matchTrace(m, q) })
	out := WireExport{NowUnixNS: time.Now().UnixNano(), Traces: make([]WireTrace, len(list))}
	for i, c := range list {
		out.Traces[i] = WireTrace{Summary: c.summary(), Spans: c.tr.Export(0)}
	}
	return out
}

// Handler serves the store: HTML list by default, ?format=json for the
// machine view (&route= exact-filters, &q= searches: trace ID |
// "error" | min_ms:<n> | route substring), ?format=wire for the
// federation export (full span forests), ?id= for one trace (HTML span
// tree, &format=json, &format=chrome for a chrome://tracing download,
// or &format=wire for its raw span forest).
func (s *TraceStore) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		q := r.URL.Query()
		if id := q.Get("id"); id != "" {
			s.serveTrace(w, id, q.Get("format"))
			return
		}
		query := q.Get("q")
		var sums []TraceSummary
		if query != "" {
			sums = s.Search(query)
		} else {
			sums = s.Snapshot(q.Get("route"))
		}
		switch q.Get("format") {
		case "wire":
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(s.WireTraces(query))
		case "json":
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(struct {
				Traces []TraceSummary `json:"traces"`
			}{sums})
		default:
			w.Header().Set("Content-Type", "text/html; charset=utf-8")
			tracezTmpl.Execute(w, struct {
				Traces []TraceSummary
				Query  string
				Now    string
			}{sums, query, time.Now().UTC().Format(time.RFC3339)})
		}
	})
}

// spanRow is one span in the detail views, pre-ordered depth-first.
type spanRow struct {
	ID       int64    `json:"id"`
	Parent   int64    `json:"parent,omitempty"`
	Name     string   `json:"name"`
	OffsetUS int64    `json:"offset_us"` // start relative to earliest span
	DurUS    int64    `json:"dur_us"`
	Depth    int      `json:"depth"`
	Args     []string `json:"args,omitempty"`
}

func (s *TraceStore) serveTrace(w http.ResponseWriter, id, format string) {
	tr, meta, ok := s.Get(id)
	if !ok {
		http.Error(w, "trace not found", http.StatusNotFound)
		return
	}
	switch format {
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", "trace-"+id+".json"))
		tr.WriteChromeTrace(w)
	case "wire":
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(WireExport{
			NowUnixNS: time.Now().UnixNano(),
			Traces: []WireTrace{{
				Summary: classedTrace{storedTrace{meta: meta, tr: tr}, ""}.summary(),
				Spans:   tr.Export(0),
			}},
		})
	case "json":
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			ID     string    `json:"id"`
			Kind   string    `json:"kind"`
			Route  string    `json:"route,omitempty"`
			Status int       `json:"status,omitempty"`
			Start  string    `json:"start"`
			DurMS  float64   `json:"dur_ms"`
			Spans  []spanRow `json:"spans"`
		}{
			ID: meta.ID, Kind: meta.Kind, Route: meta.Route, Status: meta.Status,
			Start: meta.Start.UTC().Format(time.RFC3339Nano),
			DurMS: float64(meta.Dur) / float64(time.Millisecond),
			Spans: spanTree(tr),
		})
	default:
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		tracezDetailTmpl.Execute(w, struct {
			Meta  TraceMeta
			Start string
			DurMS float64
			Spans []spanRow
		}{meta, meta.Start.UTC().Format(time.RFC3339Nano), float64(meta.Dur) / float64(time.Millisecond), spanTree(tr)})
	}
}

// spanTree orders a trace's spans depth-first (children under parents,
// siblings by start time) and annotates depth for indentation. Spans
// whose parent is missing are treated as roots, matching
// WriteChromeTrace.
func spanTree(tr *Trace) []spanRow {
	spans := tr.Spans()
	if len(spans) == 0 {
		return nil
	}
	min := spans[0].Start
	ids := make(map[int64]bool, len(spans))
	for _, s := range spans {
		ids[s.ID] = true
		if s.Start.Before(min) {
			min = s.Start
		}
	}
	children := make(map[int64][]SpanInfo)
	var roots []SpanInfo
	for _, s := range spans {
		if s.Parent != 0 && ids[s.Parent] {
			children[s.Parent] = append(children[s.Parent], s)
		} else {
			roots = append(roots, s)
		}
	}
	byStart := func(list []SpanInfo) {
		sort.Slice(list, func(i, j int) bool { return list[i].Start.Before(list[j].Start) })
	}
	byStart(roots)
	out := make([]spanRow, 0, len(spans))
	var walk func(s SpanInfo, depth int)
	walk = func(s SpanInfo, depth int) {
		out = append(out, spanRow{
			ID: s.ID, Parent: s.Parent, Name: s.Name,
			OffsetUS: s.Start.Sub(min).Microseconds(),
			DurUS:    s.Dur.Microseconds(),
			Depth:    depth,
			Args:     s.Args,
		})
		cs := children[s.ID]
		byStart(cs)
		for _, c := range cs {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	return out
}

var tracezFuncs = template.FuncMap{
	"indent": func(depth int) template.CSS {
		return template.CSS(fmt.Sprintf("padding-left:%dpx", 8+depth*18))
	},
	"join": func(args []string) string {
		if len(args) == 0 {
			return ""
		}
		var b strings.Builder
		for i := 0; i+1 < len(args); i += 2 {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%s=%s", args[i], args[i+1])
		}
		if len(args)%2 == 1 {
			if b.Len() > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(args[len(args)-1])
		}
		return b.String()
	},
}

var tracezTmpl = template.Must(template.New("tracez").Funcs(tracezFuncs).Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>tracez</title>
<style>
body{font-family:ui-monospace,SFMono-Regular,Menlo,monospace;font-size:13px;margin:24px;color:#222}
h1{font-size:18px} h2{font-size:15px;margin-top:24px}
table{border-collapse:collapse;margin-top:8px}
td,th{border:1px solid #ccc;padding:3px 8px;text-align:left}
th{background:#f2f2f2}
.ok{color:#0a0} .bad{color:#c00;font-weight:bold} .muted{color:#888}
a{color:#06c;text-decoration:none} a:hover{text-decoration:underline}
</style></head><body>
<h1>tracez</h1>
<p class="muted">retained traces, tail-sampled · {{.Now}} · <a href="/tracez?format=json">json</a> · <a href="/statusz">statusz</a></p>
<form method="get" action="/tracez"><input name="q" value="{{.Query}}" size="40" placeholder="trace id | error | min_ms:25 | route substring"> <input type="submit" value="search"></form>
<table>
<tr><th>trace</th><th>class</th><th>kind</th><th>route</th><th>status</th><th>start</th><th>ms</th><th>spans</th><th></th></tr>
{{range .Traces}}<tr>
<td><a href="/tracez?id={{.ID}}">{{.ID}}</a></td>
<td>{{if eq .Class "error"}}<span class="bad">{{.Class}}</span>{{else}}{{.Class}}{{end}}</td>
<td>{{.Kind}}</td><td>{{.Route}}</td>
<td>{{if .Status}}{{if ge .Status 500}}<span class="bad">{{.Status}}</span>{{else}}<span class="ok">{{.Status}}</span>{{end}}{{else}}<span class="muted">-</span>{{end}}</td>
<td class="muted">{{.Start}}</td><td>{{printf "%.2f" .DurMS}}</td><td>{{.Spans}}</td>
<td><a href="/tracez?id={{.ID}}&amp;format=chrome">chrome</a></td>
</tr>{{else}}<tr><td colspan="9" class="muted">no traces retained yet</td></tr>{{end}}
</table>
</body></html>
`))

var tracezDetailTmpl = template.Must(template.New("tracezDetail").Funcs(tracezFuncs).Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>trace {{.Meta.ID}}</title>
<style>
body{font-family:ui-monospace,SFMono-Regular,Menlo,monospace;font-size:13px;margin:24px;color:#222}
h1{font-size:18px}
table{border-collapse:collapse;margin-top:8px}
td,th{border:1px solid #ccc;padding:3px 8px;text-align:left}
th{background:#f2f2f2}
.muted{color:#888}
a{color:#06c;text-decoration:none} a:hover{text-decoration:underline}
</style></head><body>
<h1>trace {{.Meta.ID}}</h1>
<p class="muted">{{.Meta.Kind}} {{.Meta.Route}}{{if .Meta.Status}} · status {{.Meta.Status}}{{end}} · {{.Start}} · {{printf "%.2f" .DurMS}} ms ·
<a href="/tracez?id={{.Meta.ID}}&amp;format=json">json</a> ·
<a href="/tracez?id={{.Meta.ID}}&amp;format=chrome">chrome export</a> ·
<a href="/tracez">back</a></p>
<table>
<tr><th>span</th><th>offset µs</th><th>dur µs</th><th>args</th></tr>
{{range .Spans}}<tr>
<td style="{{indent .Depth}}">{{.Name}}</td>
<td>{{.OffsetUS}}</td><td>{{.DurUS}}</td>
<td class="muted">{{join .Args}}</td>
</tr>{{end}}
</table>
</body></html>
`))
