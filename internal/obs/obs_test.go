package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrentAdds(t *testing.T) {
	Reset()
	c := NewCounter("test.concurrent")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if c.Name() != "test.concurrent" {
		t.Fatalf("name = %q", c.Name())
	}
}

func TestNewCounterDedupesNames(t *testing.T) {
	a := NewCounter("test.dedupe")
	b := NewCounter("test.dedupe")
	if a != b {
		t.Fatal("duplicate registration returned a distinct counter")
	}
	Reset()
	a.Add(3)
	if b.Value() != 3 {
		t.Fatalf("aliased counter sees %d, want 3", b.Value())
	}
}

func TestSpanRecordsWhenEnabled(t *testing.T) {
	Enable()
	defer Disable()
	Reset()
	for i := 0; i < 3; i++ {
		end := StartSpan("test.stage")
		time.Sleep(time.Millisecond)
		end()
	}
	st, ok := Snapshot().Stages["test.stage"]
	if !ok {
		t.Fatal("span not recorded")
	}
	if st.Count != 3 {
		t.Fatalf("span count = %d, want 3", st.Count)
	}
	if st.TotalSec <= 0 || st.MaxSec <= 0 || st.MaxSec > st.TotalSec {
		t.Fatalf("implausible span timing: %+v", st)
	}
}

func TestSpanConcurrent(t *testing.T) {
	Enable()
	defer Disable()
	Reset()
	const workers, per = 8, 50
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				StartSpan("test.parallel")()
			}
		}()
	}
	wg.Wait()
	if st := Snapshot().Stages["test.parallel"]; st.Count != workers*per {
		t.Fatalf("span count = %d, want %d", st.Count, workers*per)
	}
}

func TestSpanNoopWhenDisabled(t *testing.T) {
	Disable()
	Reset()
	StartSpan("test.ghost")()
	if _, ok := Snapshot().Stages["test.ghost"]; ok {
		t.Fatal("disabled span recorded a stage")
	}
	if Enabled() {
		t.Fatal("Enabled() = true after Disable")
	}
}

func TestReportRoundTrip(t *testing.T) {
	Enable()
	defer Disable()
	Reset()
	NewCounter("test.roundtrip").Add(7)
	StartSpan("test.rt_stage")()
	rep := Snapshot()
	rep.Meta = map[string]string{"cmd": "test", "scale": "quick"}

	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Host != rep.Host {
		t.Fatalf("host diverged: %+v vs %+v", got.Host, rep.Host)
	}
	if got.Counters["test.roundtrip"] != 7 {
		t.Fatalf("counter lost: %v", got.Counters)
	}
	if _, ok := got.Stages["test.rt_stage"]; !ok {
		t.Fatalf("stage lost: %v", got.Stages)
	}
	if got.Meta["scale"] != "quick" {
		t.Fatalf("meta lost: %v", got.Meta)
	}
	if got.Host.CPUs < 1 || got.Host.GoVersion == "" {
		t.Fatalf("host info not populated: %+v", got.Host)
	}
}

func TestReadReportRejectsBadInput(t *testing.T) {
	if _, err := ReadReport(strings.NewReader("not json")); err == nil {
		t.Fatal("expected error for non-JSON input")
	}
	if _, err := ReadReport(strings.NewReader(`{"format": 99}`)); err == nil {
		t.Fatal("expected error for unknown format")
	}
}

func TestSnapshotIncludesZeroCounters(t *testing.T) {
	Reset()
	NewCounter("test.zero")
	if v, ok := Snapshot().Counters["test.zero"]; !ok || v != 0 {
		t.Fatalf("zero counter missing from snapshot (ok=%v v=%d)", ok, v)
	}
}

func TestResetClearsState(t *testing.T) {
	Enable()
	defer Disable()
	c := NewCounter("test.reset")
	c.Add(5)
	StartSpan("test.reset_stage")()
	Reset()
	if c.Value() != 0 {
		t.Fatalf("counter survived reset: %d", c.Value())
	}
	rep := Snapshot()
	if len(rep.Stages) != 0 {
		t.Fatalf("stages survived reset: %v", rep.Stages)
	}
	if rep.WallSec < 0 || rep.WallSec > 60 {
		t.Fatalf("run clock not restarted: %v", rep.WallSec)
	}
}

func TestProgressEmitsCounterLines(t *testing.T) {
	Reset()
	NewCounter("test.progress").Add(42)
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	stop := StartProgress(w, 5*time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		s := buf.String()
		mu.Unlock()
		if strings.Contains(s, "test.progress=42") {
			break
		}
		if time.Now().After(deadline) {
			stop()
			t.Fatalf("no progress line within deadline; got %q", s)
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent
	mu.Lock()
	line := buf.String()
	mu.Unlock()
	if !strings.HasPrefix(line, "obs:") {
		t.Fatalf("progress line missing prefix: %q", line)
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// The no-sink fast path must stay negligible: an Inc is one atomic add,
// and a disabled span is one atomic load plus a shared no-op closure.
func BenchmarkCounterInc(b *testing.B) {
	c := NewCounter("bench.counter")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkSpanDisabled(b *testing.B) {
	Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		StartSpan("bench.disabled")()
	}
}

func BenchmarkSpanEnabled(b *testing.B) {
	Enable()
	defer Disable()
	Reset()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		StartSpan("bench.enabled")()
	}
}

// TestSnapshotConcurrent proves Snapshot is safe to call while counters
// and spans are being recorded from other goroutines — the /metricz
// handler of the serving layer does exactly that on a live server.
func TestSnapshotConcurrent(t *testing.T) {
	Reset()
	Enable()
	defer Disable()
	c := NewCounter("obs.test_snapshot_storm")
	const workers, iters = 4, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				StartSpan("obs.test_snapshot_span")()
			}
		}()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				rep := Snapshot()
				if rep.Counters["obs.test_snapshot_storm"] < 0 {
					t.Error("negative counter in snapshot")
					return
				}
			}
		}()
	}
	wg.Wait()
	rep := Snapshot()
	if got := rep.Counters["obs.test_snapshot_storm"]; got != workers*iters {
		t.Fatalf("final counter %d, want %d", got, workers*iters)
	}
	span := rep.Stages["obs.test_snapshot_span"]
	if span.Count != workers*iters {
		t.Fatalf("final span count %d, want %d", span.Count, workers*iters)
	}
	if span.TotalSec < 0 || span.MaxSec > span.TotalSec {
		t.Fatalf("incoherent span stats %+v", span)
	}
}
