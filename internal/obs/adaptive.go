package obs

import (
	"hash/fnv"
	"math"
	"sync"
	"sync/atomic"
)

// SLO-burn-adaptive head sampling. A fixed head-sampling rate trades
// visibility for overhead at build time; an incident is exactly when
// the trade is wrong. AdaptiveSampler keeps the deterministic
// hash-vs-threshold decision of Sampler but lets a controller ramp the
// rate (bounded, with hysteresis) while SLO burn fires and decay it
// back once resolved.
//
// Determinism guarantee: the per-request decision is still
// FNV-64a(request id) < threshold, computed once at the edge and
// propagated via the Traceparent sampled bit — so at any fixed rate
// the decision for a given request ID is deterministic across
// replicas, and because the hash is fixed and the threshold is
// monotone in the rate, *raising* the rate only ever adds traces: any
// request sampled at rate r is also sampled at every r' > r. Adaptive
// ramping therefore changes only how many traces are kept, never which
// bodies are produced (tracing rides in trailers/response fields) nor
// how a given request would have been decided at the same rate.

// HeadSampler is the sampling decision the tracing middlewares consult
// once per request at the edge. Sampler (static) and *AdaptiveSampler
// (SLO-burn-driven) both implement it.
type HeadSampler interface {
	// Sample decides whether the request with this ID is traced.
	Sample(id string) bool
	// Rate reports the current effective sampling rate in [0, 1].
	Rate() float64
}

// sampleThreshold maps a keep-fraction to the hash-space threshold.
func sampleThreshold(rate float64) uint64 {
	switch {
	case rate >= 1:
		return math.MaxUint64
	case rate <= 0:
		return 0
	default:
		return uint64(rate * float64(math.MaxUint64))
	}
}

// sampleHit is the shared deterministic decision: FNV-64a of the
// request ID against a threshold.
func sampleHit(id string, threshold uint64) bool {
	switch threshold {
	case math.MaxUint64:
		return true
	case 0:
		return false
	}
	h := fnv.New64a()
	h.Write([]byte(id))
	return h.Sum64() < threshold
}

// minRampRate is where an adaptive ramp starts when the base rate is
// zero (tracing off until an incident): 1/64 of requests, doubling
// from there.
const minRampRate = 1.0 / 64

// DefSamplerHysteresis is how many consecutive clear (non-burning)
// controller ticks must pass before an adaptive sampler starts
// decaying back toward its base rate.
const DefSamplerHysteresis = 3

// AdaptiveSampler is a HeadSampler whose rate moves between a base and
// a max under controller ticks: ×2 per burning tick (bounded by max),
// ÷2 per clear tick after the hysteresis period (floored at base).
// Sample is lock-free; Tick is called by one controller goroutine.
type AdaptiveSampler struct {
	base, max  float64
	hysteresis int

	threshold atomic.Uint64 // current decision threshold, read by Sample
	rateBits  atomic.Uint64 // float64 bits of the current rate, read by Rate

	mu    sync.Mutex // serializes Tick transitions
	clear int        // consecutive non-burning ticks
}

// NewAdaptiveSampler builds a sampler starting (and bottoming out) at
// base, ramping at most to max while burn fires. Rates clamp to
// [0, 1]; max below base means "never ramp" (a static sampler with
// rate gauge). hysteresis <= 0 selects DefSamplerHysteresis.
func NewAdaptiveSampler(base, max float64, hysteresis int) *AdaptiveSampler {
	base = clampRate(base)
	max = clampRate(max)
	if max < base {
		max = base
	}
	if hysteresis <= 0 {
		hysteresis = DefSamplerHysteresis
	}
	a := &AdaptiveSampler{base: base, max: max, hysteresis: hysteresis}
	a.setRate(base)
	return a
}

func clampRate(r float64) float64 {
	switch {
	case r < 0 || math.IsNaN(r):
		return 0
	case r > 1:
		return 1
	default:
		return r
	}
}

func (a *AdaptiveSampler) setRate(r float64) {
	a.rateBits.Store(math.Float64bits(r))
	a.threshold.Store(sampleThreshold(r))
}

// Sample decides whether the request with this ID is traced, at the
// rate current when the request arrives. One atomic load plus the
// shared hash: deterministic at any fixed rate, monotone in the rate.
func (a *AdaptiveSampler) Sample(id string) bool {
	return sampleHit(id, a.threshold.Load())
}

// Rate reports the current effective sampling rate.
func (a *AdaptiveSampler) Rate() float64 {
	return math.Float64frombits(a.rateBits.Load())
}

// Base returns the configured resting rate.
func (a *AdaptiveSampler) Base() float64 { return a.base }

// Max returns the configured ramp ceiling.
func (a *AdaptiveSampler) Max() float64 { return a.max }

// Tick advances the control loop one step. burning is the multi-window
// SLO-burn signal (any relevant SLO firing). While burning the rate
// doubles each tick up to max (starting from minRampRate when the base
// is zero); each burning tick also resets the hysteresis countdown.
// Once burn clears, the rate holds for hysteresis ticks (so a flapping
// signal does not saw the rate), then halves each tick until it
// reaches the base again. Returns the rate in effect after the step.
func (a *AdaptiveSampler) Tick(burning bool) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	rate := a.Rate()
	if burning {
		a.clear = 0
		next := rate * 2
		if next < minRampRate {
			next = minRampRate
		}
		if next > a.max {
			next = a.max
		}
		if next > rate {
			a.setRate(next)
			rate = next
		}
		return rate
	}
	if rate <= a.base {
		a.clear = 0
		return rate
	}
	a.clear++
	if a.clear < a.hysteresis {
		return rate
	}
	next := rate / 2
	if next <= a.base || next < minRampRate/2 {
		next = a.base
	}
	a.setRate(next)
	return next
}
