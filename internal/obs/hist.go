package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ExponentialBuckets returns n log-spaced upper bounds starting at start
// and growing by factor: start, start·factor, …, start·factor^(n-1).
// These are histogram bucket *boundaries*; a histogram built from them
// has n+1 buckets (the last catches every observation above the final
// bound, the Prometheus "+Inf" bucket).
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("obs: ExponentialBuckets(%g, %g, %d): need start > 0, factor > 1, n >= 1", start, factor, n))
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// DefLatencyBuckets is the default latency histogram layout: 20
// log-spaced bounds from 100µs to ~52s (factor 2), wide enough to cover
// a cached prediction and a simulator-verified search in one histogram.
var DefLatencyBuckets = ExponentialBuckets(100e-6, 2, 20)

// Histogram is a fixed-bucket histogram with lock-free atomic bucket
// counts. Observe is a binary search over the (immutable) bounds plus
// three atomic adds, safe for hot paths; every observation lands in
// exactly one bucket, so the sum of bucket counts equals the observation
// count under any concurrency. Histograms created by a HistogramVec
// additionally carry labels.
type Histogram struct {
	name      string
	labels    []Label
	bounds    []float64 // strictly increasing upper bounds; implicit +Inf last
	buckets   []atomic.Int64
	count     atomic.Int64
	sumBits   atomic.Uint64 // float64 bits of the running sum, CAS-updated
	exemplars []atomic.Pointer[exemplar]
}

// exemplar is one bucket's most recent traced observation — the
// OpenMetrics "# {trace_id=...}" annotation linking a latency bucket to
// a trace in the /tracez store.
type exemplar struct {
	traceID string
	value   float64
	unixMs  int64
}

// Exemplar is the exported view of a bucket exemplar.
type Exemplar struct {
	TraceID string
	Value   float64
	Time    time.Time
}

func newHistogram(name string, bounds []float64, labels []Label) *Histogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets
	}
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("obs: histogram %q bounds are not sorted", name))
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{
		name: name, labels: labels, bounds: b,
		buckets:   make([]atomic.Int64, len(b)+1),
		exemplars: make([]atomic.Pointer[exemplar], len(b)+1),
	}
}

// NewHistogram registers a named histogram with the given upper bounds
// (DefLatencyBuckets when nil). Duplicate names return the existing
// histogram.
func NewHistogram(name string, bounds []float64) *Histogram {
	return lookup(name, func() *Histogram { return newHistogram(name, bounds, nil) })
}

// Name returns the histogram's registered name (without labels).
func (h *Histogram) Name() string { return h.name }

// displayName is the report key: name plus rendered labels.
func (h *Histogram) displayName() string { return h.name + labelString(h.labels) }

// Bounds returns the bucket upper bounds (shared; do not mutate).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// Observe records one value.
func (h *Histogram) Observe(v float64) { h.observe(v) }

// ObserveWithExemplar records one value and stamps its bucket with the
// trace that produced it, so /metricz exposition can point at a
// concrete trace per latency band. A single atomic pointer swap on top
// of Observe; empty trace IDs record no exemplar.
func (h *Histogram) ObserveWithExemplar(v float64, traceID string) {
	i := h.observe(v)
	if traceID != "" {
		h.exemplars[i].Store(&exemplar{traceID: traceID, value: v, unixMs: time.Now().UnixMilli()})
	}
}

// observe adds v and returns the index of the bucket it landed in.
func (h *Histogram) observe(v float64) int {
	// First index whose bound is >= v, i.e. the smallest bucket whose
	// "le" upper bound admits v; values above every bound land in the
	// overflow (+Inf) bucket.
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return i
		}
	}
}

// exemplarAt returns bucket i's exemplar, or nil.
func (h *Histogram) exemplarAt(i int) *exemplar { return h.exemplars[i].Load() }

// LatestExemplar returns the most recently recorded exemplar across all
// buckets — the "recent trace" link on a /statusz route row.
func (h *Histogram) LatestExemplar() (Exemplar, bool) {
	var best *exemplar
	for i := range h.exemplars {
		if e := h.exemplars[i].Load(); e != nil && (best == nil || e.unixMs > best.unixMs) {
			best = e
		}
	}
	if best == nil {
		return Exemplar{}, false
	}
	return Exemplar{TraceID: best.traceID, Value: best.value, Time: time.UnixMilli(best.unixMs)}, true
}

// ObserveSince records the elapsed seconds since t0 — the latency idiom:
//
//	t0 := time.Now()
//	...
//	h.ObserveSince(t0)
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0).Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// bucketCounts snapshots the per-bucket counts (not cumulative).
func (h *Histogram) bucketCounts() []int64 {
	out := make([]int64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

func (h *Histogram) reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	for i := range h.exemplars {
		h.exemplars[i].Store(nil)
	}
	h.count.Store(0)
	h.sumBits.Store(0)
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// inside the bucket containing the target rank — the same estimate a
// Prometheus histogram_quantile() gives. Observations in the overflow
// bucket are attributed to the highest finite bound. Returns NaN for an
// empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	return quantile(q, h.bounds, h.bucketCounts())
}

func quantile(q float64, bounds []float64, counts []int64) float64 {
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		cum += c
		if float64(cum) < rank || c == 0 {
			continue
		}
		if i == len(bounds) {
			// Overflow bucket: no finite upper bound to interpolate
			// toward, so report the highest finite bound.
			return bounds[len(bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := bounds[i]
		frac := (rank - float64(cum-c)) / float64(c)
		return lo + (hi-lo)*frac
	}
	return bounds[len(bounds)-1]
}

// HistogramVec is a family of histograms sharing a name and bucket
// layout, distinguished by label values — e.g. per-route request
// latency. Children are created on first use and cached.
type HistogramVec struct {
	name   string
	keys   []string
	bounds []float64

	mu       sync.Mutex
	children map[string]*Histogram
	order    []*Histogram
}

// NewHistogramVec registers a labeled histogram family with the given
// upper bounds (DefLatencyBuckets when nil) and label keys. Duplicate
// names return the existing family.
func NewHistogramVec(name string, bounds []float64, keys ...string) *HistogramVec {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets
	}
	v := lookup(name, func() *HistogramVec {
		return &HistogramVec{name: name, keys: keys, bounds: bounds, children: map[string]*Histogram{}}
	})
	if len(v.keys) != len(keys) {
		panic(fmt.Sprintf("obs: histogram family %q re-registered with %d label keys, want %d", name, len(keys), len(v.keys)))
	}
	return v
}

// Name returns the family's registered name.
func (v *HistogramVec) Name() string { return v.name }

// With returns the child histogram for the given label values (one per
// registered key, in key order), creating it on first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.keys) {
		panic(fmt.Sprintf("obs: histogram family %q given %d label values, want %d", v.name, len(values), len(v.keys)))
	}
	key := strings.Join(values, "\xff")
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.children[key]
	if !ok {
		labels := make([]Label, len(values))
		for i := range values {
			labels[i] = Label{Key: v.keys[i], Value: values[i]}
		}
		h = newHistogram(v.name, v.bounds, labels)
		v.children[key] = h
		v.order = append(v.order, h)
	}
	return h
}

// snapshot returns the family's children in creation order.
func (v *HistogramVec) snapshot() []*Histogram {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]*Histogram, len(v.order))
	copy(out, v.order)
	return out
}

func (v *HistogramVec) reset() {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.children = map[string]*Histogram{}
	v.order = nil
}

// histogramSnapshot flattens plain histograms and family children, in
// registration order.
func histogramSnapshot() []*Histogram {
	registry.mu.Lock()
	order := make([]any, len(registry.order))
	copy(order, registry.order)
	registry.mu.Unlock()
	var out []*Histogram
	for _, m := range order {
		switch m := m.(type) {
		case *Histogram:
			out = append(out, m)
		case *HistogramVec:
			out = append(out, m.snapshot()...)
		}
	}
	return out
}

// gaugeValues snapshots every gauge (set-point and callback) keyed by
// name. Callbacks run outside the registry lock so they may consult
// other subsystems' locks freely.
func gaugeValues() map[string]float64 {
	registry.mu.Lock()
	order := make([]any, len(registry.order))
	copy(order, registry.order)
	registry.mu.Unlock()
	out := map[string]float64{}
	for _, m := range order {
		switch m := m.(type) {
		case *Gauge:
			out[m.name] = float64(m.v.Load())
		case *GaugeFunc:
			out[m.name] = m.Value()
		}
	}
	return out
}
