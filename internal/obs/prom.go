package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Prometheus text exposition (version 0.0.4) for every registered
// metric, so /metricz?format=prom is scrapeable by any standard
// collector.
//
// Naming scheme: the registered dotted name with every character outside
// [a-zA-Z0-9_:] replaced by '_' — "serve.http_request_seconds" becomes
// "serve_http_request_seconds". Counters keep their name as-is,
// histograms expand into the conventional _bucket{le=...}/_sum/_count
// series, and every span aggregate <name> is exported as
// <name>_calls_total, <name>_seconds_total, and <name>_seconds_max.

// PromContentType is the Content-Type of the exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName sanitizes a registered metric name for Prometheus.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabels renders a label set (optionally with an extra trailing
// label, used for histogram "le") as {k="v",...}, or "" when empty.
func promLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label{}, labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered counter, gauge, histogram,
// and span aggregate in the Prometheus text exposition format. Metrics
// appear in registration order (labeled children in creation order
// inside their family), spans last, sorted by name.
func WritePrometheus(w io.Writer) error {
	registry.mu.Lock()
	order := make([]any, len(registry.order))
	copy(order, registry.order)
	spanNames := make([]string, 0, len(registry.spans))
	for name := range registry.spans {
		spanNames = append(spanNames, name)
	}
	spans := make(map[string]*spanStats, len(registry.spans))
	for name, s := range registry.spans {
		spans[name] = s
	}
	registry.mu.Unlock()

	var b strings.Builder
	for _, m := range order {
		switch m := m.(type) {
		case *Counter:
			writePromCounter(&b, promName(m.name), []*Counter{m})
		case *CounterVec:
			writePromCounter(&b, promName(m.name), m.snapshot())
		case *Gauge:
			name := promName(m.name)
			fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", name, name, m.Value())
		case *GaugeFunc:
			name := promName(m.name)
			fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", name, name, promFloat(m.Value()))
		case *Histogram:
			writePromHistogram(&b, promName(m.name), []*Histogram{m})
		case *HistogramVec:
			writePromHistogram(&b, promName(m.name), m.snapshot())
		}
	}

	sort.Strings(spanNames)
	for _, name := range spanNames {
		s := spans[name]
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s_calls_total counter\n%s_calls_total %d\n",
			pn, pn, s.count.Load())
		fmt.Fprintf(&b, "# TYPE %s_seconds_total counter\n%s_seconds_total %s\n",
			pn, pn, promFloat(time.Duration(s.totalNs.Load()).Seconds()))
		fmt.Fprintf(&b, "# TYPE %s_seconds_max gauge\n%s_seconds_max %s\n",
			pn, pn, promFloat(time.Duration(s.maxNs.Load()).Seconds()))
	}

	_, err := io.WriteString(w, b.String())
	return err
}

func writePromCounter(b *strings.Builder, name string, children []*Counter) {
	fmt.Fprintf(b, "# TYPE %s counter\n", name)
	for _, c := range children {
		fmt.Fprintf(b, "%s%s %d\n", name, promLabels(c.labels), c.Value())
	}
}

func writePromHistogram(b *strings.Builder, name string, children []*Histogram) {
	fmt.Fprintf(b, "# TYPE %s histogram\n", name)
	for _, h := range children {
		counts := h.bucketCounts()
		var cum int64
		for i, c := range counts {
			cum += c
			le := "+Inf"
			if i < len(h.bounds) {
				le = promFloat(h.bounds[i])
			}
			fmt.Fprintf(b, "%s_bucket%s %d\n", name, promLabels(h.labels, Label{Key: "le", Value: le}), cum)
		}
		fmt.Fprintf(b, "%s_sum%s %s\n", name, promLabels(h.labels), promFloat(h.Sum()))
		fmt.Fprintf(b, "%s_count%s %d\n", name, promLabels(h.labels), cum)
	}
}
