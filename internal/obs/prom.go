package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Prometheus text exposition (version 0.0.4) for every registered
// metric, so /metricz?format=prom is scrapeable by any standard
// collector.
//
// Naming scheme: the registered dotted name with every character outside
// [a-zA-Z0-9_:] replaced by '_' — "serve.http_request_seconds" becomes
// "serve_http_request_seconds". Counters keep their name as-is,
// histograms expand into the conventional _bucket{le=...}/_sum/_count
// series, and every span aggregate <name> is exported as
// <name>_calls_total, <name>_seconds_total, and <name>_seconds_max.

// PromContentType is the Content-Type of the exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName sanitizes a registered metric name for Prometheus.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabels renders a label set (optionally with an extra trailing
// label, used for histogram "le") as {k="v",...}, or "" when empty.
func promLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label{}, labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered counter, gauge, histogram,
// and span aggregate in the Prometheus text exposition format. Metrics
// appear in registration order (labeled children in creation order
// inside their family), spans last, sorted by name.
func WritePrometheus(w io.Writer) error {
	registry.mu.Lock()
	order := make([]any, len(registry.order))
	copy(order, registry.order)
	spanNames := make([]string, 0, len(registry.spans))
	for name := range registry.spans {
		spanNames = append(spanNames, name)
	}
	spans := make(map[string]*spanStats, len(registry.spans))
	for name, s := range registry.spans {
		spans[name] = s
	}
	registry.mu.Unlock()

	var b strings.Builder
	for _, m := range order {
		switch m := m.(type) {
		case *Counter:
			writePromCounter(&b, promName(m.name), []*Counter{m})
		case *CounterVec:
			writePromCounter(&b, promName(m.name), m.snapshot())
		case *Gauge:
			name := promName(m.name)
			fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", name, name, m.Value())
		case *GaugeFunc:
			name := promName(m.name)
			fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", name, name, promFloat(m.Value()))
		case *Histogram:
			writePromHistogram(&b, promName(m.name), []*Histogram{m})
		case *HistogramVec:
			writePromHistogram(&b, promName(m.name), m.snapshot())
		}
	}

	sort.Strings(spanNames)
	for _, name := range spanNames {
		s := spans[name]
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s_calls_total counter\n%s_calls_total %d\n",
			pn, pn, s.count.Load())
		fmt.Fprintf(&b, "# TYPE %s_seconds_total counter\n%s_seconds_total %s\n",
			pn, pn, promFloat(time.Duration(s.totalNs.Load()).Seconds()))
		fmt.Fprintf(&b, "# TYPE %s_seconds_max gauge\n%s_seconds_max %s\n",
			pn, pn, promFloat(time.Duration(s.maxNs.Load()).Seconds()))
	}

	writePromWindows(&b)
	writePromSLOs(&b)

	_, err := io.WriteString(w, b.String())
	return err
}

// writePromWindows exports every registered sliding-window view as
// gauges carrying a "window" label: counters get <name>_rate, histograms
// get <name>_window_count/_window_rate/_window_p50/_window_p90/
// _window_p99 (quantiles omitted for empty windows). The _window_ infix
// keeps the series disjoint from the histogram's own cumulative
// _bucket/_sum/_count family.
func writePromWindows(b *strings.Builder) {
	for _, v := range windowViews() {
		switch w := v.(type) {
		case *WindowedCounter:
			name := promName(w.name)
			fmt.Fprintf(b, "# TYPE %s_rate gauge\n", name)
			for _, d := range DefWindows {
				fmt.Fprintf(b, "%s_rate%s %s\n", name,
					promLabels(w.labels, Label{Key: "window", Value: WindowLabel(d)}),
					promFloat(w.RateOver(d)))
			}
		case *WindowedHistogram:
			name := promName(w.name)
			type row struct {
				label Label
				st    WindowStats
			}
			rows := make([]row, 0, len(DefWindows))
			for _, d := range DefWindows {
				rows = append(rows, row{Label{Key: "window", Value: WindowLabel(d)}, w.StatsOver(d)})
			}
			fmt.Fprintf(b, "# TYPE %s_window_count gauge\n", name)
			for _, r := range rows {
				fmt.Fprintf(b, "%s_window_count%s %d\n", name, promLabels(w.labels, r.label), r.st.Count)
			}
			fmt.Fprintf(b, "# TYPE %s_window_rate gauge\n", name)
			for _, r := range rows {
				fmt.Fprintf(b, "%s_window_rate%s %s\n", name, promLabels(w.labels, r.label), promFloat(r.st.Rate))
			}
			for _, q := range []struct {
				suffix string
				get    func(WindowStats) float64
			}{
				{"p50", func(s WindowStats) float64 { return s.P50 }},
				{"p90", func(s WindowStats) float64 { return s.P90 }},
				{"p99", func(s WindowStats) float64 { return s.P99 }},
			} {
				fmt.Fprintf(b, "# TYPE %s_window_%s gauge\n", name, q.suffix)
				for _, r := range rows {
					if r.st.Count == 0 {
						continue
					}
					fmt.Fprintf(b, "%s_window_%s%s %s\n", name, q.suffix,
						promLabels(w.labels, r.label), promFloat(q.get(r.st)))
				}
			}
		}
	}
}

// writePromSLOs exports every registered SLO's burn rates and firing
// state as gauges labeled by SLO name (and window, for burn rates).
func writePromSLOs(b *strings.Builder) {
	states := SLOStates()
	if len(states) == 0 {
		return
	}
	fmt.Fprintf(b, "# TYPE slo_burn_rate gauge\n")
	for _, st := range states {
		for _, bw := range []BurnWindow{st.Fast, st.Slow} {
			fmt.Fprintf(b, "slo_burn_rate%s %s\n",
				promLabels([]Label{{Key: "slo", Value: st.Name}, {Key: "window", Value: bw.Window}}),
				promFloat(bw.BurnRate))
		}
	}
	fmt.Fprintf(b, "# TYPE slo_firing gauge\n")
	for _, st := range states {
		v := 0
		if st.Firing {
			v = 1
		}
		fmt.Fprintf(b, "slo_firing%s %d\n",
			promLabels([]Label{{Key: "slo", Value: st.Name}}), v)
	}
}

func writePromCounter(b *strings.Builder, name string, children []*Counter) {
	fmt.Fprintf(b, "# TYPE %s counter\n", name)
	for _, c := range children {
		fmt.Fprintf(b, "%s%s %d\n", name, promLabels(c.labels), c.Value())
	}
}

func writePromHistogram(b *strings.Builder, name string, children []*Histogram) {
	fmt.Fprintf(b, "# TYPE %s histogram\n", name)
	for _, h := range children {
		counts := h.bucketCounts()
		var cum int64
		for i, c := range counts {
			cum += c
			le := "+Inf"
			if i < len(h.bounds) {
				le = promFloat(h.bounds[i])
			}
			fmt.Fprintf(b, "%s_bucket%s %d", name, promLabels(h.labels, Label{Key: "le", Value: le}), cum)
			// OpenMetrics exemplar: link the bucket to a recent trace.
			// Plain-text scrapers treat "#" as a comment and ignore it.
			if ex := h.exemplarAt(i); ex != nil {
				fmt.Fprintf(b, " # {trace_id=\"%s\"} %s %s",
					escapeLabelValue(ex.traceID), promFloat(ex.value),
					strconv.FormatFloat(float64(ex.unixMs)/1e3, 'f', 3, 64))
			}
			b.WriteByte('\n')
		}
		fmt.Fprintf(b, "%s_sum%s %s\n", name, promLabels(h.labels), promFloat(h.Sum()))
		fmt.Fprintf(b, "%s_count%s %d\n", name, promLabels(h.labels), cum)
	}
}
