package plot

import (
	"math"
	"strings"
	"testing"
)

func TestLinesBasicRender(t *testing.T) {
	out := Lines("test chart", []float64{0, 1, 2, 3},
		map[string][]float64{"up": {0, 1, 2, 3}, "down": {3, 2, 1, 0}}, 40, 8)
	if !strings.Contains(out, "test chart") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "*=down") || !strings.Contains(out, "o=up") {
		t.Fatalf("missing legend:\n%s", out)
	}
	// Marker counts: each series has 4 points; some may overlap lines.
	if strings.Count(out, "o") < 3 || strings.Count(out, "*") < 3 {
		t.Fatalf("markers missing:\n%s", out)
	}
}

func TestLinesMonotoneSeriesOrientation(t *testing.T) {
	// For an increasing series, the first point must appear on a lower
	// row (later line) than the last point.
	out := Lines("mono", []float64{0, 10}, map[string][]float64{"s": {1, 9}}, 20, 6)
	lines := strings.Split(out, "\n")
	firstRow, lastRow := -1, -1
	for i, ln := range lines {
		idx := strings.IndexByte(ln, '*')
		if idx < 0 {
			continue
		}
		if strings.Contains(ln[idx:], "=s") {
			continue // legend line
		}
		if firstRow == -1 {
			firstRow = i
		}
		lastRow = i
	}
	if firstRow == -1 {
		t.Fatalf("no markers:\n%s", out)
	}
	// y=9 (high) renders near the top, y=1 near the bottom: both rows
	// must exist and differ.
	if firstRow == lastRow {
		t.Fatalf("flat rendering of a steep series:\n%s", out)
	}
}

func TestLinesEdgeCases(t *testing.T) {
	if out := Lines("empty", nil, nil, 40, 8); !strings.Contains(out, "no data") {
		t.Fatalf("empty render: %q", out)
	}
	out := Lines("nan", []float64{0, 1}, map[string][]float64{"s": {math.NaN(), math.NaN()}}, 40, 8)
	if !strings.Contains(out, "no finite data") {
		t.Fatalf("nan render: %q", out)
	}
	// Constant series must not divide by zero.
	out = Lines("const", []float64{0, 1}, map[string][]float64{"s": {2, 2}}, 40, 8)
	if !strings.Contains(out, "*") {
		t.Fatalf("constant series not rendered:\n%s", out)
	}
}

func TestLinesDeterministic(t *testing.T) {
	xs := []float64{1, 2, 3}
	sr := map[string][]float64{"a": {1, 2, 3}, "b": {3, 1, 2}}
	if Lines("d", xs, sr, 30, 6) != Lines("d", xs, sr, 30, 6) {
		t.Fatal("rendering not deterministic")
	}
}
