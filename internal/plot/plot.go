// Package plot renders small ASCII line charts for the experiment
// figures, so cmd/experiments output shows the *shape* of each result
// (error curves, discrepancy knees) and not just number columns.
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// markers distinguish series, assigned in sorted series-name order.
var markers = []byte{'*', 'o', '+', 'x', '#', '@'}

// Lines renders the series against shared x values as a width×height
// character grid with a y-axis scale and a legend. Series are drawn as
// their marker at each data point with linear interpolation between
// points. All series must have len(xs) values.
func Lines(title string, xs []float64, series map[string][]float64, width, height int) string {
	if len(xs) == 0 || len(series) == 0 {
		return title + " (no data)\n"
	}
	if width < 16 {
		width = 48
	}
	if height < 4 {
		height = 10
	}
	names := make([]string, 0, len(series))
	for name := range series {
		names = append(names, name)
	}
	sort.Strings(names)

	// Value ranges.
	minX, maxX := xs[0], xs[0]
	for _, v := range xs {
		minX, maxX = math.Min(minX, v), math.Max(maxX, v)
	}
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, name := range names {
		for _, v := range series[name] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			minY, maxY = math.Min(minY, v), math.Max(maxY, v)
		}
	}
	if math.IsInf(minY, 0) {
		return title + " (no finite data)\n"
	}
	if maxY == minY {
		maxY = minY + 1
	}
	if maxX == minX {
		maxX = minX + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	col := func(x float64) int {
		c := int(math.Round((x - minX) / (maxX - minX) * float64(width-1)))
		return clamp(c, 0, width-1)
	}
	row := func(y float64) int {
		r := int(math.Round((maxY - y) / (maxY - minY) * float64(height-1)))
		return clamp(r, 0, height-1)
	}
	for si, name := range names {
		mk := markers[si%len(markers)]
		vals := series[name]
		prevC, prevR := -1, -1
		for i, v := range vals {
			if i >= len(xs) || math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			cI, rI := col(xs[i]), row(v)
			if prevC >= 0 {
				steps := abs(cI-prevC) + abs(rI-prevR)
				for s := 1; s < steps; s++ {
					ci := prevC + (cI-prevC)*s/steps
					ri := prevR + (rI-prevR)*s/steps
					if grid[ri][ci] == ' ' {
						grid[ri][ci] = '.'
					}
				}
			}
			grid[rI][cI] = mk
			prevC, prevR = cI, rI
		}
	}

	var b strings.Builder
	b.WriteString(title)
	b.WriteByte('\n')
	for r := 0; r < height; r++ {
		y := maxY - (maxY-minY)*float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%9.3g |%s\n", y, string(grid[r]))
	}
	fmt.Fprintf(&b, "%9s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%9s  %-*g%*g\n", "", width/2, minX, width-width/2, maxX)
	legend := make([]string, len(names))
	for si, name := range names {
		legend[si] = fmt.Sprintf("%c=%s", markers[si%len(markers)], name)
	}
	fmt.Fprintf(&b, "%9s  %s\n", "", strings.Join(legend, "  "))
	return b.String()
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
