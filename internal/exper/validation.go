package exper

import (
	"fmt"
	"strings"

	"predperf/internal/design"
	"predperf/internal/interval"
	"predperf/internal/sim"
	"predperf/internal/trace"
)

// Validation is the §3-style simulator cross-check: the paper validated
// its detailed simulator's trends "against another similarly configured
// verified simulator" (alphasim). We sweep every design parameter
// between its endpoints and compare the CPI movement of the detailed
// cycle-level simulator against the independent first-order analytical
// model (internal/interval).
type Validation struct {
	Benchmarks []string
	Rows       []ValidationRow
	Agreement  float64 // fraction of sweeps whose direction matches
}

// ValidationRow is one parameter sweep on one benchmark.
type ValidationRow struct {
	Benchmark string
	Parameter string
	DetailedΔ float64 // CPI(high setting) − CPI(low setting)
	AnalyticΔ float64
	Agrees    bool
}

// RunValidation sweeps all nine parameters for each benchmark.
func RunValidation(r *Runner, benches ...string) (*Validation, error) {
	out := &Validation{Benchmarks: benches}
	space := design.PaperSpace()
	agree := 0
	for _, bench := range benches {
		tr, err := trace.Cached(bench, r.Scale.TraceLen)
		if err != nil {
			return nil, err
		}
		mid := make(design.Point, space.N())
		for i := range mid {
			mid[i] = 0.5
		}
		for k, p := range space.Params {
			lo, hi := make(design.Point, space.N()), make(design.Point, space.N())
			copy(lo, mid)
			copy(hi, mid)
			lo[k], hi[k] = 0, 1
			run := func(pt design.Point) (float64, float64) {
				cfg := sim.FromDesign(space.Decode(pt, 100))
				cfg.WarmupInsts = r.Scale.TraceLen / 5
				det := sim.Run(cfg, tr).CPI()
				ana := interval.Analyze(tr, cfg).CPI
				return det, ana
			}
			dLo, aLo := run(lo)
			dHi, aHi := run(hi)
			row := ValidationRow{
				Benchmark: bench,
				Parameter: p.Name,
				DetailedΔ: dHi - dLo,
				AnalyticΔ: aHi - aLo,
			}
			// Direction agreement; tiny deltas on either side count as
			// agreement (the parameter is immaterial for this workload).
			const eps = 0.01
			row.Agrees = row.DetailedΔ*row.AnalyticΔ > 0 ||
				abs(row.DetailedΔ) < eps || abs(row.AnalyticΔ) < eps
			if row.Agrees {
				agree++
			}
			out.Rows = append(out.Rows, row)
		}
	}
	if len(out.Rows) > 0 {
		out.Agreement = float64(agree) / float64(len(out.Rows))
	}
	return out, nil
}

func (v *Validation) String() string {
	var b strings.Builder
	b.WriteString("Simulator cross-validation: detailed vs first-order analytical trends\n")
	b.WriteString("(ΔCPI from each parameter's hostile to favorable endpoint, others mid-range)\n")
	fmt.Fprintf(&b, "%-10s %-12s %12s %12s %8s\n", "benchmark", "parameter", "detailed", "analytical", "agree")
	for _, row := range v.Rows {
		mark := "yes"
		if !row.Agrees {
			mark = "NO"
		}
		fmt.Fprintf(&b, "%-10s %-12s %+12.3f %+12.3f %8s\n",
			row.Benchmark, row.Parameter, row.DetailedΔ, row.AnalyticΔ, mark)
	}
	fmt.Fprintf(&b, "direction agreement: %.0f%%\n", 100*v.Agreement)
	return b.String()
}
