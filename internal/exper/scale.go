// Package exper contains one driver per table and figure of the paper's
// evaluation (§4), plus the ablation studies listed in DESIGN.md. Each
// driver returns a structured result that renders to a text table, so
// the same code backs cmd/experiments and the testing.B benchmarks in
// bench_test.go.
package exper

import (
	"predperf/internal/rbf"
	"predperf/internal/trace"
)

// Scale bundles every cost knob of the experiment suite, so benchmarks
// can run the identical drivers at reduced cost while cmd/experiments
// reproduces the full-size study.
type Scale struct {
	Name string

	TraceLen      int      // dynamic instructions per benchmark
	SampleSizes   []int    // sweep used by Table 4 / Figure 4 / Figure 7
	FullSize      int      // the paper's "sample size 200" (Tables 3 & 5)
	TestPoints    int      // random test points (paper: 50)
	LHSCandidates int      // latin hypercube draws per sample
	Benchmarks    []string // Table 3 benchmarks
	SweepBench    []string // benchmarks for the error-vs-size sweeps
	GridIL1       []int    // il1 sizes (KB) for Figures 1 & 6
	GridL2Lat     []int    // L2 latencies for Figures 1 & 6
	RBF           rbf.Options
	Seed          int64
	// Workers bounds the goroutines used by the drivers' fan-out and by
	// every model build (par.Workers semantics: 1 = serial, 0 = one
	// worker per CPU). All results are identical regardless.
	Workers int
}

// PaperScale reproduces the paper's experiment sizes (with the trace
// length standing in for "run to completion"; see DESIGN.md).
func PaperScale() Scale {
	return Scale{
		Name:          "paper",
		TraceLen:      150_000,
		SampleSizes:   []int{30, 50, 70, 90, 110, 200},
		FullSize:      200,
		TestPoints:    50,
		LHSCandidates: 100,
		Benchmarks:    trace.Names(),
		SweepBench:    []string{"mcf", "vortex", "twolf"},
		GridIL1:       []int{8, 16, 32, 64},
		GridL2Lat:     []int{5, 8, 11, 14, 17, 20},
		RBF:           rbf.Options{PMinGrid: []int{1, 2}, AlphaGrid: []float64{3, 5, 7, 9, 12}},
		Seed:          1,
	}
}

// QuickScale is a reduced-cost configuration for tests and benchmarks.
func QuickScale() Scale {
	return Scale{
		Name:          "quick",
		TraceLen:      20_000,
		SampleSizes:   []int{20, 40, 60},
		FullSize:      60,
		TestPoints:    20,
		LHSCandidates: 16,
		Benchmarks:    []string{"mcf", "vortex", "equake"},
		SweepBench:    []string{"mcf", "vortex"},
		GridIL1:       []int{8, 16, 32, 64},
		GridL2Lat:     []int{5, 12, 20},
		RBF:           rbf.Options{PMinGrid: []int{1, 2}, AlphaGrid: []float64{5, 9}},
		Seed:          1,
	}
}
