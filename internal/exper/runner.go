package exper

import (
	"fmt"
	"sync"

	"predperf/internal/core"
	"predperf/internal/design"
)

// Runner executes experiment drivers, sharing evaluators (and their
// simulation memoization), test sets, and fitted models across the
// tables and figures that reuse them.
type Runner struct {
	Scale Scale

	mu     sync.Mutex
	evs    map[string]*core.SimEvaluator
	tests  map[string]*core.TestSet
	models map[string]*core.Model
	linear map[string]*core.LinearModel
}

// NewRunner prepares a runner at the given scale.
func NewRunner(s Scale) *Runner {
	return &Runner{
		Scale:  s,
		evs:    map[string]*core.SimEvaluator{},
		tests:  map[string]*core.TestSet{},
		models: map[string]*core.Model{},
		linear: map[string]*core.LinearModel{},
	}
}

// Evaluator returns the (memoizing) simulator evaluator for a benchmark.
func (r *Runner) Evaluator(bench string) (*core.SimEvaluator, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ev, ok := r.evs[bench]; ok {
		return ev, nil
	}
	ev, err := core.NewSimEvaluator(bench, r.Scale.TraceLen)
	if err != nil {
		return nil, err
	}
	r.evs[bench] = ev
	return ev, nil
}

// TestSet returns the benchmark's independent random test set (Table 2
// space), simulating it on first use.
func (r *Runner) TestSet(bench string) (*core.TestSet, error) {
	r.mu.Lock()
	ts, ok := r.tests[bench]
	r.mu.Unlock()
	if ok {
		return ts, nil
	}
	ev, err := r.Evaluator(bench)
	if err != nil {
		return nil, err
	}
	ts = core.NewTestSet(ev, nil, r.Scale.TestPoints, r.Scale.Seed+77)
	r.mu.Lock()
	r.tests[bench] = ts
	r.mu.Unlock()
	return ts, nil
}

func (r *Runner) opt() core.Options {
	return core.Options{
		LHSCandidates: r.Scale.LHSCandidates,
		RBF:           r.Scale.RBF,
		Seed:          r.Scale.Seed,
	}
}

// Model builds (or returns the cached) RBF model for a benchmark at a
// sample size.
func (r *Runner) Model(bench string, size int) (*core.Model, error) {
	key := fmt.Sprintf("%s/%d", bench, size)
	r.mu.Lock()
	m, ok := r.models[key]
	r.mu.Unlock()
	if ok {
		return m, nil
	}
	ev, err := r.Evaluator(bench)
	if err != nil {
		return nil, err
	}
	m, err = core.BuildRBFModel(ev, size, r.opt())
	if err != nil {
		return nil, fmt.Errorf("exper: model %s: %w", key, err)
	}
	r.mu.Lock()
	r.models[key] = m
	r.mu.Unlock()
	return m, nil
}

// Linear builds (or returns the cached) baseline linear model. It uses
// the same seed as Model, hence the identical training sample.
func (r *Runner) Linear(bench string, size int) (*core.LinearModel, error) {
	key := fmt.Sprintf("%s/%d", bench, size)
	r.mu.Lock()
	m, ok := r.linear[key]
	r.mu.Unlock()
	if ok {
		return m, nil
	}
	ev, err := r.Evaluator(bench)
	if err != nil {
		return nil, err
	}
	m, err = core.BuildLinearModel(ev, size, r.opt())
	if err != nil {
		return nil, fmt.Errorf("exper: linear %s: %w", key, err)
	}
	r.mu.Lock()
	r.linear[key] = m
	r.mu.Unlock()
	return m, nil
}

// midConfig is the design-space center, used to pin the seven parameters
// not being swept in the response-surface studies.
func (r *Runner) midConfig() design.Config {
	s := design.PaperSpace()
	pt := make(design.Point, s.N())
	for i := range pt {
		pt[i] = 0.5
	}
	return s.Decode(pt, 100)
}
