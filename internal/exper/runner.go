package exper

import (
	"fmt"
	"sync"

	"predperf/internal/core"
	"predperf/internal/design"
	"predperf/internal/obs"
	"predperf/internal/par"
)

// Runner executes experiment drivers, sharing evaluators (and their
// simulation memoization), test sets, and fitted models across the
// tables and figures that reuse them. Every shared artifact sits behind
// a single-flight entry, so drivers that fan benchmarks and sample sizes
// out across workers never build the same evaluator, test set, or model
// twice: concurrent requests for one key block on the first builder and
// share its result.
type Runner struct {
	Scale Scale

	mu     sync.Mutex
	evs    map[string]*flight[*core.SimEvaluator]
	tests  map[string]*flight[*core.TestSet]
	models map[string]*flight[*core.Model]
	linear map[string]*flight[*core.LinearModel]
}

// flight is a single-flight cell: the first resolver runs build, every
// later (or concurrent) resolver waits on the Once and shares the value.
type flight[T any] struct {
	once sync.Once
	val  T
	err  error
}

// resolve returns the cached value for key, building it at most once
// even under concurrent callers. The map mutex is held only for the
// entry lookup, never across a build.
func resolve[T any](r *Runner, m map[string]*flight[T], key string, build func() (T, error)) (T, error) {
	r.mu.Lock()
	f, ok := m[key]
	if !ok {
		f = &flight[T]{}
		m[key] = f
	}
	r.mu.Unlock()
	f.once.Do(func() { f.val, f.err = build() })
	return f.val, f.err
}

// NewRunner prepares a runner at the given scale.
func NewRunner(s Scale) *Runner {
	return &Runner{
		Scale:  s,
		evs:    map[string]*flight[*core.SimEvaluator]{},
		tests:  map[string]*flight[*core.TestSet]{},
		models: map[string]*flight[*core.Model]{},
		linear: map[string]*flight[*core.LinearModel]{},
	}
}

// Workers resolves the scale's worker knob (par.Workers semantics:
// 1 = serial, 0 = one worker per CPU). Drivers use it to fan independent
// benchmarks and sample sizes out; results are collected into fixed
// slots in input order, so every rendering is identical to a serial run.
func (r *Runner) Workers() int { return par.Workers(r.Scale.Workers) }

// Evaluator returns the (memoizing) simulator evaluator for a benchmark.
func (r *Runner) Evaluator(bench string) (*core.SimEvaluator, error) {
	return resolve(r, r.evs, bench, func() (*core.SimEvaluator, error) {
		defer obs.StartSpan("exper.evaluator/" + bench)()
		return core.NewSimEvaluator(bench, r.Scale.TraceLen)
	})
}

// TestSet returns the benchmark's independent random test set (Table 2
// space), simulating it on first use.
func (r *Runner) TestSet(bench string) (*core.TestSet, error) {
	return resolve(r, r.tests, bench, func() (*core.TestSet, error) {
		defer obs.StartSpan("exper.testset/" + bench)()
		ev, err := r.Evaluator(bench)
		if err != nil {
			return nil, err
		}
		return core.NewTestSetWorkers(ev, nil, r.Scale.TestPoints, r.Scale.Seed+77, r.Scale.Workers), nil
	})
}

func (r *Runner) opt() core.Options {
	return core.Options{
		LHSCandidates: r.Scale.LHSCandidates,
		RBF:           r.Scale.RBF,
		Seed:          r.Scale.Seed,
		Parallel:      r.Scale.Workers,
	}
}

// Model builds (or returns the cached) RBF model for a benchmark at a
// sample size.
func (r *Runner) Model(bench string, size int) (*core.Model, error) {
	key := fmt.Sprintf("%s/%d", bench, size)
	return resolve(r, r.models, key, func() (*core.Model, error) {
		defer obs.StartSpan("exper.model/" + key)()
		ev, err := r.Evaluator(bench)
		if err != nil {
			return nil, err
		}
		m, err := core.BuildRBFModel(ev, size, r.opt())
		if err != nil {
			return nil, fmt.Errorf("exper: model %s: %w", key, err)
		}
		return m, nil
	})
}

// Linear builds (or returns the cached) baseline linear model. It uses
// the same seed as Model, hence the identical training sample.
func (r *Runner) Linear(bench string, size int) (*core.LinearModel, error) {
	key := fmt.Sprintf("%s/%d", bench, size)
	return resolve(r, r.linear, key, func() (*core.LinearModel, error) {
		defer obs.StartSpan("exper.linear/" + key)()
		ev, err := r.Evaluator(bench)
		if err != nil {
			return nil, err
		}
		m, err := core.BuildLinearModel(ev, size, r.opt())
		if err != nil {
			return nil, fmt.Errorf("exper: linear %s: %w", key, err)
		}
		return m, nil
	})
}

// benchSize is one (benchmark, sample size) cell of a sweep fan-out.
type benchSize struct {
	bench string
	size  int
}

// crossBenchSizes enumerates benches × sizes in bench-major order — the
// iteration order the serial sweeps used, preserved so fanned-out
// results collect into the same positions.
func crossBenchSizes(benches []string, sizes []int) []benchSize {
	out := make([]benchSize, 0, len(benches)*len(sizes))
	for _, b := range benches {
		for _, s := range sizes {
			out = append(out, benchSize{b, s})
		}
	}
	return out
}

// midConfig is the design-space center, used to pin the seven parameters
// not being swept in the response-surface studies.
func (r *Runner) midConfig() design.Config {
	s := design.PaperSpace()
	pt := make(design.Point, s.N())
	for i := range pt {
		pt[i] = 0.5
	}
	return s.Decode(pt, 100)
}
