package exper

import (
	"fmt"
	"strings"

	"predperf/internal/core"
)

// PowerTable extends Table 3 to the power-oriented metrics of §6: for
// each benchmark it builds an energy-delay-product model from the same
// simulations as the CPI model (the evaluator memoizes full simulator
// results, so the EDP view costs no extra runs) and validates both.
type PowerTable struct {
	SampleSize int
	Rows       []PowerRow
}

// PowerRow is one benchmark's CPI and EDP model accuracy.
type PowerRow struct {
	Benchmark  string
	CPIMean    float64
	EDPMean    float64
	EDPMax     float64
	EDPCenters int
}

// RunPowerTable builds EDP models for every benchmark at the full sample
// size.
func RunPowerTable(r *Runner) (*PowerTable, error) {
	out := &PowerTable{SampleSize: r.Scale.FullSize}
	for _, bench := range r.Scale.Benchmarks {
		m, err := r.Model(bench, r.Scale.FullSize)
		if err != nil {
			return nil, err
		}
		ts, err := r.TestSet(bench)
		if err != nil {
			return nil, err
		}
		ev, err := r.Evaluator(bench)
		if err != nil {
			return nil, err
		}
		edpEv := ev.WithMetric(core.MetricEDP)
		edpM, err := core.BuildRBFModel(edpEv, r.Scale.FullSize, core.Options{
			LHSCandidates: r.Scale.LHSCandidates, RBF: r.Scale.RBF, Seed: r.Scale.Seed,
		})
		if err != nil {
			return nil, err
		}
		edpTS := core.NewTestSet(edpEv, nil, r.Scale.TestPoints, r.Scale.Seed+77)
		est := edpM.Validate(edpTS)
		out.Rows = append(out.Rows, PowerRow{
			Benchmark:  bench,
			CPIMean:    m.Validate(ts).Mean,
			EDPMean:    est.Mean,
			EDPMax:     est.Max,
			EDPCenters: edpM.Fit.NumCenters(),
		})
	}
	return out, nil
}

func (t *PowerTable) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Power extension: EDP models from the same simulations (sample size %d)\n", t.SampleSize)
	fmt.Fprintf(&b, "%-10s %10s %10s %9s %9s\n", "benchmark", "cpi mean%", "edp mean%", "edp max%", "centers")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-10s %10.1f %10.1f %9.1f %9d\n", r.Benchmark, r.CPIMean, r.EDPMean, r.EDPMax, r.EDPCenters)
	}
	return b.String()
}

// Extended runs the Table 3 protocol on the four additional (non-paper)
// workload profiles, checking the method generalizes past the workloads
// it was tuned on.
type Extended struct {
	SampleSize int
	Rows       []Table3Row
}

// RunExtended validates models for the extra workloads.
func RunExtended(r *Runner, benches []string) (*Extended, error) {
	out := &Extended{SampleSize: r.Scale.FullSize}
	for _, bench := range benches {
		m, err := r.Model(bench, r.Scale.FullSize)
		if err != nil {
			return nil, err
		}
		ts, err := r.TestSet(bench)
		if err != nil {
			return nil, err
		}
		st := m.Validate(ts)
		out.Rows = append(out.Rows, Table3Row{
			Benchmark: bench,
			Mean:      st.Mean, Max: st.Max, Std: st.Std,
			Centers: m.Fit.NumCenters(), PMin: m.Fit.PMin, Alpha: m.Fit.Alpha,
		})
	}
	return out, nil
}

func (t *Extended) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extended workloads (beyond the paper's eight, sample size %d)\n", t.SampleSize)
	fmt.Fprintf(&b, "%-10s %7s %7s %7s   %7s\n", "benchmark", "mean%", "max%", "std%", "centers")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-10s %7.1f %7.1f %7.1f   %7d\n", r.Benchmark, r.Mean, r.Max, r.Std, r.Centers)
	}
	return b.String()
}
