package exper

import (
	"strings"
	"testing"
)

// TestQuickSuite runs every experiment driver end to end at quick scale
// and checks the paper's qualitative claims hold on the regenerated
// results.
func TestQuickSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite in -short mode")
	}
	r := NewRunner(QuickScale())

	t1 := RunTable1()
	if !strings.Contains(t1.String(), "pipe_depth") {
		t.Fatal("Table 1 rendering missing parameters")
	}

	f2 := RunFigure2(r)
	// Discrepancy must decrease with sample size (coverage improves).
	if f2.Discrepancy[len(f2.Discrepancy)-1] >= f2.Discrepancy[0] {
		t.Fatalf("discrepancy did not fall: %v", f2.Discrepancy)
	}

	t3, err := RunTable3(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Rows) != len(r.Scale.Benchmarks) {
		t.Fatalf("Table 3 has %d rows", len(t3.Rows))
	}
	for _, row := range t3.Rows {
		if row.Mean <= 0 || row.Mean > 50 {
			t.Fatalf("%s: implausible mean error %v%%", row.Benchmark, row.Mean)
		}
		if row.Max < row.Mean {
			t.Fatalf("%s: max %v < mean %v", row.Benchmark, row.Max, row.Mean)
		}
		// §4: selected centers stay well below the sample size.
		if row.Centers >= t3.SampleSize {
			t.Fatalf("%s: %d centers for %d samples", row.Benchmark, row.Centers, t3.SampleSize)
		}
	}

	t4, err := RunTable4(r, "mcf")
	if err != nil {
		t.Fatal(err)
	}
	if len(t4.Rows) != len(r.Scale.SampleSizes) {
		t.Fatalf("Table 4 has %d rows", len(t4.Rows))
	}
	// Centers grow (weakly) with sample size, as in the paper's Table 4.
	first, last := t4.Rows[0], t4.Rows[len(t4.Rows)-1]
	if last.Centers < first.Centers {
		t.Fatalf("centers shrank with sample size: %d → %d", first.Centers, last.Centers)
	}

	t5, err := RunTable5(r, "mcf", "vortex")
	if err != nil {
		t.Fatal(err)
	}
	if len(t5.Splits["mcf"]) == 0 || len(t5.Splits["vortex"]) == 0 {
		t.Fatal("Table 5 missing splits")
	}
	if t5.Splits["mcf"][0].Depth != 1 {
		t.Fatalf("first mcf split at depth %d", t5.Splits["mcf"][0].Depth)
	}

	f4, err := RunFigure4(r, "mcf")
	if err != nil {
		t.Fatal(err)
	}
	curve := f4.Curves["mcf"]
	// Error at the largest sample must not exceed the smallest sample's
	// error (the paper's headline trend), with slack for noise.
	if curve[len(curve)-1].Mean > curve[0].Mean*1.25+0.5 {
		t.Fatalf("error did not improve with sample size: %+v", curve)
	}

	f5, err := RunFigure5(r, "mcf")
	if err != nil {
		t.Fatal(err)
	}
	if len(f5.Splits) == 0 {
		t.Fatal("Figure 5 has no splits")
	}

	f6, err := RunFigure6(r, "vortex")
	if err != nil {
		t.Fatal(err)
	}
	if ag := f6.TrendAgreement(); ag < 0.6 {
		t.Fatalf("trend agreement %v too low", ag)
	}

	f7, err := RunFigure7(r, "mcf")
	if err != nil {
		t.Fatal(err)
	}
	pts := f7.Curves["mcf"]
	// The RBF model must beat the linear baseline at the largest size.
	lastPt := pts[len(pts)-1]
	if lastPt.RBFMean >= lastPt.LinearMean {
		t.Fatalf("RBF %v%% not better than linear %v%% at size %d",
			lastPt.RBFMean, lastPt.LinearMean, lastPt.SampleSize)
	}

	ab, err := RunAblations(r, "mcf")
	if err != nil {
		t.Fatal(err)
	}
	if ab.Full <= 0 || ab.RandomSample <= 0 || ab.AllCenters <= 0 || ab.GlobalRadius <= 0 {
		t.Fatalf("ablation produced non-positive errors: %+v", ab)
	}
	if ab.FullCenters >= ab.AllCentersN {
		t.Fatalf("selection did not reduce centers: %d vs %d", ab.FullCenters, ab.AllCentersN)
	}
}

func TestScalesWellFormed(t *testing.T) {
	for _, s := range []Scale{PaperScale(), QuickScale()} {
		if s.TraceLen <= 0 || s.FullSize <= 0 || s.TestPoints <= 0 {
			t.Fatalf("%s scale malformed: %+v", s.Name, s)
		}
		if len(s.SampleSizes) == 0 || len(s.Benchmarks) == 0 {
			t.Fatalf("%s scale missing sweeps", s.Name)
		}
		if s.SampleSizes[len(s.SampleSizes)-1] != s.FullSize {
			t.Fatalf("%s: FullSize %d should be the last sweep size %v", s.Name, s.FullSize, s.SampleSizes)
		}
	}
}

func TestRunnerCachesModels(t *testing.T) {
	r := NewRunner(QuickScale())
	m1, err := r.Model("equake", 20)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := r.Model("equake", 20)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Fatal("runner rebuilt a cached model")
	}
	ev, _ := r.Evaluator("equake")
	n := ev.Simulations()
	if _, err := r.Model("equake", 20); err != nil {
		t.Fatal(err)
	}
	if ev.Simulations() != n {
		t.Fatal("cached model re-simulated")
	}
}

func TestRendersNonEmpty(t *testing.T) {
	r := NewRunner(QuickScale())
	f2 := RunFigure2(r)
	for _, s := range []string{RunTable1().String(), f2.String()} {
		if len(strings.TrimSpace(s)) == 0 {
			t.Fatal("empty rendering")
		}
	}
}

func TestExtensionsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("extension drivers in -short mode")
	}
	r := NewRunner(QuickScale())

	fam, err := RunFamilies(r, "equake")
	if err != nil {
		t.Fatal(err)
	}
	if len(fam.RBF) != len(r.Scale.SampleSizes) {
		t.Fatalf("families rows = %d", len(fam.RBF))
	}
	last := len(fam.RBF) - 1
	if fam.RBF[last] <= 0 || fam.Linear[last] <= 0 || fam.MLP[last] <= 0 || fam.Tree[last] <= 0 {
		t.Fatalf("non-positive family errors: %+v", fam)
	}
	// The bare regression tree (piecewise constant) must be the worst
	// family at the largest size.
	if fam.Tree[last] < fam.RBF[last] {
		t.Fatalf("bare tree %v%% beat the RBF network %v%%", fam.Tree[last], fam.RBF[last])
	}

	ad, err := RunAdaptive(r, "equake")
	if err != nil {
		t.Fatal(err)
	}
	if len(ad.Rounds) < 2 {
		t.Fatalf("adaptive made %d rounds", len(ad.Rounds))
	}
	if ad.AdaptiveErr <= 0 || ad.OneShotErr <= 0 {
		t.Fatalf("non-positive errors: %+v", ad)
	}
	if ad.AdaptiveSims > ad.Budget {
		t.Fatalf("adaptive used %d sims over budget %d", ad.AdaptiveSims, ad.Budget)
	}

	sg, err := RunSignificance(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, bench := range r.Scale.Benchmarks {
		if len(sg.Ranked[bench]) != 9 {
			t.Fatalf("%s: ranked %d parameters", bench, len(sg.Ranked[bench]))
		}
		// Scores sorted descending.
		sc := sg.Scores[bench]
		for i := 1; i < len(sc); i++ {
			if sc[i] > sc[i-1]+1e-12 {
				t.Fatalf("%s: scores not sorted: %v", bench, sc)
			}
		}
	}
}

func TestPowerAndExtendedQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("power/extended drivers in -short mode")
	}
	r := NewRunner(QuickScale())
	pt, err := RunPowerTable(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(pt.Rows) != len(r.Scale.Benchmarks) {
		t.Fatalf("power table rows = %d", len(pt.Rows))
	}
	for _, row := range pt.Rows {
		if row.EDPMean <= 0 || row.EDPMean > 60 {
			t.Fatalf("%s: EDP mean error %v%%", row.Benchmark, row.EDPMean)
		}
	}
	ex, err := RunExtended(r, []string{"gzip", "vpr"})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range ex.Rows {
		if row.Mean <= 0 || row.Mean > 50 {
			t.Fatalf("%s: mean error %v%%", row.Benchmark, row.Mean)
		}
	}
}

func TestValidationQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("validation sweep in -short mode")
	}
	r := NewRunner(QuickScale())
	v, err := RunValidation(r, "mcf")
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Rows) != 9 {
		t.Fatalf("validation rows = %d, want 9", len(v.Rows))
	}
	// The detailed and analytical models must agree on the direction of
	// the vast majority of parameter effects.
	if v.Agreement < 0.75 {
		t.Fatalf("trend agreement %.2f below 0.75:\n%s", v.Agreement, v)
	}
}

func TestFigure1Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("figure 1 grid in -short mode")
	}
	r := NewRunner(QuickScale())
	f1, err := RunFigure1(r, "vortex")
	if err != nil {
		t.Fatal(err)
	}
	if len(f1.CPI) != len(r.Scale.GridIL1) {
		t.Fatalf("surface rows = %d", len(f1.CPI))
	}
	// CPI must rise with L2 latency in every row (the Figure 1 shape).
	for i, row := range f1.CPI {
		for j := 1; j < len(row); j++ {
			if row[j] < row[j-1] {
				t.Fatalf("row %d: CPI fell with L2 latency: %v", i, row)
			}
		}
	}
	// The il1 effect is largest at the highest latency: the 8KB row must
	// sit above the 64KB row at the last column.
	last := len(f1.L2Lat) - 1
	if f1.CPI[0][last] <= f1.CPI[len(f1.CPI)-1][last] {
		t.Fatalf("small il1 not slower at high latency: %v vs %v",
			f1.CPI[0][last], f1.CPI[len(f1.CPI)-1][last])
	}
	if len(f1.String()) == 0 {
		t.Fatal("empty rendering")
	}
}

func TestRelatedWorkQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("related-work drivers in -short mode")
	}
	r := NewRunner(QuickScale())

	sc, err := RunScreening(r, "mcf")
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.PBRanked) != 9 || sc.Runs != 24 {
		t.Fatalf("screening malformed: %d ranked, %d runs", len(sc.PBRanked), sc.Runs)
	}
	// mcf's dominant main effects are memory-system parameters in both
	// methodologies; the top-3 sets must share at least one parameter.
	if sc.TopOverlap < 1 {
		t.Fatalf("PB and linear rankings share nothing:\n%s", sc)
	}

	ss, err := RunStatSim(r, "twolf")
	if err != nil {
		t.Fatal(err)
	}
	if len(ss.Rows) != 3 {
		t.Fatalf("statsim rows = %d", len(ss.Rows))
	}
	for _, row := range ss.Rows {
		if row.ErrPct > 60 {
			t.Fatalf("synthetic trace off by %v%% at %s", row.ErrPct, row.Config)
		}
	}
	if !ss.RankPreserved {
		t.Fatalf("synthetic trace does not preserve configuration ordering:\n%s", ss)
	}
}

// tinyScale is a reduced configuration for the fan-out determinism test:
// small enough to run twice (serial and parallel) under -race.
func tinyScale() Scale {
	s := QuickScale()
	s.Name = "tiny"
	s.TraceLen = 5_000
	s.SampleSizes = []int{16, 24}
	s.FullSize = 24
	s.TestPoints = 8
	s.LHSCandidates = 6
	s.Benchmarks = []string{"mcf", "equake"}
	s.SweepBench = []string{"mcf"}
	return s
}

// TestFanOutMatchesSerial drives the fanned-out experiment pipeline at
// two worker settings and requires byte-identical renderings: the same
// samples, discrepancies, selected (p_min, α), and error tables.
func TestFanOutMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("fan-out determinism sweep in -short mode")
	}
	render := func(workers int) string {
		s := tinyScale()
		s.Workers = workers
		r := NewRunner(s)
		var b strings.Builder
		t3, err := RunTable3(r)
		if err != nil {
			t.Fatal(err)
		}
		b.WriteString(t3.String())
		t4, err := RunTable4(r, "mcf")
		if err != nil {
			t.Fatal(err)
		}
		b.WriteString(t4.String())
		t5, err := RunTable5(r, "mcf", "equake")
		if err != nil {
			t.Fatal(err)
		}
		b.WriteString(t5.String())
		f4, err := RunFigure4(r, "mcf")
		if err != nil {
			t.Fatal(err)
		}
		b.WriteString(f4.String())
		f7, err := RunFigure7(r, "mcf")
		if err != nil {
			t.Fatal(err)
		}
		b.WriteString(f7.String())
		f1, err := RunFigure1(r, "mcf")
		if err != nil {
			t.Fatal(err)
		}
		b.WriteString(f1.String())
		return b.String()
	}
	serial := render(1)
	parallel := render(4)
	if serial != parallel {
		t.Fatalf("parallel fan-out diverged from serial run:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

// TestRunnerSingleFlight fans many concurrent requests for the same
// model at the runner and requires exactly one build (one pointer).
func TestRunnerSingleFlight(t *testing.T) {
	s := tinyScale()
	r := NewRunner(s)
	results := make([]interface{}, 12)
	done := make(chan int, len(results))
	for g := range results {
		go func() {
			m, err := r.Model("mcf", 16)
			if err != nil {
				results[g] = err
			} else {
				results[g] = m
			}
			done <- g
		}()
	}
	for range results {
		<-done
	}
	for _, v := range results {
		if err, ok := v.(error); ok {
			t.Fatal(err)
		}
		if v != results[0] {
			t.Fatal("concurrent Model calls returned distinct builds")
		}
	}
	ev, err := r.Evaluator("mcf")
	if err != nil {
		t.Fatal(err)
	}
	if n := ev.Simulations(); n > 16 {
		t.Fatalf("%d simulations for a 16-point model, want <= 16", n)
	}
}
