package exper

import (
	"fmt"
	"math/rand"
	"strings"

	"predperf/internal/design"
	"predperf/internal/par"
	"predperf/internal/plot"
	"predperf/internal/sample"
)

// Figure1 is the CPI response surface over (il1_size, L2_lat) for one
// benchmark with the other seven parameters pinned mid-range — the
// motivating non-linearity example of §1.
type Figure1 struct {
	Benchmark string
	IL1KB     []int
	L2Lat     []int
	CPI       [][]float64 // [il1][lat]
}

// RunFigure1 simulates the grid, fanning the independent cells out
// across the runner's workers into fixed (row, column) slots.
func RunFigure1(r *Runner, bench string) (*Figure1, error) {
	ev, err := r.Evaluator(bench)
	if err != nil {
		return nil, err
	}
	base := r.midConfig()
	out := &Figure1{Benchmark: bench, IL1KB: r.Scale.GridIL1, L2Lat: r.Scale.GridL2Lat}
	out.CPI = make([][]float64, len(out.IL1KB))
	for i := range out.CPI {
		out.CPI[i] = make([]float64, len(out.L2Lat))
	}
	cols := len(out.L2Lat)
	par.For(r.Workers(), len(out.IL1KB)*cols, func(c int) {
		i, j := c/cols, c%cols
		cfg := base
		cfg.IL1SizeKB = out.IL1KB[i]
		cfg.L2Lat = out.L2Lat[j]
		out.CPI[i][j] = ev.Eval(cfg)
	})
	return out, nil
}

func (f *Figure1) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1: simulated CPI response surface, %s (rows: il1 KB, cols: L2 lat)\n", f.Benchmark)
	fmt.Fprintf(&b, "%8s", "il1\\lat")
	for _, lat := range f.L2Lat {
		fmt.Fprintf(&b, " %7d", lat)
	}
	b.WriteString("\n")
	for i, il1 := range f.IL1KB {
		fmt.Fprintf(&b, "%7dK", il1)
		for j := range f.L2Lat {
			fmt.Fprintf(&b, " %7.3f", f.CPI[i][j])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Figure2 is the best obtained L2-star discrepancy versus sample size:
// its knee motivates the choice of sample size (§2.2).
type Figure2 struct {
	Sizes       []int
	Discrepancy []float64
	Candidates  int
}

// RunFigure2 scores best-of-K latin hypercube samples across sizes.
func RunFigure2(r *Runner) *Figure2 {
	space := design.PaperSpace()
	rng := rand.New(rand.NewSource(r.Scale.Seed))
	out := &Figure2{Candidates: r.Scale.LHSCandidates}
	sizes := []int{10, 20, 30, 50, 70, 90, 110, 140, 170, 200}
	for _, n := range sizes {
		_, d := sample.BestLHS(space, n, r.Scale.LHSCandidates, rng)
		out.Sizes = append(out.Sizes, n)
		out.Discrepancy = append(out.Discrepancy, d)
	}
	return out
}

func (f *Figure2) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: best L2-star discrepancy vs number of simulations (best of %d draws)\n", f.Candidates)
	fmt.Fprintf(&b, "%-8s %12s\n", "size", "discrepancy")
	for i, n := range f.Sizes {
		fmt.Fprintf(&b, "%-8d %12.5f\n", n, f.Discrepancy[i])
	}
	xs := make([]float64, len(f.Sizes))
	for i, n := range f.Sizes {
		xs[i] = float64(n)
	}
	b.WriteString(plot.Lines("", xs, map[string][]float64{"discrepancy": f.Discrepancy}, 56, 10))
	return b.String()
}

// Figure4Point is the model error at one sample size.
type Figure4Point struct {
	SampleSize     int
	Mean, Std, Max float64
}

// Figure4 is mean/std/max error versus sample size for selected
// benchmarks (paper Figure 4: mcf and twolf).
type Figure4 struct {
	Curves map[string][]Figure4Point
	Order  []string
}

// RunFigure4 sweeps sample sizes for the named benchmarks. Every
// (benchmark, size) cell is independent — the runner's single-flight
// caches keep concurrent cells from duplicating evaluator or test-set
// construction — so the whole cross product fans out at once and the
// curves are reassembled in sweep order.
func RunFigure4(r *Runner, benches ...string) (*Figure4, error) {
	out := &Figure4{Curves: map[string][]Figure4Point{}, Order: benches}
	cells := crossBenchSizes(benches, r.Scale.SampleSizes)
	pts, err := par.MapErr(r.Workers(), cells, func(_ int, c benchSize) (Figure4Point, error) {
		ts, err := r.TestSet(c.bench)
		if err != nil {
			return Figure4Point{}, err
		}
		m, err := r.Model(c.bench, c.size)
		if err != nil {
			return Figure4Point{}, err
		}
		st := m.Validate(ts)
		return Figure4Point{SampleSize: c.size, Mean: st.Mean, Std: st.Std, Max: st.Max}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		out.Curves[c.bench] = append(out.Curves[c.bench], pts[i])
	}
	return out, nil
}

func (f *Figure4) String() string {
	var b strings.Builder
	b.WriteString("Figure 4: mean, std, and max CPI error vs sample size\n")
	for _, bench := range f.Order {
		fmt.Fprintf(&b, "%s:\n  %-6s %8s %8s %8s\n", bench, "size", "mean%", "std%", "max%")
		for _, p := range f.Curves[bench] {
			fmt.Fprintf(&b, "  %-6d %8.1f %8.1f %8.1f\n", p.SampleSize, p.Mean, p.Std, p.Max)
		}
	}
	if len(f.Order) > 0 {
		first := f.Curves[f.Order[0]]
		xs := make([]float64, len(first))
		for i, p := range first {
			xs[i] = float64(p.SampleSize)
		}
		series := map[string][]float64{}
		for _, bench := range f.Order {
			var means []float64
			for _, p := range f.Curves[bench] {
				means = append(means, p.Mean)
			}
			series[bench+" mean%"] = means
		}
		b.WriteString(plot.Lines("", xs, series, 56, 10))
	}
	return b.String()
}

// Figure5 is the distribution of parameter values at which tree splits
// occur, for one benchmark's full-size model.
type Figure5 struct {
	Benchmark string
	// Splits lists every bifurcation (parameter name, natural value).
	Splits []SplitInfo
	// PerParam counts splits by parameter.
	PerParam map[string]int
}

// RunFigure5 collects the split distribution.
func RunFigure5(r *Runner, bench string) (*Figure5, error) {
	m, err := r.Model(bench, r.Scale.FullSize)
	if err != nil {
		return nil, err
	}
	space := design.PaperSpace()
	out := &Figure5{Benchmark: bench, PerParam: map[string]int{}}
	out.Splits = splitInfos(space, m.Fit.Tree, len(m.Fit.Tree.Splits))
	for _, s := range out.Splits {
		out.PerParam[s.Parameter]++
	}
	return out, nil
}

func (f *Figure5) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: parameter values in tree splitting for %s (%d splits)\n", f.Benchmark, len(f.Splits))
	space := design.PaperSpace()
	for _, p := range space.Params {
		var vals []string
		for _, s := range f.Splits {
			if s.Parameter == p.Name {
				vals = append(vals, fmt.Sprintf("%.3g", s.Value))
			}
		}
		fmt.Fprintf(&b, "%-12s (%2d): %s\n", p.Name, f.PerParam[p.Name], strings.Join(vals, " "))
	}
	return b.String()
}

// Figure6 compares simulated and model-predicted CPI trends over the
// (il1_size, L2_lat) interaction for one benchmark (paper Figure 6,
// vortex).
type Figure6 struct {
	Benchmark string
	IL1KB     []int
	L2Lat     []int
	Simulated [][]float64
	Predicted [][]float64
}

// RunFigure6 evaluates the grid against both the simulator and the
// full-size model, fanning the independent cells out across workers.
func RunFigure6(r *Runner, bench string) (*Figure6, error) {
	ev, err := r.Evaluator(bench)
	if err != nil {
		return nil, err
	}
	m, err := r.Model(bench, r.Scale.FullSize)
	if err != nil {
		return nil, err
	}
	base := r.midConfig()
	out := &Figure6{Benchmark: bench, IL1KB: r.Scale.GridIL1, L2Lat: r.Scale.GridL2Lat}
	out.Simulated = make([][]float64, len(out.IL1KB))
	out.Predicted = make([][]float64, len(out.IL1KB))
	for i := range out.IL1KB {
		out.Simulated[i] = make([]float64, len(out.L2Lat))
		out.Predicted[i] = make([]float64, len(out.L2Lat))
	}
	cols := len(out.L2Lat)
	par.For(r.Workers(), len(out.IL1KB)*cols, func(c int) {
		i, j := c/cols, c%cols
		cfg := base
		cfg.IL1SizeKB = out.IL1KB[i]
		cfg.L2Lat = out.L2Lat[j]
		out.Simulated[i][j] = ev.Eval(cfg)
		out.Predicted[i][j] = m.PredictConfig(cfg)
	})
	return out, nil
}

// TrendAgreement reports the fraction of adjacent-cell CPI deltas whose
// sign the model predicts correctly — the "closely mirrors the trends"
// criterion of §4.1.
func (f *Figure6) TrendAgreement() float64 {
	agree, total := 0, 0
	sign := func(x float64) int {
		switch {
		case x > 0:
			return 1
		case x < 0:
			return -1
		}
		return 0
	}
	for i := range f.Simulated {
		for j := 1; j < len(f.Simulated[i]); j++ {
			ds := f.Simulated[i][j] - f.Simulated[i][j-1]
			dp := f.Predicted[i][j] - f.Predicted[i][j-1]
			if sign(ds) == sign(dp) || ds == 0 {
				agree++
			}
			total++
		}
	}
	for j := range f.L2Lat {
		for i := 1; i < len(f.Simulated); i++ {
			ds := f.Simulated[i][j] - f.Simulated[i-1][j]
			dp := f.Predicted[i][j] - f.Predicted[i-1][j]
			if sign(ds) == sign(dp) || ds == 0 {
				agree++
			}
			total++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(agree) / float64(total)
}

func (f *Figure6) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: simulated (S) vs predicted (P) CPI trends, %s\n", f.Benchmark)
	fmt.Fprintf(&b, "%8s", "il1\\lat")
	for _, lat := range f.L2Lat {
		fmt.Fprintf(&b, "  %6d ", lat)
	}
	b.WriteString("\n")
	for i, il1 := range f.IL1KB {
		fmt.Fprintf(&b, "%6dKS", il1)
		for j := range f.L2Lat {
			fmt.Fprintf(&b, "  %7.3f", f.Simulated[i][j])
		}
		fmt.Fprintf(&b, "\n%6dKP", il1)
		for j := range f.L2Lat {
			fmt.Fprintf(&b, "  %7.3f", f.Predicted[i][j])
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "trend agreement: %.0f%% of adjacent deltas match sign\n", 100*f.TrendAgreement())
	return b.String()
}

// Figure7Point pairs linear and RBF errors at one sample size.
type Figure7Point struct {
	SampleSize int
	RBFMean    float64
	LinearMean float64
}

// Figure7 compares the predictive accuracy of linear and RBF network
// models across sample sizes for selected benchmarks (§4.2).
type Figure7 struct {
	Curves map[string][]Figure7Point
	Order  []string
}

// RunFigure7 builds both model families on identical samples, fanning
// the (benchmark, size) cross product out across workers.
func RunFigure7(r *Runner, benches ...string) (*Figure7, error) {
	out := &Figure7{Curves: map[string][]Figure7Point{}, Order: benches}
	cells := crossBenchSizes(benches, r.Scale.SampleSizes)
	pts, err := par.MapErr(r.Workers(), cells, func(_ int, c benchSize) (Figure7Point, error) {
		ts, err := r.TestSet(c.bench)
		if err != nil {
			return Figure7Point{}, err
		}
		m, err := r.Model(c.bench, c.size)
		if err != nil {
			return Figure7Point{}, err
		}
		lm, err := r.Linear(c.bench, c.size)
		if err != nil {
			return Figure7Point{}, err
		}
		return Figure7Point{
			SampleSize: c.size,
			RBFMean:    m.Validate(ts).Mean,
			LinearMean: lm.Validate(ts).Mean,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		out.Curves[c.bench] = append(out.Curves[c.bench], pts[i])
	}
	return out, nil
}

func (f *Figure7) String() string {
	var b strings.Builder
	b.WriteString("Figure 7: linear vs RBF network predictive accuracy (mean CPI error %)\n")
	for _, bench := range f.Order {
		fmt.Fprintf(&b, "%s:\n  %-6s %8s %8s\n", bench, "size", "rbf%", "linear%")
		for _, p := range f.Curves[bench] {
			fmt.Fprintf(&b, "  %-6d %8.1f %8.1f\n", p.SampleSize, p.RBFMean, p.LinearMean)
		}
		xs := make([]float64, len(f.Curves[bench]))
		rbfS := make([]float64, len(xs))
		linS := make([]float64, len(xs))
		for i, p := range f.Curves[bench] {
			xs[i] = float64(p.SampleSize)
			rbfS[i] = p.RBFMean
			linS[i] = p.LinearMean
		}
		b.WriteString(plot.Lines("", xs, map[string][]float64{"rbf": rbfS, "linear": linS}, 56, 9))
	}
	return b.String()
}
