package exper

import (
	"fmt"
	"strings"

	"predperf/internal/adaptive"
	"predperf/internal/core"
	"predperf/internal/design"
	"predperf/internal/mlp"
	"predperf/internal/rtree"
)

// Families compares model families beyond the paper's RBF-vs-linear
// study (§6 invites "other modeling techniques"): the RBF network, the
// linear baseline, a single-hidden-layer neural network (as in Ipek et
// al.), and the bare regression tree, all trained on identical samples.
type Families struct {
	Benchmark string
	Sizes     []int
	// Mean % error per family, indexed like Sizes.
	RBF, Linear, MLP, Tree []float64
}

// RunFamilies trains every family at each sample size.
func RunFamilies(r *Runner, bench string) (*Families, error) {
	ts, err := r.TestSet(bench)
	if err != nil {
		return nil, err
	}
	space := design.PaperSpace()
	out := &Families{Benchmark: bench, Sizes: r.Scale.SampleSizes}
	for _, size := range r.Scale.SampleSizes {
		m, err := r.Model(bench, size)
		if err != nil {
			return nil, err
		}
		lm, err := r.Linear(bench, size)
		if err != nil {
			return nil, err
		}
		out.RBF = append(out.RBF, m.Validate(ts).Mean)
		out.Linear = append(out.Linear, lm.Validate(ts).Mean)

		// The neural network and bare tree share the RBF model's sample.
		xs := make([][]float64, len(m.Points))
		for i, p := range m.Points {
			xs[i] = p
		}
		net, err := mlp.Fit(xs, m.Responses, mlp.Options{Seed: r.Scale.Seed})
		if err != nil {
			return nil, err
		}
		tree := rtree.Build(xs, m.Responses, m.Fit.PMin)

		var mlpSum, treeSum float64
		for i, cfg := range ts.Configs {
			pt := space.Encode(cfg)
			mlpSum += 100 * abs(net.Predict(pt)-ts.Actual[i]) / ts.Actual[i]
			treeSum += 100 * abs(tree.Predict(pt)-ts.Actual[i]) / ts.Actual[i]
		}
		out.MLP = append(out.MLP, mlpSum/float64(len(ts.Configs)))
		out.Tree = append(out.Tree, treeSum/float64(len(ts.Configs)))
	}
	return out, nil
}

func (f *Families) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Model families on %s: mean CPI error %% by sample size\n", f.Benchmark)
	fmt.Fprintf(&b, "%-8s %8s %8s %8s %8s\n", "size", "rbf", "linear", "mlp", "tree")
	for i, size := range f.Sizes {
		fmt.Fprintf(&b, "%-8d %8.1f %8.1f %8.1f %8.1f\n", size, f.RBF[i], f.Linear[i], f.MLP[i], f.Tree[i])
	}
	return b.String()
}

// Adaptive compares the §6 adaptive-sampling extension against the
// one-shot procedure at the same simulation budget.
type Adaptive struct {
	Benchmark string
	Budget    int
	Rounds    []adaptive.Round
	// Mean % error on the shared test set.
	AdaptiveErr float64
	OneShotErr  float64
	// Simulations actually consumed by the adaptive build (≤ Budget).
	AdaptiveSims int
}

// RunAdaptive builds both models at the same budget.
func RunAdaptive(r *Runner, bench string) (*Adaptive, error) {
	ev, err := r.Evaluator(bench)
	if err != nil {
		return nil, err
	}
	ts, err := r.TestSet(bench)
	if err != nil {
		return nil, err
	}
	budget := r.Scale.SampleSizes[len(r.Scale.SampleSizes)/2] // a mid-sweep budget
	opt := adaptive.Options{
		InitialSize: budget / 3,
		BatchSize:   budget / 6,
		MaxSize:     budget,
		RBF:         r.Scale.RBF,
		Seed:        r.Scale.Seed,
	}
	before := ev.Simulations()
	m, rounds, err := adaptive.Build(ev, opt)
	if err != nil {
		return nil, err
	}
	adSims := ev.Simulations() - before

	oneShot, err := core.BuildRBFModel(ev, budget, core.Options{
		LHSCandidates: r.Scale.LHSCandidates, RBF: r.Scale.RBF, Seed: r.Scale.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Adaptive{
		Benchmark:    bench,
		Budget:       budget,
		Rounds:       rounds,
		AdaptiveErr:  m.Validate(ts).Mean,
		OneShotErr:   oneShot.Validate(ts).Mean,
		AdaptiveSims: adSims,
	}, nil
}

func (a *Adaptive) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Adaptive sampling (%s, budget %d simulations)\n", a.Benchmark, a.Budget)
	fmt.Fprintf(&b, "  %-8s %10s %8s\n", "size", "cv-mean%", "centers")
	for _, rd := range a.Rounds {
		fmt.Fprintf(&b, "  %-8d %10.1f %8d\n", rd.Size, rd.CVMean, rd.Centers)
	}
	fmt.Fprintf(&b, "  adaptive test error : %5.2f%% (%d simulations)\n", a.AdaptiveErr, a.AdaptiveSims)
	fmt.Fprintf(&b, "  one-shot test error : %5.2f%%\n", a.OneShotErr)
	return b.String()
}
