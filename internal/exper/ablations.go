package exper

import (
	"fmt"
	"math/rand"
	"strings"

	"predperf/internal/core"
	"predperf/internal/design"
	"predperf/internal/rbf"
	"predperf/internal/rtree"
	"predperf/internal/sample"
)

// Ablations quantifies the contribution of the paper's three method
// ingredients called out in DESIGN.md, on one benchmark at the full
// sample size: space-filling LHS sampling, AICc subset selection, and
// the per-dimension radii of Eq. 8.
type Ablations struct {
	Benchmark  string
	SampleSize int

	// Mean % error on the shared (Table 2, interior) test set.
	Full         float64 // LHS + selection + scaled radii (the paper's method)
	RandomSample float64 // uniform random sample instead of best-of-K LHS
	AllCenters   float64 // no AICc subset selection
	ForwardSel   float64 // greedy forward selection instead of tree-ordered
	GlobalRadius float64 // fixed isotropic radius instead of α·size
	FullCenters  int
	AllCentersN  int
	ForwardSelN  int

	// Mean % error on a full-space (Table 1 ranges) test set, where the
	// space-filling property of LHS matters most: interior test points
	// cannot reward edge coverage.
	FullWide         float64
	RandomSampleWide float64
}

// RunAblations builds the method variants and validates each on the same
// test set.
func RunAblations(r *Runner, bench string) (*Ablations, error) {
	size := r.Scale.FullSize
	ev, err := r.Evaluator(bench)
	if err != nil {
		return nil, err
	}
	ts, err := r.TestSet(bench)
	if err != nil {
		return nil, err
	}
	space := design.PaperSpace()
	out := &Ablations{Benchmark: bench, SampleSize: size}

	// A second test set spanning the full Table 1 ranges, where edge
	// coverage matters.
	wide := core.NewTestSet(ev, space, r.Scale.TestPoints, r.Scale.Seed+913)

	// Shared helper: validate an rbf.Network against a test set.
	validateOn := func(net *rbf.Network, set *core.TestSet) float64 {
		var sum float64
		for i, cfg := range set.Configs {
			p := net.Predict(space.Encode(cfg))
			sum += 100 * abs(p-set.Actual[i]) / set.Actual[i]
		}
		return sum / float64(len(set.Configs))
	}
	validate := func(net *rbf.Network) float64 { return validateOn(net, ts) }

	// Full method. The cached model provides the tree/center diagnostics;
	// the reported error averages over the same number of independent
	// sampling seeds as the random-sampling arm below, so neither side
	// benefits from a lucky draw.
	m, err := r.Model(bench, size)
	if err != nil {
		return nil, err
	}
	out.FullCenters = m.Fit.NumCenters()
	out.Full = m.Validate(ts).Mean
	out.FullWide = validateOn(m.Fit.Net, wide)
	for k := int64(1); k < 3; k++ {
		mk, err := core.BuildRBFModel(ev, size, core.Options{
			LHSCandidates: r.Scale.LHSCandidates, RBF: r.Scale.RBF, Seed: r.Scale.Seed + k,
		})
		if err != nil {
			return nil, err
		}
		out.Full += mk.Validate(ts).Mean
		out.FullWide += validateOn(mk.Fit.Net, wide)
	}
	out.Full /= 3
	out.FullWide /= 3

	// (a) Uniform random sampling instead of discrepancy-best LHS.
	// Single draws are noisy, so average a few independent samples.
	const seeds = 3
	var randSum, randWide float64
	for k := int64(0); k < seeds; k++ {
		rng := rand.New(rand.NewSource(r.Scale.Seed + 31 + k))
		raw := sample.UniformRandom(space, size, rng)
		xs := make([][]float64, len(raw))
		ys := make([]float64, len(raw))
		for i, p := range raw {
			cfg := space.Decode(p, size)
			xs[i] = space.Encode(cfg)
			ys[i] = ev.Eval(cfg)
		}
		randFit, err := rbf.Fit(xs, ys, r.Scale.RBF)
		if err != nil {
			return nil, err
		}
		randSum += validate(randFit.Net)
		randWide += validateOn(randFit.Net, wide)
	}
	out.RandomSample = randSum / seeds
	out.RandomSampleWide = randWide / seeds

	// (b) All tree-node centers, no subset selection. Reuse the full
	// model's training sample and winning method parameters.
	fullXs := make([][]float64, len(m.Points))
	for i, p := range m.Points {
		fullXs[i] = p
	}
	tree := rtree.Build(fullXs, m.Responses, m.Fit.PMin)
	allNet, _, _ := rbf.FitTreeAllCenters(tree, fullXs, m.Responses, m.Fit.Alpha, 0.02)
	out.AllCenters = validate(allNet)
	out.AllCentersN = allNet.M()

	// (c) Greedy forward selection instead of the tree-ordered search.
	fwdNet, _, _ := rbf.FitTreeForwardSelection(tree, fullXs, m.Responses, m.Fit.Alpha, 0.02)
	out.ForwardSel = validate(fwdNet)
	out.ForwardSelN = fwdNet.M()

	// (d) Fixed isotropic radius instead of Eq. 8.
	globNet, _, _ := rbf.FitTreeGlobalRadius(tree, fullXs, m.Responses)
	out.GlobalRadius = validate(globNet)

	return out, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func (a *Ablations) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablations (%s, sample size %d): mean CPI error %% (interior / full-space test sets)\n", a.Benchmark, a.SampleSize)
	fmt.Fprintf(&b, "  %-36s %6.2f / %-6.2f (%d centers)\n", "full method (LHS+AICc+scaled radii)", a.Full, a.FullWide, a.FullCenters)
	fmt.Fprintf(&b, "  %-36s %6.2f / %-6.2f\n", "uniform random sampling", a.RandomSample, a.RandomSampleWide)
	fmt.Fprintf(&b, "  %-36s %6.2f          (%d centers)\n", "all tree centers (no selection)", a.AllCenters, a.AllCentersN)
	fmt.Fprintf(&b, "  %-36s %6.2f          (%d centers)\n", "greedy forward selection", a.ForwardSel, a.ForwardSelN)
	fmt.Fprintf(&b, "  %-36s %6.2f\n", "fixed global radius (best of grid)", a.GlobalRadius)
	return b.String()
}
