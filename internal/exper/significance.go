package exper

import (
	"fmt"
	"strings"

	"predperf/internal/design"
)

// Significance ranks microarchitectural parameters by their estimated
// influence on CPI per benchmark, using the linear model's coefficient
// mass — the analysis of the companion HPCA 2006 study from which the
// paper's nine-parameter space was derived.
type Significance struct {
	SampleSize int
	// Ranked parameter names per benchmark, most significant first.
	Ranked map[string][]string
	Scores map[string][]float64
	Order  []string
}

// RunSignificance fits the linear model per benchmark and aggregates
// coefficient mass per parameter.
func RunSignificance(r *Runner) (*Significance, error) {
	space := design.PaperSpace()
	out := &Significance{
		SampleSize: r.Scale.FullSize,
		Ranked:     map[string][]string{},
		Scores:     map[string][]float64{},
		Order:      r.Scale.Benchmarks,
	}
	for _, bench := range r.Scale.Benchmarks {
		lm, err := r.Linear(bench, r.Scale.FullSize)
		if err != nil {
			return nil, err
		}
		for _, e := range lm.Fit.Significance(space.N()) {
			out.Ranked[bench] = append(out.Ranked[bench], space.Params[e.Param].Name)
			out.Scores[bench] = append(out.Scores[bench], e.Score)
		}
	}
	return out, nil
}

func (s *Significance) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Parameter significance (linear-model coefficient mass, sample size %d)\n", s.SampleSize)
	for _, bench := range s.Order {
		fmt.Fprintf(&b, "%-10s", bench)
		names := s.Ranked[bench]
		scores := s.Scores[bench]
		for i := 0; i < len(names) && i < 5; i++ {
			fmt.Fprintf(&b, "  %s(%.2f)", names[i], scores[i])
		}
		b.WriteString("\n")
	}
	return b.String()
}
