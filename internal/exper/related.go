package exper

import (
	"fmt"
	"strings"

	"predperf/internal/design"
	"predperf/internal/doe"
	"predperf/internal/sim"
	"predperf/internal/trace"
)

// Screening compares the Plackett–Burman screening methodology of the
// related work (Yi et al., ref [20]) against the linear-model
// significance estimates on the same benchmark: both should agree on the
// dominant main effects, while the PB design cannot see interactions —
// the §5 criticism.
type Screening struct {
	Benchmark  string
	Runs       int
	PBRanked   []string // by |main effect|
	PBEffects  []float64
	LinRanked  []string // linear-model coefficient mass ranking
	TopOverlap int      // overlap between the two top-3 sets
}

// RunScreening executes the folded-over PB design and compares the
// ranking with the linear model's.
func RunScreening(r *Runner, bench string) (*Screening, error) {
	ev, err := r.Evaluator(bench)
	if err != nil {
		return nil, err
	}
	space := design.PaperSpace()
	sc, err := doe.Screen(ev, space, true)
	if err != nil {
		return nil, err
	}
	out := &Screening{Benchmark: bench, Runs: sc.Runs}
	for _, e := range sc.Effects {
		out.PBRanked = append(out.PBRanked, e.Name)
		out.PBEffects = append(out.PBEffects, e.Effect)
	}
	lm, err := r.Linear(bench, r.Scale.FullSize)
	if err != nil {
		return nil, err
	}
	for _, e := range lm.Fit.Significance(space.N()) {
		out.LinRanked = append(out.LinRanked, space.Params[e.Param].Name)
	}
	top := map[string]bool{}
	for i := 0; i < 3 && i < len(out.PBRanked); i++ {
		top[out.PBRanked[i]] = true
	}
	for i := 0; i < 3 && i < len(out.LinRanked); i++ {
		if top[out.LinRanked[i]] {
			out.TopOverlap++
		}
	}
	return out, nil
}

func (s *Screening) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Plackett–Burman screening (%s, %d foldover runs) vs linear-model significance\n",
		s.Benchmark, s.Runs)
	fmt.Fprintf(&b, "%-4s %-14s %10s   %-14s\n", "#", "PB ranking", "effect", "linear ranking")
	for i := range s.PBRanked {
		lin := ""
		if i < len(s.LinRanked) {
			lin = s.LinRanked[i]
		}
		fmt.Fprintf(&b, "%-4d %-14s %+10.3f   %-14s\n", i+1, s.PBRanked[i], s.PBEffects[i], lin)
	}
	fmt.Fprintf(&b, "top-3 overlap: %d of 3\n", s.TopOverlap)
	return b.String()
}

// StatSim reproduces the statistical-simulation methodology of the
// related work (Eeckhout et al., ref [5]): profile a full trace,
// regenerate a much shorter synthetic trace from the measured profile,
// and check that simulating the short trace tracks the full trace's CPI
// across configurations.
type StatSim struct {
	Benchmark     string
	FullInsts     int
	SynthInsts    int
	Rows          []StatSimRow
	RankPreserved bool // synthetic CPI ordering across configs matches
}

// StatSimRow compares one configuration.
type StatSimRow struct {
	Config   string
	FullCPI  float64
	SynthCPI float64
	ErrPct   float64
}

// RunStatSim profiles the benchmark and compares full vs synthetic
// simulation at three spread-out configurations.
func RunStatSim(r *Runner, bench string) (*StatSim, error) {
	full, err := trace.Cached(bench, r.Scale.TraceLen)
	if err != nil {
		return nil, err
	}
	est := trace.EstimateProfile(bench+"-stat", full)
	// The synthetic trace must be long enough to reach steady state
	// (statistical simulation's savings come from replacing billions of
	// instructions with a few tens of thousands, not from shrinking an
	// already-short trace further).
	synthLen := r.Scale.TraceLen / 4
	if synthLen < 30000 {
		synthLen = 30000
	}
	synth := trace.Generate(est, synthLen, 7)

	out := &StatSim{Benchmark: bench, FullInsts: len(full), SynthInsts: len(synth)}
	space := design.PaperSpace()
	points := []float64{0.15, 0.5, 0.85}
	var fullPrev, synthPrev float64
	out.RankPreserved = true
	for i, t := range points {
		pt := make(design.Point, space.N())
		for k := range pt {
			pt[k] = t
		}
		cfg := sim.FromDesign(space.Decode(pt, 100))
		cfg.WarmupInsts = len(full) / 5
		fullCPI := sim.Run(cfg, full).CPI()
		cfg.WarmupInsts = len(synth) / 5
		synthCPI := sim.Run(cfg, synth).CPI()
		out.Rows = append(out.Rows, StatSimRow{
			Config:   fmt.Sprintf("t=%.2f", t),
			FullCPI:  fullCPI,
			SynthCPI: synthCPI,
			ErrPct:   100 * abs(synthCPI-fullCPI) / fullCPI,
		})
		if i > 0 && (fullCPI-fullPrev)*(synthCPI-synthPrev) < 0 {
			out.RankPreserved = false
		}
		fullPrev, synthPrev = fullCPI, synthCPI
	}
	return out, nil
}

func (s *StatSim) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Statistical simulation (%s): %d-inst synthetic trace from a %d-inst profile\n",
		s.Benchmark, s.SynthInsts, s.FullInsts)
	fmt.Fprintf(&b, "%-10s %10s %10s %8s\n", "config", "full CPI", "synth CPI", "err%")
	for _, row := range s.Rows {
		fmt.Fprintf(&b, "%-10s %10.3f %10.3f %8.1f\n", row.Config, row.FullCPI, row.SynthCPI, row.ErrPct)
	}
	fmt.Fprintf(&b, "configuration ordering preserved: %v\n", s.RankPreserved)
	return b.String()
}
