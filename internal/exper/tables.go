package exper

import (
	"fmt"
	"strings"

	"predperf/internal/design"
	"predperf/internal/par"
	"predperf/internal/rtree"
)

// Table1 renders the design space specification (parameter ranges,
// levels, transformations) — the paper's Table 1, and the Table 2
// restricted test space beside it.
type Table1 struct {
	Model *design.Space
	Test  *design.Space
}

// RunTable1 assembles the design-space tables.
func RunTable1() *Table1 {
	return &Table1{Model: design.PaperSpace(), Test: design.TestSpace()}
}

func (t *Table1) String() string {
	var b strings.Builder
	b.WriteString("Table 1: modeling design space (low → high, levels, transform)\n")
	b.WriteString(t.Model.String())
	b.WriteString("\nTable 2: restricted space for random test points\n")
	b.WriteString(t.Test.String())
	return b.String()
}

// Table3Row is one benchmark's error diagnostics at the full sample size.
type Table3Row struct {
	Benchmark      string
	Mean, Max, Std float64
	Centers        int
	PMin           int
	Alpha          float64
	Simulations    int
}

// Table3 is the error-diagnostics table (paper Table 3): mean/max/std
// absolute percentage CPI error per benchmark at the full sample size.
type Table3 struct {
	SampleSize int
	Rows       []Table3Row
	AvgMean    float64
}

// RunTable3 builds one model per benchmark at the full sample size and
// validates each on its independent random test set. Benchmarks are
// independent, so they fan out across the runner's workers; rows are
// collected in benchmark order.
func RunTable3(r *Runner) (*Table3, error) {
	out := &Table3{SampleSize: r.Scale.FullSize}
	rows, err := par.MapErr(r.Workers(), r.Scale.Benchmarks, func(_ int, bench string) (Table3Row, error) {
		m, err := r.Model(bench, r.Scale.FullSize)
		if err != nil {
			return Table3Row{}, err
		}
		ts, err := r.TestSet(bench)
		if err != nil {
			return Table3Row{}, err
		}
		st := m.Validate(ts)
		ev, _ := r.Evaluator(bench)
		return Table3Row{
			Benchmark: bench,
			Mean:      st.Mean, Max: st.Max, Std: st.Std,
			Centers: m.Fit.NumCenters(), PMin: m.Fit.PMin, Alpha: m.Fit.Alpha,
			Simulations: ev.Simulations(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	var sum float64
	for _, row := range rows {
		sum += row.Mean
	}
	out.Rows = rows
	out.AvgMean = sum / float64(len(rows))
	return out, nil
}

func (t *Table3) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: error diagnostics of the predictive model (sample size %d)\n", t.SampleSize)
	fmt.Fprintf(&b, "%-10s %7s %7s %7s   %7s %5s %5s\n", "benchmark", "mean%", "max%", "std%", "centers", "pmin", "alpha")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-10s %7.1f %7.1f %7.1f   %7d %5d %5.0f\n",
			r.Benchmark, r.Mean, r.Max, r.Std, r.Centers, r.PMin, r.Alpha)
	}
	fmt.Fprintf(&b, "%-10s %7.1f\n", "Average", t.AvgMean)
	return b.String()
}

// Table4Row is the model diagnostics at one sample size.
type Table4Row struct {
	SampleSize int
	PMin       int
	Alpha      float64
	Centers    int
	AICc       float64
}

// Table4 reports the winning method parameters and RBF center counts
// for one benchmark across sample sizes (paper Table 4, mcf).
type Table4 struct {
	Benchmark string
	Rows      []Table4Row
}

// RunTable4 sweeps the sample sizes for the diagnostics benchmark,
// building the per-size models concurrently.
func RunTable4(r *Runner, bench string) (*Table4, error) {
	rows, err := par.MapErr(r.Workers(), r.Scale.SampleSizes, func(_ int, size int) (Table4Row, error) {
		m, err := r.Model(bench, size)
		if err != nil {
			return Table4Row{}, err
		}
		return Table4Row{
			SampleSize: size,
			PMin:       m.Fit.PMin,
			Alpha:      m.Fit.Alpha,
			Centers:    m.Fit.NumCenters(),
			AICc:       m.Fit.AICc,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Table4{Benchmark: bench, Rows: rows}, nil
}

func (t *Table4) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: RBF model diagnostics for %s\n", t.Benchmark)
	fmt.Fprintf(&b, "%-12s", "sample size")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, " %6d", r.SampleSize)
	}
	fmt.Fprintf(&b, "\n%-12s", "p_min")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, " %6d", r.PMin)
	}
	fmt.Fprintf(&b, "\n%-12s", "alpha")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, " %6.0f", r.Alpha)
	}
	fmt.Fprintf(&b, "\n%-12s", "RBF centers")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, " %6d", r.Centers)
	}
	b.WriteString("\n")
	return b.String()
}

// SplitInfo is one regression-tree bifurcation in natural units.
type SplitInfo struct {
	Parameter string
	Value     float64 // natural units (fractions for IQ/LSQ)
	Depth     int
	Reduction float64
}

// Table5 lists the most significant early tree splits per benchmark
// (paper Table 5: mcf and vortex).
type Table5 struct {
	SampleSize int
	Splits     map[string][]SplitInfo
	Order      []string
}

// RunTable5 extracts the top splits from the full-size models, building
// the per-benchmark models concurrently.
func RunTable5(r *Runner, benches ...string) (*Table5, error) {
	out := &Table5{SampleSize: r.Scale.FullSize, Splits: map[string][]SplitInfo{}, Order: benches}
	space := design.PaperSpace()
	splits, err := par.MapErr(r.Workers(), benches, func(_ int, bench string) ([]SplitInfo, error) {
		m, err := r.Model(bench, r.Scale.FullSize)
		if err != nil {
			return nil, err
		}
		return splitInfos(space, m.Fit.Tree, 8), nil
	})
	if err != nil {
		return nil, err
	}
	for i, bench := range benches {
		out.Splits[bench] = splits[i]
	}
	return out, nil
}

func splitInfos(space *design.Space, tr *rtree.Tree, n int) []SplitInfo {
	var out []SplitInfo
	for _, s := range tr.TopSplits(n) {
		p := space.Params[s.Dim]
		out = append(out, SplitInfo{
			Parameter: p.Name,
			Value:     p.Natural(s.Value),
			Depth:     s.Depth,
			Reduction: s.Reduction,
		})
	}
	return out
}

func (t *Table5) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5: most significant regression-tree splits (sample size %d)\n", t.SampleSize)
	for _, bench := range t.Order {
		fmt.Fprintf(&b, "%s:\n", bench)
		fmt.Fprintf(&b, "  %-4s %-12s %10s %6s\n", "#", "parameter", "value", "depth")
		for i, s := range t.Splits[bench] {
			val := fmt.Sprintf("%.1f", s.Value)
			switch s.Parameter {
			case design.IQSize, design.LSQSize:
				val = fmt.Sprintf("%.2f*ROB", s.Value)
			case design.L2Size, design.IL1Size, design.DL1Size:
				val = fmt.Sprintf("%.0fKB", s.Value)
			}
			fmt.Fprintf(&b, "  %-4d %-12s %10s %6d\n", i+1, s.Parameter, val, s.Depth)
		}
	}
	return b.String()
}
