// Package sample implements the design-point selection machinery of the
// paper: the latin-hypercube-sampling variant of §2.2 (every setting of
// every parameter is represented in the sample), the L2-star discrepancy
// used to score candidate samples (Hickernell / Warnock), best-of-K
// candidate selection, and independent uniform random test sampling.
package sample

import (
	"context"
	"math/rand"
	"strconv"

	"predperf/internal/design"
	"predperf/internal/obs"
	"predperf/internal/par"
)

// cCandidates counts latin hypercube candidates scored by discrepancy —
// the work BestLHS spends before a single simulation runs.
var cCandidates = obs.NewCounter("sample.lhs_candidates")

// LHS draws one latin hypercube sample of n points from the given space
// using the paper's variant: a parameter with a fixed number of levels L
// contributes each of its L settings ⌈n/L⌉ or ⌊n/L⌋ times (so all
// settings appear), while a sample-size-dependent parameter is stratified
// into n strata with one point per stratum. Strata/levels are combined by
// independent random permutation per dimension.
//
// Coordinates are normalized to [0,1] and already snapped to their
// parameter's levels, so decoding them does not move the points.
func LHS(space *design.Space, n int, rng *rand.Rand) []design.Point {
	if n <= 0 {
		return nil
	}
	d := space.N()
	cols := make([][]float64, d)
	for k, p := range space.Params {
		L := p.LevelCount(n)
		col := make([]float64, n)
		if p.Levels == design.SampleSizeLevels {
			// One point per stratum, jittered within the stratum, then
			// snapped to the parameter's n-level grid.
			for i := 0; i < n; i++ {
				t := (float64(i) + rng.Float64()) / float64(n)
				col[i] = p.Quantize(t, n)
			}
		} else {
			// Cycle the L settings so each appears n/L times (±1).
			for i := 0; i < n; i++ {
				lvl := i % L
				t := 0.5
				if L > 1 {
					t = float64(lvl) / float64(L-1)
				}
				col[i] = t
			}
		}
		rng.Shuffle(n, func(i, j int) { col[i], col[j] = col[j], col[i] })
		cols[k] = col
	}
	pts := make([]design.Point, n)
	for i := 0; i < n; i++ {
		pt := make(design.Point, d)
		for k := 0; k < d; k++ {
			pt[k] = cols[k][i]
		}
		pts[i] = pt
	}
	return pts
}

// BestLHS generates candidates latin hypercube samples and returns the
// one with the lowest L2-star discrepancy, together with that
// discrepancy. candidates < 1 is treated as 1. Scoring runs on all CPUs;
// see BestLHSWorkers for an explicit worker count.
func BestLHS(space *design.Space, n, candidates int, rng *rand.Rand) ([]design.Point, float64) {
	return BestLHSWorkers(space, n, candidates, rng, 0)
}

// BestLHSWorkers is BestLHS with an explicit worker count (par.Workers
// semantics: 1 = serial, <= 0 = all CPUs). The candidates are always
// drawn serially from rng — parallelism only touches the O(n²·d)
// discrepancy scoring, whose results land in fixed per-candidate slots —
// so the selected sample and its discrepancy are bit-identical for every
// worker count. Ties keep the earliest candidate, matching the serial
// scan order.
func BestLHSWorkers(space *design.Space, n, candidates int, rng *rand.Rand, workers int) ([]design.Point, float64) {
	return BestLHSCtx(context.Background(), space, n, candidates, rng, workers)
}

// BestLHSCtx is BestLHSWorkers with context propagation: when ctx
// carries an obs.Trace, the stage span and one child span per scored
// candidate attach to it, so the Chrome trace export shows the candidate
// scoring fan-out as parallel lanes. Tracing only records timings —
// the selected sample is bit-identical with or without a trace.
func BestLHSCtx(ctx context.Context, space *design.Space, n, candidates int, rng *rand.Rand, workers int) ([]design.Point, float64) {
	if candidates < 1 {
		candidates = 1
	}
	ctx, end := obs.StartSpanCtx(ctx, "sample.best_lhs")
	defer end()
	traced := obs.TraceFrom(ctx) != nil
	cCandidates.Add(int64(candidates))
	w := par.Workers(workers)
	cands := make([][]design.Point, candidates)
	for c := range cands {
		cands[c] = LHS(space, n, rng)
	}
	// With fewer candidates than workers the surplus CPUs move inside the
	// Warnock kernel; otherwise each candidate is scored serially.
	inner := 1
	if candidates < w {
		inner = (w + candidates - 1) / candidates
	}
	scores := par.Map(w, cands, func(i int, s []design.Point) float64 {
		if traced {
			_, endCand := obs.StartSpanCtx(ctx, "sample.lhs_candidate", "i", strconv.Itoa(i))
			defer endCand()
		}
		return StarDiscrepancyWorkers(s, inner)
	})
	best := 0
	for c := 1; c < candidates; c++ {
		if scores[c] < scores[best] {
			best = c
		}
	}
	return cands[best], scores[best]
}

// UniformRandom draws n independent uniform points from the space,
// snapped to each parameter's levels. This is both the paper's test-set
// generator (drawn from the restricted Table 2 space) and the baseline
// sampling strategy that LHS is compared against.
func UniformRandom(space *design.Space, n int, rng *rand.Rand) []design.Point {
	pts := make([]design.Point, n)
	for i := range pts {
		pt := make(design.Point, space.N())
		for k, p := range space.Params {
			pt[k] = p.Quantize(rng.Float64(), n)
		}
		pts[i] = pt
	}
	return pts
}
