package sample

import (
	"os"
	"testing"

	"predperf/internal/obs"
)

// TestMain runs the whole package — including the worker-count
// bit-identity tests for BestLHS and both discrepancy kernels — with
// span timing enabled, proving that observability never perturbs the
// sampling stage's results.
func TestMain(m *testing.M) {
	obs.Enable()
	os.Exit(m.Run())
}
