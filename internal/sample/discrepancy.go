package sample

import (
	"math"

	"predperf/internal/design"
	"predperf/internal/par"
)

// StarDiscrepancy returns the L2-star discrepancy of a point set in
// [0,1]^d, computed with Warnock's closed form:
//
//	D² = 3⁻ᵈ − (2/N)·Σᵢ Πₖ (1 − xᵢₖ²)/2 + (1/N²)·ΣᵢΣⱼ Πₖ (1 − max(xᵢₖ, xⱼₖ))
//
// Lower is better (a perfectly uniform distribution approaches 0). The
// returned value is the discrepancy D itself, not D².
//
// The O(n²·d) double sum exploits symmetry (the (i,j) and (j,i) products
// are equal) and hoists the per-point 1−xᵢₖ terms, so each unordered
// pair's dimension product is computed once. It runs on all CPUs; see
// StarDiscrepancyWorkers for an explicit worker count. Row sums land in
// fixed per-point slots and are reduced in index order, so the result is
// bit-identical for every worker count.
func StarDiscrepancy(pts []design.Point) float64 {
	return StarDiscrepancyWorkers(pts, 0)
}

// StarDiscrepancyWorkers is StarDiscrepancy with an explicit worker
// count (par.Workers semantics: 1 = serial, <= 0 = all CPUs). The result
// is identical regardless of workers.
func StarDiscrepancyWorkers(pts []design.Point, workers int) float64 {
	n := len(pts)
	if n == 0 {
		return math.NaN()
	}
	d := len(pts[0])
	w := par.Workers(workers)
	term1 := math.Pow(1.0/3.0, float64(d))

	// Hoisted per-point quantities: one[i][k] = 1 − xᵢₖ (flat, row-major)
	// and the term-2 product Πₖ (1 − xᵢₖ²)/2.
	one := make([]float64, n*d)
	rowT2 := make([]float64, n)
	par.For(w, n, func(i int) {
		oi := one[i*d : (i+1)*d]
		prod := 1.0
		for k, xk := range pts[i] {
			oi[k] = 1 - xk
			prod *= (1 - xk*xk) / 2
		}
		rowT2[i] = prod
	})

	// Symmetric term 3: row i accumulates its diagonal pair plus twice
	// every pair (i, j>i), using Πₖ min(1−xᵢₖ, 1−xⱼₖ) = Πₖ (1 − max).
	rowT3 := make([]float64, n)
	par.For(w, n, func(i int) {
		oi := one[i*d : (i+1)*d]
		diag := 1.0
		for _, v := range oi {
			diag *= v
		}
		s := diag
		for j := i + 1; j < n; j++ {
			oj := one[j*d : (j+1)*d]
			prod := 1.0
			for k := 0; k < d; k++ {
				v := oi[k]
				if oj[k] < v {
					v = oj[k]
				}
				prod *= v
			}
			s += 2 * prod
		}
		rowT3[i] = s
	})

	var term2, term3 float64
	for i := 0; i < n; i++ {
		term2 += rowT2[i]
		term3 += rowT3[i]
	}
	term2 *= 2.0 / float64(n)
	term3 /= float64(n) * float64(n)
	d2 := term1 - term2 + term3
	if d2 < 0 {
		d2 = 0 // guard against rounding for near-uniform sets
	}
	return math.Sqrt(d2)
}

// CenteredDiscrepancy returns Hickernell's centered L2 discrepancy (CD₂),
// an alternative space-filling measure that is invariant under reflection
// about coordinate mid-planes:
//
//	CD² = (13/12)ᵈ − (2/N)·Σᵢ Πₖ (1 + ½|xᵢₖ−½| − ½|xᵢₖ−½|²)
//	      + (1/N²)·ΣᵢΣⱼ Πₖ (1 + ½|xᵢₖ−½| + ½|xⱼₖ−½| − ½|xᵢₖ−xⱼₖ|)
//
// Like StarDiscrepancy, the O(n²·d) double sum exploits symmetry (the
// (i,j) and (j,i) products are equal) and hoists the per-point |xᵢₖ−½|
// deviations, so each unordered pair's dimension product is computed
// once. It runs on all CPUs; see CenteredDiscrepancyWorkers for an
// explicit worker count.
func CenteredDiscrepancy(pts []design.Point) float64 {
	return CenteredDiscrepancyWorkers(pts, 0)
}

// CenteredDiscrepancyWorkers is CenteredDiscrepancy with an explicit
// worker count (par.Workers semantics: 1 = serial, <= 0 = all CPUs).
// Row sums land in fixed per-point slots and are reduced in index
// order, so the result is bit-identical for every worker count.
func CenteredDiscrepancyWorkers(pts []design.Point, workers int) float64 {
	n := len(pts)
	if n == 0 {
		return math.NaN()
	}
	d := len(pts[0])
	w := par.Workers(workers)
	term1 := math.Pow(13.0/12.0, float64(d))

	// Hoisted per-point quantities: dev[i][k] = |xᵢₖ − ½| (flat,
	// row-major) and the term-2 product Πₖ (1 + ½|xᵢₖ−½| − ½|xᵢₖ−½|²).
	dev := make([]float64, n*d)
	rowT2 := make([]float64, n)
	par.For(w, n, func(i int) {
		di := dev[i*d : (i+1)*d]
		prod := 1.0
		for k, xk := range pts[i] {
			a := math.Abs(xk - 0.5)
			di[k] = a
			prod *= 1 + 0.5*a - 0.5*a*a
		}
		rowT2[i] = prod
	})

	// Symmetric term 3: row i accumulates its diagonal pair (where
	// |xᵢₖ−xᵢₖ| vanishes, leaving Πₖ (1 + |xᵢₖ−½|)) plus twice every
	// pair (i, j>i).
	rowT3 := make([]float64, n)
	par.For(w, n, func(i int) {
		di := dev[i*d : (i+1)*d]
		xi := pts[i]
		diag := 1.0
		for _, a := range di {
			diag *= 1 + a
		}
		s := diag
		for j := i + 1; j < n; j++ {
			dj := dev[j*d : (j+1)*d]
			xj := pts[j]
			prod := 1.0
			for k := 0; k < d; k++ {
				prod *= 1 + 0.5*di[k] + 0.5*dj[k] - 0.5*math.Abs(xi[k]-xj[k])
			}
			s += 2 * prod
		}
		rowT3[i] = s
	})

	var term2, term3 float64
	for i := 0; i < n; i++ {
		term2 += rowT2[i]
		term3 += rowT3[i]
	}
	term2 *= 2.0 / float64(n)
	term3 /= float64(n) * float64(n)
	d2 := term1 - term2 + term3
	if d2 < 0 {
		d2 = 0
	}
	return math.Sqrt(d2)
}
