package sample

import (
	"math"

	"predperf/internal/design"
)

// StarDiscrepancy returns the L2-star discrepancy of a point set in
// [0,1]^d, computed with Warnock's closed form:
//
//	D² = 3⁻ᵈ − (2/N)·Σᵢ Πₖ (1 − xᵢₖ²)/2 + (1/N²)·ΣᵢΣⱼ Πₖ (1 − max(xᵢₖ, xⱼₖ))
//
// Lower is better (a perfectly uniform distribution approaches 0). The
// returned value is the discrepancy D itself, not D².
func StarDiscrepancy(pts []design.Point) float64 {
	n := len(pts)
	if n == 0 {
		return math.NaN()
	}
	d := len(pts[0])
	term1 := math.Pow(1.0/3.0, float64(d))
	var term2 float64
	for _, x := range pts {
		prod := 1.0
		for _, xk := range x {
			prod *= (1 - xk*xk) / 2
		}
		term2 += prod
	}
	term2 *= 2.0 / float64(n)
	var term3 float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			prod := 1.0
			for k := 0; k < d; k++ {
				prod *= 1 - math.Max(pts[i][k], pts[j][k])
			}
			term3 += prod
		}
	}
	term3 /= float64(n) * float64(n)
	d2 := term1 - term2 + term3
	if d2 < 0 {
		d2 = 0 // guard against rounding for near-uniform sets
	}
	return math.Sqrt(d2)
}

// CenteredDiscrepancy returns Hickernell's centered L2 discrepancy (CD₂),
// an alternative space-filling measure that is invariant under reflection
// about coordinate mid-planes:
//
//	CD² = (13/12)ᵈ − (2/N)·Σᵢ Πₖ (1 + ½|xᵢₖ−½| − ½|xᵢₖ−½|²)
//	      + (1/N²)·ΣᵢΣⱼ Πₖ (1 + ½|xᵢₖ−½| + ½|xⱼₖ−½| − ½|xᵢₖ−xⱼₖ|)
func CenteredDiscrepancy(pts []design.Point) float64 {
	n := len(pts)
	if n == 0 {
		return math.NaN()
	}
	d := len(pts[0])
	term1 := math.Pow(13.0/12.0, float64(d))
	var term2 float64
	for _, x := range pts {
		prod := 1.0
		for _, xk := range x {
			a := math.Abs(xk - 0.5)
			prod *= 1 + 0.5*a - 0.5*a*a
		}
		term2 += prod
	}
	term2 *= 2.0 / float64(n)
	var term3 float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			prod := 1.0
			for k := 0; k < d; k++ {
				ai := math.Abs(pts[i][k] - 0.5)
				aj := math.Abs(pts[j][k] - 0.5)
				prod *= 1 + 0.5*ai + 0.5*aj - 0.5*math.Abs(pts[i][k]-pts[j][k])
			}
			term3 += prod
		}
	}
	term3 /= float64(n) * float64(n)
	d2 := term1 - term2 + term3
	if d2 < 0 {
		d2 = 0
	}
	return math.Sqrt(d2)
}
