package sample

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"predperf/internal/design"
)

func TestLHSCoversAllFixedLevels(t *testing.T) {
	space := design.PaperSpace()
	rng := rand.New(rand.NewSource(1))
	n := 48
	pts := LHS(space, n, rng)
	if len(pts) != n {
		t.Fatalf("LHS returned %d points, want %d", len(pts), n)
	}
	// Every fixed-level parameter must have all its settings present.
	for k, p := range space.Params {
		if p.Levels == design.SampleSizeLevels {
			continue
		}
		L := p.LevelCount(n)
		seen := map[int]int{}
		for _, pt := range pts {
			lvl := int(math.Round(pt[k] * float64(L-1)))
			seen[lvl]++
		}
		if len(seen) != L {
			t.Fatalf("param %s: only %d of %d levels represented", p.Name, len(seen), L)
		}
		// Balanced within ±1 occurrence.
		min, max := n, 0
		for _, c := range seen {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if max-min > 1 {
			t.Fatalf("param %s: unbalanced level counts %v", p.Name, seen)
		}
	}
}

func TestLHSStratifiesContinuousDims(t *testing.T) {
	space := design.PaperSpace()
	rng := rand.New(rand.NewSource(7))
	n := 40
	pts := LHS(space, n, rng)
	k := space.Index(design.ROBSize)
	// One point per stratum: sorted coordinates must be near-distinct and
	// spread across [0,1] (each stratum of width 1/n holds one point,
	// up to the snapping of the n-level grid).
	vals := make([]float64, n)
	for i, pt := range pts {
		vals[i] = pt[k]
	}
	var lo, hi int
	for _, v := range vals {
		if v < 0.25 {
			lo++
		}
		if v > 0.75 {
			hi++
		}
	}
	if lo < n/8 || hi < n/8 {
		t.Fatalf("ROB coordinate poorly stratified: %d low, %d high of %d", lo, hi, n)
	}
}

func TestLHSDeterministicGivenSeed(t *testing.T) {
	space := design.PaperSpace()
	a := LHS(space, 20, rand.New(rand.NewSource(42)))
	b := LHS(space, 20, rand.New(rand.NewSource(42)))
	for i := range a {
		for k := range a[i] {
			if a[i][k] != b[i][k] {
				t.Fatal("LHS not deterministic for equal seeds")
			}
		}
	}
}

func TestStarDiscrepancyKnownValues(t *testing.T) {
	// Single point at the origin in 1-D:
	// D² = 1/3 − 2·(1−0)/2 + (1−0) = 1/3 → D = 1/√3.
	d := StarDiscrepancy([]design.Point{{0}})
	if math.Abs(d-1/math.Sqrt(3)) > 1e-12 {
		t.Fatalf("D(origin) = %v, want %v", d, 1/math.Sqrt(3))
	}
	// Single point at x: D² = 1/3 − (1−x²) + (1−x). Minimum at x=0.5:
	// D² = 1/3 − 0.75 + 0.5 = 1/12.
	d = StarDiscrepancy([]design.Point{{0.5}})
	if math.Abs(d-math.Sqrt(1.0/12.0)) > 1e-12 {
		t.Fatalf("D(0.5) = %v, want %v", d, math.Sqrt(1.0/12.0))
	}
}

func TestDiscrepancyDecreasesWithDenserGrids(t *testing.T) {
	// Regular 1-D grids of increasing size must have decreasing D.
	prev := math.Inf(1)
	for _, n := range []int{2, 4, 8, 16, 32} {
		pts := make([]design.Point, n)
		for i := range pts {
			pts[i] = design.Point{(float64(i) + 0.5) / float64(n)}
		}
		d := StarDiscrepancy(pts)
		if d >= prev {
			t.Fatalf("discrepancy did not decrease at n=%d: %v >= %v", n, d, prev)
		}
		prev = d
	}
}

func TestLHSBeatsRandomOnDiscrepancy(t *testing.T) {
	space := design.PaperSpace()
	rng := rand.New(rand.NewSource(3))
	n, trials := 50, 12
	var lhsSum, rndSum float64
	for i := 0; i < trials; i++ {
		lhsSum += StarDiscrepancy(LHS(space, n, rng))
		rndSum += StarDiscrepancy(UniformRandom(space, n, rng))
	}
	if lhsSum >= rndSum {
		t.Fatalf("LHS mean discrepancy %v not better than random %v", lhsSum/float64(trials), rndSum/float64(trials))
	}
}

func TestBestLHSImprovesOnSingleDraw(t *testing.T) {
	space := design.PaperSpace()
	n := 40
	_, dBest := BestLHS(space, n, 20, rand.New(rand.NewSource(5)))
	// Average single-draw discrepancy over a few seeds.
	var sum float64
	const trials = 10
	for i := int64(0); i < trials; i++ {
		sum += StarDiscrepancy(LHS(space, n, rand.New(rand.NewSource(100+i))))
	}
	if dBest >= sum/trials {
		t.Fatalf("best-of-20 discrepancy %v not better than mean single draw %v", dBest, sum/trials)
	}
}

func TestQuickDiscrepancyPositiveAndFinite(t *testing.T) {
	space := design.PaperSpace()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := LHS(space, 10+int(rng.Int31n(40)), rng)
		d := StarDiscrepancy(pts)
		c := CenteredDiscrepancy(pts)
		return d > 0 && !math.IsNaN(d) && !math.IsInf(d, 0) && c > 0 && !math.IsNaN(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCenteredDiscrepancyReflectionInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := make([]design.Point, 20)
	ref := make([]design.Point, 20)
	for i := range pts {
		p := design.Point{rng.Float64(), rng.Float64(), rng.Float64()}
		pts[i] = p
		ref[i] = design.Point{1 - p[0], p[1], p[2]} // reflect dim 0 about 1/2
	}
	a, b := CenteredDiscrepancy(pts), CenteredDiscrepancy(ref)
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("CD not reflection invariant: %v vs %v", a, b)
	}
}

func TestCenteredDiscrepancyIdenticalAcrossWorkerCounts(t *testing.T) {
	space := design.PaperSpace()
	for _, seed := range []int64{1, 9, 33} {
		pts := LHS(space, 60, rand.New(rand.NewSource(seed)))
		want := CenteredDiscrepancyWorkers(pts, 1)
		for _, workers := range []int{2, 3, 8, 64} {
			if got := CenteredDiscrepancyWorkers(pts, workers); got != want {
				t.Fatalf("seed %d, workers %d: CD %v != serial %v", seed, workers, got, want)
			}
		}
		if got := CenteredDiscrepancy(pts); got != want {
			t.Fatalf("seed %d: default-parallel CD %v != serial %v", seed, got, want)
		}
	}
}

func TestStarDiscrepancyIdenticalAcrossWorkerCounts(t *testing.T) {
	space := design.PaperSpace()
	for _, seed := range []int64{1, 9, 33} {
		pts := LHS(space, 60, rand.New(rand.NewSource(seed)))
		want := StarDiscrepancyWorkers(pts, 1)
		for _, workers := range []int{2, 3, 8, 64} {
			if got := StarDiscrepancyWorkers(pts, workers); got != want {
				t.Fatalf("seed %d, workers %d: discrepancy %v != serial %v", seed, workers, got, want)
			}
		}
		if got := StarDiscrepancy(pts); got != want {
			t.Fatalf("seed %d: default-parallel discrepancy %v != serial %v", seed, got, want)
		}
	}
}

func TestBestLHSIdenticalAcrossWorkerCounts(t *testing.T) {
	space := design.PaperSpace()
	cases := []struct {
		seed     int64
		n, cands int
	}{
		{1, 30, 12},
		{7, 50, 5},
		{42, 20, 1},
		{99, 40, 24},
	}
	for _, c := range cases {
		wantPts, wantD := BestLHSWorkers(space, c.n, c.cands, rand.New(rand.NewSource(c.seed)), 1)
		for _, workers := range []int{0, 2, 4, 16} {
			gotPts, gotD := BestLHSWorkers(space, c.n, c.cands, rand.New(rand.NewSource(c.seed)), workers)
			if gotD != wantD {
				t.Fatalf("seed %d workers %d: discrepancy %v != serial %v", c.seed, workers, gotD, wantD)
			}
			for i := range wantPts {
				for k := range wantPts[i] {
					if gotPts[i][k] != wantPts[i][k] {
						t.Fatalf("seed %d workers %d: point %d dim %d differs", c.seed, workers, i, k)
					}
				}
			}
		}
	}
}

func TestUniformRandomInBounds(t *testing.T) {
	space := design.TestSpace()
	pts := UniformRandom(space, 50, rand.New(rand.NewSource(11)))
	if len(pts) != 50 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, pt := range pts {
		for _, v := range pt {
			if v < 0 || v > 1 {
				t.Fatalf("coordinate %v out of [0,1]", v)
			}
		}
	}
}

func TestLHSEdgeCases(t *testing.T) {
	space := design.PaperSpace()
	rng := rand.New(rand.NewSource(1))
	if got := LHS(space, 0, rng); got != nil {
		t.Fatalf("LHS(0) = %v, want nil", got)
	}
	one := LHS(space, 1, rng)
	if len(one) != 1 || len(one[0]) != space.N() {
		t.Fatalf("LHS(1) malformed: %v", one)
	}
}

func TestRadicalInverseKnownValues(t *testing.T) {
	// Base 2: 1 → 0.5, 2 → 0.25, 3 → 0.75, 4 → 0.125.
	cases := []struct {
		i    uint64
		want float64
	}{{1, 0.5}, {2, 0.25}, {3, 0.75}, {4, 0.125}}
	for _, c := range cases {
		if got := radicalInverse(c.i, 2); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("radicalInverse(%d,2) = %v, want %v", c.i, got, c.want)
		}
	}
	// Base 3 with reverse scrambling (0→0, 1→2, 2→1): i=3 has digits
	// (0,1) → scrambled (0,2) → 0/3 + 2/9 = 2/9.
	if got := radicalInverse(3, 3); math.Abs(got-2.0/9) > 1e-12 {
		t.Fatalf("radicalInverse(3,3) = %v", got)
	}
}

func TestHammersleyWellFormed(t *testing.T) {
	space := design.PaperSpace()
	pts := Hammersley(space, 60)
	if len(pts) != 60 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, pt := range pts {
		if len(pt) != space.N() {
			t.Fatal("wrong dimensionality")
		}
		for _, v := range pt {
			if v < 0 || v > 1 {
				t.Fatalf("coordinate %v out of range", v)
			}
		}
	}
	// Deterministic.
	again := Hammersley(space, 60)
	for i := range pts {
		for k := range pts[i] {
			if pts[i][k] != again[i][k] {
				t.Fatal("Hammersley not deterministic")
			}
		}
	}
}

func TestHammersleyCompetitiveDiscrepancy(t *testing.T) {
	// The Hammersley set must beat the *average* single random draw on
	// star discrepancy (it is a classic low-discrepancy construction).
	space := design.PaperSpace()
	n := 60
	h := StarDiscrepancy(Hammersley(space, n))
	var rndSum float64
	const trials = 8
	for i := int64(0); i < trials; i++ {
		rndSum += StarDiscrepancy(UniformRandom(space, n, rand.New(rand.NewSource(200+i))))
	}
	if h >= rndSum/trials {
		t.Fatalf("Hammersley discrepancy %v not below mean random %v", h, rndSum/trials)
	}
}
