package sample

import (
	"predperf/internal/design"
)

// first primes used as radical-inverse bases for the Hammersley set.
var primes = []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43}

// radicalInverse reflects the base-b digits of i about the radix point
// (the van der Corput sequence), with the Vandewoestyne–Cools reverse
// digit scrambling (0→0, d→b−d) that breaks the diagonal correlations
// plain Halton sequences develop between large-base dimensions.
func radicalInverse(i, b uint64) float64 {
	var inv float64
	f := 1.0 / float64(b)
	for i > 0 {
		d := i % b
		if d != 0 {
			d = b - d
		}
		inv += f * float64(d)
		i /= b
		f /= float64(b)
	}
	return inv
}

// Hammersley returns the n-point Hammersley set in the space's unit
// cube, snapped to each parameter's levels: the first coordinate is the
// stratified sequence i/n and the remaining coordinates are van der
// Corput sequences in successive prime bases. It is a deterministic
// low-discrepancy alternative to latin hypercube sampling (no draws to
// optimize over), provided for the sampling-strategy comparison.
// Spaces with more than 15 dimensions are not supported and return nil.
func Hammersley(space *design.Space, n int) []design.Point {
	d := space.N()
	if d-1 > len(primes) || n <= 0 {
		return nil
	}
	pts := make([]design.Point, n)
	for i := 0; i < n; i++ {
		pt := make(design.Point, d)
		pt[0] = space.Params[0].Quantize((float64(i)+0.5)/float64(n), n)
		for k := 1; k < d; k++ {
			pt[k] = space.Params[k].Quantize(radicalInverse(uint64(i)+1, primes[k-1]), n)
		}
		pts[i] = pt
	}
	return pts
}
