package rtree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingleSplitOnStepFunction(t *testing.T) {
	// y = 0 for x<0.5, 10 for x>0.5 in dim 0; dim 1 is noise-free junk.
	var x [][]float64
	var y []float64
	for i := 0; i < 16; i++ {
		v := float64(i) / 15
		x = append(x, []float64{v, float64(i%4) / 3})
		if v < 0.5 {
			y = append(y, 0)
		} else {
			y = append(y, 10)
		}
	}
	tr := Build(x, y, 8)
	if len(tr.Splits) == 0 {
		t.Fatal("no splits made")
	}
	first := tr.Splits[0]
	if first.Dim != 0 {
		t.Fatalf("first split on dim %d, want 0", first.Dim)
	}
	if first.Value < 7.0/15 || first.Value > 8.0/15 {
		t.Fatalf("first split at %v, want near 0.5", first.Value)
	}
	if first.Depth != 1 {
		t.Fatalf("first split depth = %d, want 1", first.Depth)
	}
}

func TestPMinStopsSplitting(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var x [][]float64
	var y []float64
	for i := 0; i < 64; i++ {
		pt := []float64{rng.Float64(), rng.Float64()}
		x = append(x, pt)
		y = append(y, pt[0]*pt[0]+rng.NormFloat64()*0.01)
	}
	for _, pmin := range []int{1, 4, 16} {
		tr := Build(x, y, pmin)
		for _, leaf := range tr.Leaves() {
			if len(leaf.Index) > pmin {
				// A leaf may exceed pmin only if it admits no
				// error-reducing split; with continuous noise that is
				// effectively impossible for pmin >= 1.
				t.Fatalf("pmin=%d: leaf with %d points", pmin, len(leaf.Index))
			}
		}
	}
}

func TestPartitionIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var x [][]float64
	var y []float64
	for i := 0; i < 50; i++ {
		x = append(x, []float64{rng.Float64(), rng.Float64(), rng.Float64()})
		y = append(y, rng.Float64())
	}
	tr := Build(x, y, 5)
	// Every sample appears in exactly one leaf.
	seen := map[int]int{}
	for _, leaf := range tr.Leaves() {
		for _, i := range leaf.Index {
			seen[i]++
		}
	}
	if len(seen) != len(x) {
		t.Fatalf("%d of %d samples in leaves", len(seen), len(x))
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("sample %d in %d leaves", i, c)
		}
	}
}

func TestChildBoundsPartitionParent(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var x [][]float64
	var y []float64
	for i := 0; i < 40; i++ {
		x = append(x, []float64{rng.Float64(), rng.Float64()})
		y = append(y, x[i][0]+2*x[i][1])
	}
	tr := Build(x, y, 2)
	for _, n := range tr.Nodes() {
		if n.Leaf() {
			continue
		}
		d := n.SplitDim
		if n.Left.Hi[d] != n.SplitVal || n.Right.Lo[d] != n.SplitVal {
			t.Fatal("child bounds do not meet at the split value")
		}
		for k := range n.Lo {
			if k == d {
				continue
			}
			if n.Left.Lo[k] != n.Lo[k] || n.Left.Hi[k] != n.Hi[k] ||
				n.Right.Lo[k] != n.Lo[k] || n.Right.Hi[k] != n.Hi[k] {
				t.Fatal("non-split dimensions changed in children")
			}
		}
	}
}

func TestPredictReproducesPiecewiseConstant(t *testing.T) {
	// With pmin=1 and distinct x, the tree interpolates training points.
	var x [][]float64
	var y []float64
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 30; i++ {
		x = append(x, []float64{rng.Float64(), rng.Float64()})
		y = append(y, rng.Float64()*5)
	}
	tr := Build(x, y, 1)
	for i := range x {
		if got := tr.Predict(x[i]); math.Abs(got-y[i]) > 1e-12 {
			t.Fatalf("Predict(train[%d]) = %v, want %v", i, got, y[i])
		}
	}
}

func TestConstantResponseMakesNoSplits(t *testing.T) {
	x := [][]float64{{0.1, 0.2}, {0.5, 0.7}, {0.9, 0.3}, {0.4, 0.8}}
	y := []float64{2, 2, 2, 2}
	tr := Build(x, y, 1)
	if len(tr.Splits) != 0 {
		t.Fatalf("made %d splits on constant data", len(tr.Splits))
	}
	if !tr.Root.Leaf() || tr.Root.Mean != 2 {
		t.Fatal("root should be a leaf with mean 2")
	}
}

func TestDuplicatePointsDoNotLoop(t *testing.T) {
	x := [][]float64{{0.5, 0.5}, {0.5, 0.5}, {0.5, 0.5}}
	y := []float64{1, 2, 3}
	tr := Build(x, y, 1) // cannot separate duplicates; must terminate
	if !tr.Root.Leaf() {
		t.Fatal("expected a single leaf for coincident points")
	}
}

func TestSplitReductionsMatchSSEAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var x [][]float64
	var y []float64
	for i := 0; i < 60; i++ {
		x = append(x, []float64{rng.Float64(), rng.Float64()})
		y = append(y, math.Sin(6*x[i][0])+x[i][1])
	}
	tr := Build(x, y, 4)
	for _, n := range tr.Nodes() {
		if n.Leaf() {
			continue
		}
		red := n.SSE - n.Left.SSE - n.Right.SSE
		// find the recorded split for this node
		found := false
		for _, s := range tr.Splits {
			if s.Dim == n.SplitDim && s.Value == n.SplitVal && s.Depth == n.Depth {
				if math.Abs(s.Reduction-red) > 1e-9*(1+math.Abs(red)) {
					t.Fatalf("recorded reduction %v, recomputed %v", s.Reduction, red)
				}
				found = true
				break
			}
		}
		if !found {
			t.Fatal("split not recorded")
		}
	}
}

func TestTopSplitsOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var x [][]float64
	var y []float64
	for i := 0; i < 80; i++ {
		x = append(x, []float64{rng.Float64(), rng.Float64(), rng.Float64()})
		y = append(y, 5*x[i][0]+x[i][1]*x[i][2])
	}
	tr := Build(x, y, 2)
	top := tr.TopSplits(8)
	for i := 1; i < len(top); i++ {
		if top[i].Depth < top[i-1].Depth {
			t.Fatal("TopSplits not ordered by depth")
		}
		if top[i].Depth == top[i-1].Depth && top[i].Reduction > top[i-1].Reduction+1e-12 {
			t.Fatal("TopSplits not ordered by reduction within a depth")
		}
	}
}

// Property: the mean of each node equals the weighted mean of its
// children (Eq. 5/6 consistency), on random data.
func TestQuickNodeMeansConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + int(rng.Int31n(60))
		x := make([][]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = []float64{rng.Float64(), rng.Float64()}
			y[i] = rng.NormFloat64()
		}
		tr := Build(x, y, 1+int(rng.Int31n(4)))
		for _, nd := range tr.Nodes() {
			if nd.Leaf() {
				continue
			}
			pl := float64(len(nd.Left.Index))
			pr := float64(len(nd.Right.Index))
			m := (pl*nd.Left.Mean + pr*nd.Right.Mean) / (pl + pr)
			if math.Abs(m-nd.Mean) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: deeper trees (smaller pmin) never have larger total leaf SSE.
func TestQuickDeeperTreesFitBetter(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 40
		x := make([][]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = []float64{rng.Float64(), rng.Float64()}
			y[i] = math.Sin(5*x[i][0]) + rng.NormFloat64()*0.1
		}
		sse := func(pmin int) float64 {
			var s float64
			for _, leaf := range Build(x, y, pmin).Leaves() {
				s += leaf.SSE
			}
			return s
		}
		return sse(1) <= sse(4)+1e-9 && sse(4) <= sse(16)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
