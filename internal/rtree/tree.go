// Package rtree implements the CART-style regression trees of §2.4: the
// input space is recursively bifurcated along a parameter k at a value b
// chosen to minimize the residual square error E(k,b) between the
// partition means and the data (paper Eq. 3–7). Every node carries the
// hyper-rectangle of design space it covers — its center and size later
// become RBF centers and radii (§2.5).
package rtree

import (
	"fmt"
	"math"
	"sort"
)

// Node is one region of the design space. Bounds are in the normalized
// [0,1]^d modeling space; the root covers the whole cube.
type Node struct {
	Lo, Hi []float64 // hyper-rectangle bounds, inclusive
	Index  []int     // sample indices falling in this region
	Mean   float64   // mean response of those samples
	SSE    float64   // Σ (y − mean)² within the region

	SplitDim int     // valid when not a leaf
	SplitVal float64 // bifurcation boundary b
	Depth    int     // root is depth 0; its children's splits have depth 1

	Left, Right *Node
}

// Leaf reports whether the node is terminal.
func (n *Node) Leaf() bool { return n.Left == nil }

// Center returns the center of the node's hyper-rectangle.
func (n *Node) Center() []float64 {
	c := make([]float64, len(n.Lo))
	for i := range c {
		c[i] = (n.Lo[i] + n.Hi[i]) / 2
	}
	return c
}

// Size returns the per-dimension edge lengths of the hyper-rectangle.
func (n *Node) Size() []float64 {
	s := make([]float64, len(n.Lo))
	for i := range s {
		s[i] = n.Hi[i] - n.Lo[i]
	}
	return s
}

// Split records one bifurcation for diagnostics (Table 5, Figure 5).
type Split struct {
	Dim       int     // parameter index
	Value     float64 // boundary b in normalized coordinates
	Depth     int     // 1 for the root split, children at parent+1
	Reduction float64 // SSE(parent) − SSE(left) − SSE(right)
	Order     int     // construction order (0 = first split made)
}

// Tree is a fitted regression tree.
type Tree struct {
	Root   *Node
	Dim    int
	Splits []Split // in construction order
	PMin   int
}

// Build fits a regression tree on the sample (x, y). Splitting continues
// while a node holds more than pmin points and a variance-reducing
// bifurcation exists. x rows must share a common length; bounds of the
// root region are the unit cube.
func Build(x [][]float64, y []float64, pmin int) *Tree {
	if len(x) != len(y) {
		panic(fmt.Sprintf("rtree: %d points but %d responses", len(x), len(y)))
	}
	if len(x) == 0 {
		panic("rtree: empty sample")
	}
	if pmin < 1 {
		pmin = 1
	}
	d := len(x[0])
	root := &Node{Lo: make([]float64, d), Hi: make([]float64, d)}
	for i := range root.Hi {
		root.Hi[i] = 1
	}
	root.Index = make([]int, len(x))
	for i := range root.Index {
		root.Index[i] = i
	}
	root.Mean, root.SSE = meanSSE(root.Index, y)
	t := &Tree{Root: root, Dim: d, PMin: pmin}
	t.grow(root, x, y, 1)
	return t
}

func meanSSE(idx []int, y []float64) (mean, sse float64) {
	for _, i := range idx {
		mean += y[i]
	}
	mean /= float64(len(idx))
	for _, i := range idx {
		d := y[i] - mean
		sse += d * d
	}
	return mean, sse
}

// grow recursively bifurcates node (whose split would be at the given
// depth) while it exceeds pmin points.
func (t *Tree) grow(n *Node, x [][]float64, y []float64, depth int) {
	if len(n.Index) <= t.PMin {
		return
	}
	dim, val, red, ok := bestSplit(n.Index, x, y, n.SSE)
	if !ok {
		return
	}
	n.SplitDim, n.SplitVal, n.Depth = dim, val, depth
	t.Splits = append(t.Splits, Split{Dim: dim, Value: val, Depth: depth, Reduction: red, Order: len(t.Splits)})

	var li, ri []int
	for _, i := range n.Index {
		if x[i][dim] <= val {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	mkChild := func(idx []int, lo, hi []float64) *Node {
		c := &Node{Lo: lo, Hi: hi, Index: idx}
		c.Mean, c.SSE = meanSSE(idx, y)
		return c
	}
	llo, lhi := cloneBounds(n.Lo), cloneBounds(n.Hi)
	lhi[dim] = val
	rlo, rhi := cloneBounds(n.Lo), cloneBounds(n.Hi)
	rlo[dim] = val
	n.Left = mkChild(li, llo, lhi)
	n.Right = mkChild(ri, rlo, rhi)
	t.grow(n.Left, x, y, depth+1)
	t.grow(n.Right, x, y, depth+1)
}

func cloneBounds(b []float64) []float64 {
	c := make([]float64, len(b))
	copy(c, b)
	return c
}

// bestSplit scans every dimension and every boundary between adjacent
// distinct sorted values, returning the bifurcation minimising E(k,b)
// (equivalently, maximising the SSE reduction). ok is false when no
// dimension admits a split (all coordinates tied) or no split reduces
// the error.
func bestSplit(idx []int, x [][]float64, y []float64, parentSSE float64) (dim int, val float64, reduction float64, ok bool) {
	p := len(idx)
	type pv struct{ v, y float64 }
	vals := make([]pv, p)
	best := math.Inf(1)
	for k := 0; k < len(x[idx[0]]); k++ {
		for j, i := range idx {
			vals[j] = pv{x[i][k], y[i]}
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a].v < vals[b].v })
		// Prefix sums of y and y² over the sorted order let us evaluate
		// E(k,b) for every boundary in O(p).
		var sumL, sqL float64
		var sumT, sqT float64
		for _, e := range vals {
			sumT += e.y
			sqT += e.y * e.y
		}
		for j := 0; j < p-1; j++ {
			sumL += vals[j].y
			sqL += vals[j].y * vals[j].y
			if vals[j].v == vals[j+1].v {
				continue // boundary must separate distinct values
			}
			nl, nr := float64(j+1), float64(p-j-1)
			sseL := sqL - sumL*sumL/nl
			sumR, sqR := sumT-sumL, sqT-sqL
			sseR := sqR - sumR*sumR/nr
			e := sseL + sseR
			if e < best {
				best = e
				dim = k
				val = (vals[j].v + vals[j+1].v) / 2
			}
		}
	}
	if math.IsInf(best, 1) {
		return 0, 0, 0, false
	}
	reduction = parentSSE - best
	if reduction <= 1e-15 {
		return 0, 0, 0, false
	}
	return dim, val, reduction, true
}

// Predict returns the mean response of the leaf containing x.
func (t *Tree) Predict(x []float64) float64 {
	n := t.Root
	for !n.Leaf() {
		if x[n.SplitDim] <= n.SplitVal {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n.Mean
}

// Nodes returns all nodes in breadth-first order (root first). This is
// the center-consideration order used by the RBF subset selection.
func (t *Tree) Nodes() []*Node {
	var out []*Node
	queue := []*Node{t.Root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		out = append(out, n)
		if !n.Leaf() {
			queue = append(queue, n.Left, n.Right)
		}
	}
	return out
}

// Leaves returns the terminal nodes in breadth-first order.
func (t *Tree) Leaves() []*Node {
	var out []*Node
	for _, n := range t.Nodes() {
		if n.Leaf() {
			out = append(out, n)
		}
	}
	return out
}

// TopSplits returns up to n splits ordered the way the paper presents
// Table 5: shallower first, larger error reduction first within a depth.
func (t *Tree) TopSplits(n int) []Split {
	s := make([]Split, len(t.Splits))
	copy(s, t.Splits)
	sort.Slice(s, func(a, b int) bool {
		if s[a].Depth != s[b].Depth {
			return s[a].Depth < s[b].Depth
		}
		return s[a].Reduction > s[b].Reduction
	})
	if n > len(s) {
		n = len(s)
	}
	return s[:n]
}
