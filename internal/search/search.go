// Package search implements model-guided design-space exploration — the
// use the paper's conclusion proposes for its models ("accurate enough
// to be potentially used by processor architects to systematically
// explore the design space for optimal design points").
//
// Minimize scores every configuration in a candidate enumeration with a
// fitted model (microseconds per point), keeps a shortlist of the best
// predictions, and verifies the shortlist with real simulation: a pure
// arg-min over hundreds of thousands of model predictions would exploit
// model error at the corners of the space, so the returned winner is
// always simulator-confirmed.
package search

import (
	"errors"
	"fmt"
	"math"

	"predperf/internal/core"
	"predperf/internal/design"
)

// Predictor scores a configuration (a fitted core.Model, or any model
// with the same contract).
type Predictor interface {
	PredictConfig(cfg design.Config) float64
}

// Options configures a search.
type Options struct {
	// Constraint rejects infeasible configurations before scoring
	// (e.g. a hardware budget). nil accepts everything.
	Constraint func(design.Config) bool
	// Shortlist is how many of the best-predicted candidates are
	// verified with real simulation (default 8).
	Shortlist int
	// Space enumerated when Candidates is nil: every combination of the
	// per-parameter level values at this grid resolution (default:
	// design.PaperSpace() at its native levels, S-params at GridLevels).
	Space      *design.Space
	GridLevels int // levels for sample-size-dependent parameters (default 5)
	// Candidates overrides grid enumeration with an explicit list.
	Candidates []design.Config
}

// Result is a verified search outcome.
type Result struct {
	Best      design.Config
	BestValue float64 // simulator-verified response of Best
	Evaluated int     // configurations scored by the model
	Verified  int     // configurations simulated
	// Shortlist pairs every verified candidate with its predicted and
	// simulated responses, best-simulated first.
	Shortlist []Candidate
}

// Candidate is one verified configuration.
type Candidate struct {
	Config    design.Config
	Predicted float64
	Actual    float64
}

// Minimize finds the feasible configuration with the lowest response.
// The model ranks candidates; ev verifies the shortlist.
func Minimize(model Predictor, ev core.Evaluator, opt Options) (*Result, error) {
	if model == nil || ev == nil {
		return nil, errors.New("search: model and evaluator are required")
	}
	if opt.Shortlist <= 0 {
		opt.Shortlist = 8
	}
	cands := opt.Candidates
	if cands == nil {
		// A space that cannot Decode (missing paper parameters) would
		// panic inside the enumeration; reject it with an error instead.
		if opt.Space != nil {
			if err := opt.Space.CheckDecodable(); err != nil {
				return nil, fmt.Errorf("search: cannot enumerate candidates: %w", err)
			}
		}
		cands = EnumerateGrid(opt.Space, opt.GridLevels)
	}
	res := &Result{}
	type scored struct {
		cfg design.Config
		v   float64
	}
	top := make([]scored, 0, opt.Shortlist+1)
	for _, cfg := range cands {
		if opt.Constraint != nil && !opt.Constraint(cfg) {
			continue
		}
		res.Evaluated++
		v := model.PredictConfig(cfg)
		if math.IsNaN(v) {
			continue
		}
		if len(top) < opt.Shortlist || v < top[len(top)-1].v {
			top = append(top, scored{cfg, v})
			for i := len(top) - 1; i > 0 && top[i].v < top[i-1].v; i-- {
				top[i], top[i-1] = top[i-1], top[i]
			}
			if len(top) > opt.Shortlist {
				top = top[:opt.Shortlist]
			}
		}
	}
	if len(top) == 0 {
		return nil, errors.New("search: no feasible candidates")
	}
	best := math.Inf(1)
	for _, s := range top {
		actual := ev.Eval(s.cfg)
		res.Verified++
		res.Shortlist = append(res.Shortlist, Candidate{Config: s.cfg, Predicted: s.v, Actual: actual})
		if actual < best {
			best = actual
			res.Best, res.BestValue = s.cfg, actual
		}
	}
	// Order the report best-simulated first.
	for i := 1; i < len(res.Shortlist); i++ {
		for j := i; j > 0 && res.Shortlist[j].Actual < res.Shortlist[j-1].Actual; j-- {
			res.Shortlist[j], res.Shortlist[j-1] = res.Shortlist[j-1], res.Shortlist[j]
		}
	}
	return res, nil
}

// EnumerateGrid lists combinations of the space's parameter levels,
// capping every dimension at gridLevels settings (evenly spread across
// the parameter's range) so the grid stays tractable: the paper space at
// gridLevels=4 is ≈260k raw points before deduplication. Duplicate
// configurations produced by quantization are removed. gridLevels <= 1
// falls back to the default resolution of 4; a space that cannot Decode
// (missing paper parameters) yields an empty enumeration rather than a
// panic.
func EnumerateGrid(space *design.Space, gridLevels int) []design.Config {
	if space == nil {
		space = design.PaperSpace()
	}
	if space.CheckDecodable() != nil {
		return nil
	}
	if gridLevels < 2 {
		gridLevels = 4
	}
	// Per-dimension normalized level coordinates.
	levels := make([][]float64, space.N())
	total := 1
	for i, p := range space.Params {
		L := p.Levels
		if L == design.SampleSizeLevels || L > gridLevels {
			L = gridLevels
		}
		ls := make([]float64, L)
		for k := 0; k < L; k++ {
			if L > 1 {
				ls[k] = float64(k) / float64(L-1)
			} else {
				ls[k] = 0.5
			}
		}
		levels[i] = ls
		total *= L
	}
	out := make([]design.Config, 0, total)
	pt := make(design.Point, space.N())
	seen := make(map[string]bool, total)
	var walk func(dim int)
	walk = func(dim int) {
		if dim == space.N() {
			cfg := space.Decode(pt, gridLevels)
			key := cfg.Key()
			if !seen[key] {
				seen[key] = true
				out = append(out, cfg)
			}
			return
		}
		for _, v := range levels[dim] {
			pt[dim] = v
			walk(dim + 1)
		}
	}
	walk(0)
	return out
}
