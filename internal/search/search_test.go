package search

import (
	"math"
	"strings"
	"testing"

	"predperf/internal/core"
	"predperf/internal/design"
)

// truth is a known response whose minimum over the grid we can compute
// directly.
func truth(c design.Config) float64 {
	return 1 +
		0.4*float64(c.PipeDepth)/24 +
		20/float64(c.ROBSize) +
		1.2*math.Exp(-float64(c.L2SizeKB)/1200)*float64(c.L2Lat)/20 +
		0.1*float64(c.DL1Lat)
}

// slightly biased model: truth plus a small smooth perturbation, so the
// model ranking is imperfect but close.
type biasedModel struct{}

func (biasedModel) PredictConfig(c design.Config) float64 {
	return truth(c) * (1 + 0.02*math.Sin(float64(c.ROBSize)))
}

func TestMinimizeFindsNearOptimal(t *testing.T) {
	ev := core.FuncEvaluator(truth)
	res, err := Minimize(biasedModel{}, ev, Options{GridLevels: 3, Shortlist: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustive truth minimum over the same grid.
	best := math.Inf(1)
	for _, cfg := range EnumerateGrid(nil, 3) {
		if v := truth(cfg); v < best {
			best = v
		}
	}
	if res.BestValue > best*1.02 {
		t.Fatalf("search best %v, exhaustive best %v", res.BestValue, best)
	}
	if res.Verified != 6 {
		t.Fatalf("verified %d, want 6", res.Verified)
	}
	if res.Evaluated < 1000 {
		t.Fatalf("evaluated only %d candidates", res.Evaluated)
	}
	// Shortlist sorted by actual.
	for i := 1; i < len(res.Shortlist); i++ {
		if res.Shortlist[i].Actual < res.Shortlist[i-1].Actual {
			t.Fatal("shortlist not sorted by simulated value")
		}
	}
	// Best is the simulated-best of the shortlist.
	if res.BestValue != res.Shortlist[0].Actual {
		t.Fatal("Best disagrees with shortlist head")
	}
}

func TestMinimizeRespectsConstraint(t *testing.T) {
	ev := core.FuncEvaluator(truth)
	res, err := Minimize(biasedModel{}, ev, Options{
		GridLevels: 3,
		Constraint: func(c design.Config) bool { return c.L2SizeKB <= 1024 },
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Shortlist {
		if c.Config.L2SizeKB > 1024 {
			t.Fatalf("constraint violated: %v", c.Config)
		}
	}
}

func TestMinimizeInfeasible(t *testing.T) {
	ev := core.FuncEvaluator(truth)
	_, err := Minimize(biasedModel{}, ev, Options{
		GridLevels: 2,
		Constraint: func(design.Config) bool { return false },
	})
	if err == nil {
		t.Fatal("expected error when nothing is feasible")
	}
}

func TestMinimizeExplicitCandidates(t *testing.T) {
	ev := core.FuncEvaluator(truth)
	cands := []design.Config{
		{PipeDepth: 24, ROBSize: 24, IQSize: 12, LSQSize: 12, L2SizeKB: 256, L2Lat: 20, IL1SizeKB: 8, DL1SizeKB: 8, DL1Lat: 4},
		{PipeDepth: 7, ROBSize: 128, IQSize: 64, LSQSize: 64, L2SizeKB: 8192, L2Lat: 5, IL1SizeKB: 64, DL1SizeKB: 64, DL1Lat: 1},
	}
	res, err := Minimize(biasedModel{}, ev, Options{Candidates: cands, Shortlist: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best != cands[1] {
		t.Fatalf("best = %v, want the high-end config", res.Best)
	}
}

func TestEnumerateGridDedupes(t *testing.T) {
	cfgs := EnumerateGrid(nil, 3)
	if len(cfgs) == 0 {
		t.Fatal("empty grid")
	}
	seen := map[string]bool{}
	for _, c := range cfgs {
		k := c.Key()
		if seen[k] {
			t.Fatalf("duplicate config %v", c)
		}
		seen[k] = true
	}
	// Sanity: all within the paper ranges.
	for _, c := range cfgs {
		if c.PipeDepth < 7 || c.PipeDepth > 24 || c.ROBSize < 24 || c.ROBSize > 128 {
			t.Fatalf("out-of-range config %v", c)
		}
	}
}

func TestMinimizeNilArgs(t *testing.T) {
	if _, err := Minimize(nil, nil, Options{}); err == nil {
		t.Fatal("expected error for nil model/evaluator")
	}
}

func TestMinimizeDegenerateSpace(t *testing.T) {
	ev := core.FuncEvaluator(truth)
	for _, space := range []*design.Space{
		{}, // empty
		{Params: []design.Param{{Name: "voltage", Low: 0.8, High: 1.2, Levels: 3}}},
	} {
		_, err := Minimize(biasedModel{}, ev, Options{Space: space})
		if err == nil {
			t.Fatalf("space %v: want an error, got nil", space)
		}
		if !strings.Contains(err.Error(), "missing parameter") {
			t.Fatalf("space %v: want a missing-parameter error, got %v", space, err)
		}
	}
}

func TestMinimizeZeroBudget(t *testing.T) {
	ev := core.FuncEvaluator(truth)
	// An explicitly empty candidate list is a zero-budget search: a
	// clear error, not a panic or a fabricated winner.
	if _, err := Minimize(biasedModel{}, ev, Options{Candidates: []design.Config{}}); err == nil {
		t.Fatal("want an error for an empty candidate list")
	}
	// A constraint that rejects everything is equivalent.
	_, err := Minimize(biasedModel{}, ev, Options{
		GridLevels: 2,
		Constraint: func(design.Config) bool { return false },
	})
	if err == nil {
		t.Fatal("want an error when every candidate is infeasible")
	}
	// Nonsense budgets fall back to defaults rather than failing.
	res, err := Minimize(biasedModel{}, ev, Options{GridLevels: -3, Shortlist: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verified != 8 {
		t.Fatalf("verified %d, want the default shortlist of 8", res.Verified)
	}
}

func TestEnumerateGridDegenerate(t *testing.T) {
	// gridLevels <= 1 falls back to the default resolution.
	for _, gl := range []int{1, 0, -5} {
		cfgs := EnumerateGrid(nil, gl)
		if len(cfgs) == 0 {
			t.Fatalf("gridLevels=%d: empty grid", gl)
		}
	}
	// A space that cannot Decode enumerates to nothing instead of
	// panicking.
	if cfgs := EnumerateGrid(&design.Space{}, 3); cfgs != nil {
		t.Fatalf("degenerate space enumerated %d configs", len(cfgs))
	}
}
