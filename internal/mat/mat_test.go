package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul(%d,%d)=%v want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got := a.MulVec([]float64{1, 0, -1})
	if got[0] != -2 || got[1] != -2 {
		t.Fatalf("MulVec = %v, want [-2 -2]", got)
	}
}

func TestTranspose(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("T dims = %dx%d", at.Rows, at.Cols)
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatalf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestQRSolveExact(t *testing.T) {
	// Square nonsingular system.
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	b := []float64{3, 5}
	x, err := QRFactor(a).Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	// Solution of [2 1;1 3]x=[3;5] is x=[4/5, 7/5].
	if !almostEq(x[0], 0.8, 1e-12) || !almostEq(x[1], 1.4, 1e-12) {
		t.Fatalf("x = %v, want [0.8 1.4]", x)
	}
}

func TestQRSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	_, err := QRFactor(a).Solve([]float64{1, 2, 3})
	if err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = 2x + 1 exactly from 4 points.
	a := FromRows([][]float64{{1, 0}, {1, 1}, {1, 2}, {1, 3}})
	b := []float64{1, 3, 5, 7}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 1, 1e-10) || !almostEq(x[1], 2, 1e-10) {
		t.Fatalf("x = %v, want [1 2]", x)
	}
}

func TestLeastSquaresRankDeficientFallsBack(t *testing.T) {
	// Duplicated column: rank deficient, must still return a finite answer.
	a := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	b := []float64{2, 4, 6}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	pred := a.MulVec(x)
	for i := range b {
		if !almostEq(pred[i], b[i], 1e-3) {
			t.Fatalf("pred = %v, want %v", pred, b)
		}
	}
}

func TestCholeskyKnown(t *testing.T) {
	a := FromRows([][]float64{{4, 2}, {2, 3}})
	ch, err := CholFactor(a)
	if err != nil {
		t.Fatal(err)
	}
	x := ch.Solve([]float64{8, 7})
	// [4 2;2 3]x=[8;7] → x=[1.25, 1.5]
	if !almostEq(x[0], 1.25, 1e-12) || !almostEq(x[1], 1.5, 1e-12) {
		t.Fatalf("x = %v, want [1.25 1.5]", x)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := CholFactor(a); err == nil {
		t.Fatal("expected ErrSingular for indefinite matrix")
	}
}

func TestRidgeShrinks(t *testing.T) {
	a := FromRows([][]float64{{1, 0}, {0, 1}})
	b := []float64{1, 1}
	x, err := RidgeLeastSquares(a, b, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// (I + I)x = b → x = 0.5.
	if !almostEq(x[0], 0.5, 1e-12) || !almostEq(x[1], 0.5, 1e-12) {
		t.Fatalf("x = %v, want [0.5 0.5]", x)
	}
}

// Property: for random well-conditioned overdetermined systems, the QR
// least-squares residual is orthogonal to the column space (Aᵀr ≈ 0).
func TestQuickResidualOrthogonality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 12, 4
		a := New(m, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := LeastSquares(a, b)
		if err != nil {
			return true // skip pathological draws
		}
		pred := a.MulVec(x)
		r := make([]float64, m)
		for i := range r {
			r[i] = b[i] - pred[i]
		}
		atr := a.T().MulVec(r)
		for _, v := range atr {
			if math.Abs(v) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Cholesky solve inverts SPD matrices built as GᵀG + I.
func TestQuickCholeskyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5
		g := New(n, n)
		for i := range g.Data {
			g.Data[i] = rng.NormFloat64()
		}
		a := g.T().Mul(g)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+1)
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := a.MulVec(want)
		ch, err := CholFactor(a)
		if err != nil {
			return false
		}
		got := ch.Solve(b)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDotAndNorm(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot wrong")
	}
	if !almostEq(Norm2([]float64{3, 4}), 5, 1e-15) {
		t.Fatal("Norm2 wrong")
	}
}

func TestMulVecToMatchesMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := New(17, 23)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	x := make([]float64, 23)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := m.MulVec(x)
	got := make([]float64, 17)
	m.MulVecTo(got, x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MulVecTo[%d] = %x, MulVec = %x", i, got[i], want[i])
		}
	}
}

func TestMulVecToPanicsOnBadShapes(t *testing.T) {
	m := New(2, 3)
	for _, f := range []func(){
		func() { m.MulVecTo(make([]float64, 2), make([]float64, 4)) },
		func() { m.MulVecTo(make([]float64, 3), make([]float64, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic on shape mismatch")
				}
			}()
			f()
		}()
	}
}

func TestForEachBlockCoversExactlyOnce(t *testing.T) {
	for _, c := range []struct{ rows, cols, br, bc int }{
		{10, 10, 4, 4},
		{64, 64, 64, 64},
		{7, 13, 3, 5},
		{1, 1, 4, 4},
		{5, 9, 0, 2}, // non-positive block size disables tiling on that axis
		{0, 8, 2, 2}, // empty index space: fn never called
	} {
		seen := make(map[[2]int]int)
		ForEachBlock(c.rows, c.cols, c.br, c.bc, func(r0, r1, c0, c1 int) {
			if r0 >= r1 || c0 >= c1 {
				t.Fatalf("%+v: empty block [%d,%d)x[%d,%d)", c, r0, r1, c0, c1)
			}
			for i := r0; i < r1; i++ {
				for j := c0; j < c1; j++ {
					seen[[2]int{i, j}]++
				}
			}
		})
		if len(seen) != c.rows*c.cols {
			t.Fatalf("%+v: covered %d cells, want %d", c, len(seen), c.rows*c.cols)
		}
		for cell, n := range seen {
			if n != 1 {
				t.Fatalf("%+v: cell %v visited %d times", c, cell, n)
			}
		}
	}
}
