package mat

import "math"

// QR holds a Householder QR factorization of an m×n matrix with m >= n.
// A = Q·R with Q m×m orthogonal and R m×n upper triangular.
type QR struct {
	qr   *Matrix   // packed factors: R in the upper triangle, reflectors below
	rdia []float64 // diagonal of R
}

// QRFactor computes the Householder QR factorization of a. The input is
// not modified.
func QRFactor(a *Matrix) *QR {
	m, n := a.Rows, a.Cols
	qr := a.Clone()
	rdia := make([]float64, n)
	for k := 0; k < n && k < m; k++ {
		// Norm of column k below the diagonal.
		var nrm float64
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, qr.At(i, k))
		}
		if nrm == 0 {
			rdia[k] = 0
			continue
		}
		if qr.At(k, k) < 0 {
			nrm = -nrm
		}
		for i := k; i < m; i++ {
			qr.Set(i, k, qr.At(i, k)/nrm)
		}
		qr.Set(k, k, qr.At(k, k)+1)
		// Apply the reflector to the remaining columns.
		for j := k + 1; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += qr.At(i, k) * qr.At(i, j)
			}
			s = -s / qr.At(k, k)
			for i := k; i < m; i++ {
				qr.Set(i, j, qr.At(i, j)+s*qr.At(i, k))
			}
		}
		rdia[k] = -nrm
	}
	return &QR{qr: qr, rdia: rdia}
}

// FullRank reports whether R has no (near-)zero diagonal entries relative
// to the largest one.
func (f *QR) FullRank() bool {
	var maxd float64
	for _, d := range f.rdia {
		if a := math.Abs(d); a > maxd {
			maxd = a
		}
	}
	if maxd == 0 {
		return false
	}
	tol := 1e-12 * maxd * float64(f.qr.Rows)
	for _, d := range f.rdia {
		if math.Abs(d) <= tol {
			return false
		}
	}
	return true
}

// Solve returns the least-squares solution x minimising ‖A·x − b‖₂.
// It returns ErrSingular when A is rank deficient.
func (f *QR) Solve(b []float64) ([]float64, error) {
	m, n := f.qr.Rows, f.qr.Cols
	if len(b) != m {
		panic("mat: QR.Solve rhs length mismatch")
	}
	if !f.FullRank() {
		return nil, ErrSingular
	}
	y := make([]float64, m)
	copy(y, b)
	// Apply Qᵀ to b.
	for k := 0; k < n && k < m; k++ {
		if f.qr.At(k, k) == 0 {
			continue
		}
		var s float64
		for i := k; i < m; i++ {
			s += f.qr.At(i, k) * y[i]
		}
		s = -s / f.qr.At(k, k)
		for i := k; i < m; i++ {
			y[i] += s * f.qr.At(i, k)
		}
	}
	// Back substitution with R.
	x := make([]float64, n)
	for k := n - 1; k >= 0; k-- {
		s := y[k]
		for j := k + 1; j < n; j++ {
			s -= f.qr.At(k, j) * x[j]
		}
		x[k] = s / f.rdia[k]
	}
	return x, nil
}

// LeastSquares solves min ‖A·x − b‖₂ via QR. Falls back to a ridge-
// regularized normal-equations solve when A is rank deficient.
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows < a.Cols {
		return RidgeLeastSquares(a, b, 1e-8)
	}
	x, err := QRFactor(a).Solve(b)
	if err != nil {
		return RidgeLeastSquares(a, b, 1e-8)
	}
	return x, nil
}
