// Package mat provides the small dense linear-algebra kernel used by the
// model-building packages: a row-major matrix type, Householder QR,
// Cholesky factorization, and least-squares solvers (optionally ridge
// regularized). It is deliberately minimal — just what RBF-network and
// linear-regression fitting need — and depends only on the standard
// library.
package mat

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, element (i,j) at Data[i*Cols+j]
}

// New returns a zeroed r×c matrix.
func New(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	c := len(rows[0])
	m := New(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("mat: ragged rows: row %d has %d cols, want %d", i, len(row), c))
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// Mul returns m·b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("mat: Mul dimension mismatch %dx%d · %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := New(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mi := m.Row(i)
		oi := out.Row(i)
		for k, mik := range mi {
			if mik == 0 {
				continue
			}
			bk := b.Row(k)
			for j, bkj := range bk {
				oi[j] += mik * bkj
			}
		}
	}
	return out
}

// MulVec returns m·x as a vector.
func (m *Matrix) MulVec(x []float64) []float64 {
	out := make([]float64, m.Rows)
	m.MulVecTo(out, x)
	return out
}

// MulVecTo computes m·x into dst without allocating. dst must have
// exactly m.Rows elements. Row sums accumulate left to right, so the
// result is bit-identical to MulVec.
func (m *Matrix) MulVecTo(dst, x []float64) {
	if m.Cols != len(x) {
		panic(fmt.Sprintf("mat: MulVecTo dimension mismatch %dx%d · %d", m.Rows, m.Cols, len(x)))
	}
	if len(dst) != m.Rows {
		panic(fmt.Sprintf("mat: MulVecTo destination has %d elements, want %d", len(dst), m.Rows))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// ForEachBlock tiles the rows×cols index space into blockRows×blockCols
// blocks and calls fn once per block with the half-open row and column
// ranges [r0,r1)×[c0,c1), row blocks outermost. A non-positive block
// size disables tiling along that dimension. Kernels that fill or
// traverse a large matrix use it to keep both operand panels resident
// in cache; the visit order is deterministic, so a kernel whose
// per-element computation is order-independent produces bit-identical
// results for any block size.
func ForEachBlock(rows, cols, blockRows, blockCols int, fn func(r0, r1, c0, c1 int)) {
	if blockRows <= 0 {
		blockRows = rows
	}
	if blockCols <= 0 {
		blockCols = cols
	}
	for r0 := 0; r0 < rows; r0 += blockRows {
		r1 := r0 + blockRows
		if r1 > rows {
			r1 = rows
		}
		for c0 := 0; c0 < cols; c0 += blockCols {
			c1 := c0 + blockCols
			if c1 > cols {
				c1 = cols
			}
			fn(r0, r1, c0, c1)
		}
	}
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// ErrSingular is returned when a factorization meets an (effectively)
// singular matrix.
var ErrSingular = errors.New("mat: matrix is singular to working precision")
