package mat

import "math"

// Cholesky holds the lower-triangular factor L of a symmetric positive-
// definite matrix A = L·Lᵀ.
type Cholesky struct {
	l *Matrix
}

// CholFactor computes the Cholesky factorization of the symmetric
// positive-definite matrix a. Only the lower triangle of a is read.
func CholFactor(a *Matrix) (*Cholesky, error) {
	if a.Rows != a.Cols {
		panic("mat: CholFactor of non-square matrix")
	}
	n := a.Rows
	l := New(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrSingular
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/ljj)
		}
	}
	return &Cholesky{l: l}, nil
}

// Solve solves A·x = b using the factorization.
func (c *Cholesky) Solve(b []float64) []float64 {
	n := c.l.Rows
	if len(b) != n {
		panic("mat: Cholesky.Solve rhs length mismatch")
	}
	// Forward substitution L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= c.l.At(i, k) * y[k]
		}
		y[i] = s / c.l.At(i, i)
	}
	// Back substitution Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= c.l.At(k, i) * x[k]
		}
		x[i] = s / c.l.At(i, i)
	}
	return x
}

// RidgeLeastSquares solves min ‖A·x − b‖² + λ‖x‖² via the normal
// equations (AᵀA + λI)·x = Aᵀb. λ must be positive; it is escalated
// geometrically if the regularized normal matrix is still numerically
// indefinite.
func RidgeLeastSquares(a *Matrix, b []float64, lambda float64) ([]float64, error) {
	if lambda <= 0 {
		lambda = 1e-10
	}
	ata := a.T().Mul(a)
	atb := a.T().MulVec(b)
	for try := 0; try < 30; try++ {
		reg := ata.Clone()
		for i := 0; i < reg.Rows; i++ {
			reg.Set(i, i, reg.At(i, i)+lambda)
		}
		ch, err := CholFactor(reg)
		if err == nil {
			return ch.Solve(atb), nil
		}
		lambda *= 10
	}
	return nil, ErrSingular
}
