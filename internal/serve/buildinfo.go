package serve

import (
	"runtime"
	"runtime/debug"
	"sync"

	"predperf/internal/core"
)

// BuildInfo identifies the running binary: the Go toolchain it was
// built with, the VCS revision baked in by `go build` (empty for
// non-VCS builds like `go run` from a tarball), and the model-format
// version this build reads — the operational answer to "which predserve
// is this and which model files can it load".
type BuildInfo struct {
	GoVersion   string `json:"go_version"`
	Revision    string `json:"revision,omitempty"`
	Modified    bool   `json:"modified,omitempty"` // working tree was dirty at build time
	ModelFormat int    `json:"model_format"`
}

var (
	buildOnce sync.Once
	buildInfo BuildInfo
)

// Build returns the binary's build info, reading runtime/debug build
// settings once.
func Build() BuildInfo {
	buildOnce.Do(func() {
		buildInfo = BuildInfo{
			GoVersion:   runtime.Version(),
			ModelFormat: core.ModelFormatVersion,
		}
		if bi, ok := debug.ReadBuildInfo(); ok {
			for _, s := range bi.Settings {
				switch s.Key {
				case "vcs.revision":
					buildInfo.Revision = s.Value
				case "vcs.modified":
					buildInfo.Modified = s.Value == "true"
				}
			}
		}
	})
	return buildInfo
}
