package serve

import (
	"fmt"
	"html/template"
	"math"
	"net/http"
	"sort"
	"strings"
	"time"

	"predperf/internal/cluster"
	"predperf/internal/obs"
)

// /statusz: a single self-contained HTML page — stdlib html/template,
// inline CSS, inline SVG sparklines, no external assets — answering the
// operational questions in one load: what build is this, what models
// does it serve and do they still track the simulator, what does
// request latency look like right now (not since boot), and how much
// SLO error budget is left.

// statuszData is the template's root.
type statuszData struct {
	Now       string
	UptimeSec string
	Build     BuildInfo
	Ready     bool
	Reasons   []unreadyReason
	SLOs      []sloRow
	Models    []modelRow
	Retrains  []retrainState
	Routes    []routeRow
	Alerts    []obs.Alert
	Windows   string // window labels legend, e.g. "1m / 5m / 1h"
	SimPool   []cluster.WorkerStatus
	TraceRate string // edge head-sampling rate currently in effect
}

type sloRow struct {
	Name        string
	Description string
	Objective   string // "99.9%"
	FastBurn    string
	SlowBurn    string
	BudgetPct   float64 // 0..100, capped, for the budget bar width
	BudgetLabel string
	Firing      bool
}

type modelRow struct {
	Name          string
	Benchmark     string
	SampleSize    int
	Centers       int
	AICc          string
	Predictions   int64
	ShadowSamples int64
	ShadowMeanPct string
	Drifting      bool
}

type routeRow struct {
	Route     string
	Count1m   int64
	Count5m   int64
	Count1h   int64
	Rate1m    string
	P50       string // over 5m, milliseconds
	P90       string
	P99       string
	Sparkline template.HTML
	TraceID   string // most recent latency-histogram exemplar, "" if none
}

var statuszTmpl = template.Must(template.New("statusz").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>predserve /statusz</title>
<style>
body { font: 13px/1.5 system-ui, sans-serif; margin: 2em; color: #222; }
h1 { font-size: 1.3em; } h2 { font-size: 1.05em; margin-top: 1.6em; }
table { border-collapse: collapse; margin: 0.5em 0; }
th, td { border: 1px solid #ccc; padding: 3px 9px; text-align: left; }
th { background: #f2f2f2; font-weight: 600; }
td.num, th.num { text-align: right; }
.ok { color: #1a7f37; font-weight: 600; } .bad { color: #b42318; font-weight: 600; }
.bar { display: inline-block; width: 160px; height: 11px; background: #e6e6e6; border-radius: 3px; overflow: hidden; vertical-align: middle; }
.bar .fill { display: block; height: 100%; background: #1a7f37; }
.bar .fill.hot { background: #b42318; }
.muted { color: #777; }
svg.spark { vertical-align: middle; }
</style>
</head>
<body>
<h1>predserve status</h1>
<p>
{{if .Ready}}<span class="ok">READY</span>{{else}}<span class="bad">UNREADY</span>{{end}}
&middot; now {{.Now}} &middot; up {{.UptimeSec}}
&middot; trace sample rate {{.TraceRate}}
&middot; <span class="muted">{{.Build.GoVersion}}, model format {{.Build.ModelFormat}}{{if .Build.Revision}}, rev {{printf "%.12s" .Build.Revision}}{{if .Build.Modified}} (dirty){{end}}{{end}}</span>
</p>
{{if .Reasons}}<ul>{{range .Reasons}}<li class="bad">{{.Code}}: {{.Message}}</li>{{end}}</ul>{{end}}

<h2>SLOs (error budget at current 1h burn)</h2>
<table>
<tr><th>SLO</th><th>objective</th><th class="num">burn 5m</th><th class="num">burn 1h</th><th>budget consumption</th><th>state</th></tr>
{{range .SLOs}}
<tr>
<td title="{{.Description}}">{{.Name}}</td>
<td class="num">{{.Objective}}</td>
<td class="num">{{.FastBurn}}</td>
<td class="num">{{.SlowBurn}}</td>
<td><span class="bar"><span class="fill{{if .Firing}} hot{{end}}" style="width:{{printf "%.0f" .BudgetPct}}%"></span></span> {{.BudgetLabel}}</td>
<td>{{if .Firing}}<span class="bad">burning</span>{{else}}<span class="ok">ok</span>{{end}}</td>
</tr>
{{end}}
</table>

<h2>Models</h2>
{{if .Models}}
<table>
<tr><th>model</th><th>benchmark</th><th class="num">sample</th><th class="num">centers</th><th class="num">AICc</th><th class="num">predictions</th><th class="num">shadow samples (1h)</th><th class="num">shadow mean err (1h)</th><th>drift</th></tr>
{{range .Models}}
<tr>
<td>{{.Name}}</td><td>{{.Benchmark}}</td>
<td class="num">{{.SampleSize}}</td><td class="num">{{.Centers}}</td><td class="num">{{.AICc}}</td>
<td class="num">{{.Predictions}}</td>
<td class="num">{{.ShadowSamples}}</td>
<td class="num">{{.ShadowMeanPct}}</td>
<td>{{if .Drifting}}<span class="bad">drifting</span>{{else}}<span class="ok">ok</span>{{end}}</td>
</tr>
{{end}}
</table>
{{else}}<p class="muted">no models loaded</p>{{end}}

{{if .Retrains}}
<h2>Retraining</h2>
<table>
<tr><th>model</th><th>state</th><th class="num">attempts</th><th class="num">generation</th><th>firing since</th><th>cooldown until</th><th>last outcome</th><th class="num">last size</th><th>last error</th></tr>
{{range .Retrains}}
<tr>
<td>{{.Model}}</td>
<td>{{if eq .Status "retraining"}}<span class="bad">retraining</span>{{else if eq .Status "drift_pending"}}<span class="bad">drift pending</span>{{else}}{{.Status}}{{end}}</td>
<td class="num">{{.Attempts}}</td>
<td class="num">{{.Generation}}</td>
<td>{{.FiringSince}}</td><td>{{.Cooldown}}</td>
<td>{{if eq .LastOutcome "success"}}<span class="ok">success</span>{{else}}{{.LastOutcome}}{{end}}</td>
<td class="num">{{if .LastSize}}{{.LastSize}}{{end}}</td>
<td class="muted">{{.LastError}}</td>
</tr>
{{end}}
</table>
{{end}}

<h2>Routes (windows: {{.Windows}}; quantiles over 5m; sparkline: requests per 10s over 1h)</h2>
<table>
<tr><th>route</th><th class="num">req 1m</th><th class="num">req 5m</th><th class="num">req 1h</th><th class="num">rate/s 1m</th><th class="num">p50 ms</th><th class="num">p90 ms</th><th class="num">p99 ms</th><th>traffic</th><th>recent trace</th></tr>
{{range .Routes}}
<tr>
<td>{{.Route}}</td>
<td class="num">{{.Count1m}}</td><td class="num">{{.Count5m}}</td><td class="num">{{.Count1h}}</td>
<td class="num">{{.Rate1m}}</td>
<td class="num">{{.P50}}</td><td class="num">{{.P90}}</td><td class="num">{{.P99}}</td>
<td>{{.Sparkline}}</td>
<td>{{if .TraceID}}<a href="/tracez?id={{.TraceID}}">{{printf "%.16s" .TraceID}}</a>{{else}}<span class="muted">–</span>{{end}}</td>
</tr>
{{end}}
</table>

{{if .SimPool}}
<h2>Sim worker pool</h2>
<table>
<tr><th>worker</th><th>health</th><th class="num">consecutive fails</th><th class="num">in flight</th><th class="num">requests ok</th><th class="num">requests failed</th></tr>
{{range .SimPool}}
<tr>
<td>{{.URL}}</td>
<td>{{if .Evicted}}<span class="bad">evicted</span>{{else}}<span class="ok">healthy</span>{{end}}</td>
<td class="num">{{.Fails}}</td><td class="num">{{.Inflight}}</td>
<td class="num">{{.OK}}</td><td class="num">{{.Errors}}</td>
</tr>
{{end}}
</table>
{{end}}

<h2>Alerts</h2>
{{if .Alerts}}
<table>
<tr><th>alert</th><th>state</th><th>since</th><th>resolved</th><th class="num">firings</th><th>reason</th></tr>
{{range .Alerts}}
<tr>
<td>{{.Name}}</td>
<td>{{if .Firing}}<span class="bad">firing</span>{{else}}<span class="ok">resolved</span>{{end}}</td>
<td>{{.Since}}</td><td>{{.ResolvedAt}}</td><td class="num">{{.Count}}</td><td>{{.Reason}}</td>
</tr>
{{end}}
</table>
{{else}}<p class="muted">nothing has fired</p>{{end}}

<p class="muted">JSON: <a href="/healthz">/healthz</a> &middot; <a href="/readyz">/readyz</a> &middot; <a href="/alertz">/alertz</a> &middot; <a href="/metricz">/metricz</a> &middot; <a href="/metricz?format=prom">/metricz?format=prom</a> &middot; <a href="/tracez">/tracez</a></p>
</body>
</html>
`))

// sparklineSVG renders a per-bucket series as a 150×24 inline SVG
// polyline, scaled to the series max. Empty or all-zero series render a
// flat baseline.
func sparklineSVG(series []float64) template.HTML {
	const w, h = 150, 24
	if len(series) == 0 {
		return ""
	}
	maxV := 0.0
	for _, v := range series {
		if v > maxV {
			maxV = v
		}
	}
	var pts strings.Builder
	n := len(series)
	for i, v := range series {
		x := float64(w)
		if n > 1 {
			x = float64(i) / float64(n-1) * w
		}
		y := float64(h - 1)
		if maxV > 0 {
			y = float64(h-1) - v/maxV*float64(h-2)
		}
		if i > 0 {
			pts.WriteByte(' ')
		}
		fmt.Fprintf(&pts, "%.1f,%.1f", x, y)
	}
	svg := fmt.Sprintf(`<svg class="spark" width="%d" height="%d" viewBox="0 0 %d %d"><polyline fill="none" stroke="#4a7dcf" stroke-width="1.2" points="%s"/></svg>`,
		w, h, w, h, pts.String())
	return template.HTML(svg)
}

// msString renders seconds as milliseconds with two decimals ("–" for
// empty windows).
func msString(sec float64, empty bool) string {
	if empty || math.IsNaN(sec) {
		return "–"
	}
	return fmt.Sprintf("%.2f", sec*1e3)
}

func (s *Server) statuszData() statuszData {
	reasons := s.evaluate()
	now := s.clock()
	d := statuszData{
		Now:       now.UTC().Format(time.RFC3339),
		UptimeSec: time.Duration(now.Sub(s.start).Round(time.Second)).String(),
		Build:     Build(),
		Ready:     len(reasons) == 0,
		Reasons:   reasons,
		Alerts:    s.alerts.Alerts(),
		Windows:   "1m / 5m / 1h",
		TraceRate: fmt.Sprintf("%.4g", s.sampler.Rate()),
	}

	for _, slo := range s.slos {
		st := slo.State()
		pct := min(st.BudgetSpent, 1) * 100
		d.SLOs = append(d.SLOs, sloRow{
			Name:        st.Name,
			Description: st.Description,
			Objective:   fmt.Sprintf("%.4g%%", st.Objective*100),
			FastBurn:    fmt.Sprintf("%.2f", st.Fast.BurnRate),
			SlowBurn:    fmt.Sprintf("%.2f", st.Slow.BurnRate),
			BudgetPct:   pct,
			BudgetLabel: fmt.Sprintf("%.0f%%×budget", st.BudgetSpent*100),
			Firing:      st.Firing,
		})
	}

	drift := map[string]driftState{}
	for _, ds := range s.shadow.driftStates() {
		drift[ds.Model] = ds
	}
	for _, e := range s.reg.Entries() {
		row := modelRow{
			Name:        e.Name,
			Benchmark:   e.Model.Name,
			SampleSize:  e.Model.SampleSize,
			Centers:     e.Model.Fit.NumCenters(),
			AICc:        fmt.Sprintf("%.1f", e.Model.Fit.AICc),
			Predictions: cModelPredictions.With(e.Name).Value(),
		}
		if ds, ok := drift[e.Name]; ok {
			row.ShadowSamples = ds.Samples
			row.ShadowMeanPct = fmt.Sprintf("%.2f%%", ds.MeanPct)
			row.Drifting = ds.Firing
		} else {
			row.ShadowMeanPct = "–"
		}
		d.Models = append(d.Models, row)
	}
	d.Retrains = s.retrain.states()
	if s.opt.SimPool != nil {
		d.SimPool = s.opt.SimPool.Snapshot()
	}

	routeNames := make([]string, 0, len(s.wRoutes))
	for r := range s.wRoutes {
		routeNames = append(routeNames, r)
	}
	sort.Strings(routeNames)
	for _, r := range routeNames {
		w := s.wRoutes[r]
		st5 := w.StatsOver(5 * time.Minute)
		empty := st5.Count == 0
		d.Routes = append(d.Routes, routeRow{
			Route:     r,
			Count1m:   w.CountOver(time.Minute),
			Count5m:   st5.Count,
			Count1h:   w.CountOver(time.Hour),
			Rate1m:    fmt.Sprintf("%.2f", float64(w.CountOver(time.Minute))/60),
			P50:       msString(st5.P50, empty),
			P90:       msString(st5.P90, empty),
			P99:       msString(st5.P99, empty),
			Sparkline: sparklineSVG(w.Series(time.Hour)),
		})
		if ex, ok := hRequests.With(r).LatestExemplar(); ok {
			d.Routes[len(d.Routes)-1].TraceID = ex.TraceID
		}
	}
	return d
}

// ---- /statusz ----

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	// Headers go out with the first template write; an execute error
	// mid-page has nothing structured left to report.
	_ = statuszTmpl.Execute(w, s.statuszData())
}
