package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"predperf/internal/core"
	"predperf/internal/design"
	"predperf/internal/obs"
)

// coalescingServer builds a server with coalescing on and the given
// model registered, returning the server and its test listener.
func coalescingServer(t *testing.T, opt Options, models ...*core.Model) (*Server, *httptest.Server) {
	t.Helper()
	if opt.CoalesceWindow == 0 {
		opt.CoalesceWindow = 2 * time.Millisecond
	}
	s := New(opt)
	for _, m := range models {
		if err := s.Registry().Add(m.Name, m, ""); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.coalesce.stop()
	})
	return s, ts
}

func predictSingle(t *testing.T, url, model string, cfg design.Config) (prediction, int) {
	t.Helper()
	body := fmt.Sprintf(`{"model":%q,"config":%s}`, model, string(mustJSON(t, toWire(cfg))))
	resp, raw := postJSON(t, url+"/v1/predict", body)
	if resp.StatusCode != http.StatusOK {
		return prediction{}, resp.StatusCode
	}
	var pr predictResponse
	if err := json.Unmarshal(raw, &pr); err != nil {
		t.Fatalf("decoding %s: %v", raw, err)
	}
	if len(pr.Predictions) != 1 {
		t.Fatalf("got %d predictions for a single config", len(pr.Predictions))
	}
	return pr.Predictions[0], resp.StatusCode
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestCoalescingBitIdentical: for on-grid configs, responses with
// coalescing on must match both the in-process model and a server with
// coalescing off, bit for bit.
func TestCoalescingBitIdentical(t *testing.T) {
	obs.Reset()
	m := buildTestModel(t, "co")
	_, on := coalescingServer(t, Options{CoalesceWindow: time.Millisecond}, m)
	soff := New(Options{})
	if err := soff.Registry().Add(m.Name, m, ""); err != nil {
		t.Fatal(err)
	}
	off := httptest.NewServer(soff.Handler())
	defer off.Close()

	for _, cfg := range m.Configs[:8] {
		want := m.PredictConfig(cfg)
		pOn, _ := predictSingle(t, on.URL, "co", cfg)
		pOff, _ := predictSingle(t, off.URL, "co", cfg)
		if pOn.Value != want {
			t.Fatalf("coalesced value %x != in-process %x", pOn.Value, want)
		}
		if pOn.Value != pOff.Value {
			t.Fatalf("coalesced value %x != uncoalesced %x", pOn.Value, pOff.Value)
		}
	}
}

// TestCoalesceWindowFlush: with a huge max batch, a lone request can
// only complete via the window timer, and the flush is tagged "window".
func TestCoalesceWindowFlush(t *testing.T) {
	obs.Reset()
	m := buildTestModel(t, "win")
	_, ts := coalescingServer(t, Options{
		CoalesceWindow: 2 * time.Millisecond,
		CoalesceMax:    1024,
	}, m)
	start := time.Now()
	if p, code := predictSingle(t, ts.URL, "win", m.Configs[0]); code != http.StatusOK || p.Value == 0 {
		t.Fatalf("predict = %+v (status %d)", p, code)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("window flush took %s", elapsed)
	}
	if n := cCoalesceFlushes.With("window").Value(); n < 1 {
		t.Fatalf("window flushes = %d, want >= 1", n)
	}
	if n := cCoalesced.Value(); n < 1 {
		t.Fatalf("coalesced_requests = %d, want >= 1", n)
	}
	if hCoalesceBatch.Count() < 1 {
		t.Fatal("coalesce_batch_size histogram recorded nothing")
	}
}

// TestCoalesceMaxSizeFlush: with a window far longer than the test,
// requests can only complete via the size trigger; fire exactly one
// batch worth concurrently and require a "size" flush.
func TestCoalesceMaxSizeFlush(t *testing.T) {
	obs.Reset()
	m := buildTestModel(t, "sz")
	const maxSize = 4
	_, ts := coalescingServer(t, Options{
		CoalesceWindow: 30 * time.Second,
		CoalesceMax:    maxSize,
	}, m)
	var wg sync.WaitGroup
	errs := make(chan string, maxSize)
	for i := 0; i < maxSize; i++ {
		wg.Add(1)
		go func(cfg design.Config, want float64) {
			defer wg.Done()
			p, code := predictSingle(t, ts.URL, "sz", cfg)
			if code != http.StatusOK || p.Value != want {
				errs <- fmt.Sprintf("value %x (status %d), want %x", p.Value, code, want)
			}
		}(m.Configs[i], m.PredictConfig(m.Configs[i]))
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if n := cCoalesceFlushes.With("size").Value(); n < 1 {
		t.Fatalf("size flushes = %d, want >= 1 (window flushes: %d)",
			n, cCoalesceFlushes.With("window").Value())
	}
}

// TestCoalescePerModelIsolation: one flush containing several models
// must route every result to the model that was asked for.
func TestCoalescePerModelIsolation(t *testing.T) {
	obs.Reset()
	ma := buildTestModel(t, "iso-a")
	mb := buildTestModel(t, "iso-b")
	// Perturb mb so its predictions genuinely differ from ma's.
	for i := range mb.Fit.Net.Weights {
		mb.Fit.Net.Weights[i] *= 1.5
	}
	_, ts := coalescingServer(t, Options{CoalesceWindow: 20 * time.Millisecond, CoalesceMax: 64}, ma, mb)
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for i := 0; i < 8; i++ {
		model, ref := "iso-a", ma
		if i%2 == 1 {
			model, ref = "iso-b", mb
		}
		cfg := ref.Configs[i]
		want := ref.PredictConfig(cfg)
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, code := predictSingle(t, ts.URL, model, cfg)
			if code != http.StatusOK || p.Value != want {
				errs <- fmt.Sprintf("%s: value %x (status %d), want %x", model, p.Value, code, want)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestCoalesceCancellationMidQueue: a request whose client gives up
// while queued returns promptly, the dispatcher skips its work, and
// the server keeps answering.
func TestCoalesceCancellationMidQueue(t *testing.T) {
	obs.Reset()
	m := buildTestModel(t, "cancel")
	_, ts := coalescingServer(t, Options{
		CoalesceWindow: 300 * time.Millisecond,
		CoalesceMax:    1024,
		CacheSize:      -1, // keep later asserts off the cache-hit path
	}, m)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	body := fmt.Sprintf(`{"model":"cancel","config":%s}`, mustJSON(t, toWire(m.Configs[0])))
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/predict", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
		t.Fatalf("canceled request got status %d, want client-side timeout", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 200*time.Millisecond {
		t.Fatalf("canceled request returned after %s, not promptly", elapsed)
	}
	// The dispatcher flushes the batch at the 300ms window and must
	// count the dead request instead of evaluating it.
	deadline := time.Now().Add(5 * time.Second)
	for cCoalesceCanceled.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("coalesce_canceled never incremented")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// And the server still answers.
	if p, code := predictSingle(t, ts.URL, "cancel", m.Configs[1]); code != http.StatusOK || p.Value != m.PredictConfig(m.Configs[1]) {
		t.Fatalf("post-cancel predict = %+v (status %d)", p, code)
	}
}

// TestCoalesceQueueFull: a full admission queue fails fast with
// ErrCoalesceQueueFull at the coalescer and a structured 503 at the
// HTTP surface, instead of blocking toward the request deadline.
func TestCoalesceQueueFull(t *testing.T) {
	obs.Reset()
	m := buildTestModel(t, "full")

	// Unit level: block the dispatcher inside eval so the queue (cap 1)
	// genuinely backs up.
	release := make(chan struct{})
	entry := &Entry{Name: "full", Model: m}
	blockingEval := func(e *Entry, cfgs []design.Config) []prediction {
		<-release
		preds := make([]prediction, len(cfgs))
		for i, cfg := range cfgs {
			preds[i] = prediction{Config: toWire(cfg), Value: e.Model.PredictConfig(cfg)}
		}
		return preds
	}
	c := newCoalescer(time.Millisecond, 1, 1, blockingEval)
	defer func() { close(release); c.stop() }()

	// First request: picked up by the dispatcher, stuck in eval.
	first := make(chan error, 1)
	go func() {
		_, err := c.predict(context.Background(), entry, m.Configs[0])
		first <- err
	}()
	// Wait until the dispatcher has it (queue empty again).
	deadline := time.Now().Add(5 * time.Second)
	for len(c.queue) != 0 || cCoalesceFlushes.With("size").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("dispatcher never picked up the first request")
		}
		time.Sleep(time.Millisecond)
	}
	// Second request parks in the queue; third must be refused.
	second := make(chan error, 1)
	go func() {
		_, err := c.predict(context.Background(), entry, m.Configs[1])
		second <- err
	}()
	for len(c.queue) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := c.predict(context.Background(), entry, m.Configs[2]); err != ErrCoalesceQueueFull {
		t.Fatalf("third predict err = %v, want ErrCoalesceQueueFull", err)
	}
	release <- struct{}{}
	release <- struct{}{}
	if err := <-first; err != nil {
		t.Fatalf("first predict err = %v", err)
	}
	if err := <-second; err != nil {
		t.Fatalf("second predict err = %v", err)
	}

	// HTTP level: swap in a blocked coalescer and require the 503 shape.
	s, ts := coalescingServer(t, Options{}, m)
	release2 := make(chan struct{})
	s.coalesce.stop()
	s.coalesce = newCoalescer(time.Millisecond, 1, 1, func(e *Entry, cfgs []design.Config) []prediction {
		<-release2
		return s.predictBatch(e, cfgs)
	})
	// Unblock eval before stopping, or stop would wait forever on a
	// dispatcher parked inside it.
	defer func() { close(release2); s.coalesce.stop() }()
	// Two background singles: the first occupies the dispatcher inside
	// the blocked eval, the second fills the queue (capacity 1). Same
	// package, same process — so wait for each state transition before
	// moving on, making the final probe deterministic.
	flushed := cCoalesceFlushes.With("size").Value()
	post := func(i int) {
		body := fmt.Sprintf(`{"model":"full","config":%s}`, mustJSON(t, toWire(m.Configs[i])))
		go func() {
			resp, err := http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(body))
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	deadline = time.Now().Add(5 * time.Second)
	post(0)
	for cCoalesceFlushes.With("size").Value() == flushed {
		if time.Now().After(deadline) {
			t.Fatal("dispatcher never entered eval for the first HTTP request")
		}
		time.Sleep(time.Millisecond)
	}
	post(1)
	for len(s.coalesce.queue) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second HTTP request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	resp, raw := postJSON(t, ts.URL+"/v1/predict",
		fmt.Sprintf(`{"model":"full","config":%s}`, mustJSON(t, toWire(m.Configs[2]))))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d with a full queue, want 503 (body %s)", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), "coalesce_queue_full") {
		t.Fatalf("503 body = %s, want code coalesce_queue_full", raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 carried no Retry-After header")
	}
}

// TestCoalesceStorm is the -race stress: a mixture of coalesced
// singles and direct batches against one server, every response
// checked bit-for-bit against the in-process model.
func TestCoalesceStorm(t *testing.T) {
	obs.Reset()
	m := buildTestModel(t, "storm-co")
	_, ts := coalescingServer(t, Options{
		CoalesceWindow: time.Millisecond,
		CoalesceMax:    8,
	}, m)
	want := make([]float64, len(m.Configs))
	for i, cfg := range m.Configs {
		want[i] = m.PredictConfig(cfg)
	}
	const goroutines = 8
	const iters = 15
	var wg sync.WaitGroup
	errs := make(chan string, goroutines*iters)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				i := (g*iters + it) % len(m.Configs)
				if g%2 == 0 {
					p, code := predictSingle(t, ts.URL, "storm-co", m.Configs[i])
					if code != http.StatusOK || p.Value != want[i] {
						errs <- fmt.Sprintf("single[%d]: %x (status %d), want %x", i, p.Value, code, want[i])
					}
					continue
				}
				j := (i + 3) % len(m.Configs)
				body := fmt.Sprintf(`{"model":"storm-co","configs":[%s,%s]}`,
					mustJSON(t, toWire(m.Configs[i])), mustJSON(t, toWire(m.Configs[j])))
				resp, raw := postJSON(t, ts.URL+"/v1/predict", body)
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("batch status %d: %s", resp.StatusCode, raw)
					continue
				}
				var pr predictResponse
				if err := json.Unmarshal(raw, &pr); err != nil {
					errs <- err.Error()
					continue
				}
				if pr.Predictions[0].Value != want[i] || pr.Predictions[1].Value != want[j] {
					errs <- fmt.Sprintf("batch values %x/%x, want %x/%x",
						pr.Predictions[0].Value, pr.Predictions[1].Value, want[i], want[j])
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestBatchVectorizedBitIdentical: explicit batches go through the
// compiled evaluator; every value must equal the scalar in-process
// prediction, and a repeat of the same batch must be served from cache.
func TestBatchVectorizedBitIdentical(t *testing.T) {
	obs.Reset()
	m := buildTestModel(t, "vec")
	s := New(Options{})
	if err := s.Registry().Add(m.Name, m, ""); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	var sb strings.Builder
	sb.WriteString(`{"model":"vec","configs":[`)
	for i, cfg := range m.Configs {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.Write(mustJSON(t, toWire(cfg)))
	}
	sb.WriteString("]}")
	for round := 0; round < 2; round++ {
		resp, raw := postJSON(t, ts.URL+"/v1/predict", sb.String())
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch status %d: %s", resp.StatusCode, raw)
		}
		var pr predictResponse
		if err := json.Unmarshal(raw, &pr); err != nil {
			t.Fatal(err)
		}
		for i, p := range pr.Predictions {
			if want := m.PredictConfig(m.Configs[i]); p.Value != want {
				t.Fatalf("round %d: batch[%d] = %x, want %x", round, i, p.Value, want)
			}
			if round == 1 && !p.Cached {
				t.Fatalf("round 1: batch[%d] missed the cache", i)
			}
		}
	}
}

// TestCoalescePredictAfterStop pins the shutdown straggler behavior on
// the coalescer side: a handler arriving after stop() gets a structured
// ErrCoalesceStopped — never a panic, never a hang.
func TestCoalescePredictAfterStop(t *testing.T) {
	m := buildTestModel(t, "after-stop")
	e := &Entry{Name: "after-stop", Model: m}
	c := newCoalescer(time.Millisecond, 4, 16, func(e *Entry, cfgs []design.Config) []prediction {
		out := make([]prediction, len(cfgs))
		for i, cfg := range cfgs {
			out[i] = prediction{Value: e.Model.PredictConfig(cfg)}
		}
		return out
	})
	if p, err := c.predict(context.Background(), e, m.Configs[0]); err != nil || p.Value != m.PredictConfig(m.Configs[0]) {
		t.Fatalf("pre-stop predict = %+v, %v", p, err)
	}
	c.stop()
	if _, err := c.predict(context.Background(), e, m.Configs[0]); err != ErrCoalesceStopped {
		t.Fatalf("predict after stop returned %v, want ErrCoalesceStopped", err)
	}
}
