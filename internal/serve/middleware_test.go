package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"predperf/internal/obs"
)

// newObsTestServer builds a one-model server with its access log wired
// to an in-memory buffer, returning the server, the test listener, and
// the buffer.
func newObsTestServer(t *testing.T) (*Server, *httptest.Server, *bytes.Buffer) {
	t.Helper()
	obs.Reset()
	m := buildTestModel(t, "synthetic")
	dir := t.TempDir()
	saveModel(t, m, filepath.Join(dir, "synthetic.json"))
	var logBuf bytes.Buffer
	s := New(Options{ModelDir: dir, AccessLog: &logBuf})
	if _, err := s.Registry().LoadDir(""); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, &logBuf
}

func TestRequestIDMiddleware(t *testing.T) {
	_, ts, logBuf := newObsTestServer(t)

	// A client-supplied X-Request-Id is respected and echoed back.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-Id", "client-id-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "client-id-7" {
		t.Fatalf("echoed id = %q, want client-id-7", got)
	}

	// Without the header, the server assigns a fresh 16-hex-char id.
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	gen := resp2.Header.Get("X-Request-Id")
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(gen) {
		t.Fatalf("generated id %q is not 16 hex chars", gen)
	}

	// Both requests land in the access log with their ids.
	lines := parseAccessLog(t, logBuf)
	if len(lines) != 2 {
		t.Fatalf("access log has %d lines, want 2", len(lines))
	}
	if lines[0].ID != "client-id-7" || lines[1].ID != gen {
		t.Fatalf("logged ids = %q, %q; want client-id-7, %s", lines[0].ID, lines[1].ID, gen)
	}
}

// TestRequestIDValidation: a client-supplied X-Request-Id outside the
// safe charset/length is replaced with a generated ID rather than
// echoed into headers, logs, and trace IDs.
func TestRequestIDValidation(t *testing.T) {
	_, ts, logBuf := newObsTestServer(t)

	gen := regexp.MustCompile(`^[0-9a-f]{16}$`)
	for _, bad := range []string{
		strings.Repeat("x", 65),                           // over the length clamp
		"spaces are bad", "semi;colon", `quote"injection`, // outside the charset
	} {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
		req.Header.Set("X-Request-Id", bad)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if got := resp.Header.Get("X-Request-Id"); got == bad || !gen.MatchString(got) {
			t.Errorf("invalid id %q echoed as %q, want a generated 16-hex id", bad, got)
		}
	}
	for _, e := range parseAccessLog(t, logBuf) {
		if !gen.MatchString(e.ID) {
			t.Errorf("invalid client id leaked into the access log: %q", e.ID)
		}
	}
}

func parseAccessLog(t *testing.T, buf *bytes.Buffer) []accessEntry {
	t.Helper()
	var out []accessEntry
	dec := json.NewDecoder(buf)
	for dec.More() {
		var e accessEntry
		if err := dec.Decode(&e); err != nil {
			t.Fatalf("access log is not JSON lines: %v", err)
		}
		out = append(out, e)
	}
	return out
}

func TestAccessLogFields(t *testing.T) {
	_, ts, logBuf := newObsTestServer(t)

	resp, body := postJSON(t, ts.URL+"/v1/predict", `{"model":"nope","configs":[]}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("predict on missing model = %d, want 404", resp.StatusCode)
	}
	lines := parseAccessLog(t, logBuf)
	if len(lines) != 1 {
		t.Fatalf("access log has %d lines, want 1", len(lines))
	}
	e := lines[0]
	if e.Method != "POST" || e.Path != "/v1/predict" {
		t.Fatalf("logged %s %s, want POST /v1/predict", e.Method, e.Path)
	}
	if e.Status != http.StatusNotFound {
		t.Fatalf("logged status %d, want 404", e.Status)
	}
	if e.Bytes != int64(len(body)) {
		t.Fatalf("logged %d bytes, response was %d", e.Bytes, len(body))
	}
	if e.DurMS < 0 {
		t.Fatalf("negative duration %g", e.DurMS)
	}
	if _, err := time.Parse("2006-01-02T15:04:05.000Z07:00", e.Time); err != nil {
		t.Fatalf("logged time %q is not RFC 3339 with milliseconds: %v", e.Time, err)
	}
	if e.Remote == "" {
		t.Fatal("remote address missing from access log")
	}
}

func TestMetriczProm(t *testing.T) {
	_, ts, _ := newObsTestServer(t)

	// Drive one predict so the request histogram and the per-model
	// prediction counter have data.
	resp, _ := postJSON(t, ts.URL+"/v1/predict",
		`{"model":"synthetic","configs":[{"depth":12,"rob":96,"iq":48,"lsq":48,"l2kb":2048,"l2lat":10,"il1kb":32,"dl1kb":32,"dl1lat":2}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict = %d", resp.StatusCode)
	}

	promResp, err := http.Get(ts.URL + "/metricz?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(promResp.Body)
	promResp.Body.Close()
	if ct := promResp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, obs.PromContentType)
	}
	out := buf.String()
	for _, want := range []string{
		`serve_http_request_seconds_bucket{route="/v1/predict",le="`,
		`serve_http_request_seconds_sum{route="/v1/predict"}`,
		`serve_http_request_seconds_count{route="/v1/predict"}`,
		`serve_http_responses{route="/v1/predict",code="200"} 1`,
		`serve_model_predictions{model="synthetic"} 1`,
		`serve_cache_entries`,
		`serve_cache_capacity`,
		`serve_registry_models 1`,
		`serve_inflight_requests`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom exposition missing %q", want)
		}
	}

	// The JSON format carries the same series in the snapshot report.
	jsonResp, err := http.Get(ts.URL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	var rep obs.Report
	if err := json.NewDecoder(jsonResp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	jsonResp.Body.Close()
	if got := rep.Counters[`serve.model_predictions{model="synthetic"}`]; got != 1 {
		t.Fatalf("JSON per-model predictions = %d, want 1", got)
	}
	if _, ok := rep.Gauges["serve.registry_models"]; !ok {
		t.Fatalf("JSON report missing registry gauge: %v", rep.Gauges)
	}
	if _, ok := rep.Gauges["serve.cache_entries"]; !ok {
		t.Fatalf("JSON report missing cache gauge: %v", rep.Gauges)
	}
	found := false
	for name := range rep.Histograms {
		if strings.HasPrefix(name, "serve.http_request_seconds{") {
			found = true
		}
	}
	if !found {
		t.Fatalf("JSON report missing request histogram: %v", rep.Histograms)
	}

	// Unknown formats are a client error, not a silent default.
	badResp, err := http.Get(ts.URL + "/metricz?format=xml")
	if err != nil {
		t.Fatal(err)
	}
	badResp.Body.Close()
	if badResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("format=xml = %d, want 400", badResp.StatusCode)
	}
}

// TestRouteLabelBounded: unknown paths collapse to "other" so clients
// can't blow up label cardinality.
func TestRouteLabelBounded(t *testing.T) {
	_, ts, _ := newObsTestServer(t)
	for i := 0; i < 3; i++ {
		resp, err := http.Get(fmt.Sprintf("%s/made-up-%d", ts.URL, i))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/metricz?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(buf.String(), `serve_http_responses{route="other",code="404"} 3`) {
		t.Fatal("unknown routes did not collapse to the \"other\" label")
	}
	if strings.Contains(buf.String(), "made-up") {
		t.Fatal("raw client path leaked into metric labels")
	}
}
