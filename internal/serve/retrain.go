package serve

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"predperf/internal/core"
	"predperf/internal/obs"
)

// Closed-loop model lifecycle: the paper's §6 iterative escalation
// (build at increasing sample sizes until the test-set error target is
// met) run as an always-on production loop instead of a one-shot
// offline call. The shadow monitor measures live model error; when a
// model's drift alert fires for a sustained period, the retrain
// controller rebuilds it against the same simulator evaluator at
// escalated sample sizes (strictly above the serving model's — the
// escalation resumes, it does not start over) and hot-loads the winner
// through the generation-keyed registry. In-flight predictions keep the
// entry they resolved, the LRU cache keys on the generation, so the
// swap is atomic per request with zero downtime and zero stale hits.
//
// Production hygiene: retrains are single-flight per model, bounded
// globally (RetrainMaxConcurrent), built with a bounded internal/par
// worker budget (RetrainWorkers) so background builds cannot starve the
// serving CPUs, followed by a cooldown after success AND failure so a
// model that cannot be fixed does not hot-loop the simulator, and
// persisted atomically (temp file + rename) back into the model
// directory so a restart serves the new generation.
var (
	cRetrains = obs.NewCounterVec("serve.retrains", "model", "outcome")
)

// Retrain outcomes (the "outcome" label on serve.retrains).
const (
	retrainOutcomeSuccess       = "success"
	retrainOutcomeBuildFailed   = "build_failed"
	retrainOutcomeNoEvaluator   = "no_evaluator"
	retrainOutcomePersistFailed = "persist_failed"
	retrainOutcomeSwapFailed    = "swap_failed"
	retrainOutcomeCanceled      = "canceled"
)

// retrainTestSeed seeds the controller's validation test sets. Fixed,
// so successive retrains of one model share test points (and therefore
// share memoized simulations in the entry's evaluator cache).
const retrainTestSeed = 20260807

// retrainState is one model's lifecycle state as exposed on /alertz and
// /statusz.
type retrainState struct {
	Model       string `json:"model"`
	Status      string `json:"status"` // idle | drift_pending | retraining | cooldown
	Attempts    int64  `json:"attempts"`
	Generation  uint64 `json:"generation,omitempty"`
	FiringSince string `json:"firing_since,omitempty"`
	Cooldown    string `json:"cooldown_until,omitempty"`
	LastOutcome string `json:"last_outcome,omitempty"`
	LastSize    int    `json:"last_size,omitempty"`
	LastError   string `json:"last_error,omitempty"`
}

// retrainModel is the internal per-model accounting.
type retrainModel struct {
	firingSince   time.Time // first poll that saw the drift alert firing
	inflight      bool
	cooldownUntil time.Time
	attempts      int64
	lastOutcome   string
	lastSize      int
	lastErr       string
}

// retrainController watches the shadow monitor's drift states on the
// injected clock and closes the loop from drift to hot-swap.
type retrainController struct {
	on         bool
	sizes      []int // escalation ladder ([] = auto: 2×, 3×, 4× the serving size)
	targetPct  float64
	cooldown   time.Duration
	after      time.Duration // how long drift must fire before a retrain starts
	pollEvery  time.Duration
	testPoints int
	workers    int
	traceLen   int

	reg    *Registry
	shadow *shadowMonitor
	clock  obs.Clock
	traces *obs.TraceStore // retrain traces register here (nil drops them)

	// Test seams: evaluatorFor resolves a model's simulator evaluator
	// (default Entry.simEvaluator) and build runs the escalation
	// (default core.BuildToAccuracyFromCtx).
	evaluatorFor func(e *Entry, traceLen int) (core.Evaluator, error)
	build        func(ctx context.Context, ev core.Evaluator, above int, sizes []int, targetPct float64, ts *core.TestSet, opt core.Options) ([]core.BuildResult, error)

	ctx        context.Context
	cancel     context.CancelFunc
	sem        chan struct{} // global concurrent-retrain budget
	jobs       sync.WaitGroup
	stopTicker chan struct{}
	stopOnce   sync.Once

	mu     sync.Mutex
	closed bool
	models map[string]*retrainModel
}

// newRetrainController builds the controller. Options.Retrain == false
// returns a disabled controller: every method is a cheap no-op.
func newRetrainController(opt Options, reg *Registry, shadow *shadowMonitor, clock obs.Clock) *retrainController {
	ctx, cancel := context.WithCancel(context.Background())
	c := &retrainController{
		on:         opt.Retrain,
		sizes:      opt.RetrainSizes,
		targetPct:  opt.RetrainTargetPct,
		cooldown:   opt.RetrainCooldown,
		after:      opt.RetrainAfter,
		pollEvery:  opt.RetrainPoll,
		testPoints: opt.RetrainTestPoints,
		workers:    opt.RetrainWorkers,
		traceLen:   opt.SearchTraceLen,
		reg:        reg,
		shadow:     shadow,
		clock:      clock,
		ctx:        ctx,
		cancel:     cancel,
		sem:        make(chan struct{}, opt.RetrainMaxConcurrent),
		stopTicker: make(chan struct{}),
		models:     map[string]*retrainModel{},
	}
	c.evaluatorFor = func(e *Entry, traceLen int) (core.Evaluator, error) {
		sim, err := e.simEvaluator(traceLen)
		if err != nil {
			return nil, err
		}
		return sim, nil
	}
	c.build = core.BuildToAccuracyFromCtx
	return c
}

func (c *retrainController) enabled() bool { return c != nil && c.on }

// start launches the background poller. The poll cadence is wall-clock
// (a ticker); every decision inside poll reads the injected obs.Clock,
// so fake-clock tests drive the controller by calling poll directly.
func (c *retrainController) start() {
	if !c.enabled() {
		return
	}
	go func() {
		t := time.NewTicker(c.pollEvery)
		defer t.Stop()
		for {
			select {
			case <-c.stopTicker:
				return
			case <-t.C:
				c.poll()
			}
		}
	}()
}

// poll is one evaluation of every model's drift state: it starts (and
// tracks) the firing-since timestamps and kicks off retrains whose
// sustain, cooldown, single-flight, and concurrency conditions are all
// met. Called by the ticker in production and directly by tests.
func (c *retrainController) poll() {
	if !c.enabled() {
		return
	}
	now := c.clock()
	for _, d := range c.shadow.driftStates() {
		c.consider(now, d)
	}
}

// model returns (creating on first use) the per-model state. Callers
// hold c.mu.
func (c *retrainController) model(name string) *retrainModel {
	st, ok := c.models[name]
	if !ok {
		st = &retrainModel{}
		c.models[name] = st
	}
	return st
}

// consider applies the trigger conditions to one drift state and spawns
// the retrain goroutine when they all hold.
func (c *retrainController) consider(now time.Time, d driftState) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	st := c.model(d.Model)
	if !d.Firing {
		st.firingSince = time.Time{}
		return
	}
	if st.firingSince.IsZero() {
		st.firingSince = now
	}
	if st.inflight || now.Sub(st.firingSince) < c.after || now.Before(st.cooldownUntil) {
		return
	}
	entry, ok := c.reg.Get(d.Model)
	if !ok {
		return // drift history for a model that was since unloaded
	}
	select {
	case c.sem <- struct{}{}:
	default:
		return // at the concurrent-retrain budget; retry next poll
	}
	st.inflight = true
	st.attempts++
	c.jobs.Add(1)
	go c.run(entry, st.attempts)
}

// run is one retrain attempt: escalate, swap, persist, account. It owns
// a semaphore slot and the model's single-flight claim.
func (c *retrainController) run(e *Entry, attempt int64) {
	defer c.jobs.Done()
	defer func() { <-c.sem }()
	// Each attempt gets its own trace, so the escalation's build spans
	// (core.build_rbf, core.sample, core.simulate, core.fit) nest under
	// serve.retrain both in the span aggregates and on the trace.
	t0 := time.Now()
	tr := obs.NewTrace(fmt.Sprintf("retrain-%s-%d", e.Name, attempt))
	ctx := obs.WithTrace(c.ctx, tr)
	ctx, end := obs.StartSpanCtx(ctx, "serve.retrain", "model", e.Name)
	outcome, size, err := c.retrain(ctx, e, attempt)
	end()
	cRetrains.With(e.Name, outcome).Inc()
	// Retrains are rare, long, and operationally interesting: every one
	// is pinned in the /tracez store (Keep), never reservoir-evicted.
	c.traces.Add(tr, obs.TraceMeta{
		ID: tr.ID(), Kind: "retrain", Route: e.Name,
		Start: t0, Dur: time.Since(t0), Err: err != nil, Keep: true,
	})

	now := c.clock()
	c.mu.Lock()
	st := c.model(e.Name)
	st.inflight = false
	st.lastOutcome = outcome
	st.lastSize = size
	st.lastErr = ""
	if err != nil {
		st.lastErr = err.Error()
	}
	// Cooldown after success AND failure: a freshly swapped model needs
	// time to accumulate shadow samples before its drift state means
	// anything, and a failing build must not hot-loop the simulator.
	st.cooldownUntil = now.Add(c.cooldown)
	st.firingSince = time.Time{}
	c.mu.Unlock()
}

// retrain performs the escalation for one entry and reports the
// outcome label, the swapped-in sample size (0 if no swap), and the
// underlying error (nil on success).
func (c *retrainController) retrain(ctx context.Context, e *Entry, attempt int64) (outcome string, size int, err error) {
	ev, err := c.evaluatorFor(e, c.traceLen)
	if err != nil {
		return retrainOutcomeNoEvaluator, 0, err
	}
	// A fresh independent test set in the serving model's space drives
	// the escalation's stopping rule, exactly as in the paper; its
	// simulations are memoized in the evaluator shared with the shadow
	// monitor, so repeated attempts re-simulate nothing.
	ts := core.NewTestSetWorkers(ev, e.Model.Space, c.testPoints, retrainTestSeed, c.workers)
	opt := core.Options{
		Space:    e.Model.Space,
		Parallel: c.workers,
		// A per-attempt seed draws a fresh space-filling sample each
		// time: retraining exists because the served workload moved, so
		// reproducing the previous sample verbatim is the one thing the
		// loop must not do.
		Seed: retrainTestSeed + attempt,
	}
	results, err := c.build(ctx, ev, e.Model.SampleSize, c.sizesFor(e.Model.SampleSize), c.targetPct, ts, opt)
	if len(results) == 0 || (err != nil && ctx.Err() != nil) {
		if ctx.Err() != nil {
			return retrainOutcomeCanceled, 0, ctx.Err()
		}
		if err == nil {
			err = fmt.Errorf("serve: retrain built no model")
		}
		return retrainOutcomeBuildFailed, 0, err
	}
	// Best result: lowest mean test error (later size wins ties — more
	// data at equal accuracy generalizes better).
	best := results[0]
	for _, r := range results[1:] {
		if r.Stats.Mean <= best.Stats.Mean {
			best = r
		}
	}
	m := best.Model
	m.Name = e.Model.Name // keep the benchmark identity across generations

	// Swap before persisting: serving the freshest model wins over disk
	// consistency, and a persist failure is reported, not fatal.
	path := c.persistPath(e)
	if err := c.reg.Add(e.Name, m, path); err != nil {
		return retrainOutcomeSwapFailed, 0, err
	}
	// The swapped-in generation starts with a clean drift window:
	// samples of the replaced model must not count against it.
	c.shadow.resetModel(e.Name)
	if path != "" {
		if err := saveModelAtomic(m, path); err != nil {
			return retrainOutcomePersistFailed, m.SampleSize, err
		}
	}
	return retrainOutcomeSuccess, m.SampleSize, nil
}

// sizesFor resolves the escalation ladder for a model currently serving
// at base: the configured sizes above base, or — when none are — the
// automatic 2×/3×/4× ladder, so escalation always has somewhere to go.
func (c *retrainController) sizesFor(base int) []int {
	eligible := make([]int, 0, len(c.sizes))
	for _, s := range c.sizes {
		if s > base {
			eligible = append(eligible, s)
		}
	}
	if len(eligible) == 0 {
		eligible = []int{2 * base, 3 * base, 4 * base}
	}
	return eligible
}

// persistPath is where the retrained model lands on disk: the file the
// serving model was loaded from, else <model-dir>/<name>.json, else ""
// (in-process registration with no model dir — nothing to persist).
func (c *retrainController) persistPath(e *Entry) string {
	if e.Path != "" {
		return e.Path
	}
	if c.reg.dir != "" {
		return filepath.Join(c.reg.dir, e.Name+".json")
	}
	return ""
}

// saveModelAtomic persists m at path via temp file + rename in the
// destination directory, so a concurrent restart loads either the old
// or the new generation — never a torn file.
func saveModelAtomic(m *core.Model, path string) error {
	f, err := os.CreateTemp(filepath.Dir(path), ".retrain-*.json")
	if err != nil {
		return fmt.Errorf("serve: persisting retrained model: %w", err)
	}
	tmp := f.Name()
	if err := m.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("serve: persisting retrained model: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: persisting retrained model: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: persisting retrained model: %w", err)
	}
	return nil
}

// inflightCount reports how many retrains are running (the
// serve.retrains_inflight gauge).
func (c *retrainController) inflightCount() int {
	if !c.enabled() {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, st := range c.models {
		if st.inflight {
			n++
		}
	}
	return n
}

// notes are the non-failing /readyz annotations: a retraining model is
// news an operator wants in the readiness body, but it must never flip
// readiness by itself.
func (c *retrainController) notes() []unreadyReason {
	if !c.enabled() {
		return nil
	}
	now := c.clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.models))
	for name, st := range c.models {
		if st.inflight {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var out []unreadyReason
	for _, name := range names {
		st := c.models[name]
		out = append(out, unreadyReason{
			Code: "retraining",
			Message: fmt.Sprintf("model %q: retraining in progress (attempt %d, drift sustained since %s)",
				name, st.attempts, st.firingSince.UTC().Format(time.RFC3339)),
		})
		_ = now
	}
	return out
}

// states snapshots every model the controller has tracked, sorted by
// name — the /alertz "retrains" block and the /statusz table.
func (c *retrainController) states() []retrainState {
	if !c.enabled() {
		return nil
	}
	now := c.clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.models))
	for name := range c.models {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]retrainState, 0, len(names))
	for _, name := range names {
		st := c.models[name]
		s := retrainState{
			Model:       name,
			Status:      "idle",
			Attempts:    st.attempts,
			LastOutcome: st.lastOutcome,
			LastSize:    st.lastSize,
			LastError:   st.lastErr,
		}
		switch {
		case st.inflight:
			s.Status = "retraining"
		case !st.firingSince.IsZero():
			s.Status = "drift_pending"
		case now.Before(st.cooldownUntil):
			s.Status = "cooldown"
		}
		if !st.firingSince.IsZero() {
			s.FiringSince = st.firingSince.UTC().Format(time.RFC3339)
		}
		if now.Before(st.cooldownUntil) {
			s.Cooldown = st.cooldownUntil.UTC().Format(time.RFC3339)
		}
		if e, ok := c.reg.Get(name); ok {
			s.Generation = e.Generation()
		}
		out = append(out, s)
	}
	return out
}

// wait blocks until every in-flight retrain has finished — a test and
// shutdown hook, not a serving-path call.
func (c *retrainController) wait() {
	if c.enabled() {
		c.jobs.Wait()
	}
}

// stop refuses new retrains, cancels the escalation (which stops at the
// next sample-size boundary), and waits for in-flight attempts to wind
// down. Called by Server.Shutdown after the HTTP drain, before the
// coalescer and shadow workers stop.
func (c *retrainController) stop() {
	if !c.enabled() {
		return
	}
	c.stopOnce.Do(func() {
		close(c.stopTicker)
		c.mu.Lock()
		c.closed = true
		c.mu.Unlock()
		c.cancel()
		c.jobs.Wait()
	})
}
