package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"predperf/internal/obs"
)

// fakeClock drives the server's windows, SLOs, and alerts in tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 2, 3, 0, 0, 0, time.UTC)}
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

func getBody(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

// TestReadyzLifecycle walks /readyz through its states: 503 with
// no_models on an empty registry, 200 once a model loads, 503 within one
// window rotation of an SLO-violating latency burst, and recovery once
// the burst ages out of the fast burn window.
func TestReadyzLifecycle(t *testing.T) {
	obs.Reset()
	clk := newFakeClock()
	s := New(Options{Clock: clk.now})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Empty registry: unready with a structured reason.
	resp, body := getBody(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, "no_models") {
		t.Fatalf("empty registry: status %d body %s, want 503 no_models", resp.StatusCode, body)
	}

	// Load a model: ready.
	if err := s.Registry().Add("ready", buildTestModel(t, "ready"), ""); err != nil {
		t.Fatal(err)
	}
	resp, body = getBody(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"ready"`) {
		t.Fatalf("after load: status %d body %s, want 200 ready", resp.StatusCode, body)
	}

	// An SLO-violating burst: every request blows the latency objective,
	// so the latency SLO burns at ~1000× (bad fraction ~1 against a 0.1%
	// budget) on both windows. The observations go straight into the
	// request histogram — the same path the middleware feeds.
	for i := 0; i < 200; i++ {
		hAllRequests.Observe(10)
	}
	resp, body = getBody(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, "slo_burn") {
		t.Fatalf("under burn: status %d body %s, want 503 slo_burn", resp.StatusCode, body)
	}

	// /alertz records the firing condition with its onset time.
	resp, body = getBody(t, ts.URL+"/alertz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("alertz status %d", resp.StatusCode)
	}
	var alertz struct {
		Firing int         `json:"firing"`
		Alerts []obs.Alert `json:"alerts"`
	}
	if err := json.Unmarshal([]byte(body), &alertz); err != nil {
		t.Fatalf("%v in %s", err, body)
	}
	if alertz.Firing == 0 {
		t.Fatalf("alertz reports nothing firing: %s", body)
	}
	foundBurn := false
	for _, al := range alertz.Alerts {
		if al.Name == "slo_burn:latency" && al.Firing && al.Since != "" {
			foundBurn = true
		}
	}
	if !foundBurn {
		t.Fatalf("alertz missing a firing slo_burn:latency: %s", body)
	}

	// Six minutes later the burst has aged out of the 5m fast window, so
	// the multi-window AND stops firing and readiness recovers.
	clk.advance(6 * time.Minute)
	obs.TickWindows()
	resp, body = getBody(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after recovery: status %d body %s, want 200", resp.StatusCode, body)
	}

	// The alert log keeps the resolved entry with its resolution time.
	_, body = getBody(t, ts.URL+"/alertz")
	if err := json.Unmarshal([]byte(body), &alertz); err != nil {
		t.Fatal(err)
	}
	for _, al := range alertz.Alerts {
		if al.Name == "slo_burn:latency" {
			if al.Firing || al.ResolvedAt == "" {
				t.Fatalf("slo_burn:latency not resolved with a timestamp: %+v", al)
			}
		}
	}
}

func TestStatuszPage(t *testing.T) {
	obs.Reset()
	clk := newFakeClock()
	s := New(Options{Clock: clk.now})
	if err := s.Registry().Add("dashboard", buildTestModel(t, "dashboard"), ""); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Drive a little traffic so the route table has numbers.
	for i := 0; i < 3; i++ {
		postJSON(t, ts.URL+"/v1/predict",
			`{"model":"dashboard","config":{"depth":12,"rob":96,"iq":48,"lsq":48,"l2kb":2048,"l2lat":10,"il1kb":32,"dl1kb":32,"dl1lat":2}}`)
	}

	resp, body := getBody(t, ts.URL+"/statusz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("statusz status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("Content-Type %q, want text/html", ct)
	}
	for _, want := range []string{
		"<!DOCTYPE html>",
		"predserve status",
		">READY<",                 // readiness badge
		"dashboard",               // the model row
		"/v1/predict",             // the route table
		"<svg",                    // a sparkline rendered
		Build().GoVersion,         // build info in the header
		"latency", "availability", // the two declared SLOs
	} {
		if !strings.Contains(body, want) {
			t.Errorf("statusz missing %q", want)
		}
	}
	// html/template escaping intact: no raw template actions leaked.
	if strings.Contains(body, "{{") {
		t.Error("statusz leaked unexecuted template actions")
	}
}

func TestHealthzCarriesBuildInfo(t *testing.T) {
	obs.Reset()
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var h struct {
		Status string    `json:"status"`
		Build  BuildInfo `json:"build"`
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("%v in %s", err, body)
	}
	if h.Status != "ok" {
		t.Fatalf("healthz = %s", body)
	}
	if h.Build.GoVersion == "" || h.Build.ModelFormat < 1 {
		t.Fatalf("healthz build info incomplete: %+v", h.Build)
	}
}
