package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"sync"
	"testing"

	"predperf/internal/core"
	"predperf/internal/design"
	"predperf/internal/obs"
)

// TestShadowSamplingDeterministic: the sampling decision is a pure
// function of (model, quantized config) — stable across calls and across
// monitor instances, so a sampled point can be replayed offline.
func TestShadowSamplingDeterministic(t *testing.T) {
	m := buildTestModel(t, "det")
	opt := Options{ShadowFraction: 0.5}.withDefaults()
	a := newShadowMonitor(opt, nil)
	b := newShadowMonitor(opt, nil)
	defer a.stop()
	defer b.stop()

	sampled := 0
	for _, cfg := range m.Configs {
		da := a.sampled("det", cfg)
		for i := 0; i < 3; i++ {
			if a.sampled("det", cfg) != da {
				t.Fatal("sampling decision changed between calls")
			}
		}
		if b.sampled("det", cfg) != da {
			t.Fatal("sampling decision differs between monitor instances")
		}
		if da {
			sampled++
		}
	}
	if sampled == 0 || sampled == len(m.Configs) {
		t.Fatalf("frac 0.5 sampled %d/%d configs; hash looks degenerate", sampled, len(m.Configs))
	}

	// frac 1 samples everything; a disabled monitor samples nothing.
	all := newShadowMonitor(Options{ShadowFraction: 1}.withDefaults(), nil)
	defer all.stop()
	off := newShadowMonitor(Options{ShadowFraction: 0}.withDefaults(), nil)
	for _, cfg := range m.Configs {
		if !all.sampled("det", cfg) {
			t.Fatal("frac 1 skipped a config")
		}
		if off.sampled("det", cfg) {
			t.Fatal("disabled monitor sampled a config")
		}
	}
}

// TestShadowResponsesBitIdentical is the serving half of the acceptance
// criterion: with shadow sampling at 100% the served responses are
// byte-for-byte what a no-shadow server returns.
func TestShadowResponsesBitIdentical(t *testing.T) {
	obs.Reset()
	m := buildTestModel(t, "bitid")

	run := func(frac float64) []byte {
		s := New(Options{ShadowFraction: frac, ShadowWorkers: 1})
		if err := s.Registry().Add("bitid", m, ""); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		var req struct {
			Model   string       `json:"model"`
			Configs []wireConfig `json:"configs"`
		}
		req.Model = "bitid"
		for _, c := range m.Configs[:16] {
			req.Configs = append(req.Configs, toWire(c))
		}
		js, _ := json.Marshal(req)
		_, body := postJSON(t, ts.URL+"/v1/predict", string(js))
		s.shadow.drain()
		s.shadow.stop()
		return body
	}

	with := run(1)
	without := run(0)
	if !bytes.Equal(with, without) {
		t.Fatalf("responses differ with shadow sampling on:\n  with:    %s\n  without: %s", with, without)
	}
	// The synthetic model's name is not a simulator benchmark, so every
	// shadow job fails at evaluator construction — counted, not fatal.
	if obs.NewCounter("serve.shadow_sim_failures").Value() == 0 {
		t.Fatal("expected shadow sim failures for a non-benchmark model name")
	}
}

// TestShadowQueueDrops: a full queue drops samples rather than blocking
// the predict path.
func TestShadowQueueDrops(t *testing.T) {
	obs.Reset()
	m := buildTestModel(t, "drops")
	// Queue of 1 and a worker pool that can't drain 16 sims instantly:
	// the burst must overflow and the overflow must be counted.
	opt := Options{ShadowFraction: 1, ShadowWorkers: 1, ShadowQueue: 1}.withDefaults()
	mon := newShadowMonitor(opt, nil)
	defer mon.stop()
	e := &Entry{Name: "drops", Model: m}
	for _, cfg := range m.Configs[:16] {
		mon.offer(e, cfg, 1.0)
	}
	mon.drain()
	dropped := obs.NewCounter("serve.shadow_dropped").Value()
	if dropped == 0 {
		t.Fatal("16 offers through a 1-slot queue dropped nothing")
	}
}

// TestShadowErrorMatchesBuildTimeValidation is the acceptance criterion:
// serve an on-grid batch with -shadow-frac 1.0 and the shadow monitor's
// mean error must equal the build-time test-set error, because both run
// the identical simulator evaluator path on identical configs.
func TestShadowErrorMatchesBuildTimeValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a simulator-backed model")
	}
	obs.Reset()
	const traceLen = 6000
	ev, err := core.NewSimEvaluator("twolf", traceLen)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.BuildRBFModel(ev, 24, core.Options{LHSCandidates: 8, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	m.Name = "twolf" // the registry resolves the shadow evaluator by benchmark name

	// Draw random test points, then quantize each through the exact
	// Decode∘Encode projection the serve path applies, so the served
	// config is the config validated here and the shadow path
	// re-simulates exactly these points.
	raw := core.NewTestSet(ev, m.Space, 10, 5)
	ts := &core.TestSet{
		Configs: make([]design.Config, len(raw.Configs)),
		Actual:  make([]float64, len(raw.Configs)),
	}
	for i, c := range raw.Configs {
		q := m.Space.Decode(m.Space.Encode(c), m.SampleSize)
		ts.Configs[i] = q
		ts.Actual[i] = ev.Eval(q)
	}
	want := m.Validate(ts)
	if want.N != len(ts.Configs) {
		t.Fatalf("test set dropped points: %+v", want)
	}

	clk := newFakeClock()
	s := New(Options{
		ShadowFraction: 1,
		ShadowWorkers:  1,
		SearchTraceLen: traceLen, // shadow evaluator: same benchmark, same trace length
		Clock:          clk.now,
		ShadowErrPct:   -1, // never trip readiness in this test
	})
	if err := s.Registry().Add("twolf", m, ""); err != nil {
		t.Fatal(err)
	}
	hts := httptest.NewServer(s.Handler())
	defer hts.Close()

	var req struct {
		Model   string       `json:"model"`
		Configs []wireConfig `json:"configs"`
	}
	req.Model = "twolf"
	for _, c := range ts.Configs {
		req.Configs = append(req.Configs, toWire(c))
	}
	js, _ := json.Marshal(req)
	_, body := postJSON(t, hts.URL+"/v1/predict", string(js))
	var pr predictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatalf("%v in %s", err, body)
	}
	for i, p := range pr.Predictions {
		if wantV := m.PredictConfig(ts.Configs[i]); p.Value != wantV {
			t.Fatalf("served prediction %d = %v, want bit-identical %v", i, p.Value, wantV)
		}
	}
	s.shadow.drain()

	st, ok := s.shadow.modelStats("twolf")
	if !ok {
		t.Fatal("no shadow stats after a frac-1.0 batch")
	}
	n := st.hist.Count()
	if n != int64(len(ts.Configs)) {
		t.Fatalf("shadow processed %d samples, want %d", n, len(ts.Configs))
	}
	// The histogram's mean is the mean of the same per-point errors
	// errorStats averaged at build time; only float summation order
	// differs.
	gotMean := st.hist.Sum() / float64(n)
	if math.Abs(gotMean-want.Mean) > 1e-9*math.Max(1, want.Mean) {
		t.Fatalf("shadow mean error %.12f%%, want build-time test-set error %.12f%%", gotMean, want.Mean)
	}

	// The windowed drift view saw every sample too.
	ds := s.shadow.driftStates()
	if len(ds) != 1 || ds[0].Samples != n || ds[0].Firing {
		t.Fatalf("drift states = %+v", ds)
	}
	if math.Abs(ds[0].MeanPct-gotMean) > 1e-9 {
		t.Fatalf("windowed mean %.12f != cumulative mean %.12f", ds[0].MeanPct, gotMean)
	}
}

// TestShadowDriftTripsReadyz: a model whose shadow error exceeds the
// configured threshold flips /readyz to 503 with a model_drift reason.
func TestShadowDriftTripsReadyz(t *testing.T) {
	obs.Reset()
	clk := newFakeClock()
	s := New(Options{
		ShadowFraction:   1,
		ShadowWorkers:    1,
		Clock:            clk.now,
		ShadowErrPct:     5,
		ShadowMinSamples: 3,
	})
	m := buildTestModel(t, "drifty")
	if err := s.Registry().Add("drifty", m, ""); err != nil {
		t.Fatal(err)
	}
	// Inject drift directly at the accounting layer: the monitor's error
	// histogram is what driftStates reads, and feeding it here keeps the
	// test independent of simulator availability.
	st := s.shadow.stats("drifty")
	for i := 0; i < 4; i++ {
		st.hist.Observe(40) // 40% error, well past the 5% threshold
	}

	hts := httptest.NewServer(s.Handler())
	defer hts.Close()
	resp, body := getBody(t, hts.URL+"/readyz")
	if resp.StatusCode != 503 || !bytes.Contains([]byte(body), []byte("model_drift")) {
		t.Fatalf("drifting model: status %d body %s, want 503 model_drift", resp.StatusCode, body)
	}

	// Drift heals once the bad samples age out of the 1h window.
	clk.advance(obs.DefSlowWindow + obs.DefWindowBucket)
	obs.TickWindows()
	resp, body = getBody(t, hts.URL+"/readyz")
	if resp.StatusCode != 200 {
		t.Fatalf("after samples aged out: status %d body %s, want 200", resp.StatusCode, body)
	}
}

// TestShadowOfferAfterStop is the regression test for the shutdown
// straggler race: a handler that outlives the drain deadline and offers
// a sample after stop() must have it dropped and counted — before the
// closed flag existed this was a guaranteed panic (send on closed
// channel).
func TestShadowOfferAfterStop(t *testing.T) {
	obs.Reset()
	m := buildTestModel(t, "straggler")
	e := &Entry{Name: "straggler", Model: m}
	opt := Options{ShadowFraction: 1, ShadowWorkers: 1}.withDefaults()

	mon := newShadowMonitor(opt, nil)
	mon.stop()
	mon.offer(e, m.Configs[0], 1.0) // must not panic
	if obs.NewCounter("serve.shadow_dropped").Value() == 0 {
		t.Fatal("offer after stop was not counted as dropped")
	}

	// The same interleaving under contention: many stragglers offering
	// while stop runs concurrently. Run under -race this also proves the
	// closed flag is properly synchronized.
	mon2 := newShadowMonitor(opt, nil)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 200; i++ {
				mon2.offer(e, m.Configs[i%len(m.Configs)], 1.0)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		mon2.stop()
	}()
	close(start)
	wg.Wait()
	mon2.drain()
}

// TestShadowLimitBoundaries: the fraction→hash-threshold conversion is
// exact at the boundaries and never performs an implementation-defined
// out-of-range float→uint64 conversion. float64(MaxUint64) rounds to
// 2^64 exactly, and the largest double below 1 times 2^64 is
// 2^64 − 2^11 — representable, so the clamp guards the conversion
// without changing any reachable value.
func TestShadowLimitBoundaries(t *testing.T) {
	cases := []struct {
		frac float64
		want uint64
	}{
		{0, 0},
		{-0.5, 0},
		{1, math.MaxUint64},
		{1.5, math.MaxUint64},
		{0.5, 1 << 63},
		{0.25, 1 << 62},
		// The largest double below 1: (1 − 2⁻⁵³)·2⁶⁴ = 2⁶⁴ − 2¹¹.
		{math.Nextafter(1, 0), math.MaxUint64 - 2047},
	}
	for _, c := range cases {
		if got := shadowLimit(c.frac); got != c.want {
			t.Errorf("shadowLimit(%v) = %d, want %d", c.frac, got, c.want)
		}
	}
	// Every fraction in (0,1) stays strictly inside the uint64 range.
	for _, f := range []float64{1e-18, 0.1, 0.9, 0.999999, math.Nextafter(1, 0)} {
		got := shadowLimit(f)
		if got == 0 {
			t.Errorf("shadowLimit(%v) = 0; positive fraction lost all hash space", f)
		}
	}
}
