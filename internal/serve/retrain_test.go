package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"predperf/internal/core"
	"predperf/internal/obs"
	"predperf/internal/rbf"
)

// retrainCount reads the serve.retrains counter for one (model, outcome)
// pair through the registry, so the value survives obs.Reset identity.
func retrainCount(model, outcome string) int64 {
	return obs.NewCounterVec("serve.retrains", "model", "outcome").With(model, outcome).Value()
}

// stubController builds a retrain controller around reg with a cheap
// function evaluator, no shadow monitor, and no background ticker —
// tests drive it through consider() on the fake clock.
func stubController(t *testing.T, clk *fakeClock, reg *Registry, opt Options) *retrainController {
	t.Helper()
	opt.Retrain = true
	if opt.RetrainTestPoints == 0 {
		opt.RetrainTestPoints = 4
	}
	c := newRetrainController(opt.withDefaults(), reg, newShadowMonitor(Options{}.withDefaults(), clk.now), clk.now)
	c.evaluatorFor = func(*Entry, int) (core.Evaluator, error) {
		return core.FuncEvaluator(syntheticCPI), nil
	}
	return c
}

// stubBuild returns a build seam that reports one successful result per
// call, handing out the prepared models in order.
func stubBuild(models ...*core.Model) func(context.Context, core.Evaluator, int, []int, float64, *core.TestSet, core.Options) ([]core.BuildResult, error) {
	ch := make(chan *core.Model, len(models))
	for _, m := range models {
		ch <- m
	}
	return func(context.Context, core.Evaluator, int, []int, float64, *core.TestSet, core.Options) ([]core.BuildResult, error) {
		return []core.BuildResult{{Model: <-ch, Stats: core.ErrorStats{Mean: 1}}}, nil
	}
}

func firing(model string) driftState { return driftState{Model: model, Firing: true} }

// TestRetrainSuccessAndCooldown: a sustained drift signal triggers one
// escalation, the winner is hot-swapped under a bumped generation, and
// the per-model cooldown blocks a re-trigger until it expires.
func TestRetrainSuccessAndCooldown(t *testing.T) {
	obs.Reset()
	clk := newFakeClock()
	reg := NewRegistry("")
	if err := reg.Add("m", buildTestModel(t, "m"), ""); err != nil {
		t.Fatal(err)
	}
	c := stubController(t, clk, reg, Options{RetrainAfter: -1, RetrainCooldown: 10 * time.Minute})
	repl1, repl2 := buildTestModel(t, "m"), buildTestModel(t, "m")
	c.build = stubBuild(repl1, repl2)

	c.consider(clk.now(), firing("m"))
	c.wait()
	e, _ := reg.Get("m")
	if e.Generation() != 2 || e.Model != repl1 {
		t.Fatalf("after retrain: generation %d model %p, want generation 2 serving the rebuilt model %p", e.Generation(), e.Model, repl1)
	}
	if got := retrainCount("m", retrainOutcomeSuccess); got != 1 {
		t.Fatalf("serve.retrains{m,success} = %d, want 1", got)
	}
	st := c.states()
	if len(st) != 1 || st[0].Attempts != 1 || st[0].LastOutcome != retrainOutcomeSuccess || st[0].Status != "cooldown" {
		t.Fatalf("states after success = %+v", st)
	}

	// Drift still firing inside the cooldown: no second attempt.
	clk.advance(time.Minute)
	c.consider(clk.now(), firing("m"))
	c.wait()
	if st := c.states(); st[0].Attempts != 1 {
		t.Fatalf("retrain re-triggered inside the cooldown: %+v", st)
	}

	// Past the cooldown the next sustained drift retrains again.
	clk.advance(10 * time.Minute)
	c.consider(clk.now(), firing("m"))
	c.wait()
	e, _ = reg.Get("m")
	if st := c.states(); st[0].Attempts != 2 || e.Generation() != 3 || e.Model != repl2 {
		t.Fatalf("after cooldown expiry: states %+v generation %d", st, e.Generation())
	}
}

// TestRetrainSustainWindow: drift must fire continuously for
// RetrainAfter before a retrain starts; a gap resets the timer.
func TestRetrainSustainWindow(t *testing.T) {
	obs.Reset()
	clk := newFakeClock()
	reg := NewRegistry("")
	if err := reg.Add("m", buildTestModel(t, "m"), ""); err != nil {
		t.Fatal(err)
	}
	c := stubController(t, clk, reg, Options{RetrainAfter: 30 * time.Second})
	c.build = stubBuild(buildTestModel(t, "m"))

	c.consider(clk.now(), firing("m")) // starts the sustain timer
	c.wait()
	if st := c.states(); st[0].Attempts != 0 || st[0].Status != "drift_pending" {
		t.Fatalf("retrain started before the sustain window elapsed: %+v", st)
	}

	// The alert resolves mid-window: the timer resets.
	clk.advance(20 * time.Second)
	c.consider(clk.now(), driftState{Model: "m", Firing: false})
	clk.advance(20 * time.Second)
	c.consider(clk.now(), firing("m"))
	c.wait()
	if st := c.states(); st[0].Attempts != 0 {
		t.Fatalf("a 20s-old fresh alert retrained against a 30s sustain window: %+v", st)
	}

	clk.advance(31 * time.Second)
	c.consider(clk.now(), firing("m"))
	c.wait()
	if st := c.states(); st[0].Attempts != 1 || st[0].LastOutcome != retrainOutcomeSuccess {
		t.Fatalf("sustained drift did not retrain: %+v", st)
	}
}

// TestRetrainSingleFlightAndConcurrencyBudget: a model never has two
// concurrent retrains, and the global budget caps retrains across
// models; a model shut out by the budget gets picked up on a later poll.
func TestRetrainSingleFlightAndConcurrencyBudget(t *testing.T) {
	obs.Reset()
	clk := newFakeClock()
	reg := NewRegistry("")
	for _, name := range []string{"a", "b"} {
		if err := reg.Add(name, buildTestModel(t, name), ""); err != nil {
			t.Fatal(err)
		}
	}
	c := stubController(t, clk, reg, Options{RetrainAfter: -1, RetrainMaxConcurrent: 1})
	release := make(chan struct{})
	models := make(chan *core.Model, 2)
	models <- buildTestModel(t, "x")
	models <- buildTestModel(t, "x")
	c.build = func(context.Context, core.Evaluator, int, []int, float64, *core.TestSet, core.Options) ([]core.BuildResult, error) {
		<-release
		return []core.BuildResult{{Model: <-models, Stats: core.ErrorStats{Mean: 1}}}, nil
	}

	c.consider(clk.now(), firing("a")) // starts, blocks in build
	c.consider(clk.now(), firing("a")) // single-flight: no second attempt
	c.consider(clk.now(), firing("b")) // budget of 1: not started
	snap := map[string]retrainState{}
	for _, s := range c.states() {
		snap[s.Model] = s
	}
	if snap["a"].Attempts != 1 || snap["a"].Status != "retraining" {
		t.Fatalf("model a: %+v, want exactly one in-flight attempt", snap["a"])
	}
	if snap["b"].Attempts != 0 {
		t.Fatalf("model b started despite a full concurrency budget: %+v", snap["b"])
	}

	close(release)
	c.wait()
	c.consider(clk.now(), firing("b")) // budget free again
	c.wait()
	if got := retrainCount("a", retrainOutcomeSuccess) + retrainCount("b", retrainOutcomeSuccess); got != 2 {
		t.Fatalf("success count = %d, want 2", got)
	}
	for _, name := range []string{"a", "b"} {
		if e, _ := reg.Get(name); e.Generation() == 1 {
			t.Fatalf("model %s was never swapped", name)
		}
	}
}

// TestRetrainBuildFailure: a failing escalation counts build_failed,
// leaves the serving model untouched, and still starts the cooldown so
// an unfixable model cannot hot-loop the simulator.
func TestRetrainBuildFailure(t *testing.T) {
	obs.Reset()
	clk := newFakeClock()
	reg := NewRegistry("")
	if err := reg.Add("m", buildTestModel(t, "m"), ""); err != nil {
		t.Fatal(err)
	}
	c := stubController(t, clk, reg, Options{RetrainAfter: -1})
	c.build = func(context.Context, core.Evaluator, int, []int, float64, *core.TestSet, core.Options) ([]core.BuildResult, error) {
		return nil, errors.New("singular fit")
	}
	c.consider(clk.now(), firing("m"))
	c.wait()
	e, _ := reg.Get("m")
	if e.Generation() != 1 {
		t.Fatal("failed build replaced the serving model")
	}
	if got := retrainCount("m", retrainOutcomeBuildFailed); got != 1 {
		t.Fatalf("serve.retrains{m,build_failed} = %d, want 1", got)
	}
	st := c.states()
	if st[0].LastOutcome != retrainOutcomeBuildFailed || !strings.Contains(st[0].LastError, "singular fit") || st[0].Status != "cooldown" {
		t.Fatalf("states after failed build = %+v", st)
	}
}

// TestRetrainNoEvaluator: a model whose benchmark has no simulator
// workload cannot retrain — counted as no_evaluator, cooled down, and
// the serving model stays.
func TestRetrainNoEvaluator(t *testing.T) {
	obs.Reset()
	clk := newFakeClock()
	reg := NewRegistry("")
	if err := reg.Add("nosim", buildTestModel(t, "nosim"), ""); err != nil {
		t.Fatal(err)
	}
	opt := Options{Retrain: true, RetrainAfter: -1, RetrainTestPoints: 4}.withDefaults()
	c := newRetrainController(opt, reg, newShadowMonitor(Options{}.withDefaults(), clk.now), clk.now)
	c.consider(clk.now(), firing("nosim"))
	c.wait()
	if got := retrainCount("nosim", retrainOutcomeNoEvaluator); got != 1 {
		t.Fatalf("serve.retrains{nosim,no_evaluator} = %d, want 1", got)
	}
	if e, _ := reg.Get("nosim"); e.Generation() != 1 {
		t.Fatal("no-evaluator retrain replaced the serving model")
	}
}

// TestRetrainPersistFailure: when the rebuilt model cannot be written
// back to disk the hot swap still stands — serving the freshest model
// wins — and the failure is counted and surfaced.
func TestRetrainPersistFailure(t *testing.T) {
	obs.Reset()
	clk := newFakeClock()
	dir := t.TempDir()
	reg := NewRegistry(dir)
	badPath := filepath.Join(dir, "missing-subdir", "m.json")
	if err := reg.Add("m", buildTestModel(t, "m"), badPath); err != nil {
		t.Fatal(err)
	}
	c := stubController(t, clk, reg, Options{RetrainAfter: -1})
	repl := buildTestModel(t, "m")
	c.build = stubBuild(repl)

	c.consider(clk.now(), firing("m"))
	c.wait()
	e, _ := reg.Get("m")
	if e.Generation() != 2 || e.Model != repl {
		t.Fatalf("persist failure rolled back the swap: generation %d", e.Generation())
	}
	if got := retrainCount("m", retrainOutcomePersistFailed); got != 1 {
		t.Fatalf("serve.retrains{m,persist_failed} = %d, want 1", got)
	}
	if st := c.states(); st[0].LastError == "" || st[0].Status != "cooldown" {
		t.Fatalf("states after persist failure = %+v", st)
	}
}

// TestRetrainPersistsAtomically: a successful retrain rewrites the
// entry's model file via temp+rename; the persisted file decodes to the
// serving model and no temp files are left behind.
func TestRetrainPersistsAtomically(t *testing.T) {
	obs.Reset()
	clk := newFakeClock()
	dir := t.TempDir()
	reg := NewRegistry(dir)
	orig := buildTestModel(t, "m")
	path := filepath.Join(dir, "m.json")
	saveModel(t, orig, path)
	if err := reg.Add("m", orig, path); err != nil {
		t.Fatal(err)
	}
	c := stubController(t, clk, reg, Options{RetrainAfter: -1})
	repl := buildTestModel(t, "m")
	c.build = stubBuild(repl)

	c.consider(clk.now(), firing("m"))
	c.wait()
	if got := retrainCount("m", retrainOutcomeSuccess); got != 1 {
		t.Fatalf("serve.retrains{m,success} = %d, want 1", got)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := core.LoadModel(f)
	f.Close()
	if err != nil {
		t.Fatalf("persisted model does not decode: %v", err)
	}
	for _, cfg := range repl.Configs[:4] {
		if got, want := loaded.PredictConfig(cfg), repl.PredictConfig(cfg); got != want {
			t.Fatalf("persisted model predicts %v, want bit-identical %v", got, want)
		}
	}
	leftovers, _ := filepath.Glob(filepath.Join(dir, ".retrain-*"))
	if len(leftovers) != 0 {
		t.Fatalf("temp files left behind: %v", leftovers)
	}
}

// TestRetrainStopCancelsInFlight: stop refuses new retrains and cancels
// the running escalation, which lands as a canceled outcome.
func TestRetrainStopCancelsInFlight(t *testing.T) {
	obs.Reset()
	clk := newFakeClock()
	reg := NewRegistry("")
	if err := reg.Add("m", buildTestModel(t, "m"), ""); err != nil {
		t.Fatal(err)
	}
	c := stubController(t, clk, reg, Options{RetrainAfter: -1})
	started := make(chan struct{})
	c.build = func(ctx context.Context, _ core.Evaluator, _ int, _ []int, _ float64, _ *core.TestSet, _ core.Options) ([]core.BuildResult, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}
	c.consider(clk.now(), firing("m"))
	<-started
	c.stop() // cancels the build and waits for it
	if got := retrainCount("m", retrainOutcomeCanceled); got != 1 {
		t.Fatalf("serve.retrains{m,canceled} = %d, want 1", got)
	}
	// A stopped controller never starts another retrain.
	clk.advance(time.Hour)
	c.consider(clk.now(), firing("m"))
	c.wait()
	if st := c.states(); st[0].Attempts != 1 {
		t.Fatalf("stopped controller accepted new work: %+v", st)
	}
}

// TestRetrainSizesFor: the configured ladder is filtered to sizes above
// the serving model's, and an exhausted (or absent) ladder falls back
// to the automatic 2x/3x/4x escalation.
func TestRetrainSizesFor(t *testing.T) {
	clk := newFakeClock()
	c := stubController(t, clk, NewRegistry(""), Options{RetrainSizes: []int{10, 20, 30}})
	if got := c.sizesFor(15); len(got) != 2 || got[0] != 20 || got[1] != 30 {
		t.Fatalf("sizesFor(15) over {10,20,30} = %v, want [20 30]", got)
	}
	if got := c.sizesFor(30); len(got) != 3 || got[0] != 60 || got[1] != 90 || got[2] != 120 {
		t.Fatalf("sizesFor(30) with exhausted ladder = %v, want auto [60 90 120]", got)
	}
	c2 := stubController(t, clk, NewRegistry(""), Options{})
	if got := c2.sizesFor(40); len(got) != 3 || got[0] != 80 {
		t.Fatalf("sizesFor(40) with no ladder = %v, want auto [80 120 160]", got)
	}
}

// TestRetrainReadyzNotes: an in-flight retrain shows up as a structured
// non-failing note in /readyz, in the /alertz retrains block, and in
// the /statusz retraining table — and the note clears when it finishes.
func TestRetrainReadyzNotes(t *testing.T) {
	obs.Reset()
	clk := newFakeClock()
	s := New(Options{Retrain: true, RetrainAfter: -1, RetrainPoll: time.Hour, RetrainTestPoints: 4, Clock: clk.now})
	if err := s.Registry().Add("m", buildTestModel(t, "m"), ""); err != nil {
		t.Fatal(err)
	}
	s.retrain.evaluatorFor = func(*Entry, int) (core.Evaluator, error) {
		return core.FuncEvaluator(syntheticCPI), nil
	}
	release := make(chan struct{})
	repl := buildTestModel(t, "m")
	s.retrain.build = func(context.Context, core.Evaluator, int, []int, float64, *core.TestSet, core.Options) ([]core.BuildResult, error) {
		<-release
		return []core.BuildResult{{Model: repl, Stats: core.ErrorStats{Mean: 1}}}, nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	s.retrain.consider(clk.now(), firing("m"))
	resp, body := getBody(t, ts.URL+"/readyz")
	if resp.StatusCode != 200 {
		t.Fatalf("readyz during retrain = %d (%s), want 200 — retraining must not flip readiness", resp.StatusCode, body)
	}
	if !strings.Contains(body, `"retraining"`) || !strings.Contains(body, "notes") {
		t.Fatalf("readyz body during retrain lacks the retraining note: %s", body)
	}
	if _, body := getBody(t, ts.URL+"/alertz"); !strings.Contains(body, `"retrains"`) || !strings.Contains(body, `"retraining"`) {
		t.Fatalf("alertz lacks the retrain-state block: %s", body)
	}
	if _, body := getBody(t, ts.URL+"/statusz"); !strings.Contains(body, "Retraining") {
		t.Fatalf("statusz lacks the retraining section: %s", body)
	}

	close(release)
	s.retrain.wait()
	if _, body := getBody(t, ts.URL+"/readyz"); strings.Contains(body, `"notes"`) {
		t.Fatalf("readyz note survived the retrain: %s", body)
	}
	if e, _ := s.Registry().Get("m"); e.Generation() != 2 {
		t.Fatalf("generation = %d, want 2", e.Generation())
	}
	s.retrain.stop()
}

// TestSimEvaluatorTransientFailureRetries is the regression test for
// the forever-memoized construction error: a transient failure is
// retried after the backoff instead of permanently disabling the
// entry's simulator evaluator, and success memoizes.
func TestSimEvaluatorTransientFailureRetries(t *testing.T) {
	orig := newSimEvaluator
	defer func() { newSimEvaluator = orig }()
	calls := 0
	fail := true
	newSimEvaluator = func(string, int) (*core.SimEvaluator, error) {
		calls++
		if fail {
			return nil, fmt.Errorf("transient: trace unreadable")
		}
		return &core.SimEvaluator{}, nil
	}
	clk := newFakeClock()
	e := &Entry{Name: "retry", Model: buildTestModel(t, "retry"), now: clk.now}

	if _, err := e.simEvaluator(1000); err == nil || calls != 1 {
		t.Fatalf("first construction: err %v after %d calls, want failure after 1", err, calls)
	}
	// Inside the backoff the memoized error answers without retrying.
	if _, err := e.simEvaluator(1000); err == nil {
		t.Fatal("memoized failure returned nil error")
	}
	if calls != 1 {
		t.Fatalf("construction retried inside the backoff: %d calls", calls)
	}
	// Past the backoff it retries; with the old sync.Once memoization
	// this retry never happened and the entry was dead forever.
	clk.advance(simRetryBackoff + time.Second)
	fail = false
	ev, err := e.simEvaluator(1000)
	if err != nil || ev == nil || calls != 2 {
		t.Fatalf("post-backoff retry: ev %v err %v calls %d, want success on call 2", ev, err, calls)
	}
	// Success is memoized: no further construction, same evaluator.
	ev2, err := e.simEvaluator(1000)
	if err != nil || ev2 != ev || calls != 2 {
		t.Fatalf("success not memoized: ev2 %v err %v calls %d", ev2, err, calls)
	}
}

// TestRetrainLifecycle is the end-to-end acceptance test, driven on a
// fake clock against the real simulator: a drifting model is rebuilt at
// an escalated sample size, hot-swapped under a bumped generation while
// a concurrent predict storm observes only whole-generation responses
// (never a mix, never a stale cache hit), the drift clears, /readyz
// recovers, and the new generation is persisted and listed.
func TestRetrainLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a simulator-backed model")
	}
	obs.Reset()
	const traceLen = 3000
	clk := newFakeClock()
	dir := t.TempDir()

	// The deliberately-bad serving model: fitted to the synthetic CPI
	// function but claiming the twolf benchmark, so shadow verification
	// against the real simulator disagrees and retraining rebuilds it
	// from the genuine twolf evaluator.
	bad, err := core.BuildRBFModel(core.FuncEvaluator(syntheticCPI), 8, core.Options{
		LHSCandidates: 8,
		RBF:           rbf.Options{PMinGrid: []int{1}, AlphaGrid: []float64{5}},
		Seed:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	bad.Name = "twolf"
	path := filepath.Join(dir, "twolf.json")
	saveModel(t, bad, path)

	s := New(Options{
		ModelDir: dir,
		Clock:    clk.now,
		// Shadow monitoring enabled but sampling essentially nothing:
		// the drift signal is injected at the accounting layer below,
		// keeping the trigger deterministic.
		ShadowFraction:    1e-12,
		ShadowWorkers:     1,
		ShadowErrPct:      5,
		ShadowMinSamples:  3,
		SearchTraceLen:    traceLen,
		Retrain:           true,
		RetrainSizes:      []int{12},
		RetrainTargetPct:  1e9, // first successful size wins
		RetrainAfter:      -1,  // immediate once drift fires
		RetrainPoll:       time.Hour,
		RetrainCooldown:   time.Hour,
		RetrainTestPoints: 4,
		RetrainWorkers:    2,
	})
	if names, err := s.Registry().LoadDir(""); err != nil || len(names) != 1 || names[0] != "twolf" {
		t.Fatalf("LoadDir = %v, %v", names, err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.retrain.stop()

	cfgs := []wireConfig{toWire(bad.Configs[0]), toWire(bad.Configs[1])}
	batch := func() [2]float64 {
		js, _ := json.Marshal(map[string]any{"model": "twolf", "configs": cfgs})
		resp, body := postJSON(t, ts.URL+"/v1/predict", string(js))
		if resp.StatusCode != 200 {
			t.Fatalf("predict = %d: %s", resp.StatusCode, body)
		}
		var pr predictResponse
		if err := json.Unmarshal(body, &pr); err != nil {
			t.Fatalf("%v in %s", err, body)
		}
		return [2]float64{pr.Predictions[0].Value, pr.Predictions[1].Value}
	}
	oldVals := batch()

	// Trip drift deterministically at the accounting layer.
	st := s.shadow.stats("twolf")
	for i := 0; i < 4; i++ {
		st.hist.Observe(40)
	}
	if resp, body := getBody(t, ts.URL+"/readyz"); resp.StatusCode != 503 || !strings.Contains(body, "model_drift") {
		t.Fatalf("drift injection: readyz %d %s, want 503 model_drift", resp.StatusCode, body)
	}

	// The storm: hammer the predict path while the controller retrains.
	// Every response must be wholly one generation — both values old or
	// both new — and once a goroutine sees the new generation it must
	// never see the old one again (a stale cache hit would).
	stop := make(chan struct{})
	results := make([][][2]float64, 4)
	var wg sync.WaitGroup
	for g := range results {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				results[g] = append(results[g], batch())
			}
		}(g)
	}

	s.retrain.poll() // the fake-clock drift trip starts the retrain
	s.retrain.wait()
	// Let the storm observe the swapped model before stopping it.
	for i := 0; i < 3; i++ {
		batch()
	}
	close(stop)
	wg.Wait()

	e, ok := s.Registry().Get("twolf")
	if !ok || e.Generation() != 2 || e.Model.SampleSize != 12 {
		t.Fatalf("after retrain: generation %d sample %d, want generation 2 at size 12", e.Generation(), e.Model.SampleSize)
	}
	if got := retrainCount("twolf", retrainOutcomeSuccess); got != 1 {
		t.Fatalf("serve.retrains{twolf,success} = %d, want 1", got)
	}
	newVals := batch()
	if newVals == oldVals {
		t.Fatal("retrained model predicts identically to the bad model; storm assertions would be vacuous")
	}
	for g, seq := range results {
		sawNew := false
		for i, v := range seq {
			switch v {
			case oldVals:
				if sawNew {
					t.Fatalf("goroutine %d response %d regressed to the old generation after seeing the new one (stale cache)", g, i)
				}
			case newVals:
				sawNew = true
			default:
				t.Fatalf("goroutine %d response %d = %v mixes generations (old %v, new %v)", g, i, v, oldVals, newVals)
			}
		}
	}

	// Drift cleared (the swapped generation starts a fresh window) and
	// readiness recovered.
	if resp, body := getBody(t, ts.URL+"/readyz"); resp.StatusCode != 200 {
		t.Fatalf("readyz after retrain = %d: %s", resp.StatusCode, body)
	}
	// The models listing carries the new generation.
	if _, body := getBody(t, ts.URL+"/v1/models"); !strings.Contains(body, `"generation": 2`) {
		t.Fatalf("models listing lacks generation 2: %s", body)
	}
	// The retrained model was persisted atomically over the old file.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := core.LoadModel(f)
	f.Close()
	if err != nil {
		t.Fatalf("persisted retrained model does not decode: %v", err)
	}
	if loaded.SampleSize != 12 {
		t.Fatalf("persisted sample size = %d, want 12", loaded.SampleSize)
	}
	if got, want := loaded.PredictConfig(bad.Configs[0]), e.Model.PredictConfig(bad.Configs[0]); got != want {
		t.Fatalf("persisted model predicts %v, serving model %v — not the same fit", got, want)
	}
	if leftovers, _ := filepath.Glob(filepath.Join(dir, ".retrain-*")); len(leftovers) != 0 {
		t.Fatalf("temp files left behind: %v", leftovers)
	}
}
