package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"predperf/internal/core"
	"predperf/internal/design"
	"predperf/internal/obs"
	"predperf/internal/rbf"
	"predperf/internal/search"
)

// syntheticCPI is a smooth non-linear ground truth, cheap enough that a
// model builds in milliseconds.
func syntheticCPI(c design.Config) float64 {
	l2 := float64(c.L2SizeKB)
	return 0.6 +
		1.5*math.Exp(-l2/1500)*(float64(c.L2Lat)/20) +
		0.5*float64(c.PipeDepth)/24 +
		12/float64(c.ROBSize) +
		0.2*float64(c.DL1Lat)/4*(64/float64(c.DL1SizeKB))*0.2
}

func buildTestModel(t *testing.T, name string) *core.Model {
	t.Helper()
	m, err := core.BuildRBFModel(core.FuncEvaluator(syntheticCPI), 40, core.Options{
		LHSCandidates: 16,
		RBF:           rbf.Options{PMinGrid: []int{1, 2}, AlphaGrid: []float64{5, 9}},
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Name = name
	return m
}

func saveModel(t *testing.T, m *core.Model, path string) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// TestEndToEnd is the acceptance path: build a small model, save it,
// serve it, and check the HTTP answers against the in-process ones.
func TestEndToEnd(t *testing.T) {
	obs.Reset()
	m := buildTestModel(t, "synthetic")
	dir := t.TempDir()
	path := filepath.Join(dir, "synthetic.json")
	saveModel(t, m, path)

	s := New(Options{ModelDir: dir})
	if names, err := s.Registry().LoadDir(""); err != nil || len(names) != 1 || names[0] != "synthetic" {
		t.Fatalf("LoadDir = %v, %v", names, err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// healthz.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
		Models int    `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Models != 1 {
		t.Fatalf("healthz = %+v", health)
	}

	// Batch predict over training configs (on-grid, so quantization is
	// the identity) must be bit-identical to in-process predictions.
	batch := m.Configs[:10]
	var reqBody struct {
		Model   string       `json:"model"`
		Configs []wireConfig `json:"configs"`
	}
	reqBody.Model = "synthetic"
	for _, c := range batch {
		reqBody.Configs = append(reqBody.Configs, toWire(c))
	}
	js, _ := json.Marshal(reqBody)
	resp2, body := postJSON(t, ts.URL+"/v1/predict", string(js))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("predict status %d: %s", resp2.StatusCode, body)
	}
	var pr predictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Predictions) != len(batch) {
		t.Fatalf("got %d predictions, want %d", len(pr.Predictions), len(batch))
	}
	for i, p := range pr.Predictions {
		want := m.PredictConfig(batch[i])
		if p.Value != want {
			t.Fatalf("prediction %d = %v, want bit-identical %v", i, p.Value, want)
		}
		if p.Config != toWire(batch[i]) {
			t.Fatalf("prediction %d echoed %+v, want %+v (on-grid input must not move)",
				i, p.Config, toWire(batch[i]))
		}
		if p.Clamped {
			t.Fatalf("prediction %d marked clamped for an on-grid input", i)
		}
	}

	// A second identical batch must be served from the cache.
	_, body = postJSON(t, ts.URL+"/v1/predict", string(js))
	var pr2 predictResponse
	if err := json.Unmarshal(body, &pr2); err != nil {
		t.Fatal(err)
	}
	for i, p := range pr2.Predictions {
		if !p.Cached {
			t.Fatalf("repeat prediction %d not served from cache", i)
		}
		if p.Value != pr.Predictions[i].Value {
			t.Fatalf("cached value diverged at %d", i)
		}
	}

	// Search must match an in-process search.Minimize run with the same
	// options and the same (model-backed) evaluator.
	resp3, body := postJSON(t, ts.URL+"/v1/search",
		`{"model":"synthetic","grid_levels":3,"shortlist":4,"verify":"model"}`)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("search status %d: %s", resp3.StatusCode, body)
	}
	var sr searchResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	want, err := search.Minimize(m, modelEvaluator{m}, search.Options{
		Space: m.Space, GridLevels: 3, Shortlist: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sr.Best.Config != toWire(want.Best) {
		t.Fatalf("search best %+v, want %+v", sr.Best.Config, toWire(want.Best))
	}
	if sr.Best.Actual != want.BestValue || sr.Best.Predicted != m.PredictConfig(want.Best) {
		t.Fatalf("search best values (%v, %v), want (%v, %v)",
			sr.Best.Predicted, sr.Best.Actual, m.PredictConfig(want.Best), want.BestValue)
	}
	if sr.Evaluated != want.Evaluated || sr.Verified != want.Verified || sr.VerifiedBy != "model" {
		t.Fatalf("search accounting %+v vs %+v", sr, want)
	}

	// metricz must reflect the traffic above.
	resp4, err := http.Get(ts.URL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := obs.ReadReport(resp4.Body)
	resp4.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Counters["serve.predicts"] < 2 {
		t.Fatalf("serve.predicts = %d, want >= 2", rep.Counters["serve.predicts"])
	}
	if rep.Counters["serve.batch_points"] < int64(2*len(batch)) {
		t.Fatalf("serve.batch_points = %d, want >= %d", rep.Counters["serve.batch_points"], 2*len(batch))
	}
	if rep.Counters["serve.cache_hits"] < int64(len(batch)) {
		t.Fatalf("serve.cache_hits = %d, want >= %d", rep.Counters["serve.cache_hits"], len(batch))
	}
	if rep.Counters["serve.searches"] != 1 {
		t.Fatalf("serve.searches = %d, want 1", rep.Counters["serve.searches"])
	}
	if rep.Counters["serve.model_loads"] != 1 {
		t.Fatalf("serve.model_loads = %d, want 1", rep.Counters["serve.model_loads"])
	}
}

// TestPredictStorm hammers /v1/predict from many goroutines with
// overlapping configurations; under -race this proves the registry,
// cache, and par fan-out compose race-free.
func TestPredictStorm(t *testing.T) {
	m := buildTestModel(t, "storm")
	s := New(Options{CacheSize: 64, Workers: 4})
	if err := s.Registry().Add("storm", m, ""); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	want := make([]float64, len(m.Configs))
	for i, c := range m.Configs {
		want[i] = m.PredictConfig(c)
	}
	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 10; rep++ {
				var req struct {
					Model   string       `json:"model"`
					Configs []wireConfig `json:"configs"`
				}
				req.Model = "storm"
				// Overlapping slices so goroutines contend on cache keys.
				lo := (g + rep) % (len(m.Configs) - 8)
				for _, c := range m.Configs[lo : lo+8] {
					req.Configs = append(req.Configs, toWire(c))
				}
				js, _ := json.Marshal(req)
				resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(js))
				if err != nil {
					errs <- err
					return
				}
				var pr predictResponse
				err = json.NewDecoder(resp.Body).Decode(&pr)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				for i, p := range pr.Predictions {
					if p.Value != want[lo+i] {
						errs <- fmt.Errorf("goroutine %d: value %v, want %v", g, p.Value, want[lo+i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestPredictClampsOutOfRange(t *testing.T) {
	m := buildTestModel(t, "clamp")
	s := New(Options{})
	if err := s.Registry().Add("clamp", m, ""); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// ROB far beyond the space's High=128 must clamp, and the served
	// value must equal predicting the echoed quantized machine.
	_, body := postJSON(t, ts.URL+"/v1/predict",
		`{"model":"clamp","config":{"depth":12,"rob":100000,"iq":48,"lsq":48,"l2kb":2048,"l2lat":10,"il1kb":32,"dl1kb":32,"dl1lat":2}}`)
	var pr predictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatalf("%v in %s", err, body)
	}
	if len(pr.Predictions) != 1 {
		t.Fatalf("got %d predictions", len(pr.Predictions))
	}
	p := pr.Predictions[0]
	if !p.Clamped {
		t.Fatal("out-of-range config not marked clamped")
	}
	if p.Config.ROB > 128 {
		t.Fatalf("echoed ROB %d not clamped into the space", p.Config.ROB)
	}
	if want := m.PredictConfig(p.Config.config()); p.Value != want {
		t.Fatalf("value %v, want %v (prediction of the echoed machine)", p.Value, want)
	}
}

func TestHotLoadAndList(t *testing.T) {
	m := buildTestModel(t, "hot")
	dir := t.TempDir()
	path := filepath.Join(dir, "hot.json")
	saveModel(t, m, path)

	s := New(Options{ModelDir: dir})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Empty registry: predict is a structured 404.
	resp, body := postJSON(t, ts.URL+"/v1/predict", `{"model":"hot","config":{"depth":12,"rob":96,"iq":48,"lsq":48,"l2kb":2048,"l2lat":10,"il1kb":32,"dl1kb":32,"dl1lat":2}}`)
	if resp.StatusCode != http.StatusNotFound || !strings.Contains(string(body), "unknown_model") {
		t.Fatalf("want structured 404, got %d: %s", resp.StatusCode, body)
	}

	// Hot-load by relative path, then serve.
	resp, body = postJSON(t, ts.URL+"/v1/models/load", `{"path":"hot.json"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("load status %d: %s", resp.StatusCode, body)
	}
	var lr struct {
		Loaded []string  `json:"loaded"`
		Model  modelInfo `json:"model"`
	}
	if err := json.Unmarshal(body, &lr); err != nil {
		t.Fatal(err)
	}
	if len(lr.Loaded) != 1 || lr.Loaded[0] != "hot" || lr.Model.SampleSize != 40 {
		t.Fatalf("load reply %+v", lr)
	}

	resp2, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Models []modelInfo `json:"models"`
	}
	err = json.NewDecoder(resp2.Body).Decode(&list)
	resp2.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Models) != 1 || list.Models[0].Name != "hot" || list.Models[0].Benchmark != "hot" {
		t.Fatalf("models listing %+v", list)
	}

	resp, _ = postJSON(t, ts.URL+"/v1/predict", `{"model":"hot","config":{"depth":12,"rob":96,"iq":48,"lsq":48,"l2kb":2048,"l2lat":10,"il1kb":32,"dl1kb":32,"dl1lat":2}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict after hot-load: %d", resp.StatusCode)
	}

	// Loads are confined to the model directory: absolute paths and
	// paths that escape after cleaning are refused without touching the
	// filesystem; a genuinely missing relative file is a load failure.
	for _, p := range []string{"/etc/passwd", "../hot.json", "a/../../hot.json"} {
		resp, body = postJSON(t, ts.URL+"/v1/models/load", `{"path":"`+p+`"}`)
		if resp.StatusCode != http.StatusForbidden || !strings.Contains(string(body), "forbidden_path") {
			t.Errorf("load %q: status %d body %s, want 403 forbidden_path", p, resp.StatusCode, body)
		}
	}
	resp, body = postJSON(t, ts.URL+"/v1/models/load", `{"dir":".."}`)
	if resp.StatusCode != http.StatusForbidden || !strings.Contains(string(body), "forbidden_path") {
		t.Errorf("load dir ..: status %d body %s, want 403 forbidden_path", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/models/load", `{"path":"not-here.json"}`)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "load_failed") {
		t.Errorf("load missing file: status %d body %s, want 400 load_failed", resp.StatusCode, body)
	}

	// {"dir":"."} reloads the model directory itself.
	resp, body = postJSON(t, ts.URL+"/v1/models/load", `{"dir":"."}`)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "hot") {
		t.Errorf("reload dir .: status %d body %s", resp.StatusCode, body)
	}
}

// TestHotReloadInvalidatesCache replaces a model under a live registry
// name and checks the prediction cache cannot serve values computed by
// the replaced model: the first predict after the reload is a cache
// miss and bit-identical to the new model.
func TestHotReloadInvalidatesCache(t *testing.T) {
	m1 := buildTestModel(t, "reload")
	// A second model over a shifted ground truth, so its predictions
	// provably differ from m1's.
	m2, err := core.BuildRBFModel(core.FuncEvaluator(func(c design.Config) float64 {
		return syntheticCPI(c) + 1
	}), 40, core.Options{
		LHSCandidates: 16,
		RBF:           rbf.Options{PMinGrid: []int{1, 2}, AlphaGrid: []float64{5, 9}},
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	m2.Name = "reload"

	s := New(Options{})
	if err := s.Registry().Add("reload", m1, ""); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cfg := toWire(m1.Configs[0])
	js, _ := json.Marshal(map[string]any{"model": "reload", "config": cfg})
	predict := func() prediction {
		t.Helper()
		_, body := postJSON(t, ts.URL+"/v1/predict", string(js))
		var pr predictResponse
		if err := json.Unmarshal(body, &pr); err != nil {
			t.Fatalf("%v in %s", err, body)
		}
		if len(pr.Predictions) != 1 {
			t.Fatalf("got %d predictions", len(pr.Predictions))
		}
		return pr.Predictions[0]
	}

	before := predict()
	if before.Value != m1.PredictConfig(m1.Configs[0]) {
		t.Fatalf("pre-reload value %v, want %v", before.Value, m1.PredictConfig(m1.Configs[0]))
	}
	if !predict().Cached {
		t.Fatal("repeat predict not served from cache")
	}

	if err := s.Registry().Add("reload", m2, ""); err != nil {
		t.Fatal(err)
	}
	after := predict()
	if after.Cached {
		t.Fatal("first predict after hot-reload served from the stale cache")
	}
	if want := m2.PredictConfig(m1.Configs[0]); after.Value != want {
		t.Fatalf("post-reload value %v, want new model's %v (stale was %v)", after.Value, want, before.Value)
	}
	if after.Value == before.Value {
		t.Fatal("test models predict identically; shifted ground truth did not shift the fit")
	}
}

// TestAddRejectsUndecodableSpace: a model whose persisted space lacks a
// paper parameter must fail registration with a structured error, not
// panic inside the first /v1/predict.
func TestAddRejectsUndecodableSpace(t *testing.T) {
	m := buildTestModel(t, "bad")
	m.Space = &design.Space{Params: m.Space.Params[:len(m.Space.Params)-1]} // drop dl1_lat
	r := NewRegistry("")
	if err := r.Add("bad", m, ""); err == nil || !strings.Contains(err.Error(), design.DL1Lat) {
		t.Fatalf("Add = %v, want error naming the missing parameter %q", err, design.DL1Lat)
	}

	// The same model arriving through the hot-load path is rejected too.
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	saveModel(t, m, path)
	r2 := NewRegistry(dir)
	if _, err := r2.LoadFile("bad.json", ""); err == nil {
		t.Fatal("LoadFile registered a model with an undecodable space")
	}
	if r2.Len() != 0 {
		t.Fatalf("registry holds %d models after a rejected load", r2.Len())
	}
}

// TestLoadDirAllOrNothing: one bad file in a directory load leaves the
// registry exactly as it was, so the client never observes a partially
// applied load after an error response.
func TestLoadDirAllOrNothing(t *testing.T) {
	dir := t.TempDir()
	saveModel(t, buildTestModel(t, "good"), filepath.Join(dir, "good.json"))
	// Sorts after good.json, so staging is what protects the registry.
	if err := os.WriteFile(filepath.Join(dir, "zzz-bad.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := NewRegistry(dir)
	names, err := r.LoadDir("")
	if err == nil {
		t.Fatalf("LoadDir succeeded over a corrupt file: %v", names)
	}
	if !strings.Contains(err.Error(), "no models were registered") {
		t.Fatalf("LoadDir error %q does not state the registry is untouched", err)
	}
	if r.Len() != 0 {
		t.Fatalf("registry holds %d models after a failed directory load", r.Len())
	}
}

// TestTimeoutResponseIsJSON: the one error shape http.TimeoutHandler
// writes itself must still reach clients as application/json.
func TestTimeoutResponseIsJSON(t *testing.T) {
	s := New(Options{Timeout: 20 * time.Millisecond})
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done() // TimeoutHandler cancels this at the deadline
	})
	ts := httptest.NewServer(s.withTimeout(slow))
	defer ts.Close()

	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type %q, want application/json", ct)
	}
	var body struct {
		Error apiError `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Error.Code != "timeout" {
		t.Fatalf("error code %q, want %q", body.Error.Code, "timeout")
	}
}

func TestStructuredErrors(t *testing.T) {
	m := buildTestModel(t, "errs")
	s := New(Options{MaxBodyBytes: 512, MaxBatch: 4})
	if err := s.Registry().Add("errs", m, ""); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	okCfg := `{"depth":12,"rob":96,"iq":48,"lsq":48,"l2kb":2048,"l2lat":10,"il1kb":32,"dl1kb":32,"dl1lat":2}`
	cases := []struct {
		name, url, body string
		status          int
		code            string
	}{
		{"bad json", "/v1/predict", `{`, http.StatusBadRequest, "bad_json"},
		{"no model", "/v1/predict", `{"config":` + okCfg + `}`, http.StatusBadRequest, "bad_request"},
		{"unknown model", "/v1/predict", `{"model":"nope","config":` + okCfg + `}`, http.StatusNotFound, "unknown_model"},
		{"no config", "/v1/predict", `{"model":"errs"}`, http.StatusBadRequest, "bad_request"},
		{"both config kinds", "/v1/predict", `{"model":"errs","config":` + okCfg + `,"configs":[` + okCfg + `]}`, http.StatusBadRequest, "bad_request"},
		{"invalid config", "/v1/predict", `{"model":"errs","config":{"depth":12,"rob":0,"iq":48,"lsq":48,"l2kb":2048,"l2lat":10,"il1kb":32,"dl1kb":32,"dl1lat":2}}`, http.StatusBadRequest, "invalid_config"},
		{"batch too large", "/v1/predict", `{"model":"errs","configs":[` + okCfg + `,` + okCfg + `,` + okCfg + `,` + okCfg + `,` + okCfg + `]}`, http.StatusRequestEntityTooLarge, "batch_too_large"},
		{"search unknown model", "/v1/search", `{"model":"nope"}`, http.StatusNotFound, "unknown_model"},
		{"search bad verify", "/v1/search", `{"model":"errs","verify":"psychic"}`, http.StatusBadRequest, "bad_request"},
		{"search needs sim", "/v1/search", `{"model":"errs","verify":"sim"}`, http.StatusBadRequest, "no_simulator"},
		{"load without path", "/v1/models/load", `{}`, http.StatusBadRequest, "bad_request"},
		// This server has no -models directory, so hot-loading anything
		// is refused outright.
		{"load without model dir", "/v1/models/load", `{"path":"here.json"}`, http.StatusForbidden, "forbidden_path"},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+tc.url, tc.body)
		if resp.StatusCode != tc.status || !strings.Contains(string(body), tc.code) {
			t.Errorf("%s: status %d body %s, want %d with code %q", tc.name, resp.StatusCode, body, tc.status, tc.code)
		}
	}

	// Oversize body → 413. The batch above stayed under 512 bytes; this
	// one exceeds it.
	big := `{"model":"errs","configs":[` + okCfg
	for len(big) < 600 {
		big += `,` + okCfg
	}
	big += `]}`
	resp, body := postJSON(t, ts.URL+"/v1/predict", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge || !strings.Contains(string(body), "body_too_large") {
		t.Errorf("oversize body: status %d body %s", resp.StatusCode, body)
	}

	// Wrong method → 405.
	resp2, err := http.Get(ts.URL + "/v1/predict")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/predict = %d, want 405", resp2.StatusCode)
	}
}

// TestGracefulShutdown serves on a real listener and checks that
// Shutdown drains cleanly: Serve returns nil and the port closes.
func TestGracefulShutdown(t *testing.T) {
	m := buildTestModel(t, "bye")
	s := New(Options{})
	if err := s.Registry().Add("bye", m, ""); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(l) }()

	url := "http://" + l.Addr().String()
	if resp, err := http.Get(url + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	if err := s.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v after clean shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after shutdown")
	}
}

func TestLRUCache(t *testing.T) {
	c := newLRU(2)
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("a = %v,%v", v, ok)
	}
	c.Put("c", 3) // evicts b (a was refreshed by the Get)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted despite being most recently used")
	}
	if c.Len() != 2 {
		t.Fatalf("len %d, want 2", c.Len())
	}
	c.Put("a", 10) // refresh value in place
	if v, _ := c.Get("a"); v != 10 {
		t.Fatalf("refreshed a = %v", v)
	}

	off := newLRU(-1)
	off.Put("x", 1)
	if _, ok := off.Get("x"); ok || off.Len() != 0 {
		t.Fatal("disabled cache stored a value")
	}
}

func TestRegistryNaming(t *testing.T) {
	dir := t.TempDir()
	// A model with no persisted name falls back to the file base name.
	m := buildTestModel(t, "")
	path := filepath.Join(dir, "fallback.json")
	saveModel(t, m, path)
	r := NewRegistry(dir)
	name, err := r.LoadFile("fallback.json", "")
	if err != nil {
		t.Fatal(err)
	}
	if name != "fallback" {
		t.Fatalf("registry name %q, want file base %q", name, "fallback")
	}
	// An explicit name wins over everything.
	name, err = r.LoadFile("fallback.json", "forced")
	if err != nil {
		t.Fatal(err)
	}
	if name != "forced" {
		t.Fatalf("registry name %q, want %q", name, "forced")
	}
	if got := r.Names(); len(got) != 2 || got[0] != "fallback" || got[1] != "forced" {
		t.Fatalf("names %v", got)
	}
	if err := r.Add("", m, ""); err == nil {
		t.Fatal("Add accepted an empty name")
	}
	if err := r.Add("nil", nil, ""); err == nil {
		t.Fatal("Add accepted a nil model")
	}
}
