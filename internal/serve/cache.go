package serve

import (
	"container/list"
	"sync"
)

// lru is the bounded prediction cache: a mutex-guarded hash map over an
// intrusive recency list. Keys are (model name, quantized config key)
// strings, so two requests that clamp to the same machine share one
// slot regardless of how their raw inputs differed. A single mutex is
// enough here: the critical section is a map lookup plus a list splice,
// orders of magnitude cheaper than the RBF evaluation it saves, and the
// predict path only holds it per-point, never across a batch.
type lru struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

// lruEntry is one cached prediction.
type lruEntry struct {
	key string
	val float64
}

// newLRU builds a cache bounded at max entries; max < 0 disables the
// cache (every Get misses, Put is a no-op).
func newLRU(max int) *lru {
	if max < 0 {
		return &lru{}
	}
	return &lru{max: max, ll: list.New(), items: make(map[string]*list.Element, max)}
}

// enabled reports whether the cache stores anything.
func (c *lru) enabled() bool { return c.max > 0 }

// Get returns the cached prediction for key and marks it most recently
// used.
func (c *lru) Get(key string) (float64, bool) {
	if !c.enabled() {
		return 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return 0, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Put inserts or refreshes a prediction, evicting the least recently
// used entry when the cache is full.
func (c *lru) Put(key string, val float64) {
	if !c.enabled() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// Len reports the number of cached predictions.
func (c *lru) Len() int {
	if !c.enabled() {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Cap reports the cache's entry capacity (0 when disabled).
func (c *lru) Cap() int { return c.max }
