package serve

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync"

	"predperf/internal/design"
	"predperf/internal/obs"
)

// Shadow drift monitoring: the paper validates the RBF surrogate against
// a simulator-generated test set once, at build time (§3.4); a serving
// process needs that check to keep running. The monitor deterministically
// samples a fraction of served predictions — by hashing the (model,
// quantized config) pair, so the decision is a pure function of the
// served point and replayable offline — and re-evaluates each sampled
// point on the cycle-level simulator in a bounded background worker
// pool. The paper's error metric, 100·|pred−actual|/actual, lands in a
// per-model histogram with a sliding-window view; a model whose windowed
// mean error exceeds the configured threshold trips the drift alert and
// flips /readyz.
//
// The monitor never perturbs serving: sampling happens after the
// response value is computed, the enqueue is non-blocking (a full queue
// drops the sample and counts it), and the simulator cache keyed on the
// config means re-sampled hot points cost one simulation total.

var (
	cShadowSamples = obs.NewCounter("serve.shadow_samples")
	cShadowDropped = obs.NewCounter("serve.shadow_dropped")
	cShadowSimFail = obs.NewCounter("serve.shadow_sim_failures")
	// hShadowErr buckets the percent prediction error: 0.01% up to
	// ~84000%, factor 2 — fine resolution around the paper's 2–3% mean.
	hShadowErr = obs.NewHistogramVec("serve.shadow_error_pct", shadowErrBuckets, "model")
)

var shadowErrBuckets = obs.ExponentialBuckets(0.01, 2, 23)

// shadowJob is one sampled prediction awaiting simulator verification.
type shadowJob struct {
	entry     *Entry
	cfg       design.Config // quantized, as served
	predicted float64
}

// shadowModelStats is the per-model accounting: the cumulative error
// histogram child and its sliding-window view.
type shadowModelStats struct {
	hist *obs.Histogram
	win  *obs.WindowedHistogram
}

// shadowMonitor owns the sampling decision, the bounded queue, the
// worker pool, and the per-model drift state.
type shadowMonitor struct {
	frac       float64
	limit      uint64 // sampling threshold in FNV-64a hash space
	traceLen   int
	errPct     float64 // windowed mean error (percent) above which a model drifts
	minSamples int64   // windowed samples required before drift can fire
	clock      obs.Clock

	queue    chan shadowJob
	jobs     sync.WaitGroup
	stopOnce sync.Once

	// mu guards the per-model map AND the closed flag. offer holds the
	// read lock across its queue send while stop flips closed under the
	// write lock before closing the queue, so a straggler handler that
	// outlives the HTTP drain deadline can never send on a closed
	// channel — its sample is dropped and counted instead.
	mu     sync.RWMutex
	closed bool
	models map[string]*shadowModelStats
	order  []string
}

// shadowLimit converts a sampling fraction into the inclusive FNV-64a
// threshold. The product frac·2⁶⁴ is clamped below 2⁶⁴ before the
// float→uint64 conversion: converting a float64 at or above 2⁶⁴ is
// implementation-defined in Go (amd64 saturates differently from
// arm64), so the clamp keeps the threshold portable for fractions just
// below 1. float64(math.MaxUint64) rounds to exactly 2⁶⁴.
func shadowLimit(frac float64) uint64 {
	if frac >= 1 {
		return math.MaxUint64
	}
	if frac <= 0 {
		return 0
	}
	f := frac * float64(math.MaxUint64)
	if f >= float64(math.MaxUint64) {
		return math.MaxUint64
	}
	return uint64(f)
}

// newShadowMonitor builds (and starts) the monitor. A fraction <= 0
// returns a disabled monitor: every method is a cheap no-op.
func newShadowMonitor(opt Options, clock obs.Clock) *shadowMonitor {
	m := &shadowMonitor{
		frac:       opt.ShadowFraction,
		traceLen:   opt.SearchTraceLen,
		errPct:     opt.ShadowErrPct,
		minSamples: int64(opt.ShadowMinSamples),
		clock:      clock,
		models:     map[string]*shadowModelStats{},
	}
	if opt.ShadowFraction <= 0 {
		return m
	}
	m.limit = shadowLimit(opt.ShadowFraction)
	m.queue = make(chan shadowJob, opt.ShadowQueue)
	for i := 0; i < opt.ShadowWorkers; i++ {
		go m.run()
	}
	return m
}

func (m *shadowMonitor) enabled() bool { return m != nil && m.queue != nil }

// sampled reports whether the (model, quantized config) pair falls
// inside the shadow fraction. FNV-64a over the same key material the
// prediction cache quantizes on, so the decision is deterministic,
// independent of traffic order, and replayable.
func (m *shadowMonitor) sampled(model string, q design.Config) bool {
	if !m.enabled() {
		return false
	}
	if m.frac >= 1 {
		return true
	}
	h := fnv.New64a()
	h.Write([]byte(model))
	h.Write([]byte{0})
	h.Write([]byte(q.Key()))
	return h.Sum64() <= m.limit
}

// offer enqueues a served prediction for shadow verification if it is
// sampled. Never blocks: a full queue drops the sample and increments
// serve.shadow_dropped, so a slow simulator can never back-pressure the
// predict path. Safe to call concurrently with (and after) stop: a
// straggler handler still in flight past the shutdown drain deadline
// has its sample dropped and counted instead of panicking on a send to
// the closed queue.
func (m *shadowMonitor) offer(e *Entry, q design.Config, predicted float64) {
	if !m.sampled(e.Name, q) {
		return
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		cShadowDropped.Inc()
		return
	}
	m.jobs.Add(1)
	select {
	case m.queue <- shadowJob{entry: e, cfg: q, predicted: predicted}:
	default:
		m.jobs.Done()
		cShadowDropped.Inc()
	}
}

func (m *shadowMonitor) run() {
	for job := range m.queue {
		m.process(job)
		m.jobs.Done()
	}
}

// process runs the cycle-level simulator on one sampled point — the
// bit-identical evaluator path the model was validated against at build
// time — and records the percent error.
func (m *shadowMonitor) process(job shadowJob) {
	sim, err := job.entry.simEvaluator(m.traceLen)
	if err != nil {
		cShadowSimFail.Inc()
		return
	}
	actual := sim.Eval(job.cfg)
	if actual == 0 || math.IsNaN(actual) {
		cShadowSimFail.Inc()
		return
	}
	errPct := 100 * math.Abs(job.predicted-actual) / math.Abs(actual)
	m.stats(job.entry.Name).hist.Observe(errPct)
	cShadowSamples.Inc()
}

// stats returns (creating on first use) the per-model accounting.
func (m *shadowMonitor) stats(model string) *shadowModelStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.models[model]
	if !ok {
		st = &shadowModelStats{
			hist: hShadowErr.With(model),
			win:  obs.WindowHistogramIn(hShadowErr, m.clock, model),
		}
		m.models[model] = st
		m.order = append(m.order, model)
	}
	return st
}

// modelStats returns the per-model accounting if any sample for the
// model has been processed.
func (m *shadowMonitor) modelStats(model string) (*shadowModelStats, bool) {
	if m == nil {
		return nil, false
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	st, ok := m.models[model]
	return st, ok
}

// resetModel forgets the model's windowed drift history: the retrain
// controller calls it after hot-swapping a retrained model so samples
// of the replaced generation stop counting against the new one (and
// drift clears immediately instead of after the slow window drains).
// The cumulative error histogram is untouched.
func (m *shadowMonitor) resetModel(model string) {
	if st, ok := m.modelStats(model); ok {
		st.win.Rebase()
	}
}

// driftState is one model's drift evaluation over the slow (1h) window.
type driftState struct {
	Model   string  `json:"model"`
	Samples int64   `json:"samples"`
	MeanPct float64 `json:"mean_error_pct"`
	Firing  bool    `json:"firing"`
}

// driftStates evaluates every model the monitor has samples for, sorted
// by model name. A model fires when its windowed mean error exceeds the
// threshold with at least minSamples observations in the window.
func (m *shadowMonitor) driftStates() []driftState {
	if !m.enabled() {
		return nil
	}
	m.mu.RLock()
	names := make([]string, len(m.order))
	copy(names, m.order)
	m.mu.RUnlock()
	sort.Strings(names)
	out := make([]driftState, 0, len(names))
	for _, name := range names {
		st, _ := m.modelStats(name)
		if st == nil {
			continue
		}
		d := driftState{
			Model:   name,
			Samples: st.win.CountOver(obs.DefSlowWindow),
			MeanPct: st.win.MeanOver(obs.DefSlowWindow),
		}
		d.Firing = m.errPct > 0 && d.Samples >= m.minSamples && d.MeanPct > m.errPct
		out = append(out, d)
	}
	return out
}

func (d driftState) reason() string {
	return fmt.Sprintf("model %q: mean shadow error %.2f%% over %s (%d samples)",
		d.Model, d.MeanPct, obs.WindowLabel(obs.DefSlowWindow), d.Samples)
}

// drain blocks until every offered sample has been processed or
// dropped — test and shutdown hook, not a serving-path call.
func (m *shadowMonitor) drain() {
	if m.enabled() {
		m.jobs.Wait()
	}
}

// stop closes the queue; workers exit after finishing in-flight jobs.
// Offers racing (or arriving after) stop are safe: the closed flag is
// flipped under the write lock before the queue closes, so concurrent
// offers either complete their send first or observe closed and drop.
func (m *shadowMonitor) stop() {
	if m.enabled() {
		m.stopOnce.Do(func() {
			m.mu.Lock()
			m.closed = true
			m.mu.Unlock()
			close(m.queue)
		})
	}
}
