package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"predperf/internal/cluster"
	"predperf/internal/core"
	"predperf/internal/design"
	"predperf/internal/obs"
	"predperf/internal/par"
	"predperf/internal/search"
)

// cModelPredictions counts scored configurations per model, so /metricz
// says which models actually take traffic.
var cModelPredictions = obs.NewCounterVec("serve.model_predictions", "model")

// wireConfig is the JSON shape of a processor configuration, using the
// same short field names as the predperf CLI's -predict flag.
type wireConfig struct {
	Depth  int `json:"depth"`
	ROB    int `json:"rob"`
	IQ     int `json:"iq"`
	LSQ    int `json:"lsq"`
	L2KB   int `json:"l2kb"`
	L2Lat  int `json:"l2lat"`
	IL1KB  int `json:"il1kb"`
	DL1KB  int `json:"dl1kb"`
	DL1Lat int `json:"dl1lat"`
}

func (w wireConfig) config() design.Config {
	return design.Config{
		PipeDepth: w.Depth, ROBSize: w.ROB, IQSize: w.IQ, LSQSize: w.LSQ,
		L2SizeKB: w.L2KB, L2Lat: w.L2Lat, IL1SizeKB: w.IL1KB, DL1SizeKB: w.DL1KB, DL1Lat: w.DL1Lat,
	}
}

func toWire(c design.Config) wireConfig {
	return wireConfig{
		Depth: c.PipeDepth, ROB: c.ROBSize, IQ: c.IQSize, LSQ: c.LSQSize,
		L2KB: c.L2SizeKB, L2Lat: c.L2Lat, IL1KB: c.IL1SizeKB, DL1KB: c.DL1SizeKB, DL1Lat: c.DL1Lat,
	}
}

// validate rejects configurations the design space cannot normalize:
// every field must be positive (IQ/LSQ sizes are re-expressed as
// fractions of ROB, so a zero ROB would divide by zero).
func (w wireConfig) validate() error {
	fields := []struct {
		name string
		v    int
	}{
		{"depth", w.Depth}, {"rob", w.ROB}, {"iq", w.IQ}, {"lsq", w.LSQ},
		{"l2kb", w.L2KB}, {"l2lat", w.L2Lat}, {"il1kb", w.IL1KB}, {"dl1kb", w.DL1KB}, {"dl1lat", w.DL1Lat},
	}
	for _, f := range fields {
		if f.v <= 0 {
			return fmt.Errorf("field %q must be positive, got %d", f.name, f.v)
		}
	}
	return nil
}

// apiError is the structured error body: {"error":{"code","message"}}.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, code, format string, args ...any) {
	cErrors.Inc()
	writeJSON(w, status, map[string]apiError{
		"error": {Code: code, Message: fmt.Sprintf(format, args...)},
	})
}

// readJSON decodes a size-capped request body, mapping oversize and
// malformed bodies to structured errors. It returns false after writing
// the error response.
func (s *Server) readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, s.opt.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeErr(w, http.StatusRequestEntityTooLarge, "body_too_large",
				"request body exceeds the %d-byte limit", tooLarge.Limit)
			return false
		}
		writeErr(w, http.StatusBadRequest, "bad_json", "decoding request: %v", err)
		return false
	}
	return true
}

func requireMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method != method {
		w.Header().Set("Allow", method)
		writeErr(w, http.StatusMethodNotAllowed, "method_not_allowed",
			"%s requires %s, got %s", r.URL.Path, method, r.Method)
		return false
	}
	return true
}

// ---- /healthz ----

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"models": s.reg.Len(),
		"build":  Build(),
	})
}

// ---- /metricz ----

// handleMetricz reports the process's metrics. The default is the
// internal/obs JSON snapshot (counters, gauges, histogram summaries,
// span aggregates); ?format=prom switches to Prometheus text exposition
// so any standard scraper can collect the same series.
func (s *Server) handleMetricz(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "prom", "prometheus":
		w.Header().Set("Content-Type", obs.PromContentType)
		obs.WritePrometheus(w)
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		obs.Snapshot().Write(w)
	default:
		writeErr(w, http.StatusBadRequest, "bad_request",
			`unknown metrics format %q (want "json" or "prom")`, format)
	}
}

// ---- /v1/models ----

// modelInfo is one row of the GET /v1/models listing.
type modelInfo struct {
	Name       string  `json:"name"`
	Benchmark  string  `json:"benchmark,omitempty"`
	SampleSize int     `json:"sample_size"`
	Centers    int     `json:"centers"`
	AICc       float64 `json:"aicc"`
	Path       string  `json:"path,omitempty"`
	// Generation distinguishes successive holders of the name: it bumps
	// on every hot load and every retrain hot-swap, so an operator (or
	// the CI smoke test) can tell a retrained model went live.
	Generation uint64 `json:"generation"`
}

func entryInfo(e *Entry) modelInfo {
	return modelInfo{
		Name:       e.Name,
		Benchmark:  e.Model.Name,
		SampleSize: e.Model.SampleSize,
		Centers:    e.Model.Fit.NumCenters(),
		AICc:       e.Model.Fit.AICc,
		Path:       e.Path,
		Generation: e.Generation(),
	}
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	entries := s.reg.Entries()
	infos := make([]modelInfo, len(entries))
	for i, e := range entries {
		infos[i] = entryInfo(e)
	}
	writeJSON(w, http.StatusOK, map[string]any{"models": infos})
}

// ---- /v1/models/load ----

type loadRequest struct {
	// Path of a model file saved by predperf -save, relative to the
	// server's -models directory. Absolute paths and paths escaping the
	// directory are rejected (forbidden_path), as is any load when the
	// server has no model directory.
	Path string `json:"path"`
	// Name optionally overrides the registry name (default: the model's
	// persisted benchmark name, then the file base name).
	Name string `json:"name"`
	// Dir loads every *.json in a subdirectory of the model directory
	// instead of one file ("." reloads the model directory itself).
	// Confined like Path.
	Dir string `json:"dir"`
}

func (s *Server) handleModelsLoad(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req loadRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	switch {
	case req.Dir != "":
		rel, err := s.reg.ClientPath(req.Dir)
		if err != nil {
			writeErr(w, http.StatusForbidden, "forbidden_path", "%v", err)
			return
		}
		names, err := s.reg.LoadDir(s.reg.resolve(rel))
		if err != nil {
			writeErr(w, http.StatusBadRequest, "load_failed", "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"loaded": names})
	case req.Path != "":
		rel, err := s.reg.ClientPath(req.Path)
		if err != nil {
			writeErr(w, http.StatusForbidden, "forbidden_path", "%v", err)
			return
		}
		name, err := s.reg.LoadFile(rel, req.Name)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "load_failed", "%v", err)
			return
		}
		e, _ := s.reg.Get(name)
		writeJSON(w, http.StatusOK, map[string]any{"loaded": []string{name}, "model": entryInfo(e)})
	default:
		writeErr(w, http.StatusBadRequest, "bad_request", `"path" or "dir" is required`)
	}
}

// ---- /v1/predict ----

type predictRequest struct {
	Model string `json:"model"`
	// Config predicts one configuration; Configs a batch. Exactly one
	// of the two must be present.
	Config  *wireConfig  `json:"config,omitempty"`
	Configs []wireConfig `json:"configs,omitempty"`
}

// prediction is one scored configuration. Config echoes the machine
// actually scored: the input after clamping to the design space's
// ranges and quantizing to its discrete levels.
type prediction struct {
	Config  wireConfig `json:"config"`
	Value   float64    `json:"value"`
	Cached  bool       `json:"cached"`
	Clamped bool       `json:"clamped,omitempty"`
}

type predictResponse struct {
	Model       string       `json:"model"`
	Predictions []prediction `json:"predictions"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	_, end := obs.StartSpanCtx(r.Context(), "serve.predict")
	defer end()
	var req predictRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if req.Model == "" {
		writeErr(w, http.StatusBadRequest, "bad_request", `"model" is required`)
		return
	}
	entry, ok := s.reg.Get(req.Model)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown_model",
			"no model %q is loaded (GET /v1/models lists the registry)", req.Model)
		return
	}
	var batch []wireConfig
	switch {
	case req.Config != nil && len(req.Configs) > 0:
		writeErr(w, http.StatusBadRequest, "bad_request", `give "config" or "configs", not both`)
		return
	case req.Config != nil:
		batch = []wireConfig{*req.Config}
	case len(req.Configs) > 0:
		batch = req.Configs
	default:
		writeErr(w, http.StatusBadRequest, "bad_request", `"config" or "configs" is required`)
		return
	}
	if len(batch) > s.opt.MaxBatch {
		writeErr(w, http.StatusRequestEntityTooLarge, "batch_too_large",
			"batch of %d exceeds the %d-configuration limit", len(batch), s.opt.MaxBatch)
		return
	}
	for i, wc := range batch {
		if err := wc.validate(); err != nil {
			writeErr(w, http.StatusBadRequest, "invalid_config", "configs[%d]: %v", i, err)
			return
		}
	}
	cPredicts.Inc()
	cBatchPts.Add(int64(len(batch)))
	cModelPredictions.With(req.Model).Add(int64(len(batch)))
	var preds []prediction
	if len(batch) == 1 {
		// A single prediction never pays worker-pool dispatch: it goes
		// through the coalescer when one is running — concurrent
		// singles then share one vectorized evaluation — and straight
		// to predictOne otherwise. Both routes are bit-identical.
		var p prediction
		if s.coalesce.enabled() {
			var err error
			p, err = s.coalesce.predict(r.Context(), entry, batch[0].config())
			switch {
			case errors.Is(err, ErrCoalesceQueueFull):
				// The queue drains within a coalesce window plus one batch
				// evaluation; hint a retry after that, not a fixed second.
				w.Header().Set("Retry-After", cluster.RetryAfterSeconds(s.opt.CoalesceWindow))
				writeErr(w, http.StatusServiceUnavailable, "coalesce_queue_full",
					"the prediction admission queue is full; retry shortly")
				return
			case errors.Is(err, ErrCoalesceStopped):
				writeErr(w, http.StatusServiceUnavailable, "shutting_down",
					"the server is draining and no longer accepts predictions")
				return
			case err != nil: // the request's own context died while queued
				writeErr(w, http.StatusServiceUnavailable, "request_canceled",
					"request canceled while queued for coalescing: %v", err)
				return
			}
		} else {
			p = s.predictOne(entry, batch[0].config())
		}
		preds = []prediction{p}
	} else {
		// Explicit batches skip the coalescer: they already have batch
		// shape, so they go straight to the vectorized evaluator.
		cfgs := make([]design.Config, len(batch))
		for i, wc := range batch {
			cfgs[i] = wc.config()
		}
		preds = s.predictBatch(entry, cfgs)
	}
	writeJSON(w, http.StatusOK, predictResponse{Model: req.Model, Predictions: preds})
}

// cacheKey is the LRU key for one quantized configuration: the entry
// generation retires every cached value for a name when a hot-reload
// replaces its model (stale entries stop matching and age out).
func cacheKey(e *Entry, q design.Config) string {
	return e.Name + "\x00" + strconv.FormatUint(e.gen, 10) + "\x00" + q.Key()
}

// predictOne scores one configuration: clamp and quantize it through
// the model's design space (the same Decode∘Encode mapping used on the
// training sample), then serve from the LRU cache or evaluate the RBF
// network. The cache key is the quantized machine, so raw inputs that
// snap to the same design point share an entry. The entry generation in
// the key retires every cached value for a name when a hot-reload
// replaces its model; stale entries then age out of the LRU instead of
// being served.
func (s *Server) predictOne(e *Entry, cfg design.Config) prediction {
	m := e.Model
	q := m.Space.Decode(m.Space.Encode(cfg), m.SampleSize)
	p := prediction{Config: toWire(q), Clamped: q != cfg}
	key := cacheKey(e, q)
	if v, ok := s.cache.Get(key); ok {
		cCacheHits.Inc()
		p.Value, p.Cached = v, true
	} else {
		cCacheMiss.Inc()
		p.Value = m.PredictConfig(q)
		s.cache.Put(key, p.Value)
	}
	// Shadow monitoring happens after the value is final and never
	// touches p: the served response is byte-identical with sampling on
	// or off.
	s.shadow.offer(e, q, p.Value)
	return p
}

// predictBatchChunk is how many configurations one worker scores per
// vectorized call when a large batch is split across the pool.
const predictBatchChunk = 256

// predictBatch scores a batch of configurations with the compiled RBF
// evaluator: quantize every input, serve what the LRU already holds,
// then evaluate all cache misses in one blocked design-matrix pass
// (chunked across the worker pool when the miss set is large — fixed
// slots, so results are deterministic). Per-config semantics are
// identical to predictOne — same quantization, cache keys, generation
// handling, and shadow sampling — and the values are bit-identical to
// the scalar path, so the coalescer and explicit batches can share it.
func (s *Server) predictBatch(e *Entry, cfgs []design.Config) []prediction {
	m := e.Model
	preds := make([]prediction, len(cfgs))
	missIdx := make([]int, 0, len(cfgs))
	missXs := make([][]float64, 0, len(cfgs))
	quant := make([]design.Config, len(cfgs))
	for i, cfg := range cfgs {
		q := m.Space.Decode(m.Space.Encode(cfg), m.SampleSize)
		quant[i] = q
		preds[i] = prediction{Config: toWire(q), Clamped: q != cfg}
		if v, ok := s.cache.Get(cacheKey(e, q)); ok {
			cCacheHits.Inc()
			preds[i].Value, preds[i].Cached = v, true
			s.shadow.offer(e, q, v)
			continue
		}
		cCacheMiss.Inc()
		missIdx = append(missIdx, i)
		missXs = append(missXs, m.Space.Encode(q))
	}
	if len(missIdx) == 0 {
		return preds
	}
	vals := make([]float64, len(missXs))
	cm := m.Fit.Compiled()
	chunks := (len(missXs) + predictBatchChunk - 1) / predictBatchChunk
	par.For(s.opt.Workers, chunks, func(ci int) {
		lo := ci * predictBatchChunk
		hi := lo + predictBatchChunk
		if hi > len(missXs) {
			hi = len(missXs)
		}
		cm.PredictBatchTo(vals[lo:hi], missXs[lo:hi])
	})
	for a, i := range missIdx {
		q := quant[i]
		preds[i].Value = vals[a]
		s.cache.Put(cacheKey(e, q), vals[a])
		s.shadow.offer(e, q, vals[a])
	}
	return preds
}

// ---- /v1/search ----

type searchRequest struct {
	Model string `json:"model"`
	// GridLevels caps the per-parameter enumeration resolution
	// (default 4, the search package's default).
	GridLevels int `json:"grid_levels"`
	// Shortlist is how many best-predicted candidates are verified
	// (default 8).
	Shortlist int `json:"shortlist"`
	// Verify selects shortlist verification: "sim" demands the
	// cycle-level simulator (error if the model names no benchmark),
	// "model" skips simulation, "auto" (default) prefers the simulator
	// and falls back to the model.
	Verify string `json:"verify"`
}

type searchCandidate struct {
	Config    wireConfig `json:"config"`
	Predicted float64    `json:"predicted"`
	Actual    float64    `json:"actual"`
}

type searchResponse struct {
	Model      string            `json:"model"`
	Best       searchCandidate   `json:"best"`
	Evaluated  int               `json:"evaluated"`
	Verified   int               `json:"verified"`
	VerifiedBy string            `json:"verified_by"` // "simulator" or "model"
	Shortlist  []searchCandidate `json:"shortlist"`
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	ctx, end := obs.StartSpanCtx(r.Context(), "serve.search")
	defer end()
	var req searchRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if req.Model == "" {
		writeErr(w, http.StatusBadRequest, "bad_request", `"model" is required`)
		return
	}
	entry, ok := s.reg.Get(req.Model)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown_model",
			"no model %q is loaded (GET /v1/models lists the registry)", req.Model)
		return
	}
	var (
		ev         core.Evaluator
		verifiedBy string
	)
	switch req.Verify {
	case "", "auto":
		if sim, err := entry.simEvaluator(s.opt.SearchTraceLen); err == nil {
			ev, verifiedBy = sim, "simulator"
		} else {
			ev, verifiedBy = modelEvaluator{entry.Model}, "model"
		}
	case "sim":
		sim, err := entry.simEvaluator(s.opt.SearchTraceLen)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "no_simulator",
				"model %q cannot be simulator-verified: %v", req.Model, err)
			return
		}
		ev, verifiedBy = sim, "simulator"
	case "model":
		ev, verifiedBy = modelEvaluator{entry.Model}, "model"
	default:
		writeErr(w, http.StatusBadRequest, "bad_request",
			`"verify" must be "auto", "sim", or "model", got %q`, req.Verify)
		return
	}
	cSearches.Inc()
	// A pool-backed evaluator is re-bound to the request context so its
	// worker hops carry this request's trace (or its unsampled identity).
	if b, ok := ev.(interface {
		Bind(context.Context) core.Evaluator
	}); ok {
		ev = b.Bind(ctx)
	}
	res, err := search.Minimize(entry.Model, ev, search.Options{
		Space:      entry.Model.Space,
		GridLevels: req.GridLevels,
		Shortlist:  req.Shortlist,
	})
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "search_failed", "%v", err)
		return
	}
	resp := searchResponse{
		Model:      req.Model,
		Evaluated:  res.Evaluated,
		Verified:   res.Verified,
		VerifiedBy: verifiedBy,
	}
	for _, c := range res.Shortlist {
		resp.Shortlist = append(resp.Shortlist, searchCandidate{
			Config: toWire(c.Config), Predicted: c.Predicted, Actual: c.Actual,
		})
	}
	resp.Best = searchCandidate{
		Config:    toWire(res.Best),
		Predicted: entry.Model.PredictConfig(res.Best),
		Actual:    res.BestValue,
	}
	writeJSON(w, http.StatusOK, resp)
}
