package serve

import (
	"fmt"
	"net/http"

	"predperf/internal/obs"
)

// Readiness: /healthz says the process is alive; /readyz says it should
// receive traffic. A predserve is unready when it has nothing to serve
// (empty registry), when an SLO is burning error budget past its
// threshold on both the fast and slow windows, or when a model's shadow
// drift monitor has tripped. /alertz exposes the underlying firing/
// resolved alert history with timestamps.

// unreadyReason is one structured cause in a 503 /readyz body.
type unreadyReason struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// evaluate re-checks every readiness condition, records transitions in
// the alert set, and returns the currently-failing reasons (nil when
// ready). Called lazily by /readyz, /alertz, and /statusz — conditions
// are cheap window reads, so per-request evaluation is fine and keeps
// the alert log current without a background evaluator.
func (s *Server) evaluate() []unreadyReason {
	var reasons []unreadyReason

	empty := s.reg.Len() == 0
	s.alerts.Set("no_models", empty, "model registry is empty; hot-load with POST /v1/models/load")
	if empty {
		reasons = append(reasons, unreadyReason{
			Code:    "no_models",
			Message: "model registry is empty; hot-load with POST /v1/models/load",
		})
	}

	for _, slo := range s.slos {
		st := slo.State()
		msg := sloBurnMessage(st)
		s.alerts.Set("slo_burn:"+st.Name, st.Firing, "%s", msg)
		if st.Firing {
			reasons = append(reasons, unreadyReason{Code: "slo_burn", Message: msg})
		}
	}

	for _, d := range s.shadow.driftStates() {
		s.alerts.Set("model_drift:"+d.Model, d.Firing, "%s", d.reason())
		if d.Firing {
			reasons = append(reasons, unreadyReason{Code: "model_drift", Message: d.reason()})
		}
	}
	return reasons
}

func sloBurnMessage(st obs.SLOState) string {
	return fmt.Sprintf("SLO %s burn rate %.2f (%s) / %.2f (%s) exceeds %.2f",
		st.Name, st.Fast.BurnRate, st.Fast.Window, st.Slow.BurnRate, st.Slow.Window, st.Threshold)
}

// ---- /readyz ----

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	reasons := s.evaluate()
	// Retraining is news, not a failure: a model being rebuilt keeps
	// serving its current generation, so in-progress retrains ride along
	// as structured notes on BOTH the ready and unready bodies without
	// ever flipping readiness by themselves.
	notes := s.retrain.notes()
	if len(reasons) == 0 {
		body := map[string]any{
			"status": "ready",
			"models": s.reg.Len(),
		}
		if len(notes) > 0 {
			body["notes"] = notes
		}
		writeJSON(w, http.StatusOK, body)
		return
	}
	body := map[string]any{
		"status":  "unready",
		"reasons": reasons,
	}
	if len(notes) > 0 {
		body["notes"] = notes
	}
	writeJSON(w, http.StatusServiceUnavailable, body)
}

// ---- /alertz ----

func (s *Server) handleAlertz(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	s.evaluate()
	body := map[string]any{
		"firing": s.alerts.FiringCount(),
		"alerts": s.alerts.Alerts(),
	}
	if st := s.retrain.states(); len(st) > 0 {
		body["retrains"] = st
	}
	writeJSON(w, http.StatusOK, body)
}
