package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"predperf/internal/core"
	"predperf/internal/design"
	"predperf/internal/obs"
)

// Entry is one loaded model in the registry. The simulator evaluator
// used by /v1/search to verify shortlists (and by the shadow monitor
// and retrain controller) is constructed lazily, because building it
// loads (or generates) a benchmark trace.
type Entry struct {
	Name  string      // registry key
	Model *core.Model // the fitted model (read-only once registered)
	Path  string      // file the model was loaded from ("" if registered in-process)

	// gen distinguishes successive holders of the same registry name.
	// The prediction cache keys on it, so a hot-reload retires every
	// cached value computed by the replaced model instead of serving
	// them as stale hits.
	gen uint64

	// Lazy simulator evaluator. Success is memoized forever; a FAILED
	// construction is memoized only until simRetryBackoff elapses, so a
	// transient trace-load failure cannot permanently disable shadow
	// verification, sim-verified search, or drift-triggered retraining
	// for the entry — while a truly-missing benchmark retries at a
	// bounded rate instead of hot-looping.
	simMu      sync.Mutex
	simEv      core.Evaluator
	simErr     error
	simLastTry time.Time
	now        func() time.Time // test hook; nil means time.Now

	// evalFactory builds the entry's evaluator (nil means the local
	// cycle-level simulator). The registry stamps it at Add time, so a
	// server configured with a sim-worker pool transparently fans every
	// simulator consumer — search verification, shadow re-simulation,
	// retrain builds — out to the farm.
	evalFactory EvalFactory
}

// EvalFactory builds an evaluator for a benchmark at a trace length.
// The default is the in-process core.NewSimEvaluator; a cluster-backed
// server swaps in a factory returning cluster.RemoteEvaluator views.
type EvalFactory func(benchmark string, traceLen int) (core.Evaluator, error)

// Generation reports which holder of the registry name this entry is.
// It increases monotonically across the whole registry: every Add (hot
// load or retrain hot-swap) stamps a fresh generation, and the
// prediction cache keys on it.
func (e *Entry) Generation() uint64 { return e.gen }

// simRetryBackoff bounds how often a failed evaluator construction is
// retried. Construction failures are usually transient (an unreadable
// trace file mid-rewrite); retrying on the next call after a short
// backoff restores shadow verification without manual intervention.
const simRetryBackoff = 5 * time.Second

// newSimEvaluator builds the entry's evaluator; a package variable so
// tests can inject transient construction failures.
var newSimEvaluator = core.NewSimEvaluator

// simEvaluator returns the entry's simulator evaluator, building it on
// first use from the model's persisted benchmark name. Models whose
// name is not a known benchmark workload return an error; /v1/search
// then falls back to model-verified search. Construction errors are
// retried after simRetryBackoff (see the Entry field docs); concurrent
// callers single-flight on the entry's mutex.
func (e *Entry) simEvaluator(traceLen int) (core.Evaluator, error) {
	e.simMu.Lock()
	defer e.simMu.Unlock()
	if e.simEv != nil {
		return e.simEv, nil
	}
	if e.Model.Name == "" {
		return nil, fmt.Errorf("serve: model %q carries no benchmark name", e.Name)
	}
	clock := e.now
	if clock == nil {
		clock = time.Now
	}
	if e.simErr != nil && clock().Sub(e.simLastTry) < simRetryBackoff {
		return nil, e.simErr
	}
	e.simLastTry = clock()
	factory := e.evalFactory
	if factory == nil {
		factory = func(benchmark string, traceLen int) (core.Evaluator, error) {
			return newSimEvaluator(benchmark, traceLen)
		}
	}
	// Assign through locals: a failed factory must leave simEv nil, not
	// an interface wrapping a typed nil pointer (which would satisfy the
	// memoization check above and serve a dead evaluator forever).
	ev, err := factory(e.Model.Name, traceLen)
	if err != nil {
		e.simErr = err
		return nil, err
	}
	e.simEv, e.simErr = ev, nil
	return ev, nil
}

// modelEvaluator verifies a search shortlist with the model itself,
// the fallback when an entry has no simulator-backed workload. The
// "verification" is then a no-op ranking confirmation: predicted and
// actual coincide by construction.
type modelEvaluator struct{ m *core.Model }

func (e modelEvaluator) Eval(cfg design.Config) float64 { return e.m.PredictConfig(cfg) }

// Registry is the named, RWMutex-guarded set of models the server can
// predict against. Reads (every predict) take the read lock only; hot
// loads take the write lock for the map insert.
type Registry struct {
	mu      sync.RWMutex
	models  map[string]*Entry
	gen     uint64 // monotonic entry generation, bumped on every Add
	dir     string // base for relative load paths
	factory EvalFactory
}

// NewRegistry returns an empty registry. dir, when non-empty, anchors
// relative paths given to LoadFile and is scanned by LoadDir.
func NewRegistry(dir string) *Registry {
	return &Registry{models: map[string]*Entry{}, dir: dir}
}

// Add registers a model under name, replacing any previous holder of
// the name. It validates the parts of the model the request path
// depends on — including that the design space carries all nine paper
// parameters — so a handler can assume a registered model predicts
// without panicking.
func (r *Registry) Add(name string, m *core.Model, path string) error {
	if err := validateModel(name, m); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gen++
	r.models[name] = &Entry{Name: name, Model: m, Path: path, gen: r.gen, evalFactory: r.factory}
	return nil
}

// SetEvalFactory makes every subsequently added entry build its
// simulator evaluator through factory instead of the in-process
// default. Call it before loading models (cmd/predserve wires it from
// -sim-workers before any load).
func (r *Registry) SetEvalFactory(factory EvalFactory) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.factory = factory
}

// validateModel checks everything the predict path assumes about a
// model, so registration — not the first prediction — is where a bad
// model file fails. Decode/Encode panic on spaces missing a paper
// parameter; CheckDecodable turns that into a structured error.
func validateModel(name string, m *core.Model) error {
	if name == "" {
		return fmt.Errorf("serve: model name must not be empty")
	}
	if m == nil || m.Fit == nil || m.Space == nil || m.Space.N() == 0 {
		return fmt.Errorf("serve: model %q is missing its fit or design space", name)
	}
	if err := m.Space.CheckDecodable(); err != nil {
		return fmt.Errorf("serve: model %q cannot predict: %w", name, err)
	}
	return nil
}

// Get returns the entry for name.
func (r *Registry) Get(name string) (*Entry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.models[name]
	return e, ok
}

// Names lists the registered model names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.models))
	for name := range r.models {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Len reports the number of registered models.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.models)
}

// Entries snapshots the registry, sorted by name.
func (r *Registry) Entries() []*Entry {
	r.mu.RLock()
	out := make([]*Entry, 0, len(r.models))
	for _, e := range r.models {
		out = append(out, e)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// resolve anchors a relative model path at the registry's model dir.
func (r *Registry) resolve(path string) string {
	if r.dir != "" && !filepath.IsAbs(path) {
		return filepath.Join(r.dir, path)
	}
	return path
}

// readModel opens and parses a model file without touching the
// registry. The returned name is, in order of preference: the explicit
// name argument, the model's persisted benchmark name, the file's base
// name without extension. full must already be a complete path (see
// resolve).
func readModel(full, name string) (string, *core.Model, error) {
	f, err := os.Open(full)
	if err != nil {
		return "", nil, fmt.Errorf("serve: loading model: %w", err)
	}
	defer f.Close()
	m, err := core.LoadModel(f)
	if err != nil {
		return "", nil, fmt.Errorf("serve: loading model %s: %w", full, err)
	}
	if name == "" {
		name = m.Name
	}
	if name == "" {
		name = strings.TrimSuffix(filepath.Base(full), filepath.Ext(full))
	}
	return name, m, nil
}

// LoadFile reads a model persisted with core.Model.Save and registers
// it. The registry name is, in order of preference: the explicit name
// argument, the model's persisted benchmark name, the file's base name
// without extension. Returns the name the model was registered under.
func (r *Registry) LoadFile(path, name string) (string, error) {
	defer obs.StartSpan("serve.load")()
	full := r.resolve(path)
	name, m, err := readModel(full, name)
	if err != nil {
		return "", err
	}
	if err := r.Add(name, m, full); err != nil {
		return "", err
	}
	cModelLoads.Inc()
	return name, nil
}

// LoadDir loads every *.json model in dir (the registry's configured
// dir when dir is empty) and returns the registered names. The load is
// all-or-nothing: every file is parsed and validated before the first
// model is registered, so a failing file leaves the registry exactly as
// it was.
func (r *Registry) LoadDir(dir string) ([]string, error) {
	defer obs.StartSpan("serve.load")()
	if dir == "" {
		dir = r.dir
	}
	if dir == "" {
		return nil, fmt.Errorf("serve: no model directory configured")
	}
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	type staged struct {
		name, path string
		m          *core.Model
	}
	stage := make([]staged, 0, len(paths))
	for _, p := range paths {
		name, m, err := readModel(p, "")
		if err == nil {
			err = validateModel(name, m)
		}
		if err != nil {
			return nil, fmt.Errorf("%w (no models were registered)", err)
		}
		stage = append(stage, staged{name: name, path: p, m: m})
	}
	names := make([]string, 0, len(stage))
	for _, st := range stage {
		if err := r.Add(st.name, st.m, st.path); err != nil {
			return names, err
		}
		cModelLoads.Inc()
		names = append(names, st.name)
	}
	return names, nil
}

// ClientPath validates a path supplied over HTTP: hot-loading is
// confined to the registry's model directory, so the path must be
// relative and must still be inside the directory once cleaned.
// Returns the cleaned path, which resolve anchors at the model dir.
func (r *Registry) ClientPath(path string) (string, error) {
	if r.dir == "" {
		return "", fmt.Errorf("serve: hot-loading is disabled: the server has no model directory")
	}
	if filepath.IsAbs(path) {
		return "", fmt.Errorf("serve: absolute load paths are not allowed; give a path relative to the model directory")
	}
	clean := filepath.Clean(path)
	if clean == ".." || strings.HasPrefix(clean, ".."+string(filepath.Separator)) {
		return "", fmt.Errorf("serve: load path %q escapes the model directory", path)
	}
	return clean, nil
}
