// Package serve is the HTTP inference layer over fitted CPI models: it
// turns models persisted by core.Model.Save into a long-running service
// so the paper's fast surrogate actually serves predictions instead of
// living and dying inside the process that built it.
//
// The server is stdlib-only (net/http) and exposes a small JSON API:
//
//	POST /v1/predict      single config or batch against a named model
//	POST /v1/search       model-guided design-space search (search.Minimize)
//	GET  /v1/models       list the model registry
//	POST /v1/models/load  hot-load a persisted model into the registry
//	GET  /healthz         liveness + registry size
//	GET  /metricz         internal/obs counters and spans as JSON
//	GET  /tracez          tail-sampled distributed trace store
//
// Production behaviors live here rather than in the CLI: an RWMutex
// model registry with lazy per-model simulator evaluators, a bounded
// LRU prediction cache keyed on (model, quantized config), vectorized
// batch evaluation (one blocked design-matrix pass per batch via
// rbf.Compiled, chunked over the internal/par pool for large batches),
// micro-batch coalescing of concurrent single predictions (Options.
// CoalesceWindow), request-size limits, per-request timeouts,
// structured JSON errors, and graceful shutdown (drain with a
// deadline).
//
// Every incoming configuration is validated and then clamped/quantized
// through the model's design.Space exactly as at training time
// (Decode∘Encode), so the served prediction always describes a machine
// the space can express — and for on-grid configurations it is
// bit-identical to an in-process Model.PredictConfig call.
package serve

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"time"

	"predperf/internal/cluster"
	"predperf/internal/core"
	"predperf/internal/obs"
)

// Request-path counters and spans (internal/obs). serve.predicts counts
// /v1/predict requests, serve.batch_points every configuration scored
// (a batch of 64 adds 64), and the cache pair says how often the LRU
// absorbed a prediction.
var (
	cPredicts   = obs.NewCounter("serve.predicts")
	cBatchPts   = obs.NewCounter("serve.batch_points")
	cCacheHits  = obs.NewCounter("serve.cache_hits")
	cCacheMiss  = obs.NewCounter("serve.cache_misses")
	cSearches   = obs.NewCounter("serve.searches")
	cModelLoads = obs.NewCounter("serve.model_loads")
	cErrors     = obs.NewCounter("serve.errors")
)

// Options configures a Server. Zero values take production defaults.
type Options struct {
	// MaxBodyBytes bounds the size of a request body (default 1 MiB).
	MaxBodyBytes int64
	// Timeout bounds the handling of one request; requests that exceed
	// it receive a structured 503 (default 30s).
	Timeout time.Duration
	// CacheSize bounds the LRU prediction cache in entries (default
	// 4096; negative disables caching).
	CacheSize int
	// Workers bounds the internal/par fan-out used for batch predict
	// requests (default one per CPU).
	Workers int
	// MaxBatch bounds the number of configurations in one predict
	// request (default 4096).
	MaxBatch int
	// CoalesceWindow bounds how long a single prediction may wait for
	// companions before its micro-batch is flushed. Concurrent single
	// requests inside one window share a single vectorized model
	// evaluation, bit-identical to evaluating them alone. 0 (the
	// default) disables coalescing; cmd/predserve turns it on at 1ms.
	CoalesceWindow time.Duration
	// CoalesceMax flushes a micro-batch as soon as it holds this many
	// configurations, without waiting out the window (default 64).
	CoalesceMax int
	// CoalesceQueue bounds the coalescer's admission queue; a full
	// queue answers a structured 503 (coalesce_queue_full) immediately
	// instead of blocking the handler toward its deadline (default
	// 4096).
	CoalesceQueue int
	// SearchTraceLen is the trace length used when /v1/search verifies
	// its shortlist with the simulator (default 50k instructions).
	SearchTraceLen int
	// ModelDir resolves relative paths in /v1/models/load and is
	// scanned for *.json models by LoadDir.
	ModelDir string
	// AccessLog receives one JSON line per completed request (nil
	// disables access logging). Writes are serialized by the server.
	AccessLog io.Writer
	// Clock injects a time source for windowed metrics, SLO burn rates,
	// alert timestamps, and shadow drift windows (default time.Now).
	// Tests drive a fake clock through it.
	Clock obs.Clock
	// SLOLatency is the latency objective: a request is "good" when it
	// completes within this duration (default 250ms). Align it with a
	// histogram bucket bound for exact accounting.
	SLOLatency time.Duration
	// SLOAvailability is the target good fraction for both SLOs
	// (default 0.999).
	SLOAvailability float64
	// BurnThreshold is the burn rate above which an SLO trips /readyz
	// (default obs.DefBurnThreshold, 14.4).
	BurnThreshold float64
	// ShadowFraction is the fraction of served predictions re-checked on
	// the cycle-level simulator (0 disables shadow monitoring, 1 checks
	// everything). Sampling is a deterministic hash of the (model,
	// quantized config) pair.
	ShadowFraction float64
	// ShadowWorkers bounds the background simulation worker pool
	// (default 1).
	ShadowWorkers int
	// ShadowQueue bounds the pending shadow-sample queue; a full queue
	// drops samples instead of blocking the predict path (default 1024).
	ShadowQueue int
	// ShadowErrPct is the windowed mean percent error above which a
	// model counts as drifting (default 25; negative keeps the error
	// histograms but never trips readiness).
	ShadowErrPct float64
	// ShadowMinSamples is how many windowed shadow samples a model needs
	// before drift can fire (default 10).
	ShadowMinSamples int
	// Retrain enables the drift-triggered retrain controller: models
	// whose shadow drift alert fires for RetrainAfter are rebuilt at
	// escalated sample sizes and hot-swapped in. Requires shadow
	// monitoring (ShadowFraction > 0) to ever trigger.
	Retrain bool
	// RetrainSizes is the escalation ladder of sample sizes; only sizes
	// above the serving model's are built. Empty means automatic: 2×,
	// 3×, 4× the serving model's sample size.
	RetrainSizes []int
	// RetrainTargetPct stops the escalation once the mean test error
	// drops to this percentage (default 5, the paper's "a few percent").
	RetrainTargetPct float64
	// RetrainCooldown is the per-model pause after a retrain finishes —
	// success or failure — before another may start (default 10m).
	RetrainCooldown time.Duration
	// RetrainMaxConcurrent bounds simultaneous retrains across all
	// models (default 1).
	RetrainMaxConcurrent int
	// RetrainAfter is how long a model's drift alert must fire
	// continuously before a retrain starts (default 30s; negative means
	// immediately).
	RetrainAfter time.Duration
	// RetrainPoll is the wall-clock cadence of drift-state polls
	// (default 10s). Tests set it high and drive polls directly.
	RetrainPoll time.Duration
	// RetrainTestPoints sizes the simulator-backed test set that drives
	// the escalation's stopping rule (default 24).
	RetrainTestPoints int
	// RetrainWorkers bounds the internal/par worker budget of one
	// background build, so retraining cannot starve the serving CPUs
	// (default 1).
	RetrainWorkers int
	// SimPool, when non-nil, fans every simulator consumer — search
	// shortlist verification, shadow re-simulation, retrain builds —
	// out to a cluster of sim workers instead of simulating on the
	// serving host. Workers are deterministic, so results are
	// bit-identical to local simulation. cmd/predserve builds the pool
	// from -sim-workers.
	SimPool *cluster.Pool
	// TraceSample is the head-sampling rate for distributed traces: the
	// fraction of edge requests that record a request-scoped trace
	// (default 1.0, trace everything; negative disables tracing). The
	// decision is made once at the edge — an inbound traceparent header
	// carries it downstream instead.
	TraceSample float64
	// TraceSampleMax, when above TraceSample, turns on SLO-burn-adaptive
	// head sampling: while any declared SLO fires, the edge sampling rate
	// ramps (doubling per adapt tick) toward this ceiling, and decays
	// back to TraceSample once the burn clears. 0 (the default) keeps
	// the rate static at TraceSample. Only the number of retained traces
	// changes — response bodies are untouched and the decision at any
	// fixed rate stays deterministic per request ID.
	TraceSampleMax float64
	// TraceAdaptInterval is the adaptive sampling controller's tick
	// cadence (default 10s). Only meaningful with TraceSampleMax set.
	TraceAdaptInterval time.Duration
	// TraceStoreSize bounds each retention class of the /tracez store
	// (errors, kept outliers, reservoir sample) in traces (default 64).
	TraceStoreSize int
}

func (o Options) withDefaults() Options {
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.Timeout <= 0 {
		o.Timeout = 30 * time.Second
	}
	if o.CacheSize == 0 {
		o.CacheSize = 4096
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 4096
	}
	if o.SearchTraceLen <= 0 {
		o.SearchTraceLen = 50_000
	}
	if o.CoalesceMax <= 0 {
		o.CoalesceMax = 64
	}
	if o.CoalesceQueue <= 0 {
		o.CoalesceQueue = 4096
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	if o.SLOLatency <= 0 {
		o.SLOLatency = 250 * time.Millisecond
	}
	if o.SLOAvailability <= 0 || o.SLOAvailability >= 1 {
		o.SLOAvailability = 0.999
	}
	if o.BurnThreshold <= 0 {
		o.BurnThreshold = obs.DefBurnThreshold
	}
	if o.ShadowWorkers <= 0 {
		o.ShadowWorkers = 1
	}
	if o.ShadowQueue <= 0 {
		o.ShadowQueue = 1024
	}
	if o.ShadowErrPct == 0 {
		o.ShadowErrPct = 25
	}
	if o.ShadowMinSamples <= 0 {
		o.ShadowMinSamples = 10
	}
	if o.RetrainTargetPct <= 0 {
		o.RetrainTargetPct = 5
	}
	if o.RetrainCooldown <= 0 {
		o.RetrainCooldown = 10 * time.Minute
	}
	if o.RetrainMaxConcurrent <= 0 {
		o.RetrainMaxConcurrent = 1
	}
	if o.RetrainAfter == 0 {
		o.RetrainAfter = 30 * time.Second
	} else if o.RetrainAfter < 0 {
		o.RetrainAfter = 0
	}
	if o.RetrainPoll <= 0 {
		o.RetrainPoll = 10 * time.Second
	}
	if o.RetrainTestPoints <= 0 {
		o.RetrainTestPoints = 24
	}
	if o.RetrainWorkers <= 0 {
		o.RetrainWorkers = 1
	}
	if o.TraceSample == 0 {
		o.TraceSample = 1
	}
	if o.TraceAdaptInterval <= 0 {
		o.TraceAdaptInterval = 10 * time.Second
	}
	if o.TraceStoreSize <= 0 {
		o.TraceStoreSize = 64
	}
	return o
}

// Server serves predictions from a registry of loaded models.
type Server struct {
	opt    Options
	reg    *Registry
	cache  *lru
	access *accessLog
	http   *http.Server

	// Time-aware observability: the clock every window/SLO/alert runs
	// on, sliding-window views over the request metrics, the declared
	// SLOs, the alert log, and the shadow drift monitor.
	clock    obs.Clock
	start    time.Time
	wLatency *obs.WindowedHistogram
	wTotal   *obs.WindowedCounter
	w5xx     *obs.WindowedCounter
	wRoutes  map[string]*obs.WindowedHistogram
	slos     []*obs.SLO
	alerts   *obs.AlertSet
	shadow   *shadowMonitor
	coalesce *coalescer
	retrain  *retrainController

	// Distributed tracing: the edge head-sampler (burn-adaptive when
	// Options.TraceSampleMax raises the ceiling) and the tail-retention
	// trace store behind /tracez.
	sampler   *obs.AdaptiveSampler
	traces    *obs.TraceStore
	adaptStop chan struct{}
	adaptDone chan struct{}
}

// New builds a Server with an empty registry. Load models through
// Registry before (or while — the registry is hot-loadable) serving.
// Serving internals that are otherwise invisible — prediction-cache
// entries and capacity, registry size — are exported as callback gauges;
// the obs registry is process-global, so the most recently constructed
// Server owns these series.
func New(opt Options) *Server {
	opt = opt.withDefaults()
	s := &Server{
		opt:    opt,
		reg:    NewRegistry(opt.ModelDir),
		cache:  newLRU(opt.CacheSize),
		access: newAccessLog(opt.AccessLog),
		clock:  opt.Clock,
	}
	s.sampler = obs.NewAdaptiveSampler(opt.TraceSample, opt.TraceSampleMax, 0)
	s.traces = obs.NewTraceStore(opt.TraceStoreSize)
	obs.NewGaugeFunc("obs.trace_sample_rate", s.sampler.Rate)
	if opt.SimPool != nil {
		s.reg.SetEvalFactory(func(benchmark string, traceLen int) (core.Evaluator, error) {
			return cluster.NewRemoteEvaluator(opt.SimPool, benchmark, traceLen, cluster.RemoteOptions{}), nil
		})
	}
	s.start = s.clock()
	obs.NewGaugeFunc("serve.cache_entries", func() float64 { return float64(s.cache.Len()) })
	obs.NewGaugeFunc("serve.cache_capacity", func() float64 { return float64(s.cache.Cap()) })
	obs.NewGaugeFunc("serve.registry_models", func() float64 { return float64(s.reg.Len()) })

	// Sliding-window views over the request metrics (latest-wins, like
	// the gauges above: the most recent Server owns the clock), plus
	// per-route views for the /statusz latency tables.
	s.wLatency = obs.WindowHistogram(hAllRequests, s.clock)
	s.wTotal = obs.WindowCounter(cRequestsTotal, s.clock)
	s.w5xx = obs.WindowCounter(cResponses5xx, s.clock)
	s.wRoutes = map[string]*obs.WindowedHistogram{}
	for route := range routes {
		s.wRoutes[route] = obs.WindowHistogramIn(hRequests, s.clock, route)
	}
	s.wRoutes["other"] = obs.WindowHistogramIn(hRequests, s.clock, "other")

	// The two declared SLOs, Google SRE multi-window burn style. Both
	// are registered globally so run reports carry their states.
	s.slos = []*obs.SLO{
		obs.RegisterSLO(&obs.SLO{
			Name:        "latency",
			Description: fmt.Sprintf("%.4g%% of requests complete within %s", opt.SLOAvailability*100, opt.SLOLatency),
			Objective:   opt.SLOAvailability,
			Threshold:   opt.BurnThreshold,
			SLI:         obs.LatencySLI(s.wLatency, opt.SLOLatency.Seconds()),
		}),
		obs.RegisterSLO(&obs.SLO{
			Name:        "availability",
			Description: fmt.Sprintf("%.4g%% of responses are non-5xx", opt.SLOAvailability*100),
			Objective:   opt.SLOAvailability,
			Threshold:   opt.BurnThreshold,
			SLI:         obs.AvailabilitySLI(s.w5xx, s.wTotal),
		}),
	}
	s.alerts = obs.NewAlertSet(s.clock)
	s.shadow = newShadowMonitor(opt, s.clock)
	s.coalesce = newCoalescer(opt.CoalesceWindow, opt.CoalesceMax, opt.CoalesceQueue, s.predictBatch)
	s.retrain = newRetrainController(opt, s.reg, s.shadow, s.clock)
	s.retrain.traces = s.traces
	if opt.Retrain {
		obs.NewGaugeFunc("serve.retrains_inflight", func() float64 { return float64(s.retrain.inflightCount()) })
	}
	s.retrain.start()

	// Burn-adaptive sampling controller: a periodic tick feeds the
	// multi-window SLO state into the sampler's ramp/decay logic. Only
	// started when a ceiling above the base rate makes adaptation
	// possible; tests drive AdaptTick directly instead.
	if opt.TraceSampleMax > 0 && s.sampler.Max() > s.sampler.Base() {
		s.adaptStop = make(chan struct{})
		s.adaptDone = make(chan struct{})
		go s.adaptLoop()
	}

	s.http = &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s
}

// AdaptTick runs one adaptive-sampling controller step: the sampling
// rate ramps while any declared SLO fires and decays (with hysteresis)
// once every burn has cleared. Returns the rate now in effect.
func (s *Server) AdaptTick() float64 {
	burning := false
	for _, slo := range s.slos {
		if slo.State().Firing {
			burning = true
			break
		}
	}
	return s.sampler.Tick(burning)
}

// adaptLoop ticks the adaptive sampling controller until Shutdown.
func (s *Server) adaptLoop() {
	defer close(s.adaptDone)
	t := time.NewTicker(s.opt.TraceAdaptInterval)
	defer t.Stop()
	for {
		select {
		case <-s.adaptStop:
			return
		case <-t.C:
			s.AdaptTick()
		}
	}
}

// Registry exposes the model registry for loading and inspection.
func (s *Server) Registry() *Registry { return s.reg }

// Traces exposes the /tracez trace store (tests and embedding callers).
func (s *Server) Traces() *obs.TraceStore { return s.traces }

// Handler returns the full API handler: the route mux wrapped with the
// per-request timeout, wrapped in turn with the observability middleware
// (request-ID assignment + request-scoped trace, per-route latency
// histograms and response counters, in-flight gauge, access log) — so
// even timed-out requests are logged and measured with their real 503.
// Request-size limits are applied per route (the body readers are capped
// with http.MaxBytesReader).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/alertz", s.handleAlertz)
	mux.HandleFunc("/statusz", s.handleStatusz)
	mux.HandleFunc("/metricz", s.handleMetricz)
	mux.Handle("/tracez", s.traces.Handler())
	mux.HandleFunc("/v1/models", s.handleModels)
	mux.HandleFunc("/v1/models/load", s.handleModelsLoad)
	mux.HandleFunc("/v1/predict", s.handlePredict)
	mux.HandleFunc("/v1/search", s.handleSearch)
	return s.withObs(s.withTimeout(mux))
}

// withTimeout wraps h with the per-request deadline. http.TimeoutHandler
// writes its error body without a Content-Type, which Go's sniffer would
// label text/plain, so the JSON Content-Type is pre-set on the real
// response writer; handlers on the non-timeout path set it themselves.
func (s *Server) withTimeout(h http.Handler) http.Handler {
	th := http.TimeoutHandler(h, s.opt.Timeout,
		`{"error":{"code":"timeout","message":"request exceeded the server's per-request deadline"}}`)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		th.ServeHTTP(w, r)
	})
}

// Serve accepts connections on l until Shutdown. A server that was shut
// down cleanly returns nil rather than http.ErrServerClosed.
func (s *Server) Serve(l net.Listener) error {
	err := s.http.Serve(l)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Shutdown drains in-flight requests, waiting at most deadline before
// giving up on stragglers, then stops the retrain controller (cancels
// the escalation, waits for in-flight attempts), then the coalescer
// dispatcher (which evaluates everything already queued), then the
// shadow workers (which finish their in-flight simulations) — in that
// order, because the coalescer's final flush feeds the shadow queue.
// New connections are refused immediately. Handlers that outlive the
// drain deadline remain safe: enqueueing into a stopped coalescer
// answers a structured 503, and offering to the stopped shadow monitor
// drops the sample and counts it.
func (s *Server) Shutdown(deadline time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	err := s.http.Shutdown(ctx)
	if s.adaptStop != nil {
		close(s.adaptStop)
		<-s.adaptDone
		s.adaptStop = nil
	}
	s.retrain.stop()
	s.coalesce.stop()
	s.shadow.stop()
	return err
}
