// Package serve is the HTTP inference layer over fitted CPI models: it
// turns models persisted by core.Model.Save into a long-running service
// so the paper's fast surrogate actually serves predictions instead of
// living and dying inside the process that built it.
//
// The server is stdlib-only (net/http) and exposes a small JSON API:
//
//	POST /v1/predict      single config or batch against a named model
//	POST /v1/search       model-guided design-space search (search.Minimize)
//	GET  /v1/models       list the model registry
//	POST /v1/models/load  hot-load a persisted model into the registry
//	GET  /healthz         liveness + registry size
//	GET  /metricz         internal/obs counters and spans as JSON
//
// Production behaviors live here rather than in the CLI: an RWMutex
// model registry with lazy per-model simulator evaluators, a bounded
// LRU prediction cache keyed on (model, quantized config), batch
// fan-out through the internal/par worker pool, request-size limits,
// per-request timeouts, structured JSON errors, and graceful shutdown
// (drain with a deadline).
//
// Every incoming configuration is validated and then clamped/quantized
// through the model's design.Space exactly as at training time
// (Decode∘Encode), so the served prediction always describes a machine
// the space can express — and for on-grid configurations it is
// bit-identical to an in-process Model.PredictConfig call.
package serve

import (
	"context"
	"io"
	"net"
	"net/http"
	"runtime"
	"time"

	"predperf/internal/obs"
)

// Request-path counters and spans (internal/obs). serve.predicts counts
// /v1/predict requests, serve.batch_points every configuration scored
// (a batch of 64 adds 64), and the cache pair says how often the LRU
// absorbed a prediction.
var (
	cPredicts   = obs.NewCounter("serve.predicts")
	cBatchPts   = obs.NewCounter("serve.batch_points")
	cCacheHits  = obs.NewCounter("serve.cache_hits")
	cCacheMiss  = obs.NewCounter("serve.cache_misses")
	cSearches   = obs.NewCounter("serve.searches")
	cModelLoads = obs.NewCounter("serve.model_loads")
	cErrors     = obs.NewCounter("serve.errors")
)

// Options configures a Server. Zero values take production defaults.
type Options struct {
	// MaxBodyBytes bounds the size of a request body (default 1 MiB).
	MaxBodyBytes int64
	// Timeout bounds the handling of one request; requests that exceed
	// it receive a structured 503 (default 30s).
	Timeout time.Duration
	// CacheSize bounds the LRU prediction cache in entries (default
	// 4096; negative disables caching).
	CacheSize int
	// Workers bounds the internal/par fan-out used for batch predict
	// requests (default one per CPU).
	Workers int
	// MaxBatch bounds the number of configurations in one predict
	// request (default 4096).
	MaxBatch int
	// SearchTraceLen is the trace length used when /v1/search verifies
	// its shortlist with the simulator (default 50k instructions).
	SearchTraceLen int
	// ModelDir resolves relative paths in /v1/models/load and is
	// scanned for *.json models by LoadDir.
	ModelDir string
	// AccessLog receives one JSON line per completed request (nil
	// disables access logging). Writes are serialized by the server.
	AccessLog io.Writer
}

func (o Options) withDefaults() Options {
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.Timeout <= 0 {
		o.Timeout = 30 * time.Second
	}
	if o.CacheSize == 0 {
		o.CacheSize = 4096
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 4096
	}
	if o.SearchTraceLen <= 0 {
		o.SearchTraceLen = 50_000
	}
	return o
}

// Server serves predictions from a registry of loaded models.
type Server struct {
	opt    Options
	reg    *Registry
	cache  *lru
	access *accessLog
	http   *http.Server
}

// New builds a Server with an empty registry. Load models through
// Registry before (or while — the registry is hot-loadable) serving.
// Serving internals that are otherwise invisible — prediction-cache
// entries and capacity, registry size — are exported as callback gauges;
// the obs registry is process-global, so the most recently constructed
// Server owns these series.
func New(opt Options) *Server {
	opt = opt.withDefaults()
	s := &Server{
		opt:    opt,
		reg:    NewRegistry(opt.ModelDir),
		cache:  newLRU(opt.CacheSize),
		access: newAccessLog(opt.AccessLog),
	}
	obs.NewGaugeFunc("serve.cache_entries", func() float64 { return float64(s.cache.Len()) })
	obs.NewGaugeFunc("serve.cache_capacity", func() float64 { return float64(s.cache.Cap()) })
	obs.NewGaugeFunc("serve.registry_models", func() float64 { return float64(s.reg.Len()) })
	s.http = &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s
}

// Registry exposes the model registry for loading and inspection.
func (s *Server) Registry() *Registry { return s.reg }

// Handler returns the full API handler: the route mux wrapped with the
// per-request timeout, wrapped in turn with the observability middleware
// (request-ID assignment + request-scoped trace, per-route latency
// histograms and response counters, in-flight gauge, access log) — so
// even timed-out requests are logged and measured with their real 503.
// Request-size limits are applied per route (the body readers are capped
// with http.MaxBytesReader).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metricz", s.handleMetricz)
	mux.HandleFunc("/v1/models", s.handleModels)
	mux.HandleFunc("/v1/models/load", s.handleModelsLoad)
	mux.HandleFunc("/v1/predict", s.handlePredict)
	mux.HandleFunc("/v1/search", s.handleSearch)
	return s.withObs(s.withTimeout(mux))
}

// withTimeout wraps h with the per-request deadline. http.TimeoutHandler
// writes its error body without a Content-Type, which Go's sniffer would
// label text/plain, so the JSON Content-Type is pre-set on the real
// response writer; handlers on the non-timeout path set it themselves.
func (s *Server) withTimeout(h http.Handler) http.Handler {
	th := http.TimeoutHandler(h, s.opt.Timeout,
		`{"error":{"code":"timeout","message":"request exceeded the server's per-request deadline"}}`)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		th.ServeHTTP(w, r)
	})
}

// Serve accepts connections on l until Shutdown. A server that was shut
// down cleanly returns nil rather than http.ErrServerClosed.
func (s *Server) Serve(l net.Listener) error {
	err := s.http.Serve(l)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Shutdown drains in-flight requests, waiting at most deadline before
// giving up on stragglers. New connections are refused immediately.
func (s *Server) Shutdown(deadline time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	return s.http.Shutdown(ctx)
}
