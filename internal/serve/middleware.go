package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"predperf/internal/obs"
)

// Request-path observability: per-route latency histograms, per-route ×
// status-code response totals, and an in-flight gauge. Routes are
// normalized to the fixed route set (unknown paths collapse to "other")
// so label cardinality stays bounded no matter what clients request.
var (
	hRequests  = obs.NewHistogramVec("serve.http_request_seconds", obs.DefLatencyBuckets, "route")
	cResponses = obs.NewCounterVec("serve.http_responses", "route", "code")
	gInflight  = obs.NewGauge("serve.inflight_requests")

	// Route-agnostic aggregates backing the SLOs: one latency histogram
	// over every request, a total-response counter, and a 5xx counter.
	// Their sliding-window views (Server.wLatency and friends) feed the
	// latency and availability burn rates.
	hAllRequests   = obs.NewHistogram("serve.request_seconds", obs.DefLatencyBuckets)
	cRequestsTotal = obs.NewCounter("serve.requests_total")
	cResponses5xx  = obs.NewCounter("serve.responses_5xx")
)

// routes is the fixed label set for per-route metrics.
var routes = map[string]bool{
	"/healthz":        true,
	"/readyz":         true,
	"/alertz":         true,
	"/statusz":        true,
	"/metricz":        true,
	"/tracez":         true,
	"/v1/models":      true,
	"/v1/models/load": true,
	"/v1/predict":     true,
	"/v1/search":      true,
}

// sloExempt marks the probe/ops surface, which is excluded from the
// SLO aggregates: a /readyz 503 is readiness signal, not a served-traffic
// failure. Counting it would let an unready server burn its own
// availability budget with every probe and never report ready again —
// and counting /healthz probes or /metricz scrapes (the router's fleet
// plane polls every role on a sub-second cadence) would dilute the bad
// fraction with synthetic good traffic.
var sloExempt = map[string]bool{
	"/healthz": true,
	"/readyz":  true,
	"/alertz":  true,
	"/statusz": true,
	"/metricz": true,
	"/tracez":  true,
}

// routeLabel normalizes a request path to a bounded label value.
func routeLabel(path string) string {
	if routes[path] {
		return path
	}
	return "other"
}

// statusWriter captures the status code and body size written through a
// ResponseWriter, for the access log and response metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.status = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if !w.wrote {
		w.status = http.StatusOK
		w.wrote = true
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// accessLog serializes JSON-lines access entries to one writer. A mutex
// keeps concurrent requests from interleaving partial lines.
type accessLog struct {
	mu  sync.Mutex
	enc *json.Encoder
}

func newAccessLog(w io.Writer) *accessLog {
	if w == nil {
		return nil
	}
	return &accessLog{enc: json.NewEncoder(w)}
}

// accessEntry is one access-log line.
type accessEntry struct {
	Time      string  `json:"time"` // RFC 3339 with milliseconds
	ID        string  `json:"id"`   // X-Request-Id (received or assigned)
	Remote    string  `json:"remote,omitempty"`
	Method    string  `json:"method"`
	Path      string  `json:"path"`
	Status    int     `json:"status"`
	Bytes     int64   `json:"bytes"`
	DurMS     float64 `json:"dur_ms"`
	UserAgent string  `json:"user_agent,omitempty"`
}

func (l *accessLog) log(e accessEntry) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.enc.Encode(e)
}

// requestIDHeader is the header predserve reads and echoes on every
// request; it doubles as the request's trace ID. Client-supplied values
// are validated (obs.ValidRequestID: 1–64 chars of [A-Za-z0-9._-])
// before being echoed into headers, access logs, and trace IDs; anything
// else is replaced with a generated ID.
const requestIDHeader = "X-Request-Id"

// withObs is the outermost middleware: it assigns (or respects, after
// validation) the request ID, decides whether this request records a
// distributed trace, tracks the in-flight gauge, and — once the inner
// chain returns — records the per-route latency histogram (with a trace
// exemplar when traced), the route × code response counter, the
// access-log line, and offers the finished trace to the /tracez store.
// It wraps the timeout handler, so a timed-out request is logged with
// its real 503 and its full duration.
//
// The sampling decision: an inbound traceparent header (router-fronted
// deployments) carries the edge's bit and is authoritative — a sampled
// remote hop records spans without a local root (the forest returns to
// the caller on the X-Trace-Spans trailer and grafts under its hop
// span), an unsampled one allocates no trace at all. Edge requests go
// through the local sampler and get a "serve.request" root span.
func (s *Server) withObs(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		id := r.Header.Get(requestIDHeader)
		if !obs.ValidRequestID(id) {
			id = obs.NewTraceID()
		}
		w.Header().Set(requestIDHeader, id)
		route := routeLabel(r.URL.Path)
		ctx := obs.WithRequestID(r.Context(), id)

		sc, remote := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader))
		sampled := sc.Sampled
		if !remote {
			sampled = s.sampler.Sample(id)
		}
		var tr *obs.Trace
		endRoot := func() {}
		if sampled {
			tid := id
			if remote && sc.TraceID != "" {
				tid = sc.TraceID
			}
			tr = obs.NewTrace(tid)
			ctx = obs.WithTrace(ctx, tr)
			if remote {
				// Declare the span-return trailer before any write; the
				// value is set after the inner chain finishes.
				w.Header().Add("Trailer", obs.SpanTrailerHeader)
			} else {
				ctx, endRoot = obs.StartSpanCtx(ctx, "serve.request", "route", route)
			}
		}
		r = r.WithContext(ctx)

		gInflight.Inc()
		defer gInflight.Dec()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		endRoot()

		d := time.Since(t0)
		if tr != nil {
			if remote {
				w.Header().Set(obs.SpanTrailerHeader, obs.EncodeSpans(tr.Export(obs.MaxWireSpans)))
			}
			hRequests.With(route).ObserveWithExemplar(d.Seconds(), tr.ID())
		} else {
			hRequests.With(route).Observe(d.Seconds())
		}
		if !sloExempt[route] {
			hAllRequests.Observe(d.Seconds())
			cRequestsTotal.Inc()
			if sw.status >= 500 {
				cResponses5xx.Inc()
			}
		}
		cResponses.With(route, strconv.Itoa(sw.status)).Inc()
		if tr != nil {
			s.traces.Add(tr, obs.TraceMeta{
				ID: tr.ID(), Kind: "request", Route: route, Status: sw.status,
				Start: t0, Dur: d, Err: sw.status >= 500, Keep: s.slowOutlier(route, d),
			})
		}
		s.access.log(accessEntry{
			Time:      t0.UTC().Format("2006-01-02T15:04:05.000Z07:00"),
			ID:        id,
			Remote:    r.RemoteAddr,
			Method:    r.Method,
			Path:      r.URL.Path,
			Status:    sw.status,
			Bytes:     sw.bytes,
			DurMS:     float64(d.Nanoseconds()) / 1e6,
			UserAgent: r.UserAgent(),
		})
	})
}

// slowOutlier flags a latency-quantile outlier for tail retention: a
// request slower than its route's recent windowed p99, once the window
// holds enough samples to make the quantile meaningful.
func (s *Server) slowOutlier(route string, d time.Duration) bool {
	w, ok := s.wRoutes[route]
	if !ok {
		return false
	}
	st := w.StatsOver(5 * time.Minute)
	return st.Count >= 20 && d.Seconds() > st.P99
}
