package serve

import (
	"context"
	"errors"
	"sync"
	"time"

	"predperf/internal/design"
	"predperf/internal/obs"
)

// Request coalescing: the vectorized RBF evaluator (rbf.Compiled) is at
// its best when it scores many configurations in one blocked matrix
// pass, but independent clients send one configuration at a time. The
// coalescer turns that concurrency into batch shape: concurrent single
// /v1/predict requests enqueue onto a bounded admission queue, and a
// dispatcher goroutine drains up to maxSize configs or one window
// (whichever comes first) into a micro-batch, evaluates each model's
// share with one vectorized call, and fans the results back per
// request. Responses are bit-identical with coalescing on or off — the
// batch evaluator reproduces the scalar path exactly — so the window
// trades a bounded latency budget purely for throughput.
var (
	cCoalesced        = obs.NewCounter("serve.coalesced_requests")
	cCoalesceCanceled = obs.NewCounter("serve.coalesce_canceled")
	cCoalesceFlushes  = obs.NewCounterVec("serve.coalesce_flushes", "reason")
	// hCoalesceBatch records how many configs each flush carried:
	// powers of two from 1 to 1024.
	hCoalesceBatch = obs.NewHistogram("serve.coalesce_batch_size", obs.ExponentialBuckets(1, 2, 11))
)

// ErrCoalesceQueueFull is returned (and mapped to a structured 503,
// code "coalesce_queue_full") when the admission queue is at capacity:
// the server is over-committed and the client should back off and
// retry, rather than silently occupying a handler until its deadline.
var ErrCoalesceQueueFull = errors.New("serve: coalescer admission queue is full")

// ErrCoalesceStopped is returned for requests that arrive after the
// coalescer began shutting down.
var ErrCoalesceStopped = errors.New("serve: coalescer is stopped")

// coalesceReq is one queued single prediction.
type coalesceReq struct {
	ctx   context.Context
	entry *Entry
	cfg   design.Config
	done  chan prediction // buffered(1): the dispatcher's send never blocks
}

// coalescer owns the admission queue and the dispatcher goroutine.
// eval scores one model's share of a micro-batch (the server wires in
// predictBatch, so the cache and shadow monitor apply per config
// exactly as on the direct path).
type coalescer struct {
	window  time.Duration
	maxSize int
	eval    func(*Entry, []design.Config) []prediction

	queue   chan coalesceReq
	stopped chan struct{} // closed when the dispatcher exits

	mu       sync.RWMutex // guards closed vs. enqueue
	closed   bool
	stopOnce sync.Once
}

// newCoalescer builds (and starts) a coalescer. window <= 0 returns a
// disabled coalescer: enabled() is false and predict must not be
// called.
func newCoalescer(window time.Duration, maxSize, queueCap int, eval func(*Entry, []design.Config) []prediction) *coalescer {
	c := &coalescer{window: window, maxSize: maxSize, eval: eval}
	if window <= 0 {
		return c
	}
	if c.maxSize <= 0 {
		c.maxSize = 64
	}
	if queueCap <= 0 {
		queueCap = 4096
	}
	c.queue = make(chan coalesceReq, queueCap)
	c.stopped = make(chan struct{})
	go c.dispatch()
	return c
}

func (c *coalescer) enabled() bool { return c != nil && c.queue != nil }

// predict enqueues one configuration and blocks until its micro-batch
// has been evaluated. It fails fast — never waiting out the request
// deadline — when the queue is full (ErrCoalesceQueueFull) or the
// coalescer is shutting down (ErrCoalesceStopped), and returns the
// context's error if the caller gives up while queued.
func (c *coalescer) predict(ctx context.Context, e *Entry, cfg design.Config) (prediction, error) {
	req := coalesceReq{ctx: ctx, entry: e, cfg: cfg, done: make(chan prediction, 1)}
	c.mu.RLock()
	if c.closed {
		c.mu.RUnlock()
		return prediction{}, ErrCoalesceStopped
	}
	select {
	case c.queue <- req:
		c.mu.RUnlock()
	default:
		c.mu.RUnlock()
		return prediction{}, ErrCoalesceQueueFull
	}
	select {
	case p := <-req.done:
		return p, nil
	case <-ctx.Done():
		// The dispatcher notices the dead context and skips the work;
		// if the flush already ran, the buffered done send is simply
		// never read.
		return prediction{}, ctx.Err()
	}
}

// dispatch is the single consumer: it blocks for the first request of
// a micro-batch, then collects companions until the batch is full
// ("size"), the window expires ("window"), or the queue closes during
// shutdown ("drain"), and flushes.
func (c *coalescer) dispatch() {
	defer close(c.stopped)
	for {
		first, ok := <-c.queue
		if !ok {
			return
		}
		batch := make([]coalesceReq, 1, c.maxSize)
		batch[0] = first
		reason := "window"
		timer := time.NewTimer(c.window)
	collect:
		for len(batch) < c.maxSize {
			select {
			case r, ok := <-c.queue:
				if !ok {
					reason = "drain"
					break collect
				}
				batch = append(batch, r)
			case <-timer.C:
				break collect
			}
		}
		timer.Stop()
		if len(batch) >= c.maxSize {
			reason = "size"
		}
		c.flush(batch, reason)
		if reason == "drain" {
			return
		}
	}
}

// flush groups a micro-batch by model entry — one vectorized
// evaluation per model keeps models isolated — and fans each result
// back to its requester. Requests whose context died while queued are
// skipped (their work would be discarded anyway).
func (c *coalescer) flush(batch []coalesceReq, reason string) {
	cCoalesceFlushes.With(reason).Inc()
	hCoalesceBatch.Observe(float64(len(batch)))
	groups := make(map[*Entry][]int)
	var order []*Entry
	for i, r := range batch {
		if r.ctx.Err() != nil {
			cCoalesceCanceled.Inc()
			continue
		}
		if _, seen := groups[r.entry]; !seen {
			order = append(order, r.entry)
		}
		groups[r.entry] = append(groups[r.entry], i)
	}
	for _, e := range order {
		idx := groups[e]
		cfgs := make([]design.Config, len(idx))
		for a, i := range idx {
			cfgs[a] = batch[i].cfg
		}
		preds := c.eval(e, cfgs)
		for a, i := range idx {
			batch[i].done <- preds[a]
		}
		cCoalesced.Add(int64(len(idx)))
	}
}

// stop refuses new requests, lets the dispatcher drain and evaluate
// everything already queued, and blocks until it has exited. Call
// after the HTTP side has drained.
func (c *coalescer) stop() {
	if !c.enabled() {
		return
	}
	c.stopOnce.Do(func() {
		c.mu.Lock()
		c.closed = true
		close(c.queue)
		c.mu.Unlock()
	})
	<-c.stopped
}
