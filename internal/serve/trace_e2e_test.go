package serve

import (
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"predperf/internal/cluster"
	"predperf/internal/obs"
)

// traceStack is a full three-role deployment: a router fronting one
// predserve shard whose simulator consumers fan out to two sim workers.
type traceStack struct {
	serve   *Server
	router  *cluster.Router
	workers []*cluster.Worker
	routeTS *httptest.Server
}

// newTraceStack wires router → shard → 2 workers over httptest. The
// model is named after a real benchmark ("mcf") so the workers'
// simulator accepts it; routerSample is the edge's head-sampling rate
// (everything downstream keeps its default sampler and must obey the
// propagated bit instead).
func newTraceStack(t *testing.T, routerSample float64) *traceStack {
	t.Helper()
	dir := t.TempDir()
	m := buildTestModel(t, "mcf")
	saveModel(t, m, filepath.Join(dir, "mcf.json"))

	st := &traceStack{}
	urls := make([]string, 2)
	for i := range urls {
		w := cluster.NewWorker(cluster.WorkerOptions{})
		ts := httptest.NewServer(w.Handler())
		t.Cleanup(ts.Close)
		st.workers = append(st.workers, w)
		urls[i] = ts.URL
	}
	pool, err := cluster.NewPool(urls, cluster.PoolOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st.serve = New(Options{ModelDir: dir, SimPool: pool, SearchTraceLen: 2000})
	if _, err := st.serve.Registry().LoadDir(""); err != nil {
		t.Fatal(err)
	}
	shardTS := httptest.NewServer(st.serve.Handler())
	t.Cleanup(shardTS.Close)

	st.router, err = cluster.NewRouter(cluster.RouterOptions{
		Shards:       []string{shardTS.URL},
		SyncInterval: -1,
		TraceSample:  routerSample,
	})
	if err != nil {
		t.Fatal(err)
	}
	st.routeTS = httptest.NewServer(st.router.Handler())
	t.Cleanup(st.routeTS.Close)
	return st
}

const searchBody = `{"model":"mcf","verify":"sim"}`

// TestTraceE2EMergedAcrossRoles drives a simulator-verified search
// through the full stack and asserts the router holds ONE merged trace
// containing spans from all three roles, with every remote span
// correctly parented into a single tree.
func TestTraceE2EMergedAcrossRoles(t *testing.T) {
	obs.Reset()
	st := newTraceStack(t, 1)

	resp, body := postJSON(t, st.routeTS.URL+"/v1/search", searchBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search through router = %d: %s", resp.StatusCode, body)
	}

	var sum obs.TraceSummary
	for _, s := range st.router.Traces().Snapshot("/v1/search") {
		if s.Route == "/v1/search" {
			sum = s
			break
		}
	}
	if sum.ID == "" {
		t.Fatal("router /tracez holds no /v1/search trace")
	}
	tr, _, ok := st.router.Traces().Get(sum.ID)
	if !ok {
		t.Fatalf("trace %s not retrievable by id", sum.ID)
	}
	spans := tr.Spans()

	// All three roles appear in the one merged trace.
	want := []string{"router.request", "router.forward", "serve.search", "cluster.pool_attempt", "cluster.worker_eval"}
	names := map[string]int{}
	for _, s := range spans {
		names[s.Name]++
	}
	for _, n := range want {
		if names[n] == 0 {
			t.Errorf("merged trace is missing a %q span (have %v)", n, names)
		}
	}

	// The span forest is a single rooted tree: exactly one root, every
	// other parent resolves, and the remote lanes hang off the right
	// local spans.
	byID := map[int64]obs.SpanInfo{}
	for _, s := range spans {
		byID[s.ID] = s
	}
	roots := 0
	for _, s := range spans {
		if s.Parent == 0 {
			roots++
			if s.Name != "router.request" {
				t.Errorf("root span is %q, want router.request", s.Name)
			}
			continue
		}
		p, ok := byID[s.Parent]
		if !ok {
			t.Errorf("span %q has dangling parent %d", s.Name, s.Parent)
			continue
		}
		switch s.Name {
		case "router.forward":
			if p.Name != "router.request" {
				t.Errorf("router.forward parented under %q", p.Name)
			}
		case "serve.search":
			if p.Name != "router.forward" {
				t.Errorf("serve.search parented under %q", p.Name)
			}
		case "cluster.pool_attempt":
			if p.Name != "serve.search" {
				t.Errorf("cluster.pool_attempt parented under %q", p.Name)
			}
		case "cluster.worker_eval":
			if p.Name != "cluster.pool_attempt" {
				t.Errorf("cluster.worker_eval parented under %q", p.Name)
			}
		}
	}
	if roots != 1 {
		t.Errorf("merged trace has %d roots, want 1", roots)
	}

	// The merged trace exports as one Chrome timeline through the
	// router's own /tracez.
	cresp, err := http.Get(st.routeTS.URL + "/tracez?id=" + sum.ID + "&format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	defer cresp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 32<<10)
	for {
		n, err := cresp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("chrome export = %d", cresp.StatusCode)
	}
	for _, n := range want {
		if !strings.Contains(sb.String(), n) {
			t.Errorf("chrome export is missing span %q", n)
		}
	}
}

// TestTraceE2ESamplingSuppression turns head sampling off at the edge
// and asserts the bit suppresses trace allocation on every downstream
// role — and that the response body is bit-identical to the traced one.
func TestTraceE2ESamplingSuppression(t *testing.T) {
	obs.Reset()
	on := newTraceStack(t, 1)
	respOn, bodyOn := postJSON(t, on.routeTS.URL+"/v1/search", searchBody)
	if respOn.StatusCode != http.StatusOK {
		t.Fatalf("traced search = %d: %s", respOn.StatusCode, bodyOn)
	}

	obs.Reset()
	off := newTraceStack(t, -1)
	respOff, bodyOff := postJSON(t, off.routeTS.URL+"/v1/search", searchBody)
	if respOff.StatusCode != http.StatusOK {
		t.Fatalf("untraced search = %d: %s", respOff.StatusCode, bodyOff)
	}

	if string(bodyOn) != string(bodyOff) {
		t.Errorf("response bodies differ with tracing on vs off:\non:  %s\noff: %s", bodyOn, bodyOff)
	}
	if got := len(off.router.Traces().Snapshot("/v1/search")); got != 0 {
		t.Errorf("router stored %d /v1/search traces with sampling off", got)
	}
	if got := len(off.serve.Traces().Snapshot("/v1/search")); got != 0 {
		t.Errorf("shard stored %d /v1/search traces despite the unsampled bit", got)
	}
	for i, w := range off.workers {
		if got := len(w.Traces().Snapshot("/v1/eval")); got != 0 {
			t.Errorf("worker %d stored %d /v1/eval traces despite the unsampled bit", i, got)
		}
	}
}
