package adaptive

import (
	"math"
	"testing"

	"predperf/internal/core"
	"predperf/internal/design"
	"predperf/internal/rbf"
)

// curvedCPI has a sharp local feature: adaptive sampling should place
// extra points near it.
func curvedCPI(c design.Config) float64 {
	l2 := float64(c.L2SizeKB)
	lat := float64(c.L2Lat)
	return 0.8 + 2.5*math.Exp(-math.Pow((math.Log2(l2)-9)/0.8, 2))*(lat/20) +
		8/float64(c.ROBSize) + 0.3*float64(c.PipeDepth)/24
}

func fastOpt() Options {
	return Options{
		InitialSize: 20, BatchSize: 10, MaxSize: 60, Folds: 4,
		RBF:  rbf.Options{PMinGrid: []int{1}, AlphaGrid: []float64{5, 9}},
		Seed: 3,
	}
}

func TestBuildReachesBudget(t *testing.T) {
	ev := core.FuncEvaluator(curvedCPI)
	m, hist, err := Build(ev, fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	if m.SampleSize != 60 {
		t.Fatalf("final sample %d, want 60", m.SampleSize)
	}
	if len(hist) != 5 { // 20, 30, 40, 50, 60
		t.Fatalf("rounds = %d, want 5", len(hist))
	}
	for i := 1; i < len(hist); i++ {
		if hist[i].Size != hist[i-1].Size+10 {
			t.Fatalf("round sizes: %+v", hist)
		}
	}
}

func TestCVErrorGenerallyImproves(t *testing.T) {
	ev := core.FuncEvaluator(curvedCPI)
	_, hist, err := Build(ev, fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	first, last := hist[0].CVMean, hist[len(hist)-1].CVMean
	if last > first {
		t.Fatalf("CV error rose from %v to %v", first, last)
	}
}

func TestTargetCVStopsEarly(t *testing.T) {
	ev := core.FuncEvaluator(curvedCPI)
	opt := fastOpt()
	opt.TargetCV = 1e6 // absurdly easy: stop after the first round
	m, hist, err := Build(ev, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 1 || m.SampleSize != opt.InitialSize {
		t.Fatalf("did not stop at target: %d rounds, size %d", len(hist), m.SampleSize)
	}
}

func TestAdaptiveBeatsOrMatchesOneShotOnLocalFeature(t *testing.T) {
	ev := core.FuncEvaluator(curvedCPI)
	opt := fastOpt()
	m, _, err := Build(ev, opt)
	if err != nil {
		t.Fatal(err)
	}
	oneShot, err := core.BuildRBFModel(ev, opt.MaxSize, core.Options{
		LHSCandidates: 16, RBF: opt.RBF, Seed: opt.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := core.NewTestSet(ev, nil, 60, 17)
	ad := m.Validate(ts)
	os := oneShot.Validate(ts)
	// Adaptive must be at least competitive (within 1.5× of one-shot);
	// on feature-heavy surfaces it usually wins outright.
	if ad.Mean > os.Mean*1.5+0.5 {
		t.Fatalf("adaptive %v%% much worse than one-shot %v%%", ad.Mean, os.Mean)
	}
}

func TestInvalidOptions(t *testing.T) {
	ev := core.FuncEvaluator(curvedCPI)
	opt := fastOpt()
	opt.InitialSize, opt.MaxSize = 50, 50
	if _, _, err := Build(ev, opt); err == nil {
		t.Fatal("expected error when InitialSize >= MaxSize")
	}
}

func TestBatchClampsToBudget(t *testing.T) {
	ev := core.FuncEvaluator(curvedCPI)
	opt := fastOpt()
	opt.InitialSize, opt.BatchSize, opt.MaxSize = 20, 50, 45
	m, _, err := Build(ev, opt)
	if err != nil {
		t.Fatal(err)
	}
	if m.SampleSize != 45 {
		t.Fatalf("final size %d, want exactly the 45-point budget", m.SampleSize)
	}
}

func TestAcquireSpreadsBatch(t *testing.T) {
	// With uniform residuals, acquisition must not pick coincident
	// points (exploration term).
	train := []design.Point{{0.5, 0.5}}
	resid := []float64{1}
	pool := make([]design.Point, 0, 100)
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			pool = append(pool, design.Point{float64(i) / 9, float64(j) / 9})
		}
	}
	chosen := acquire(pool, train, resid, 5, 1)
	if len(chosen) != 5 {
		t.Fatalf("chose %d", len(chosen))
	}
	for i := 0; i < len(chosen); i++ {
		for j := i + 1; j < len(chosen); j++ {
			if dist(chosen[i], chosen[j]) < 0.2 {
				t.Fatalf("batch points too close: %v vs %v", chosen[i], chosen[j])
			}
		}
	}
}
