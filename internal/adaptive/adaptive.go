// Package adaptive implements the sampling extension sketched in the
// paper's conclusion (§6): "the simulation costs involved in
// constructing predictive models can potentially be reduced using
// adaptive sampling, wherein sets of design points to simulate are
// selected based on data from initial small samples."
//
// The procedure starts from a small space-filling seed sample, then
// iterates: fit an RBF model, estimate where it is uncertain with k-fold
// cross-validation residuals, and add a batch of new design points drawn
// from a space-filling candidate pool, scored by nearby residual mass
// and distance from the existing sample (exploitation + exploration).
package adaptive

import (
	"errors"
	"math"
	"math/rand"

	"predperf/internal/core"
	"predperf/internal/design"
	"predperf/internal/rbf"
	"predperf/internal/sample"
)

// Options configures the adaptive build.
type Options struct {
	Space       *design.Space
	InitialSize int     // seed LHS size (default 30)
	BatchSize   int     // points added per round (default 10)
	MaxSize     int     // total simulation budget (default 90)
	TargetCV    float64 // stop early when the CV mean error (%) drops below this
	PoolSize    int     // candidate pool per round (default 4×MaxSize)
	Folds       int     // cross-validation folds (default 5)
	Explore     float64 // exploration weight on distance-to-sample (default 1)
	RBF         rbf.Options
	Seed        int64
}

func (o Options) withDefaults() Options {
	if o.Space == nil {
		o.Space = design.PaperSpace()
	}
	if o.InitialSize <= 0 {
		o.InitialSize = 30
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 10
	}
	if o.MaxSize <= 0 {
		o.MaxSize = 90
	}
	if o.PoolSize <= 0 {
		o.PoolSize = 4 * o.MaxSize
	}
	if o.Folds < 2 {
		o.Folds = 5
	}
	if o.Explore <= 0 {
		o.Explore = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Round records one iteration's diagnostics.
type Round struct {
	Size    int     // sample size after this round
	CVMean  float64 // k-fold cross-validation mean % error before adding points
	Centers int     // RBF centers in the round's model
}

// Build runs the adaptive procedure and returns the final model plus the
// per-round history. The returned model is interchangeable with the
// output of core.BuildRBFModel.
func Build(ev core.Evaluator, opt Options) (*core.Model, []Round, error) {
	opt = opt.withDefaults()
	if opt.InitialSize >= opt.MaxSize {
		return nil, nil, errors.New("adaptive: InitialSize must be below MaxSize")
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	space := opt.Space

	// Seed sample: space-filling LHS.
	raw, _ := sample.BestLHS(space, opt.InitialSize, 32, rng)
	var pts []design.Point
	var cfgs []design.Config
	var ys []float64
	add := func(p design.Point) {
		cfg := space.Decode(p, opt.MaxSize)
		cfgs = append(cfgs, cfg)
		pts = append(pts, space.Encode(cfg))
		ys = append(ys, ev.Eval(cfg))
	}
	for _, p := range raw {
		add(p)
	}

	var history []Round
	var fit *rbf.FitResult
	for {
		var err error
		fit, err = rbf.Fit(asFloats(pts), ys, opt.RBF)
		if err != nil {
			return nil, history, err
		}
		cv := crossValidate(pts, ys, opt)
		history = append(history, Round{Size: len(pts), CVMean: cv, Centers: fit.NumCenters()})
		if len(pts) >= opt.MaxSize || (opt.TargetCV > 0 && cv <= opt.TargetCV) {
			break
		}

		// Residual magnitude at each training point from the CV folds is
		// already folded into cv; for acquisition we need point-wise
		// residuals.
		resid := pointwiseCVResiduals(pts, ys, opt)

		// Candidate pool: a fresh space-filling sample.
		pool := sample.LHS(space, opt.PoolSize, rng)
		batch := opt.BatchSize
		if len(pts)+batch > opt.MaxSize {
			batch = opt.MaxSize - len(pts)
		}
		chosen := acquire(pool, pts, resid, batch, opt.Explore)
		for _, p := range chosen {
			add(p)
		}
	}

	model := &core.Model{
		Space:      space,
		SampleSize: len(pts),
		Fit:        fit,
		Points:     pts,
		Configs:    cfgs,
		Responses:  ys,
	}
	return model, history, nil
}

func asFloats(pts []design.Point) [][]float64 {
	out := make([][]float64, len(pts))
	for i, p := range pts {
		out[i] = p
	}
	return out
}

// crossValidate returns the k-fold CV mean absolute percentage error.
func crossValidate(pts []design.Point, ys []float64, opt Options) float64 {
	res := pointwiseCVResiduals(pts, ys, opt)
	var sum float64
	n := 0
	for i, r := range res {
		if math.IsNaN(r) {
			continue
		}
		sum += 100 * r / math.Abs(ys[i])
		n++
	}
	if n == 0 {
		return math.Inf(1)
	}
	return sum / float64(n)
}

// pointwiseCVResiduals returns |prediction − truth| for each training
// point, predicted by a model fitted without that point's fold.
func pointwiseCVResiduals(pts []design.Point, ys []float64, opt Options) []float64 {
	n := len(pts)
	res := make([]float64, n)
	folds := opt.Folds
	if folds > n {
		folds = n
	}
	for f := 0; f < folds; f++ {
		var trX [][]float64
		var trY []float64
		var holdIdx []int
		for i := 0; i < n; i++ {
			if i%folds == f {
				holdIdx = append(holdIdx, i)
			} else {
				trX = append(trX, pts[i])
				trY = append(trY, ys[i])
			}
		}
		fit, err := rbf.Fit(trX, trY, opt.RBF)
		if err != nil {
			for _, i := range holdIdx {
				res[i] = math.NaN()
			}
			continue
		}
		for _, i := range holdIdx {
			res[i] = math.Abs(fit.Predict(pts[i]) - ys[i])
		}
	}
	return res
}

// acquire greedily picks batch candidates maximizing
//
//	score(c) = residualMass(c) · (1 + explore·dmin(c))
//
// where residualMass is the inverse-distance-weighted CV residual of the
// training points near c and dmin is the distance to the nearest already
// chosen or training point (so batches spread out).
func acquire(pool, train []design.Point, resid []float64, batch int, explore float64) []design.Point {
	chosen := make([]design.Point, 0, batch)
	taken := make([]bool, len(pool))
	for len(chosen) < batch {
		bestScore := math.Inf(-1)
		bestIdx := -1
		for ci, c := range pool {
			if taken[ci] {
				continue
			}
			mass := 0.0
			wsum := 0.0
			dminTrain := math.Inf(1)
			for ti, t := range train {
				d := dist(c, t)
				if d < dminTrain {
					dminTrain = d
				}
				if math.IsNaN(resid[ti]) {
					continue
				}
				w := 1 / (0.05 + d*d)
				mass += w * resid[ti]
				wsum += w
			}
			if wsum > 0 {
				mass /= wsum
			}
			dmin := dminTrain
			for _, p := range chosen {
				if d := dist(c, p); d < dmin {
					dmin = d
				}
			}
			score := mass * (1 + explore*dmin)
			if score > bestScore {
				bestScore, bestIdx = score, ci
			}
		}
		if bestIdx < 0 {
			break
		}
		taken[bestIdx] = true
		chosen = append(chosen, pool[bestIdx])
	}
	return chosen
}

func dist(a, b design.Point) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
