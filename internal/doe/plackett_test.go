package doe

import (
	"math"
	"testing"

	"predperf/internal/core"
	"predperf/internal/design"
)

func TestPB12Orthogonality(t *testing.T) {
	m := PlackettBurman12()
	if len(m) != 12 || len(m[0]) != 11 {
		t.Fatalf("design is %dx%d, want 12x11", len(m), len(m[0]))
	}
	// Every column balanced: six +1 and six −1.
	for c := 0; c < 11; c++ {
		sum := 0
		for r := 0; r < 12; r++ {
			if v := m[r][c]; v != 1 && v != -1 {
				t.Fatalf("entry (%d,%d) = %d", r, c, v)
			}
			sum += m[r][c]
		}
		if sum != 0 {
			t.Fatalf("column %d unbalanced: sum %d", c, sum)
		}
	}
	// Pairwise orthogonal columns: dot product zero.
	for a := 0; a < 11; a++ {
		for b := a + 1; b < 11; b++ {
			dot := 0
			for r := 0; r < 12; r++ {
				dot += m[r][a] * m[r][b]
			}
			if dot != 0 {
				t.Fatalf("columns %d,%d not orthogonal (dot %d)", a, b, dot)
			}
		}
	}
}

func TestFoldoverMirrors(t *testing.T) {
	m := Foldover(PlackettBurman12())
	if len(m) != 24 {
		t.Fatalf("foldover has %d runs", len(m))
	}
	for r := 0; r < 12; r++ {
		for c := 0; c < 11; c++ {
			if m[r][c] != -m[r+12][c] {
				t.Fatalf("run %d not mirrored at column %d", r, c)
			}
		}
	}
}

func TestScreenRecoversDominantFactor(t *testing.T) {
	// Response dominated by L2 latency; screening must rank it first.
	space := design.PaperSpace()
	iLat := space.Index(design.L2Lat)
	ev := core.FuncEvaluator(func(c design.Config) float64 {
		return 1 + 0.5*float64(c.L2Lat) + 0.01*float64(c.PipeDepth)
	})
	sc, err := Screen(ev, space, true)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Runs != 24 {
		t.Fatalf("runs = %d, want 24", sc.Runs)
	}
	if sc.Effects[0].Param != iLat {
		t.Fatalf("top effect %s, want L2_lat", sc.Effects[0].Name)
	}
	// The favorable endpoint (latency 5) lowers CPI, so the effect is
	// negative: High − Low < 0.
	if sc.Effects[0].Effect >= 0 {
		t.Fatalf("L2_lat effect %v should be negative", sc.Effects[0].Effect)
	}
}

func TestScreenCannotSeeInteractionOnlyFactors(t *testing.T) {
	// The §5 criticism: a factor that acts *only* through an interaction
	// whose partner sits at a fixed level contributes no main effect —
	// and a pure XOR-style interaction is invisible to main-effect
	// screening entirely.
	space := design.PaperSpace()
	i1 := space.Index(design.IL1Size)
	i2 := space.Index(design.DL1Size)
	ev := core.FuncEvaluator(func(c design.Config) float64 {
		// Pure interaction: response depends on whether il1 and dl1 are
		// at the same extreme, not on either alone.
		a := 0.0
		if c.IL1SizeKB >= 32 {
			a = 1
		}
		b := 0.0
		if c.DL1SizeKB >= 32 {
			b = 1
		}
		return 2 + math.Abs(a-b)
	})
	sc, err := Screen(ev, space, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range sc.Effects {
		if (e.Param == i1 || e.Param == i2) && math.Abs(e.Effect) > 1e-9 {
			t.Fatalf("pure-interaction factor %s shows a main effect %v", e.Name, e.Effect)
		}
	}
}

func TestScreenTooManyFactors(t *testing.T) {
	big := &design.Space{}
	for i := 0; i < 12; i++ {
		big.Params = append(big.Params, design.Param{Name: "p", Low: 0, High: 1, Levels: 2})
	}
	if _, err := Screen(nil, big, false); err == nil {
		t.Fatal("expected error for >11 factors")
	}
}
